// Quickstart: bring up an in-process KerA cluster, create a stream,
// produce a batch of records, and consume them back — the minimal
// end-to-end use of the public API.
//
//   $ ./example_quickstart
#include <cstdio>
#include <string>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

using namespace kera;

int main() {
  // A 3-node cluster: each node hosts a broker and a backup service.
  MiniClusterConfig cluster_config;
  cluster_config.nodes = 3;
  cluster_config.workers_per_node = 2;
  MiniCluster cluster(cluster_config);

  // A stream with 2 partitions (streamlets), replicated 3 times. The
  // virtual logs that implement replication are transparent to clients.
  rpc::StreamOptions options;
  options.num_streamlets = 2;
  options.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("greetings", options);
  if (!info.ok()) {
    std::fprintf(stderr, "create stream: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("created stream 'greetings' (id %llu) with %zu streamlets\n",
              (unsigned long long)info->stream,
              info->streamlet_brokers.size());

  // Produce 1000 records.
  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "greetings";
  pc.chunk_size = 1024;
  Producer producer(pc, cluster.network());
  if (!producer.Connect().ok()) return 1;
  for (int i = 0; i < 1000; ++i) {
    std::string value = "hello-" + std::to_string(i);
    auto s = producer.Send(
        {reinterpret_cast<const std::byte*>(value.data()), value.size()});
    if (!s.ok()) {
      std::fprintf(stderr, "send: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!producer.Close().ok()) return 1;
  auto pstats = producer.GetStats();
  std::printf("produced %llu records in %llu chunks (%llu requests), "
              "p50 request latency %llu us\n",
              (unsigned long long)pstats.records_sent,
              (unsigned long long)pstats.chunks_sent,
              (unsigned long long)pstats.requests_sent,
              (unsigned long long)pstats.request_latency_us.Quantile(0.5));

  // Consume everything back. Consumers only ever see durably replicated
  // records (acknowledged by all backups).
  ConsumerConfig cc;
  cc.stream = "greetings";
  Consumer consumer(cc, cluster.network());
  if (!consumer.Connect().ok()) return 1;
  size_t received = 0;
  while (received < 1000) {
    auto records = consumer.PollBlocking(128);
    if (records.empty()) break;
    received += records.size();
  }
  consumer.Close();
  std::printf("consumed %zu records back\n", received);

  auto totals = cluster.TotalBrokerStats();
  std::printf("cluster: %llu chunks appended, %llu replication RPCs "
              "(%llu batches), %llu bytes replicated\n",
              (unsigned long long)totals.chunks_appended,
              (unsigned long long)totals.replication_rpcs,
              (unsigned long long)totals.replication_batches,
              (unsigned long long)totals.replication_bytes);
  return received == 1000 ? 0 : 1;
}
