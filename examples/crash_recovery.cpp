// Crash recovery: produce durably replicated data, kill a broker, let the
// coordinator replay the virtual segments from the surviving backups into
// new leaders, and verify every acknowledged record survives.
//
//   $ ./example_crash_recovery
#include <cstdio>
#include <set>
#include <string>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

using namespace kera;

int main() {
  MiniClusterConfig cluster_config;
  cluster_config.nodes = 4;
  cluster_config.workers_per_node = 2;
  MiniCluster cluster(cluster_config);

  rpc::StreamOptions options;
  options.num_streamlets = 4;
  options.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("ledger", options);
  if (!info.ok()) return 1;

  constexpr int kRecords = 5000;
  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "ledger";
  pc.chunk_size = 1024;
  Producer producer(pc, cluster.network());
  if (!producer.Connect().ok()) return 1;
  for (int i = 0; i < kRecords; ++i) {
    std::string v = "txn-" + std::to_string(i);
    if (!producer
             .Send({reinterpret_cast<const std::byte*>(v.data()), v.size()})
             .ok()) {
      return 1;
    }
  }
  if (!producer.Close().ok()) return 1;
  std::printf("produced %d records (every ack means 3 copies exist)\n",
              kRecords);

  // Kill the broker leading streamlet 0.
  NodeId victim = info->streamlet_brokers[0];
  cluster.CrashNode(victim);
  std::printf("crashed node %u (broker + backup)\n", victim);

  auto replayed = cluster.coordinator().RecoverNode(victim);
  if (!replayed.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  auto fresh = cluster.coordinator().GetStreamInfo("ledger");
  std::printf("recovered: %llu chunks replayed from backups; streamlet 0 "
              "moved to node %u\n",
              (unsigned long long)*replayed, fresh->streamlet_brokers[0]);

  // Verify all records are intact, exactly once.
  ConsumerConfig cc;
  cc.stream = "ledger";
  Consumer consumer(cc, cluster.network());
  if (!consumer.Connect().ok()) return 1;
  std::set<std::string> seen;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (seen.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(256)) {
      seen.emplace(reinterpret_cast<const char*>(rec.value.data()),
                   rec.value.size());
    }
  }
  consumer.Close();
  std::printf("verified %zu/%d distinct records after recovery\n",
              seen.size(), kRecords);
  return seen.size() == kRecords ? 0 : 1;
}
