// Log-structured key-value view over a keyed stream — the integration
// path the paper's conclusion sketches ("easily integrate key-value
// stores based on log-structured storage"). Keyed records hash to a
// streamlet, so all writes for one key are totally ordered; a reader that
// folds the stream into a map gets last-writer-wins KV semantics.
//
//   $ ./example_keyed_kv_view
#include <cstdio>
#include <map>
#include <string>


#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

using namespace kera;

namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

}  // namespace

int main() {
  MiniClusterConfig cluster_config;
  cluster_config.nodes = 3;
  cluster_config.workers_per_node = 2;
  MiniCluster cluster(cluster_config);

  rpc::StreamOptions options;
  options.num_streamlets = 4;
  options.replication_factor = 2;
  if (!cluster.coordinator().CreateStream("kv-log", options).ok()) return 1;

  // Writer: upsert 200 keys several times each; the last write wins.
  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "kv-log";
  pc.chunk_size = 2048;
  pc.partitioner = Partitioner::kKeyHash;
  Producer producer(pc, cluster.network());
  if (!producer.Connect().ok()) return 1;
  std::map<std::string, std::string> expected;
  for (int version = 1; version <= 5; ++version) {
    for (int k = 0; k < 200; ++k) {
      std::string key = "user:" + std::to_string(k);
      std::string value = "profile-v" + std::to_string(version) + "-of-" +
                          std::to_string(k);
      if (!producer.SendKeyed(AsBytes(key), AsBytes(value)).ok()) return 1;
      expected[key] = value;
    }
  }
  if (!producer.Close().ok()) return 1;
  if (!cluster.coordinator().SealStream("kv-log").ok()) return 1;
  std::printf("wrote 5 versions of 200 keys (1000 upserts), sealed\n");

  // Reader: fold the bounded stream into a map. Records within a
  // streamlet arrive in append order, and one key always lands on one
  // streamlet, so last-read == last-written per key. Keys live in the
  // record entry itself (multi-key-value format), so we pull raw chunks
  // via the consume RPC and use RecordView::key() directly.
  std::map<std::string, std::string> kv;
  uint64_t upserts = 0;
  auto info = cluster.coordinator().GetStreamInfo("kv-log");
  if (!info.ok()) return 1;
  for (StreamletId sl = 0; sl < 4; ++sl) {
    NodeId leader = info->streamlet_brokers[sl];
    GroupId group = 0;
    uint64_t cursor = 0;
    int idle = 0;
    while (idle < 5) {
      rpc::ConsumeRequest req;
      req.stream = info->stream;
      req.entries = {{.streamlet = sl, .group = group,
                      .start_chunk = cursor, .max_chunks = 64}};
      rpc::Writer body;
      req.Encode(body);
      auto raw = cluster.network().Call(
          leader, rpc::Frame(rpc::Opcode::kConsume, body));
      if (!raw.ok()) break;
      rpc::Reader r(*raw);
      auto resp = rpc::ConsumeResponse::Decode(r);
      if (!resp.ok()) break;
      const auto& e = resp->entries[0];
      for (const auto& cb : e.chunks) {
        auto view = ChunkView::Parse(cb);
        if (!view.ok()) continue;
        for (auto it = view->records(); !it.Done(); it.Next()) {
          const RecordView& rec = it.record();
          if (rec.key_count() == 0) continue;
          std::string key(reinterpret_cast<const char*>(rec.key(0).data()),
                          rec.key(0).size());
          std::string value(
              reinterpret_cast<const char*>(rec.value().data()),
              rec.value().size());
          kv[key] = value;  // later records overwrite: last write wins
          ++upserts;
        }
      }
      cursor = e.next_chunk;
      if (e.group_closed) {
        ++group;
        cursor = 0;
        idle = 0;
      } else if (e.chunks.empty()) {
        if (e.stream_sealed && !e.group_exists) break;
        ++idle;
      }
    }
  }

  // Verify the materialized view.
  size_t correct = 0;
  for (const auto& [key, value] : expected) {
    auto it = kv.find(key);
    if (it != kv.end() && it->second == value) ++correct;
  }
  std::printf("replayed %llu upserts into a KV view: %zu keys, "
              "%zu/%zu match the last written value\n",
              (unsigned long long)upserts, kv.size(), correct,
              expected.size());
  return correct == expected.size() ? 0 : 1;
}
