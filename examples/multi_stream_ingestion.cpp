// Multi-stream ingestion: the paper's headline scenario. Hundreds of
// small streams are ingested concurrently; their partitions share a small
// pool of replicated virtual logs per broker, so replication happens in
// few, large RPCs instead of one small RPC per partition. The example
// prints the consolidation ratio (chunks replicated per replication RPC).
//
//   $ ./example_multi_stream_ingestion [streams] [vlogs_per_broker]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "client/producer.h"
#include "cluster/mini_cluster.h"

using namespace kera;

int main(int argc, char** argv) {
  uint32_t streams = argc > 1 ? uint32_t(std::atoi(argv[1])) : 64;
  uint32_t vlogs = argc > 2 ? uint32_t(std::atoi(argv[2])) : 4;

  MiniClusterConfig cluster_config;
  cluster_config.nodes = 4;
  cluster_config.workers_per_node = 2;
  cluster_config.vlogs_per_broker = vlogs;
  MiniCluster cluster(cluster_config);

  // Create many small streams (one partition each), all replicated 3x.
  rpc::StreamOptions options;
  options.num_streamlets = 1;
  options.replication_factor = 3;
  options.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
  for (uint32_t s = 0; s < streams; ++s) {
    auto info = cluster.coordinator().CreateStream(
        "sensor-" + std::to_string(s), options);
    if (!info.ok()) {
      std::fprintf(stderr, "create: %s\n", info.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("created %u streams over 4 brokers, %u shared vlogs/broker\n",
              streams, vlogs);

  // One producer per 16 streams, each writing 200 records to each of its
  // streams (round-robin across its streams via separate producers).
  std::string value(100, 'v');
  uint64_t total_records = 0;
  for (uint32_t s = 0; s < streams; ++s) {
    ProducerConfig pc;
    pc.producer_id = ProducerId(s + 1);
    pc.stream = "sensor-" + std::to_string(s);
    pc.chunk_size = 1024;
    Producer producer(pc, cluster.network());
    if (!producer.Connect().ok()) return 1;
    for (int i = 0; i < 200; ++i) {
      (void)producer.Send(
          {reinterpret_cast<const std::byte*>(value.data()), value.size()});
    }
    if (!producer.Close().ok()) return 1;
    total_records += producer.GetStats().records_sent;
  }

  auto totals = cluster.TotalBrokerStats();
  double chunks_per_batch =
      totals.replication_batches == 0
          ? 0
          : double(totals.chunks_appended) /
                double(totals.replication_batches);
  std::printf("ingested %llu records (%llu chunks) across %u streams\n",
              (unsigned long long)total_records,
              (unsigned long long)totals.chunks_appended, streams);
  std::printf("replication: %llu batches, %llu RPCs to backups\n",
              (unsigned long long)totals.replication_batches,
              (unsigned long long)totals.replication_rpcs);
  std::printf("consolidation: %.1f chunks per replication batch "
              "(vs 1.0 with one replicated log per partition)\n",
              chunks_per_batch);

  // Per-vlog accounting: how the shared logs divided the work.
  for (NodeId node = 1; node <= 4; ++node) {
    for (VirtualLog* vlog : cluster.broker(node).VirtualLogs()) {
      auto s = vlog->GetStats();
      if (s.chunks_appended == 0) continue;
      std::printf("  broker %u vlog %u: %llu chunks, %llu batches, "
                  "%llu virtual segments\n",
                  node, vlog->id(), (unsigned long long)s.chunks_appended,
                  (unsigned long long)s.batches_issued,
                  (unsigned long long)s.segments_opened);
    }
  }
  return 0;
}
