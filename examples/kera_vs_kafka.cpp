// KerA vs the Kafka model on the REAL (threaded) substrates — not the
// simulation. Runs the same workload through both systems and prints the
// replication RPC accounting: the virtual log consolidates many small
// per-partition replication RPCs into few large ones; the Kafka model
// issues pull-based fetches per partition. (Wall-clock throughput on a
// laptop is not meaningful — the interesting output is the I/O shape.)
//
//   $ ./example_kera_vs_kafka [streams]
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>

#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "kafka/kafka_cluster.h"
#include "wire/chunk.h"

using namespace kera;

namespace {

constexpr int kChunksPerStream = 50;
constexpr size_t kChunkSize = 1024;
constexpr uint32_t kReplication = 3;

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ChunkSeq seq) {
  ChunkBuilder b(kChunkSize);
  b.Start(stream, streamlet, 1);
  std::vector<std::byte> value(100, std::byte{0x42});
  while (b.AppendValue(value)) {
  }
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

struct Shape {
  uint64_t replication_rpcs;
  uint64_t replication_bytes;
  double avg_kb() const {
    return replication_rpcs == 0
               ? 0
               : double(replication_bytes) / double(replication_rpcs) / 1024;
  }
};

Shape RunKerA(uint32_t streams) {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  cfg.vlogs_per_broker = 4;
  cfg.replication_max_batch_bytes = 64 << 10;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = kReplication;
  std::vector<rpc::StreamInfo> infos;
  for (uint32_t s = 0; s < streams; ++s) {
    auto info = cluster.coordinator().CreateStream(
        "s" + std::to_string(s), opts);
    if (!info.ok()) std::abort();
    infos.push_back(*info);
  }
  // Proxy-producer pattern (§V.A): one request per broker per round, with
  // a chunk for every stream that broker leads. The broker appends all
  // chunks first and then synchronizes the touched vlogs — that is where
  // the aggregation happens. (The ProduceRequest RPC spans one stream, so
  // we send per-stream requests but drive replication per round via the
  // NoSync + ShipBatch path, exactly like the broker's own request loop.)
  for (int i = 1; i <= kChunksPerStream; ++i) {
    std::map<NodeId, std::vector<VirtualLog*>> touched;
    std::vector<std::vector<std::byte>> frames;  // keep alive until shipped
    for (uint32_t s = 0; s < streams; ++s) {
      frames.push_back(MakeChunk(infos[s].stream, 0, ChunkSeq(i)));
      rpc::ProduceRequest req;
      req.producer = 1;
      req.stream = infos[s].stream;
      req.chunks = {frames.back()};
      NodeId leader = infos[s].streamlet_brokers[0];
      std::vector<std::pair<VirtualLog*, ChunkRef>> appended;
      auto resp = cluster.broker(leader).HandleProduceNoSync(req, &appended);
      if (resp.status != StatusCode::kOk) std::abort();
      for (auto& [vlog, _] : appended) {
        auto& list = touched[leader];
        if (std::find(list.begin(), list.end(), vlog) == list.end()) {
          list.push_back(vlog);
        }
      }
    }
    // One sync per touched vlog per round — the whole round's chunks ship
    // in aggregated batches.
    for (auto& [leader, vlogs] : touched) {
      for (VirtualLog* vlog : vlogs) {
        while (auto batch = vlog->Poll()) {
          if (!cluster.broker(leader).ShipBatch(*vlog, *batch).ok()) {
            std::abort();
          }
        }
      }
    }
  }
  auto totals = cluster.TotalBrokerStats();
  return {totals.replication_rpcs, totals.replication_bytes};
}

Shape RunKafka(uint32_t streams) {
  kafka::KafkaClusterConfig cfg;
  cfg.nodes = 4;
  kafka::KafkaCluster cluster(cfg);
  std::vector<kafka::TopicInfo> topics;
  for (uint32_t s = 0; s < streams; ++s) {
    auto t = cluster.CreateTopic("t" + std::to_string(s), 1, kReplication);
    if (!t.ok()) std::abort();
    topics.push_back(*t);
  }
  cluster.StartReplication();
  for (int i = 1; i <= kChunksPerStream; ++i) {
    for (uint32_t s = 0; s < streams; ++s) {
      auto chunk = MakeChunk(1, 0, ChunkSeq(i));
      if (!cluster.Produce(topics[s].id, 0, chunk, 9).ok()) std::abort();
    }
  }
  cluster.StopReplication();
  auto stats = cluster.GetStats();
  return {stats.fetch_rpcs - stats.empty_fetches, stats.fetch_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t streams = argc > 1 ? uint32_t(std::atoi(argv[1])) : 32;
  uint64_t chunks = uint64_t(streams) * kChunksPerStream;
  std::printf("workload: %u streams x %d chunks of %zu B, replication %u\n\n",
              streams, kChunksPerStream, kChunkSize, kReplication);

  Shape kera_shape = RunKerA(streams);
  Shape kafka_shape = RunKafka(streams);

  std::printf("%-22s %14s %16s %10s\n", "system", "repl RPCs", "repl bytes",
              "avg KB/RPC");
  std::printf("%-22s %14llu %16llu %10.1f\n", "KerA (4 vlogs/broker)",
              (unsigned long long)kera_shape.replication_rpcs,
              (unsigned long long)kera_shape.replication_bytes,
              kera_shape.avg_kb());
  std::printf("%-22s %14llu %16llu %10.1f\n", "Kafka model (pull)",
              (unsigned long long)kafka_shape.replication_rpcs,
              (unsigned long long)kafka_shape.replication_bytes,
              kafka_shape.avg_kb());
  std::printf("\n%llu chunks ingested; KerA used %.1fx fewer replication "
              "RPCs with %.1fx larger payloads\n",
              (unsigned long long)chunks,
              double(kafka_shape.replication_rpcs) /
                  double(kera_shape.replication_rpcs),
              kera_shape.avg_kb() / (kafka_shape.avg_kb() + 1e-9));
  return 0;
}
