// Latency/throughput trade-off explorer: runs the simulated 4-broker
// cluster across chunk sizes and virtual-log counts (the paper's two main
// tuning knobs) and prints the resulting cluster throughput, replication
// RPC consolidation and produce latency.
//
//   $ ./example_latency_throughput_tradeoff
#include <cstdio>

#include "sim/figure_harness.h"

using namespace kera::sim;

int main() {
  std::printf("Simulated 4-broker cluster, 8 producers + 8 consumers, "
              "replication factor 3\n\n");

  std::printf("--- chunk size sweep (throughput configuration, one vlog "
              "per sub-partition) ---\n");
  for (size_t chunk_kb : {1, 4, 16, 64}) {
    SimExperimentConfig cfg = Fig17to20(/*clients=*/8, chunk_kb << 10, 3);
    auto r = RunSimExperiment(cfg);
    char label[64];
    std::snprintf(label, sizeof(label), "chunk %3zu KB", chunk_kb);
    std::printf("%s\n", FormatResult(label, r).c_str());
  }

  std::printf("\n--- virtual log sweep (128 latency-optimized streams, "
              "1 KB chunks) ---\n");
  for (uint32_t vlogs : {1u, 4u, 16u, 64u, 128u}) {
    SimExperimentConfig cfg = Fig14to16(/*streams=*/128, vlogs, 3);
    auto r = RunSimExperiment(cfg);
    char label[64];
    std::snprintf(label, sizeof(label), "%3u vlogs/broker", vlogs);
    std::printf("%s\n", FormatResult(label, r).c_str());
  }

  std::printf("\n--- KerA vs the Kafka model (128 streams, 1 KB chunks, "
              "4+4 clients, R3) ---\n");
  for (int series = 0; series < 3; ++series) {
    SimExperimentConfig cfg =
        series == 0 ? Fig10(System::kKafka, 128, 4)
                    : Fig10(System::kKerA, 128, series == 1 ? 4 : 32);
    auto r = RunSimExperiment(cfg);
    const char* label = series == 0   ? "Kafka (per-partition logs)"
                        : series == 1 ? "KerA (4 shared vlogs)"
                                      : "KerA (32 shared vlogs)";
    std::printf("%s\n", FormatResult(label, r).c_str());
  }
  return 0;
}
