// Two-process KerA over real TCP: one process hosts the cluster (the
// coordinator plus N broker+backup nodes) on a SocketNetwork with fixed
// loopback ports; a second process routes to it with SetPeer and runs a
// produce/consume round trip — no shared memory, every RPC on the wire.
//
//   terminal 1:  ./example_socket_cluster --server 7400
//   terminal 2:  ./example_socket_cluster --client 7400
//
// Without arguments the example forks the server itself and runs the
// client against it.
//
// Port layout (base = 7400 by default):
//   base          coordinator
//   base + node   broker on node 1..N
//   base + 100 + node  backup service on node 1..N
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "backup/backup.h"
#include "broker/broker.h"
#include "client/consumer.h"
#include "client/producer.h"
#include "coordinator/coordinator.h"
#include "rpc/messages.h"
#include "rpc/socket_transport.h"

using namespace kera;

namespace {

constexpr uint32_t kNodes = 2;

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int RunServer(uint16_t base_port) {
  rpc::SocketNetwork net;
  Coordinator coordinator(net);

  std::vector<NodeId> backup_services;
  for (NodeId node = 1; node <= kNodes; ++node) {
    backup_services.push_back(BackupServiceId(node));
  }

  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Backup>> backups;
  for (NodeId node = 1; node <= kNodes; ++node) {
    BrokerConfig bc;
    bc.node = node;
    bc.memory_bytes = 64u << 20;
    bc.segment_size = 1u << 20;
    bc.virtual_segment_capacity = 1u << 20;
    bc.backup_nodes = backup_services;
    brokers.push_back(std::make_unique<Broker>(bc, net));
    BackupConfig bkc;
    bkc.node = node;
    backups.push_back(std::make_unique<Backup>(bkc));
  }

  auto listen = [&](NodeId service, rpc::RpcHandler* handler,
                    uint16_t port) {
    auto bound = net.Register(service, handler, port);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind %u failed: %s\n", unsigned(port),
                   bound.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("service %u listening on 127.0.0.1:%u\n", unsigned(service),
                unsigned(*bound));
  };
  listen(kCoordinatorNode, &coordinator, base_port);
  for (NodeId node = 1; node <= kNodes; ++node) {
    listen(node, brokers[node - 1].get(), uint16_t(base_port + node));
    listen(BackupServiceId(node), backups[node - 1].get(),
           uint16_t(base_port + 100 + node));
    coordinator.RegisterNode(node, brokers[node - 1].get(),
                             backups[node - 1].get());
  }
  std::printf("cluster up; ctrl-c to stop\n");
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (auto& b : brokers) b->StopReplicator();
  net.Shutdown();
  std::printf("server stopped\n");
  return 0;
}

int RunClient(uint16_t base_port) {
  rpc::SocketNetwork net;
  net.SetPeer(kCoordinatorNode, "127.0.0.1", base_port);
  for (NodeId node = 1; node <= kNodes; ++node) {
    net.SetPeer(node, "127.0.0.1", uint16_t(base_port + node));
    net.SetPeer(BackupServiceId(node), "127.0.0.1",
                uint16_t(base_port + 100 + node));
  }

  // Create the stream over the wire (retry while the server comes up).
  rpc::CreateStreamRequest create;
  create.name = "wired";
  create.options.num_streamlets = 2;
  create.options.replication_factor = 2;
  rpc::Writer body;
  create.Encode(body);
  auto frame = rpc::Frame(rpc::Opcode::kCreateStream, body);
  Result<std::vector<std::byte>> raw =
      Status(StatusCode::kUnavailable, "not attempted");
  for (int attempt = 0; attempt < 50; ++attempt) {
    raw = net.Call(kCoordinatorNode, frame);
    if (raw.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!raw.ok()) {
    std::fprintf(stderr, "create stream: %s\n",
                 raw.status().ToString().c_str());
    return 1;
  }
  rpc::Reader r(*raw);
  auto created = rpc::CreateStreamResponse::Decode(r);
  if (!created.ok() || created->status != StatusCode::kOk) {
    std::fprintf(stderr, "create stream rejected\n");
    return 1;
  }
  std::printf("created stream 'wired' (id %llu) over TCP\n",
              (unsigned long long)created->info.stream);

  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "wired";
  pc.chunk_size = 1024;
  Producer producer(pc, net);
  if (!producer.Connect().ok()) {
    std::fprintf(stderr, "producer connect failed\n");
    return 1;
  }
  constexpr int kRecords = 5000;
  for (int i = 0; i < kRecords; ++i) {
    std::string value = "wire-" + std::to_string(i);
    auto s = producer.Send(
        {reinterpret_cast<const std::byte*>(value.data()), value.size()});
    if (!s.ok()) {
      std::fprintf(stderr, "send: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!producer.Close().ok()) {
    std::fprintf(stderr, "producer close failed\n");
    return 1;
  }
  auto pstats = producer.GetStats();
  std::printf("produced %llu records in %llu requests\n",
              (unsigned long long)pstats.records_sent,
              (unsigned long long)pstats.requests_sent);

  ConsumerConfig cc;
  cc.stream = "wired";
  Consumer consumer(cc, net);
  if (!consumer.Connect().ok()) {
    std::fprintf(stderr, "consumer connect failed\n");
    return 1;
  }
  size_t received = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    received += consumer.PollBlocking(256).size();
  }
  consumer.Close();
  std::printf("consumed %zu/%d records over TCP\n", received, kRecords);

  auto stats = net.GetStats();
  std::printf("client transport: %llu request frames, %llu vectored sends, "
              "%llu connections, %llu bytes sent\n",
              (unsigned long long)stats.frames_sent,
              (unsigned long long)stats.sendmsg_calls,
              (unsigned long long)stats.connections_opened,
              (unsigned long long)stats.bytes_sent);
  net.Shutdown();
  return received == kRecords ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t base_port = 7400;
  if (argc >= 3) base_port = uint16_t(std::atoi(argv[2]));
  if (argc >= 2 && std::strcmp(argv[1], "--server") == 0) {
    return RunServer(base_port);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--client") == 0) {
    return RunClient(base_port);
  }

  // No role: fork the server and run the client against it.
  pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    std::exit(RunServer(base_port));
  }
  int rc = RunClient(base_port);
  kill(child, SIGTERM);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);
  return rc;
}
