// Bounded stream as an object (§IV.A: "An object is simply represented as
// a bounded stream"): write a finite dataset, seal it, and let a consumer
// read it to a definite end-of-stream — the unified ingestion/storage API
// KerA puts over both streaming and batch data.
//
//   $ ./example_bounded_object
#include <cstdio>
#include <string>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

using namespace kera;

int main() {
  MiniClusterConfig cluster_config;
  cluster_config.nodes = 3;
  cluster_config.workers_per_node = 2;
  MiniCluster cluster(cluster_config);

  rpc::StreamOptions options;
  options.num_streamlets = 2;
  options.replication_factor = 3;
  if (!cluster.coordinator().CreateStream("dataset-v1", options).ok()) {
    return 1;
  }

  // Write the object's content.
  constexpr int kRecords = 2000;
  ProducerConfig pc;
  pc.producer_id = 1;
  pc.stream = "dataset-v1";
  pc.chunk_size = 1024;
  Producer producer(pc, cluster.network());
  if (!producer.Connect().ok()) return 1;
  for (int i = 0; i < kRecords; ++i) {
    std::string row = "row," + std::to_string(i) + "," +
                      std::to_string(i * i);
    if (!producer
             .Send({reinterpret_cast<const std::byte*>(row.data()),
                    row.size()})
             .ok()) {
      return 1;
    }
  }
  if (!producer.Close().ok()) return 1;

  // Seal: the stream becomes an immutable, durably replicated object.
  if (!cluster.coordinator().SealStream("dataset-v1").ok()) return 1;
  std::printf("wrote and sealed object 'dataset-v1' (%d rows, 3 copies)\n",
              kRecords);

  // Appends are now rejected.
  Producer late(pc, cluster.network());
  if (late.Connect().ok()) {
    std::string row = "too late";
    (void)late.Send(
        {reinterpret_cast<const std::byte*>(row.data()), row.size()});
    bool rejected = !late.Flush().ok();
    std::printf("append after seal: %s\n",
                rejected ? "rejected (as expected)" : "ACCEPTED (bug!)");
    (void)late.Close();
  }

  // A batch-style reader consumes the whole object and terminates at
  // end-of-stream — no tail polling.
  ConsumerConfig cc;
  cc.stream = "dataset-v1";
  Consumer consumer(cc, cluster.network());
  if (!consumer.Connect().ok()) return 1;
  size_t rows = 0;
  while (!consumer.Finished()) {
    rows += consumer.PollBlocking(256).size();
  }
  rows += consumer.Poll(100000).size();  // drain the buffer
  consumer.Close();
  std::printf("batch reader consumed %zu rows and saw end-of-stream\n",
              rows);
  return rows == kRecords ? 0 : 1;
}
