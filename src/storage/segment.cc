#include "storage/segment.h"

#include <cassert>
#include <cstring>

#include "wire/layout.h"

namespace kera {

Segment::Segment(Buffer buf, StreamId stream, StreamletId streamlet,
                 GroupId group, SegmentId id)
    : buf_(std::move(buf)),
      stream_(stream),
      streamlet_(streamlet),
      group_(group),
      id_(id) {
  assert(buf_.capacity() > kSegmentHeaderSize);
  assert(buf_.empty());
  size_t off = buf_.Reserve(kSegmentHeaderSize);
  (void)off;
  assert(off == 0);
  std::byte* p = buf_.data();
  wire::StoreU64(p + 0, stream_);
  wire::StoreU32(p + 8, streamlet_);
  wire::StoreU32(p + 12, group_);
  wire::StoreU32(p + 16, id_);
  wire::StoreU32(p + 20, 0);
}

Result<uint32_t> Segment::AppendChunk(std::span<const std::byte> chunk_bytes) {
  if (closed()) {
    return Status(StatusCode::kSegmentClosed, "append to closed segment");
  }
  // Appends are serialized by the owning group's lock; the atomic head is
  // the publication point for concurrent readers.
  size_t off = buf_.Append(chunk_bytes);
  if (off == SIZE_MAX) {
    return Status(StatusCode::kNoSpace, "segment full");
  }
  head_.store(uint32_t(off + chunk_bytes.size()), std::memory_order_release);
  return uint32_t(off);
}

Result<ChunkView> Segment::ChunkAt(uint32_t offset) const {
  uint32_t h = head();
  if (offset < kSegmentHeaderSize || offset >= h) {
    return Status(StatusCode::kOutOfRange, "chunk offset out of range");
  }
  return ChunkView::Parse({buf_.data() + offset, h - offset});
}

void Segment::AdvanceDurableHead(uint32_t offset) {
  // Monotonic max; replication acks can arrive out of order across vlogs
  // but each chunk's completion advances its own segment's durable head.
  uint32_t cur = durable_head_.load(std::memory_order_relaxed);
  while (offset > cur && !durable_head_.compare_exchange_weak(
                             cur, offset, std::memory_order_release,
                             std::memory_order_relaxed)) {
  }
}

}  // namespace kera
