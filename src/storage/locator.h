// ChunkLocator: where a chunk physically lives. Produced by group appends,
// stored in the group's lightweight offset index, and referenced by
// virtual segments for replication.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace kera {

class Segment;

struct ChunkLocator {
  Segment* segment = nullptr;  // non-owning; valid until the group is trimmed
  GroupId group = 0;
  SegmentId segment_id = 0;
  uint32_t offset = 0;  // byte offset of the chunk header within the segment
  uint32_t length = 0;  // total chunk bytes (header + payload)
  uint64_t group_chunk_index = 0;  // position of the chunk within its group
  uint32_t record_count = 0;       // records in this chunk
  uint64_t first_record_offset = 0;  // group-relative offset of record 0
};

/// Resolution of a group-relative record offset (the paper's lightweight
/// offset indexing: one locator per chunk, record position derived).
struct RecordLocation {
  ChunkLocator chunk;
  uint32_t record_within_chunk = 0;
};

}  // namespace kera
