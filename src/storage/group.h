// Group: a fixed-size sub-partition — a bounded sequence of segments plus
// a lightweight offset index (one locator per chunk). Groups are created
// dynamically as data arrives; a full group is closed (immutable) and a
// new one opens. Each group is the unit of consumer assignment and of
// trimming.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "storage/locator.h"
#include "storage/memory_manager.h"
#include "storage/segment.h"

namespace kera {

class Group {
 public:
  Group(MemoryManager& memory, StreamId stream, StreamletId streamlet,
        GroupId id, uint32_t max_segments);

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  /// Appends a chunk, rolling to a new segment when the open one is full.
  /// Returns kNoSpace when the group has exhausted its segment quota (the
  /// caller closes this group and opens a new one); kNoSpace from the
  /// MemoryManager propagates as backpressure. Assigns the chunk's
  /// [group, segment, index] attributes in place after the copy.
  /// Not thread-safe: callers serialize per active-group slot.
  Result<ChunkLocator> AppendChunk(std::span<const std::byte> chunk_bytes);

  /// Marks the group immutable.
  void Close();
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] GroupId id() const { return id_; }
  [[nodiscard]] uint64_t chunk_count() const {
    return chunk_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] uint64_t durable_chunk_count() const {
    return durable_chunks_.load(std::memory_order_acquire);
  }

  /// Marks chunk `index` durably replicated and advances the durable
  /// prefix. Thread-safe with respect to appends and reads.
  void MarkChunkDurable(uint64_t index);

  /// Copies locators for chunks [start, start+limit) that are below the
  /// durable prefix (consumers must not see unreplicated data). Returns
  /// the locators actually available.
  [[nodiscard]] std::vector<ChunkLocator> GetDurableChunks(
      uint64_t start, uint64_t limit, size_t max_bytes) const;

  /// Locator for a single chunk (must be < chunk_count()).
  [[nodiscard]] ChunkLocator GetChunk(uint64_t index) const;

  /// Total records appended / durably replicated in this group.
  [[nodiscard]] uint64_t record_count() const {
    return record_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] uint64_t durable_record_count() const;

  /// Resolves a group-relative record offset to its chunk and position
  /// within the chunk (the lightweight offset index: binary search over
  /// per-chunk cumulative record counts; no per-record metadata).
  /// kOutOfRange beyond the durable record count.
  [[nodiscard]] Result<RecordLocation> LocateRecord(
      uint64_t record_offset) const;

  /// Number of live segments.
  [[nodiscard]] size_t segment_count() const;

  /// Segment by id (0-based creation order); nullptr when out of range or
  /// the group was trimmed. Segment objects live until Trim, so the tiered
  /// store may hold the pointer across pump passes (it drops candidates in
  /// the pre-trim hook).
  [[nodiscard]] Segment* GetSegment(SegmentId id) const;

  /// Releases all segment buffers back to the memory manager. Only valid
  /// on a closed group whose chunks are all durable; afterwards locators
  /// into this group are invalid.
  Status Trim();
  [[nodiscard]] bool trimmed() const {
    return trimmed_.load(std::memory_order_acquire);
  }

  /// Bytes currently buffered in this group's segments.
  [[nodiscard]] size_t bytes_in_use() const;

 private:
  MemoryManager& memory_;
  const StreamId stream_;
  const StreamletId streamlet_;
  const GroupId id_;
  const uint32_t max_segments_;

  mutable SpinLock mu_;  // guards segments_ growth and index_ growth
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<ChunkLocator> index_;   // the lightweight offset index
  std::vector<uint8_t> durable_flags_;

  std::atomic<uint64_t> chunk_count_{0};
  std::atomic<uint64_t> durable_chunks_{0};
  std::atomic<uint64_t> record_count_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> trimmed_{false};
};

}  // namespace kera
