// Segment memory manager: a bounded pool of fixed-size segment buffers.
// Brokers and backups acquire buffers for active segments and release them
// when a group is trimmed (durably replicated and consumed) or flushed.
// Bounding the pool is what lets long simulations and soak tests run in
// constant memory, mirroring a real broker's configured memory budget.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace kera {

class MemoryManager {
 public:
  /// `total_bytes` is the memory budget; `segment_size` the fixed buffer
  /// size. At most total_bytes/segment_size segments exist at once.
  MemoryManager(size_t total_bytes, size_t segment_size);

  /// Acquires a cleared segment buffer; kNoSpace when the budget is
  /// exhausted (callers surface backpressure to producers).
  Result<Buffer> Acquire();

  /// Returns a buffer to the pool.
  void Release(Buffer buf);

  [[nodiscard]] size_t segment_size() const { return segment_size_; }
  [[nodiscard]] size_t max_segments() const { return max_segments_; }
  [[nodiscard]] size_t in_use() const;
  [[nodiscard]] size_t pooled() const;

  /// Memory observability: what the pool has handed out, its high-water
  /// mark, and the resident footprint (outstanding buffers; pooled ones
  /// are reusable slack counted separately).
  struct Stats {
    uint64_t buffers_outstanding = 0;
    uint64_t buffers_pooled = 0;
    uint64_t buffers_created = 0;
    uint64_t peak_outstanding = 0;
    uint64_t bytes_resident = 0;  // outstanding * segment_size
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  const size_t segment_size_;
  const size_t max_segments_;
  mutable std::mutex mu_;
  std::vector<Buffer> free_list_;
  size_t outstanding_ = 0;  // buffers handed out and not yet released
  size_t created_ = 0;      // total buffers ever created (lazily, on demand)
  size_t peak_outstanding_ = 0;
};

}  // namespace kera
