// Broker-side stream object: the subset of a stream's streamlets hosted on
// one broker, plus the stream's storage configuration.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "storage/streamlet.h"

namespace kera {

class Stream {
 public:
  Stream(MemoryManager& memory, StorageConfig config, StreamId id,
         std::string name);

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Instantiates storage for a streamlet this broker leads.
  Streamlet* AddStreamlet(StreamletId id);

  [[nodiscard]] Streamlet* GetStreamlet(StreamletId id) const;
  [[nodiscard]] std::vector<StreamletId> StreamletIds() const;

  [[nodiscard]] StreamId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const StorageConfig& config() const { return config_; }

  /// Seals every streamlet (bounded stream / object).
  void Seal();

  [[nodiscard]] size_t bytes_in_use() const;

 private:
  MemoryManager& memory_;
  const StorageConfig config_;
  const StreamId id_;
  const std::string name_;

  mutable SpinLock mu_;
  std::map<StreamletId, std::unique_ptr<Streamlet>> streamlets_;
};

}  // namespace kera
