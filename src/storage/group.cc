#include "storage/group.h"

#include <algorithm>
#include <cassert>

#include "wire/chunk.h"

namespace kera {

Group::Group(MemoryManager& memory, StreamId stream, StreamletId streamlet,
             GroupId id, uint32_t max_segments)
    : memory_(memory),
      stream_(stream),
      streamlet_(streamlet),
      id_(id),
      max_segments_(max_segments) {
  assert(max_segments_ > 0);
}

Result<ChunkLocator> Group::AppendChunk(
    std::span<const std::byte> chunk_bytes) {
  if (closed()) {
    return Status(StatusCode::kSegmentClosed, "append to closed group");
  }
  Segment* seg = nullptr;
  {
    std::lock_guard<SpinLock> lock(mu_);
    if (!segments_.empty()) seg = segments_.back().get();
  }

  uint32_t offset = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (seg != nullptr) {
      auto r = seg->AppendChunk(chunk_bytes);
      if (r.ok()) {
        offset = *r;
        break;
      }
      if (r.status().code() != StatusCode::kNoSpace) return r.status();
      // Segment full: close it and roll over.
      seg->Close();
      seg = nullptr;
    }
    if (attempt == 1) {
      return Status(StatusCode::kInternal, "chunk larger than a segment");
    }
    // Open a new segment if the quota allows.
    size_t count;
    {
      std::lock_guard<SpinLock> lock(mu_);
      count = segments_.size();
    }
    if (count >= max_segments_) {
      return Status(StatusCode::kNoSpace, "group segment quota exhausted");
    }
    auto buf = memory_.Acquire();
    if (!buf.ok()) return buf.status();
    auto fresh = std::make_unique<Segment>(std::move(buf).value(), stream_,
                                           streamlet_, id_,
                                           SegmentId(count));
    seg = fresh.get();
    std::lock_guard<SpinLock> lock(mu_);
    segments_.push_back(std::move(fresh));
  }

  ChunkLocator loc;
  loc.segment = seg;
  loc.group = id_;
  loc.segment_id = seg->id();
  loc.offset = offset;
  loc.length = uint32_t(chunk_bytes.size());
  if (auto view = ChunkView::Parse(chunk_bytes); view.ok()) {
    loc.record_count = view->record_count();
  }  // callers validate frames; an unparsable chunk indexes 0 records

  uint64_t index;
  {
    std::lock_guard<SpinLock> lock(mu_);
    index = index_.size();
    loc.group_chunk_index = index;
    loc.first_record_offset = record_count_.load(std::memory_order_relaxed);
    index_.push_back(loc);
    durable_flags_.push_back(0);
    record_count_.store(loc.first_record_offset + loc.record_count,
                        std::memory_order_release);
  }
  // Stamp the broker-assigned attributes into the stored copy (used at
  // recovery to reconstruct the group consistently).
  AssignChunkAttrs(seg->MutableChunkAt(loc.offset, loc.length), id_,
                   loc.segment_id, index);
  chunk_count_.store(index + 1, std::memory_order_release);
  return loc;
}

void Group::Close() {
  std::lock_guard<SpinLock> lock(mu_);
  closed_.store(true, std::memory_order_release);
  if (!segments_.empty()) segments_.back()->Close();
}

void Group::MarkChunkDurable(uint64_t index) {
  std::lock_guard<SpinLock> lock(mu_);
  if (index >= durable_flags_.size()) return;
  durable_flags_[index] = 1;
  // Advance the contiguous durable prefix.
  uint64_t durable = durable_chunks_.load(std::memory_order_relaxed);
  while (durable < durable_flags_.size() && durable_flags_[durable]) {
    ++durable;
  }
  durable_chunks_.store(durable, std::memory_order_release);
}

std::vector<ChunkLocator> Group::GetDurableChunks(uint64_t start,
                                                  uint64_t limit,
                                                  size_t max_bytes) const {
  std::vector<ChunkLocator> out;
  size_t bytes = 0;
  std::lock_guard<SpinLock> lock(mu_);
  uint64_t durable = durable_chunks_.load(std::memory_order_acquire);
  // A trimmed group has released its segments; nothing is readable.
  if (durable > index_.size()) durable = index_.size();
  if (start >= durable) return out;
  for (uint64_t i = start; i < durable && out.size() < limit; ++i) {
    const ChunkLocator& loc = index_[size_t(i)];
    if (!out.empty() && bytes + loc.length > max_bytes) break;
    bytes += loc.length;
    out.push_back(loc);
  }
  return out;
}

ChunkLocator Group::GetChunk(uint64_t index) const {
  std::lock_guard<SpinLock> lock(mu_);
  assert(index < index_.size());
  return index_[size_t(index)];
}

size_t Group::segment_count() const {
  std::lock_guard<SpinLock> lock(mu_);
  return segments_.size();
}

Segment* Group::GetSegment(SegmentId id) const {
  std::lock_guard<SpinLock> lock(mu_);
  return id < segments_.size() ? segments_[id].get() : nullptr;
}

uint64_t Group::durable_record_count() const {
  std::lock_guard<SpinLock> lock(mu_);
  uint64_t durable = durable_chunks_.load(std::memory_order_acquire);
  if (durable > index_.size()) durable = index_.size();
  if (durable == 0) return 0;
  const ChunkLocator& last = index_[size_t(durable - 1)];
  return last.first_record_offset + last.record_count;
}

Result<RecordLocation> Group::LocateRecord(uint64_t record_offset) const {
  std::lock_guard<SpinLock> lock(mu_);
  uint64_t durable = durable_chunks_.load(std::memory_order_acquire);
  if (durable > index_.size()) durable = index_.size();
  if (durable == 0) {
    return Status(StatusCode::kOutOfRange, "no durable records");
  }
  const ChunkLocator& last = index_[size_t(durable - 1)];
  if (record_offset >= last.first_record_offset + last.record_count) {
    return Status(StatusCode::kOutOfRange, "beyond the durable head");
  }
  // Binary search over cumulative record counts: the last chunk with
  // first_record_offset <= record_offset.
  auto it = std::upper_bound(
      index_.begin(), index_.begin() + long(durable), record_offset,
      [](uint64_t off, const ChunkLocator& loc) {
        return off < loc.first_record_offset;
      });
  assert(it != index_.begin());
  --it;
  RecordLocation out;
  out.chunk = *it;
  out.record_within_chunk = uint32_t(record_offset - it->first_record_offset);
  return out;
}

Status Group::Trim() {
  std::lock_guard<SpinLock> lock(mu_);
  if (!closed_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kInvalidArgument, "trim of open group");
  }
  if (durable_chunks_.load(std::memory_order_acquire) != index_.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "trim of group with unreplicated chunks");
  }
  for (auto& seg : segments_) {
    Buffer buf = std::move(*seg).TakeBuffer();
    // An evicted segment's payload lives in the spill log; its buffer went
    // back to the pool at eviction time and this one is a detached husk.
    if (buf.capacity() > 0) memory_.Release(std::move(buf));
  }
  segments_.clear();
  index_.clear();
  trimmed_.store(true, std::memory_order_release);
  return OkStatus();
}

size_t Group::bytes_in_use() const {
  std::lock_guard<SpinLock> lock(mu_);
  size_t total = 0;
  for (const auto& seg : segments_) {
    if (!seg->evicted()) total += seg->head();
  }
  return total;
}

}  // namespace kera
