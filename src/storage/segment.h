// Physical segment: fixed-size append-only buffer holding chunks
// back-to-back after a small self-describing header. The layout is the
// same in memory and on disk (paper §IV.A), so backups flush segments with
// a single write and recovery re-parses them directly.
//
// On-buffer layout:
//   u64 stream_id | u32 streamlet_id | u32 group_id | u32 segment_id |
//   u32 reserved  (24-byte header)
//   chunk*        (each: 56-byte chunk header + payload)
//
// Two heads are tracked per segment (paper §IV.B): `head` is the next free
// offset; `durable_head` points past the last byte whose chunk has been
// durably replicated — consumers may only read below durable_head.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "common/buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "wire/chunk.h"

namespace kera {

inline constexpr size_t kSegmentHeaderSize = 24;

class Segment {
 public:
  /// Takes ownership of `buf` (from the MemoryManager) and writes the
  /// segment header. The buffer must be empty and larger than the header.
  Segment(Buffer buf, StreamId stream, StreamletId streamlet, GroupId group,
          SegmentId id);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Appends a full chunk (header + payload). Returns the byte offset of
  /// the chunk within the segment, or kNoSpace when it does not fit (the
  /// caller rolls over to a new segment and closes this one).
  Result<uint32_t> AppendChunk(std::span<const std::byte> chunk_bytes);

  /// Mutable bytes of the chunk at `offset` (for broker-side attribute
  /// assignment after the copy-in).
  [[nodiscard]] std::span<std::byte> MutableChunkAt(uint32_t offset,
                                                    uint32_t length) {
    return {buf_.data() + offset, length};
  }

  /// Parses the chunk at byte offset `offset`.
  [[nodiscard]] Result<ChunkView> ChunkAt(uint32_t offset) const;

  /// Raw bytes [offset, offset+length) for zero-copy replication gather.
  [[nodiscard]] std::span<const std::byte> Bytes(uint32_t offset,
                                                 uint32_t length) const {
    return {buf_.data() + offset, length};
  }

  void Close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] uint32_t head() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] uint32_t durable_head() const {
    return durable_head_.load(std::memory_order_acquire);
  }

  /// Advances the durable head monotonically (called by the virtual log
  /// when the chunk ending at `offset` has been replicated everywhere).
  void AdvanceDurableHead(uint32_t offset);

  [[nodiscard]] StreamId stream_id() const { return stream_; }
  [[nodiscard]] StreamletId streamlet_id() const { return streamlet_; }
  [[nodiscard]] GroupId group_id() const { return group_; }
  [[nodiscard]] SegmentId id() const { return id_; }
  [[nodiscard]] size_t capacity() const { return buf_.capacity(); }
  [[nodiscard]] size_t remaining() const { return buf_.capacity() - head(); }

  /// Whole written prefix (header + chunks), e.g. for flushing to disk.
  [[nodiscard]] std::span<const std::byte> View() const {
    return {buf_.data(), head()};
  }

  /// Releases the underlying buffer back to the caller (for trimming).
  /// Empty (capacity 0) if the payload was evicted to the spill tier.
  Buffer TakeBuffer() && { return std::move(buf_); }

  // ----- tiered-memory eviction handshake --------------------------------
  //
  // Readers that hand out spans aliasing buf_ (zero-copy consume) pin the
  // segment for the life of the response; the evictor detaches buf_ only
  // when no pins are held. Both sides use seq_cst so the two flag/counter
  // pairs order like Dekker's algorithm: a reader either sees `evicted`
  // and takes the cold path, or its pin is visible to the evictor, which
  // then rolls back. Spilling the payload to disk BEFORE TryEvict makes
  // the race benign — a reader losing it re-reads from the spill log.

  /// Pins the segment against eviction. False if already evicted (caller
  /// falls back to the cold-read cache).
  [[nodiscard]] bool TryPinRead() {
    read_pins_.fetch_add(1, std::memory_order_seq_cst);
    if (evicted_.load(std::memory_order_seq_cst)) {
      read_pins_.fetch_sub(1, std::memory_order_seq_cst);
      return false;
    }
    return true;
  }
  void UnpinRead() { read_pins_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Marks the segment evicted unless a reader holds a pin; on success the
  /// caller owns the transition and must DetachBuffer(). Only sealed,
  /// fully durable segments are eligible (the caller checks).
  [[nodiscard]] bool TryEvict() {
    evicted_.store(true, std::memory_order_seq_cst);
    if (read_pins_.load(std::memory_order_seq_cst) != 0) {
      evicted_.store(false, std::memory_order_seq_cst);
      return false;
    }
    return true;
  }

  /// After a successful TryEvict: releases the payload buffer to the
  /// caller (for return to the MemoryManager). head/durable_head/metadata
  /// stay valid so chunk locators keep describing the spilled layout.
  Buffer DetachBuffer() { return std::move(buf_); }

  [[nodiscard]] bool evicted() const {
    return evicted_.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] uint32_t read_pins() const {
    return read_pins_.load(std::memory_order_seq_cst);
  }

 private:
  Buffer buf_;
  const StreamId stream_;
  const StreamletId streamlet_;
  const GroupId group_;
  const SegmentId id_;
  std::atomic<uint32_t> head_{kSegmentHeaderSize};
  std::atomic<uint32_t> durable_head_{kSegmentHeaderSize};
  std::atomic<bool> closed_{false};
  std::atomic<bool> evicted_{false};
  std::atomic<uint32_t> read_pins_{0};
};

}  // namespace kera
