// SegmentLog: the backup service's log-structured on-disk store
// (ROADMAP item 1; logstor/LogBase-style). Replicated-segment payloads
// and their forward-mapping metadata live in the SAME append-only log:
// large log files (`log_file_bytes`) hold self-describing, CRC32C-framed
// records — segment open, append (with chunk payload), seal, truncate and
// evacuate — so a cold restart rebuilds the entire copy map by scanning
// the log alone; there are no sidecar index files to desynchronize.
//
// Write path: producers of records (the Backup RPC handlers) only enqueue;
// a group-commit flusher drains the WHOLE queue per wakeup, coalesces the
// pending records into one vectored write per target log file, and issues
// a single fsync per group — turning the flush path from O(segments)
// fsyncs into O(groups). Each enqueue returns a monotone ticket;
// `DurableTicket()` is the group-commit watermark (a ticket at or below it
// is on disk), and `Sync()` forces everything enqueued so far down.
//
// Restart: files are scanned in id order; a record whose magic, header
// CRC, payload length or payload CRC does not check out ends that file —
// the torn tail is physically truncated (power loss tears at most the
// last group) and scanning continues with the next file. Rebuild is
// order-independent: appends populate a sparse offset->extent map,
// truncates clip, one seal per copy wins, evacuates drop the copy.
//
// GC: sealed-then-evacuated copies leave dead records behind. A hot-cold
// collector picks the non-active log file with the lowest live ratio
// (below `gc_live_ratio`), copies the surviving copies' extents and
// metadata forward into a dedicated COLD file (relocated-once data is
// cold by definition and stays separate from the hot append head), then
// unlinks the victim. Crash-safe: the victim dies only after the cold
// file is fsynced; a crash in between leaves idempotent duplicates.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/file.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/storage_config.h"

namespace kera {

struct SegmentLogOptions {
  /// Target size of one append-only log file; a record that would overflow
  /// the active file rolls over to a fresh one.
  size_t log_file_bytes = StorageConfig{}.backup_log_file_bytes;
  /// Group-commit pacing: the flusher wakes when this much is queued...
  size_t flush_batch_bytes = StorageConfig{}.backup_flush_batch_bytes;
  /// ...or when the oldest queued record has waited this long.
  uint64_t flush_interval_us = StorageConfig{}.backup_flush_interval_us;
  /// GC a non-active log file once its live ratio drops below this;
  /// 0 disables GC (the chaos power-loss mode needs byte-deterministic
  /// disk state, which background compaction would perturb).
  double gc_live_ratio = StorageConfig{}.backup_gc_live_ratio;
};

class SegmentLog {
 public:
  /// Identity of one stored segment copy. The log is shared by two tiers:
  /// backups key replicated virtual-segment copies as (primary NodeId,
  /// vlog, virtual segment id); brokers key spilled physical segments as
  /// (StreamId, streamlet, group<<32 | segment id). `primary` is 64-bit so
  /// both namespaces fit without truncation.
  struct CopyKey {
    uint64_t primary = 0;
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
    auto operator<=>(const CopyKey&) const = default;
  };

  // ----- on-disk record framing (exposed for the torn-write tests) -------

  enum class RecordType : uint8_t {
    kOpen = 1,      // copy exists (first touch)
    kAppend = 2,    // payload bytes at `offset`
    kSeal = 3,      // copy final: size=`offset`, chunk_count, crc_after
    kTruncate = 4,  // copy clipped to `offset` (evacuation surplus disowned)
    kEvacuate = 5,  // copy dropped (primary recovered elsewhere)
  };

  static constexpr uint32_t kRecordMagic = 0x474F4C4Bu;  // "KLOG"
  static constexpr size_t kRecordHeaderSize = 56;

  struct RecordHeader {
    RecordType type = RecordType::kOpen;
    uint64_t primary = 0;
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
    /// kAppend: segment offset of the payload; kSeal/kTruncate: the copy's
    /// resulting size. Unused otherwise.
    uint64_t offset = 0;
    /// kAppend: chunks in this payload; kSeal/kTruncate: the copy's total.
    uint32_t chunk_count = 0;
    /// Running virtual-segment checksum after this record applies.
    uint32_t crc_after = 0;
    uint32_t payload_len = 0;
    uint32_t payload_crc = 0;  // CRC32C of the payload bytes
  };

  static void EncodeRecordHeader(const RecordHeader& h,
                                 std::byte out[kRecordHeaderSize]);
  /// false: bad magic or header CRC (i.e. torn/corrupt framing).
  [[nodiscard]] static bool DecodeRecordHeader(std::span<const std::byte> in,
                                               RecordHeader& out);

  // ----- lifecycle -------------------------------------------------------

  /// Creates the directory if needed, scans existing log files (torn tails
  /// truncated), rebuilds the copy map, and starts the flusher thread.
  explicit SegmentLog(std::string dir, SegmentLogOptions options = {});
  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  /// Sticky IO-error state: once a write/fsync fails, the durable ticket
  /// stops advancing and every Sync/WaitDurable reports the error.
  [[nodiscard]] Status status() const;

  // ----- write path (enqueue; returns the group-commit ticket) -----------

  uint64_t EnqueueOpen(const CopyKey& key);
  uint64_t EnqueueAppend(const CopyKey& key, uint64_t start_offset,
                         std::span<const std::byte> payload,
                         uint32_t chunk_count, uint32_t crc_after);
  uint64_t EnqueueSeal(const CopyKey& key, uint64_t final_size,
                       uint32_t chunk_count, uint32_t crc_after);
  uint64_t EnqueueTruncate(const CopyKey& key, uint64_t new_size,
                           uint32_t chunk_count, uint32_t crc_after);
  uint64_t EnqueueEvacuate(const CopyKey& key);

  [[nodiscard]] uint64_t DurableTicket() const;
  /// Flushes everything enqueued so far (one forced group).
  [[nodiscard]] Status Sync();
  [[nodiscard]] Status WaitDurable(uint64_t ticket);

  // ----- read path -------------------------------------------------------

  /// Assembles a copy's durable payload [0, size) from its extents,
  /// verifying each extent's CRC. kNotFound: unknown copy or a log file
  /// vanished; kCorruption: extent bytes fail their recorded CRC.
  [[nodiscard]] Status ReadSegment(const CopyKey& key,
                                   std::vector<std::byte>& out) const;

  /// Variant for callers with pooled buffers (the broker's cold-read
  /// cache): assembles the durable prefix into `out`, setting `size` to
  /// the bytes produced. kNoSpace if the copy exceeds out.size().
  [[nodiscard]] Status ReadSegmentInto(const CopyKey& key,
                                       std::span<std::byte> out,
                                       uint64_t& size) const;

  /// Copy map as rebuilt from the log (what a cold-started Backup adopts).
  struct RecoveredCopy {
    CopyKey key;
    uint64_t size = 0;  // contiguous durable prefix
    uint32_t chunk_count = 0;
    uint32_t running_checksum = 0;
    bool sealed = false;
  };
  [[nodiscard]] std::vector<RecoveredCopy> RecoveredCopies() const;

  // ----- GC --------------------------------------------------------------

  /// Runs one GC pass now (the flusher also runs this after each group
  /// when gc_live_ratio > 0). Returns bytes reclaimed.
  uint64_t MaybeGc();

  // ----- stats -----------------------------------------------------------

  struct Stats {
    uint64_t flush_groups = 0;
    uint64_t fsyncs = 0;
    uint64_t bytes_flushed = 0;
    uint64_t records_flushed = 0;
    uint64_t seals_durable = 0;  // incl. seals recovered by the scan
    uint64_t gc_runs = 0;
    uint64_t gc_bytes_reclaimed = 0;
    uint64_t restart_scan_ms = 0;
    uint64_t restart_torn_records = 0;  // records dropped by tail truncation
    uint64_t log_files = 0;             // current file count
    uint64_t log_bytes = 0;             // current physical bytes
  };
  [[nodiscard]] Stats GetStats() const;

  // ----- power-loss simulation (chaos harness) ---------------------------

  /// Total bytes across the directory's log files, in file-id order.
  [[nodiscard]] static uint64_t TotalLogBytes(const std::string& dir);
  /// Simulated power loss: truncates the directory's logs at cumulative
  /// byte `offset` (file-id order) — the containing file is ftruncated,
  /// every later file unlinked. Call only with no live SegmentLog on dir.
  [[nodiscard]] static Status TruncateLogsAt(const std::string& dir,
                                             uint64_t offset);

 private:
  struct Extent {
    uint32_t file = 0;       // log file id holding the payload
    uint64_t pos = 0;        // payload position within that file
    uint32_t len = 0;        // payload length
    uint32_t chunk_count = 0;
    uint32_t crc_after = 0;  // running checksum after this extent
    uint32_t payload_crc = 0;
  };

  struct Copy {
    std::map<uint64_t, Extent> extents;  // segment offset -> durable extent
    uint64_t truncate_size = UINT64_MAX;
    uint32_t truncate_chunks = 0;
    uint32_t truncate_crc = 0;
    bool sealed = false;
    uint64_t seal_size = 0;
    uint32_t seal_chunks = 0;
    uint32_t seal_crc = 0;
    /// Bytes of log records (headers + payloads) this copy occupies per
    /// log file — the unit of GC live accounting and relocation.
    std::map<uint32_t, uint64_t> record_bytes;
  };

  struct LogFile {
    uint64_t size = 0;        // bytes written (assigned) so far
    uint64_t dead_bytes = 0;  // records of evacuated copies
    /// Records assigned by the placement step but not yet written+synced;
    /// such a file must not be a GC victim.
    uint32_t pending_io = 0;
    std::set<CopyKey> keys;   // live copies with records in this file
  };

  struct PendingRecord {
    RecordHeader header;
    std::vector<std::byte> payload;  // owned: the source may mutate/evict
    uint64_t ticket = 0;
  };

  [[nodiscard]] std::string FilePathFor(uint32_t file_id) const;
  uint64_t Enqueue(const RecordHeader& h, std::span<const std::byte> payload);
  void FlusherLoop();
  /// Flushes one group (everything pending). Caller holds no lock.
  void FlushGroup();
  void ScanOnStartup();
  /// Applies one decoded record to the copy map (scan and flush share it).
  void ApplyRecord(const RecordHeader& h, uint32_t file_id,
                   uint64_t payload_pos);
  /// Contiguous durable prefix of a copy: size, chunks, crc. Locked.
  void ContiguousPrefix(const Copy& c, uint64_t& size, uint32_t& chunks,
                        uint32_t& crc) const;
  /// Assembles [0, size) of a copy into `out`, verifying extent CRCs.
  /// Caller holds mu_ and has bounded `size` via ContiguousPrefix.
  [[nodiscard]] Status ReadExtentsLocked(const Copy& c,
                                         std::span<std::byte> out,
                                         uint64_t size) const;
  void NoteIoError(const Status& s);
  uint64_t GcLocked(std::unique_lock<std::mutex>& lock);

  const std::string dir_;
  const SegmentLogOptions options_;

  mutable std::mutex mu_;
  std::condition_variable flusher_cv_;   // wakes the flusher
  std::condition_variable durable_cv_;   // wakes Sync/WaitDurable waiters
  std::map<CopyKey, Copy> copies_;
  std::map<uint32_t, LogFile> files_;
  uint32_t active_file_ = 0;   // hot append head (0 = none yet)
  uint32_t cold_file_ = 0;     // GC relocation target (0 = none yet)
  uint32_t next_file_id_ = 1;

  std::deque<PendingRecord> pending_;
  size_t pending_bytes_ = 0;
  uint64_t pending_oldest_us_ = 0;  // steady-clock stamp of oldest record
  uint64_t next_ticket_ = 1;
  uint64_t durable_ticket_ = 0;
  bool sync_requested_ = false;
  bool shutdown_ = false;
  Status error_;  // sticky

  Stats stats_;
  std::thread flusher_;
};

}  // namespace kera
