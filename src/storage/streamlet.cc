#include "storage/streamlet.h"

#include <cassert>

namespace kera {

Streamlet::Streamlet(MemoryManager& memory, const StorageConfig& config,
                     StreamId stream, StreamletId id)
    : memory_(memory),
      config_(config),
      stream_(stream),
      id_(id),
      q_(config.active_groups_per_streamlet) {
  assert(q_ > 0);
  slots_.reserve(q_);
  for (uint32_t i = 0; i < q_; ++i) slots_.push_back(std::make_unique<Slot>());
}

Group* Streamlet::NewGroup() {
  std::lock_guard<SpinLock> lock(groups_mu_);
  GroupId gid = next_group_id_++;
  auto group = std::make_unique<Group>(memory_, stream_, id_, gid,
                                       config_.segments_per_group);
  Group* raw = group.get();
  groups_.emplace(gid, std::move(group));
  return raw;
}

Group* Streamlet::CreateGroupLocked(uint32_t slot) {
  Group* raw = NewGroup();
  slots_[slot]->active = raw;
  return raw;
}

Result<StreamletAppendResult> Streamlet::AppendChunk(
    ProducerId producer, std::span<const std::byte> chunk_bytes) {
  return AppendChunkToSlot(producer % q_, chunk_bytes);
}

Result<StreamletAppendResult> Streamlet::AppendChunkToSlot(
    uint32_t slot_idx, std::span<const std::byte> chunk_bytes) {
  if (slot_idx >= q_) {
    return Status(StatusCode::kInvalidArgument, "bad active-group slot");
  }
  Slot& slot = *slots_[slot_idx];
  std::lock_guard<SpinLock> lock(slot.lock);

  StreamletAppendResult result;
  result.active_slot = slot_idx;

  Group* group = slot.active;
  if (group == nullptr) {
    group = CreateGroupLocked(slot_idx);
    result.opened_new_group = true;
  }
  auto r = group->AppendChunk(chunk_bytes);
  if (!r.ok() && (r.status().code() == StatusCode::kNoSpace ||
                  r.status().code() == StatusCode::kSegmentClosed)) {
    // Group exhausted its segment quota (or was closed/trimmed behind our
    // back, e.g. by an aggressive retention policy): roll to a fresh one.
    group->Close();
    group = CreateGroupLocked(slot_idx);
    result.opened_new_group = true;
    r = group->AppendChunk(chunk_bytes);
  }
  if (!r.ok()) return r.status();
  result.locator = *r;
  result.group = group;
  return result;
}

Result<StreamletAppendResult> Streamlet::AppendRecoveryChunk(
    GroupId original_group, std::span<const std::byte> chunk_bytes) {
  std::lock_guard<SpinLock> lock(recovery_mu_);
  Group* group;
  auto it = recovery_groups_.find(original_group);
  if (it != recovery_groups_.end()) {
    group = it->second;
  } else {
    group = NewGroup();
    recovery_groups_.emplace(original_group, group);
  }
  auto r = group->AppendChunk(chunk_bytes);
  if (!r.ok()) return r.status();
  StreamletAppendResult result;
  result.locator = *r;
  result.group = group;
  result.active_slot = 0;
  return result;
}

Group* Streamlet::GetGroup(GroupId id) const {
  std::lock_guard<SpinLock> lock(groups_mu_);
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : it->second.get();
}

std::vector<GroupId> Streamlet::GroupIds() const {
  std::lock_guard<SpinLock> lock(groups_mu_);
  std::vector<GroupId> ids;
  ids.reserve(groups_.size());
  for (const auto& [id, _] : groups_) ids.push_back(id);
  return ids;
}

GroupId Streamlet::next_group_id() const {
  std::lock_guard<SpinLock> lock(groups_mu_);
  return next_group_id_;
}

void Streamlet::CloseRecoveryGroups() {
  std::lock_guard<SpinLock> lock(recovery_mu_);
  for (auto& [_, group] : recovery_groups_) group->Close();
  recovery_groups_.clear();
}

void Streamlet::SealActiveGroups() {
  for (auto& slot : slots_) {
    std::lock_guard<SpinLock> lock(slot->lock);
    if (slot->active != nullptr) {
      slot->active->Close();
      slot->active = nullptr;
    }
  }
}

size_t Streamlet::TrimBefore(GroupId before_group,
                             const std::function<void(Group*)>& on_trim) {
  std::vector<Group*> candidates;
  {
    std::lock_guard<SpinLock> lock(groups_mu_);
    for (auto& [id, group] : groups_) {
      if (id >= before_group) break;
      if (group->closed() && !group->trimmed() &&
          group->durable_chunk_count() == group->chunk_count()) {
        candidates.push_back(group.get());
      }
    }
  }
  size_t trimmed = 0;
  for (Group* g : candidates) {
    if (on_trim) on_trim(g);
    if (g->Trim().ok()) ++trimmed;
  }
  return trimmed;
}

size_t Streamlet::bytes_in_use() const {
  std::lock_guard<SpinLock> lock(groups_mu_);
  size_t total = 0;
  for (const auto& [_, group] : groups_) total += group->bytes_in_use();
  return total;
}

uint64_t Streamlet::total_chunks() const {
  std::lock_guard<SpinLock> lock(groups_mu_);
  uint64_t total = 0;
  for (const auto& [_, group] : groups_) total += group->chunk_count();
  return total;
}

}  // namespace kera
