#include "storage/stream.h"

namespace kera {

Stream::Stream(MemoryManager& memory, StorageConfig config, StreamId id,
               std::string name)
    : memory_(memory), config_(config), id_(id), name_(std::move(name)) {}

Streamlet* Stream::AddStreamlet(StreamletId id) {
  std::lock_guard<SpinLock> lock(mu_);
  auto it = streamlets_.find(id);
  if (it != streamlets_.end()) return it->second.get();
  auto sl = std::make_unique<Streamlet>(memory_, config_, id_, id);
  Streamlet* raw = sl.get();
  streamlets_.emplace(id, std::move(sl));
  return raw;
}

Streamlet* Stream::GetStreamlet(StreamletId id) const {
  std::lock_guard<SpinLock> lock(mu_);
  auto it = streamlets_.find(id);
  return it == streamlets_.end() ? nullptr : it->second.get();
}

std::vector<StreamletId> Stream::StreamletIds() const {
  std::lock_guard<SpinLock> lock(mu_);
  std::vector<StreamletId> ids;
  ids.reserve(streamlets_.size());
  for (const auto& [id, _] : streamlets_) ids.push_back(id);
  return ids;
}

void Stream::Seal() {
  std::vector<Streamlet*> all;
  {
    std::lock_guard<SpinLock> lock(mu_);
    for (const auto& [_, sl] : streamlets_) all.push_back(sl.get());
  }
  for (Streamlet* sl : all) sl->SealActiveGroups();
}

size_t Stream::bytes_in_use() const {
  std::vector<Streamlet*> all;
  {
    std::lock_guard<SpinLock> lock(mu_);
    for (const auto& [_, sl] : streamlets_) all.push_back(sl.get());
  }
  size_t total = 0;
  for (Streamlet* sl : all) total += sl->bytes_in_use();
  return total;
}

}  // namespace kera
