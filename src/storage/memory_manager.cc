#include "storage/memory_manager.h"

#include <algorithm>

namespace kera {

MemoryManager::MemoryManager(size_t total_bytes, size_t segment_size)
    : segment_size_(segment_size),
      max_segments_(segment_size == 0 ? 0 : total_bytes / segment_size) {}

Result<Buffer> MemoryManager::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_list_.empty()) {
    Buffer buf = std::move(free_list_.back());
    free_list_.pop_back();
    buf.Clear();
    ++outstanding_;
    peak_outstanding_ = std::max(peak_outstanding_, outstanding_);
    return buf;
  }
  if (created_ >= max_segments_) {
    return Status(StatusCode::kNoSpace, "segment memory budget exhausted");
  }
  ++created_;
  ++outstanding_;
  peak_outstanding_ = std::max(peak_outstanding_, outstanding_);
  return Buffer(segment_size_);
}

void MemoryManager::Release(Buffer buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  buf.Clear();
  free_list_.push_back(std::move(buf));
}

size_t MemoryManager::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

size_t MemoryManager::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_list_.size();
}

MemoryManager::Stats MemoryManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.buffers_outstanding = outstanding_;
  s.buffers_pooled = free_list_.size();
  s.buffers_created = created_;
  s.peak_outstanding = peak_outstanding_;
  s.bytes_resident = uint64_t(outstanding_) * segment_size_;
  return s;
}

}  // namespace kera
