// Tunables of the log-structured storage substrate. Defaults follow the
// paper (8 MB segments, dynamically created fixed-size groups, Q active
// groups per streamlet).
#pragma once

#include <cstddef>
#include <cstdint>

namespace kera {

struct StorageConfig {
  /// Fixed segment size; same structure in memory and on disk so data
  /// moves between the two without reformatting.
  size_t segment_size = 8u << 20;

  /// Number of segments logically assembled into one group. Groups are the
  /// unit of consumer load-balancing and of trimming.
  uint32_t segments_per_group = 4;

  /// Q: active groups per streamlet; producers append to the active group
  /// at entry (producer_id mod Q), enabling parallel appends.
  uint32_t active_groups_per_streamlet = 1;

  // --- backup segment-log (durable replica store) ---

  /// Target size of one backup log file; records roll over past this.
  size_t backup_log_file_bytes = 64u << 20;

  /// Group-commit flusher wakes when this much is queued...
  size_t backup_flush_batch_bytes = 8u << 20;

  /// ...or once the oldest queued record has waited this long.
  uint64_t backup_flush_interval_us = 2000;

  /// GC a non-active backup log file when its live ratio drops below
  /// this; 0 disables GC.
  double backup_gc_live_ratio = 0.45;
};

}  // namespace kera
