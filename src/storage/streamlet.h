// Streamlet: a stream's logical partition. Holds Q active-group slots for
// parallel appends (slot = producer_id mod Q) and the full map of groups
// (active + closed) for consumers. Groups are created dynamically as data
// arrives; group ids are monotonic per streamlet.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "storage/group.h"
#include "storage/storage_config.h"

namespace kera {

/// Result of a streamlet append: where the chunk landed plus which active
/// slot handled it (the broker maps slots to virtual logs when configured
/// with one vlog per sub-partition).
struct StreamletAppendResult {
  ChunkLocator locator;
  Group* group = nullptr;
  uint32_t active_slot = 0;
  bool opened_new_group = false;
};

class Streamlet {
 public:
  Streamlet(MemoryManager& memory, const StorageConfig& config,
            StreamId stream, StreamletId id);

  Streamlet(const Streamlet&) = delete;
  Streamlet& operator=(const Streamlet&) = delete;

  /// Appends a chunk on the producer's active-group slot. Rolls the slot's
  /// group when full. Safe for concurrent calls on different slots; calls
  /// on the same slot are serialized internally.
  Result<StreamletAppendResult> AppendChunk(
      ProducerId producer, std::span<const std::byte> chunk_bytes);

  /// Appends into an explicit slot (tests and tools).
  Result<StreamletAppendResult> AppendChunkToSlot(
      uint32_t slot, std::span<const std::byte> chunk_bytes);

  /// Recovery replay: re-ingests a chunk that belonged to group
  /// `original_group` on the crashed broker. Chunks of one original group
  /// map onto one fresh group here (created on first sight), preserving
  /// group membership and intra-group order.
  Result<StreamletAppendResult> AppendRecoveryChunk(
      GroupId original_group, std::span<const std::byte> chunk_bytes);

  [[nodiscard]] Group* GetGroup(GroupId id) const;

  /// Ids of all groups created so far, ascending.
  [[nodiscard]] std::vector<GroupId> GroupIds() const;

  /// Highest group id created so far +1 (0 when empty).
  [[nodiscard]] GroupId next_group_id() const;

  [[nodiscard]] StreamId stream_id() const { return stream_; }
  [[nodiscard]] StreamletId id() const { return id_; }
  [[nodiscard]] uint32_t active_slots() const { return q_; }

  /// Marks the recovery replay complete: closes the groups rebuilt by
  /// AppendRecoveryChunk so consumers advance past them, and resets the
  /// mapping for any future replay.
  void CloseRecoveryGroups();

  /// Seals the streamlet (bounded stream): closes every active group so
  /// consumers can drain to a definite end. Producer-path appends roll to
  /// new groups only through the broker, which rejects them once sealed.
  void SealActiveGroups();

  /// Trims every closed, fully durable group with id < `before_group`,
  /// releasing memory. Returns how many groups were trimmed. `on_trim`
  /// (optional) runs immediately before each group's Trim — the tiered
  /// store uses it to drop spill candidates and evacuate spilled copies
  /// while the group's Segment objects are still alive.
  size_t TrimBefore(GroupId before_group,
                    const std::function<void(Group*)>& on_trim = nullptr);

  [[nodiscard]] size_t bytes_in_use() const;
  [[nodiscard]] uint64_t total_chunks() const;

 private:
  struct Slot {
    SpinLock lock;
    Group* active = nullptr;  // owned by groups_
  };

  Group* NewGroup();
  Group* CreateGroupLocked(uint32_t slot);

  MemoryManager& memory_;
  const StorageConfig config_;
  const StreamId stream_;
  const StreamletId id_;
  const uint32_t q_;

  std::vector<std::unique_ptr<Slot>> slots_;

  mutable SpinLock groups_mu_;  // guards groups_ map and next_group_id_
  std::map<GroupId, std::unique_ptr<Group>> groups_;
  GroupId next_group_id_ = 0;

  SpinLock recovery_mu_;  // guards recovery_groups_ and serializes replay
  std::map<GroupId, Group*> recovery_groups_;  // original group -> new group
};

}  // namespace kera
