#include "storage/segment_log.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32c.h"
#include "common/logging.h"

namespace kera {

namespace {

namespace fs = std::filesystem;

uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// log-<id>.klog; ids are monotone, so lexicographic order == write order.
bool ParseLogFileName(const std::string& name, uint32_t& id) {
  unsigned v = 0;
  char tail[8] = {0};
  if (std::sscanf(name.c_str(), "log-%08u.%4s", &v, tail) != 2) return false;
  if (std::strcmp(tail, "klog") != 0) return false;
  id = uint32_t(v);
  return true;
}

/// Directory's log file ids in ascending order.
std::vector<uint32_t> ListLogFiles(const std::string& dir) {
  std::vector<uint32_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint32_t id = 0;
    if (ParseLogFileName(entry.path().filename().string(), id)) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

std::string SegmentLog::FilePathFor(uint32_t file_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "log-%08u.klog", unsigned(file_id));
  return dir_ + "/" + name;
}

// ---------------------------------------------------------------- framing

void SegmentLog::EncodeRecordHeader(const RecordHeader& h,
                                    std::byte out[kRecordHeaderSize]) {
  auto put32 = [&](size_t at, uint32_t v) { std::memcpy(out + at, &v, 4); };
  auto put64 = [&](size_t at, uint64_t v) { std::memcpy(out + at, &v, 8); };
  put32(0, kRecordMagic);
  out[4] = std::byte(uint8_t(h.type));
  out[5] = std::byte(0);  // flags
  out[6] = std::byte(0);  // reserved
  out[7] = std::byte(0);
  put64(8, h.primary);
  put32(16, h.vlog);
  put32(20, h.chunk_count);
  put64(24, h.vseg);
  put64(32, h.offset);
  put32(40, h.crc_after);
  put32(44, h.payload_len);
  put32(48, h.payload_crc);
  put32(52, Crc32c(out, 52));
}

bool SegmentLog::DecodeRecordHeader(std::span<const std::byte> in,
                                    RecordHeader& out) {
  if (in.size() < kRecordHeaderSize) return false;
  auto get32 = [&](size_t at) {
    uint32_t v;
    std::memcpy(&v, in.data() + at, 4);
    return v;
  };
  auto get64 = [&](size_t at) {
    uint64_t v;
    std::memcpy(&v, in.data() + at, 8);
    return v;
  };
  if (get32(0) != kRecordMagic) return false;
  if (get32(52) != Crc32c(in.data(), 52)) return false;
  uint8_t type = uint8_t(in[4]);
  if (type < uint8_t(RecordType::kOpen) ||
      type > uint8_t(RecordType::kEvacuate)) {
    return false;
  }
  out.type = RecordType(type);
  out.primary = get64(8);
  out.vlog = get32(16);
  out.chunk_count = get32(20);
  out.vseg = get64(24);
  out.offset = get64(32);
  out.crc_after = get32(40);
  out.payload_len = get32(44);
  out.payload_crc = get32(48);
  return true;
}

// -------------------------------------------------------------- lifecycle

SegmentLog::SegmentLog(std::string dir, SegmentLogOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    error_ = Status(StatusCode::kInternal,
                    "create " + dir_ + ": " + ec.message());
  } else {
    ScanOnStartup();
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

SegmentLog::~SegmentLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Status SegmentLog::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

void SegmentLog::NoteIoError(const Status& s) {
  if (error_.ok()) {
    KERA_ERROR("segment log %s: %s", dir_.c_str(), s.message().c_str());
    error_ = s;
  }
}

// ------------------------------------------------------------ copy-map ops

void SegmentLog::ApplyRecord(const RecordHeader& h, uint32_t file_id,
                             uint64_t payload_pos) {
  CopyKey key{h.primary, h.vlog, VirtualSegmentId(h.vseg)};
  uint64_t rec_size = kRecordHeaderSize + h.payload_len;
  if (h.type == RecordType::kEvacuate) {
    // The copy and every record it left behind are garbage now, the
    // evacuate record included.
    auto it = copies_.find(key);
    if (it != copies_.end()) {
      for (const auto& [f, bytes] : it->second.record_bytes) {
        auto fit = files_.find(f);
        if (fit != files_.end()) {
          fit->second.dead_bytes += bytes;
          fit->second.keys.erase(key);
        }
      }
      copies_.erase(it);
    }
    files_[file_id].dead_bytes += rec_size;
    return;
  }
  Copy& c = copies_[key];
  c.record_bytes[file_id] += rec_size;
  files_[file_id].keys.insert(key);
  switch (h.type) {
    case RecordType::kOpen:
      break;
    case RecordType::kAppend: {
      Extent e;
      e.file = file_id;
      e.pos = payload_pos;
      e.len = h.payload_len;
      e.chunk_count = h.chunk_count;
      e.crc_after = h.crc_after;
      e.payload_crc = h.payload_crc;
      // Same-offset duplicates (GC relocation, or a re-ship after a torn
      // tail) carry identical content; the latest record wins.
      c.extents[h.offset] = e;
      break;
    }
    case RecordType::kSeal:
      if (!c.sealed) ++stats_.seals_durable;
      c.sealed = true;
      c.seal_size = h.offset;
      c.seal_chunks = h.chunk_count;
      c.seal_crc = h.crc_after;
      break;
    case RecordType::kTruncate:
      if (h.offset <= c.truncate_size) {
        c.truncate_size = h.offset;
        c.truncate_chunks = h.chunk_count;
        c.truncate_crc = h.crc_after;
      }
      break;
    case RecordType::kEvacuate:
      break;  // handled above
  }
}

void SegmentLog::ContiguousPrefix(const Copy& c, uint64_t& size,
                                  uint32_t& chunks, uint32_t& crc) const {
  size = 0;
  chunks = 0;
  crc = 0;
  for (const auto& [off, e] : c.extents) {
    if (off != size) break;  // hole: a later extent outlived a torn middle
    size += e.len;
    chunks += e.chunk_count;
    crc = e.crc_after;
  }
  if (c.truncate_size < size) {
    size = c.truncate_size;
    chunks = c.truncate_chunks;
    crc = c.truncate_crc;
  }
  if (c.sealed && c.seal_size <= size) {
    size = c.seal_size;
    chunks = c.seal_chunks;
    crc = c.seal_crc;
  }
}

std::vector<SegmentLog::RecoveredCopy> SegmentLog::RecoveredCopies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecoveredCopy> out;
  out.reserve(copies_.size());
  for (const auto& [key, c] : copies_) {
    RecoveredCopy r;
    r.key = key;
    ContiguousPrefix(c, r.size, r.chunk_count, r.running_checksum);
    // A seal whose prefix did not survive in full reverts the copy to an
    // unsealed durable prefix (defensive; group commit writes a seal only
    // after its appends, so a prefix cut cannot normally strand one).
    r.sealed = c.sealed && r.size == c.seal_size;
    out.push_back(r);
  }
  return out;
}

Status SegmentLog::ReadSegment(const CopyKey& key,
                               std::vector<std::byte>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = copies_.find(key);
  if (it == copies_.end()) {
    return Status(StatusCode::kNotFound, "no such copy in segment log");
  }
  const Copy& c = it->second;
  uint64_t size = 0;
  uint32_t chunks = 0, crc = 0;
  ContiguousPrefix(c, size, chunks, crc);
  out.clear();
  out.resize(size_t(size));
  Status s = ReadExtentsLocked(c, {out.data(), out.size()}, size);
  if (!s.ok()) out.clear();
  return s;
}

Status SegmentLog::ReadSegmentInto(const CopyKey& key, std::span<std::byte> out,
                                   uint64_t& size) const {
  std::lock_guard<std::mutex> lock(mu_);
  size = 0;
  auto it = copies_.find(key);
  if (it == copies_.end()) {
    return Status(StatusCode::kNotFound, "no such copy in segment log");
  }
  uint32_t chunks = 0, crc = 0;
  ContiguousPrefix(it->second, size, chunks, crc);
  if (size > out.size()) {
    return Status(StatusCode::kNoSpace, "copy larger than caller buffer");
  }
  return ReadExtentsLocked(it->second, out.first(size_t(size)), size);
}

Status SegmentLog::ReadExtentsLocked(const Copy& c, std::span<std::byte> out,
                                     uint64_t size) const {
  std::map<uint32_t, PosixFile> handles;
  std::vector<std::byte> scratch;
  uint64_t covered = 0;
  for (const auto& [off, e] : c.extents) {
    if (covered >= size) break;
    if (off != covered) break;  // ContiguousPrefix bounded size already
    auto hit = handles.find(e.file);
    if (hit == handles.end()) {
      auto opened = PosixFile::Open(FilePathFor(e.file), O_RDONLY);
      if (!opened.ok()) return opened.status();
      hit = handles.emplace(e.file, std::move(*opened)).first;
    }
    // The recorded CRC covers the whole extent; read it in full even when
    // a truncate clipped the copy inside it.
    scratch.resize(e.len);
    Status s = hit->second.ReadAt(e.pos, scratch);
    if (!s.ok()) {
      return Status(StatusCode::kCorruption,
                    "extent unreadable: " + s.message());
    }
    if (Crc32c(scratch.data(), scratch.size()) != e.payload_crc) {
      return Status(StatusCode::kCorruption,
                    "extent CRC mismatch in " + FilePathFor(e.file));
    }
    uint64_t take = std::min<uint64_t>(e.len, size - covered);
    std::memcpy(out.data() + covered, scratch.data(), size_t(take));
    covered += take;
  }
  if (covered != size) {
    return Status(StatusCode::kCorruption, "copy prefix has a hole");
  }
  return OkStatus();
}

// ------------------------------------------------------------ restart scan

void SegmentLog::ScanOnStartup() {
  uint64_t t0 = NowUs();
  std::vector<uint32_t> ids = ListLogFiles(dir_);
  for (uint32_t id : ids) {
    auto opened = PosixFile::Open(FilePathFor(id), O_RDWR);
    if (!opened.ok()) {
      NoteIoError(opened.status());
      return;
    }
    auto size = opened->Size();
    if (!size.ok()) {
      NoteIoError(size.status());
      return;
    }
    uint64_t pos = 0;
    std::array<std::byte, kRecordHeaderSize> hdr;
    std::vector<std::byte> payload;
    while (pos + kRecordHeaderSize <= *size) {
      Status s = opened->ReadAt(pos, hdr);
      if (!s.ok()) break;
      RecordHeader h;
      if (!DecodeRecordHeader(hdr, h)) break;
      if (pos + kRecordHeaderSize + h.payload_len > *size) break;
      payload.resize(h.payload_len);
      if (!opened->ReadAt(pos + kRecordHeaderSize, payload).ok()) break;
      if (Crc32c(payload.data(), payload.size()) != h.payload_crc) break;
      ApplyRecord(h, id, pos + kRecordHeaderSize);
      pos += kRecordHeaderSize + h.payload_len;
    }
    if (pos < *size) {
      // Torn tail (or mid-file corruption): this file's validity ends
      // here. Truncate physically so future appends never interleave
      // fresh records with garbage.
      ++stats_.restart_torn_records;
      Status s = opened->Truncate(pos);
      if (!s.ok()) {
        NoteIoError(s);
        return;
      }
    }
    files_[id].size = pos;
    next_file_id_ = id + 1;
  }
  if (!ids.empty() && files_[ids.back()].size < options_.log_file_bytes) {
    active_file_ = ids.back();
  }
  stats_.restart_scan_ms = (NowUs() - t0) / 1000;
}

// ------------------------------------------------------------- write path

uint64_t SegmentLog::Enqueue(const RecordHeader& h,
                             std::span<const std::byte> payload) {
  std::unique_lock<std::mutex> lock(mu_);
  PendingRecord rec;
  rec.header = h;
  rec.header.payload_len = uint32_t(payload.size());
  rec.header.payload_crc = Crc32c(payload.data(), payload.size());
  rec.payload.assign(payload.begin(), payload.end());
  rec.ticket = next_ticket_++;
  bool was_empty = pending_.empty();
  if (was_empty) pending_oldest_us_ = NowUs();
  pending_bytes_ += kRecordHeaderSize + payload.size();
  uint64_t ticket = rec.ticket;
  pending_.push_back(std::move(rec));
  // Wake the flusher when the queue goes non-empty (it must enter the
  // timed wait for the group-commit interval to ever fire) and when the
  // batch threshold trips (flush now, don't wait out the interval).
  bool kick = was_empty || pending_bytes_ >= options_.flush_batch_bytes;
  lock.unlock();
  if (kick) flusher_cv_.notify_all();
  return ticket;
}

uint64_t SegmentLog::EnqueueOpen(const CopyKey& key) {
  RecordHeader h;
  h.type = RecordType::kOpen;
  h.primary = key.primary;
  h.vlog = key.vlog;
  h.vseg = key.vseg;
  return Enqueue(h, {});
}

uint64_t SegmentLog::EnqueueAppend(const CopyKey& key, uint64_t start_offset,
                                   std::span<const std::byte> payload,
                                   uint32_t chunk_count, uint32_t crc_after) {
  RecordHeader h;
  h.type = RecordType::kAppend;
  h.primary = key.primary;
  h.vlog = key.vlog;
  h.vseg = key.vseg;
  h.offset = start_offset;
  h.chunk_count = chunk_count;
  h.crc_after = crc_after;
  return Enqueue(h, payload);
}

uint64_t SegmentLog::EnqueueSeal(const CopyKey& key, uint64_t final_size,
                                 uint32_t chunk_count, uint32_t crc_after) {
  RecordHeader h;
  h.type = RecordType::kSeal;
  h.primary = key.primary;
  h.vlog = key.vlog;
  h.vseg = key.vseg;
  h.offset = final_size;
  h.chunk_count = chunk_count;
  h.crc_after = crc_after;
  return Enqueue(h, {});
}

uint64_t SegmentLog::EnqueueTruncate(const CopyKey& key, uint64_t new_size,
                                     uint32_t chunk_count,
                                     uint32_t crc_after) {
  RecordHeader h;
  h.type = RecordType::kTruncate;
  h.primary = key.primary;
  h.vlog = key.vlog;
  h.vseg = key.vseg;
  h.offset = new_size;
  h.chunk_count = chunk_count;
  h.crc_after = crc_after;
  return Enqueue(h, {});
}

uint64_t SegmentLog::EnqueueEvacuate(const CopyKey& key) {
  RecordHeader h;
  h.type = RecordType::kEvacuate;
  h.primary = key.primary;
  h.vlog = key.vlog;
  h.vseg = key.vseg;
  return Enqueue(h, {});
}

uint64_t SegmentLog::DurableTicket() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_ticket_;
}

Status SegmentLog::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = next_ticket_ - 1;
  if (durable_ticket_ >= target) return error_;
  sync_requested_ = true;
  flusher_cv_.notify_all();
  durable_cv_.wait(lock, [&] {
    return durable_ticket_ >= target || !error_.ok();
  });
  return error_;
}

Status SegmentLog::WaitDurable(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] {
    return durable_ticket_ >= ticket || !error_.ok();
  });
  return error_;
}

// ---------------------------------------------------------- group commit

void SegmentLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (shutdown_) break;
      flusher_cv_.wait(lock, [&] {
        return shutdown_ || !pending_.empty() || sync_requested_;
      });
      sync_requested_ = sync_requested_ && !pending_.empty();
      continue;
    }
    if (!shutdown_ && !sync_requested_ &&
        pending_bytes_ < options_.flush_batch_bytes) {
      auto deadline =
          std::chrono::steady_clock::time_point(std::chrono::microseconds(
              pending_oldest_us_ + options_.flush_interval_us));
      if (std::chrono::steady_clock::now() < deadline) {
        flusher_cv_.wait_until(lock, deadline, [&] {
          return shutdown_ || sync_requested_ ||
                 pending_bytes_ >= options_.flush_batch_bytes;
        });
        continue;
      }
    }
    lock.unlock();
    FlushGroup();
    lock.lock();
    sync_requested_ = false;
    if (error_.ok() && options_.gc_live_ratio > 0) {
      GcLocked(lock);
    }
  }
}

void SegmentLog::FlushGroup() {
  struct Placement {
    uint32_t file = 0;
    uint64_t payload_pos = 0;  // record start + header size
  };
  std::deque<PendingRecord> group;
  std::vector<Placement> where;
  std::vector<uint32_t> new_files;
  uint64_t last_ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return;
    if (!error_.ok()) {
      // Sticky failure: drop the queue (durability never advances past the
      // error; waiters observe it) instead of growing it without bound.
      pending_.clear();
      pending_bytes_ = 0;
      durable_cv_.notify_all();
      return;
    }
    group.swap(pending_);
    pending_bytes_ = 0;
    last_ticket = group.back().ticket;
    where.resize(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      uint64_t rec_size = kRecordHeaderSize + group[i].payload.size();
      if (active_file_ == 0 ||
          files_[active_file_].size + rec_size > options_.log_file_bytes) {
        active_file_ = next_file_id_++;
        new_files.push_back(active_file_);
        files_[active_file_];  // create entry
      }
      LogFile& f = files_[active_file_];
      where[i].file = active_file_;
      where[i].payload_pos = f.size + kRecordHeaderSize;
      f.size += rec_size;
      ++f.pending_io;
    }
  }

  // IO outside the lock: encode headers, then one vectored write + one
  // fsync per log file touched by this group (normally exactly one).
  std::vector<std::array<std::byte, kRecordHeaderSize>> headers(group.size());
  Status io;
  uint64_t group_bytes = 0;
  uint32_t group_fsyncs = 0;
  size_t i = 0;
  while (i < group.size() && io.ok()) {
    uint32_t file_id = where[i].file;
    uint64_t start = where[i].payload_pos - kRecordHeaderSize;
    std::vector<struct iovec> iov;
    size_t j = i;
    while (j < group.size() && where[j].file == file_id) {
      EncodeRecordHeader(group[j].header, headers[j].data());
      iov.push_back({headers[j].data(), kRecordHeaderSize});
      if (!group[j].payload.empty()) {
        iov.push_back({group[j].payload.data(), group[j].payload.size()});
      }
      group_bytes += kRecordHeaderSize + group[j].payload.size();
      ++j;
    }
    auto f = PosixFile::Open(FilePathFor(file_id), O_RDWR | O_CREAT);
    if (!f.ok()) {
      io = f.status();
      break;
    }
    io = f->WritevAt(start, iov);
    if (io.ok()) {
      io = f->Sync();
      ++group_fsyncs;
    }
    i = j;
  }
  if (io.ok() && !new_files.empty()) {
    io = PosixFile::SyncDir(dir_);
    ++group_fsyncs;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Placement& p : where) {
      auto it = files_.find(p.file);
      if (it != files_.end() && it->second.pending_io > 0) {
        --it->second.pending_io;
      }
    }
    if (!io.ok()) {
      NoteIoError(io);
    } else {
      for (size_t k = 0; k < group.size(); ++k) {
        ApplyRecord(group[k].header, where[k].file, where[k].payload_pos);
      }
      durable_ticket_ = last_ticket;
      ++stats_.flush_groups;
      stats_.fsyncs += group_fsyncs;
      stats_.bytes_flushed += group_bytes;
      stats_.records_flushed += group.size();
    }
  }
  durable_cv_.notify_all();
}

// ---------------------------------------------------------------------- GC

uint64_t SegmentLog::MaybeGc() {
  std::unique_lock<std::mutex> lock(mu_);
  return GcLocked(lock);
}

uint64_t SegmentLog::GcLocked(std::unique_lock<std::mutex>& lock) {
  if (options_.gc_live_ratio <= 0 || !error_.ok()) return 0;

  // Victim: the non-active, non-cold, IO-quiet file with the lowest live
  // ratio below the threshold.
  uint32_t victim = 0;
  double victim_ratio = 1.0;
  for (const auto& [id, f] : files_) {
    if (id == active_file_ || id == cold_file_) continue;
    if (f.pending_io > 0 || f.size == 0) continue;
    uint64_t dead = std::min(f.dead_bytes, f.size);
    double ratio = double(f.size - dead) / double(f.size);
    if (ratio < options_.gc_live_ratio && ratio <= victim_ratio) {
      victim = id;
      victim_ratio = ratio;
    }
  }
  if (victim == 0) return 0;
  uint64_t reclaimed = files_[victim].size;

  // Relocation plan: every live copy with records in the victim gets its
  // full metadata rewritten (open/truncate/seal — idempotent on rebuild,
  // and the victim may hold the only durable instance) plus every payload
  // extent that physically lives there. Relocated data has survived at
  // least one collection — it is cold, and goes to the dedicated cold
  // file, away from the hot append head (hot-cold separation keeps write
  // amplification down: hot files die almost entirely on their own).
  struct Relocation {
    RecordHeader header;
    std::vector<std::byte> payload;
    uint64_t extent_offset = 0;  // segment offset (kAppend only)
    CopyKey key;
  };
  std::vector<Relocation> plan;
  std::set<CopyKey> keys = files_[victim].keys;
  for (const CopyKey& key : keys) {
    auto cit = copies_.find(key);
    if (cit == copies_.end()) continue;
    Copy& c = cit->second;
    Relocation open;
    open.key = key;
    open.header.type = RecordType::kOpen;
    open.header.primary = key.primary;
    open.header.vlog = key.vlog;
    open.header.vseg = key.vseg;
    plan.push_back(open);
    if (c.truncate_size != UINT64_MAX) {
      Relocation t = open;
      t.header.type = RecordType::kTruncate;
      t.header.offset = c.truncate_size;
      t.header.chunk_count = c.truncate_chunks;
      t.header.crc_after = c.truncate_crc;
      plan.push_back(t);
    }
    if (c.sealed) {
      Relocation s = open;
      s.header.type = RecordType::kSeal;
      s.header.offset = c.seal_size;
      s.header.chunk_count = c.seal_chunks;
      s.header.crc_after = c.seal_crc;
      plan.push_back(s);
    }
    for (const auto& [off, e] : c.extents) {
      if (e.file != victim) continue;
      Relocation a;
      a.key = key;
      a.extent_offset = off;
      a.header.type = RecordType::kAppend;
      a.header.primary = key.primary;
      a.header.vlog = key.vlog;
      a.header.vseg = key.vseg;
      a.header.offset = off;
      a.header.chunk_count = e.chunk_count;
      a.header.crc_after = e.crc_after;
      a.payload.resize(e.len);
      plan.push_back(std::move(a));
    }
  }

  // Read surviving extents out of the victim. IO under the lock: GC runs
  // on the flusher thread between groups; enqueues briefly block, reads of
  // other copies do not touch the victim once it is gone.
  {
    auto vf = PosixFile::Open(FilePathFor(victim), O_RDONLY);
    if (!vf.ok()) {
      NoteIoError(vf.status());
      return 0;
    }
    for (Relocation& r : plan) {
      if (r.header.type != RecordType::kAppend) continue;
      const Extent& e = copies_[r.key].extents[r.extent_offset];
      Status s = vf->ReadAt(e.pos, r.payload);
      if (!s.ok()) {
        NoteIoError(s);
        return 0;
      }
      if (Crc32c(r.payload.data(), r.payload.size()) != e.payload_crc) {
        // The only durable instance of this extent is damaged; collecting
        // the file would turn latent corruption into data loss. Leave the
        // file alone — reads will report kCorruption with the evidence
        // intact.
        KERA_ERROR("segment log %s: GC aborted, extent CRC mismatch in %s",
                   dir_.c_str(), FilePathFor(victim).c_str());
        return 0;
      }
      r.header.payload_len = uint32_t(r.payload.size());
      r.header.payload_crc = e.payload_crc;
    }
  }

  // Write the relocations into the cold file (rolling it when full), fsync,
  // and only then drop the victim — a crash in between leaves idempotent
  // duplicates, never a gap.
  bool made_cold_file = false;
  std::vector<std::pair<uint32_t, std::pair<uint64_t, uint64_t>>> placed;
  placed.reserve(plan.size());  // (file, (payload_pos, rec_size))
  PosixFile cold_handle;
  uint32_t open_cold = 0;
  std::array<std::byte, kRecordHeaderSize> hdr;
  for (Relocation& r : plan) {
    uint64_t rec_size = kRecordHeaderSize + r.payload.size();
    if (cold_file_ == 0 ||
        files_[cold_file_].size + rec_size > options_.log_file_bytes) {
      cold_file_ = next_file_id_++;
      files_[cold_file_];
      made_cold_file = true;
    }
    if (open_cold != cold_file_) {
      auto f = PosixFile::Open(FilePathFor(cold_file_), O_RDWR | O_CREAT);
      if (!f.ok()) {
        NoteIoError(f.status());
        return 0;
      }
      if (open_cold != 0) {
        Status s = cold_handle.Sync();
        if (!s.ok()) {
          NoteIoError(s);
          return 0;
        }
        ++stats_.fsyncs;
      }
      cold_handle = std::move(*f);
      open_cold = cold_file_;
    }
    LogFile& cf = files_[cold_file_];
    uint64_t start = cf.size;
    EncodeRecordHeader(r.header, hdr.data());
    Status s = cold_handle.WriteAt(start, hdr);
    if (s.ok() && !r.payload.empty()) {
      s = cold_handle.WriteAt(start + kRecordHeaderSize, r.payload);
    }
    if (!s.ok()) {
      NoteIoError(s);
      return 0;
    }
    placed.push_back({cold_file_, {start + kRecordHeaderSize, rec_size}});
    cf.size += rec_size;
  }
  if (open_cold != 0) {
    Status s = cold_handle.Sync();
    if (!s.ok()) {
      NoteIoError(s);
      return 0;
    }
    ++stats_.fsyncs;
  }
  if (made_cold_file) {
    Status s = PosixFile::SyncDir(dir_);
    if (!s.ok()) {
      NoteIoError(s);
      return 0;
    }
    ++stats_.fsyncs;
  }

  // Point the copy map at the relocated records and drop the victim.
  for (size_t i = 0; i < plan.size(); ++i) {
    const Relocation& r = plan[i];
    auto cit = copies_.find(r.key);
    if (cit == copies_.end()) continue;
    Copy& c = cit->second;
    c.record_bytes[placed[i].first] += placed[i].second.second;
    files_[placed[i].first].keys.insert(r.key);
    if (r.header.type == RecordType::kAppend) {
      Extent& e = c.extents[r.extent_offset];
      e.file = placed[i].first;
      e.pos = placed[i].second.first;
    }
  }
  for (const CopyKey& key : keys) {
    auto cit = copies_.find(key);
    if (cit != copies_.end()) cit->second.record_bytes.erase(victim);
  }
  files_.erase(victim);
  std::error_code ec;
  fs::remove(FilePathFor(victim), ec);
  Status s = PosixFile::SyncDir(dir_);
  if (!s.ok()) NoteIoError(s);
  ++stats_.fsyncs;
  ++stats_.gc_runs;
  stats_.gc_bytes_reclaimed += reclaimed;
  (void)lock;
  return reclaimed;
}

// -------------------------------------------------------------------- stats

SegmentLog::Stats SegmentLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.log_files = files_.size();
  s.log_bytes = 0;
  for (const auto& [_, f] : files_) s.log_bytes += f.size;
  return s;
}

// ----------------------------------------------------- power-loss helpers

uint64_t SegmentLog::TotalLogBytes(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (uint32_t id : ListLogFiles(dir)) {
    char name[32];
    std::snprintf(name, sizeof(name), "log-%08u.klog", unsigned(id));
    total += uint64_t(fs::file_size(dir + "/" + std::string(name), ec));
  }
  return total;
}

Status SegmentLog::TruncateLogsAt(const std::string& dir, uint64_t offset) {
  std::vector<uint32_t> ids = ListLogFiles(dir);
  uint64_t cum = 0;
  bool cutting = false;
  for (uint32_t id : ids) {
    char name[32];
    std::snprintf(name, sizeof(name), "log-%08u.klog", unsigned(id));
    std::string path = dir + "/" + std::string(name);
    std::error_code ec;
    uint64_t size = uint64_t(fs::file_size(path, ec));
    if (ec) {
      return Status(StatusCode::kInternal, "file_size " + path);
    }
    if (cutting) {
      fs::remove(path, ec);
      continue;
    }
    if (offset < cum + size) {
      auto f = PosixFile::Open(path, O_RDWR);
      if (!f.ok()) return f.status();
      KERA_RETURN_IF_ERROR(f->Truncate(offset - cum));
      cutting = true;
    }
    cum += size;
  }
  return OkStatus();
}

}  // namespace kera
