#include "wire/record.h"

#include <cassert>
#include <cstring>

#include "common/crc32c.h"
#include "wire/layout.h"

namespace kera {

size_t RecordWireSize(std::span<const size_t> key_sizes, size_t value_size,
                      const RecordOptions& opts) {
  size_t n = kRecordFixedHeader;
  if (opts.version) n += 8;
  if (opts.timestamp) n += 8;
  n += 2 * key_sizes.size();
  for (size_t k : key_sizes) n += k;
  n += value_size;
  return n;
}

size_t WriteRecord(std::span<std::byte> dst,
                   std::span<const std::span<const std::byte>> keys,
                   std::span<const std::byte> value,
                   const RecordOptions& opts) {
  uint16_t flags = 0;
  if (opts.version) flags |= kRecordFlagVersion;
  if (opts.timestamp) flags |= kRecordFlagTimestamp;

  std::byte* p = dst.data();
  size_t off = kRecordFixedHeader;
  // checksum written last
  wire::StoreU16(p + 8, uint16_t(keys.size()));
  wire::StoreU16(p + 10, flags);
  if (opts.version) {
    wire::StoreU64(p + off, *opts.version);
    off += 8;
  }
  if (opts.timestamp) {
    wire::StoreU64(p + off, *opts.timestamp);
    off += 8;
  }
  for (const auto& k : keys) {
    wire::StoreU16(p + off, uint16_t(k.size()));
    off += 2;
  }
  for (const auto& k : keys) {
    std::memcpy(p + off, k.data(), k.size());
    off += k.size();
  }
  std::memcpy(p + off, value.data(), value.size());
  off += value.size();

  assert(off <= dst.size());
  wire::StoreU32(p + 4, uint32_t(off));
  // Checksum covers everything but the checksum field itself.
  uint32_t crc = Crc32c(p + 4, off - 4);
  wire::StoreU32(p, crc);
  return off;
}

size_t WriteRecord(std::span<std::byte> dst, std::span<const std::byte> value,
                   const RecordOptions& opts) {
  return WriteRecord(dst, {}, value, opts);
}

Result<RecordView> RecordView::Parse(std::span<const std::byte> data) {
  if (data.size() < kRecordFixedHeader) {
    return Status(StatusCode::kCorruption, "record: short header");
  }
  const std::byte* p = data.data();
  RecordView v;
  v.checksum_ = wire::LoadU32(p);
  v.total_length_ = wire::LoadU32(p + 4);
  v.key_count_ = wire::LoadU16(p + 8);
  uint16_t flags = wire::LoadU16(p + 10);

  if (v.total_length_ < kRecordFixedHeader || v.total_length_ > data.size()) {
    return Status(StatusCode::kCorruption, "record: bad total_length");
  }
  size_t off = kRecordFixedHeader;
  if (flags & kRecordFlagVersion) {
    if (off + 8 > v.total_length_) {
      return Status(StatusCode::kCorruption, "record: truncated version");
    }
    v.version_ = wire::LoadU64(p + off);
    off += 8;
  }
  if (flags & kRecordFlagTimestamp) {
    if (off + 8 > v.total_length_) {
      return Status(StatusCode::kCorruption, "record: truncated timestamp");
    }
    v.timestamp_ = wire::LoadU64(p + off);
    off += 8;
  }
  if (off + 2 * size_t(v.key_count_) > v.total_length_) {
    return Status(StatusCode::kCorruption, "record: truncated key lengths");
  }
  v.key_lengths_ = p + off;
  off += 2 * size_t(v.key_count_);
  v.key_bytes_ = p + off;
  size_t keys_total = 0;
  for (uint16_t i = 0; i < v.key_count_; ++i) {
    keys_total += wire::LoadU16(v.key_lengths_ + 2 * i);
  }
  if (off + keys_total > v.total_length_) {
    return Status(StatusCode::kCorruption, "record: truncated keys");
  }
  off += keys_total;
  v.value_ = data.subspan(off, v.total_length_ - off);
  v.raw_ = data.first(v.total_length_);
  return v;
}

std::span<const std::byte> RecordView::key(size_t i) const {
  assert(i < key_count_);
  size_t off = 0;
  for (size_t j = 0; j < i; ++j) off += wire::LoadU16(key_lengths_ + 2 * j);
  size_t len = wire::LoadU16(key_lengths_ + 2 * i);
  return {key_bytes_ + off, len};
}

bool RecordView::VerifyChecksum() const {
  uint32_t crc = Crc32c(raw_.data() + 4, total_length_ - 4);
  return crc == checksum_;
}

}  // namespace kera
