#include "wire/chunk.h"

#include <cassert>
#include <cstring>

#include "common/crc32c.h"
#include "wire/layout.h"

namespace kera {

namespace co = chunk_offsets;

ChunkBuilder::ChunkBuilder(size_t chunk_size) : buf_(chunk_size) {
  assert(chunk_size > kChunkHeaderSize && "chunk too small for header");
}

void ChunkBuilder::Start(StreamId stream, StreamletId streamlet,
                         ProducerId producer, uint32_t epoch,
                         uint32_t flags) {
  buf_.Clear();
  epoch_ = epoch;
  start_flags_ = flags;
  if (epoch != 0) start_flags_ |= kChunkFlagHasEpoch;
  header_size_ = ChunkHeaderSizeFor(start_flags_);
  size_t off = buf_.Reserve(header_size_);
  (void)off;
  assert(off == 0);
  stream_ = stream;
  streamlet_ = streamlet;
  producer_ = producer;
  record_count_ = 0;
  payload_crc_ = 0;
}

bool ChunkBuilder::AppendValue(std::span<const std::byte> value,
                               const RecordOptions& opts) {
  return AppendRecord({}, value, opts);
}

bool ChunkBuilder::AppendRecord(
    std::span<const std::span<const std::byte>> keys,
    std::span<const std::byte> value, const RecordOptions& opts) {
  // Compute size without materializing a key-size array for the common
  // non-keyed case.
  size_t need = kRecordFixedHeader + value.size();
  if (opts.version) need += 8;
  if (opts.timestamp) need += 8;
  for (const auto& k : keys) need += 2 + k.size();
  if (need > buf_.remaining()) return false;
  size_t off = buf_.Reserve(need);
  size_t written = WriteRecord({buf_.data() + off, need}, keys, value, opts);
  assert(written == need);
  (void)written;
  // WriteRecord already checksummed entry bytes [4, need); combine it with
  // the CRC of the 4-byte checksum field itself instead of re-scanning the
  // record.
  const std::byte* entry = buf_.data() + off;
  uint32_t entry_crc = Crc32cCombine(Crc32c(entry, sizeof(uint32_t)),
                                     wire::LoadU32(entry), need - 4);
  payload_crc_ = Crc32cCombine(payload_crc_, entry_crc, need);
  ++record_count_;
  return true;
}

bool ChunkBuilder::AppendSerialized(std::span<const std::byte> entry) {
  if (buf_.Append(entry) == SIZE_MAX) return false;
  // External bytes: compute the full CRC (the embedded record checksum is
  // not trusted to match the bytes).
  payload_crc_ = Crc32cCombine(payload_crc_, Crc32c(entry), entry.size());
  ++record_count_;
  return true;
}

std::span<const std::byte> ChunkBuilder::Seal(ChunkSeq seq) {
  std::byte* p = buf_.data();
  const size_t payload_len = buf_.size() - header_size_;
  wire::StoreU32(p + co::kPayloadLength, uint32_t(payload_len));
  wire::StoreU64(p + co::kStreamId, stream_);
  wire::StoreU32(p + co::kStreamletId, streamlet_);
  wire::StoreU32(p + co::kProducerId, producer_);
  wire::StoreU64(p + co::kChunkSeq, seq);
  wire::StoreU32(p + co::kRecordCount, record_count_);
  wire::StoreU32(p + co::kGroupId, 0);
  wire::StoreU32(p + co::kSegmentId, 0);
  wire::StoreU32(p + co::kFlags, start_flags_);
  wire::StoreU64(p + co::kGroupChunkIndex, 0);
  if (header_size_ == kChunkHeaderSizeWithEpoch) {
    wire::StoreU32(p + co::kProducerEpoch, epoch_);
    wire::StoreU32(p + co::kEpochReserved, 0);
  }
  assert(payload_crc_ == Crc32c(p + header_size_, payload_len));
  wire::StoreU32(p + co::kChecksum, payload_crc_);
  return buf_.view();
}

Result<ChunkView> ChunkView::Parse(std::span<const std::byte> data) {
  if (data.size() < kChunkHeaderSize) {
    return Status(StatusCode::kCorruption, "chunk: short header");
  }
  // The flags word lives inside the fixed 56-byte prefix, so the header
  // size (56, or 64 with the epoch tail) is known before bounds-checking.
  const size_t header =
      ChunkHeaderSizeFor(wire::LoadU32(data.data() + co::kFlags));
  if (data.size() < header) {
    return Status(StatusCode::kCorruption, "chunk: short epoch header");
  }
  uint32_t payload_len = wire::LoadU32(data.data() + co::kPayloadLength);
  size_t total = header + size_t(payload_len);
  if (total > data.size()) {
    return Status(StatusCode::kCorruption, "chunk: truncated payload");
  }
  ChunkView v;
  v.raw_ = data.first(total);
  return v;
}

uint32_t ChunkView::payload_checksum() const {
  return wire::LoadU32(raw_.data() + co::kChecksum);
}
uint32_t ChunkView::payload_length() const {
  return wire::LoadU32(raw_.data() + co::kPayloadLength);
}
StreamId ChunkView::stream_id() const {
  return wire::LoadU64(raw_.data() + co::kStreamId);
}
StreamletId ChunkView::streamlet_id() const {
  return wire::LoadU32(raw_.data() + co::kStreamletId);
}
ProducerId ChunkView::producer_id() const {
  return wire::LoadU32(raw_.data() + co::kProducerId);
}
ChunkSeq ChunkView::chunk_seq() const {
  return wire::LoadU64(raw_.data() + co::kChunkSeq);
}
uint32_t ChunkView::record_count() const {
  return wire::LoadU32(raw_.data() + co::kRecordCount);
}
GroupId ChunkView::group_id() const {
  return wire::LoadU32(raw_.data() + co::kGroupId);
}
SegmentId ChunkView::segment_id() const {
  return wire::LoadU32(raw_.data() + co::kSegmentId);
}
uint32_t ChunkView::flags() const {
  return wire::LoadU32(raw_.data() + co::kFlags);
}
uint64_t ChunkView::group_chunk_index() const {
  return wire::LoadU64(raw_.data() + co::kGroupChunkIndex);
}
uint32_t ChunkView::producer_epoch() const {
  if ((flags() & kChunkFlagHasEpoch) == 0) return 0;
  return wire::LoadU32(raw_.data() + co::kProducerEpoch);
}

bool ChunkView::VerifyChecksum() const {
  uint32_t crc = Crc32c(payload().data(), payload().size());
  return crc == payload_checksum();
}

ChunkView::RecordIterator::RecordIterator(std::span<const std::byte> payload)
    : rest_(payload) {
  ParseCurrent();
}

void ChunkView::RecordIterator::ParseCurrent() {
  if (rest_.empty()) {
    done_ = true;
    return;
  }
  auto r = RecordView::Parse(rest_);
  if (!r.ok()) {
    status_ = r.status();
    done_ = true;
    return;
  }
  current_ = std::move(r).value();
}

void ChunkView::RecordIterator::Next() {
  if (done_) return;
  rest_ = rest_.subspan(current_.total_length());
  ParseCurrent();
}

void AssignChunkAttrs(std::span<std::byte> chunk_bytes, GroupId group,
                      SegmentId segment, uint64_t group_chunk_index) {
  assert(chunk_bytes.size() >= kChunkHeaderSize);
  std::byte* p = chunk_bytes.data();
  wire::StoreU32(p + co::kGroupId, group);
  wire::StoreU32(p + co::kSegmentId, segment);
  wire::StoreU64(p + co::kGroupChunkIndex, group_chunk_index);
  wire::StoreU32(p + co::kFlags,
                 wire::LoadU32(p + co::kFlags) | kChunkFlagAttrsAssigned);
}

}  // namespace kera
