// Unaligned little-endian load/store helpers for the shared client/broker
// binary format. All wire structures are serialized field-by-field through
// these helpers (no struct casts), so the format is identical across
// platforms and never hits alignment UB.
#pragma once

#include <cstdint>
#include <cstring>

namespace kera::wire {

inline void StoreU16(std::byte* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void StoreU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void StoreU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }

[[nodiscard]] inline uint16_t LoadU16(const std::byte* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
[[nodiscard]] inline uint32_t LoadU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
[[nodiscard]] inline uint64_t LoadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace kera::wire
