// Stream record wire format (RAMCloud-style multi-key-value entry).
//
// Layout (little-endian):
//   u32 checksum       -- CRC32C over every byte of the entry EXCEPT this
//                         field (paper: "a checksum covering everything but
//                         this field")
//   u32 total_length   -- whole entry, header included
//   u16 key_count
//   u16 flags          -- bit0: version present, bit1: timestamp present
//   [u64 version]      -- only if flag set
//   [u64 timestamp]    -- only if flag set
//   u16 key_length[key_count]
//   key bytes (concatenated)
//   value bytes (to total_length)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"

namespace kera {

struct RecordOptions {
  std::optional<uint64_t> version;
  std::optional<uint64_t> timestamp;
};

/// Fixed prefix before the optional fields.
inline constexpr size_t kRecordFixedHeader = 4 + 4 + 2 + 2;

inline constexpr uint16_t kRecordFlagVersion = 1u << 0;
inline constexpr uint16_t kRecordFlagTimestamp = 1u << 1;

/// Serialized size of a record with the given keys/value sizes.
[[nodiscard]] size_t RecordWireSize(std::span<const size_t> key_sizes,
                                    size_t value_size,
                                    const RecordOptions& opts = {});

/// Serializes a record into `dst` (which must be at least RecordWireSize
/// bytes). Returns the number of bytes written.
size_t WriteRecord(std::span<std::byte> dst,
                   std::span<const std::span<const std::byte>> keys,
                   std::span<const std::byte> value,
                   const RecordOptions& opts = {});

/// Convenience for non-keyed records (the paper's benchmark workload).
size_t WriteRecord(std::span<std::byte> dst, std::span<const std::byte> value,
                   const RecordOptions& opts = {});

/// Zero-copy view over a serialized record.
class RecordView {
 public:
  /// Parses the record starting at `data[0]`. Validates structural bounds
  /// but not the checksum (call VerifyChecksum for that). `data` may extend
  /// past the record; the view covers exactly total_length bytes.
  static Result<RecordView> Parse(std::span<const std::byte> data);

  [[nodiscard]] size_t total_length() const { return total_length_; }
  [[nodiscard]] uint16_t key_count() const { return key_count_; }
  [[nodiscard]] std::optional<uint64_t> version() const { return version_; }
  [[nodiscard]] std::optional<uint64_t> timestamp() const {
    return timestamp_;
  }
  [[nodiscard]] std::span<const std::byte> key(size_t i) const;
  [[nodiscard]] std::span<const std::byte> value() const { return value_; }
  [[nodiscard]] uint32_t stored_checksum() const { return checksum_; }

  /// Recomputes the checksum over the entry (minus the checksum field) and
  /// compares with the stored one.
  [[nodiscard]] bool VerifyChecksum() const;

  /// Raw bytes of the whole entry.
  [[nodiscard]] std::span<const std::byte> raw() const { return raw_; }

 private:
  std::span<const std::byte> raw_;
  std::span<const std::byte> value_;
  const std::byte* key_lengths_ = nullptr;  // u16 array
  const std::byte* key_bytes_ = nullptr;
  uint32_t checksum_ = 0;
  uint32_t total_length_ = 0;
  uint16_t key_count_ = 0;
  std::optional<uint64_t> version_;
  std::optional<uint64_t> timestamp_;
};

}  // namespace kera
