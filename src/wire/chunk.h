// Chunk wire format: the unit of producer batching and of virtual-log
// replication. A chunk aggregates records for one streamlet of one stream
// and is tagged with the producer id and a per-(producer,streamlet)
// sequence number (exactly-once dedup), plus [group, segment] attributes
// assigned by the broker at append time and used to reconstruct groups
// consistently during crash recovery.
//
// Layout (little-endian, 56-byte fixed header followed by payload):
//   u32 payload_checksum   -- CRC32C over payload (records) only; header
//                              fields mutate (broker assigns attributes) so
//                              they are covered by the virtual segment
//                              header checksum instead
//   u32 payload_length
//   u64 stream_id
//   u32 streamlet_id
//   u32 producer_id
//   u64 chunk_seq
//   u32 record_count
//   u32 group_id           -+
//   u32 segment_id           } broker-assigned attributes (recovery)
//   u32 flags              -+
//   u64 group_chunk_index  -- order of this chunk within its group
//
// When kChunkFlagHasEpoch is set in flags, the header is extended to 64
// bytes with an exactly-once tail (old parsers that predate the flag never
// see it set, so the 56-byte format is unchanged):
//   u32 producer_epoch     -- coordinator-assigned session epoch (>= 1)
//   u32 reserved           -- zero
#pragma once

#include <cstdint>
#include <span>

#include "common/buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "wire/record.h"

namespace kera {

inline constexpr size_t kChunkHeaderSize = 56;
/// Header size when the exactly-once epoch tail is present (flags carry
/// kChunkFlagHasEpoch). Epoch 0 is reserved as "no epoch": the coordinator
/// allocates epochs starting at 1, so a zero epoch never needs the tail.
inline constexpr size_t kChunkHeaderSizeWithEpoch = 64;

inline constexpr uint32_t kChunkFlagAttrsAssigned = 1u << 0;
/// The header carries the 8-byte epoch tail (64-byte header).
inline constexpr uint32_t kChunkFlagHasEpoch = 1u << 1;
/// System chunk holding a consumer offset commit, not stream data.
/// Consumers skip it (but still advance their cursor past it).
inline constexpr uint32_t kChunkFlagOffsetCommit = 1u << 2;

/// Offsets of header fields (shared by builder/view/in-place updates).
namespace chunk_offsets {
inline constexpr size_t kChecksum = 0;
inline constexpr size_t kPayloadLength = 4;
inline constexpr size_t kStreamId = 8;
inline constexpr size_t kStreamletId = 16;
inline constexpr size_t kProducerId = 20;
inline constexpr size_t kChunkSeq = 24;
inline constexpr size_t kRecordCount = 32;
inline constexpr size_t kGroupId = 36;
inline constexpr size_t kSegmentId = 40;
inline constexpr size_t kFlags = 44;
inline constexpr size_t kGroupChunkIndex = 48;
// Epoch-tail fields, present only with kChunkFlagHasEpoch.
inline constexpr size_t kProducerEpoch = 56;
inline constexpr size_t kEpochReserved = 60;
}  // namespace chunk_offsets

/// Header size implied by a chunk's flags word.
[[nodiscard]] inline constexpr size_t ChunkHeaderSizeFor(uint32_t flags) {
  return (flags & kChunkFlagHasEpoch) != 0 ? kChunkHeaderSizeWithEpoch
                                           : kChunkHeaderSize;
}

/// Builds a chunk in a fixed-size buffer. Reusable: producers keep a pool
/// of builders and recycle them after acknowledgment (the paper's
/// shared-memory chunk pool between the source and requests threads).
class ChunkBuilder {
 public:
  explicit ChunkBuilder(size_t chunk_size);

  /// Begins a new chunk; discards any previous content. An epoch >= 1
  /// switches the chunk to the extended 64-byte header (kChunkFlagHasEpoch);
  /// epoch 0 keeps the classic 56-byte format byte for byte. `flags` is
  /// OR-ed into the sealed flags word (e.g. kChunkFlagOffsetCommit).
  void Start(StreamId stream, StreamletId streamlet, ProducerId producer,
             uint32_t epoch = 0, uint32_t flags = 0);

  /// Appends a non-keyed record with the given value. Returns false if the
  /// record does not fit (the chunk is then ready to seal).
  [[nodiscard]] bool AppendValue(std::span<const std::byte> value,
                                 const RecordOptions& opts = {});

  /// Appends a multi-key record. Returns false if it does not fit.
  [[nodiscard]] bool AppendRecord(
      std::span<const std::span<const std::byte>> keys,
      std::span<const std::byte> value, const RecordOptions& opts = {});

  /// Appends an already-serialized record entry. Returns false if full.
  [[nodiscard]] bool AppendSerialized(std::span<const std::byte> entry);

  /// Finalizes the chunk: stamps the sequence number, record count,
  /// payload length and payload checksum. Returns the full chunk bytes
  /// (header + payload). The builder stays sealed until Start().
  std::span<const std::byte> Seal(ChunkSeq seq);

  /// Bytes of the chunk as last sealed (valid until Start()).
  [[nodiscard]] std::span<const std::byte> SealedView() const {
    return buf_.view();
  }

  [[nodiscard]] uint32_t record_count() const { return record_count_; }
  [[nodiscard]] size_t payload_size() const {
    return buf_.size() - header_size_;
  }
  [[nodiscard]] bool empty() const { return record_count_ == 0; }
  [[nodiscard]] size_t capacity() const { return buf_.capacity(); }
  [[nodiscard]] StreamId stream() const { return stream_; }
  [[nodiscard]] StreamletId streamlet() const { return streamlet_; }

 private:
  Buffer buf_;
  StreamId stream_ = 0;
  StreamletId streamlet_ = 0;
  ProducerId producer_ = 0;
  uint32_t epoch_ = 0;
  uint32_t start_flags_ = 0;
  size_t header_size_ = kChunkHeaderSize;
  uint32_t record_count_ = 0;
  // Running CRC32C over the payload built so far, maintained by the append
  // paths (combined from the per-record CRCs already computed by
  // WriteRecord), so Seal() does not re-scan the payload.
  uint32_t payload_crc_ = 0;
};

/// Zero-copy view over a serialized chunk (header + payload).
class ChunkView {
 public:
  /// Parses a chunk starting at data[0]; the view covers exactly
  /// header_size + payload_length bytes, where header_size is derived
  /// from the flags word (56, or 64 with the epoch tail). Bounds-validated.
  static Result<ChunkView> Parse(std::span<const std::byte> data);

  [[nodiscard]] uint32_t payload_checksum() const;
  [[nodiscard]] uint32_t payload_length() const;
  [[nodiscard]] StreamId stream_id() const;
  [[nodiscard]] StreamletId streamlet_id() const;
  [[nodiscard]] ProducerId producer_id() const;
  [[nodiscard]] ChunkSeq chunk_seq() const;
  [[nodiscard]] uint32_t record_count() const;
  [[nodiscard]] GroupId group_id() const;
  [[nodiscard]] SegmentId segment_id() const;
  [[nodiscard]] uint32_t flags() const;
  [[nodiscard]] uint64_t group_chunk_index() const;
  /// Coordinator-assigned producer epoch; 0 for classic 56-byte chunks.
  [[nodiscard]] uint32_t producer_epoch() const;

  [[nodiscard]] size_t header_size() const {
    return ChunkHeaderSizeFor(flags());
  }
  [[nodiscard]] size_t total_size() const { return raw_.size(); }
  [[nodiscard]] std::span<const std::byte> raw() const { return raw_; }
  [[nodiscard]] std::span<const std::byte> payload() const {
    return raw_.subspan(header_size());
  }

  /// Recomputes the payload checksum and compares with the stored one.
  [[nodiscard]] bool VerifyChecksum() const;

  /// Iterates the records of this chunk. Usage:
  ///   for (auto it = view.records(); !it.Done(); it.Next()) use(it.record());
  class RecordIterator {
   public:
    explicit RecordIterator(std::span<const std::byte> payload);
    [[nodiscard]] bool Done() const { return done_; }
    [[nodiscard]] const RecordView& record() const { return current_; }
    [[nodiscard]] Status status() const { return status_; }
    void Next();

   private:
    void ParseCurrent();
    std::span<const std::byte> rest_;
    RecordView current_;
    Status status_;
    bool done_ = false;
  };
  [[nodiscard]] RecordIterator records() const {
    return RecordIterator(payload());
  }

 private:
  std::span<const std::byte> raw_;
};

/// In-place broker-side assignment of the [group, segment] attributes on a
/// chunk that has already been copied into a physical segment.
void AssignChunkAttrs(std::span<std::byte> chunk_bytes, GroupId group,
                      SegmentId segment, uint64_t group_chunk_index);

}  // namespace kera
