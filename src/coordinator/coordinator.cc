#include "coordinator/coordinator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "wire/chunk.h"

namespace kera {

Coordinator::Coordinator(rpc::Network& network) : network_(network) {}

void Coordinator::RegisterNode(NodeId node, Broker* broker, Backup* backup) {
  std::lock_guard<std::mutex> lock(mu_);
  brokers_[node] = broker;
  backups_[node] = backup;
  alive_[node] = true;
}

std::vector<NodeId> Coordinator::LiveBrokers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  for (const auto& [node, live] : alive_) {
    if (live) out.push_back(node);
  }
  return out;
}

Status Coordinator::AnnounceLeadership(const StreamState& state) {
  // Tell every broker that leads at least one streamlet about the stream,
  // then about each of its streamlets.
  std::map<NodeId, std::vector<StreamletId>> per_broker;
  for (StreamletId sl = 0; sl < state.info.streamlet_brokers.size(); ++sl) {
    NodeId leader = state.info.streamlet_brokers[sl];
    if (leader != kInvalidNode) per_broker[leader].push_back(sl);
  }
  for (const auto& [node, streamlets] : per_broker) {
    Broker* broker;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = brokers_.find(node);
      if (it == brokers_.end()) {
        return Status(StatusCode::kNotFound, "unknown broker node");
      }
      broker = it->second;
    }
    KERA_RETURN_IF_ERROR(broker->AddStream(state.name, state.info));
    for (StreamletId sl : streamlets) {
      KERA_RETURN_IF_ERROR(broker->AddStreamlet(state.info.stream, sl));
    }
  }
  return OkStatus();
}

Result<rpc::StreamInfo> Coordinator::CreateStream(
    const std::string& name, const rpc::StreamOptions& options) {
  if (options.num_streamlets == 0 ||
      options.active_groups_per_streamlet == 0 ||
      options.replication_factor == 0) {
    return Status(StatusCode::kInvalidArgument, "bad stream options");
  }
  StreamState* state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (streams_by_name_.count(name) != 0) {
      return Status(StatusCode::kAlreadyExists, "stream exists: " + name);
    }
    std::vector<NodeId> live;
    for (const auto& [node, alive] : alive_) {
      if (alive) live.push_back(node);
    }
    if (live.empty()) {
      return Status(StatusCode::kUnavailable, "no live brokers");
    }
    if (options.replication_factor > live.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "replication factor exceeds cluster size");
    }
    auto owned = std::make_unique<StreamState>();
    owned->name = name;
    owned->info.stream = next_stream_id_++;
    owned->info.options = options;
    owned->info.streamlet_brokers.resize(options.num_streamlets);
    // Rotate the starting broker across stream creations so that many
    // small streams (1 streamlet each) still spread over the cluster.
    for (StreamletId sl = 0; sl < options.num_streamlets; ++sl) {
      owned->info.streamlet_brokers[sl] =
          live[(placement_cursor_ + sl) % live.size()];
    }
    placement_cursor_ =
        (placement_cursor_ + options.num_streamlets) % live.size();
    state = owned.get();
    streams_by_id_[owned->info.stream] = state;
    streams_by_name_.emplace(name, std::move(owned));
  }
  KERA_RETURN_IF_ERROR(AnnounceLeadership(*state));
  return state->info;
}

Result<rpc::StreamInfo> Coordinator::GetStreamInfo(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_by_name_.find(name);
  if (it == streams_by_name_.end()) {
    return Status(StatusCode::kNotFound, "no such stream: " + name);
  }
  return it->second->info;
}

Status Coordinator::SealStream(const std::string& name) {
  StreamState* state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_by_name_.find(name);
    if (it == streams_by_name_.end()) {
      return Status(StatusCode::kNotFound, "no such stream: " + name);
    }
    state = it->second.get();
    state->info.sealed = true;
  }
  std::set<NodeId> leaders(state->info.streamlet_brokers.begin(),
                           state->info.streamlet_brokers.end());
  for (NodeId node : leaders) {
    Broker* broker;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = brokers_.find(node);
      if (it == brokers_.end()) continue;
      broker = it->second;
    }
    KERA_RETURN_IF_ERROR(broker->SealStream(state->info.stream));
  }
  return OkStatus();
}

Result<uint64_t> Coordinator::RecoverNode(NodeId crashed) {
  // 1. Mark dead and reassign the crashed broker's streamlets round-robin
  //    over the survivors.
  std::vector<NodeId> survivors;
  std::vector<StreamState*> affected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = alive_.find(crashed);
    if (it == alive_.end()) {
      return Status(StatusCode::kNotFound, "unknown node");
    }
    it->second = false;
    for (const auto& [node, live] : alive_) {
      if (live) survivors.push_back(node);
    }
    if (survivors.empty()) {
      return Status(StatusCode::kUnavailable, "no survivors");
    }
    size_t rr = 0;
    for (auto& [_, state] : streams_by_name_) {
      bool touched = false;
      for (auto& leader : state->info.streamlet_brokers) {
        if (leader == crashed) {
          leader = survivors[rr++ % survivors.size()];
          touched = true;
        }
      }
      if (touched) affected.push_back(state.get());
    }
  }
  // Tell survivors which backup services remain so their virtual logs
  // stop targeting the dead node for new virtual segments.
  PushLiveBackups();

  for (StreamState* state : affected) {
    KERA_RETURN_IF_ERROR(AnnounceLeadership(*state));
  }

  // 2-3. Replay everything the crashed broker led from the surviving
  //       backups into the new leaders.
  auto replayed =
      ReplayFromBackups(crashed, [](StreamId, StreamletId) { return true; });
  if (!replayed.ok()) return replayed;

  // 4. The replay re-produced (and re-replicated, synchronously on the
  //    produce path) everything the crashed broker led, so the copies the
  //    backups still hold for it are garbage: evacuate them. Best-effort —
  //    a backup that is down keeps its stale copies until its next
  //    incarnation, which is merely unreclaimed space, never wrong data
  //    (replay is keyed by primary and the primary is gone for good).
  EvacuateBackups(crashed);
  return replayed;
}

uint64_t Coordinator::EvacuateBackups(NodeId primary) {
  std::vector<NodeId> backup_services;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, live] : alive_) {
      if (live && backup_down_.count(node) == 0) {
        backup_services.push_back(BackupServiceId(node));
      }
    }
  }
  uint64_t dropped = 0;
  for (NodeId backup : backup_services) {
    rpc::EvacuateBackupSegmentsRequest req;
    req.primary = primary;
    rpc::Writer body;
    req.Encode(body);
    auto raw = network_.Call(
        backup, rpc::Frame(rpc::Opcode::kEvacuateBackupSegments, body));
    if (!raw.ok()) continue;
    rpc::Reader r(*raw);
    auto resp = rpc::EvacuateBackupSegmentsResponse::Decode(r);
    if (resp.ok() && resp->status == StatusCode::kOk) {
      dropped += resp->dropped;
    }
  }
  return dropped;
}

void Coordinator::PushLiveBackups() {
  std::vector<NodeId> live_backup_services;
  std::vector<Broker*> live_brokers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, live] : alive_) {
      if (!live) continue;
      if (backup_down_.count(node) == 0) {
        live_backup_services.push_back(BackupServiceId(node));
      }
      live_brokers.push_back(brokers_[node]);
    }
  }
  for (Broker* b : live_brokers) b->SetLiveBackups(live_backup_services);
}

Status Coordinator::RejoinNode(NodeId node, Broker* broker, Backup* backup) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = alive_.find(node);
    if (it == alive_.end()) {
      return Status(StatusCode::kNotFound, "unknown node");
    }
    if (it->second) {
      return Status(StatusCode::kAlreadyExists, "node is still alive");
    }
    // RecoverNode reassigned every streamlet away from the dead node; a
    // leftover leadership would mean the caller skipped recovery and the
    // fresh (empty) broker would silently lead data it does not hold.
    for (const auto& [_, state] : streams_by_name_) {
      for (NodeId leader : state->info.streamlet_brokers) {
        if (leader == node) {
          return Status(StatusCode::kInvalidArgument,
                        "node still leads a streamlet; recover it first");
        }
      }
    }
    brokers_[node] = broker;
    backups_[node] = backup;
    backup_down_.erase(node);
    it->second = true;
  }
  PushLiveBackups();
  return OkStatus();
}

void Coordinator::NoteBackupDown(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    backup_down_.insert(node);
  }
  PushLiveBackups();
}

void Coordinator::NoteBackupUp(NodeId node, Backup* backup) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    backups_[node] = backup;
    backup_down_.erase(node);
  }
  PushLiveBackups();
}

Result<uint64_t> Coordinator::ReplayFromBackups(
    NodeId primary,
    const std::function<bool(StreamId, StreamletId)>& filter) {
  // Collect `primary`'s replicated virtual segments from every backup.
  // Several backups can hold the same virtual segment (R > 2) — keep one
  // source per segment; different segments spread over different backups
  // get read independently (the paper's parallel recovery).
  std::vector<NodeId> backup_services;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, live] : alive_) {
      if (live && backup_down_.count(node) == 0) {
        backup_services.push_back(BackupServiceId(node));
      }
    }
  }
  struct Source {
    NodeId backup;
    rpc::RecoverySegmentDescriptor desc;
  };
  std::map<std::pair<VlogId, VirtualSegmentId>, Source> sources;
  for (NodeId backup : backup_services) {
    rpc::ListRecoverySegmentsRequest req;
    req.crashed = primary;
    rpc::Writer body;
    req.Encode(body);
    auto raw = network_.Call(backup, rpc::Frame(
        rpc::Opcode::kListRecoverySegments, body));
    if (!raw.ok()) continue;  // that backup may be down too
    rpc::Reader r(*raw);
    auto resp = rpc::ListRecoverySegmentsResponse::Decode(r);
    if (!resp.ok() || resp->status != StatusCode::kOk) continue;
    for (const auto& desc : resp->segments) {
      // Copies of one virtual segment can differ in length: a backup that
      // (re)started mid-stream holds only a suffix buffered as pending —
      // its contiguous chunk_count is short (possibly zero) while a
      // backup that followed from the start holds everything. Replay from
      // the longest contiguous copy; every chunk the primary acked is in
      // at least one backup's contiguous prefix.
      auto [it, inserted] =
          sources.try_emplace({desc.vlog, desc.vseg}, Source{backup, desc});
      if (!inserted && desc.chunk_count > it->second.desc.chunk_count) {
        it->second = Source{backup, desc};
      }
    }
  }

  // Replay in (vlog, virtual segment) order — this preserves each group's
  // intra-order, since all chunks of a group flow through one vlog in
  // append order. Chunks are re-ingested into the current leaders as
  // normal producer requests with the recovery flag set.
  uint64_t replayed = 0;
  for (const auto& [key, source] : sources) {
    rpc::ReadRecoverySegmentRequest req;
    req.crashed = primary;
    req.vlog = key.first;
    req.vseg = key.second;
    rpc::Writer body;
    req.Encode(body);
    auto raw = network_.Call(source.backup, rpc::Frame(
        rpc::Opcode::kReadRecoverySegment, body));
    if (!raw.ok()) return raw.status();
    rpc::Reader r(*raw);
    auto resp = rpc::ReadRecoverySegmentResponse::Decode(r);
    if (!resp.ok()) return resp.status();
    if (resp->status != StatusCode::kOk) {
      return Status(resp->status, "recovery segment read failed");
    }

    // Partition the segment's chunk frames per (target broker, stream).
    struct Pending {
      rpc::ProduceRequest req;
    };
    std::map<std::pair<NodeId, StreamId>, Pending> pending;
    std::span<const std::byte> rest = resp->payload;
    while (!rest.empty()) {
      auto chunk = ChunkView::Parse(rest);
      if (!chunk.ok()) return chunk.status();
      StreamId stream = chunk->stream_id();
      StreamletId streamlet = chunk->streamlet_id();
      size_t advance = chunk->total_size();
      if (!filter(stream, streamlet)) {
        rest = rest.subspan(advance);
        continue;
      }
      NodeId target;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = streams_by_id_.find(stream);
        if (it == streams_by_id_.end()) {
          return Status(StatusCode::kCorruption,
                        "recovered chunk for unknown stream");
        }
        target = it->second->info.streamlet_brokers[streamlet];
      }
      auto& p = pending[{target, stream}];
      p.req.stream = stream;
      p.req.recovery = true;
      p.req.producer = chunk->producer_id();
      p.req.chunks.push_back(chunk->raw());
      rest = rest.subspan(advance);
      ++replayed;
    }
    for (auto& [target_stream, p] : pending) {
      rpc::Writer pbody;
      p.req.Encode(pbody);
      auto presp_raw = network_.Call(
          target_stream.first, rpc::Frame(rpc::Opcode::kProduce, pbody));
      if (!presp_raw.ok()) return presp_raw.status();
      rpc::Reader pr(*presp_raw);
      auto presp = rpc::ProduceResponse::Decode(pr);
      if (!presp.ok()) return presp.status();
      if (presp->status != StatusCode::kOk) {
        return Status(presp->status, "recovery replay rejected");
      }
    }
  }

  // Close the rebuilt recovery groups so consumers advance past them to
  // any groups created by post-replay appends.
  {
    std::vector<Broker*> live_brokers;
    std::vector<StreamId> stream_ids;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [node, live] : alive_) {
        if (live) live_brokers.push_back(brokers_[node]);
      }
      for (const auto& [id, _] : streams_by_id_) stream_ids.push_back(id);
    }
    for (Broker* b : live_brokers) {
      for (StreamId id : stream_ids) {
        (void)b->FinishRecovery(id);  // kNotFound is fine: not hosted there
      }
    }
  }
  return replayed;
}

Result<uint64_t> Coordinator::MigrateStreamlet(const std::string& name,
                                               StreamletId streamlet,
                                               NodeId target) {
  StreamState* state;
  NodeId old_leader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_by_name_.find(name);
    if (it == streams_by_name_.end()) {
      return Status(StatusCode::kNotFound, "no such stream: " + name);
    }
    state = it->second.get();
    if (streamlet >= state->info.streamlet_brokers.size()) {
      return Status(StatusCode::kInvalidArgument, "no such streamlet");
    }
    if (state->info.options.replication_factor < 2) {
      // Migration replays from the backups; an unreplicated stream has no
      // backup copies to replay from.
      return Status(StatusCode::kInvalidArgument,
                    "cannot migrate a stream with replication factor 1");
    }
    auto live = alive_.find(target);
    if (live == alive_.end() || !live->second) {
      return Status(StatusCode::kUnavailable, "target broker not alive");
    }
    old_leader = state->info.streamlet_brokers[streamlet];
    if (old_leader == target) return uint64_t{0};
    // Flip leadership first so the replay below targets the new broker.
    state->info.streamlet_brokers[streamlet] = target;
  }
  KERA_RETURN_IF_ERROR(AnnounceLeadership(*state));

  // The old leader stops accepting appends; acknowledged data is already
  // on the backups (acks imply replication), so the replay below is
  // complete even for the freshest chunks.
  {
    Broker* old_broker = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = brokers_.find(old_leader);
      if (it != brokers_.end()) old_broker = it->second;
    }
    if (old_broker != nullptr) {
      KERA_RETURN_IF_ERROR(
          old_broker->DropStreamletLeadership(state->info.stream, streamlet));
    }
  }

  StreamId stream_id = state->info.stream;
  return ReplayFromBackups(
      old_leader, [stream_id, streamlet](StreamId s, StreamletId sl) {
        return s == stream_id && sl == streamlet;
      });
}


std::vector<std::byte> Coordinator::HandleRpc(
    std::span<const std::byte> request) {
  rpc::Opcode op;
  std::span<const std::byte> body;
  rpc::Writer out;
  Status s = rpc::ParseFrame(request, op, body);
  if (!s.ok()) {
    out.U8(uint8_t(s.code()));
    return std::move(out).Take();
  }
  rpc::Reader r(body);
  switch (op) {
    case rpc::Opcode::kCreateStream: {
      auto req = rpc::CreateStreamRequest::Decode(r);
      rpc::CreateStreamResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        auto info = CreateStream(req->name, req->options);
        if (info.ok()) {
          resp.info = *info;
        } else {
          resp.status = info.status().code();
        }
      }
      resp.Encode(out);
      break;
    }
    case rpc::Opcode::kSealStream: {
      auto req = rpc::SealStreamRequest::Decode(r);
      rpc::SealStreamResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        Status s2 = SealStream(req->name);
        resp.status = s2.code();
      }
      resp.Encode(out);
      break;
    }
    case rpc::Opcode::kGetStreamInfo: {
      auto req = rpc::GetStreamInfoRequest::Decode(r);
      rpc::GetStreamInfoResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        auto info = GetStreamInfo(req->name);
        if (info.ok()) {
          resp.info = *info;
        } else {
          resp.status = info.status().code();
        }
      }
      resp.Encode(out);
      break;
    }
    default:
      out.U8(uint8_t(StatusCode::kInvalidArgument));
      break;
  }
  return std::move(out).Take();
}

}  // namespace kera
