#include "coordinator/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "common/logging.h"
#include "wire/chunk.h"

namespace kera {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point since) {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - since)
                      .count());
}

/// Longest-processing-time-first makespan of `jobs` on `workers` identical
/// workers. Each job is an unbreakable chain (a vlog lane, or one backup's
/// read queue), so with one worker this is exactly the serial sum — which
/// makes modeled speedup = LptMakespan(jobs, 1) / LptMakespan(jobs, P).
uint64_t LptMakespan(std::vector<uint64_t> jobs, uint32_t workers) {
  if (jobs.empty()) return 0;
  if (workers <= 1) {
    return std::accumulate(jobs.begin(), jobs.end(), uint64_t{0});
  }
  std::sort(jobs.begin(), jobs.end(), std::greater<uint64_t>());
  std::vector<uint64_t> load(std::min<size_t>(workers, jobs.size()), 0);
  for (uint64_t j : jobs) {
    *std::min_element(load.begin(), load.end()) += j;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

/// One virtual segment of the crashed primary: the longest contiguous
/// copy's location, and (after the read phase) its payload.
struct Coordinator::RecoveryTask {
  VlogId vlog = 0;
  VirtualSegmentId vseg = 0;
  NodeId backup = 0;         // source holding the longest contiguous copy
  uint32_t chunk_count = 0;  // from the descriptor (diagnostics)
  std::vector<std::byte> payload;  // concatenated chunk frames
  uint64_t read_us = 0;    // attributed share of its batched read
  uint64_t replay_us = 0;  // measured replay wall time
};

Coordinator::Coordinator(rpc::Network& network, CoordinatorConfig config)
    : network_(network), config_(config) {}

void Coordinator::RegisterNode(NodeId node, Broker* broker, Backup* backup) {
  std::lock_guard<std::mutex> lock(mu_);
  brokers_[node] = broker;
  backups_[node] = backup;
  alive_[node] = true;
}

std::vector<NodeId> Coordinator::LiveBrokers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  for (const auto& [node, live] : alive_) {
    if (live) out.push_back(node);
  }
  return out;
}

Coordinator::RecoveryStats Coordinator::GetRecoveryStats() const {
  std::lock_guard<std::mutex> lock(recovery_stats_mu_);
  return recovery_stats_;
}

Status Coordinator::AnnounceLeadership(const StreamState& state) {
  // Tell every broker that leads at least one streamlet about the stream,
  // then about each of its streamlets.
  std::map<NodeId, std::vector<StreamletId>> per_broker;
  for (StreamletId sl = 0; sl < state.info.streamlet_brokers.size(); ++sl) {
    NodeId leader = state.info.streamlet_brokers[sl];
    if (leader != kInvalidNode) per_broker[leader].push_back(sl);
  }
  for (const auto& [node, streamlets] : per_broker) {
    Broker* broker;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = brokers_.find(node);
      if (it == brokers_.end()) {
        return Status(StatusCode::kNotFound, "unknown broker node");
      }
      broker = it->second;
    }
    KERA_RETURN_IF_ERROR(broker->AddStream(state.name, state.info));
    for (StreamletId sl : streamlets) {
      KERA_RETURN_IF_ERROR(broker->AddStreamlet(state.info.stream, sl));
    }
  }
  return OkStatus();
}

Result<rpc::StreamInfo> Coordinator::CreateStream(
    const std::string& name, const rpc::StreamOptions& options) {
  if (options.num_streamlets == 0 ||
      options.active_groups_per_streamlet == 0 ||
      options.replication_factor == 0) {
    return Status(StatusCode::kInvalidArgument, "bad stream options");
  }
  StreamState* state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (streams_by_name_.count(name) != 0) {
      return Status(StatusCode::kAlreadyExists, "stream exists: " + name);
    }
    std::vector<NodeId> live;
    for (const auto& [node, alive] : alive_) {
      if (alive) live.push_back(node);
    }
    if (live.empty()) {
      return Status(StatusCode::kUnavailable, "no live brokers");
    }
    if (options.replication_factor > live.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "replication factor exceeds cluster size");
    }
    auto owned = std::make_unique<StreamState>();
    owned->name = name;
    owned->info.stream = next_stream_id_++;
    owned->info.options = options;
    owned->info.streamlet_brokers.resize(options.num_streamlets);
    // Rotate the starting broker across stream creations so that many
    // small streams (1 streamlet each) still spread over the cluster.
    for (StreamletId sl = 0; sl < options.num_streamlets; ++sl) {
      owned->info.streamlet_brokers[sl] =
          live[(placement_cursor_ + sl) % live.size()];
    }
    placement_cursor_ =
        (placement_cursor_ + options.num_streamlets) % live.size();
    state = owned.get();
    streams_by_id_[owned->info.stream] = state;
    streams_by_name_.emplace(name, std::move(owned));
  }
  KERA_RETURN_IF_ERROR(AnnounceLeadership(*state));
  return state->info;
}

Result<rpc::StreamInfo> Coordinator::GetStreamInfo(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_by_name_.find(name);
  if (it == streams_by_name_.end()) {
    return Status(StatusCode::kNotFound, "no such stream: " + name);
  }
  return it->second->info;
}

Status Coordinator::SealStream(const std::string& name) {
  StreamState* state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_by_name_.find(name);
    if (it == streams_by_name_.end()) {
      return Status(StatusCode::kNotFound, "no such stream: " + name);
    }
    state = it->second.get();
    state->info.sealed = true;
  }
  std::set<NodeId> leaders(state->info.streamlet_brokers.begin(),
                           state->info.streamlet_brokers.end());
  for (NodeId node : leaders) {
    Broker* broker;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = brokers_.find(node);
      if (it == brokers_.end()) continue;
      broker = it->second;
    }
    KERA_RETURN_IF_ERROR(broker->SealStream(state->info.stream));
  }
  return OkStatus();
}

Result<uint64_t> Coordinator::RecoverNode(NodeId crashed) {
  const auto mttr_start = Clock::now();
  // 1. Mark dead and SCATTER the crashed broker's streamlets across all
  //    survivors: each lost streamlet goes to the survivor with the
  //    fewest projected streamlets (ingested bytes, then node id, break
  //    ties), so the recovered load — and the parallel replay below —
  //    spreads over the whole cluster instead of piling onto one
  //    successor. The pass is a pure function of coordinator metadata and
  //    broker counters, so deterministic workloads scatter destinations
  //    deterministically (the chaos harness depends on this).
  std::vector<NodeId> survivors;
  std::vector<StreamState*> affected;
  uint64_t scattered = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = alive_.find(crashed);
    if (it == alive_.end()) {
      return Status(StatusCode::kNotFound, "unknown node");
    }
    it->second = false;
    for (const auto& [node, live] : alive_) {
      if (live) survivors.push_back(node);
    }
    if (survivors.empty()) {
      return Status(StatusCode::kUnavailable, "no survivors");
    }
    struct Load {
      uint64_t streamlets = 0;
      uint64_t bytes = 0;
    };
    std::map<NodeId, Load> load;
    for (NodeId node : survivors) {
      load[node].bytes = brokers_[node]->GetStats().bytes_appended;
    }
    for (const auto& [_, state] : streams_by_name_) {
      for (NodeId leader : state->info.streamlet_brokers) {
        auto lit = load.find(leader);
        if (lit != load.end()) ++lit->second.streamlets;
      }
    }
    for (auto& [_, state] : streams_by_name_) {
      bool touched = false;
      for (auto& leader : state->info.streamlet_brokers) {
        if (leader != crashed) continue;
        NodeId best = survivors.front();
        for (NodeId candidate : survivors) {
          const Load& c = load[candidate];
          const Load& b = load[best];
          if (std::tie(c.streamlets, c.bytes, candidate) <
              std::tie(b.streamlets, b.bytes, best)) {
            best = candidate;
          }
        }
        leader = best;
        ++load[best].streamlets;
        ++scattered;
        touched = true;
      }
      if (touched) affected.push_back(state.get());
    }
  }
  // Tell survivors which backup services remain so their virtual logs
  // stop targeting the dead node for new virtual segments.
  PushLiveBackups();

  // 2. Fast re-point: announcing the new leaderships creates the storage
  //    objects on the survivors and wakes their parked consume long-polls
  //    (Broker::AddStreamlet -> NotifyConsumeWaitersAllShards), so
  //    clients re-resolve and reach the new leaders while the replay
  //    below is still streaming data in.
  for (StreamState* state : affected) {
    KERA_RETURN_IF_ERROR(AnnounceLeadership(*state));
  }

  // 3. Replay everything the crashed broker led from the surviving
  //    backups into the new leaders (parallel scatter-gather engine).
  auto replayed =
      ReplayFromBackups(crashed, [](StreamId, StreamletId) { return true; });
  if (!replayed.ok()) return replayed;

  // 4. The replay re-produced (and re-replicated, synchronously on the
  //    produce path) everything the crashed broker led, so the copies the
  //    backups still hold for it are garbage: evacuate them. Best-effort —
  //    a backup that is down keeps its stale copies until its next
  //    incarnation, which is merely unreclaimed space, never wrong data
  //    (replay is keyed by primary and the primary is gone for good).
  EvacuateBackups(crashed);
  {
    std::lock_guard<std::mutex> lock(recovery_stats_mu_);
    ++recovery_stats_.recoveries;
    recovery_stats_.streamlets_scattered += scattered;
    recovery_stats_.last_mttr_us = ElapsedUs(mttr_start);
  }
  return replayed;
}

uint64_t Coordinator::EvacuateBackups(NodeId primary) {
  std::vector<NodeId> backup_services;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, live] : alive_) {
      if (live && backup_down_.count(node) == 0) {
        backup_services.push_back(BackupServiceId(node));
      }
    }
  }
  uint64_t dropped = 0;
  for (NodeId backup : backup_services) {
    rpc::EvacuateBackupSegmentsRequest req;
    req.primary = primary;
    rpc::Writer body;
    req.Encode(body);
    auto raw = network_.Call(
        backup, rpc::Frame(rpc::Opcode::kEvacuateBackupSegments, body));
    if (!raw.ok()) continue;
    rpc::Reader r(*raw);
    auto resp = rpc::EvacuateBackupSegmentsResponse::Decode(r);
    if (resp.ok() && resp->status == StatusCode::kOk) {
      dropped += resp->dropped;
    }
  }
  return dropped;
}

void Coordinator::PushLiveBackups() {
  std::vector<NodeId> live_backup_services;
  std::vector<Broker*> live_brokers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, live] : alive_) {
      if (!live) continue;
      if (backup_down_.count(node) == 0) {
        live_backup_services.push_back(BackupServiceId(node));
      }
      live_brokers.push_back(brokers_[node]);
    }
  }
  for (Broker* b : live_brokers) b->SetLiveBackups(live_backup_services);
}

Status Coordinator::RejoinNode(NodeId node, Broker* broker, Backup* backup) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = alive_.find(node);
    if (it == alive_.end()) {
      return Status(StatusCode::kNotFound, "unknown node");
    }
    if (it->second) {
      return Status(StatusCode::kAlreadyExists, "node is still alive");
    }
    // RecoverNode scattered every streamlet away from the dead node; a
    // leftover leadership would mean the caller skipped recovery and the
    // fresh (empty) broker would silently lead data it does not hold.
    for (const auto& [_, state] : streams_by_name_) {
      for (NodeId leader : state->info.streamlet_brokers) {
        if (leader == node) {
          return Status(StatusCode::kInvalidArgument,
                        "node still leads a streamlet; recover it first");
        }
      }
    }
    brokers_[node] = broker;
    backups_[node] = backup;
    backup_down_.erase(node);
    it->second = true;
  }
  PushLiveBackups();
  return OkStatus();
}

void Coordinator::NoteBackupDown(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    backup_down_.insert(node);
  }
  PushLiveBackups();
}

void Coordinator::NoteBackupUp(NodeId node, Backup* backup) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    backups_[node] = backup;
    backup_down_.erase(node);
  }
  PushLiveBackups();
}

Status Coordinator::ReplayTask(
    NodeId primary, RecoveryTask& task,
    const std::function<bool(StreamId, StreamletId)>& filter,
    uint64_t* chunks, uint64_t* bytes) {
  (void)primary;
  // Partition the segment's chunk frames per (target broker, stream,
  // streamlet): single-streamlet requests land shard-pure on a sharded
  // broker (HomeShardOf routes by the first chunk's streamlet, and every
  // chunk here shares it).
  std::map<std::tuple<NodeId, StreamId, StreamletId>, rpc::ProduceRequest>
      pending;
  std::span<const std::byte> rest = task.payload;
  while (!rest.empty()) {
    auto chunk = ChunkView::Parse(rest);
    if (!chunk.ok()) return chunk.status();
    StreamId stream = chunk->stream_id();
    StreamletId streamlet = chunk->streamlet_id();
    size_t advance = chunk->total_size();
    if (!filter(stream, streamlet)) {
      rest = rest.subspan(advance);
      continue;
    }
    NodeId target;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = streams_by_id_.find(stream);
      if (it == streams_by_id_.end()) {
        return Status(StatusCode::kCorruption,
                      "recovered chunk for unknown stream");
      }
      target = it->second->info.streamlet_brokers[streamlet];
    }
    auto& p = pending[{target, stream, streamlet}];
    p.stream = stream;
    p.recovery = true;
    p.producer = chunk->producer_id();
    p.chunks.push_back(chunk->raw());
    rest = rest.subspan(advance);
    *bytes += chunk->raw().size();
    ++*chunks;
  }
  for (auto& [key, p] : pending) {
    rpc::Writer pbody;
    p.Encode(pbody);
    auto presp_raw =
        network_.Call(std::get<0>(key), rpc::Frame(rpc::Opcode::kProduce, pbody));
    if (!presp_raw.ok()) return presp_raw.status();
    rpc::Reader pr(*presp_raw);
    auto presp = rpc::ProduceResponse::Decode(pr);
    if (!presp.ok()) return presp.status();
    if (presp->status != StatusCode::kOk) {
      return Status(presp->status, "recovery replay rejected");
    }
  }
  return OkStatus();
}

Result<uint64_t> Coordinator::ReplayFromBackups(
    NodeId primary,
    const std::function<bool(StreamId, StreamletId)>& filter) {
  // Collect `primary`'s replicated virtual segments from every backup.
  // Several backups can hold the same virtual segment (R > 2) — keep one
  // source per segment; different segments spread over different backups
  // get read independently (the paper's parallel recovery).
  std::vector<NodeId> backup_services;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, live] : alive_) {
      if (live && backup_down_.count(node) == 0) {
        backup_services.push_back(BackupServiceId(node));
      }
    }
  }
  struct Source {
    NodeId backup;
    rpc::RecoverySegmentDescriptor desc;
  };
  std::map<std::pair<VlogId, VirtualSegmentId>, Source> sources;
  for (NodeId backup : backup_services) {
    rpc::ListRecoverySegmentsRequest req;
    req.crashed = primary;
    rpc::Writer body;
    req.Encode(body);
    auto raw = network_.Call(backup, rpc::Frame(
        rpc::Opcode::kListRecoverySegments, body));
    if (!raw.ok()) continue;  // that backup may be down too
    rpc::Reader r(*raw);
    auto resp = rpc::ListRecoverySegmentsResponse::Decode(r);
    if (!resp.ok() || resp->status != StatusCode::kOk) continue;
    for (const auto& desc : resp->segments) {
      // Copies of one virtual segment can differ in length: a backup that
      // (re)started mid-stream holds only a suffix buffered as pending —
      // its contiguous chunk_count is short (possibly zero) while a
      // backup that followed from the start holds everything. Replay from
      // the longest contiguous copy; every chunk the primary acked is in
      // at least one backup's contiguous prefix.
      auto [it, inserted] =
          sources.try_emplace({desc.vlog, desc.vseg}, Source{backup, desc});
      if (!inserted && desc.chunk_count > it->second.desc.chunk_count) {
        it->second = Source{backup, desc};
      }
    }
  }

  // One recovery task per (vlog, virtual segment). Replay order matters
  // only WITHIN a vlog: all chunks of a group — and
  // all chunks of a (streamlet, producer) sequence — flow through exactly
  // one vlog in append order (a streamlet's shared-pool vlog is a pure
  // function of (stream, streamlet); a sub-partition slot is pinned by
  // producer % Q). So tasks of one vlog form a serial LANE in ascending
  // vseg order, and lanes replay concurrently, bounded by
  // recovery_parallelism.
  // Rank-major interleave: emit the i-th segment of EVERY vlog before any
  // vlog's (i+1)-th. A crashed broker's data often concentrates in few
  // vlogs (a shared-pool vlog is hashed per streamlet), and each wave
  // below only parallelizes across the lanes it contains — vlog-major
  // order would fill whole waves from a single lane. Per-vlog ascending
  // vseg order is preserved (sources is a (vlog, vseg)-ordered map), so
  // lanes stay serial chains across wave boundaries.
  std::vector<RecoveryTask> tasks;
  tasks.reserve(sources.size());
  {
    std::map<VlogId, std::vector<const Source*>> by_vlog;
    for (const auto& [key, source] : sources) {
      by_vlog[key.first].push_back(&source);
    }
    for (size_t rank = 0; tasks.size() < sources.size(); ++rank) {
      for (const auto& [vlog, group] : by_vlog) {
        if (rank >= group.size()) continue;
        const Source& source = *group[rank];
        RecoveryTask t;
        t.vlog = source.desc.vlog;
        t.vseg = source.desc.vseg;
        t.backup = source.backup;
        t.chunk_count = source.desc.chunk_count;
        tasks.push_back(std::move(t));
      }
    }
  }

  const uint32_t parallelism = std::max<uint32_t>(1, config_.recovery_parallelism);
  const uint32_t read_batch = std::max<uint32_t>(1, config_.recovery_read_batch);
  const bool use_threads = config_.recovery_use_threads && parallelism > 1;
  // Waves bound the payload memory held at once to roughly
  // parallelism * read_batch segments; the rank-major interleave above
  // keeps every lane's tasks in order across wave boundaries.
  const size_t wave_size = size_t(parallelism) * size_t(read_batch);

  const auto replay_start = Clock::now();
  uint64_t chunks_total = 0;
  uint64_t bytes_total = 0;
  uint64_t read_rpcs = 0;
  uint64_t modeled_mttr = 0;
  uint64_t modeled_serial = 0;
  uint64_t peak_fanout = 0;
  Histogram task_hist;

  for (size_t wave = 0; wave < tasks.size(); wave += wave_size) {
    const size_t wave_end = std::min(tasks.size(), wave + wave_size);

    // ---- read phase: batched reads, grouped per source backup ----------
    struct ReadBatch {
      NodeId backup = 0;
      std::vector<size_t> task_idx;
      uint64_t cost_us = 0;
    };
    std::vector<ReadBatch> batches;
    {
      std::map<NodeId, std::vector<size_t>> by_backup;
      for (size_t i = wave; i < wave_end; ++i) {
        by_backup[tasks[i].backup].push_back(i);
      }
      for (auto& [backup, idx] : by_backup) {
        for (size_t off = 0; off < idx.size(); off += read_batch) {
          ReadBatch b;
          b.backup = backup;
          b.task_idx.assign(
              idx.begin() + off,
              idx.begin() + std::min(idx.size(), off + read_batch));
          batches.push_back(std::move(b));
        }
      }
    }
    auto encode_batch = [&](const ReadBatch& b) {
      rpc::ReadRecoverySegmentBatchRequest req;
      req.crashed = primary;
      for (size_t i : b.task_idx) {
        req.items.push_back({tasks[i].vlog, tasks[i].vseg});
      }
      rpc::Writer body;
      req.Encode(body);
      return rpc::Frame(rpc::Opcode::kReadRecoverySegmentBatch, body);
    };
    auto apply_batch = [&](const ReadBatch& b,
                           const std::vector<std::byte>& raw) -> Status {
      rpc::Reader r(raw);
      auto resp = rpc::ReadRecoverySegmentBatchResponse::Decode(r);
      if (!resp.ok()) return resp.status();
      if (resp->status != StatusCode::kOk || resp->items.size() != b.task_idx.size()) {
        return Status(resp->status == StatusCode::kOk ? StatusCode::kCorruption
                                                      : resp->status,
                      "recovery batch read failed");
      }
      for (size_t j = 0; j < b.task_idx.size(); ++j) {
        const auto& item = resp->items[j];
        if (item.status != StatusCode::kOk) {
          return Status(item.status, "recovery segment read failed");
        }
        RecoveryTask& t = tasks[b.task_idx[j]];
        t.payload.assign(item.payload.begin(), item.payload.end());
      }
      return OkStatus();
    };
    read_rpcs += batches.size();
    if (use_threads) {
      // All of a wave's batches in flight at once (they target distinct
      // round trips; the transport bounds per-node concurrency).
      std::vector<std::future<Result<std::vector<std::byte>>>> futures;
      futures.reserve(batches.size());
      for (const ReadBatch& b : batches) {
        futures.push_back(network_.CallAsync(b.backup, encode_batch(b)));
      }
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        auto raw = futures[bi].get();
        if (!raw.ok()) return raw.status();
        KERA_RETURN_IF_ERROR(apply_batch(batches[bi], *raw));
      }
    } else {
      for (ReadBatch& b : batches) {
        const auto start = Clock::now();
        auto raw = network_.Call(b.backup, encode_batch(b));
        if (!raw.ok()) return raw.status();
        KERA_RETURN_IF_ERROR(apply_batch(b, *raw));
        b.cost_us = ElapsedUs(start);
        for (size_t i : b.task_idx) {
          tasks[i].read_us = b.cost_us / b.task_idx.size();
        }
      }
    }

    // ---- replay phase: per-vlog lanes, parallel across lanes -----------
    // Wave order is rank-major, so grouping by vlog VALUE keeps each
    // lane's tasks in ascending vseg order.
    std::vector<std::vector<size_t>> lanes;
    {
      std::map<VlogId, size_t> lane_of;
      for (size_t i = wave; i < wave_end; ++i) {
        auto [it, inserted] = lane_of.try_emplace(tasks[i].vlog, lanes.size());
        if (inserted) lanes.emplace_back();
        lanes[it->second].push_back(i);
      }
    }
    peak_fanout = std::max<uint64_t>(
        peak_fanout, std::min<uint64_t>(parallelism, lanes.size()));

    Status replay_status = OkStatus();
    if (use_threads && lanes.size() > 1) {
      std::atomic<size_t> next_lane{0};
      std::atomic<bool> failed{false};
      std::mutex result_mu;
      auto worker = [&] {
        for (;;) {
          size_t li = next_lane.fetch_add(1, std::memory_order_relaxed);
          if (li >= lanes.size() || failed.load(std::memory_order_relaxed)) {
            return;
          }
          for (size_t i : lanes[li]) {
            uint64_t chunks = 0, bytes = 0;
            const auto start = Clock::now();
            Status s = ReplayTask(primary, tasks[i], filter, &chunks, &bytes);
            tasks[i].replay_us = ElapsedUs(start);
            std::lock_guard<std::mutex> lock(result_mu);
            chunks_total += chunks;
            bytes_total += bytes;
            if (!s.ok()) {
              if (replay_status.ok()) replay_status = s;
              failed.store(true, std::memory_order_relaxed);
              return;
            }
          }
        }
      };
      const size_t n_workers = std::min<size_t>(parallelism, lanes.size());
      std::vector<std::thread> threads;
      threads.reserve(n_workers);
      for (size_t w = 0; w < n_workers; ++w) threads.emplace_back(worker);
      for (auto& t : threads) t.join();
    } else {
      for (const auto& lane : lanes) {
        for (size_t i : lane) {
          uint64_t chunks = 0, bytes = 0;
          const auto start = Clock::now();
          Status s = ReplayTask(primary, tasks[i], filter, &chunks, &bytes);
          tasks[i].replay_us = ElapsedUs(start);
          chunks_total += chunks;
          bytes_total += bytes;
          if (!s.ok()) {
            replay_status = s;
            break;
          }
        }
        if (!replay_status.ok()) break;
      }
    }
    if (!replay_status.ok()) return replay_status;

    // ---- model the wave's parallel makespan (serial path only) ---------
    if (!use_threads) {
      // Reads: each backup serves its own batches serially; distinct
      // backups stream concurrently, bounded by parallelism. Replay:
      // lanes are unbreakable chains over `parallelism` workers. With
      // parallelism == 1 both terms collapse to the measured serial sum,
      // so the serial baseline and the model share one clock.
      std::map<NodeId, uint64_t> read_per_backup;
      for (const ReadBatch& b : batches) read_per_backup[b.backup] += b.cost_us;
      std::vector<uint64_t> read_jobs;
      for (const auto& [_, us] : read_per_backup) read_jobs.push_back(us);
      std::vector<uint64_t> lane_jobs;
      for (const auto& lane : lanes) {
        uint64_t us = 0;
        for (size_t i : lane) us += tasks[i].replay_us;
        lane_jobs.push_back(us);
      }
      modeled_mttr += LptMakespan(read_jobs, parallelism) +
                      LptMakespan(lane_jobs, parallelism);
      modeled_serial += LptMakespan(std::move(read_jobs), 1) +
                        LptMakespan(std::move(lane_jobs), 1);
    }
    for (size_t i = wave; i < wave_end; ++i) {
      task_hist.Record(tasks[i].replay_us);
      tasks[i].payload.clear();
      tasks[i].payload.shrink_to_fit();
    }
  }

  // Close the rebuilt recovery groups so consumers advance past them to
  // any groups created by post-replay appends (wakes parked long-polls:
  // the fast re-point's second edge).
  {
    std::vector<Broker*> live_brokers;
    std::vector<StreamId> stream_ids;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [node, live] : alive_) {
        if (live) live_brokers.push_back(brokers_[node]);
      }
      for (const auto& [id, _] : streams_by_id_) stream_ids.push_back(id);
    }
    for (Broker* b : live_brokers) {
      for (StreamId id : stream_ids) {
        (void)b->FinishRecovery(id);  // kNotFound is fine: not hosted there
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(recovery_stats_mu_);
    recovery_stats_.tasks_issued += tasks.size();
    recovery_stats_.chunks_replayed += chunks_total;
    recovery_stats_.bytes_replayed += bytes_total;
    recovery_stats_.read_rpcs += read_rpcs;
    recovery_stats_.read_rpcs_saved += tasks.size() - read_rpcs;
    recovery_stats_.peak_fanout =
        std::max(recovery_stats_.peak_fanout, peak_fanout);
    if (use_threads) {
      recovery_stats_.modeled_mttr_us = ElapsedUs(replay_start);
      recovery_stats_.modeled_serial_us = 0;  // wall clock is authoritative
    } else {
      recovery_stats_.modeled_mttr_us = modeled_mttr;
      recovery_stats_.modeled_serial_us = modeled_serial;
    }
    recovery_stats_.task_replay_us.Merge(task_hist);
  }
  return chunks_total;
}

Result<uint64_t> Coordinator::MigrateStreamlet(const std::string& name,
                                               StreamletId streamlet,
                                               NodeId target) {
  StreamState* state;
  NodeId old_leader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_by_name_.find(name);
    if (it == streams_by_name_.end()) {
      return Status(StatusCode::kNotFound, "no such stream: " + name);
    }
    state = it->second.get();
    if (streamlet >= state->info.streamlet_brokers.size()) {
      return Status(StatusCode::kInvalidArgument, "no such streamlet");
    }
    if (state->info.options.replication_factor < 2) {
      // Migration replays from the backups; an unreplicated stream has no
      // backup copies to replay from.
      return Status(StatusCode::kInvalidArgument,
                    "cannot migrate a stream with replication factor 1");
    }
    auto live = alive_.find(target);
    if (live == alive_.end() || !live->second) {
      return Status(StatusCode::kUnavailable, "target broker not alive");
    }
    old_leader = state->info.streamlet_brokers[streamlet];
    if (old_leader == target) return uint64_t{0};
    // Flip leadership first so the replay below targets the new broker.
    state->info.streamlet_brokers[streamlet] = target;
  }
  KERA_RETURN_IF_ERROR(AnnounceLeadership(*state));

  // The old leader stops accepting appends; acknowledged data is already
  // on the backups (acks imply replication), so the replay below is
  // complete even for the freshest chunks.
  {
    Broker* old_broker = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = brokers_.find(old_leader);
      if (it != brokers_.end()) old_broker = it->second;
    }
    if (old_broker != nullptr) {
      KERA_RETURN_IF_ERROR(
          old_broker->DropStreamletLeadership(state->info.stream, streamlet));
    }
  }

  StreamId stream_id = state->info.stream;
  return ReplayFromBackups(
      old_leader, [stream_id, streamlet](StreamId s, StreamletId sl) {
        return s == stream_id && sl == streamlet;
      });
}


std::pair<ProducerId, uint32_t> Coordinator::AllocateProducer(
    ProducerId producer) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t& epoch = producer_epochs_[producer];
  ++epoch;
  return {producer, epoch};
}

std::vector<std::byte> Coordinator::HandleRpc(
    std::span<const std::byte> request) {
  rpc::Opcode op;
  std::span<const std::byte> body;
  rpc::Writer out;
  Status s = rpc::ParseFrame(request, op, body);
  if (!s.ok()) {
    out.U8(uint8_t(s.code()));
    return std::move(out).Take();
  }
  rpc::Reader r(body);
  switch (op) {
    case rpc::Opcode::kCreateStream: {
      auto req = rpc::CreateStreamRequest::Decode(r);
      rpc::CreateStreamResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        auto info = CreateStream(req->name, req->options);
        if (info.ok()) {
          resp.info = *info;
        } else {
          resp.status = info.status().code();
        }
      }
      resp.Encode(out);
      break;
    }
    case rpc::Opcode::kSealStream: {
      auto req = rpc::SealStreamRequest::Decode(r);
      rpc::SealStreamResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        Status s2 = SealStream(req->name);
        resp.status = s2.code();
      }
      resp.Encode(out);
      break;
    }
    case rpc::Opcode::kGetStreamInfo: {
      auto req = rpc::GetStreamInfoRequest::Decode(r);
      rpc::GetStreamInfoResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        auto info = GetStreamInfo(req->name);
        if (info.ok()) {
          resp.info = *info;
        } else {
          resp.status = info.status().code();
        }
      }
      resp.Encode(out);
      break;
    }
    case rpc::Opcode::kAllocateProducer: {
      auto req = rpc::AllocateProducerRequest::Decode(r);
      rpc::AllocateProducerResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        auto [pid, epoch] = AllocateProducer(req->producer);
        resp.producer = pid;
        resp.epoch = epoch;
      }
      resp.Encode(out);
      break;
    }
    default:
      out.U8(uint8_t(StatusCode::kInvalidArgument));
      break;
  }
  return std::move(out).Take();
}

}  // namespace kera
