// Coordinator: cluster metadata and control plane. Creates streams
// (placing streamlets across brokers round-robin), serves stream lookups,
// and orchestrates crash recovery RAMCloud-style: after a broker failure
// its streamlets are SCATTERED across all survivors (balancing
// post-recovery load), and its backup copies are re-ingested by a
// parallel scatter-gather engine — one recovery task per virtual segment,
// pulled from the backups with batched reads and replayed into the new
// leaders as recovery producer requests, fanned out across per-vlog lanes
// bounded by `recovery_parallelism`.
//
// Membership changes and recovery use direct in-process calls to brokers
// (control plane); stream metadata lookups and all data-path traffic go
// through the RPC network.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "backup/backup.h"
#include "broker/broker.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/messages.h"
#include "rpc/transport.h"

namespace kera {

struct CoordinatorConfig {
  /// Max concurrent recovery lanes (a lane is all virtual segments of one
  /// vlog, replayed in order) and concurrent batched backup reads. 1
  /// reproduces the serial replay exactly.
  uint32_t recovery_parallelism = 4;
  /// Virtual segments pulled per batched backup-read RPC (kReadRecovery-
  /// SegmentBatch): one round trip covers a whole batch instead of one
  /// RPC per segment.
  uint32_t recovery_read_batch = 8;
  /// Fan recovery lanes out over real threads. Only safe when the Network
  /// tolerates concurrent callers end to end (Threaded/Socket
  /// transports). When false — DirectNetwork, the DES, the chaos
  /// harness's single-threaded ChaosNetwork — execution stays serial and
  /// deterministic, and the parallel makespan is MODELED from measured
  /// per-task costs instead (RecoveryStats::modeled_mttr_us).
  bool recovery_use_threads = false;
};

class Coordinator final : public rpc::RpcHandler {
 public:
  explicit Coordinator(rpc::Network& network, CoordinatorConfig config = {});

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Registers a cluster node hosting a broker and a backup service.
  void RegisterNode(NodeId node, Broker* broker, Backup* backup);

  /// Creates a stream: assigns a StreamId, places its streamlets over the
  /// live brokers round-robin, and announces leadership to the brokers.
  Result<rpc::StreamInfo> CreateStream(const std::string& name,
                                       const rpc::StreamOptions& options);

  Result<rpc::StreamInfo> GetStreamInfo(const std::string& name) const;

  /// Seals a stream cluster-wide (bounded stream / object §IV.A): every
  /// leader closes its active groups and rejects further appends.
  Status SealStream(const std::string& name);

  /// Allocates (or re-allocates) an idempotent-producer session: every
  /// call for the same producer id bumps its epoch, fencing any previous
  /// instance that still stamps chunks with the old epoch (brokers reject
  /// those with kFenced). Epochs start at 1 — 0 is the "no epoch"
  /// sentinel of the classic chunk format. Consumers use the same
  /// allocator under their system producer id (0x80000000 | consumer) so
  /// a restarted consumer's offset commits fence its predecessor's.
  [[nodiscard]] std::pair<ProducerId, uint32_t> AllocateProducer(
      ProducerId producer);

  /// Marks `crashed` dead, scatters its streamlets across ALL surviving
  /// brokers (balancing each survivor's post-recovery streamlet count,
  /// with ingested bytes as the tiebreak), and replays all of its data
  /// from the backups into the new leaders through the parallel recovery
  /// engine. Returns the number of chunks replayed.
  Result<uint64_t> RecoverNode(NodeId crashed);

  /// Re-admits a node that was marked dead by RecoverNode, with fresh
  /// broker/backup instances (restart-after-crash: the old in-memory state
  /// is gone). The node must not lead any streamlet — RecoverNode moved
  /// its leaderships away — and rejoins as an empty member: new streams
  /// may place streamlets on it and new virtual segments may target its
  /// backup service. Pushes the refreshed backup membership to every live
  /// broker. Errors if the node is unknown, still alive, or still leads.
  Status RejoinNode(NodeId node, Broker* broker, Backup* backup);

  /// A node's backup service crashed (in-memory replicas lost) while its
  /// broker stays up. Newly opened virtual segments stop targeting it.
  void NoteBackupDown(NodeId node);

  /// The node's backup service is serving again (a fresh, empty instance).
  void NoteBackupUp(NodeId node, Backup* backup);

  /// Migrates one streamlet to `target` (the paper's horizontal
  /// scalability: streamlets move to new brokers). The acknowledged data
  /// is replayed from the backups into the target — the same machinery as
  /// crash recovery, without a crash — and the old leader relinquishes
  /// leadership. Producers/consumers should re-resolve the stream
  /// afterwards. Returns chunks replayed.
  Result<uint64_t> MigrateStreamlet(const std::string& name,
                                    StreamletId streamlet, NodeId target);

  std::vector<std::byte> HandleRpc(std::span<const std::byte> request) override;

  [[nodiscard]] std::vector<NodeId> LiveBrokers() const;

  /// Recovery-engine telemetry. Counts (tasks, segments, chunks, bytes,
  /// RPCs, fan-out) are deterministic for a deterministic workload; the
  /// *_us timing fields are wall-clock measurements — report them, never
  /// compare them across runs.
  struct RecoveryStats {
    uint64_t recoveries = 0;             // RecoverNode calls that replayed
    uint64_t streamlets_scattered = 0;   // leaderships moved by recovery
    uint64_t tasks_issued = 0;           // one per (vlog, vseg) replayed
    uint64_t chunks_replayed = 0;
    uint64_t bytes_replayed = 0;         // chunk-frame bytes re-ingested
    uint64_t read_rpcs = 0;              // batched read RPCs issued
    uint64_t read_rpcs_saved = 0;        // vs one read RPC per segment
    uint64_t peak_fanout = 0;            // max concurrent recovery lanes
    /// Measured wall time of the last RecoverNode (time-to-full-service:
    /// placement + re-point + replay + recovery-group close).
    uint64_t last_mttr_us = 0;
    /// Modeled makespan of the last replay at recovery_parallelism
    /// workers (LPT over per-vlog lane costs + per-backup read costs),
    /// and the same tasks on one worker. On the serial/deterministic
    /// path these are the headline MTTR numbers; with
    /// recovery_use_threads the wall clock is authoritative.
    uint64_t modeled_mttr_us = 0;
    uint64_t modeled_serial_us = 0;
    Histogram task_replay_us;            // per-task replay wall time
  };
  [[nodiscard]] RecoveryStats GetRecoveryStats() const;

  [[nodiscard]] const CoordinatorConfig& config() const { return config_; }

 private:
  struct StreamState {
    std::string name;
    rpc::StreamInfo info;
  };

  /// Announces (stream, streamlet) leadership to the broker, creating the
  /// storage objects there.
  Status AnnounceLeadership(const StreamState& state);

  /// Replays every chunk of `primary`'s virtual segments (held by the
  /// surviving backups) that matches `filter` into the current leaders,
  /// as recovery produce requests — the parallel scatter-gather engine.
  /// Shared by RecoverNode and MigrateStreamlet.
  Result<uint64_t> ReplayFromBackups(
      NodeId primary,
      const std::function<bool(StreamId, StreamletId)>& filter);

  /// Pushes the current live backup-service membership (alive nodes whose
  /// backup is not independently down) to every live broker.
  void PushLiveBackups();

  /// Tells every live backup service to drop the copies it holds for
  /// `primary`. Called after RecoverNode's replay: the data now lives at
  /// the new leaders (re-replicated synchronously on the produce path),
  /// so the old copies are garbage — evacuating them frees backup memory
  /// and lets the segment-log GC reclaim their on-disk records. Returns
  /// copies dropped.
  uint64_t EvacuateBackups(NodeId primary);

  /// One (vlog, vseg) of the crashed primary: where to read it from and,
  /// after the read phase, its payload.
  struct RecoveryTask;
  /// Replays one task's chunk frames into the current leaders. Recovery
  /// produce requests are partitioned per (target, stream, streamlet) so
  /// each lands shard-pure on a sharded broker.
  Status ReplayTask(NodeId primary, RecoveryTask& task,
                    const std::function<bool(StreamId, StreamletId)>& filter,
                    uint64_t* chunks, uint64_t* bytes);

  rpc::Network& network_;
  const CoordinatorConfig config_;
  mutable std::mutex mu_;
  std::map<NodeId, Broker*> brokers_;
  std::map<NodeId, Backup*> backups_;
  std::map<NodeId, bool> alive_;
  /// Nodes whose backup service is down while the broker is alive.
  std::set<NodeId> backup_down_;
  std::map<std::string, std::unique_ptr<StreamState>> streams_by_name_;
  std::map<StreamId, StreamState*> streams_by_id_;
  StreamId next_stream_id_ = 1;
  size_t placement_cursor_ = 0;  // rotates streamlet placement
  /// Last allocated epoch per producer id (0 = never allocated).
  std::map<ProducerId, uint32_t> producer_epochs_;

  mutable std::mutex recovery_stats_mu_;
  RecoveryStats recovery_stats_;
};

}  // namespace kera
