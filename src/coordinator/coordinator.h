// Coordinator: cluster metadata and control plane. Creates streams
// (placing streamlets across brokers round-robin), serves stream lookups,
// and orchestrates crash recovery: after a broker failure it reassigns the
// crashed broker's streamlets and replays every virtual segment replicated
// on the surviving backups into the new leaders, as normal (recovery)
// producer requests.
//
// Membership changes and recovery use direct in-process calls to brokers
// (control plane); stream metadata lookups and all data-path traffic go
// through the RPC network.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "backup/backup.h"
#include "broker/broker.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/messages.h"
#include "rpc/transport.h"

namespace kera {

class Coordinator final : public rpc::RpcHandler {
 public:
  explicit Coordinator(rpc::Network& network);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Registers a cluster node hosting a broker and a backup service.
  void RegisterNode(NodeId node, Broker* broker, Backup* backup);

  /// Creates a stream: assigns a StreamId, places its streamlets over the
  /// live brokers round-robin, and announces leadership to the brokers.
  Result<rpc::StreamInfo> CreateStream(const std::string& name,
                                       const rpc::StreamOptions& options);

  Result<rpc::StreamInfo> GetStreamInfo(const std::string& name) const;

  /// Seals a stream cluster-wide (bounded stream / object §IV.A): every
  /// leader closes its active groups and rejects further appends.
  Status SealStream(const std::string& name);

  /// Marks `crashed` dead, reassigns its streamlets to the surviving
  /// brokers, and replays all of its data from the backups into the new
  /// leaders. Returns the number of chunks replayed.
  Result<uint64_t> RecoverNode(NodeId crashed);

  /// Re-admits a node that was marked dead by RecoverNode, with fresh
  /// broker/backup instances (restart-after-crash: the old in-memory state
  /// is gone). The node must not lead any streamlet — RecoverNode moved
  /// its leaderships away — and rejoins as an empty member: new streams
  /// may place streamlets on it and new virtual segments may target its
  /// backup service. Pushes the refreshed backup membership to every live
  /// broker. Errors if the node is unknown, still alive, or still leads.
  Status RejoinNode(NodeId node, Broker* broker, Backup* backup);

  /// A node's backup service crashed (in-memory replicas lost) while its
  /// broker stays up. Newly opened virtual segments stop targeting it.
  void NoteBackupDown(NodeId node);

  /// The node's backup service is serving again (a fresh, empty instance).
  void NoteBackupUp(NodeId node, Backup* backup);

  /// Migrates one streamlet to `target` (the paper's horizontal
  /// scalability: streamlets move to new brokers). The acknowledged data
  /// is replayed from the backups into the target — the same machinery as
  /// crash recovery, without a crash — and the old leader relinquishes
  /// leadership. Producers/consumers should re-resolve the stream
  /// afterwards. Returns chunks replayed.
  Result<uint64_t> MigrateStreamlet(const std::string& name,
                                    StreamletId streamlet, NodeId target);

  std::vector<std::byte> HandleRpc(std::span<const std::byte> request) override;

  [[nodiscard]] std::vector<NodeId> LiveBrokers() const;

 private:
  struct StreamState {
    std::string name;
    rpc::StreamInfo info;
  };

  /// Announces (stream, streamlet) leadership to the broker, creating the
  /// storage objects there.
  Status AnnounceLeadership(const StreamState& state);

  /// Replays every chunk of `primary`'s virtual segments (held by the
  /// surviving backups) that matches `filter` into the current leaders,
  /// as recovery produce requests. Shared by RecoverNode and
  /// MigrateStreamlet.
  Result<uint64_t> ReplayFromBackups(
      NodeId primary,
      const std::function<bool(StreamId, StreamletId)>& filter);

  /// Pushes the current live backup-service membership (alive nodes whose
  /// backup is not independently down) to every live broker.
  void PushLiveBackups();

  /// Tells every live backup service to drop the copies it holds for
  /// `primary`. Called after RecoverNode's replay: the data now lives at
  /// the new leaders (re-replicated synchronously on the produce path),
  /// so the old copies are garbage — evacuating them frees backup memory
  /// and lets the segment-log GC reclaim their on-disk records. Returns
  /// copies dropped across the cluster.
  uint64_t EvacuateBackups(NodeId primary);

  rpc::Network& network_;
  mutable std::mutex mu_;
  std::map<NodeId, Broker*> brokers_;
  std::map<NodeId, Backup*> backups_;
  std::map<NodeId, bool> alive_;
  /// Nodes whose backup service is down while the broker is alive.
  std::set<NodeId> backup_down_;
  std::map<std::string, std::unique_ptr<StreamState>> streams_by_name_;
  std::map<StreamId, StreamState*> streams_by_id_;
  StreamId next_stream_id_ = 1;
  size_t placement_cursor_ = 0;  // rotates streamlet placement
};

}  // namespace kera
