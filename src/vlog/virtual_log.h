// Virtual log: a shared replicated log of chunk *references*, decoupling
// replication (durability) from stream partitioning (ordering). Multiple
// streams'/streamlets' partitions are associated with one virtual log; the
// log replicates their chunks to backups in larger aggregated I/Os,
// replacing one-replicated-log-per-partition (Kafka) with a consolidated
// shared log (the paper's core contribution, §III-IV).
//
// Replication is *pipelined*: up to config.replication_window batches may
// be outstanding per log. Issue order is the log order (oldest unissued
// refs first); completions may arrive out of order, but the durable prefix
// only advances over the contiguous prefix of completed batches, so
// durability (and everything derived from it: group durable counts,
// checksum chain, consumer visibility) stays ordered. Aborting a batch
// requeues its range and every batch issued after it.
//
// Threading: appends and replication-state transitions are internally
// synchronized; producers block in WaitDurable / WaitChunkDurable until
// the replication pipeline (driven by whichever thread polls batches —
// typically the broker's background Replicator) confirms their chunks.
// The DES harness drives Poll/Complete with simulated time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "vlog/virtual_segment.h"

namespace kera {

/// Picks the backup set for a newly opened virtual segment. Called with
/// the virtual segment id; returns R-1 distinct backup nodes. Rotating the
/// set per segment scatters replicas for parallel crash recovery.
using BackupSelector =
    std::function<std::vector<NodeId>(VirtualSegmentId)>;

struct VirtualLogConfig {
  /// Virtual capacity of one virtual segment (sum of referenced chunk
  /// lengths before rolling over).
  size_t virtual_segment_capacity = 8u << 20;
  /// Total copies of the data (1 = broker only, no backups).
  uint32_t replication_factor = 3;
  /// Max bytes of chunk data replicated by one RPC batch.
  size_t max_batch_bytes = 1u << 20;
  /// Max replication batches outstanding at once (1 = classic synchronous
  /// stop-and-wait replication; >1 pipelines batches so replication
  /// round-trips overlap and the backup links stay full).
  uint32_t replication_window = 1;
  /// First virtual segment id this log hands out. Backups key copies by
  /// (primary, vlog, vseg), so segment ids must never repeat across a
  /// primary's process incarnations — a restarted broker would otherwise
  /// collide with stale copies of its previous life still held by
  /// backups. Callers bake the incarnation into the high bits.
  VirtualSegmentId first_segment_id = 0;
};

/// A unit of replication work: a contiguous run of unreplicated chunk refs
/// of one virtual segment, to be pushed to that segment's backup set.
struct ReplicationBatch {
  uint64_t id = 0;                  // issue ticket; matches Complete/Abort
  VlogId vlog = 0;
  VirtualSegmentId vseg = 0;
  std::vector<NodeId> backups;
  uint64_t start_ref = 0;           // index of the first ref in the batch
  std::vector<ChunkRef> refs;       // the refs to ship
  size_t bytes = 0;                 // sum of chunk lengths
  uint64_t start_offset = 0;        // virtual byte offset of the batch start
  bool seals_segment = false;       // segment is closed and batch reaches end
  uint32_t checksum_after = 0;      // vseg header checksum after this batch
};

class VirtualLog {
 public:
  VirtualLog(VlogId id, VirtualLogConfig config, BackupSelector selector);

  VirtualLog(const VirtualLog&) = delete;
  VirtualLog& operator=(const VirtualLog&) = delete;

  /// Appends a chunk reference to the open virtual segment, rolling to a
  /// new virtual segment (with a fresh backup set) when full. With
  /// replication_factor == 1 the chunk is immediately durable.
  /// Returns the (virtual segment id, ref index) position.
  struct AppendPosition {
    VirtualSegmentId vseg;
    uint64_t ref_index;
  };
  AppendPosition Append(const ChunkRef& ref);

  /// Returns the next replication batch if unissued data is pending and
  /// the replication window has a free slot. Batches are issued in log
  /// order, each starting where the previous one (durable or in flight)
  /// ended. The caller ships the chunks to every backup in batch.backups
  /// and then calls Complete (or Abort on failure).
  [[nodiscard]] std::optional<ReplicationBatch> Poll();

  /// Acknowledges an outstanding batch. Completions may arrive out of
  /// order; the durable prefix (headers, group durability, waiter wakeup)
  /// advances only over the contiguous prefix of completed batches, in
  /// issue order. Completing a batch that was dropped by Abort/Evacuate is
  /// a no-op (the range was requeued and will be re-shipped).
  void Complete(const ReplicationBatch& batch);

  /// Returns an outstanding batch to the pending state (backup failure).
  /// The aborted batch AND every batch issued after it are requeued — a
  /// later batch must never become durable over a hole — and will be
  /// re-polled, possibly after the selector re-targets backups.
  void Abort(const ReplicationBatch& batch);

  /// Blocks until the chunk at `pos` is durably replicated. Threaded
  /// deployments call this from produce handlers; the DES never blocks.
  void WaitDurable(AppendPosition pos);

  /// Blocks until `pos` is durable OR the caller could usefully drive
  /// replication itself (unissued work pending and a window slot free).
  /// Returns IsDurable(pos). This is the building block of the
  /// synchronous produce handler's replicate-or-wait loop: whichever
  /// worker thread finds the vlog pollable ships the next batch, and the
  /// others sleep.
  [[nodiscard]] bool WaitDurableOrIdle(AppendPosition pos);

  /// Like WaitDurableOrIdle but tracks durability through the chunk's
  /// group (robust to segment evacuation, which renumbers positions).
  /// Returns whether the chunk is durable.
  [[nodiscard]] bool WaitChunkDurableOrIdle(const ChunkRef& ref);

  /// Blocks until the chunk is durable or replication of this log fails
  /// persistently (see NoteReplicationFailure). Returns OkStatus() when
  /// durable, the replication error otherwise. Producers parked on the
  /// background replicator use this: they never drive replication
  /// themselves, so plain WaitDurable could hang on a dead backup set.
  [[nodiscard]] Status WaitChunkDurable(const ChunkRef& ref);

  /// Records a failed shipping attempt. Returns true if the caller should
  /// retry (the failure budget is not yet exhausted); after too many
  /// consecutive failures it latches the error, wakes WaitChunkDurable
  /// callers with it, resets the budget, and returns false. Any Complete
  /// resets the consecutive-failure counter.
  bool NoteReplicationFailure(const Status& error);

  /// Backup-failure handling: closes the segment, moves its unreplicated
  /// refs (in order) to a fresh segment with a newly selected backup set,
  /// and wakes waiters. The already-durable prefix stays where it is.
  /// Outstanding batches covering the victim or any later segment are
  /// dropped from the window (their refs move, so late completions for
  /// them are ignored). Returns the number of refs moved.
  size_t EvacuateSegment(VirtualSegmentId vseg);
  [[nodiscard]] bool IsDurable(AppendPosition pos) const;

  [[nodiscard]] VlogId id() const { return id_; }
  [[nodiscard]] uint32_t replication_factor() const {
    return config_.replication_factor;
  }

  /// Broker shard that owns this log's shipping work in the shared-nothing
  /// runtime (streamlets of shard S only ever resolve to shard-S vlogs, so
  /// replication for a log is driven from one core). Set once by the
  /// broker at creation, before the log is shared; 0 in single-shard mode.
  void set_owner_shard(uint32_t shard) { owner_shard_ = shard; }
  [[nodiscard]] uint32_t owner_shard() const { return owner_shard_; }

  /// True if unissued replication work is pending (regardless of window
  /// occupancy — Poll may still return nullopt when the window is full).
  [[nodiscard]] bool HasWork() const;

  struct Stats {
    uint64_t chunks_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t batches_issued = 0;     // replication batches (per-vlog, not
                                     // per-backup; multiply by R-1 for RPCs)
    uint64_t bytes_replicated = 0;   // per-vlog (one copy)
    uint64_t segments_opened = 0;
    uint64_t max_inflight_batches = 0;  // high-water mark of the window
  };
  [[nodiscard]] Stats GetStats() const;

  /// Virtual segments, oldest first (recovery and tests).
  [[nodiscard]] std::vector<const VirtualSegment*> Segments() const;

  /// Drops fully replicated virtual segments older than the open one whose
  /// references are no longer needed (their chunk data durability has been
  /// propagated). Keeps memory bounded in long runs.
  size_t TrimReplicatedSegments();

 private:
  /// One issued-but-not-yet-applied replication batch.
  struct Outstanding {
    uint64_t id = 0;
    VirtualSegmentId vseg = 0;
    uint64_t start_ref = 0;
    size_t ref_count = 0;
    size_t bytes = 0;
    bool seals = false;
    bool done = false;  // acked by all backups, awaiting in-order apply
  };

  VirtualSegment* OpenSegmentLocked();
  /// O(1) lookup: segment ids are contiguous in segments_ (assigned
  /// sequentially, trimmed only from the front). nullptr if trimmed away
  /// (== fully replicated) or not yet opened.
  [[nodiscard]] VirtualSegment* FindSegmentLocked(VirtualSegmentId vseg) const;
  [[nodiscard]] bool DurableLocked(AppendPosition pos) const;
  [[nodiscard]] bool ChunkDurableLocked(const ChunkRef& ref) const;
  /// Unissued work exists (data refs or a seal past every outstanding
  /// batch of its segment).
  [[nodiscard]] bool HasUnissuedWorkLocked() const;
  /// Applies the contiguous prefix of completed outstanding batches, in
  /// issue order, advancing durable headers and group durability.
  void ApplyCompletedPrefixLocked();

  const VlogId id_;
  uint32_t owner_shard_ = 0;
  const VirtualLogConfig config_;
  const BackupSelector selector_;

  mutable std::mutex mu_;
  std::condition_variable durable_cv_;
  std::deque<std::unique_ptr<VirtualSegment>> segments_;
  VirtualSegmentId next_segment_id_ = 0;

  std::deque<Outstanding> inflight_;  // issue order
  uint64_t next_batch_id_ = 1;

  // Persistent-failure latch for background replication (WaitChunkDurable
  // returns last_error_ to waiters whenever error_epoch_ advances).
  int consecutive_failures_ = 0;
  uint64_t error_epoch_ = 0;
  Status last_error_ = OkStatus();

  Stats stats_;
};

}  // namespace kera
