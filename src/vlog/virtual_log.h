// Virtual log: a shared replicated log of chunk *references*, decoupling
// replication (durability) from stream partitioning (ordering). Multiple
// streams'/streamlets' partitions are associated with one virtual log; the
// log replicates their chunks to backups in larger aggregated I/Os,
// replacing one-replicated-log-per-partition (Kafka) with a consolidated
// shared log (the paper's core contribution, §III-IV).
//
// Threading: appends and replication-state transitions are internally
// synchronized; producers block in WaitDurable until the replication
// pipeline (driven by whichever thread polls batches) confirms their
// chunks. The DES harness drives Poll/Complete with simulated time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "vlog/virtual_segment.h"

namespace kera {

/// Picks the backup set for a newly opened virtual segment. Called with
/// the virtual segment id; returns R-1 distinct backup nodes. Rotating the
/// set per segment scatters replicas for parallel crash recovery.
using BackupSelector =
    std::function<std::vector<NodeId>(VirtualSegmentId)>;

struct VirtualLogConfig {
  /// Virtual capacity of one virtual segment (sum of referenced chunk
  /// lengths before rolling over).
  size_t virtual_segment_capacity = 8u << 20;
  /// Total copies of the data (1 = broker only, no backups).
  uint32_t replication_factor = 3;
  /// Max bytes of chunk data replicated by one RPC batch.
  size_t max_batch_bytes = 1u << 20;
};

/// A unit of replication work: a contiguous run of unreplicated chunk refs
/// of one virtual segment, to be pushed to that segment's backup set.
struct ReplicationBatch {
  VlogId vlog = 0;
  VirtualSegmentId vseg = 0;
  std::vector<NodeId> backups;
  uint64_t start_ref = 0;           // index of the first ref in the batch
  std::vector<ChunkRef> refs;       // the refs to ship
  size_t bytes = 0;                 // sum of chunk lengths
  uint64_t start_offset = 0;        // virtual byte offset of the batch start
  bool seals_segment = false;       // segment is closed and batch reaches end
  uint32_t checksum_after = 0;      // vseg header checksum after this batch
};

class VirtualLog {
 public:
  VirtualLog(VlogId id, VirtualLogConfig config, BackupSelector selector);

  VirtualLog(const VirtualLog&) = delete;
  VirtualLog& operator=(const VirtualLog&) = delete;

  /// Appends a chunk reference to the open virtual segment, rolling to a
  /// new virtual segment (with a fresh backup set) when full. With
  /// replication_factor == 1 the chunk is immediately durable.
  /// Returns the (virtual segment id, ref index) position.
  struct AppendPosition {
    VirtualSegmentId vseg;
    uint64_t ref_index;
  };
  AppendPosition Append(const ChunkRef& ref);

  /// Returns the next replication batch if data is pending and no batch is
  /// in flight (replication is ordered: one outstanding batch per vlog).
  /// The caller ships the chunks to every backup in batch.backups and then
  /// calls Complete (or Abort on failure).
  [[nodiscard]] std::optional<ReplicationBatch> Poll();

  /// Acknowledges the in-flight batch: advances durable headers, pushes
  /// durability into groups/segments, wakes WaitDurable callers.
  void Complete(const ReplicationBatch& batch);

  /// Returns the in-flight batch to the pending state (backup failure; the
  /// caller re-polls, possibly after the selector re-targets backups).
  void Abort(const ReplicationBatch& batch);

  /// Blocks until the chunk at `pos` is durably replicated. Threaded
  /// deployments call this from produce handlers; the DES never blocks.
  void WaitDurable(AppendPosition pos);

  /// Blocks until `pos` is durable OR no replication batch is in flight
  /// (in which case the caller should Poll and drive replication itself).
  /// Returns IsDurable(pos). This is the building block of the produce
  /// handler's replicate-or-wait loop: whichever worker thread finds the
  /// vlog idle ships the next batch, and the others sleep.
  [[nodiscard]] bool WaitDurableOrIdle(AppendPosition pos);

  /// Like WaitDurableOrIdle but tracks durability through the chunk's
  /// group (robust to segment evacuation, which renumbers positions).
  /// Returns whether the chunk is durable.
  [[nodiscard]] bool WaitChunkDurableOrIdle(const ChunkRef& ref);

  /// Backup-failure handling: closes the segment, moves its unreplicated
  /// refs (in order) to a fresh segment with a newly selected backup set,
  /// and wakes waiters. The already-durable prefix stays where it is.
  /// Returns the number of refs moved. Call with no batch in flight.
  size_t EvacuateSegment(VirtualSegmentId vseg);
  [[nodiscard]] bool IsDurable(AppendPosition pos) const;

  [[nodiscard]] VlogId id() const { return id_; }
  [[nodiscard]] uint32_t replication_factor() const {
    return config_.replication_factor;
  }

  /// True if unreplicated refs are pending and no batch is in flight.
  [[nodiscard]] bool HasWork() const;

  struct Stats {
    uint64_t chunks_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t batches_issued = 0;     // replication batches (per-vlog, not
                                     // per-backup; multiply by R-1 for RPCs)
    uint64_t bytes_replicated = 0;   // per-vlog (one copy)
    uint64_t segments_opened = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Virtual segments, oldest first (recovery and tests).
  [[nodiscard]] std::vector<const VirtualSegment*> Segments() const;

  /// Drops fully replicated virtual segments older than the open one whose
  /// references are no longer needed (their chunk data durability has been
  /// propagated). Keeps memory bounded in long runs.
  size_t TrimReplicatedSegments();

 private:
  VirtualSegment* OpenSegmentLocked();

  const VlogId id_;
  const VirtualLogConfig config_;
  const BackupSelector selector_;

  mutable std::mutex mu_;
  std::condition_variable durable_cv_;
  std::deque<std::unique_ptr<VirtualSegment>> segments_;
  VirtualSegmentId next_segment_id_ = 0;
  bool batch_in_flight_ = false;
  Stats stats_;
};

}  // namespace kera
