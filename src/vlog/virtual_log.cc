#include "vlog/virtual_log.h"

#include <cassert>

#include "storage/group.h"

namespace kera {

VirtualLog::VirtualLog(VlogId id, VirtualLogConfig config,
                       BackupSelector selector)
    : id_(id), config_(config), selector_(std::move(selector)) {
  assert(config_.replication_factor >= 1);
}

VirtualSegment* VirtualLog::OpenSegmentLocked() {
  VirtualSegmentId vseg_id = next_segment_id_++;
  std::vector<NodeId> backups;
  if (config_.replication_factor > 1) {
    backups = selector_(vseg_id);
    assert(backups.size() == config_.replication_factor - 1 &&
           "selector must return R-1 backups");
  }
  segments_.push_back(std::make_unique<VirtualSegment>(
      vseg_id, config_.virtual_segment_capacity, std::move(backups)));
  ++stats_.segments_opened;
  return segments_.back().get();
}

VirtualLog::AppendPosition VirtualLog::Append(const ChunkRef& ref) {
  std::lock_guard<std::mutex> lock(mu_);
  VirtualSegment* seg =
      segments_.empty() ? OpenSegmentLocked() : segments_.back().get();
  if (!seg->TryAppend(ref)) {
    seg->Close();
    if (config_.replication_factor == 1) seg->set_seal_replicated();
    seg = OpenSegmentLocked();
    bool ok = seg->TryAppend(ref);
    assert(ok && "chunk larger than virtual segment capacity");
    (void)ok;
  }
  ++stats_.chunks_appended;
  stats_.bytes_appended += ref.loc.length;
  AppendPosition pos{seg->id(), seg->ref_count() - 1};
  if (config_.replication_factor == 1) {
    // No backups: the broker's copy is the only copy; expose immediately.
    seg->MarkReplicatedUpTo(seg->ref_count());
  }
  return pos;
}

std::optional<ReplicationBatch> VirtualLog::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (batch_in_flight_ || config_.replication_factor == 1) {
    return std::nullopt;
  }
  // Replication is ordered: always the oldest incompletely replicated
  // virtual segment first.
  for (auto& seg_ptr : segments_) {
    VirtualSegment& seg = *seg_ptr;
    size_t start = seg.durable_ref_count();
    if (start >= seg.ref_count()) continue;

    ReplicationBatch batch;
    batch.vlog = id_;
    batch.vseg = seg.id();
    batch.backups = seg.backups();
    batch.start_ref = start;
    // Batches always start at the replicated prefix, whose virtual byte
    // offset is the segment's durable header.
    batch.start_offset = seg.durable_header();
    size_t end = start;
    while (end < seg.ref_count() &&
           (end == start ||
            batch.bytes + seg.ref(end).loc.length <= config_.max_batch_bytes)) {
      batch.bytes += seg.ref(end).loc.length;
      batch.refs.push_back(seg.ref(end));
      ++end;
    }
    batch.seals_segment = seg.closed() && end == seg.ref_count();
    batch.checksum_after = seg.ChecksumFromDurable(end);
    batch_in_flight_ = true;
    ++stats_.batches_issued;
    stats_.bytes_replicated += batch.bytes;
    return batch;
  }
  // No data pending: a segment that closed after its last data batch
  // completed still owes the backups an (empty) seal notification, so
  // they can flush and the segment can be trimmed.
  for (auto& seg_ptr : segments_) {
    VirtualSegment& seg = *seg_ptr;
    if (!seg.closed() || seg.seal_replicated() ||
        seg.durable_ref_count() < seg.ref_count()) {
      continue;
    }
    ReplicationBatch batch;
    batch.vlog = id_;
    batch.vseg = seg.id();
    batch.backups = seg.backups();
    batch.start_ref = seg.durable_ref_count();
    batch.start_offset = seg.durable_header();
    batch.seals_segment = true;
    batch.checksum_after = seg.running_checksum();
    batch_in_flight_ = true;
    ++stats_.batches_issued;
    return batch;
  }
  return std::nullopt;
}

void VirtualLog::Complete(const ReplicationBatch& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(batch_in_flight_);
    for (auto& seg_ptr : segments_) {
      if (seg_ptr->id() == batch.vseg) {
        seg_ptr->MarkReplicatedUpTo(size_t(batch.start_ref) +
                                    batch.refs.size());
        if (batch.seals_segment) seg_ptr->set_seal_replicated();
        break;
      }
    }
    batch_in_flight_ = false;
  }
  durable_cv_.notify_all();
}

void VirtualLog::Abort(const ReplicationBatch& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(batch_in_flight_);
    (void)batch;
    batch_in_flight_ = false;
    // Stats: the batch counted as issued but its bytes were not durably
    // replicated; the retry will count again, reflecting the extra I/O.
  }
  durable_cv_.notify_all();
}

bool VirtualLog::IsDurable(AppendPosition pos) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& seg : segments_) {
    if (seg->id() == pos.vseg) {
      return seg->durable_ref_count() > pos.ref_index;
    }
  }
  // Segment already trimmed => it was fully replicated.
  return true;
}

void VirtualLog::WaitDurable(AppendPosition pos) {
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] {
    for (const auto& seg : segments_) {
      if (seg->id() == pos.vseg) {
        return seg->durable_ref_count() > pos.ref_index;
      }
    }
    return true;  // trimmed == durable
  });
}

bool VirtualLog::WaitDurableOrIdle(AppendPosition pos) {
  std::unique_lock<std::mutex> lock(mu_);
  auto durable = [&] {
    for (const auto& seg : segments_) {
      if (seg->id() == pos.vseg) {
        return seg->durable_ref_count() > pos.ref_index;
      }
    }
    return true;  // trimmed == durable
  };
  durable_cv_.wait(lock, [&] { return durable() || !batch_in_flight_; });
  return durable();
}

bool VirtualLog::WaitChunkDurableOrIdle(const ChunkRef& ref) {
  std::unique_lock<std::mutex> lock(mu_);
  auto durable = [&] {
    return ref.group == nullptr ||
           ref.group->durable_chunk_count() > ref.loc.group_chunk_index;
  };
  durable_cv_.wait(lock, [&] { return durable() || !batch_in_flight_; });
  return durable();
}

size_t VirtualLog::EvacuateSegment(VirtualSegmentId vseg) {
  std::vector<ChunkRef> moved;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Collect unreplicated refs from the victim AND every later segment,
    // in order, so the vlog's global append order is preserved in the
    // rebuilt tail (per-group replay order at recovery depends on it).
    bool found = false;
    for (auto& seg : segments_) {
      if (seg->id() == vseg) found = true;
      if (!found) continue;
      seg->Close();
      auto refs = seg->TruncateUnreplicated();
      moved.insert(moved.end(), refs.begin(), refs.end());
    }
    if (!found) return 0;
    if (!moved.empty()) {
      VirtualSegment* fresh = OpenSegmentLocked();
      for (const ChunkRef& ref : moved) {
        bool ok = fresh->TryAppend(ref);
        if (!ok) {
          fresh->Close();
          fresh = OpenSegmentLocked();
          ok = fresh->TryAppend(ref);
        }
        assert(ok && "evacuated chunk larger than virtual segment");
        (void)ok;
      }
    }
  }
  durable_cv_.notify_all();
  return moved.size();
}

bool VirtualLog::HasWork() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (batch_in_flight_ || config_.replication_factor == 1) return false;
  for (const auto& seg : segments_) {
    if (seg->durable_ref_count() < seg->ref_count()) return true;
    if (seg->closed() && !seg->seal_replicated()) return true;
  }
  return false;
}

VirtualLog::Stats VirtualLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<const VirtualSegment*> VirtualLog::Segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const VirtualSegment*> out;
  out.reserve(segments_.size());
  for (const auto& seg : segments_) out.push_back(seg.get());
  return out;
}

size_t VirtualLog::TrimReplicatedSegments() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t trimmed = 0;
  while (segments_.size() > 1 && segments_.front()->fully_replicated()) {
    segments_.pop_front();
    ++trimmed;
  }
  return trimmed;
}

}  // namespace kera
