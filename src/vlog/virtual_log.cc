#include "vlog/virtual_log.h"

#include <algorithm>
#include <cassert>

#include "storage/group.h"

namespace kera {

namespace {
/// Consecutive failed shipping attempts tolerated before the error is
/// latched and surfaced to WaitChunkDurable callers. Each attempt already
/// retries the RPCs internally and may re-target backups via evacuation,
/// so a handful of outer retries is enough to ride over membership churn.
constexpr int kMaxConsecutiveReplicationFailures = 4;
}  // namespace

VirtualLog::VirtualLog(VlogId id, VirtualLogConfig config,
                       BackupSelector selector)
    : id_(id), config_(config), selector_(std::move(selector)) {
  assert(config_.replication_factor >= 1);
  assert(config_.replication_window >= 1);
  next_segment_id_ = config_.first_segment_id;
}

VirtualSegment* VirtualLog::OpenSegmentLocked() {
  VirtualSegmentId vseg_id = next_segment_id_++;
  std::vector<NodeId> backups;
  if (config_.replication_factor > 1) {
    backups = selector_(vseg_id);
    assert(backups.size() == config_.replication_factor - 1 &&
           "selector must return R-1 backups");
  }
  segments_.push_back(std::make_unique<VirtualSegment>(
      vseg_id, config_.virtual_segment_capacity, std::move(backups)));
  ++stats_.segments_opened;
  return segments_.back().get();
}

VirtualSegment* VirtualLog::FindSegmentLocked(VirtualSegmentId vseg) const {
  // Segment ids are assigned sequentially and segments are only removed
  // from the front (trim), so ids in segments_ are contiguous: resolve by
  // arithmetic instead of scanning (the window keeps several live).
  if (segments_.empty()) return nullptr;
  VirtualSegmentId front = segments_.front()->id();
  if (vseg < front || vseg - front >= segments_.size()) return nullptr;
  VirtualSegment* seg = segments_[size_t(vseg - front)].get();
  assert(seg->id() == vseg && "segment ids must be contiguous");
  return seg;
}

VirtualLog::AppendPosition VirtualLog::Append(const ChunkRef& ref) {
  std::lock_guard<std::mutex> lock(mu_);
  VirtualSegment* seg =
      segments_.empty() ? OpenSegmentLocked() : segments_.back().get();
  if (!seg->TryAppend(ref)) {
    seg->Close();
    if (config_.replication_factor == 1) seg->set_seal_replicated();
    seg = OpenSegmentLocked();
    bool ok = seg->TryAppend(ref);
    assert(ok && "chunk larger than virtual segment capacity");
    (void)ok;
  }
  ++stats_.chunks_appended;
  stats_.bytes_appended += ref.loc.length;
  AppendPosition pos{seg->id(), seg->ref_count() - 1};
  if (config_.replication_factor == 1) {
    // No backups: the broker's copy is the only copy; expose immediately.
    seg->MarkReplicatedUpTo(seg->ref_count());
  }
  return pos;
}

std::optional<ReplicationBatch> VirtualLog::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.replication_factor == 1 ||
      inflight_.size() >= config_.replication_window) {
    return std::nullopt;
  }
  // Replication is issued in order: always the oldest incompletely issued
  // virtual segment first. Each segment's issue point is its durable
  // prefix plus everything already in flight for it.
  for (auto& seg_ptr : segments_) {
    VirtualSegment& seg = *seg_ptr;
    size_t issued = seg.durable_ref_count();
    uint64_t issued_offset = seg.durable_header();
    for (const Outstanding& o : inflight_) {
      if (o.vseg != seg.id()) continue;
      issued += o.ref_count;
      issued_offset += o.bytes;
    }
    if (issued >= seg.ref_count()) continue;

    ReplicationBatch batch;
    batch.id = next_batch_id_++;
    batch.vlog = id_;
    batch.vseg = seg.id();
    batch.backups = seg.backups();
    batch.start_ref = issued;
    batch.start_offset = issued_offset;
    size_t end = issued;
    while (end < seg.ref_count() &&
           (end == issued ||
            batch.bytes + seg.ref(end).loc.length <= config_.max_batch_bytes)) {
      batch.bytes += seg.ref(end).loc.length;
      batch.refs.push_back(seg.ref(end));
      ++end;
    }
    batch.seals_segment = seg.closed() && end == seg.ref_count();
    batch.checksum_after = seg.ChecksumFromDurable(end);
    inflight_.push_back(Outstanding{batch.id, batch.vseg, batch.start_ref,
                                    batch.refs.size(), batch.bytes,
                                    batch.seals_segment, false});
    ++stats_.batches_issued;
    stats_.bytes_replicated += batch.bytes;
    stats_.max_inflight_batches =
        std::max<uint64_t>(stats_.max_inflight_batches, inflight_.size());
    return batch;
  }
  // No data pending: a segment that closed after its last data batch
  // completed still owes the backups an (empty) seal notification, so
  // they can flush and the segment can be trimmed. Issued only once the
  // segment has nothing outstanding (the seal must be the final word).
  for (auto& seg_ptr : segments_) {
    VirtualSegment& seg = *seg_ptr;
    if (!seg.closed() || seg.seal_replicated() ||
        seg.durable_ref_count() < seg.ref_count()) {
      continue;
    }
    bool busy = std::any_of(
        inflight_.begin(), inflight_.end(),
        [&](const Outstanding& o) { return o.vseg == seg.id(); });
    if (busy) continue;
    ReplicationBatch batch;
    batch.id = next_batch_id_++;
    batch.vlog = id_;
    batch.vseg = seg.id();
    batch.backups = seg.backups();
    batch.start_ref = seg.durable_ref_count();
    batch.start_offset = seg.durable_header();
    batch.seals_segment = true;
    batch.checksum_after = seg.running_checksum();
    inflight_.push_back(Outstanding{batch.id, batch.vseg, batch.start_ref, 0,
                                    0, true, false});
    ++stats_.batches_issued;
    stats_.max_inflight_batches =
        std::max<uint64_t>(stats_.max_inflight_batches, inflight_.size());
    return batch;
  }
  return std::nullopt;
}

void VirtualLog::ApplyCompletedPrefixLocked() {
  while (!inflight_.empty() && inflight_.front().done) {
    const Outstanding& o = inflight_.front();
    if (VirtualSegment* seg = FindSegmentLocked(o.vseg)) {
      seg->MarkReplicatedUpTo(size_t(o.start_ref) + o.ref_count);
      if (o.seals) seg->set_seal_replicated();
    }
    inflight_.pop_front();
  }
}

void VirtualLog::Complete(const ReplicationBatch& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    auto it = std::find_if(
        inflight_.begin(), inflight_.end(),
        [&](const Outstanding& o) { return o.id == batch.id; });
    if (it == inflight_.end()) {
      // Stale: the batch was dropped by Abort/Evacuate and its range
      // requeued; the re-shipped copy carries a fresh id.
      return;
    }
    it->done = true;
    ApplyCompletedPrefixLocked();
  }
  durable_cv_.notify_all();
}

void VirtualLog::Abort(const ReplicationBatch& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(
        inflight_.begin(), inflight_.end(),
        [&](const Outstanding& o) { return o.id == batch.id; });
    if (it == inflight_.end()) return;  // already dropped (evacuation)
    // Requeue the aborted range and everything issued after it: a later
    // batch must never be applied over the hole. Later batches that were
    // already acked will be re-shipped; backups treat the overlap as an
    // idempotent retry.
    inflight_.erase(it, inflight_.end());
    // Stats: the batch counted as issued but its bytes were not durably
    // replicated; the retry will count again, reflecting the extra I/O.
  }
  durable_cv_.notify_all();
}

bool VirtualLog::DurableLocked(AppendPosition pos) const {
  const VirtualSegment* seg = FindSegmentLocked(pos.vseg);
  // Trimmed (or never within range) => it was fully replicated.
  if (seg == nullptr) return true;
  return seg->durable_ref_count() > pos.ref_index;
}

bool VirtualLog::ChunkDurableLocked(const ChunkRef& ref) const {
  return ref.group == nullptr ||
         ref.group->durable_chunk_count() > ref.loc.group_chunk_index;
}

bool VirtualLog::HasUnissuedWorkLocked() const {
  if (config_.replication_factor == 1) return false;
  for (const auto& seg_ptr : segments_) {
    const VirtualSegment& seg = *seg_ptr;
    size_t issued = seg.durable_ref_count();
    bool busy = false;
    for (const Outstanding& o : inflight_) {
      if (o.vseg != seg.id()) continue;
      issued += o.ref_count;
      busy = true;
    }
    if (issued < seg.ref_count()) return true;
    if (seg.closed() && !seg.seal_replicated() && !busy &&
        seg.durable_ref_count() == seg.ref_count()) {
      return true;
    }
  }
  return false;
}

bool VirtualLog::IsDurable(AppendPosition pos) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DurableLocked(pos);
}

void VirtualLog::WaitDurable(AppendPosition pos) {
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] { return DurableLocked(pos); });
}

bool VirtualLog::WaitDurableOrIdle(AppendPosition pos) {
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] {
    return DurableLocked(pos) ||
           (inflight_.size() < config_.replication_window &&
            HasUnissuedWorkLocked());
  });
  return DurableLocked(pos);
}

bool VirtualLog::WaitChunkDurableOrIdle(const ChunkRef& ref) {
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] {
    return ChunkDurableLocked(ref) ||
           (inflight_.size() < config_.replication_window &&
            HasUnissuedWorkLocked());
  });
  return ChunkDurableLocked(ref);
}

Status VirtualLog::WaitChunkDurable(const ChunkRef& ref) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t epoch = error_epoch_;
  durable_cv_.wait(lock, [&] {
    return ChunkDurableLocked(ref) || error_epoch_ != epoch;
  });
  return ChunkDurableLocked(ref) ? OkStatus() : last_error_;
}

bool VirtualLog::NoteReplicationFailure(const Status& error) {
  bool retry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retry = ++consecutive_failures_ <= kMaxConsecutiveReplicationFailures;
    if (!retry) {
      consecutive_failures_ = 0;
      last_error_ = error;
      ++error_epoch_;
    }
  }
  if (!retry) durable_cv_.notify_all();
  return retry;
}

size_t VirtualLog::EvacuateSegment(VirtualSegmentId vseg) {
  std::vector<ChunkRef> moved;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Collect unreplicated refs from the victim AND every later segment,
    // in order, so the vlog's global append order is preserved in the
    // rebuilt tail (per-group replay order at recovery depends on it).
    bool found = false;
    for (auto& seg : segments_) {
      if (seg->id() == vseg) found = true;
      if (!found) continue;
      seg->Close();
      auto refs = seg->TruncateUnreplicated();
      moved.insert(moved.end(), refs.begin(), refs.end());
    }
    if (!found) return 0;
    // Outstanding batches covering the truncated ranges are void: their
    // refs move to the fresh segments below. Late completions/aborts for
    // them become stale no-ops (the id is gone).
    inflight_.erase(std::remove_if(inflight_.begin(), inflight_.end(),
                                   [&](const Outstanding& o) {
                                     return o.vseg >= vseg;
                                   }),
                    inflight_.end());
    if (!moved.empty()) {
      VirtualSegment* fresh = OpenSegmentLocked();
      for (const ChunkRef& ref : moved) {
        bool ok = fresh->TryAppend(ref);
        if (!ok) {
          fresh->Close();
          fresh = OpenSegmentLocked();
          ok = fresh->TryAppend(ref);
        }
        assert(ok && "evacuated chunk larger than virtual segment");
        (void)ok;
      }
    }
  }
  durable_cv_.notify_all();
  return moved.size();
}

bool VirtualLog::HasWork() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HasUnissuedWorkLocked();
}

VirtualLog::Stats VirtualLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<const VirtualSegment*> VirtualLog::Segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const VirtualSegment*> out;
  out.reserve(segments_.size());
  for (const auto& seg : segments_) out.push_back(seg.get());
  return out;
}

size_t VirtualLog::TrimReplicatedSegments() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t trimmed = 0;
  while (segments_.size() > 1 && segments_.front()->fully_replicated()) {
    segments_.pop_front();
    ++trimmed;
  }
  return trimmed;
}

}  // namespace kera
