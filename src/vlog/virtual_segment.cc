#include "vlog/virtual_segment.h"

#include <cassert>

#include "common/crc32c.h"
#include "storage/group.h"
#include "storage/segment.h"

namespace kera {

VirtualSegment::VirtualSegment(VirtualSegmentId id, size_t virtual_capacity,
                               std::vector<NodeId> backups)
    : id_(id), capacity_(virtual_capacity), backups_(std::move(backups)) {}

bool VirtualSegment::TryAppend(const ChunkRef& ref) {
  if (closed_) return false;
  if (header_ + ref.loc.length > capacity_ && !refs_.empty()) return false;
  refs_.push_back(ref);
  header_ += ref.loc.length;
  checksum_ = Crc32c(&ref.payload_checksum, sizeof(ref.payload_checksum),
                     checksum_);
  return true;
}

uint32_t VirtualSegment::ChecksumUpTo(size_t count) const {
  assert(count <= refs_.size());
  uint32_t crc = 0;
  for (size_t i = 0; i < count; ++i) {
    crc = Crc32c(&refs_[i].payload_checksum,
                 sizeof(refs_[i].payload_checksum), crc);
  }
  return crc;
}

uint32_t VirtualSegment::ChecksumFromDurable(size_t count) const {
  assert(count >= durable_refs_ && count <= refs_.size());
  uint32_t crc = durable_checksum_;
  for (size_t i = durable_refs_; i < count; ++i) {
    crc = Crc32c(&refs_[i].payload_checksum,
                 sizeof(refs_[i].payload_checksum), crc);
  }
  return crc;
}

void VirtualSegment::MarkReplicatedUpTo(size_t upto) {
  assert(upto <= refs_.size());
  for (size_t i = durable_refs_; i < upto; ++i) {
    const ChunkRef& ref = refs_[i];
    durable_header_ += ref.loc.length;
    durable_checksum_ = Crc32c(&ref.payload_checksum,
                               sizeof(ref.payload_checksum),
                               durable_checksum_);
    // Propagate durability: consumers pull records only below the physical
    // segment's durable head / the group's durable chunk prefix.
    if (ref.loc.segment != nullptr) {
      ref.loc.segment->AdvanceDurableHead(ref.loc.offset + ref.loc.length);
    }
    if (ref.group != nullptr) {
      ref.group->MarkChunkDurable(ref.loc.group_chunk_index);
    }
  }
  if (upto > durable_refs_) durable_refs_ = upto;
}

std::vector<ChunkRef> VirtualSegment::TruncateUnreplicated() {
  std::vector<ChunkRef> moved(refs_.begin() + long(durable_refs_),
                              refs_.end());
  refs_.resize(durable_refs_);
  header_ = durable_header_;
  checksum_ = ChecksumUpTo(durable_refs_);
  return moved;
}

}  // namespace kera
