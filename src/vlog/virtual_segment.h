// Virtual segment: one unit of the shared replicated virtual log.
//
// A virtual segment does NOT hold record data. It keeps an ordered list of
// *references* to chunks that physically live in the segments of (possibly
// many) streams' groups, plus bookkeeping that mirrors a physical segment:
//   - header: next free virtual offset (sum of referenced chunk lengths)
//   - durable header: virtual offset of what is already replicated; always
//     on a chunk boundary (chunks replicate atomically)
//   - a header checksum that covers the chunks' checksums (backups verify
//     it for recovery and data integrity)
// Only one virtual segment of a virtual log is open; closed ones are
// immutable. Each virtual segment is bound to a backup set chosen when it
// opens, scattering replicas across the cluster for parallel recovery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "storage/locator.h"

namespace kera {

class Group;

/// Reference to a chunk stored in a physical segment, as kept by a virtual
/// segment. Carries enough to gather the bytes (locator), to notify
/// durability (group), and to extend the virtual segment checksum
/// (payload_checksum).
struct ChunkRef {
  ChunkLocator loc;
  Group* group = nullptr;
  StreamId stream = 0;
  StreamletId streamlet = 0;
  uint32_t payload_checksum = 0;
};

class VirtualSegment {
 public:
  VirtualSegment(VirtualSegmentId id, size_t virtual_capacity,
                 std::vector<NodeId> backups);

  /// Appends a chunk reference if the remaining *virtual* space (capacity
  /// minus accumulated chunk lengths) fits it. Returns false when full.
  [[nodiscard]] bool TryAppend(const ChunkRef& ref);

  void Close() { closed_ = true; }
  [[nodiscard]] bool closed() const { return closed_; }

  [[nodiscard]] VirtualSegmentId id() const { return id_; }
  [[nodiscard]] const std::vector<NodeId>& backups() const { return backups_; }

  /// Next free virtual offset (paper: the "header" attribute).
  [[nodiscard]] uint64_t header() const { return header_; }
  /// Virtual offset of the replicated prefix (paper: "durable header").
  [[nodiscard]] uint64_t durable_header() const { return durable_header_; }

  [[nodiscard]] size_t ref_count() const { return refs_.size(); }
  [[nodiscard]] size_t durable_ref_count() const { return durable_refs_; }

  /// Whether the backups have been told this segment is sealed (either by
  /// the final data batch or by an explicit empty seal batch). Only a
  /// sealed replica may be flushed to secondary storage and trimmed.
  [[nodiscard]] bool seal_replicated() const { return seal_replicated_; }
  void set_seal_replicated() { seal_replicated_ = true; }

  [[nodiscard]] bool fully_replicated() const {
    return closed_ && durable_refs_ == refs_.size() && seal_replicated_;
  }

  [[nodiscard]] const ChunkRef& ref(size_t i) const { return refs_[i]; }
  [[nodiscard]] std::span<const ChunkRef> refs() const { return refs_; }

  /// Running CRC32C over the referenced chunks' checksums, in order; this
  /// is the virtual segment header checksum backups verify.
  [[nodiscard]] uint32_t running_checksum() const { return checksum_; }
  /// Checksum value after the first `count` refs (recomputed; recovery and
  /// tests use it to validate partial replication states).
  [[nodiscard]] uint32_t ChecksumUpTo(size_t count) const;
  /// Checksum after the first `count` refs, where count >= the durable
  /// prefix: O(count - durable) using the cached durable checksum (the
  /// replication hot path — batches always start at the durable prefix).
  [[nodiscard]] uint32_t ChecksumFromDurable(size_t count) const;

  /// Marks refs [durable_ref_count, upto) replicated: advances the durable
  /// header and pushes durability into the physical segments and groups.
  void MarkReplicatedUpTo(size_t upto);

  /// Removes and returns all unreplicated refs (beyond the durable
  /// prefix), rolling back the header and checksum. Used when a backup in
  /// this segment's set dies: the survivors keep the durable prefix and
  /// the rest moves to a fresh segment with a new backup set.
  [[nodiscard]] std::vector<ChunkRef> TruncateUnreplicated();

 private:
  const VirtualSegmentId id_;
  const size_t capacity_;
  const std::vector<NodeId> backups_;

  std::vector<ChunkRef> refs_;
  uint64_t header_ = 0;
  uint64_t durable_header_ = 0;
  size_t durable_refs_ = 0;
  uint32_t checksum_ = 0;
  uint32_t durable_checksum_ = 0;  // checksum chain at the durable prefix
  bool closed_ = false;
  bool seal_replicated_ = false;
};

}  // namespace kera
