// Backup service: holds passive replicas of virtual segments, acknowledges
// replication once data is buffered in memory (the producer path is never
// gated on secondary storage), and persists every applied batch through a
// log-structured store (SegmentLog) with group-commit flushing. Sealed
// copies whose seal record is durable can drop their payload memory
// (EvictFlushed); recovery reads reload them from the log. A cold-started
// Backup rebuilds its entire copy map by scanning the log directory —
// there is no sidecar state. At recovery time it lists and serves the
// segments belonging to a crashed broker, and drops ("evacuates") them
// once the coordinator has replayed the crashed primary elsewhere, which
// turns their log records into GC-collectable garbage.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "storage/segment_log.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/messages.h"
#include "rpc/transport.h"

namespace kera {

struct BackupConfig {
  NodeId node = 0;
  /// When non-empty, every applied batch is persisted into the segment
  /// log under this directory; empty keeps the backup memory-only.
  std::string storage_dir;
  /// Segment-log knobs (log file size, group-commit pacing, GC threshold).
  SegmentLogOptions log;
};

class Backup final : public rpc::RpcHandler {
 public:
  explicit Backup(BackupConfig config);
  ~Backup() override;

  Backup(const Backup&) = delete;
  Backup& operator=(const Backup&) = delete;

  std::vector<std::byte> HandleRpc(std::span<const std::byte> request) override;

  // Direct handlers (the DES calls these without framing).
  rpc::ReplicateResponse HandleReplicate(const rpc::ReplicateRequest& req);
  rpc::ListRecoverySegmentsResponse HandleList(
      const rpc::ListRecoverySegmentsRequest& req);
  /// `payload_storage` receives the segment bytes the response span points
  /// into (the caller owns lifetime across serialization).
  rpc::ReadRecoverySegmentResponse HandleRead(
      const rpc::ReadRecoverySegmentRequest& req,
      std::vector<std::byte>& payload_storage);
  /// Batched recovery read: serves several virtual segments in one round
  /// trip (parallel recovery pulls `recovery_read_batch` segments per
  /// RPC). `payload_storage` receives one buffer per requested segment;
  /// the response spans point into it. Per-segment failures (unknown
  /// copy, log read error) are reported in the matching item's status —
  /// the RPC itself still succeeds.
  rpc::ReadRecoverySegmentBatchResponse HandleReadBatch(
      const rpc::ReadRecoverySegmentBatchRequest& req,
      std::vector<std::vector<std::byte>>& payload_storage);

  /// Drops every copy whose primary is `primary` (the coordinator calls
  /// this after recovery replay re-produced the crashed broker's data at
  /// its new leaders): the copies leave the in-memory map immediately and
  /// an evacuate record makes the drop durable, turning their log records
  /// into garbage the collector can reclaim. Returns copies dropped.
  size_t DropSegmentsForPrimary(NodeId primary);

  struct Stats {
    uint64_t replicate_rpcs = 0;
    uint64_t bytes_received = 0;
    uint64_t chunks_received = 0;
    uint64_t checksum_failures = 0;
    uint64_t segments_sealed = 0;
    /// Sealed copies whose seal record is durable in the segment log
    /// (including seals recovered by the restart scan).
    uint64_t segments_flushed = 0;
    // Segment-log flush path (zero when storage_dir is empty):
    uint64_t flush_groups = 0;
    uint64_t fsyncs = 0;
    uint64_t bytes_flushed = 0;
    uint64_t gc_bytes_reclaimed = 0;
    uint64_t restart_scan_ms = 0;
    uint64_t io_errors = 0;  // sticky segment-log IO failure (0 or 1)
  };
  [[nodiscard]] Stats GetStats() const;

  /// Blocks until everything enqueued to the segment log so far is
  /// durable (one forced flush group); no-op without a storage_dir.
  void WaitForFlushes();

  /// Number of replicated segments currently held (memory + disk).
  [[nodiscard]] size_t SegmentCount() const;

  /// Drops the in-memory payload of every sealed copy whose seal record
  /// is durable; recovery reads reload them from the segment log.
  size_t EvictFlushed();

  /// Copy descriptors for test/chaos oracles (the power-loss invariant
  /// re-reads and re-validates every recovered copy through HandleRead).
  struct DebugCopy {
    NodeId primary = 0;
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
    uint64_t size = 0;
    uint32_t chunk_count = 0;
    uint32_t running_checksum = 0;
    bool sealed = false;
    bool evicted = false;
  };
  [[nodiscard]] std::vector<DebugCopy> DebugCopies() const;

 private:
  /// A batch that arrived ahead of a gap (the primary pipelines several
  /// batches per virtual log; the network may reorder them). Buffered,
  /// validated, and applied once the contiguous prefix catches up.
  struct PendingBatch {
    std::vector<std::byte> payload;
    uint32_t chunk_count = 0;
    uint32_t checksum_after = 0;
    bool seals = false;
  };

  struct ReplicatedSegment {
    NodeId primary = 0;
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
    std::vector<std::byte> data;  // concatenated chunk frames
    uint32_t chunk_count = 0;
    uint32_t running_checksum = 0;  // over chunk payload checksums, in order
    std::map<uint64_t, PendingBatch> pending;  // keyed by start_offset
    bool sealed = false;
    bool evicted = false;
    /// For evicted copies: the durable payload size served from the log.
    uint64_t durable_size = 0;
    /// Segment-log ticket of the seal record; 0 means "already durable"
    /// (copies recovered from the restart scan).
    uint64_t seal_ticket = 0;
    bool open_logged = false;
  };
  using Key = std::tuple<NodeId, VlogId, VirtualSegmentId>;

  [[nodiscard]] static SegmentLog::CopyKey LogKey(const Key& key) {
    return {std::get<0>(key), std::get<1>(key), std::get<2>(key)};
  }

  const BackupConfig config_;
  mutable std::mutex mu_;
  std::map<Key, ReplicatedSegment> segments_;
  Stats stats_;
  std::unique_ptr<SegmentLog> log_;  // null when storage_dir is empty
};

}  // namespace kera
