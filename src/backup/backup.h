// Backup service: holds passive replicas of virtual segments, acknowledges
// replication once data is buffered in memory (the producer path is never
// gated on secondary storage), and asynchronously flushes sealed segments
// to disk with the same format used in memory. At recovery time it lists
// and serves the segments belonging to a crashed broker.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/messages.h"
#include "rpc/transport.h"

namespace kera {

struct BackupConfig {
  NodeId node = 0;
  /// When non-empty, sealed segments are flushed to files under this
  /// directory by a background thread ("<dir>/p<primary>_v<vlog>_s<vseg>").
  std::string storage_dir;
};

class Backup final : public rpc::RpcHandler {
 public:
  explicit Backup(BackupConfig config);
  ~Backup() override;

  Backup(const Backup&) = delete;
  Backup& operator=(const Backup&) = delete;

  std::vector<std::byte> HandleRpc(std::span<const std::byte> request) override;

  // Direct handlers (the DES calls these without framing).
  rpc::ReplicateResponse HandleReplicate(const rpc::ReplicateRequest& req);
  rpc::ListRecoverySegmentsResponse HandleList(
      const rpc::ListRecoverySegmentsRequest& req);
  /// `payload_storage` receives the segment bytes the response span points
  /// into (the caller owns lifetime across serialization).
  rpc::ReadRecoverySegmentResponse HandleRead(
      const rpc::ReadRecoverySegmentRequest& req,
      std::vector<std::byte>& payload_storage);

  struct Stats {
    uint64_t replicate_rpcs = 0;
    uint64_t bytes_received = 0;
    uint64_t chunks_received = 0;
    uint64_t checksum_failures = 0;
    uint64_t segments_sealed = 0;
    uint64_t segments_flushed = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Blocks until every sealed segment enqueued so far has been flushed
  /// (only meaningful with a storage_dir; tests use it).
  void WaitForFlushes();

  /// Number of replicated segments currently held (memory + disk).
  [[nodiscard]] size_t SegmentCount() const;

  /// Drops all in-memory payloads that were flushed to disk; recovery
  /// reads reload them from the files (exercises the disk path).
  size_t EvictFlushed();

 private:
  /// A batch that arrived ahead of a gap (the primary pipelines several
  /// batches per virtual log; the network may reorder them). Buffered,
  /// validated, and applied once the contiguous prefix catches up.
  struct PendingBatch {
    std::vector<std::byte> payload;
    uint32_t chunk_count = 0;
    uint32_t checksum_after = 0;
    bool seals = false;
  };

  struct ReplicatedSegment {
    NodeId primary = 0;
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
    std::vector<std::byte> data;  // concatenated chunk frames
    uint32_t chunk_count = 0;
    uint32_t running_checksum = 0;  // over chunk payload checksums, in order
    std::map<uint64_t, PendingBatch> pending;  // keyed by start_offset
    bool sealed = false;
    bool flushed = false;
    size_t flushed_bytes = 0;  // file size written by the flusher
    bool evicted = false;
  };
  using Key = std::tuple<NodeId, VlogId, VirtualSegmentId>;

  [[nodiscard]] std::string FilePath(const Key& key) const;
  Status LoadFromDisk(ReplicatedSegment& seg, const Key& key,
                      std::vector<std::byte>& out) const;
  void FlusherLoop();

  const BackupConfig config_;
  mutable std::mutex mu_;
  std::map<Key, ReplicatedSegment> segments_;
  Stats stats_;

  BlockingQueue<Key> flush_queue_;
  std::thread flusher_;
  std::atomic<uint64_t> flushes_enqueued_{0};
  std::atomic<uint64_t> flushes_done_{0};
};

}  // namespace kera
