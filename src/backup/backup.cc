#include "backup/backup.h"

#include "common/crc32c.h"
#include "common/logging.h"
#include "wire/chunk.h"

namespace kera {

namespace {
/// Out-of-order batches buffered per replicated segment before the
/// contiguous prefix catches up. Primaries keep replication windows far
/// smaller than this; hitting the cap means a runaway sender.
constexpr size_t kMaxPendingBatches = 64;
}  // namespace

Backup::Backup(BackupConfig config) : config_(std::move(config)) {
  if (config_.storage_dir.empty()) return;
  log_ = std::make_unique<SegmentLog>(config_.storage_dir, config_.log);
  // Cold start: adopt the copy map the log scan rebuilt. Sealed copies
  // stay on disk (evicted); unsealed copies reload their payload into
  // memory — their size is the append point replication continues from.
  for (const SegmentLog::RecoveredCopy& rc : log_->RecoveredCopies()) {
    Key key{NodeId(rc.key.primary), rc.key.vlog, rc.key.vseg};
    ReplicatedSegment seg;
    seg.primary = NodeId(rc.key.primary);
    seg.vlog = rc.key.vlog;
    seg.vseg = rc.key.vseg;
    seg.chunk_count = rc.chunk_count;
    seg.running_checksum = rc.running_checksum;
    seg.sealed = rc.sealed;
    seg.open_logged = true;
    seg.seal_ticket = 0;  // whatever the scan saw is durable by definition
    if (rc.sealed) {
      seg.evicted = true;
      seg.durable_size = rc.size;
      ++stats_.segments_sealed;
    } else if (rc.size > 0) {
      Status s = log_->ReadSegment(rc.key, seg.data);
      if (!s.ok()) {
        KERA_ERROR("backup %u: dropping copy p%u/v%u/s%llu at restart: %s",
                   unsigned(config_.node), unsigned(rc.key.primary),
                   unsigned(rc.key.vlog),
                   (unsigned long long)rc.key.vseg, s.message().c_str());
        continue;
      }
    }
    segments_.emplace(key, std::move(seg));
  }
}

Backup::~Backup() = default;

rpc::ReplicateResponse Backup::HandleReplicate(
    const rpc::ReplicateRequest& req) {
  rpc::ReplicateResponse resp;

  // Validate every chunk before mutating state: replication is atomic at
  // chunk granularity and a torn batch must not be partially applied.
  uint32_t parsed = 0;
  std::span<const std::byte> rest = req.payload;
  while (!rest.empty()) {
    auto chunk = ChunkView::Parse(rest);
    if (!chunk.ok() || !chunk->VerifyChecksum()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.checksum_failures;
      resp.status = StatusCode::kCorruption;
      return resp;
    }
    rest = rest.subspan(chunk->total_size());
    ++parsed;
  }
  if (parsed != req.chunk_count) {
    resp.status = StatusCode::kCorruption;
    return resp;
  }

  std::lock_guard<std::mutex> lock(mu_);
  Key key{req.primary, req.vlog, req.vseg};
  ReplicatedSegment& seg = segments_[key];
  seg.primary = req.primary;
  seg.vlog = req.vlog;
  seg.vseg = req.vseg;
  if (log_ != nullptr && !seg.open_logged) {
    log_->EnqueueOpen(LogKey(key));
    seg.open_logged = true;
  }

  auto apply_seal = [&](bool seals) {
    if (seals && !seg.sealed) {
      seg.sealed = true;
      // Holes still buffered at seal time are stale: the seal is the
      // primary's final word, so their bytes either were re-shipped and
      // applied already or were disowned by an abort.
      seg.pending.clear();
      ++stats_.segments_sealed;
      if (log_ != nullptr) {
        seg.seal_ticket = log_->EnqueueSeal(LogKey(key), seg.data.size(),
                                            seg.chunk_count,
                                            seg.running_checksum);
      }
    }
  };

  // Extends the virtual segment header checksum over the new chunks'
  // checksums, verifies against the primary's value, appends, and logs
  // the applied batch (group-committed by the segment log's flusher).
  auto apply_payload = [&](std::span<const std::byte> payload,
                           uint32_t chunk_count, uint32_t checksum_after,
                           bool seals) -> bool {
    uint32_t crc = seg.running_checksum;
    std::span<const std::byte> scan = payload;
    while (!scan.empty()) {
      auto chunk = ChunkView::Parse(scan);
      uint32_t chunk_crc = chunk->payload_checksum();
      crc = Crc32c(&chunk_crc, sizeof(chunk_crc), crc);
      scan = scan.subspan(chunk->total_size());
    }
    if (crc != checksum_after) {
      ++stats_.checksum_failures;
      return false;
    }
    uint64_t offset_before = seg.data.size();
    seg.data.insert(seg.data.end(), payload.begin(), payload.end());
    seg.chunk_count += chunk_count;
    seg.running_checksum = crc;
    if (log_ != nullptr && !payload.empty()) {
      log_->EnqueueAppend(LogKey(key), offset_before, payload, chunk_count,
                          crc);
    }
    apply_seal(seals);
    return true;
  };

  // Applies buffered batches that have become contiguous. Entries the data
  // already covers are stale requeues (the primary aborted the window
  // suffix and re-shipped with different boundaries); drop them — the live
  // reissue carries their bytes.
  auto drain_pending = [&] {
    while (!seg.pending.empty()) {
      auto it = seg.pending.begin();
      if (it->first < seg.data.size()) {
        seg.pending.erase(it);
        continue;
      }
      if (it->first > seg.data.size()) break;
      PendingBatch b = std::move(it->second);
      seg.pending.erase(it);
      if (!apply_payload(b.payload, b.chunk_count, b.checksum_after,
                         b.seals)) {
        break;
      }
    }
  };

  if (req.start_offset > seg.data.size()) {
    // Hole: an earlier batch of the primary's replication window is still
    // in flight (the network may reorder concurrent batches). Buffer and
    // ack — the bytes are in backup memory, and the primary advances its
    // durable prefix in issue order, so data it acks to producers is
    // always contiguous here.
    if (seg.sealed) {
      // Only a stale duplicated frame can address bytes past a sealed
      // copy's final length; never buffer it.
      resp.status = StatusCode::kOutOfRange;
      return resp;
    }
    if (seg.pending.size() >= kMaxPendingBatches) {
      resp.status = StatusCode::kOutOfRange;
      return resp;
    }
    PendingBatch b;
    b.payload.assign(req.payload.begin(), req.payload.end());
    b.chunk_count = req.chunk_count;
    b.checksum_after = req.checksum_after;
    b.seals = req.seals;
    seg.pending[req.start_offset] = std::move(b);
    ++stats_.replicate_rpcs;
    stats_.bytes_received += req.payload.size();
    stats_.chunks_received += req.chunk_count;
    resp.status = StatusCode::kOk;
    return resp;
  }
  if (req.start_offset < seg.data.size() ||
      (req.payload.empty() && req.start_offset == seg.data.size())) {
    if (req.payload.empty() && req.seals && !seg.sealed &&
        req.start_offset < seg.data.size()) {
      // Seal below our size: the primary aborted a batch we had already
      // applied and evacuated its refs to a fresh segment, then sealed
      // this one at its retained length. The surplus suffix is disowned
      // (its chunks live in the evacuation target now) — truncate to the
      // sealed length and re-derive the prefix checksum, or this copy
      // would diverge forever and reject the seal on every retry.
      uint32_t crc = 0;
      uint32_t chunks = 0;
      std::span<const std::byte> scan{seg.data.data(),
                                      size_t(req.start_offset)};
      while (!scan.empty()) {
        auto chunk = ChunkView::Parse(scan);
        if (!chunk.ok() || chunk->total_size() > scan.size()) break;
        uint32_t chunk_crc = chunk->payload_checksum();
        crc = Crc32c(&chunk_crc, sizeof(chunk_crc), crc);
        scan = scan.subspan(chunk->total_size());
        ++chunks;
      }
      if (!scan.empty() || crc != req.checksum_after) {
        ++stats_.checksum_failures;  // seal point not a clean chunk prefix
        resp.status = StatusCode::kCorruption;
        return resp;
      }
      seg.data.resize(size_t(req.start_offset));
      seg.chunk_count = chunks;
      seg.running_checksum = crc;
      seg.pending.clear();  // buffered suffixes are part of the disowned tail
      if (log_ != nullptr) {
        log_->EnqueueTruncate(LogKey(key), req.start_offset, chunks, crc);
      }
      ++stats_.replicate_rpcs;
      apply_seal(true);
      resp.status = StatusCode::kOk;
      return resp;
    }
    // Already-applied batch (broker retry) or an empty seal-only batch:
    // idempotent ack, but still honor the seal flag.
    if (req.start_offset + req.payload.size() > seg.data.size()) {
      // Partial overlap: the primary aborted a window whose ack we sent
      // but it never saw (lost response), then re-coalesced the requeued
      // refs into a batch with shifted boundaries. The overlap prefix is
      // already applied; split on the chunk boundary at our append point
      // and apply only the new tail. A stale frame extending a SEALED
      // copy is rejected instead — the sealed length is final.
      if (seg.sealed) {
        resp.status = StatusCode::kOutOfRange;
        return resp;
      }
      size_t skip = seg.data.size() - size_t(req.start_offset);
      std::span<const std::byte> tail = req.payload;
      uint32_t tail_chunks = req.chunk_count;
      while (skip > 0) {
        auto chunk = ChunkView::Parse(tail);
        if (!chunk.ok() || chunk->total_size() > skip) break;
        skip -= chunk->total_size();
        tail = tail.subspan(chunk->total_size());
        --tail_chunks;
      }
      if (skip != 0) {
        // Our append point is not a chunk boundary of this batch: not a
        // re-ship of the stream we hold.
        resp.status = StatusCode::kOutOfRange;
        return resp;
      }
      if (!apply_payload(tail, tail_chunks, req.checksum_after,
                         req.seals)) {
        resp.status = StatusCode::kCorruption;
        return resp;
      }
      ++stats_.replicate_rpcs;
      stats_.bytes_received += tail.size();
      stats_.chunks_received += tail_chunks;
      drain_pending();
      resp.status = StatusCode::kOk;
      return resp;
    }
    if (req.payload.empty() && req.checksum_after != seg.running_checksum) {
      ++stats_.checksum_failures;
      resp.status = StatusCode::kCorruption;
      return resp;
    }
    apply_seal(req.seals);
    resp.status = StatusCode::kOk;
    return resp;
  }

  if (seg.sealed) {
    // A non-empty append landing exactly at a sealed copy's length is a
    // stale frame from before the seal; the sealed length is final.
    resp.status = StatusCode::kOutOfRange;
    return resp;
  }
  if (!apply_payload(req.payload, req.chunk_count, req.checksum_after,
                     req.seals)) {
    resp.status = StatusCode::kCorruption;
    return resp;
  }
  ++stats_.replicate_rpcs;
  stats_.bytes_received += req.payload.size();
  stats_.chunks_received += req.chunk_count;
  drain_pending();
  resp.status = StatusCode::kOk;
  return resp;
}

rpc::ListRecoverySegmentsResponse Backup::HandleList(
    const rpc::ListRecoverySegmentsRequest& req) {
  rpc::ListRecoverySegmentsResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, seg] : segments_) {
    if (seg.primary != req.crashed) continue;
    rpc::RecoverySegmentDescriptor d;
    d.primary = seg.primary;
    d.vlog = seg.vlog;
    d.vseg = seg.vseg;
    d.chunk_count = seg.chunk_count;
    d.sealed = seg.sealed;
    resp.segments.push_back(d);
  }
  return resp;
}

rpc::ReadRecoverySegmentResponse Backup::HandleRead(
    const rpc::ReadRecoverySegmentRequest& req,
    std::vector<std::byte>& payload_storage) {
  rpc::ReadRecoverySegmentResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  Key key{req.crashed, req.vlog, req.vseg};
  auto it = segments_.find(key);
  if (it == segments_.end()) {
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  ReplicatedSegment& seg = it->second;
  if (seg.evicted) {
    Status s = log_->ReadSegment(LogKey(key), payload_storage);
    if (!s.ok()) {
      resp.status = s.code();
      return resp;
    }
    if (payload_storage.size() != seg.durable_size) {
      payload_storage.clear();
      resp.status = StatusCode::kCorruption;
      return resp;
    }
  } else {
    payload_storage = seg.data;
  }
  resp.chunk_count = seg.chunk_count;
  resp.payload = payload_storage;
  return resp;
}

rpc::ReadRecoverySegmentBatchResponse Backup::HandleReadBatch(
    const rpc::ReadRecoverySegmentBatchRequest& req,
    std::vector<std::vector<std::byte>>& payload_storage) {
  rpc::ReadRecoverySegmentBatchResponse resp;
  resp.items.resize(req.items.size());
  // One buffer per item, allocated up front: the response spans reference
  // this storage, so the vector must never reallocate underneath them.
  payload_storage.clear();
  payload_storage.resize(req.items.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < req.items.size(); ++i) {
    auto& item = resp.items[i];
    item.vlog = req.items[i].vlog;
    item.vseg = req.items[i].vseg;
    Key key{req.crashed, item.vlog, item.vseg};
    auto it = segments_.find(key);
    if (it == segments_.end()) {
      item.status = StatusCode::kNotFound;
      continue;
    }
    ReplicatedSegment& seg = it->second;
    if (seg.evicted) {
      Status s = log_->ReadSegment(LogKey(key), payload_storage[i]);
      if (!s.ok()) {
        item.status = s.code();
        continue;
      }
      if (payload_storage[i].size() != seg.durable_size) {
        payload_storage[i].clear();
        item.status = StatusCode::kCorruption;
        continue;
      }
    } else {
      payload_storage[i] = seg.data;
    }
    item.chunk_count = seg.chunk_count;
    item.payload = payload_storage[i];
  }
  return resp;
}

size_t Backup::DropSegmentsForPrimary(NodeId primary) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second.primary == primary) {
      if (log_ != nullptr) log_->EnqueueEvacuate(LogKey(it->first));
      it = segments_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<std::byte> Backup::HandleRpc(std::span<const std::byte> request) {
  rpc::Opcode op;
  std::span<const std::byte> body;
  rpc::Writer out;
  Status s = rpc::ParseFrame(request, op, body);
  if (!s.ok()) {
    out.U8(uint8_t(s.code()));
    return std::move(out).Take();
  }
  rpc::Reader r(body);
  // Outlives the switch: responses reference this storage until Take().
  std::vector<std::byte> read_storage;
  std::vector<std::vector<std::byte>> batch_storage;
  switch (op) {
    case rpc::Opcode::kReplicate: {
      auto req = rpc::ReplicateRequest::Decode(r);
      if (!req.ok()) {
        rpc::ReplicateResponse resp;
        resp.status = req.status().code();
        resp.Encode(out);
      } else {
        HandleReplicate(*req).Encode(out);
      }
      break;
    }
    case rpc::Opcode::kListRecoverySegments: {
      auto req = rpc::ListRecoverySegmentsRequest::Decode(r);
      if (!req.ok()) {
        rpc::ListRecoverySegmentsResponse resp;
        resp.status = req.status().code();
        resp.Encode(out);
      } else {
        HandleList(*req).Encode(out);
      }
      break;
    }
    case rpc::Opcode::kReadRecoverySegment: {
      auto req = rpc::ReadRecoverySegmentRequest::Decode(r);
      if (!req.ok()) {
        rpc::ReadRecoverySegmentResponse resp;
        resp.status = req.status().code();
        resp.Encode(out);
      } else {
        HandleRead(*req, read_storage).Encode(out);
      }
      break;
    }
    case rpc::Opcode::kReadRecoverySegmentBatch: {
      auto req = rpc::ReadRecoverySegmentBatchRequest::Decode(r);
      if (!req.ok()) {
        rpc::ReadRecoverySegmentBatchResponse resp;
        resp.status = req.status().code();
        resp.Encode(out);
      } else {
        HandleReadBatch(*req, batch_storage).Encode(out);
      }
      break;
    }
    case rpc::Opcode::kEvacuateBackupSegments: {
      auto req = rpc::EvacuateBackupSegmentsRequest::Decode(r);
      rpc::EvacuateBackupSegmentsResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        resp.dropped = uint32_t(DropSegmentsForPrimary(req->primary));
      }
      resp.Encode(out);
      break;
    }
    default:
      out.U8(uint8_t(StatusCode::kInvalidArgument));
      break;
  }
  return std::move(out).Take();
}

void Backup::WaitForFlushes() {
  if (log_ != nullptr) (void)log_->Sync();
}

Backup::Stats Backup::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  if (log_ != nullptr) {
    SegmentLog::Stats ls = log_->GetStats();
    s.segments_flushed = ls.seals_durable;
    s.flush_groups = ls.flush_groups;
    s.fsyncs = ls.fsyncs;
    s.bytes_flushed = ls.bytes_flushed;
    s.gc_bytes_reclaimed = ls.gc_bytes_reclaimed;
    s.restart_scan_ms = ls.restart_scan_ms;
    s.io_errors = log_->status().ok() ? 0 : 1;
  }
  return s;
}

size_t Backup::SegmentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

size_t Backup::EvictFlushed() {
  if (log_ == nullptr) return 0;
  uint64_t durable = log_->DurableTicket();
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto& [_, seg] : segments_) {
    if (!seg.sealed || seg.evicted) continue;
    if (seg.seal_ticket != 0 && durable < seg.seal_ticket) continue;
    seg.durable_size = seg.data.size();
    seg.data.clear();
    seg.data.shrink_to_fit();
    seg.evicted = true;
    ++evicted;
  }
  return evicted;
}

std::vector<Backup::DebugCopy> Backup::DebugCopies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DebugCopy> out;
  out.reserve(segments_.size());
  for (const auto& [key, seg] : segments_) {
    DebugCopy d;
    d.primary = seg.primary;
    d.vlog = seg.vlog;
    d.vseg = seg.vseg;
    d.size = seg.evicted ? seg.durable_size : seg.data.size();
    d.chunk_count = seg.chunk_count;
    d.running_checksum = seg.running_checksum;
    d.sealed = seg.sealed;
    d.evicted = seg.evicted;
    out.push_back(d);
  }
  return out;
}

}  // namespace kera
