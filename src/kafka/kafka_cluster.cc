#include "kafka/kafka_cluster.h"

#include <chrono>

namespace kera::kafka {

KafkaCluster::KafkaCluster(KafkaClusterConfig config) : config_(config) {
  for (NodeId node = 1; node <= config_.nodes; ++node) {
    brokers_.push_back(std::make_unique<KafkaBroker>(node));
  }
}

KafkaCluster::~KafkaCluster() { StopReplication(); }

Result<TopicInfo> KafkaCluster::CreateTopic(const std::string& name,
                                            uint32_t partitions,
                                            uint32_t replication_factor) {
  if (partitions == 0 || replication_factor == 0 ||
      replication_factor > config_.nodes) {
    return Status(StatusCode::kInvalidArgument, "bad topic options");
  }
  TopicInfo* info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (topics_by_name_.count(name) != 0) {
      return Status(StatusCode::kAlreadyExists, "topic exists: " + name);
    }
    TopicInfo t;
    t.id = next_topic_id_++;
    t.name = name;
    t.partitions = partitions;
    t.replication_factor = replication_factor;
    t.leaders.resize(partitions);
    // Rotate the starting broker across topic creations so many small
    // topics still spread over the cluster.
    for (uint32_t p = 0; p < partitions; ++p) {
      t.leaders[p] = NodeId((placement_cursor_ + p) % config_.nodes) + 1;
    }
    placement_cursor_ = (placement_cursor_ + partitions) % config_.nodes;
    auto [it, _] = topics_by_name_.emplace(name, std::move(t));
    info = &it->second;
    topics_by_id_[info->id] = info;
  }
  // Wire leader logs and follower replicas: followers are the next R-1
  // nodes after the leader (Kafka's default rack-unaware assignment).
  for (uint32_t p = 0; p < partitions; ++p) {
    NodeId leader = info->leaders[p];
    PartitionKey key{info->id, p};
    std::vector<NodeId> followers;
    for (uint32_t r = 1; r < replication_factor; ++r) {
      followers.push_back(NodeId((leader - 1 + r) % config_.nodes) + 1);
    }
    brokers_[leader - 1]->AddLeaderPartition(key, followers);
    for (NodeId f : followers) {
      brokers_[f - 1]->AddFollowerPartition(key, leader);
    }
  }
  return *info;
}

Result<TopicInfo> KafkaCluster::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_by_name_.find(name);
  if (it == topics_by_name_.end()) {
    return Status(StatusCode::kNotFound, "no such topic: " + name);
  }
  return it->second;
}

PartitionLog* KafkaCluster::leader_log(uint64_t topic,
                                       uint32_t partition) const {
  NodeId leader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = topics_by_id_.find(topic);
    if (it == topics_by_id_.end() || partition >= it->second->partitions) {
      return nullptr;
    }
    leader = it->second->leaders[partition];
  }
  return brokers_[leader - 1]->leader_log(PartitionKey{topic, partition});
}

Result<uint64_t> KafkaCluster::ProduceAsync(uint64_t topic,
                                            uint32_t partition,
                                            std::span<const std::byte> bytes,
                                            uint32_t records) {
  PartitionLog* log = leader_log(topic, partition);
  if (log == nullptr) {
    return Status(StatusCode::kNotFound, "unknown partition");
  }
  uint64_t offset = log->Append(bytes, records);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.produce_batches;
    stats_.produce_bytes += bytes.size();
  }
  return offset;
}

Status KafkaCluster::Produce(uint64_t topic, uint32_t partition,
                             std::span<const std::byte> bytes,
                             uint32_t records) {
  auto offset = ProduceAsync(topic, partition, bytes, records);
  if (!offset.ok()) return offset.status();
  PartitionLog* log = leader_log(topic, partition);
  // acks=all: wait for the high watermark to pass the batch.
  while (log->high_watermark() <= *offset) {
    std::this_thread::yield();
  }
  return OkStatus();
}

std::vector<Batch> KafkaCluster::Consume(uint64_t topic, uint32_t partition,
                                         uint64_t offset,
                                         size_t max_bytes) const {
  PartitionLog* log = leader_log(topic, partition);
  if (log == nullptr) return {};
  uint64_t hw = log->high_watermark();
  std::vector<Batch> batches = log->Fetch(offset, max_bytes);
  // Consumers may only read durably replicated data.
  while (!batches.empty() && batches.back().offset >= hw) {
    batches.pop_back();
  }
  return batches;
}

uint64_t KafkaCluster::HighWatermark(uint64_t topic,
                                     uint32_t partition) const {
  PartitionLog* log = leader_log(topic, partition);
  return log == nullptr ? 0 : log->high_watermark();
}

void KafkaCluster::FetcherLoop(KafkaBroker* broker) {
  while (replicating_.load(std::memory_order_acquire)) {
    size_t fetched = 0;
    for (const PartitionKey& key : broker->FollowedPartitions()) {
      PartitionLog* log = leader_log(key.topic, key.partition);
      if (log == nullptr) continue;
      fetched += broker->FetchOnce(key, *log, config_.tuning);
    }
    if (fetched == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.tuning.fetch_backoff_us));
    }
  }
}

void KafkaCluster::StartReplication() {
  if (replicating_.exchange(true)) return;
  for (auto& broker : brokers_) {
    fetchers_.emplace_back([this, b = broker.get()] { FetcherLoop(b); });
  }
}

void KafkaCluster::StopReplication() {
  if (!replicating_.exchange(false)) return;
  for (auto& t : fetchers_) t.join();
  fetchers_.clear();
}

KafkaCluster::Stats KafkaCluster::GetStats() const {
  Stats total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = stats_;
  }
  for (const auto& broker : brokers_) {
    auto s = broker->GetStats();
    total.fetch_rpcs += s.fetch_rpcs;
    total.fetch_bytes += s.fetch_bytes;
    total.empty_fetches += s.empty_fetches;
  }
  return total;
}

}  // namespace kera::kafka
