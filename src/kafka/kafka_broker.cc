#include "kafka/kafka_broker.h"

namespace kera::kafka {

PartitionLog* KafkaBroker::AddLeaderPartition(PartitionKey key,
                                              std::vector<NodeId> followers) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = led_.find(key);
  if (it != led_.end()) return it->second.get();
  auto log = std::make_unique<PartitionLog>(std::move(followers));
  PartitionLog* raw = log.get();
  led_.emplace(key, std::move(log));
  return raw;
}

void KafkaBroker::AddFollowerPartition(PartitionKey key, NodeId leader) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_unique<FollowerState>();
  state->leader = leader;
  followed_.emplace(key, std::move(state));
}

PartitionLog* KafkaBroker::leader_log(PartitionKey key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = led_.find(key);
  return it == led_.end() ? nullptr : it->second.get();
}

KafkaBroker::FollowerState* KafkaBroker::follower_state(PartitionKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followed_.find(key);
  return it == followed_.end() ? nullptr : it->second.get();
}

std::vector<PartitionKey> KafkaBroker::FollowedPartitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionKey> out;
  out.reserve(followed_.size());
  for (const auto& [key, _] : followed_) out.push_back(key);
  return out;
}

std::vector<PartitionKey> KafkaBroker::LedPartitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionKey> out;
  out.reserve(led_.size());
  for (const auto& [key, _] : led_) out.push_back(key);
  return out;
}

size_t KafkaBroker::FetchOnce(PartitionKey key, PartitionLog& leader_log,
                              const KafkaTuning& tuning) {
  FollowerState* state = follower_state(key);
  if (state == nullptr) return 0;
  std::vector<Batch> batches =
      leader_log.Fetch(state->fetched_offset, tuning.fetch_max_bytes);
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& b : batches) {
      bytes += b.bytes.size();
      state->fetched_offset = b.offset + 1;
      state->bytes_replicated += b.bytes.size();
      state->replica.push_back(std::move(b));
    }
    ++stats_.fetch_rpcs;
    stats_.fetch_bytes += bytes;
    if (batches.empty()) ++stats_.empty_fetches;
  }
  if (!batches.empty()) {
    leader_log.UpdateFollower(node_, state->fetched_offset);
  }
  return bytes;
}

void KafkaBroker::TrimFollower(PartitionKey key, size_t keep_batches) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followed_.find(key);
  if (it == followed_.end()) return;
  auto& replica = it->second->replica;
  while (replica.size() > keep_batches) replica.pop_front();
}

KafkaBroker::Stats KafkaBroker::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kera::kafka
