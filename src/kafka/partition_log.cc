#include "kafka/partition_log.h"

#include <algorithm>
#include <cassert>

namespace kera::kafka {

PartitionLog::PartitionLog(std::vector<NodeId> followers) {
  for (NodeId f : followers) follower_offsets_[f] = 0;
}

uint64_t PartitionLog::Append(std::span<const std::byte> bytes,
                              uint32_t records) {
  std::lock_guard<std::mutex> lock(mu_);
  Batch b;
  b.offset = end_offset_;
  b.bytes.assign(bytes.begin(), bytes.end());
  b.records = records;
  batches_.push_back(std::move(b));
  uint64_t offset = end_offset_++;
  ++stats_.appends;
  stats_.bytes_appended += bytes.size();
  if (follower_offsets_.empty()) {
    // R = 1: exposed immediately.
    high_watermark_ = end_offset_;
    records_below_hw_ += records;
  }
  return offset;
}

std::vector<Batch> PartitionLog::Fetch(uint64_t from,
                                       size_t max_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Batch> out;
  if (from < base_offset_) from = base_offset_;
  size_t bytes = 0;
  for (uint64_t off = from; off < end_offset_; ++off) {
    const Batch& b = batches_[size_t(off - base_offset_)];
    if (!out.empty() && bytes + b.bytes.size() > max_bytes) break;
    bytes += b.bytes.size();
    out.push_back(b);
  }
  stats_.fetches_served += 1;
  stats_.bytes_fetched += bytes;
  return out;
}

PartitionLog::PeekResult PartitionLog::PeekFetch(uint64_t from,
                                                 size_t max_bytes,
                                                 uint64_t max_batches,
                                                 bool below_hw_only) const {
  std::lock_guard<std::mutex> lock(mu_);
  PeekResult out;
  if (from < base_offset_) from = base_offset_;
  out.next_offset = from;
  uint64_t limit = below_hw_only ? high_watermark_ : end_offset_;
  for (uint64_t off = from; off < limit && out.batches < max_batches; ++off) {
    const Batch& b = batches_[size_t(off - base_offset_)];
    if (out.batches > 0 && out.bytes + b.bytes.size() > max_bytes) break;
    out.bytes += b.bytes.size();
    out.records += b.records;
    ++out.batches;
    out.next_offset = off + 1;
  }
  return out;
}

void PartitionLog::UpdateFollower(NodeId follower, uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = follower_offsets_.find(follower);
  if (it == follower_offsets_.end()) return;
  if (upto > it->second) it->second = upto;
  uint64_t hw = end_offset_;
  for (const auto& [_, off] : follower_offsets_) hw = std::min(hw, off);
  while (high_watermark_ < hw) {
    // Count records as they cross the watermark (consumable prefix).
    uint64_t idx = high_watermark_ - base_offset_;
    if (idx < batches_.size()) {
      records_below_hw_ += batches_[size_t(idx)].records;
    }
    ++high_watermark_;
  }
}

uint64_t PartitionLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_offset_;
}

uint64_t PartitionLog::high_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_watermark_;
}

uint64_t PartitionLog::records_below_hw() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_below_hw_;
}

size_t PartitionLog::Trim(uint64_t before) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t trimmed = 0;
  uint64_t limit = std::min(before, high_watermark_);
  while (base_offset_ < limit && !batches_.empty()) {
    batches_.pop_front();
    ++base_offset_;
    ++trimmed;
  }
  return trimmed;
}

PartitionLog::Stats PartitionLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kera::kafka
