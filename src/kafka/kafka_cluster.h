// Kafka-model cluster: topics partitioned over brokers, one replicated
// log per partition, passive pull replication driven by per-broker fetcher
// threads. This is the functional baseline the evaluation compares KerA
// against; the DES harness drives the same broker/log objects on
// simulated time instead of threads.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "kafka/kafka_broker.h"

namespace kera::kafka {

struct KafkaClusterConfig {
  uint32_t nodes = 4;
  KafkaTuning tuning;
};

struct TopicInfo {
  uint64_t id = 0;
  std::string name;
  uint32_t partitions = 0;
  uint32_t replication_factor = 1;
  /// Leader node per partition.
  std::vector<NodeId> leaders;
};

class KafkaCluster {
 public:
  explicit KafkaCluster(KafkaClusterConfig config);
  ~KafkaCluster();

  KafkaCluster(const KafkaCluster&) = delete;
  KafkaCluster& operator=(const KafkaCluster&) = delete;

  Result<TopicInfo> CreateTopic(const std::string& name, uint32_t partitions,
                                uint32_t replication_factor);
  Result<TopicInfo> GetTopic(const std::string& name) const;

  /// Leader append with acks=all semantics: blocks until every follower
  /// has fetched past the batch (requires StartReplication() when R > 1).
  Status Produce(uint64_t topic, uint32_t partition,
                 std::span<const std::byte> bytes, uint32_t records);

  /// Async append: returns the batch offset without waiting for the high
  /// watermark (used by tests that drive fetchers manually).
  Result<uint64_t> ProduceAsync(uint64_t topic, uint32_t partition,
                                std::span<const std::byte> bytes,
                                uint32_t records);

  /// Consumer fetch: batches below the high watermark only.
  [[nodiscard]] std::vector<Batch> Consume(uint64_t topic, uint32_t partition,
                                           uint64_t offset,
                                           size_t max_bytes) const;

  [[nodiscard]] uint64_t HighWatermark(uint64_t topic,
                                       uint32_t partition) const;

  /// Starts one replica-fetcher thread per broker.
  void StartReplication();
  void StopReplication();

  [[nodiscard]] KafkaBroker& broker(NodeId node) {
    return *brokers_[node - 1];
  }
  [[nodiscard]] PartitionLog* leader_log(uint64_t topic,
                                         uint32_t partition) const;

  struct Stats {
    uint64_t produce_batches = 0;
    uint64_t produce_bytes = 0;
    uint64_t fetch_rpcs = 0;
    uint64_t fetch_bytes = 0;
    uint64_t empty_fetches = 0;
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  void FetcherLoop(KafkaBroker* broker);

  const KafkaClusterConfig config_;
  std::vector<std::unique_ptr<KafkaBroker>> brokers_;

  mutable std::mutex mu_;
  std::map<std::string, TopicInfo> topics_by_name_;
  std::map<uint64_t, TopicInfo*> topics_by_id_;
  uint64_t next_topic_id_ = 1;
  size_t placement_cursor_ = 0;  // rotates partition placement
  Stats stats_;

  std::atomic<bool> replicating_{false};
  std::vector<std::thread> fetchers_;
};

}  // namespace kera::kafka
