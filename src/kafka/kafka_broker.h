// Kafka-model broker: leads some partitions (each an independent
// PartitionLog) and runs follower replicas of partitions led elsewhere.
// Follower replication is pull-based: ReplicaFetcher polls the leader on a
// static schedule (replica fetch tuning), appends locally, and reports its
// offset so the leader can advance the high watermark.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kafka/partition_log.h"

namespace kera::kafka {

/// Global partition identity: (topic id, partition index).
struct PartitionKey {
  uint64_t topic = 0;
  uint32_t partition = 0;
  auto operator<=>(const PartitionKey&) const = default;
};

struct KafkaTuning {
  /// replica.fetch.max.bytes analogue: max bytes per follower fetch.
  size_t fetch_max_bytes = 1u << 20;
  /// Poll cadence when a fetch returns nothing (replica.fetch.wait.max.ms
  /// analogue). Static — the paper's point is that this needs tuning.
  uint64_t fetch_backoff_us = 500;
};

class KafkaBroker {
 public:
  explicit KafkaBroker(NodeId node) : node_(node) {}

  KafkaBroker(const KafkaBroker&) = delete;
  KafkaBroker& operator=(const KafkaBroker&) = delete;

  /// Declares this broker the leader of `key` with the given followers.
  PartitionLog* AddLeaderPartition(PartitionKey key,
                                   std::vector<NodeId> followers);

  /// Declares this broker a follower of `key` (led by `leader`).
  void AddFollowerPartition(PartitionKey key, NodeId leader);

  [[nodiscard]] PartitionLog* leader_log(PartitionKey key) const;

  struct FollowerState {
    NodeId leader = kInvalidNode;
    uint64_t fetched_offset = 0;   // next offset to fetch
    uint64_t bytes_replicated = 0;
    std::deque<Batch> replica;     // local passive copy
  };
  [[nodiscard]] FollowerState* follower_state(PartitionKey key);

  /// All partitions this broker follows (fetcher iteration order).
  [[nodiscard]] std::vector<PartitionKey> FollowedPartitions() const;
  [[nodiscard]] std::vector<PartitionKey> LedPartitions() const;

  /// Performs one follower fetch round for `key` against the leader's
  /// log: pulls up to tuning.fetch_max_bytes, appends to the local
  /// replica, and reports the new offset to the leader. Returns bytes
  /// fetched (0 = caught up; the fetcher then backs off).
  size_t FetchOnce(PartitionKey key, PartitionLog& leader_log,
                   const KafkaTuning& tuning);

  /// Bounds follower replica memory.
  void TrimFollower(PartitionKey key, size_t keep_batches);

  [[nodiscard]] NodeId node() const { return node_; }

  struct Stats {
    uint64_t fetch_rpcs = 0;        // follower fetches issued
    uint64_t fetch_bytes = 0;
    uint64_t empty_fetches = 0;     // fetches that returned no data
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  const NodeId node_;
  mutable std::mutex mu_;
  std::map<PartitionKey, std::unique_ptr<PartitionLog>> led_;
  std::map<PartitionKey, std::unique_ptr<FollowerState>> followed_;
  Stats stats_;
};

}  // namespace kera::kafka
