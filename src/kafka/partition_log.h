// Kafka-model partition log: the baseline replication architecture the
// paper compares against. Every partition is an independent replicated
// log. The leader appends producer batches; follower replicas *pull*
// (passive replication) with statically tuned fetch size/interval; the
// high watermark (durable/consumable prefix) is the minimum offset fetched
// by all in-sync followers. Producers with acks=all are acknowledged only
// once the high watermark passes their batch.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace kera::kafka {

/// One record batch as stored in the log (opaque bytes; the KerA chunk
/// format is reused so both systems move identical payloads).
struct Batch {
  uint64_t offset = 0;  // batch offset (batch granularity, like segments of
                        // record batches in Kafka)
  std::vector<std::byte> bytes;
  uint32_t records = 0;
};

class PartitionLog {
 public:
  /// `followers`: replica nodes that must catch up before data is exposed.
  /// Empty = replication factor 1 (high watermark follows the end).
  explicit PartitionLog(std::vector<NodeId> followers);

  /// Leader append; returns the batch offset.
  uint64_t Append(std::span<const std::byte> bytes, uint32_t records);

  /// Fetch batches with offset >= `from`, up to `max_bytes` total (always
  /// at least one batch when available). Used by followers (any offset)
  /// and consumers (capped at the high watermark by the caller).
  [[nodiscard]] std::vector<Batch> Fetch(uint64_t from,
                                         size_t max_bytes) const;

  /// Follower acknowledgment: it has replicated batches below `upto`.
  /// Recomputes the high watermark (min across followers).
  void UpdateFollower(NodeId follower, uint64_t upto);

  /// Sizes of what Fetch(from, max_bytes) would return, without copying
  /// bytes. Used by the DES (only sizes are needed for the cost model).
  struct PeekResult {
    uint64_t batches = 0;
    uint64_t records = 0;
    size_t bytes = 0;
    uint64_t next_offset = 0;  // offset after the returned batches
  };
  [[nodiscard]] PeekResult PeekFetch(uint64_t from, size_t max_bytes,
                                     uint64_t max_batches = ~uint64_t{0},
                                     bool below_hw_only = false) const;

  [[nodiscard]] uint64_t end_offset() const;
  [[nodiscard]] uint64_t high_watermark() const;
  [[nodiscard]] uint64_t records_below_hw() const;

  /// Drops batches below `before` (consumed and replicated) to bound
  /// memory in long runs.
  size_t Trim(uint64_t before);

  struct Stats {
    uint64_t appends = 0;
    uint64_t bytes_appended = 0;
    uint64_t fetches_served = 0;
    uint64_t bytes_fetched = 0;
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  mutable std::mutex mu_;
  std::deque<Batch> batches_;
  uint64_t base_offset_ = 0;  // offset of batches_.front()
  uint64_t end_offset_ = 0;
  uint64_t high_watermark_ = 0;
  uint64_t records_below_hw_ = 0;
  std::map<NodeId, uint64_t> follower_offsets_;
  mutable Stats stats_;
};

}  // namespace kera::kafka
