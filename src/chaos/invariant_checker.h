// InvariantChecker: the chaos harness's global correctness oracle. Each
// check scans live cluster state (brokers' virtual logs, group storage,
// stats counters) against the harness's model of what was acknowledged,
// and returns a human-readable violation description — or "" when the
// invariant holds. The harness runs the cheap structural checks after
// every event and the full set at quiescence points.
//
// Invariant catalog (ISSUE/DESIGN §10):
//   1. Durable-prefix contiguity per virtual log / virtual segment.
//   2. No acknowledged record lost across any crash/recovery.
//   3. Per-(streamlet, group) chunk order preserved at consumers
//      (checked consumer-side by the harness during consumption).
//   4. At-least-once with bounded duplication, accounted per dedup key
//      ((streamlet, producer)) against that key's own resends plus the
//      schedule-wide injected-fault slack. In exactly-once mode the
//      harness tightens the consumer side of this invariant to zero
//      redelivery after a consumer restart.
//   5. Checksum integrity end to end (chunk payload CRCs verify
//      everywhere; no transport or backup checksum failure counters).
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>

#include "cluster/mini_cluster.h"

namespace kera::chaos {

/// Acknowledged chunks: (streamlet, producer) -> set of acked sequences.
using AckedMap =
    std::map<std::pair<StreamletId, ProducerId>, std::set<ChunkSeq>>;

class InvariantChecker {
 public:
  /// Invariant 1 (+5 for the checksum chain): for every virtual segment of
  /// every live broker — durable prefix within bounds, virtual offsets
  /// consistent with the referenced chunk lengths, the running checksum
  /// chain recomputes, durability propagated into the referenced groups,
  /// and only the newest segment of a vlog open.
  [[nodiscard]] static std::string CheckVirtualLogs(MiniCluster& cluster,
                                                    uint64_t* checks);

  /// Invariant 2 (+5, + exactly-once storage): every acked (streamlet,
  /// producer, seq) appears in the current leader's durable prefix, at
  /// most once, and every durable chunk's payload checksum verifies.
  [[nodiscard]] static std::string CheckAckedDurable(
      MiniCluster& cluster, const std::string& stream_name,
      const AckedMap& acked, uint64_t* checks);

  /// Invariant 4 (broker side), per dedup key: for every (streamlet,
  /// producer), the broker-counted dedup hits never exceed that key's own
  /// resends plus `slack` — the schedule-wide count of injected duplicate
  /// deliveries, late-replayed frames and recovery replay, each of which
  /// can re-present at most one already-accepted chunk per key. The old
  /// schedule-wide sum let a hot key's unexplained duplicates hide under
  /// another key's unused budget; keying the bound closes that hole.
  /// Charges ONE check per call (the granularity the aggregate bound
  /// charged), so existing traces stay byte-stable.
  [[nodiscard]] static std::string CheckDuplicateBound(
      const std::map<std::pair<StreamletId, ProducerId>, uint64_t>& hits,
      const std::map<std::pair<StreamletId, ProducerId>, uint64_t>& resends,
      uint64_t slack, uint64_t* checks);

  /// Invariant 5 (counter side): no checksum failure was ever counted by
  /// any broker or backup.
  [[nodiscard]] static std::string CheckChecksumCounters(
      MiniCluster& cluster, uint64_t* checks);

  /// Invariant 6 (power-loss durability): every copy `node`'s restarted
  /// backup rebuilt from its torn segment log is internally consistent —
  /// the payload re-reads from disk, parses into exactly the advertised
  /// chunk count, every chunk checksum verifies, and the running checksum
  /// chain recomputes to the advertised value. A torn tail may shorten
  /// copies (the acked data lives at the primaries), but a recovered copy
  /// must never be silently corrupt.
  [[nodiscard]] static std::string CheckBackupDurableCopies(
      MiniCluster& cluster, NodeId node, uint64_t* checks);
};

}  // namespace kera::chaos
