#include "chaos/invariant_checker.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <tuple>
#include <utility>

#include "broker/tiered_store.h"
#include "common/crc32c.h"
#include "wire/chunk.h"

namespace kera::chaos {

namespace {

std::string Describe(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string InvariantChecker::CheckVirtualLogs(MiniCluster& cluster,
                                               uint64_t* checks) {
  for (NodeId node : cluster.BrokerNodes()) {
    for (VirtualLog* vlog : cluster.broker(node).VirtualLogs()) {
      auto segments = vlog->Segments();
      for (size_t si = 0; si < segments.size(); ++si) {
        const VirtualSegment* seg = segments[si];
        ++*checks;
        if (si + 1 < segments.size() && !seg->closed()) {
          return Describe("node %u vlog %u vseg %u: non-newest segment open",
                          unsigned(node), unsigned(vlog->id()),
                          unsigned(seg->id()));
        }
        if (seg->durable_ref_count() > seg->ref_count() ||
            seg->durable_header() > seg->header()) {
          return Describe(
              "node %u vlog %u vseg %u: durable prefix beyond the end",
              unsigned(node), unsigned(vlog->id()), unsigned(seg->id()));
        }
        uint64_t bytes = 0;
        uint64_t durable_bytes = 0;
        auto refs = seg->refs();
        for (size_t i = 0; i < refs.size(); ++i) {
          bytes += refs[i].loc.length;
          if (i < seg->durable_ref_count()) {
            durable_bytes += refs[i].loc.length;
            // Durability must have propagated into the chunk's group: the
            // consumer-visibility gate derives from the group counter.
            if (refs[i].group != nullptr &&
                refs[i].group->durable_chunk_count() <=
                    refs[i].loc.group_chunk_index) {
              return Describe(
                  "node %u vlog %u vseg %u ref %zu: durable in the vseg but "
                  "not in group %u",
                  unsigned(node), unsigned(vlog->id()), unsigned(seg->id()),
                  i, unsigned(refs[i].loc.group));
            }
          }
        }
        if (bytes != seg->header() || durable_bytes != seg->durable_header()) {
          return Describe(
              "node %u vlog %u vseg %u: virtual offsets inconsistent with "
              "referenced chunk lengths",
              unsigned(node), unsigned(vlog->id()), unsigned(seg->id()));
        }
        if (seg->ChecksumUpTo(seg->ref_count()) != seg->running_checksum()) {
          return Describe(
              "node %u vlog %u vseg %u: checksum chain does not recompute",
              unsigned(node), unsigned(vlog->id()), unsigned(seg->id()));
        }
      }
    }
  }
  return "";
}

std::string InvariantChecker::CheckAckedDurable(MiniCluster& cluster,
                                                const std::string& stream_name,
                                                const AckedMap& acked,
                                                uint64_t* checks) {
  auto info = cluster.coordinator().GetStreamInfo(stream_name);
  if (!info.ok()) {
    return Describe("stream '%s' unknown to the coordinator",
                    stream_name.c_str());
  }
  // (streamlet, producer, seq) found in the current leaders' durable
  // prefixes. Uniqueness is checked as the scan inserts.
  std::set<std::tuple<StreamletId, ProducerId, ChunkSeq>> durable;
  for (StreamletId sl = 0; sl < StreamletId(info->streamlet_brokers.size());
       ++sl) {
    NodeId leader = info->streamlet_brokers[sl];
    Stream* stream = cluster.broker(leader).GetStream(info->stream);
    Streamlet* streamlet =
        stream == nullptr ? nullptr : stream->GetStreamlet(sl);
    if (streamlet == nullptr) continue;  // nothing durable here (checked
                                         // against acked below)
    for (GroupId gid : streamlet->GroupIds()) {
      Group* group = streamlet->GetGroup(gid);
      if (group == nullptr || group->trimmed()) continue;
      uint64_t durable_count = group->durable_chunk_count();
      for (uint64_t i = 0; i < durable_count; ++i) {
        ++*checks;
        ChunkLocator loc = group->GetChunk(i);
        // Tiered brokers may have evicted this segment's DRAM copy; pin it
        // for the parse, or re-read it from the broker's spill tier (which
        // also re-verifies the spill log's CRC framing).
        std::shared_ptr<const TieredStore::ColdSegment> cold;
        const bool pinned = loc.segment->TryPinRead();
        if (!pinned) {
          TieredStore* tiered = cluster.broker(leader).tiered();
          if (tiered == nullptr) {
            return Describe(
                "leader %u streamlet %u group %u chunk %" PRIu64
                ": segment evicted without a tiered store",
                unsigned(leader), unsigned(sl), unsigned(gid), i);
          }
          auto cs = tiered->ReadCold(info->stream, sl, gid, loc.segment_id);
          if (!cs.ok()) {
            return Describe(
                "leader %u streamlet %u group %u chunk %" PRIu64
                ": cold read of evicted durable chunk failed: %s",
                unsigned(leader), unsigned(sl), unsigned(gid), i,
                cs.status().ToString().c_str());
          }
          cold = std::move(*cs);
        }
        struct Unpin {
          Segment* seg;
          ~Unpin() {
            if (seg != nullptr) seg->UnpinRead();
          }
        } unpin{pinned ? loc.segment : nullptr};
        auto bytes = pinned ? loc.segment->Bytes(loc.offset, loc.length)
                            : cold->bytes(loc.offset, loc.length);
        auto chunk = ChunkView::Parse(bytes);
        if (!chunk.ok()) {
          return Describe(
              "leader %u streamlet %u group %u chunk %" PRIu64
              ": durable chunk does not parse",
              unsigned(leader), unsigned(sl), unsigned(gid), i);
        }
        if (!chunk->VerifyChecksum()) {
          return Describe(
              "leader %u streamlet %u group %u chunk %" PRIu64
              ": payload checksum mismatch",
              unsigned(leader), unsigned(sl), unsigned(gid), i);
        }
        auto key = std::make_tuple(StreamletId(sl), chunk->producer_id(),
                                   chunk->chunk_seq());
        if (!durable.insert(key).second) {
          return Describe(
              "leader %u streamlet %u: (producer %u, seq %" PRIu64
              ") stored durably more than once",
              unsigned(leader), unsigned(sl), unsigned(chunk->producer_id()),
              chunk->chunk_seq());
        }
      }
    }
  }
  for (const auto& [key, seqs] : acked) {
    for (ChunkSeq seq : seqs) {
      ++*checks;
      if (durable.count({key.first, key.second, seq}) == 0) {
        return Describe(
            "ACKED DATA LOST: streamlet %u producer %u seq %" PRIu64
            " not in any current leader's durable prefix",
            unsigned(key.first), unsigned(key.second), seq);
      }
    }
  }
  return "";
}

std::string InvariantChecker::CheckDuplicateBound(
    const std::map<std::pair<StreamletId, ProducerId>, uint64_t>& hits,
    const std::map<std::pair<StreamletId, ProducerId>, uint64_t>& resends,
    uint64_t slack, uint64_t* checks) {
  ++*checks;
  for (const auto& [key, n] : hits) {
    auto it = resends.find(key);
    uint64_t budget = (it == resends.end() ? 0 : it->second) + slack;
    if (n > budget) {
      return Describe(
          "dedup hits for (streamlet %u, producer %u) (%" PRIu64
          ") exceed that key's duplication budget (%" PRIu64 ")",
          unsigned(key.first), unsigned(key.second), n, budget);
    }
  }
  return "";
}

std::string InvariantChecker::CheckChecksumCounters(MiniCluster& cluster,
                                                    uint64_t* checks) {
  for (NodeId node : cluster.BrokerNodes()) {
    ++*checks;
    if (cluster.broker(node).GetStats().checksum_failures != 0) {
      return Describe("broker %u counted checksum failures", unsigned(node));
    }
    if (cluster.backup(node).GetStats().checksum_failures != 0) {
      return Describe("backup %u counted checksum failures", unsigned(node));
    }
  }
  return "";
}

std::string InvariantChecker::CheckBackupDurableCopies(MiniCluster& cluster,
                                                       NodeId node,
                                                       uint64_t* checks) {
  Backup& backup = cluster.backup(node);
  for (const Backup::DebugCopy& d : backup.DebugCopies()) {
    rpc::ReadRecoverySegmentRequest req;
    req.crashed = d.primary;
    req.vlog = d.vlog;
    req.vseg = d.vseg;
    std::vector<std::byte> storage;
    auto resp = backup.HandleRead(req, storage);
    ++*checks;
    if (resp.status != StatusCode::kOk) {
      return Describe("backup %u copy p%u/v%u/s%" PRIu64
                      ": recovered copy does not re-read (status %u)",
                      unsigned(node), unsigned(d.primary), unsigned(d.vlog),
                      uint64_t(d.vseg), unsigned(resp.status));
    }
    if (resp.payload.size() != d.size) {
      return Describe("backup %u copy p%u/v%u/s%" PRIu64
                      ": read %zu bytes, descriptor says %" PRIu64,
                      unsigned(node), unsigned(d.primary), unsigned(d.vlog),
                      uint64_t(d.vseg), resp.payload.size(), d.size);
    }
    uint32_t chunks = 0;
    uint32_t crc = 0;
    std::span<const std::byte> rest = resp.payload;
    while (!rest.empty()) {
      ++*checks;
      auto cv = ChunkView::Parse(rest);
      if (!cv.ok() || !cv->VerifyChecksum()) {
        return Describe("backup %u copy p%u/v%u/s%" PRIu64
                        ": recovered chunk %u corrupt",
                        unsigned(node), unsigned(d.primary), unsigned(d.vlog),
                        uint64_t(d.vseg), chunks);
      }
      uint32_t chunk_crc = cv->payload_checksum();
      crc = Crc32c(&chunk_crc, sizeof(chunk_crc), crc);
      rest = rest.subspan(cv->total_size());
      ++chunks;
    }
    ++*checks;
    if (chunks != d.chunk_count || crc != d.running_checksum) {
      return Describe("backup %u copy p%u/v%u/s%" PRIu64
                      ": rebuilt copy mismatch (chunks %u vs %u, crc %08x "
                      "vs %08x)",
                      unsigned(node), unsigned(d.primary), unsigned(d.vlog),
                      uint64_t(d.vseg), chunks, d.chunk_count, crc,
                      d.running_checksum);
    }
  }
  return "";
}

}  // namespace kera::chaos
