// ChaosNetwork: the chaos harness's network decorator. Extends the
// FlakyNetwork idea with per-edge fault policies (per destination service:
// request/response drops, request duplication, bounded delays), hard
// partitions, a virtual clock advanced by the injected delays, and held
// duplicate frames that can be re-delivered late and shuffled — the
// deterministic stand-in for reordered retransmissions.
//
// Determinism contract: all fault coins come from one seeded Xoshiro256
// drawn in call-issue order under a single lock, so a single-threaded
// harness replays byte-identically from the seed. Delays never sleep; they
// only advance the virtual clock (and notify the optional clock hook), so
// wall-clock time never leaks into a schedule.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/rng.h"
#include "rpc/transport.h"

namespace kera::chaos {

class ChaosNetwork final : public rpc::Network {
 public:
  /// Fault policy for one edge (every call addressed to one destination
  /// service; broker and backup services of a node are distinct edges).
  struct EdgePolicy {
    double drop_request = 0.0;      // lost before the handler runs
    double drop_response = 0.0;     // handler ran; caller sees kUnavailable
    double duplicate_request = 0.0; // delivered twice + held for late replay
    uint64_t max_delay_us = 0;      // virtual-clock delay drawn in [0, max]
  };

  ChaosNetwork(rpc::DirectNetwork& inner, uint64_t seed);

  // Registration passthrough (MiniCluster external-network hooks).
  void Register(NodeId node, rpc::RpcHandler* handler);
  void Crash(NodeId node);
  void Restore(NodeId node, rpc::RpcHandler* handler);

  /// Installs the fault policy for calls addressed to `to` (replaces any
  /// previous policy for that edge).
  void SetEdgePolicy(NodeId to, const EdgePolicy& policy);

  /// Hard partition: every call addressed to `to` fails with kUnavailable
  /// without reaching the handler.
  void SetPartitioned(NodeId to, bool partitioned);

  /// Clears every edge policy and partition. Held duplicate frames are
  /// kept — release or discard them explicitly.
  void ClearFaults();

  /// Re-delivers the held duplicate frames in a shuffled order (responses
  /// are discarded — the original caller is long gone, exactly like a late
  /// retransmission). Returns the number of frames delivered.
  size_t ReleaseHeld();

  /// Drops the held duplicate frames without delivering them (used before
  /// crash/recovery boundaries, where a late replay would model a packet
  /// surviving across an epoch it could not have survived).
  size_t DiscardHeld();

  /// Virtual time advanced by injected delays, microseconds.
  [[nodiscard]] uint64_t virtual_now_us() const;

  /// Called (outside the lock) after every virtual-clock advance with the
  /// new virtual time; the harness uses it to timestamp trace annotations.
  void set_clock_hook(std::function<void(uint64_t)> hook);

  Result<std::vector<std::byte>> Call(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsync(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsyncParts(
      NodeId to, const rpc::BytesRefParts& parts) override;

  struct Stats {
    uint64_t calls = 0;
    uint64_t dropped_requests = 0;
    uint64_t dropped_responses = 0;
    uint64_t duplicated_requests = 0;
    uint64_t replayed_frames = 0;    // held duplicates delivered late
    uint64_t discarded_frames = 0;   // held duplicates dropped
    uint64_t partitioned_calls = 0;
    uint64_t delays_injected = 0;
    uint64_t delay_us_injected = 0;
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  struct HeldFrame {
    NodeId to = 0;
    std::vector<std::byte> frame;
  };

  /// Coin flips + clock advance for one call, under mu_; returns false if
  /// the request is dropped or partitioned (error already prepared).
  bool AdmitCall(NodeId to, bool& duplicate, bool& drop_response,
                 Status& error);
  void AdvanceClockLocked(uint64_t delta_us, uint64_t& now_out);

  rpc::DirectNetwork& inner_;
  mutable std::mutex mu_;
  Xoshiro256 rng_;
  std::map<NodeId, EdgePolicy> policies_;
  std::set<NodeId> partitioned_;
  std::deque<HeldFrame> held_;
  uint64_t virtual_now_us_ = 0;
  std::function<void(uint64_t)> clock_hook_;
  Stats stats_;
};

}  // namespace kera::chaos
