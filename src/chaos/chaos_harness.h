// ChaosHarness: executes one seed-reproducible fault schedule against a
// full in-process MiniCluster (producers, brokers, virtual logs, backups,
// coordinator, consumers) wired through a ChaosNetwork, checking the
// global stream invariants after every event. Everything is
// single-threaded and the schedule is a pure function of the seed, so a
// run is deterministic: the same seed produces a byte-identical annotated
// trace and identical checker results, and any failure replays exactly
// from its dumped trace (ParseTrace + RunSchedule).
//
// Model kept by the harness while driving the cluster over RPC frames:
//   - every acknowledged (streamlet, producer, seq), for the lost-ack oracle;
//   - per-producer retry counts, for the bounded-duplication budget;
//   - per-consumer cursors, committed snapshots and consumed sets, for the
//     ordering / at-least-once / bounded-redelivery oracles.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "chaos/chaos_net.h"
#include "chaos/fault_schedule.h"

namespace kera::chaos {

struct RunResult {
  bool ok = true;
  /// Violation or infrastructure-error description when !ok.
  std::string failure;
  /// Index into Schedule::events of the failing event (size_t(-1): the
  /// failure happened in setup or in the final drain phase).
  size_t failed_event = size_t(-1);
  /// Annotated, replayable trace: FormatTrace interleaved with '#' outcome
  /// lines. ParseTrace(trace) recovers the exact schedule.
  std::string trace;

  uint64_t events_run = 0;
  uint64_t events_skipped = 0;  // deterministically skipped (see harness)
  uint64_t checks = 0;          // individual invariant checks performed
  uint64_t acked_chunks = 0;
  uint64_t consumed_chunks = 0;     // fresh chunks across all consumers
  uint64_t redelivered_chunks = 0;  // re-consumed after consumer restarts
  uint64_t retried_sends = 0;       // producer resends of a chunk frame
  uint64_t abandoned_sends = 0;     // chunks never acked within the event
  uint64_t dedup_hits = 0;          // broker exactly-once rejections
  // Exactly-once mode (RunOptions::exactly_once) totals: epoch-fence
  // rejections and offset-commit system chunks applied, summed over the
  // brokers alive at run end. Both stay 0 when the mode is off.
  uint64_t fenced_rejections = 0;
  uint64_t offset_commits = 0;
  uint64_t recovery_replayed = 0;   // chunks replayed by crash/migration
  // Parallel-recovery engine totals (Coordinator::RecoveryStats). Task,
  // RPC and fan-out counts are deterministic (the engine executes
  // serially under the single-threaded chaos network and only MODELS the
  // fan-out); the p50/p99 per-task replay times are wall-clock —
  // report-only, never compare them.
  uint64_t recovery_tasks = 0;         // one per (vlog, vseg) replayed
  uint64_t recovery_bytes = 0;         // chunk-frame bytes re-ingested
  uint64_t recovery_read_rpcs = 0;     // batched backup reads issued
  uint64_t recovery_read_rpcs_saved = 0;  // vs one read RPC per segment
  uint64_t recovery_peak_fanout = 0;      // modeled concurrent lanes
  uint64_t recovery_task_p50_us = 0;      // NOT deterministic
  uint64_t recovery_task_p99_us = 0;      // NOT deterministic
  uint64_t power_loss_events = 0;      // executed power-loss faults
  uint64_t power_loss_recovered = 0;   // copies rebuilt by post-cut scans
  // Backup segment-log flush totals at run end (power-loss mode only).
  // Group-commit boundaries depend on flusher wakeup timing, so these are
  // NOT deterministic across runs — report them, never compare them.
  uint64_t backup_flush_groups = 0;
  uint64_t backup_fsyncs = 0;
  uint64_t backup_bytes_flushed = 0;
  // Tiered broker memory totals (RunOptions::memory_budget_bytes > 0
  // only). Spill/evict/cold-read counts are deterministic — eviction is a
  // pure function of the schedule (the evictor forces the spill record
  // durable rather than racing the flusher) — but they are reported, not
  // traced, so trace comparison stays byte-stable across modes.
  uint64_t segments_spilled = 0;
  uint64_t segments_evicted = 0;
  uint64_t cold_reads = 0;
  uint64_t cold_cache_hits = 0;
  uint64_t cold_cache_misses = 0;
  ChaosNetwork::Stats net;
};

/// Harness knobs that are NOT part of the schedule (the trace format and
/// the seed->schedule mapping stay stable across them).
struct RunOptions {
  /// Shared-nothing broker shards for the cluster under test (see
  /// BrokerConfig::shards). 1 reproduces the original single-shard runs
  /// byte-for-byte; >1 drives the same deterministic schedules through
  /// the sharded broker (per-shard leadership/dedup/parking state and the
  /// cross-shard mailboxes), checking the same invariants.
  uint32_t broker_shards = 1;
  /// Recovery fan-out for the cluster under test (see CoordinatorConfig::
  /// recovery_parallelism). Under the single-threaded chaos network the
  /// engine executes serially at ANY setting and models the makespan, so
  /// the schedule outcome — and the byte-exact trace — is identical at
  /// every value; >1 still drives the scatter placement, batched reads
  /// and per-vlog lane partitioning through every crash schedule.
  uint32_t recovery_parallelism = 1;
  /// Tiered broker memory budget for the cluster under test (see
  /// BrokerConfig::memory_budget_bytes). 0 (default) keeps every segment
  /// resident — byte-identical to the pre-tiering runs. A small non-zero
  /// budget (e.g. a few segments' worth against the harness's 2 KiB
  /// segments) forces mid-schedule spill/eviction and routes lagging
  /// consumers through the cold-read cache, all under the same schedules
  /// and invariants; the spill logs live in a per-run scratch dir and a
  /// broker crash deletes its node's spill tree.
  size_t memory_budget_bytes = 0;
  /// End-to-end exactly-once for the cluster under test. Producers are
  /// allocated coordinator epochs at setup and stamp them into every
  /// chunk; each consume event durably commits the consumer's cursors as
  /// offset system chunks (retrying — and, as a last resort, healing the
  /// network — until the commit lands, like a real consumer blocking on
  /// Commit); a consumer restart resumes from the offsets fetched back
  /// from the brokers instead of the harness's local snapshot. Invariant
  /// 4 tightens from "bounded redelivery" to ZERO redelivery of user
  /// records across restarts. Off (default) leaves every schedule's
  /// trace byte-identical to the pre-exactly-once harness.
  bool exactly_once = false;
};

/// Runs one schedule to completion (or first violation). The cluster is
/// built fresh from the schedule's shape; nothing persists across runs.
[[nodiscard]] RunResult RunSchedule(const Schedule& schedule,
                                    RunOptions options = {});

/// GenerateSchedule + RunSchedule.
[[nodiscard]] RunResult RunSeed(uint64_t seed, uint32_t num_events,
                                RunOptions options = {});

}  // namespace kera::chaos
