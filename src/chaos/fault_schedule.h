// FaultScheduler: seed-reproducible chaos schedules. A schedule is the
// full description of one chaos run — cluster shape plus an ordered list
// of events (workload operations interleaved with fault injections) —
// computed entirely from the seed BEFORE execution, so it never depends on
// runtime outcomes and any failing schedule replays exactly from its
// dumped trace.
//
// Fault-mode soundness: each schedule is either broker-fault mode (broker
// crash + recovery, restarts, leadership migrations) or backup-fault mode
// (backup crash + fresh restart), never both. Mixing them can lose
// acknowledged data LEGITIMATELY at R=2: segment evacuation re-targets
// only the unreplicated suffix, so a backup's memory loss followed by a
// primary crash removes both copies of the durable prefix without any bug
// being involved. Network faults (drops, duplicates, delays, partitions)
// are injected in both modes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kera::chaos {

enum class FaultKind : uint8_t {
  kProduce = 0,         // a: producer index, b: streamlet
  kConsume = 1,         // a: consumer index, b: max gather rounds
  kBrokerCrash = 2,     // a: node; crash + RecoverNode + RestartNode
  kMigrate = 3,         // a: streamlet, b: target node
  kBackupCrash = 4,     // a: node; CrashBackup + NoteBackupDown
  kBackupRestart = 5,   // a: node; RestartBackup + NoteBackupUp
  kNetFault = 6,        // a: service id, b: fault type, arg: parameter
  kHealNetwork = 7,     // clear faults, quiesce, full invariant check
  kConsumerRestart = 8, // a: consumer index; rewind to committed offsets
  kPowerLoss = 9,       // a: node; arg: selects the log truncation offset.
                        // Backup loses memory AND its on-disk segment log
                        // is cut at an arbitrary byte (power loss tears
                        // the last flush group); the restarted backup
                        // rebuilds its copy map from the surviving prefix.
};

/// kNetFault sub-types carried in FaultEvent::b.
enum class NetFaultType : uint8_t {
  kDropRequest = 0,   // arg: probability in per-mille
  kDropResponse = 1,  // arg: probability in per-mille
  kDuplicate = 2,     // arg: probability in per-mille
  kDelay = 3,         // arg: max delay in microseconds
  kPartition = 4,     // arg unused
};

[[nodiscard]] const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kProduce;
  uint32_t a = 0;
  uint32_t b = 0;
  uint64_t arg = 0;
};

struct Schedule {
  uint64_t seed = 0;
  uint32_t nodes = 3;
  uint32_t replication_factor = 2;
  uint32_t streamlets = 2;
  uint32_t producers = 2;
  uint32_t consumers = 1;
  /// true: backup-fault mode (B); false: broker-fault mode (A).
  bool backup_mode = false;
  /// Backup-mode variant (mode P): backup faults are power losses — disk
  /// truncated at an arbitrary flush boundary, not just memory loss.
  bool power_loss = false;
  /// true: one vlog per sub-partition; false: shared per-broker pool.
  bool vlog_per_subpartition = false;
  std::vector<FaultEvent> events;
};

/// Derives a complete schedule from the seed: cluster shape first, then
/// `num_events` events. Pure function of (seed, num_events).
[[nodiscard]] Schedule GenerateSchedule(uint64_t seed, uint32_t num_events);

/// Serializes a schedule as a replayable text trace. Lines beginning with
/// '#' are annotations (execution outcomes) and are ignored by ParseTrace;
/// everything else round-trips exactly.
[[nodiscard]] std::string FormatTrace(const Schedule& schedule);

/// The header portion of FormatTrace (through the events= line) and a
/// single "ev ..." line — the harness interleaves these with '#'-prefixed
/// outcome annotations to build a trace that is both replayable and
/// human-diagnosable.
[[nodiscard]] std::string FormatTraceHeader(const Schedule& schedule);
[[nodiscard]] std::string FormatEventLine(const FaultEvent& event);

/// Parses a trace produced by FormatTrace (annotation lines skipped).
[[nodiscard]] Result<Schedule> ParseTrace(std::string_view text);

}  // namespace kera::chaos
