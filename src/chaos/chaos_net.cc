#include "chaos/chaos_net.h"

#include <algorithm>
#include <utility>

namespace kera::chaos {

ChaosNetwork::ChaosNetwork(rpc::DirectNetwork& inner, uint64_t seed)
    : inner_(inner), rng_(seed) {}

void ChaosNetwork::Register(NodeId node, rpc::RpcHandler* handler) {
  inner_.Register(node, handler);
}

void ChaosNetwork::Crash(NodeId node) { inner_.Crash(node); }

void ChaosNetwork::Restore(NodeId node, rpc::RpcHandler* handler) {
  inner_.Restore(node, handler);
}

void ChaosNetwork::SetEdgePolicy(NodeId to, const EdgePolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policies_[to] = policy;
}

void ChaosNetwork::SetPartitioned(NodeId to, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitioned_.insert(to);
  } else {
    partitioned_.erase(to);
  }
}

void ChaosNetwork::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  policies_.clear();
  partitioned_.clear();
}

void ChaosNetwork::set_clock_hook(std::function<void(uint64_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_hook_ = std::move(hook);
}

uint64_t ChaosNetwork::virtual_now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_us_;
}

void ChaosNetwork::AdvanceClockLocked(uint64_t delta_us, uint64_t& now_out) {
  virtual_now_us_ += delta_us;
  ++stats_.delays_injected;
  stats_.delay_us_injected += delta_us;
  now_out = virtual_now_us_;
}

bool ChaosNetwork::AdmitCall(NodeId to, bool& duplicate, bool& drop_response,
                             Status& error) {
  duplicate = false;
  drop_response = false;
  uint64_t clock_now = 0;
  bool clock_advanced = false;
  std::function<void(uint64_t)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
    if (partitioned_.count(to) != 0) {
      ++stats_.partitioned_calls;
      error = Status(StatusCode::kUnavailable, "chaos: partitioned");
      return false;
    }
    auto it = policies_.find(to);
    if (it != policies_.end()) {
      const EdgePolicy& p = it->second;
      if (p.max_delay_us > 0) {
        AdvanceClockLocked(rng_.NextBounded(p.max_delay_us + 1), clock_now);
        clock_advanced = true;
        hook = clock_hook_;
      }
      if (p.drop_request > 0.0 && rng_.NextDouble() < p.drop_request) {
        ++stats_.dropped_requests;
        error = Status(StatusCode::kUnavailable, "chaos: request dropped");
        return false;
      }
      duplicate = p.duplicate_request > 0.0 &&
                  rng_.NextDouble() < p.duplicate_request;
      drop_response = p.drop_response > 0.0 &&
                      rng_.NextDouble() < p.drop_response;
    }
  }
  if (clock_advanced && hook) hook(clock_now);
  return true;
}

Result<std::vector<std::byte>> ChaosNetwork::Call(
    NodeId to, std::span<const std::byte> request) {
  bool duplicate = false;
  bool drop_response = false;
  Status error = OkStatus();
  if (!AdmitCall(to, duplicate, drop_response, error)) return error;
  auto result = inner_.Call(to, request);
  if (duplicate) {
    // A retransmission: the handler sees the frame again right away (its
    // response goes nowhere), and one more copy is held for late, shuffled
    // re-delivery at the next ReleaseHeld().
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.duplicated_requests;
      held_.push_back({to, std::vector<std::byte>(request.begin(),
                                                  request.end())});
    }
    (void)inner_.Call(to, request);
  }
  if (drop_response) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dropped_responses;
    return Status(StatusCode::kUnavailable, "chaos: response dropped");
  }
  return result;
}

std::future<Result<std::vector<std::byte>>> ChaosNetwork::CallAsync(
    NodeId to, std::span<const std::byte> request) {
  // The harness is single-threaded: resolve inline and hand back a ready
  // future, keeping fault-coin order identical to issue order.
  std::promise<Result<std::vector<std::byte>>> promise;
  promise.set_value(Call(to, request));
  return promise.get_future();
}

std::future<Result<std::vector<std::byte>>> ChaosNetwork::CallAsyncParts(
    NodeId to, const rpc::BytesRefParts& parts) {
  // Materialize (the chaos harness is not a zero-copy benchmark) so held
  // duplicates own their bytes independently of segment memory lifetime.
  std::vector<std::byte> frame;
  size_t total = 0;
  for (const auto& piece : parts.pieces) total += piece.size();
  frame.reserve(total);
  for (const auto& piece : parts.pieces) {
    frame.insert(frame.end(), piece.begin(), piece.end());
  }
  return CallAsync(to, frame);
}

size_t ChaosNetwork::ReleaseHeld() {
  std::vector<HeldFrame> frames;
  {
    std::lock_guard<std::mutex> lock(mu_);
    frames.assign(std::make_move_iterator(held_.begin()),
                  std::make_move_iterator(held_.end()));
    held_.clear();
    // Fisher-Yates with the fault RNG: late retransmissions arrive in an
    // order unrelated to the original sends.
    for (size_t i = frames.size(); i > 1; --i) {
      std::swap(frames[i - 1], frames[rng_.NextBounded(i)]);
    }
    stats_.replayed_frames += frames.size();
  }
  for (const HeldFrame& f : frames) {
    (void)inner_.Call(f.to, f.frame);  // response discarded, like any late
                                       // retransmission's
  }
  return frames.size();
}

size_t ChaosNetwork::DiscardHeld() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = held_.size();
  held_.clear();
  stats_.discarded_frames += n;
  return n;
}

ChaosNetwork::Stats ChaosNetwork::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kera::chaos
