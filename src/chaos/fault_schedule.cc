#include "chaos/fault_schedule.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <set>

#include "common/rng.h"
#include "common/types.h"

namespace kera::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kProduce: return "produce";
    case FaultKind::kConsume: return "consume";
    case FaultKind::kBrokerCrash: return "broker-crash";
    case FaultKind::kMigrate: return "migrate";
    case FaultKind::kBackupCrash: return "backup-crash";
    case FaultKind::kBackupRestart: return "backup-restart";
    case FaultKind::kNetFault: return "net-fault";
    case FaultKind::kHealNetwork: return "heal";
    case FaultKind::kConsumerRestart: return "consumer-restart";
    case FaultKind::kPowerLoss: return "power-loss";
  }
  return "unknown";
}

namespace {

bool ParseFaultKind(const char* name, FaultKind& out) {
  for (uint8_t k = 0; k <= uint8_t(FaultKind::kPowerLoss); ++k) {
    if (std::strcmp(name, FaultKindName(FaultKind(k))) == 0) {
      out = FaultKind(k);
      return true;
    }
  }
  return false;
}

}  // namespace

Schedule GenerateSchedule(uint64_t seed, uint32_t num_events) {
  Xoshiro256 rng(seed);
  Schedule s;
  s.seed = seed;
  s.nodes = 3 + uint32_t(rng.NextBounded(2));
  s.backup_mode = rng.NextBounded(4) == 0;
  // Broker mode may use any R the cluster can recover at (a crashed node's
  // survivors must still offer R-1 non-self backups). Backup mode stays at
  // R=2 so one backup down leaves enough live candidates to keep producing.
  s.replication_factor =
      s.backup_mode ? 2 : 2 + uint32_t(rng.NextBounded(s.nodes - 2));
  s.streamlets = 2 + uint32_t(rng.NextBounded(3));
  s.producers = 2 + uint32_t(rng.NextBounded(2));
  s.consumers = 1 + uint32_t(rng.NextBounded(2));
  s.vlog_per_subpartition = rng.NextBounded(4) == 0;
  // Power-loss runs are a backup-mode variant: the backup's fault is a
  // full power cut (memory gone AND the on-disk segment log torn at an
  // arbitrary byte) instead of memory-only loss.
  s.power_loss = s.backup_mode && rng.NextBounded(2) == 0;

  uint32_t backup_down = 0;  // node whose backup is currently down, or 0
  // Broker mode crashes at most R-1 DISTINCT nodes per schedule (re-crashing
  // a prior victim is always allowed). Each distinct victim's death also
  // wipes its backup service, removing one replica of every other leader's
  // durable prefix — and segment evacuation only re-replicates the
  // unreplicated suffix, so an R-th distinct victim could expose a durable
  // prefix whose every copy is gone without any bug being involved.
  std::set<uint32_t> crash_victims;
  s.events.reserve(num_events + 2);
  for (uint32_t i = 0; i < num_events; ++i) {
    uint64_t roll = rng.NextBounded(100);
    FaultEvent ev;
    if (roll < 42 || roll >= 94) {
      ev.kind = FaultKind::kProduce;
      ev.a = uint32_t(rng.NextBounded(s.producers));
      ev.b = uint32_t(rng.NextBounded(s.streamlets));
    } else if (roll < 62) {
      ev.kind = FaultKind::kConsume;
      ev.a = uint32_t(rng.NextBounded(s.consumers));
      ev.b = 1 + uint32_t(rng.NextBounded(3));
    } else if (roll < 72) {
      ev.kind = FaultKind::kNetFault;
      uint32_t node = 1 + uint32_t(rng.NextBounded(s.nodes));
      ev.a = rng.NextBounded(2) == 0 ? node : uint32_t(BackupServiceId(node));
      auto type = NetFaultType(rng.NextBounded(5));
      ev.b = uint32_t(type);
      switch (type) {
        case NetFaultType::kDelay:
          ev.arg = 10 + rng.NextBounded(990);  // microseconds
          break;
        case NetFaultType::kPartition:
          ev.arg = 0;
          break;
        default:
          ev.arg = 100 + rng.NextBounded(400);  // per-mille: 10%..50%
          break;
      }
    } else if (roll < 80) {
      ev.kind = FaultKind::kHealNetwork;
    } else if (roll < 88) {
      if (s.backup_mode) {
        if (s.power_loss) {
          // A power loss is crash + disk truncation + restart in one
          // event, so no down/up pairing is needed. arg seeds the byte
          // offset selection (taken modulo the live log size at
          // execution time).
          ev.kind = FaultKind::kPowerLoss;
          ev.a = 1 + uint32_t(rng.NextBounded(s.nodes));
          ev.arg = rng.Next();
        } else if (backup_down == 0) {
          ev.kind = FaultKind::kBackupCrash;
          ev.a = 1 + uint32_t(rng.NextBounded(s.nodes));
          backup_down = ev.a;
        } else {
          ev.kind = FaultKind::kBackupRestart;
          ev.a = backup_down;
          backup_down = 0;
        }
      } else if (rng.NextBounded(2) == 0) {
        ev.kind = FaultKind::kBrokerCrash;
        uint32_t victim = 1 + uint32_t(rng.NextBounded(s.nodes));
        if (crash_victims.count(victim) == 0 &&
            crash_victims.size() >= s.replication_factor - 1) {
          victim = *std::next(crash_victims.begin(),
                              long(rng.NextBounded(crash_victims.size())));
        }
        crash_victims.insert(victim);
        ev.a = victim;
      } else {
        ev.kind = FaultKind::kMigrate;
        ev.a = uint32_t(rng.NextBounded(s.streamlets));
        ev.b = 1 + uint32_t(rng.NextBounded(s.nodes));
      }
    } else {
      ev.kind = FaultKind::kConsumerRestart;
      ev.a = uint32_t(rng.NextBounded(s.consumers));
    }
    s.events.push_back(ev);
  }
  // Leave the cluster whole: a schedule never ends with a backup down or
  // faults armed (the harness's final drain needs live replication paths).
  if (backup_down != 0) {
    s.events.push_back({FaultKind::kBackupRestart, backup_down, 0, 0});
  }
  s.events.push_back({FaultKind::kHealNetwork, 0, 0, 0});
  return s;
}

std::string FormatTraceHeader(const Schedule& s) {
  std::string out;
  char line[160];
  out += "kera-chaos-trace v1\n";
  std::snprintf(line, sizeof(line), "seed=%" PRIu64 "\n", s.seed);
  out += line;
  std::snprintf(line, sizeof(line),
                "nodes=%u rf=%u streamlets=%u producers=%u consumers=%u "
                "mode=%c vlogs=%s\n",
                s.nodes, s.replication_factor, s.streamlets, s.producers,
                s.consumers,
                s.backup_mode ? (s.power_loss ? 'P' : 'B') : 'A',
                s.vlog_per_subpartition ? "per-sub" : "shared");
  out += line;
  std::snprintf(line, sizeof(line), "events=%zu\n", s.events.size());
  out += line;
  return out;
}

std::string FormatEventLine(const FaultEvent& ev) {
  char line[160];
  std::snprintf(line, sizeof(line), "ev %s a=%u b=%u arg=%" PRIu64 "\n",
                FaultKindName(ev.kind), ev.a, ev.b, ev.arg);
  return line;
}

std::string FormatTrace(const Schedule& s) {
  std::string out = FormatTraceHeader(s);
  for (const FaultEvent& ev : s.events) out += FormatEventLine(ev);
  out += "end\n";
  return out;
}

Result<Schedule> ParseTrace(std::string_view text) {
  Schedule s;
  bool have_header = false;
  bool have_seed = false;
  bool have_shape = false;
  bool have_end = false;
  size_t declared_events = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string line(text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos));
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;  // annotations
    if (!have_header) {
      if (line != "kera-chaos-trace v1") {
        return Status(StatusCode::kInvalidArgument, "bad trace header");
      }
      have_header = true;
      continue;
    }
    if (line == "end") {
      have_end = true;
      break;
    }
    if (line.rfind("seed=", 0) == 0) {
      if (std::sscanf(line.c_str(), "seed=%" SCNu64, &s.seed) != 1) {
        return Status(StatusCode::kInvalidArgument, "bad seed line");
      }
      have_seed = true;
      continue;
    }
    if (line.rfind("nodes=", 0) == 0) {
      char mode = 0;
      char vlogs[16] = {0};
      if (std::sscanf(line.c_str(),
                      "nodes=%u rf=%u streamlets=%u producers=%u "
                      "consumers=%u mode=%c vlogs=%15s",
                      &s.nodes, &s.replication_factor, &s.streamlets,
                      &s.producers, &s.consumers, &mode, vlogs) != 7 ||
          (mode != 'A' && mode != 'B' && mode != 'P')) {
        return Status(StatusCode::kInvalidArgument, "bad shape line");
      }
      s.backup_mode = mode == 'B' || mode == 'P';
      s.power_loss = mode == 'P';
      s.vlog_per_subpartition = std::strcmp(vlogs, "per-sub") == 0;
      have_shape = true;
      continue;
    }
    if (line.rfind("events=", 0) == 0) {
      if (std::sscanf(line.c_str(), "events=%zu", &declared_events) != 1) {
        return Status(StatusCode::kInvalidArgument, "bad events line");
      }
      continue;
    }
    if (line.rfind("ev ", 0) == 0) {
      char name[32] = {0};
      FaultEvent ev;
      if (std::sscanf(line.c_str(), "ev %31s a=%u b=%u arg=%" SCNu64, name,
                      &ev.a, &ev.b, &ev.arg) != 4 ||
          !ParseFaultKind(name, ev.kind)) {
        return Status(StatusCode::kInvalidArgument, "bad event line");
      }
      s.events.push_back(ev);
      continue;
    }
    return Status(StatusCode::kInvalidArgument, "unrecognized trace line");
  }
  if (!have_header || !have_seed || !have_shape || !have_end) {
    return Status(StatusCode::kInvalidArgument, "truncated trace");
  }
  if (declared_events != s.events.size()) {
    return Status(StatusCode::kInvalidArgument, "event count mismatch");
  }
  return s;
}

}  // namespace kera::chaos
