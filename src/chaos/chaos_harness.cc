#include "chaos/chaos_harness.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "storage/segment_log.h"
#include "chaos/invariant_checker.h"
#include "cluster/mini_cluster.h"
#include "common/rng.h"
#include "rpc/messages.h"
#include "wire/chunk.h"

namespace kera::chaos {

namespace {

constexpr char kStreamName[] = "chaos";
constexpr ProducerId kProducerBase = 100;
/// Resend attempts per chunk within one produce event. The chunk is NOT
/// given up across events: an unacked chunk keeps its sequence number and
/// the next produce event for the same (producer, streamlet) retries the
/// byte-identical frame, modeling a producer that never reorders.
constexpr int kMaxAttemptsPerEvent = 3;
/// A consumer commits its cursor snapshot every N of its consume events;
/// a consumer restart rewinds to the committed snapshot.
constexpr uint64_t kCommitEveryConsumeEvents = 2;

class Harness {
 public:
  Harness(const Schedule& s, const RunOptions& options)
      : sched_(s),
        options_(options),
        net_(direct_, s.seed ^ 0x9E3779B97F4A7C15ull) {}

  ~Harness() {
    // Backups close their log files before the scratch dir goes away.
    cluster_.reset();
    if (!pl_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(pl_dir_, ec);
    }
    if (!spill_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(spill_dir_, ec);
    }
  }

  RunResult Run() {
    trace_ += FormatTraceHeader(sched_);
    if (!Setup()) return FinishTrace(0);

    size_t i = 0;
    for (; i < sched_.events.size(); ++i) {
      event_index_ = i;
      trace_ += FormatEventLine(sched_.events[i]);
      bool ok = Dispatch(sched_.events[i]);
      ++result_.events_run;
      if (!ok) break;
      if (!CheckStructural()) break;
    }
    if (result_.ok) {
      event_index_ = size_t(-1);
      FinalPhase();
      i = sched_.events.size();
    } else {
      ++i;  // the failing event's line is already in the trace
    }
    return FinishTrace(i);
  }

 private:
  struct Cursor {
    GroupId group = 0;
    uint64_t next_chunk = 0;
  };
  struct Producer {
    /// Last acked sequence per streamlet; the next chunk is seq + 1.
    std::map<StreamletId, ChunkSeq> acked_seq;
    /// Send attempts already made for the current (unacked) sequence —
    /// every attempt beyond the first is a resend that may legitimately
    /// turn into a broker dedup hit, so it feeds the duplication budget.
    std::map<StreamletId, uint64_t> attempts;
    /// Coordinator-assigned session epoch (exactly-once mode only; 0
    /// keeps the classic epoch-less chunk format).
    uint32_t epoch = 0;
  };
  struct Consumer {
    std::map<StreamletId, Cursor> cur;
    std::map<StreamletId, Cursor> committed;
    std::set<std::tuple<StreamletId, ProducerId, ChunkSeq>> consumed;
    std::map<std::pair<StreamletId, ProducerId>, ChunkSeq> last_seq;
    /// Chunks consumed (fresh or redelivered) since the last commit: a
    /// restart may re-deliver at most this many, so it moves into
    /// `allowance` when the consumer restarts.
    uint64_t read_since_commit = 0;
    uint64_t redelivered = 0;
    uint64_t allowance = 0;
    uint64_t consume_events = 0;
    /// Exactly-once mode: session epoch under the consumer's system
    /// producer id, and the monotonic sequence its durable offset commits
    /// are deduplicated by.
    uint32_t epoch = 0;
    uint64_t commit_seq = 0;
  };

  // ----- plumbing ---------------------------------------------------------

  bool Setup() {
    MiniClusterConfig cfg;
    cfg.nodes = sched_.nodes;
    cfg.workers_per_node = 0;
    cfg.broker_memory_bytes = 64u << 20;
    // Tiny geometry: a handful of chunks rolls segments, groups and
    // virtual segments, so every schedule exercises rotation, sealing and
    // evacuation — not just the happy append path.
    cfg.segment_size = 2048;
    cfg.segments_per_group = 2;
    cfg.virtual_segment_capacity = 4096;
    cfg.replication_max_batch_bytes = 1536;
    cfg.vlogs_per_broker = 2;
    cfg.replication_window = 2;
    cfg.replication_workers = 0;  // single-threaded: determinism
    // The mailbox/Execute machinery degenerates to synchronous inline
    // execution when one thread drives everything, so sharded runs stay
    // deterministic too.
    cfg.broker_shards = std::max<uint32_t>(1, options_.broker_shards);
    cfg.recovery_parallelism =
        std::max<uint32_t>(1, options_.recovery_parallelism);
    cfg.recovery_read_batch = 4;  // tiny geometry: small batches still batch
    if (sched_.power_loss) {
      // Power-loss runs give every backup a real on-disk segment log in a
      // per-run scratch dir. Tiny log files and eager flushing so a
      // handful of chunks spans several files and flush groups; GC OFF so
      // the byte layout on disk is a pure function of the schedule (the
      // collector's timing would perturb where the cut lands).
      char dir[128];
      std::snprintf(dir, sizeof(dir), "/tmp/kera_chaos_pl_%" PRIu64 "_%d",
                    sched_.seed, int(::getpid()));
      pl_dir_ = dir;
      std::error_code ec;
      std::filesystem::remove_all(pl_dir_, ec);
      cfg.backup_dir = pl_dir_ + "/n%u";
      cfg.backup_log_file_bytes = 32u << 10;
      cfg.backup_flush_interval_us = 500;
      cfg.backup_flush_batch_bytes = 16u << 10;
      cfg.backup_gc_live_ratio = 0.0;
    }
    if (options_.memory_budget_bytes > 0) {
      // Tiered broker memory under chaos: a per-run scratch tree holds
      // every broker's spill log. Budget small enough (callers pass a few
      // segments' worth) that schedules evict mid-run and catch-up
      // consumers exercise the cold-read path; readahead stays inline
      // (async_readahead is off for external networks), so the cache
      // state — like everything else here — is a function of the
      // schedule alone.
      char dir[128];
      std::snprintf(dir, sizeof(dir), "/tmp/kera_chaos_spill_%" PRIu64 "_%d",
                    sched_.seed, int(::getpid()));
      spill_dir_ = dir;
      std::error_code ec;
      std::filesystem::remove_all(spill_dir_, ec);
      cfg.broker_memory_budget_bytes = options_.memory_budget_bytes;
      cfg.broker_spill_dir = spill_dir_ + "/n%u";
      cfg.broker_cold_cache_bytes = 4 * cfg.segment_size;
      cfg.broker_readahead_segments = 2;
    }
    cfg.external_network = &net_;
    cfg.external_register = [this](NodeId n, rpc::RpcHandler* h) {
      net_.Register(n, h);
    };
    cfg.external_crash = [this](NodeId n) { net_.Crash(n); };
    cfg.external_restore = [this](NodeId n, rpc::RpcHandler* h) {
      net_.Restore(n, h);
    };
    cluster_ = std::make_unique<MiniCluster>(cfg);

    producers_.resize(sched_.producers);
    consumers_.resize(sched_.consumers);

    rpc::StreamOptions opts;
    opts.num_streamlets = sched_.streamlets;
    opts.active_groups_per_streamlet = 1;
    opts.replication_factor = sched_.replication_factor;
    opts.vlog_policy = sched_.vlog_per_subpartition
                           ? rpc::VlogPolicy::kPerSubPartition
                           : rpc::VlogPolicy::kSharedPerBroker;
    auto created = cluster_->coordinator().CreateStream(kStreamName, opts);
    if (!created.ok()) {
      return Fail("setup: CreateStream failed: %s",
                  created.status().ToString().c_str());
    }
    info_ = *created;
    if (options_.exactly_once) {
      // Idempotent-producer sessions for every client (control-plane
      // direct calls, so setup stays off the faulty network). Consumers
      // allocate under their system producer id so restarted commits
      // would fence stale ones.
      for (uint32_t pidx = 0; pidx < sched_.producers; ++pidx) {
        producers_[pidx].epoch =
            cluster_->coordinator()
                .AllocateProducer(kProducerBase + pidx)
                .second;
      }
      for (uint32_t cidx = 0; cidx < sched_.consumers; ++cidx) {
        consumers_[cidx].epoch =
            cluster_->coordinator()
                .AllocateProducer(ProducerId(0x80000000u | cidx))
                .second;
      }
    }
    return true;
  }

  RunResult FinishTrace(size_t next_event) {
    if (next_event < sched_.events.size()) {
      Annotate("schedule aborted; remaining events were not executed");
      for (size_t i = next_event; i < sched_.events.size(); ++i) {
        trace_ += FormatEventLine(sched_.events[i]);
      }
    }
    trace_ += "end\n";
    result_.trace = std::move(trace_);
    result_.net = net_.GetStats();
    result_.dedup_hits = CurrentDedupHits();
    if (cluster_ != nullptr) {
      Coordinator::RecoveryStats rs =
          cluster_->coordinator().GetRecoveryStats();
      result_.recovery_tasks = rs.tasks_issued;
      result_.recovery_bytes = rs.bytes_replayed;
      result_.recovery_read_rpcs = rs.read_rpcs;
      result_.recovery_read_rpcs_saved = rs.read_rpcs_saved;
      result_.recovery_peak_fanout = rs.peak_fanout;
      result_.recovery_task_p50_us = rs.task_replay_us.Quantile(0.50);
      result_.recovery_task_p99_us = rs.task_replay_us.Quantile(0.99);
    }
    if (sched_.power_loss && cluster_ != nullptr) {
      Backup::Stats bs = cluster_->TotalBackupStats();
      result_.backup_flush_groups = bs.flush_groups;
      result_.backup_fsyncs = bs.fsyncs;
      result_.backup_bytes_flushed = bs.bytes_flushed;
    }
    if (options_.memory_budget_bytes > 0 && cluster_ != nullptr) {
      Broker::Stats ts = cluster_->TotalBrokerStats();
      result_.segments_spilled = ts.segments_spilled;
      result_.segments_evicted = ts.segments_evicted;
      result_.cold_reads = ts.cold_reads;
      result_.cold_cache_hits = ts.cold_cache_hits;
      result_.cold_cache_misses = ts.cold_cache_misses;
    }
    if (options_.exactly_once && cluster_ != nullptr) {
      Broker::Stats ts = cluster_->TotalBrokerStats();
      result_.fenced_rejections = ts.chunks_fenced;
      result_.offset_commits = ts.offset_commits;
    }
    return std::move(result_);
  }

  void Annotate(const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    trace_ += "# ";
    trace_ += buf;
    trace_ += "\n";
  }

  bool Fail(const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    result_.ok = false;
    result_.failure = buf;
    result_.failed_event = event_index_;
    Annotate("FAILURE: %s", buf);
    return false;
  }

  void RefreshInfo() {
    auto r = cluster_->coordinator().GetStreamInfo(kStreamName);
    if (r.ok()) info_ = *r;
  }

  bool DrainAll() {
    bool all = true;
    for (NodeId n : cluster_->BrokerNodes()) {
      all = cluster_->broker(n).DrainReplication() && all;
    }
    return all;
  }

  /// Quiescence: heal the network, drain pending replication, deliver the
  /// held (late, shuffled) retransmissions, and drain whatever they
  /// caused. Returns whether everything drained.
  bool Quiesce() {
    net_.ClearFaults();
    edge_policies_.clear();
    bool drained = DrainAll();
    size_t replayed = net_.ReleaseHeld();
    drained = DrainAll() && drained;
    if (replayed != 0 || !drained) {
      Annotate("quiesce: replayed=%zu drained=%d vclock=%" PRIu64, replayed,
               int(drained), net_.virtual_now_us());
    }
    return drained;
  }

  uint64_t CurrentDedupHits() const {
    uint64_t total = 0;
    for (NodeId n : cluster_->BrokerNodes()) {
      total += cluster_->broker(n).GetStats().chunks_duplicate;
    }
    return total;
  }

  std::map<std::pair<StreamletId, ProducerId>, uint64_t>
  CurrentDedupHitsByKey() const {
    std::map<std::pair<StreamletId, ProducerId>, uint64_t> hits;
    for (NodeId n : cluster_->BrokerNodes()) {
      for (const auto& [key, count] :
           cluster_->broker(n).DedupHitsByKey(info_.stream)) {
        hits[key] += count;
      }
    }
    return hits;
  }

  // ----- invariants -------------------------------------------------------

  bool CheckStructural() {
    std::string v = InvariantChecker::CheckVirtualLogs(*cluster_,
                                                       &result_.checks);
    if (!v.empty()) return Fail("invariant 1 (durable prefix): %s", v.c_str());
    v = InvariantChecker::CheckAckedDurable(*cluster_, kStreamName, acked_,
                                            &result_.checks);
    if (!v.empty()) return Fail("invariant 2 (no acked loss): %s", v.c_str());
    v = InvariantChecker::CheckChecksumCounters(*cluster_, &result_.checks);
    if (!v.empty()) return Fail("invariant 5 (checksums): %s", v.c_str());
    return true;
  }

  bool CheckDuplicateBound() {
    // Every broker dedup hit must be explained by a resend of that same
    // dedup key, an injected duplicate delivery (immediate or
    // late-replayed), or recovery/migration replay traffic. The bound is
    // charged PER (streamlet, producer) key — a key's own resends plus
    // the schedule-wide injected/replayed slack (each such event can
    // re-present at most one already-accepted chunk per key) — so a hot
    // key's unexplained duplicates cannot hide under another key's
    // unused budget.
    ChaosNetwork::Stats ns = net_.GetStats();
    uint64_t slack = ns.duplicated_requests + ns.replayed_frames +
                     result_.recovery_replayed;
    std::string v = InvariantChecker::CheckDuplicateBound(
        CurrentDedupHitsByKey(), retried_by_key_, slack, &result_.checks);
    if (!v.empty()) {
      return Fail("invariant 4 (bounded duplication): %s", v.c_str());
    }
    return true;
  }

  // ----- event execution --------------------------------------------------

  bool Dispatch(const FaultEvent& ev) {
    switch (ev.kind) {
      case FaultKind::kProduce:
        return ExecProduce(ev.a % sched_.producers,
                           StreamletId(ev.b % sched_.streamlets));
      case FaultKind::kConsume:
        return ExecConsume(ev.a % sched_.consumers, 1 + ev.b % 3);
      case FaultKind::kBrokerCrash:
        return ExecBrokerCrash(1 + (ev.a - 1) % sched_.nodes);
      case FaultKind::kMigrate:
        return ExecMigrate(StreamletId(ev.a % sched_.streamlets),
                           1 + (ev.b - 1) % sched_.nodes);
      case FaultKind::kBackupCrash:
        return ExecBackupCrash(1 + (ev.a - 1) % sched_.nodes);
      case FaultKind::kBackupRestart:
        return ExecBackupRestart(1 + (ev.a - 1) % sched_.nodes);
      case FaultKind::kNetFault:
        return ExecNetFault(ev);
      case FaultKind::kHealNetwork:
        return ExecHeal();
      case FaultKind::kConsumerRestart:
        return ExecConsumerRestart(ev.a % sched_.consumers);
      case FaultKind::kPowerLoss:
        return ExecPowerLoss(1 + (ev.a - 1) % sched_.nodes, ev.arg);
    }
    return Fail("unknown event kind %u", unsigned(ev.kind));
  }

  bool ExecProduce(uint32_t pidx, StreamletId sl) {
    Producer& p = producers_[pidx];
    ProducerId pid = kProducerBase + pidx;
    ChunkSeq seq = p.acked_seq[sl] + 1;

    // The chunk is a pure function of (schedule seed, producer, streamlet,
    // seq): a cross-event retry rebuilds the byte-identical frame, so the
    // broker's dedup sees a true retransmission.
    ChunkBuilder builder(768);
    builder.Start(info_.stream, sl, pid, p.epoch);
    Xoshiro256 payload_rng(sched_.seed ^ (uint64_t(pid) << 40) ^
                           (uint64_t(sl) << 32) ^ seq);
    int records = 1 + int(payload_rng.NextBounded(3));
    std::vector<std::byte> value;
    for (int rec = 0; rec < records; ++rec) {
      value.resize(8 + payload_rng.NextBounded(96));
      for (size_t i = 0; i < value.size(); i += 8) {
        uint64_t word = payload_rng.Next();
        for (size_t j = i; j < std::min(i + 8, value.size()); ++j) {
          value[j] = std::byte(word & 0xff);
          word >>= 8;
        }
      }
      if (!builder.AppendValue(value)) break;
    }
    auto chunk = builder.Seal(seq);

    rpc::ProduceRequest req;
    req.producer = pid;
    req.stream = info_.stream;
    req.chunks.push_back(chunk);
    rpc::Writer body;
    req.Encode(body);
    auto frame = rpc::Frame(rpc::Opcode::kProduce, body);

    uint64_t& attempts = p.attempts[sl];
    bool acked = false;
    uint32_t duplicates = 0;
    for (int t = 0; t < kMaxAttemptsPerEvent && !acked; ++t) {
      if (attempts > 0) {
        ++result_.retried_sends;
        ++retried_by_key_[{sl, pid}];
      }
      ++attempts;
      RefreshInfo();
      NodeId leader = info_.streamlet_brokers[sl];
      auto raw = net_.Call(leader, frame);
      if (!raw.ok()) continue;
      rpc::Reader r(*raw);
      auto resp = rpc::ProduceResponse::Decode(r);
      if (!resp.ok()) return Fail("produce response did not decode");
      if (resp->status == StatusCode::kOk) {
        acked = true;
        duplicates = resp->duplicates;
      }
      // kNotLeader/kUnavailable/...: retry after re-resolving the leader.
    }
    if (acked) {
      p.acked_seq[sl] = seq;
      attempts = 0;
      acked_[{sl, pid}].insert(seq);
      ++result_.acked_chunks;
      Annotate("produce p=%u sl=%u seq=%" PRIu64 " acked dup=%u", unsigned(pid),
               unsigned(sl), seq, duplicates);
    } else {
      ++result_.abandoned_sends;
      Annotate("produce p=%u sl=%u seq=%" PRIu64 " unacked attempts=%" PRIu64,
               unsigned(pid), unsigned(sl), seq, attempts);
    }
    return true;
  }

  bool ConsumeOnce(Consumer& c, StreamletId sl, bool* progress) {
    RefreshInfo();
    NodeId leader = info_.streamlet_brokers[sl];
    Cursor& cur = c.cur[sl];

    rpc::ConsumeRequest req;
    req.stream = info_.stream;
    req.max_bytes = 1u << 20;
    rpc::ConsumeEntryRequest er;
    er.streamlet = sl;
    er.group = cur.group;
    er.start_chunk = cur.next_chunk;
    er.max_chunks = 16;
    req.entries.push_back(er);
    rpc::Writer body;
    req.Encode(body);
    auto raw = net_.Call(leader, rpc::Frame(rpc::Opcode::kConsume, body));
    if (!raw.ok()) return true;  // injected fault; no progress this round
    rpc::Reader r(*raw);
    auto resp = rpc::ConsumeResponse::Decode(r);
    if (!resp.ok()) return Fail("consume response did not decode");
    if (resp->status != StatusCode::kOk) return true;

    for (const auto& entry : resp->entries) {
      if (!entry.group_exists) continue;
      uint64_t idx = cur.next_chunk;
      for (const auto& bytes : entry.chunks) {
        ++result_.checks;
        auto cv = ChunkView::Parse(bytes);
        if (!cv.ok()) {
          return Fail("invariant 5: consumed chunk does not parse "
                      "(sl %u group %u idx %" PRIu64 ")",
                      unsigned(sl), unsigned(cur.group), idx);
        }
        ++result_.checks;
        if (!cv->VerifyChecksum()) {
          return Fail("invariant 5: consumed chunk checksum mismatch "
                      "(sl %u group %u idx %" PRIu64 ")",
                      unsigned(sl), unsigned(cur.group), idx);
        }
        ++result_.checks;
        if (cv->stream_id() != info_.stream || cv->streamlet_id() != sl ||
            cv->group_id() != cur.group || cv->group_chunk_index() != idx) {
          return Fail("invariant 3: chunk out of place (sl %u group %u "
                      "idx %" PRIu64 ": header says sl %u group %u "
                      "idx %" PRIu64 ")",
                      unsigned(sl), unsigned(cur.group), idx,
                      unsigned(cv->streamlet_id()), unsigned(cv->group_id()),
                      cv->group_chunk_index());
        }
        if ((cv->flags() & kChunkFlagOffsetCommit) != 0) {
          // Offset-commit system chunk: cursor metadata the consumers'
          // own durable commits appended to the stream. It advances the
          // cursor like any chunk but never reaches the application, so
          // it stays out of the delivery oracle (re-reading one after a
          // restart is not a user-visible redelivery).
          ++idx;
          *progress = true;
          continue;
        }
        auto key = std::make_tuple(sl, cv->producer_id(), cv->chunk_seq());
        if (c.consumed.count(key) != 0) {
          ++c.redelivered;
          ++result_.redelivered_chunks;
          ++c.read_since_commit;
          ++result_.checks;
          if (c.redelivered > c.allowance) {
            return Fail("invariant 4: unexplained redelivery of (sl %u, "
                        "producer %u, seq %" PRIu64 "): %" PRIu64
                        " redelivered > %" PRIu64 " allowed",
                        unsigned(sl), unsigned(cv->producer_id()),
                        cv->chunk_seq(), c.redelivered, c.allowance);
          }
        } else {
          ChunkSeq& last = c.last_seq[{sl, cv->producer_id()}];
          ++result_.checks;
          if (cv->chunk_seq() <= last) {
            return Fail("invariant 3: per-producer order regressed (sl %u, "
                        "producer %u): seq %" PRIu64 " after %" PRIu64,
                        unsigned(sl), unsigned(cv->producer_id()),
                        cv->chunk_seq(), last);
          }
          last = cv->chunk_seq();
          c.consumed.insert(key);
          ++c.read_since_commit;
          ++result_.consumed_chunks;
        }
        ++idx;
        *progress = true;
      }
      cur.next_chunk = entry.next_chunk;
      if (entry.group_closed && entry.chunks.empty()) {
        // Drained a closed group: advance to the next one. If it does not
        // exist yet, the next poll reports group_exists=false and the
        // cursor simply waits there.
        ++cur.group;
        cur.next_chunk = 0;
        *progress = true;
      }
    }
    return true;
  }

  bool ExecConsume(uint32_t cidx, uint32_t rounds) {
    Consumer& c = consumers_[cidx];
    uint64_t before = result_.consumed_chunks + result_.redelivered_chunks;
    for (uint32_t round = 0; round < rounds; ++round) {
      bool progress = false;
      for (StreamletId sl = 0; sl < StreamletId(sched_.streamlets); ++sl) {
        if (!ConsumeOnce(c, sl, &progress)) return false;
      }
      if (!progress) break;
    }
    if (options_.exactly_once) {
      // Exactly-once: every consume event ends by durably committing the
      // consumer's cursors, so the delivered frontier and the committed
      // frontier never diverge across a restart.
      if (!CommitDurably(cidx)) return false;
      c.committed = c.cur;
      c.read_since_commit = 0;
    } else if (++c.consume_events % kCommitEveryConsumeEvents == 0) {
      c.committed = c.cur;
      c.read_since_commit = 0;
    }
    Annotate("consume c=%u got=%" PRIu64, cidx,
             result_.consumed_chunks + result_.redelivered_chunks - before);
    return true;
  }

  /// Durably persists consumer `cidx`'s cursors at the leaders (one
  /// CommitOffsets RPC per leader, deduplicated under (system pid,
  /// commit_seq)). A real exactly-once consumer BLOCKS until its commit
  /// lands, so after kMaxAttemptsPerEvent failed rounds the harness
  /// fast-forwards the healing (Quiesce) and keeps trying; a commit that
  /// still cannot land then is an infrastructure failure, not a skipped
  /// event — skipping would silently reintroduce a redelivery window.
  bool CommitDurably(uint32_t cidx) {
    Consumer& c = consumers_[cidx];
    if (c.cur.empty()) return true;
    const ProducerId syspid = ProducerId(0x80000000u | cidx);
    ++c.commit_seq;
    std::map<StreamletId, Cursor> pending(c.cur.begin(), c.cur.end());
    std::set<StreamletId> sent_once;
    for (int t = 0; t < 2 * kMaxAttemptsPerEvent && !pending.empty(); ++t) {
      if (t == kMaxAttemptsPerEvent) Quiesce();
      RefreshInfo();
      std::map<NodeId, rpc::CommitOffsetsRequest> per_broker;
      for (const auto& [sl, cur] : pending) {
        auto& req = per_broker[info_.streamlet_brokers[sl]];
        req.stream = info_.stream;
        req.consumer = cidx;
        req.commit_seq = c.commit_seq;
        req.epoch = c.epoch;
        rpc::CommitOffsetsRequest::Entry e;
        e.streamlet = sl;
        e.group = cur.group;
        e.next_chunk = cur.next_chunk;
        req.entries.push_back(e);
      }
      for (auto& [broker, req] : per_broker) {
        for (const auto& e : req.entries) {
          // A resent commit chunk may legitimately dedup at the broker
          // (the earlier attempt landed but its response was lost), so
          // resends feed the duplication budget like producer retries.
          if (!sent_once.insert(e.streamlet).second) {
            ++result_.retried_sends;
            ++retried_by_key_[{e.streamlet, syspid}];
          }
        }
        rpc::Writer body;
        req.Encode(body);
        auto raw =
            net_.Call(broker, rpc::Frame(rpc::Opcode::kCommitOffsets, body));
        if (!raw.ok()) continue;
        rpc::Reader r(*raw);
        auto resp = rpc::CommitOffsetsResponse::Decode(r);
        if (!resp.ok()) return Fail("commit response did not decode");
        if (resp->status != StatusCode::kOk) continue;
        for (const auto& e : req.entries) pending.erase(e.streamlet);
      }
    }
    if (!pending.empty()) {
      return Fail("commit c=%u seq=%" PRIu64 " did not land after healing",
                  cidx, c.commit_seq);
    }
    Annotate("commit c=%u seq=%" PRIu64 " streamlets=%zu", cidx,
             c.commit_seq, c.cur.size());
    return true;
  }

  bool ExecConsumerRestart(uint32_t cidx) {
    Consumer& c = consumers_[cidx];
    if (options_.exactly_once) {
      // The restarted consumer has no local state: it resumes from the
      // offsets fetched back from the brokers. Every cursor was durably
      // committed at the end of its consume event, so the fetched
      // position must equal the delivered frontier — the tightened
      // invariant 4 (allowance stays 0) fails on ANY user-record
      // redelivery, proving commit persistence end to end through
      // replication, recovery and tiering.
      std::map<StreamletId, Cursor> fetched;
      std::set<StreamletId> pending;
      for (StreamletId sl = 0; sl < StreamletId(sched_.streamlets); ++sl) {
        pending.insert(sl);
      }
      for (int t = 0; t < 2 * kMaxAttemptsPerEvent && !pending.empty();
           ++t) {
        if (t == kMaxAttemptsPerEvent) Quiesce();
        RefreshInfo();
        std::map<NodeId, rpc::FetchOffsetsRequest> per_broker;
        for (StreamletId sl : pending) {
          auto& req = per_broker[info_.streamlet_brokers[sl]];
          req.stream = info_.stream;
          req.consumer = cidx;
          req.streamlets.push_back(sl);
        }
        for (auto& [broker, req] : per_broker) {
          rpc::Writer body;
          req.Encode(body);
          auto raw = net_.Call(broker,
                               rpc::Frame(rpc::Opcode::kFetchOffsets, body));
          if (!raw.ok()) continue;
          rpc::Reader r(*raw);
          auto resp = rpc::FetchOffsetsResponse::Decode(r);
          if (!resp.ok()) return Fail("fetch-offsets did not decode");
          if (resp->status != StatusCode::kOk) continue;
          for (const auto& e : resp->entries) {
            if (e.found) fetched[e.streamlet] = Cursor{e.group, e.next_chunk};
            pending.erase(e.streamlet);
          }
        }
      }
      if (!pending.empty()) {
        return Fail("consumer-restart c=%u: offsets did not fetch after "
                    "healing", cidx);
      }
      c.cur.clear();
      for (StreamletId sl = 0; sl < StreamletId(sched_.streamlets); ++sl) {
        auto it = fetched.find(sl);
        c.cur[sl] = it == fetched.end() ? Cursor{} : it->second;
      }
      c.committed = c.cur;
      c.read_since_commit = 0;
      Annotate("consumer-restart c=%u resumed from committed offsets "
               "(allowance stays %" PRIu64 ")", cidx, c.allowance);
      return true;
    }
    c.cur = c.committed;
    c.allowance += c.read_since_commit;
    Annotate("consumer-restart c=%u redelivery_allowance=%" PRIu64, cidx,
             c.allowance);
    c.read_since_commit = 0;
    return true;
  }

  bool ExecNetFault(const FaultEvent& ev) {
    NodeId service = NodeId(ev.a);
    bool valid = false;
    for (uint32_t n = 1; n <= sched_.nodes; ++n) {
      if (service == NodeId(n) || service == BackupServiceId(NodeId(n))) {
        valid = true;
        break;
      }
    }
    if (!valid) {
      ++result_.events_skipped;
      Annotate("net-fault skipped: unknown service %u", unsigned(service));
      return true;
    }
    auto type = NetFaultType(ev.b);
    if (type == NetFaultType::kPartition) {
      net_.SetPartitioned(service, true);
      Annotate("net-fault service=%u partition", unsigned(service));
      return true;
    }
    ChaosNetwork::EdgePolicy& p = edge_policies_[service];
    switch (type) {
      case NetFaultType::kDropRequest:
        p.drop_request = double(ev.arg) / 1000.0;
        break;
      case NetFaultType::kDropResponse:
        p.drop_response = double(ev.arg) / 1000.0;
        break;
      case NetFaultType::kDuplicate:
        p.duplicate_request = double(ev.arg) / 1000.0;
        break;
      case NetFaultType::kDelay:
        p.max_delay_us = ev.arg;
        break;
      case NetFaultType::kPartition:
        break;  // handled above
    }
    net_.SetEdgePolicy(service, p);
    Annotate("net-fault service=%u type=%u arg=%" PRIu64, unsigned(service),
             ev.b, ev.arg);
    return true;
  }

  bool ExecHeal() {
    bool drained = Quiesce();
    Annotate("heal drained=%d vclock=%" PRIu64, int(drained),
             net_.virtual_now_us());
    return CheckDuplicateBound();
  }

  bool ExecBrokerCrash(NodeId node) {
    // A survivor holding stale storage for a streamlet the victim leads
    // (it led that streamlet before a migration) could be handed the
    // leadership back by recovery's round-robin — recovery replay would
    // then double-store the replayed chunks next to the stale copies.
    // That is legitimate pending-trim behavior, but it would blind the
    // strict uniqueness and ordering oracles, so such crashes are skipped
    // deterministically.
    RefreshInfo();
    for (StreamletId sl = 0; sl < StreamletId(info_.streamlet_brokers.size());
         ++sl) {
      if (info_.streamlet_brokers[sl] != node) continue;
      auto it = stale_.find(sl);
      if (it == stale_.end()) continue;
      for (NodeId holder : it->second) {
        if (holder != node) {
          ++result_.events_skipped;
          Annotate("broker-crash node=%u skipped: node %u holds stale "
                   "storage for led streamlet %u",
                   unsigned(node), unsigned(holder), unsigned(sl));
          return true;
        }
      }
    }
    // A crash also wipes the victim's BACKUP service, silently removing
    // one replica of every other leader's durable prefix (the victim may
    // sit in any of their vseg backup sets, and evacuation re-replicates
    // only unreplicated suffixes). That is legitimate — the primaries
    // still hold their copies — but crash recovery rebuilds a victim's
    // streamlets from backup copies alone, so a victim whose streamlet
    // has already lost as many replicas as replication can spare must
    // not crash: the replay could come up short without any bug. Tracked
    // conservatively per streamlet in wipe_count_.
    for (StreamletId sl = 0; sl < StreamletId(info_.streamlet_brokers.size());
         ++sl) {
      if (info_.streamlet_brokers[sl] != node) continue;
      if (wipe_count_[sl] + 2 > sched_.replication_factor) {
        ++result_.events_skipped;
        Annotate("broker-crash node=%u skipped: streamlet %u backup "
                 "copies degraded by %u prior wipes",
                 unsigned(node), unsigned(sl), unsigned(wipe_count_[sl]));
        return true;
      }
    }
    // Crashes happen from a fully drained state: every appended chunk is
    // then durable, so recovery recreates every group and the group-id
    // numbering consumers hold cursors into survives the crash.
    if (!Quiesce()) {
      ++result_.events_skipped;
      Annotate("broker-crash node=%u skipped: replication did not drain",
               unsigned(node));
      return true;
    }
    net_.DiscardHeld();  // a held frame cannot survive the crash epoch

    cluster_->CrashNode(node);
    auto replayed = cluster_->coordinator().RecoverNode(node);
    if (!replayed.ok()) {
      return Fail("RecoverNode(%u) failed: %s", unsigned(node),
                  replayed.status().ToString().c_str());
    }
    result_.recovery_replayed += *replayed;
    Status s = cluster_->RestartNode(node);
    if (!s.ok()) {
      return Fail("RestartNode(%u) failed: %s", unsigned(node),
                  s.message().c_str());
    }
    for (auto& [sl, holders] : stale_) holders.erase(node);  // wiped
    // Replica accounting: the victim's streamlets were just re-produced
    // at their new leaders through the (synchronous) produce path, so
    // their whole prefix is freshly replicated to live backups; every
    // other streamlet conservatively lost one backup copy to the wipe.
    for (StreamletId sl = 0; sl < StreamletId(info_.streamlet_brokers.size());
         ++sl) {
      if (info_.streamlet_brokers[sl] == node) {
        wipe_count_[sl] = 0;
      } else {
        ++wipe_count_[sl];
      }
    }
    RefreshInfo();
    Annotate("broker-crash node=%u replayed=%" PRIu64, unsigned(node),
             *replayed);
    return true;
  }

  bool ExecMigrate(StreamletId sl, NodeId target) {
    RefreshInfo();
    NodeId old_leader = info_.streamlet_brokers[sl];
    if (old_leader == target) {
      ++result_.events_skipped;
      Annotate("migrate sl=%u skipped: node %u already leads", unsigned(sl),
               unsigned(target));
      return true;
    }
    if (stale_[sl].count(target) != 0) {
      // Re-leading a previous tenure would replay next to the stale
      // storage that tenure left behind (see ExecBrokerCrash).
      ++result_.events_skipped;
      Annotate("migrate sl=%u skipped: target %u holds stale storage",
               unsigned(sl), unsigned(target));
      return true;
    }
    if (wipe_count_[sl] + 2 > sched_.replication_factor) {
      // Migration rebuilds the new leader from backup copies alone; a
      // streamlet whose replicas were degraded by prior crash wipes could
      // legitimately replay short (the intact copy is the old primary's,
      // which migration does not consult). See ExecBrokerCrash.
      ++result_.events_skipped;
      Annotate("migrate sl=%u skipped: backup copies degraded by %u "
               "prior wipes",
               unsigned(sl), unsigned(wipe_count_[sl]));
      return true;
    }
    if (!Quiesce()) {
      ++result_.events_skipped;
      Annotate("migrate sl=%u skipped: replication did not drain",
               unsigned(sl));
      return true;
    }
    auto replayed =
        cluster_->coordinator().MigrateStreamlet(kStreamName, sl, target);
    if (!replayed.ok()) {
      return Fail("MigrateStreamlet(sl=%u -> %u) failed: %s", unsigned(sl),
                  unsigned(target), replayed.status().ToString().c_str());
    }
    result_.recovery_replayed += *replayed;
    stale_[sl].insert(old_leader);
    // The replay re-produced the whole streamlet at the target through
    // the synchronous produce path: its prefix is freshly replicated.
    wipe_count_[sl] = 0;
    RefreshInfo();
    Annotate("migrate sl=%u %u->%u replayed=%" PRIu64, unsigned(sl),
             unsigned(old_leader), unsigned(target), *replayed);
    return true;
  }

  bool ExecBackupCrash(NodeId node) {
    net_.DiscardHeld();  // held frames do not survive the backup epoch
    cluster_->CrashBackup(node);
    cluster_->coordinator().NoteBackupDown(node);
    Annotate("backup-crash node=%u", unsigned(node));
    return true;
  }

  bool ExecBackupRestart(NodeId node) {
    net_.DiscardHeld();
    cluster_->RestartBackup(node);
    cluster_->coordinator().NoteBackupUp(node, &cluster_->backup(node));
    bool drained = DrainAll();
    Annotate("backup-restart node=%u drained=%d", unsigned(node),
             int(drained));
    return true;
  }

  bool ExecPowerLoss(NodeId node, uint64_t arg) {
    // The cut offset must be a pure function of the schedule, so the disk
    // state it lands in has to be deterministic first: drain in-flight
    // replication (skip the event if faults keep it undrainable, like
    // broker crashes do) and force the backup's queued records down. The
    // byte LAYOUT of the log is deterministic — record placement depends
    // only on record sizes in ticket order, not on how the flusher grouped
    // them — even though fsync/group counts are not.
    if (!Quiesce()) {
      ++result_.events_skipped;
      Annotate("power-loss node=%u skipped: replication did not drain",
               unsigned(node));
      return true;
    }
    net_.DiscardHeld();  // held frames do not survive the backup epoch
    cluster_->backup(node).WaitForFlushes();
    std::string dir = cluster_->BackupDirFor(node);
    uint64_t total = SegmentLog::TotalLogBytes(dir);
    uint64_t cut = total == 0 ? 0 : arg % (total + 1);

    // Power cut: memory gone, flusher dead, and the log torn at `cut` —
    // mid-record, mid-group, wherever the selector landed.
    cluster_->DestroyBackup(node);
    cluster_->coordinator().NoteBackupDown(node);
    Status ts = SegmentLog::TruncateLogsAt(dir, cut);
    if (!ts.ok()) {
      return Fail("power-loss truncate at %" PRIu64 " failed: %s", cut,
                  ts.message().c_str());
    }
    // Restart scans the torn log and rebuilds the copy map from whatever
    // prefix survived.
    cluster_->RestartBackup(node);
    cluster_->coordinator().NoteBackupUp(node, &cluster_->backup(node));
    ++result_.power_loss_events;
    size_t recovered = cluster_->backup(node).SegmentCount();
    result_.power_loss_recovered += recovered;
    std::string v =
        InvariantChecker::CheckBackupDurableCopies(*cluster_, node,
                                                   &result_.checks);
    if (!v.empty()) {
      return Fail("invariant 6 (power-loss durability): %s", v.c_str());
    }
    bool drained = DrainAll();
    Annotate("power-loss node=%u cut=%" PRIu64 "/%" PRIu64
             " recovered=%zu drained=%d",
             unsigned(node), cut, total, recovered, int(drained));
    return true;
  }

  // ----- final phase ------------------------------------------------------

  void FinalPhase() {
    Quiesce();
    // Consume to exhaustion: every consumer keeps polling every streamlet
    // until a full pass makes no progress. Progress per pass is bounded by
    // the durable chunk and group counts, so this terminates.
    for (uint32_t cidx = 0; cidx < sched_.consumers; ++cidx) {
      Consumer& c = consumers_[cidx];
      for (int pass = 0; pass < 100000; ++pass) {
        bool progress = false;
        for (StreamletId sl = 0; sl < StreamletId(sched_.streamlets); ++sl) {
          if (!ConsumeOnce(c, sl, &progress)) return;
        }
        if (!progress) break;
      }
    }
    // Completeness (at-least-once end to end): every acked chunk reached
    // every consumer.
    for (uint32_t cidx = 0; cidx < sched_.consumers; ++cidx) {
      const Consumer& c = consumers_[cidx];
      for (const auto& [key, seqs] : acked_) {
        for (ChunkSeq seq : seqs) {
          ++result_.checks;
          if (c.consumed.count({key.first, key.second, seq}) == 0) {
            Fail("invariant 2/4: consumer %u never received acked "
                 "(sl %u, producer %u, seq %" PRIu64 ")",
                 cidx, unsigned(key.first), unsigned(key.second), seq);
            return;
          }
        }
      }
    }
    if (!CheckStructural()) return;
    if (!CheckDuplicateBound()) return;
    Annotate("final: acked=%" PRIu64 " consumed=%" PRIu64
             " redelivered=%" PRIu64 " retried=%" PRIu64 " replayed=%" PRIu64
             " checks=%" PRIu64 " vclock=%" PRIu64,
             result_.acked_chunks, result_.consumed_chunks,
             result_.redelivered_chunks, result_.retried_sends,
             result_.recovery_replayed, result_.checks,
             net_.virtual_now_us());
  }

  const Schedule& sched_;
  const RunOptions options_;
  rpc::DirectNetwork direct_;
  ChaosNetwork net_;
  std::unique_ptr<MiniCluster> cluster_;
  rpc::StreamInfo info_;

  std::vector<Producer> producers_;
  std::vector<Consumer> consumers_;
  AckedMap acked_;
  /// Resends per dedup key ((streamlet, producer) — system producer ids
  /// included): the per-key side of the invariant-4 duplication budget.
  std::map<std::pair<StreamletId, ProducerId>, uint64_t> retried_by_key_;
  /// Per streamlet: nodes holding stale storage from an earlier
  /// leadership tenure (set by migration; cleared when the node crashes,
  /// which wipes its memory).
  std::map<StreamletId, std::set<NodeId>> stale_;
  /// Conservative count, per streamlet, of backup-service wipes (crash
  /// victims) since the streamlet's prefix was last fully re-replicated;
  /// crash/migration replay needs at least one intact backup copy, so
  /// events are skipped once this reaches replication_factor - 1.
  std::map<StreamletId, uint32_t> wipe_count_;
  /// Harness-side mirror of the installed edge policies, so net-fault
  /// events compose on an edge instead of replacing each other.
  std::map<NodeId, ChaosNetwork::EdgePolicy> edge_policies_;

  /// Scratch directory holding the per-node backup segment logs of a
  /// power-loss run; removed by the destructor. Empty in modes A/B.
  std::string pl_dir_;
  /// Scratch tree for the brokers' spill logs when the run has a tiered
  /// memory budget; removed by the destructor. Empty otherwise.
  std::string spill_dir_;

  std::string trace_;
  size_t event_index_ = size_t(-1);
  RunResult result_;
};

}  // namespace

RunResult RunSchedule(const Schedule& schedule, RunOptions options) {
  Harness harness(schedule, options);
  return harness.Run();
}

RunResult RunSeed(uint64_t seed, uint32_t num_events, RunOptions options) {
  Schedule schedule = GenerateSchedule(seed, num_events);
  return RunSchedule(schedule, options);
}

}  // namespace kera::chaos
