// Host identification for benchmark and soak JSON output: online CPU
// count and the CPU model string. Multicore results are meaningless
// without knowing the machine, so every JSON-emitting tool stamps these
// (bench/bench_host_context.h feeds them into the google-benchmark
// context; tools/chaos_soak.cc and bench_multicore write them directly).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

namespace kera {

/// Number of CPUs available to this process (>= 1).
[[nodiscard]] inline unsigned HostNproc() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

/// CPU model string from /proc/cpuinfo ("model name" line), or "unknown"
/// when unreadable (non-Linux, restricted /proc).
[[nodiscard]] inline std::string HostCpuModel() {
  std::string model = "unknown";
  FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return model;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    const char* p = colon + 1;
    while (*p == ' ' || *p == '\t') ++p;
    model.assign(p);
    while (!model.empty() &&
           (model.back() == '\n' || model.back() == '\r')) {
      model.pop_back();
    }
    break;
  }
  std::fclose(f);
  return model;
}

}  // namespace kera
