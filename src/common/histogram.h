// Log-bucketed histogram for latency and size distributions. Lock-free
// single-writer; merge across writers for reporting.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace kera {

/// Histogram over non-negative integer samples (e.g., microseconds, bytes).
/// Buckets are exponential with 4 sub-buckets per power of two, covering
/// [0, 2^40). Recording is O(1) with no allocation.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kMaxPow = 40;
  static constexpr int kNumBuckets = kMaxPow * kSubBuckets + 1;

  void Record(uint64_t value) {
    ++counts_[BucketFor(value)];
    sum_ += value;
    if (value > max_) max_ = value;
    if (count_ == 0 || value < min_) min_ = value;
    ++count_;
  }

  void Merge(const Histogram& other);

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t sum() const { return sum_; }
  [[nodiscard]] uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] uint64_t max() const { return max_; }
  [[nodiscard]] double Mean() const {
    return count_ == 0 ? 0.0 : double(sum_) / double(count_);
  }

  /// Returns the upper bound of the bucket containing the q-quantile
  /// (q in [0,1]). Approximate within bucket resolution (~25%).
  [[nodiscard]] uint64_t Quantile(double q) const;

  [[nodiscard]] std::string Summary() const;

  void Reset() { *this = Histogram{}; }

 private:
  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace kera
