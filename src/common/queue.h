// Queues used between client/broker threads.
//
// - SpscRing: lock-free single-producer single-consumer ring; this is the
//   shared-memory channel between a producer's source thread and its
//   requests thread (filled chunks one way, recycled chunks back).
// - BlockingQueue: mutex+condvar MPMC queue for RPC dispatch in the
//   threaded deployment; supports shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace kera {

/// Fixed-capacity lock-free SPSC ring. Capacity is rounded up to a power
/// of two. Push/Pop are wait-free.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;  // empty
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  [[nodiscard]] size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool EmptyApprox() const { return SizeApprox() == 0; }
  [[nodiscard]] size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

/// Unbounded MPMC blocking queue with shutdown. Pop returns nullopt only
/// after Shutdown() once the queue drains.
template <typename T>
class BlockingQueue {
 public:
  void Push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;  // dropped; receivers are going away
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  [[nodiscard]] std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace kera
