// Queues used between client/broker threads.
//
// - SpscRing: lock-free single-producer single-consumer ring; this is the
//   shared-memory channel between a producer's source thread and its
//   requests thread (filled chunks one way, recycled chunks back).
// - MpscQueue: lock-free multi-producer single-consumer linked queue
//   (Vyukov's non-intrusive design); the transport layer of the broker's
//   per-shard cross-core mailboxes.
// - BlockingQueue: mutex+condvar MPMC queue for RPC dispatch in the
//   threaded deployment; supports shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace kera {

/// Fixed-capacity lock-free SPSC ring. Capacity is rounded up to a power
/// of two. Push/Pop are wait-free.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;  // empty
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  [[nodiscard]] size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool EmptyApprox() const { return SizeApprox() == 0; }
  [[nodiscard]] size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

/// Unbounded lock-free multi-producer single-consumer queue (Vyukov's
/// non-intrusive MPSC). Push is wait-free apart from the allocation;
/// TryPop must be called from one consumer at a time (the shard mailbox
/// enforces this with its drain token). A Push is visible to the consumer
/// by the time a subsequent EmptyApprox() on the consumer thread returns
/// false; the brief "pushed but next-pointer not yet linked" window makes
/// TryPop return nullopt, and callers that need exactness (mailbox drain
/// with a waiting poster) retry off the poster's own completion flag.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  void Push(T value) {
    Node* node = new Node(std::move(value));
    // Swing head to the new node, then link the previous head to it. A
    // consumer that observes the unlinked gap simply sees "empty" until
    // the store below lands.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side only.
  [[nodiscard]] std::optional<T> TryPop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    T value = std::move(next->value);
    tail_ = next;
    delete tail;
    return value;
  }

  /// True when no push has been published. Cheap (one relaxed load of the
  /// consumer-owned tail plus one acquire load); the hot-path "is there
  /// mailbox work" probe.
  [[nodiscard]] bool EmptyApprox() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  alignas(64) std::atomic<Node*> head_;  // producers push here
  alignas(64) Node* tail_;               // consumer pops here
};

/// Unbounded MPMC blocking queue with shutdown. Pop returns nullopt only
/// after Shutdown() once the queue drains.
template <typename T>
class BlockingQueue {
 public:
  void Push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;  // dropped; receivers are going away
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  [[nodiscard]] std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace kera
