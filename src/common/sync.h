// Small synchronization helpers: spin lock for short critical sections and
// a cache-line padded wrapper to avoid false sharing of hot counters.
#pragma once

#include <atomic>
#include <cstddef>

namespace kera {

/// Test-and-test-and-set spin lock. Use only around short, non-blocking
/// critical sections (segment head bumps, vlog reference appends).
class SpinLock {
 public:
  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; on a real deployment this would PAUSE
      }
    }
  }
  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Pads T to its own cache line; used for per-core/per-client counters.
template <typename T>
struct alignas(64) Padded {
  T value{};
};

}  // namespace kera
