// Minimal leveled logging to stderr. Disabled below the compile-time or
// runtime threshold; hot paths must not log.
#pragma once

#include <cstdio>
#include <string>

namespace kera {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global runtime threshold (default Warn so tests/benches stay quiet).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace detail {
std::string FormatLog(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define KERA_LOG(level, ...)                                              \
  do {                                                                    \
    if (int(level) >= int(::kera::GetLogLevel())) {                       \
      ::kera::LogMessage(level, __FILE__, __LINE__,                       \
                         ::kera::detail::FormatLog(__VA_ARGS__));         \
    }                                                                     \
  } while (0)

#define KERA_DEBUG(...) KERA_LOG(::kera::LogLevel::kDebug, __VA_ARGS__)
#define KERA_INFO(...) KERA_LOG(::kera::LogLevel::kInfo, __VA_ARGS__)
#define KERA_WARN(...) KERA_LOG(::kera::LogLevel::kWarn, __VA_ARGS__)
#define KERA_ERROR(...) KERA_LOG(::kera::LogLevel::kError, __VA_ARGS__)

}  // namespace kera
