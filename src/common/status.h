// Status / Result: lightweight error propagation without exceptions on the
// data path (exceptions remain enabled for constructor failures).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace kera {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kNoSpace,         // append target full; caller should roll to a new segment
  kSegmentClosed,   // append to an immutable segment
  kCorruption,      // checksum mismatch or malformed wire data
  kDuplicate,       // exactly-once dedup hit (not an error for producers)
  kNotLeader,       // RPC sent to a node that does not own the partition
  kUnavailable,     // node down / transport closed
  kTimeout,
  kOutOfRange,      // consume offset beyond durable head
  kInternal,
  kFenced,          // producer epoch older than the broker's known epoch
};

[[nodiscard]] constexpr std::string_view StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kNoSpace: return "NoSpace";
    case StatusCode::kSegmentClosed: return "SegmentClosed";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kDuplicate: return "Duplicate";
    case StatusCode::kNotLeader: return "NotLeader";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kFenced: return "Fenced";
  }
  return "Unknown";
}

/// Value-semantic status. Ok statuses carry no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status Ok() { return Status{}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    std::string s{StatusCodeName(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

/// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result from Ok status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(rep_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

#define KERA_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::kera::Status kera_status_ = (expr);     \
    if (!kera_status_.ok()) return kera_status_; \
  } while (0)

}  // namespace kera
