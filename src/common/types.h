// Core identifier types shared across the KerA reproduction.
//
// All identifiers are plain integers on the wire; strong typedefs are not
// used because these ids cross serialization boundaries constantly and the
// call sites name them explicitly.
#pragma once

#include <cstdint>

namespace kera {

/// Globally unique stream identifier, assigned by the coordinator.
using StreamId = uint64_t;

/// Index of a streamlet (logical partition) within a stream: [0, M).
using StreamletId = uint32_t;

/// Monotonic group identifier within a streamlet. Groups are fixed-size
/// sub-partitions created dynamically as data arrives.
using GroupId = uint32_t;

/// Monotonic segment identifier within a group.
using SegmentId = uint32_t;

/// Producer client identifier; used both for exactly-once dedup and to pick
/// a streamlet's active group (producer_id mod Q).
using ProducerId = uint32_t;

/// Per-(producer, streamlet) chunk sequence number for exactly-once
/// semantics: a retransmitted chunk carries the same sequence and is
/// deduplicated by the broker.
using ChunkSeq = uint64_t;

/// Cluster node identifier (a node hosts one broker and one backup
/// service, mirroring the paper's deployment).
using NodeId = uint32_t;

/// Identifier of a virtual log within one broker.
using VlogId = uint32_t;

/// Identifier of a virtual segment within one virtual log (monotonic).
using VirtualSegmentId = uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Well-known service id of the coordinator on the RPC network.
inline constexpr NodeId kCoordinatorNode = 0;

/// Every cluster node hosts one broker and one backup service (paper
/// Fig. 1). Both are addressable on the network: the broker under the
/// node id itself, the backup under this fixed offset.
inline constexpr NodeId kBackupServiceOffset = 10000;
[[nodiscard]] constexpr NodeId BackupServiceId(NodeId node) {
  return node + kBackupServiceOffset;
}
[[nodiscard]] constexpr NodeId NodeOfBackupService(NodeId backup_service) {
  return backup_service - kBackupServiceOffset;
}

/// Sentinel stream id.
inline constexpr StreamId kInvalidStream = ~StreamId{0};

}  // namespace kera
