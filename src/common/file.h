// RAII POSIX file handle for the durable paths (backup segment log).
// Every IO failure surfaces as a Status — short writes are completed by
// retrying the remainder, EINTR is transparent, and fsync errors are
// reported instead of silently dropped (the caller's durability watermark
// must never advance past a failed sync).
#pragma once

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kera {

class PosixFile {
 public:
  PosixFile() = default;
  ~PosixFile() { Close(); }

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  PosixFile(PosixFile&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}
  PosixFile& operator=(PosixFile&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      path_ = std::move(other.path_);
    }
    return *this;
  }

  /// Opens `path` with the given open(2) flags (e.g. O_RDWR | O_CREAT).
  [[nodiscard]] static Result<PosixFile> Open(const std::string& path,
                                              int flags, mode_t mode = 0644) {
    int fd;
    do {
      fd = ::open(path.c_str(), flags, mode);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      StatusCode code =
          errno == ENOENT ? StatusCode::kNotFound : StatusCode::kInternal;
      return Status(code, "open " + path + ": " + std::strerror(errno));
    }
    PosixFile f;
    f.fd_ = fd;
    f.path_ = path;
    return f;
  }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Writes the whole span at `offset`, retrying short writes.
  [[nodiscard]] Status WriteAt(uint64_t offset,
                               std::span<const std::byte> data) const {
    while (!data.empty()) {
      ssize_t n = ::pwrite(fd_, data.data(), data.size(), off_t(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status(StatusCode::kInternal,
                      "pwrite " + path_ + ": " + std::strerror(errno));
      }
      data = data.subspan(size_t(n));
      offset += uint64_t(n);
    }
    return OkStatus();
  }

  /// Vectored write of all iovecs at `offset`; `iov` is consumed (advanced
  /// in place across partial writes).
  [[nodiscard]] Status WritevAt(uint64_t offset,
                                std::vector<struct iovec>& iov) const {
    size_t next = 0;
    while (next < iov.size()) {
      int cnt = int(std::min<size_t>(iov.size() - next, IOV_MAX));
      ssize_t n = ::pwritev(fd_, iov.data() + next, cnt, off_t(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status(StatusCode::kInternal,
                      "pwritev " + path_ + ": " + std::strerror(errno));
      }
      offset += uint64_t(n);
      size_t left = size_t(n);
      while (next < iov.size() && left >= iov[next].iov_len) {
        left -= iov[next].iov_len;
        ++next;
      }
      if (next < iov.size() && left > 0) {
        iov[next].iov_base = static_cast<char*>(iov[next].iov_base) + left;
        iov[next].iov_len -= left;
      }
    }
    return OkStatus();
  }

  /// Reads exactly `out.size()` bytes at `offset`; EOF short of that is an
  /// error (kOutOfRange) so a truncated file is never mistaken for data.
  [[nodiscard]] Status ReadAt(uint64_t offset, std::span<std::byte> out) const {
    while (!out.empty()) {
      ssize_t n = ::pread(fd_, out.data(), out.size(), off_t(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status(StatusCode::kInternal,
                      "pread " + path_ + ": " + std::strerror(errno));
      }
      if (n == 0) {
        return Status(StatusCode::kOutOfRange,
                      "short read past EOF in " + path_);
      }
      out = out.subspan(size_t(n));
      offset += uint64_t(n);
    }
    return OkStatus();
  }

  [[nodiscard]] Status Sync() const {
    int r;
    do {
      r = ::fsync(fd_);
    } while (r != 0 && errno == EINTR);
    if (r != 0) {
      return Status(StatusCode::kInternal,
                    "fsync " + path_ + ": " + std::strerror(errno));
    }
    return OkStatus();
  }

  [[nodiscard]] Status Truncate(uint64_t size) const {
    int r;
    do {
      r = ::ftruncate(fd_, off_t(size));
    } while (r != 0 && errno == EINTR);
    if (r != 0) {
      return Status(StatusCode::kInternal,
                    "ftruncate " + path_ + ": " + std::strerror(errno));
    }
    return OkStatus();
  }

  [[nodiscard]] Result<uint64_t> Size() const {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status(StatusCode::kInternal,
                    "fstat " + path_ + ": " + std::strerror(errno));
    }
    return uint64_t(st.st_size);
  }

  /// fsyncs a directory so freshly created/renamed/unlinked entries are
  /// durable (a new log file is not crash-safe until its dirent is).
  [[nodiscard]] static Status SyncDir(const std::string& dir) {
    auto d = Open(dir, O_RDONLY | O_DIRECTORY);
    if (!d.ok()) return d.status();
    return d->Sync();
  }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace kera
