#include "common/histogram.h"

#include <bit>
#include <cstdio>

namespace kera {

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return int(value);
  int pow = 63 - std::countl_zero(value);
  // Sub-bucket index within this power-of-two range.
  int sub = int((value >> (pow - 2)) & 3);
  int bucket = (pow - 1) * kSubBuckets + sub;
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  return bucket;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return uint64_t(bucket);
  int pow = bucket / kSubBuckets + 1;
  int sub = bucket % kSubBuckets;
  return (uint64_t(1) << pow) + (uint64_t(sub + 1) << (pow - 2)) - 1;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t target = uint64_t(q * double(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target) return BucketUpperBound(i);
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f min=%llu p50=%llu p99=%llu max=%llu",
                (unsigned long long)count_, Mean(), (unsigned long long)min(),
                (unsigned long long)Quantile(0.5),
                (unsigned long long)Quantile(0.99), (unsigned long long)max_);
  return buf;
}

}  // namespace kera
