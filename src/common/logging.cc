#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <mutex>

namespace kera {
namespace {
std::atomic<int> g_level{int(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return LogLevel(g_level.load(std::memory_order_relaxed)); }
void SetLogLevel(LogLevel level) { g_level.store(int(level), std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

namespace detail {
std::string FormatLog(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}
}  // namespace detail

}  // namespace kera
