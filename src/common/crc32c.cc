#include "common/crc32c.h"

#include <array>
#include <atomic>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#define KERA_CRC32C_X86 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define KERA_CRC32C_ARM 1
#endif

namespace kera {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// ---------------------------------------------------------------------------
// Portable slice-by-8.
// ---------------------------------------------------------------------------

// Tables generated at startup (cheap, deterministic).
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

// Raw update (caller handles the ~seed / ~result conditioning).
uint32_t SoftUpdate(uint32_t crc, const uint8_t* p, size_t n) {
  const auto& t = tables().t;
  while (n >= 8) {
    uint32_t lo = crc ^ (uint32_t(p[0]) | (uint32_t(p[1]) << 8) |
                         (uint32_t(p[2]) << 16) | (uint32_t(p[3]) << 24));
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return crc;
}

// ---------------------------------------------------------------------------
// GF(2) polynomial arithmetic in the reflected representation: bit (31 - k)
// of a word holds the coefficient of x^k, so x^0 is 1u << 31 and multiplying
// by x is a right shift folded through the polynomial. (Same representation
// zlib's crc32_combine uses.)
// ---------------------------------------------------------------------------

uint32_t MultModP(uint32_t a, uint32_t b) {
  uint32_t m = 1u << 31;
  uint32_t p = 0;
  for (;;) {
    if (a & m) {
      p ^= b;
      if ((a & (m - 1)) == 0) break;
    }
    m >>= 1;
    b = (b & 1) ? (b >> 1) ^ kPoly : b >> 1;
  }
  return p;
}

// x^(2^k) mod P by repeated squaring. 64 entries so any 64-bit exponent can
// be assembled directly (we do not assume x^(2^32) == x for this polynomial).
struct X2n {
  std::array<uint32_t, 64> t;
  X2n() {
    uint32_t p = 1u << 30;  // x^1
    t[0] = p;
    for (size_t k = 1; k < t.size(); ++k) {
      p = MultModP(p, p);
      t[k] = p;
    }
  }
};

const X2n& x2n() {
  static const X2n kX2n;
  return kX2n;
}

// x^e mod P.
uint32_t XPowModP(uint64_t e) {
  uint32_t p = 1u << 31;  // x^0
  size_t k = 0;
  while (e != 0) {
    if (e & 1) p = MultModP(x2n().t[k], p);
    e >>= 1;
    ++k;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Hardware paths.
// ---------------------------------------------------------------------------

#if defined(KERA_CRC32C_X86)

bool HwAvailable() {
  static const bool kOk =
      __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("pclmul");
  return kOk;
}

// The CRC32 instruction maps state s and 8 message bytes m to
// s*x^64 + m*x^32 (mod P) in the reflected representation. CLMUL of two
// reflected-32 operands yields their product times x (the reversal offsets
// differ by one bit). So crc32(0, clmul(c, K)) == c * K * x^33, and with
// K = x^(8n - 33) that is c * x^(8n): c shifted across n message bytes with
// two instructions. Valid for 8n >= 33, i.e. n >= 5.
constexpr size_t kMinHwShiftBytes = 5;

__attribute__((target("sse4.2,pclmul"))) uint64_t ClMul(uint32_t a,
                                                        uint64_t b) {
  __m128i r = _mm_clmulepi64_si128(_mm_cvtsi64_si128(int64_t(uint64_t(a))),
                                   _mm_cvtsi64_si128(int64_t(b)), 0);
  return uint64_t(_mm_cvtsi128_si64(r));
}

__attribute__((target("sse4.2,pclmul"))) uint32_t HwShiftOp(uint32_t crc,
                                                            uint32_t op) {
  return uint32_t(_mm_crc32_u64(0, ClMul(crc, op)));
}

// Bytes per lane of the 3-way stream (hides the 3-cycle crc32 latency).
constexpr size_t kLane = 1024;

// Shift operators x^(8*kLane - 33) and x^(16*kLane - 33) that fold lanes 0
// and 1 over the bytes still ahead of them. Computed at startup from the
// generic machinery instead of baked-in magic constants.
struct FoldK {
  uint32_t k1, k2;
  FoldK() : k1(XPowModP(8 * kLane - 33)), k2(XPowModP(16 * kLane - 33)) {}
};

const FoldK& foldk() {
  static const FoldK kFoldK;
  return kFoldK;
}

__attribute__((target("sse4.2,pclmul"))) uint32_t HwUpdate(uint32_t crc,
                                                           const uint8_t* p,
                                                           size_t n) {
  uint64_t c0 = crc;
  while (n >= 3 * kLane) {
    uint64_t c1 = 0, c2 = 0;
    for (size_t i = 0; i < kLane; i += 8) {
      uint64_t a, b, d;
      std::memcpy(&a, p + i, 8);
      std::memcpy(&b, p + i + kLane, 8);
      std::memcpy(&d, p + i + 2 * kLane, 8);
      c0 = _mm_crc32_u64(c0, a);
      c1 = _mm_crc32_u64(c1, b);
      c2 = _mm_crc32_u64(c2, d);
    }
    // crc32(0, .) is linear in the data argument, so one instruction folds
    // both lanes, then lane 2 joins with a plain xor.
    uint64_t folded = ClMul(uint32_t(c0), foldk().k2) ^
                      ClMul(uint32_t(c1), foldk().k1);
    c0 = _mm_crc32_u64(0, folded) ^ c2;
    p += 3 * kLane;
    n -= 3 * kLane;
  }
  while (n >= 8) {
    uint64_t a;
    std::memcpy(&a, p, 8);
    c0 = _mm_crc32_u64(c0, a);
    p += 8;
    n -= 8;
  }
  uint32_t r = uint32_t(c0);
  while (n--) {
    r = _mm_crc32_u8(r, *p++);
  }
  return r;
}

#elif defined(KERA_CRC32C_ARM)

bool HwAvailable() { return true; }

constexpr size_t kMinHwShiftBytes = SIZE_MAX;  // no CLMUL shift path

uint32_t HwShiftOp(uint32_t crc, uint32_t op) { return MultModP(op, crc); }

uint32_t HwUpdate(uint32_t crc, const uint8_t* p, size_t n) {
  while (n >= 8) {
    uint64_t a;
    std::memcpy(&a, p, 8);
    crc = __crc32cd(crc, a);
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = __crc32cb(crc, *p++);
  }
  return crc;
}

#else

bool HwAvailable() { return false; }

constexpr size_t kMinHwShiftBytes = SIZE_MAX;

uint32_t HwShiftOp(uint32_t crc, uint32_t op) { return MultModP(op, crc); }

uint32_t HwUpdate(uint32_t crc, const uint8_t* p, size_t n) {
  return SoftUpdate(crc, p, n);
}

#endif

// ---------------------------------------------------------------------------
// Combine: Crc32c(A || B) = shift(crc_a, 8*|B|) ^ crc_b. The ~seed/~result
// conditioning cancels, so the identity holds on final CRC values directly.
// Shift operators are cached per length — seal-time combines see a handful
// of distinct record sizes, so steady state is a table hit plus one
// CLMUL+CRC32 (or one 32-step GF(2) multiply on the portable path).
// ---------------------------------------------------------------------------

// Whether a length uses the CLMUL shift (needs x^(8n - 33), n >= 5) or the
// portable one (x^(8n)) is fixed per process, so each length caches exactly
// one operator. Entries pack (len << 32) | op; races just re-store the same
// value.
bool UseHwShift(size_t len_b) {
#if defined(KERA_CRC32C_X86)
  return HwAvailable() && len_b >= kMinHwShiftBytes;
#else
  (void)len_b;
  return false;
#endif
}

uint32_t ShiftOpFor(size_t len_b) {
  const uint64_t exponent =
      UseHwShift(len_b) ? 8 * uint64_t(len_b) - 33 : 8 * uint64_t(len_b);
  if (len_b >= (uint64_t(1) << 32)) return XPowModP(exponent);

  constexpr size_t kSlots = 128;
  static std::array<std::atomic<uint64_t>, kSlots> ops;  // zero-initialized
  std::atomic<uint64_t>& slot = ops[len_b % kSlots];
  uint64_t packed = slot.load(std::memory_order_relaxed);
  if ((packed >> 32) == len_b) return uint32_t(packed);
  uint32_t op = XPowModP(exponent);
  slot.store((uint64_t(len_b) << 32) | op, std::memory_order_relaxed);
  return op;
}

}  // namespace

uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed) {
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  if (HwAvailable()) return ~HwUpdate(~seed, p, data.size());
  return ~SoftUpdate(~seed, p, data.size());
}

uint32_t Crc32cSoftware(std::span<const std::byte> data, uint32_t seed) {
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  return ~SoftUpdate(~seed, p, data.size());
}

uint32_t Crc32cHardware(std::span<const std::byte> data, uint32_t seed) {
  if (!HwAvailable()) return Crc32cSoftware(data, seed);
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  return ~HwUpdate(~seed, p, data.size());
}

bool Crc32cHardwareAvailable() { return HwAvailable(); }

uint32_t Crc32cCombine(uint32_t crc_a, uint32_t crc_b, size_t len_b) {
  if (len_b == 0) return crc_a ^ crc_b;
  uint32_t op = ShiftOpFor(len_b);
  uint32_t shifted =
      UseHwShift(len_b) ? HwShiftOp(crc_a, op) : MultModP(op, crc_a);
  return shifted ^ crc_b;
}

}  // namespace kera
