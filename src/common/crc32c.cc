#include "common/crc32c.h"

#include <array>

namespace kera {
namespace {

// Slice-by-8 tables, generated at startup (cheap, deterministic).
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32c(std::span<const std::byte> data, uint32_t seed) {
  const auto& t = tables().t;
  uint32_t crc = ~seed;
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();

  while (n >= 8) {
    // Process 8 bytes per iteration via the slice tables.
    uint32_t lo = crc ^ (uint32_t(p[0]) | (uint32_t(p[1]) << 8) |
                         (uint32_t(p[2]) << 16) | (uint32_t(p[3]) << 24));
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace kera
