// Deterministic PRNG (splitmix64 / xoshiro256**) for reproducible workload
// generation and simulation. Never uses std::random_device: every
// experiment is seeded explicitly so results are replayable.
#pragma once

#include <cmath>
#include <cstdint>

namespace kera {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() { return double(Next() >> 11) * (1.0 / (1ull << 53)); }

  /// Exponential with the given mean (for inter-arrival times).
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log(1.0 - u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace kera
