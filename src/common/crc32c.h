// Software CRC32C (Castagnoli), slice-by-8. Used for record entry headers,
// chunk payloads, and virtual segment headers, matching the paper's
// checksum layering (RAMCloud-style).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace kera {

/// Computes CRC32C over `data`, seeded with `seed` (pass a previous result
/// to incrementally extend a checksum over discontiguous regions).
[[nodiscard]] uint32_t Crc32c(std::span<const std::byte> data,
                              uint32_t seed = 0);

[[nodiscard]] inline uint32_t Crc32c(const void* data, size_t n,
                                     uint32_t seed = 0) {
  return Crc32c(std::span(static_cast<const std::byte*>(data), n), seed);
}

}  // namespace kera
