// CRC32C (Castagnoli) with runtime dispatch: SSE4.2 `crc32` instructions
// with a PCLMUL-folded 3-way stream on x86-64, ACLE `__crc32cd` on ARMv8,
// and a portable slice-by-8 fallback. Used for record entry headers, chunk
// payloads, and virtual segment headers, matching the paper's checksum
// layering (RAMCloud-style).
//
// `Crc32cCombine` stitches two checksums together in O(1) (GF(2) shift by
// x^(8*len_b) mod P), so a chunk's payload checksum can be assembled at
// seal time from the per-record CRCs that were already computed when the
// records were written, without re-scanning the payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace kera {

/// Computes CRC32C over `data`, seeded with `seed` (pass a previous result
/// to incrementally extend a checksum over discontiguous regions).
[[nodiscard]] uint32_t Crc32c(std::span<const std::byte> data,
                              uint32_t seed = 0);

[[nodiscard]] inline uint32_t Crc32c(const void* data, size_t n,
                                     uint32_t seed = 0) {
  return Crc32c(std::span(static_cast<const std::byte*>(data), n), seed);
}

/// Given crc_a = Crc32c(A) and crc_b = Crc32c(B) (seed 0), returns
/// Crc32c(A || B) without touching any bytes. Cost is one cached shift
/// operator per distinct |B| plus one carry-less multiply (hardware) or a
/// 32-step GF(2) multiply (portable).
[[nodiscard]] uint32_t Crc32cCombine(uint32_t crc_a, uint32_t crc_b,
                                     size_t len_b);

/// Portable slice-by-8 path, unconditionally. Exposed so tests can check
/// hardware and software paths against the same golden vectors.
[[nodiscard]] uint32_t Crc32cSoftware(std::span<const std::byte> data,
                                      uint32_t seed = 0);

/// True when an accelerated path is compiled in and the CPU supports it.
[[nodiscard]] bool Crc32cHardwareAvailable();

/// Accelerated path. Falls back to the software path when
/// Crc32cHardwareAvailable() is false, so it is always safe to call.
[[nodiscard]] uint32_t Crc32cHardware(std::span<const std::byte> data,
                                      uint32_t seed = 0);

}  // namespace kera
