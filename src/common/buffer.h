// Owned, fixed-capacity byte buffer used for segments, chunks and RPC
// payloads. Cache-line aligned so segment appends never straddle an
// allocation header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>

namespace kera {

inline constexpr size_t kCacheLineSize = 64;

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t capacity)
      : data_(capacity == 0
                  ? nullptr
                  : static_cast<std::byte*>(::operator new(
                        capacity, std::align_val_t{kCacheLineSize}))),
        capacity_(capacity) {}

  Buffer(Buffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_), size_(other.size_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer() { Free(); }

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] size_t remaining() const { return capacity_ - size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// View of the written prefix.
  [[nodiscard]] std::span<const std::byte> view() const {
    return {data_, size_};
  }
  [[nodiscard]] std::span<std::byte> mutable_view() { return {data_, size_}; }

  /// Appends raw bytes; returns the offset of the appended region, or
  /// SIZE_MAX if there is not enough space (caller rolls to a new buffer).
  size_t Append(std::span<const std::byte> bytes) {
    if (bytes.size() > remaining()) return SIZE_MAX;
    size_t off = size_;
    std::memcpy(data_ + off, bytes.data(), bytes.size());
    size_ += bytes.size();
    return off;
  }

  /// Reserves `n` bytes without writing them; returns offset or SIZE_MAX.
  size_t Reserve(size_t n) {
    if (n > remaining()) return SIZE_MAX;
    size_t off = size_;
    size_ += n;
    return off;
  }

  void Clear() { size_ = 0; }

  /// Truncates the written size (used to roll back a failed in-place write).
  void Truncate(size_t new_size) {
    if (new_size < size_) size_ = new_size;
  }

 private:
  void Free() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kCacheLineSize});
    }
  }

  std::byte* data_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace kera
