// Per-figure experiment configurations (§V of the paper) shared by the
// bench binaries, the sim tests and EXPERIMENTS.md. Each FigN function
// returns the SimExperimentConfig that regenerates one data point of that
// figure; benches sweep the paper's parameter ranges.
//
// Two configuration families, as in the paper:
//  - latency-optimized (chunk 1 KB, small requests, consumers pull one
//    chunk per partition): Figs 8, 10, 12-16
//  - throughput-optimized (chunks 4-64 KB, one stream of 32 streamlets
//    with 4 active sub-partitions, one vlog per sub-partition):
//    Figs 11, 17-21
#pragma once

#include <string>

#include "sim/sim_cluster.h"

namespace kera::sim {

using System = SimExperimentConfig::System;

/// Baseline for the latency-optimized experiments: N streams of one
/// streamlet each, chunk 1 KB, 16-chunk requests (request.size = 16 KB).
[[nodiscard]] SimExperimentConfig LatencyBase(System system,
                                              uint32_t producers,
                                              uint32_t consumers,
                                              uint32_t streams,
                                              uint32_t replication);

/// Baseline for the throughput-optimized experiments: one stream with 32
/// streamlets, Q = 4 sub-partitions, one vlog per sub-partition,
/// 4-chunk requests, deep consumer pulls.
[[nodiscard]] SimExperimentConfig ThroughputBase(System system,
                                                 uint32_t clients,
                                                 size_t chunk_size,
                                                 uint32_t replication);

// ----- one function per figure -----

/// Fig 8: scale the number of streams; 4 producers, no consumers, chunk
/// 1 KB; KerA uses 4 shared vlogs per broker.
[[nodiscard]] SimExperimentConfig Fig8(System system, uint32_t streams,
                                       uint32_t replication);

/// Fig 9: scale the number of clients; 128 streams, chunk 16 KB, KerA
/// configured like Kafka (one replicated log per partition).
[[nodiscard]] SimExperimentConfig Fig9(System system, uint32_t producers,
                                       uint32_t replication);

/// Fig 10: low-latency configuration; R3, 4 producers + 4 consumers,
/// chunk 1 KB; KerA with `vlogs` per broker (4 or 32), Kafka ignores it.
[[nodiscard]] SimExperimentConfig Fig10(System system, uint32_t streams,
                                        uint32_t vlogs);

/// Fig 11: high-throughput configuration; R3; stream with 32 partitions
/// (Kafka) / 32 streamlets x 4 sub-partitions (KerA, one vlog per
/// sub-partition); vary producers and chunk size.
[[nodiscard]] SimExperimentConfig Fig11(System system, uint32_t producers,
                                        size_t chunk_size);

/// Fig 12: one shared vlog per broker replicating up to 512 streams;
/// 8 producers + 8 consumers, chunk 1 KB, R in {1,2,3}.
[[nodiscard]] SimExperimentConfig Fig12(uint32_t streams,
                                        uint32_t replication);

/// Fig 13: replication capacity 1/2/4 shared vlogs per broker; R3,
/// 8 + 8 clients, chunk 1 KB.
[[nodiscard]] SimExperimentConfig Fig13(uint32_t streams, uint32_t vlogs);

/// Figs 14-16: fixed stream count (128/256/512), varying the number of
/// vlogs per broker; R in {1,2,3}, 8 + 8 clients, chunk 1 KB.
[[nodiscard]] SimExperimentConfig Fig14to16(uint32_t streams, uint32_t vlogs,
                                            uint32_t replication);

/// Figs 17-20: one vlog per sub-partition; 4/8/16/32 producers (equal
/// consumers); chunk 4-64 KB; R in {1,2,3}.
[[nodiscard]] SimExperimentConfig Fig17to20(uint32_t clients,
                                            size_t chunk_size,
                                            uint32_t replication);

/// Fig 21: 8 + 8 clients, chunk 32/64 KB, vary the number of vlogs per
/// broker from 1 to 32 (shared pool over the 32 sub-partitions).
[[nodiscard]] SimExperimentConfig Fig21(uint32_t vlogs, size_t chunk_size);

/// Human-readable one-line summary of a result (used by the benches to
/// print the same series the paper plots).
[[nodiscard]] std::string FormatResult(const std::string& label,
                                       const SimExperimentResult& r);

}  // namespace kera::sim
