#include "sim/sim_cluster.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "broker/broker.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "coordinator/coordinator.h"
#include "kafka/partition_log.h"
#include "rpc/transport.h"
#include "sim/event_sim.h"
#include "storage/group.h"
#include "wire/chunk.h"
#include "wire/layout.h"

namespace kera::sim {
namespace {

constexpr SimTime kTrimInterval = 20 * kMillisecond;
constexpr size_t kAckBytes = 64;  // produce/replication ack frames
constexpr size_t kRequestHeaderBytes = 64;

/// One simulated cluster node: its dispatch thread (single core polling
/// the transports — the RAMCloud threading model KerA inherits), its
/// worker cores (shared by broker and backup services, as in the paper's
/// co-located deployment), and its NIC in both directions.
struct SimNode {
  SimNode(EventSimulator& sim, const CostModel& cost)
      : dispatch(sim, 1), cores(sim, cost.cores_per_node), nic(sim, 1) {}
  SimResource dispatch;
  SimResource cores;
  SimResource nic;  // one serializing channel shared by ingress and egress
};

[[nodiscard]] SimTime TransferTime(const CostModel& cost, size_t bytes) {
  return FromUs(double(bytes) * 8.0 / (cost.network_bandwidth_gbps * 1e3));
}

/// Common experiment scaffolding: node resources, the measure window,
/// client bookkeeping, the chunk frame template, RPC plumbing.
class SimBase {
 public:
  explicit SimBase(const SimExperimentConfig& cfg)
      : cfg_(cfg),
        rng_(cfg.seed),
        warmup_end_(SimTime(cfg.warmup_seconds * double(kSecond))),
        measure_end_(warmup_end_ +
                     SimTime(cfg.measure_seconds * double(kSecond))) {
    for (uint32_t b = 0; b < cfg_.brokers; ++b) {
      nodes_.push_back(std::make_unique<SimNode>(sim_, cfg_.cost));
    }
    // Chunk frame template: records_per_chunk identical records of
    // record_size bytes (the OpenMessaging-style synthetic workload).
    size_t record_wire = kRecordFixedHeader + cfg_.record_size;
    records_per_chunk_ = (cfg_.chunk_size - kChunkHeaderSize) / record_wire;
    assert(records_per_chunk_ > 0);
    ChunkBuilder builder(cfg_.chunk_size);
    builder.Start(0, 0, 0);
    std::vector<std::byte> value(cfg_.record_size, std::byte{0x42});
    for (uint64_t r = 0; r < records_per_chunk_; ++r) {
      bool ok = builder.AppendValue(value);
      assert(ok);
      (void)ok;
    }
    auto sealed = builder.Seal(1);
    template_frame_.assign(sealed.begin(), sealed.end());
  }

  /// Patches per-chunk identity fields into the template and returns a
  /// view (payload and payload checksum never change).
  std::span<const std::byte> PatchChunk(StreamId stream,
                                        StreamletId streamlet,
                                        ProducerId producer, ChunkSeq seq) {
    std::byte* p = template_frame_.data();
    wire::StoreU64(p + chunk_offsets::kStreamId, stream);
    wire::StoreU32(p + chunk_offsets::kStreamletId, streamlet);
    wire::StoreU32(p + chunk_offsets::kProducerId, producer);
    wire::StoreU64(p + chunk_offsets::kChunkSeq, seq);
    return template_frame_;
  }

  // ----- RPC plumbing: propagation -> NIC -> dispatch -> handler -----

  /// Delivers an inbound RPC of `bytes` to node `n`: propagation delay,
  /// NIC-in serialization, then the dispatch thread; `then` runs when the
  /// dispatch thread hands the request to a worker.
  void RpcIn(uint32_t n, size_t bytes, std::function<void()> then) {
    sim_.ScheduleAfter(
        cfg_.cost.NetworkDelay(0), [this, n, bytes, then = std::move(then)] {
          nodes_[n]->nic.Execute(
              TransferTime(cfg_.cost, bytes),
              [this, n, bytes, then = std::move(then)] {
                nodes_[n]->dispatch.Execute(cfg_.cost.DispatchTime(bytes),
                                            std::move(then));
              });
        });
  }

  /// Sends an outbound RPC of `bytes` from node `n`: dispatch thread, then
  /// NIC-out; `then` runs when the bytes are on the wire (chain RpcIn on
  /// the receiving side, or a propagation delay for clients).
  void RpcOut(uint32_t n, size_t bytes, std::function<void()> then) {
    nodes_[n]->dispatch.Execute(
        cfg_.cost.DispatchTime(bytes),
        [this, n, bytes, then = std::move(then)] {
          nodes_[n]->nic.Execute(TransferTime(cfg_.cost, bytes),
                                     std::move(then));
        });
  }

  // ----- measurement -----

  [[nodiscard]] bool InWindow(SimTime t) const {
    return t >= warmup_end_ && t < measure_end_;
  }

  void RecordProduceAck(SimTime sent, SimTime acked, uint64_t records) {
    if (InWindow(acked)) {
      acked_records_ += records;
      ++produce_requests_;
      latency_us_.Record((acked - sent) / kMicrosecond);
    }
  }

  void RecordConsumed(SimTime t, uint64_t records) {
    if (InWindow(t)) consumed_records_ += records;
  }

  void RecordEndToEnd(SimTime appended_at, SimTime consumed_at) {
    if (InWindow(consumed_at)) {
      e2e_latency_us_.Record((consumed_at - appended_at) / kMicrosecond);
    }
  }

  void RecordReplicationRpc(SimTime t, size_t bytes) {
    if (InWindow(t)) {
      ++replication_rpcs_;
      replication_bytes_ += bytes;
    }
  }

  SimExperimentResult Finish() {
    SimExperimentResult result;
    double secs = cfg_.measure_seconds;
    result.ingest_mrecords_per_s = double(acked_records_) / secs / 1e6;
    result.consume_mrecords_per_s = double(consumed_records_) / secs / 1e6;
    result.produce_requests = produce_requests_;
    result.replication_rpcs = replication_rpcs_;
    result.avg_replication_kb =
        replication_rpcs_ == 0
            ? 0
            : double(replication_bytes_) / double(replication_rpcs_) / 1024.0;
    double util = 0;
    double dutil = 0;
    for (const auto& node : nodes_) {
      util += node->cores.Utilization();
      dutil += node->dispatch.Utilization();
    }
    result.broker_core_utilization = util / double(nodes_.size());
    result.dispatch_utilization = dutil / double(nodes_.size());
    result.produce_latency_p50_us = double(latency_us_.Quantile(0.5));
    result.produce_latency_p99_us = double(latency_us_.Quantile(0.99));
    result.e2e_latency_p50_us = double(e2e_latency_us_.Quantile(0.5));
    result.e2e_latency_p99_us = double(e2e_latency_us_.Quantile(0.99));
    result.records_per_chunk = records_per_chunk_;
    return result;
  }

 protected:
  const SimExperimentConfig cfg_;
  EventSimulator sim_;
  Xoshiro256 rng_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::byte> template_frame_;
  uint64_t records_per_chunk_ = 0;
  const SimTime warmup_end_;
  const SimTime measure_end_;

  uint64_t acked_records_ = 0;
  uint64_t consumed_records_ = 0;
  uint64_t produce_requests_ = 0;
  uint64_t replication_rpcs_ = 0;
  uint64_t replication_bytes_ = 0;
  Histogram latency_us_;
  Histogram e2e_latency_us_;
};

// ===================================================================== KerA

class KeraSim : public SimBase {
 public:
  explicit KeraSim(const SimExperimentConfig& cfg)
      : SimBase(cfg), coordinator_(net_) {
    // Real brokers, placed by the real coordinator. The RPC network is
    // never used for data: the DES moves all bytes itself.
    std::vector<NodeId> backup_services;
    for (NodeId n = 1; n <= cfg_.brokers; ++n) {
      backup_services.push_back(BackupServiceId(n));
    }
    for (NodeId n = 1; n <= cfg_.brokers; ++n) {
      BrokerConfig bc;
      bc.node = n;
      bc.memory_bytes = size_t(3) << 30;
      bc.segment_size = cfg_.segment_size;
      bc.segments_per_group = cfg_.segments_per_group;
      bc.virtual_segment_capacity = cfg_.virtual_segment_capacity;
      bc.replication_max_batch_bytes = cfg_.replication_max_batch_bytes;
      bc.vlogs_per_broker = cfg_.vlogs_per_broker;
      bc.replication_window = cfg_.replication_window;
      bc.backup_nodes = backup_services;
      bc.verify_chunk_checksums = false;  // CPU cost is in the cost model
      brokers_.push_back(std::make_unique<Broker>(bc, net_));
      coordinator_.RegisterNode(n, brokers_.back().get(), nullptr);
    }

    rpc::StreamOptions opts;
    opts.num_streamlets = cfg_.streamlets_per_stream;
    opts.active_groups_per_streamlet = cfg_.q;
    opts.replication_factor = cfg_.replication_factor;
    opts.vlog_policy = cfg_.vlog_policy;
    for (uint32_t s = 0; s < cfg_.streams; ++s) {
      auto info =
          coordinator_.CreateStream("stream-" + std::to_string(s), opts);
      assert(info.ok());
      for (StreamletId sl = 0; sl < cfg_.streamlets_per_stream; ++sl) {
        Partition part;
        part.stream = info->stream;
        part.streamlet = sl;
        part.leader = info->streamlet_brokers[sl];
        part.index = uint32_t(partitions_.size());
        per_broker_[part.leader - 1].push_back(part.index);
        partitions_.push_back(part);
      }
    }

    producers_.resize(cfg_.producers);
    for (uint32_t p = 0; p < cfg_.producers; ++p) {
      producers_[p].seqs.assign(partitions_.size(), 0);
    }
    if (cfg_.consumers > 0) {
      consumers_.resize(cfg_.consumers);
      for (uint32_t i = 0; i < partitions_.size(); ++i) {
        uint32_t owner = i % cfg_.consumers;
        consumers_[owner].cursors[i] = Cursor{};
        partitions_[i].consumer = owner;
      }
    }
  }

  SimExperimentResult Run() {
    for (uint32_t p = 0; p < cfg_.producers; ++p) {
      for (uint32_t b = 0; b < cfg_.brokers; ++b) {
        if (per_broker_[b].empty()) continue;
        SimTime stagger = FromUs(double(rng_.NextBounded(20)));
        sim_.Schedule(stagger, [this, p, b] { StartProduceRound(p, b); });
      }
    }
    for (uint32_t c = 0; c < cfg_.consumers; ++c) {
      for (uint32_t b = 0; b < cfg_.brokers; ++b) {
        SimTime stagger = FromUs(double(rng_.NextBounded(20)));
        sim_.Schedule(stagger, [this, c, b] { StartConsumeRound(c, b); });
      }
    }
    sim_.ScheduleAfter(kTrimInterval, [this] { PeriodicTrim(); });
    sim_.RunUntil(measure_end_ + 10 * kMillisecond);
    return Finish();
  }

 private:
  struct Partition {
    StreamId stream = 0;
    StreamletId streamlet = 0;
    NodeId leader = 0;
    uint32_t index = 0;
    uint32_t consumer = 0;
    /// Broker-append times of not-yet-consumed chunks, in consume order
    /// (single-threaded DES appends chunks of a partition in order).
    std::deque<SimTime> append_times;
  };
  struct ProducerState {
    std::vector<ChunkSeq> seqs;  // per partition
    std::map<uint32_t, size_t> request_cursor;  // broker -> rotating start
    SimTime source_free_at = 0;
  };
  struct Cursor {
    GroupId group = 0;
    uint64_t next_chunk = 0;
  };
  struct ConsumerState {
    std::map<uint32_t, Cursor> cursors;  // partition index -> cursor
  };
  struct PendingProduce {
    uint32_t producer = 0;
    SimTime sent_at = 0;
    uint64_t records = 0;
    std::vector<ChunkRef> refs;
  };

  static bool ChunkDurable(const ChunkRef& ref) {
    return ref.group->durable_chunk_count() > ref.loc.group_chunk_index;
  }

  /// Picks the partitions for the next request to broker `b`: one chunk
  /// per partition, capped at request_max_chunks, rotating so all
  /// partitions are served fairly.
  std::vector<uint32_t> NextRequestPartitions(ProducerState& prod,
                                              uint32_t b) {
    const auto& parts = per_broker_[b];
    size_t k = parts.size();
    if (cfg_.request_max_chunks > 0 && cfg_.request_max_chunks < k) {
      k = cfg_.request_max_chunks;
    }
    size_t& cursor = prod.request_cursor[b];
    std::vector<uint32_t> picked;
    picked.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      picked.push_back(parts[(cursor + i) % parts.size()]);
    }
    cursor = (cursor + k) % parts.size();
    return picked;
  }

  void StartProduceRound(uint32_t p, uint32_t b) {
    ProducerState& prod = producers_[p];
    auto picked = NextRequestPartitions(prod, b);
    uint64_t records = records_per_chunk_ * picked.size();
    // The producer's source + requests threads prepare the chunks; both
    // are shared across the producer's per-broker request slots.
    SimTime prep = cfg_.cost.SourceGenerationTime(records) +
                   cfg_.cost.ClientChunkTime(picked.size()) +
                   FromUs(cfg_.cost.client_request_overhead_us);
    SimTime send_at = std::max(sim_.now(), prod.source_free_at) + prep;
    prod.source_free_at = send_at;
    size_t request_bytes =
        kRequestHeaderBytes + picked.size() * template_frame_.size();
    sim_.Schedule(send_at, [this, p, b, request_bytes,
                            picked = std::move(picked)] {
      SimTime sent_at = sim_.now();
      RpcIn(b, request_bytes, [this, p, b, sent_at, picked] {
        size_t bytes = picked.size() * template_frame_.size();
        nodes_[b]->cores.Execute(
            cfg_.cost.ProduceServiceTime(picked.size(), bytes),
            [this, p, b, sent_at, picked] {
              ExecuteProduce(p, b, sent_at, picked);
            });
      });
    });
  }

  void ExecuteProduce(uint32_t p, uint32_t b, SimTime sent_at,
                      const std::vector<uint32_t>& request_parts) {
    ProducerState& prod = producers_[p];
    auto pending = std::make_unique<PendingProduce>();
    pending->producer = p;
    pending->sent_at = sent_at;
    std::vector<VirtualLog*> touched;
    for (uint32_t part_idx : request_parts) {
      const Partition& part = partitions_[part_idx];
      ChunkSeq seq = ++prod.seqs[part_idx];
      auto frame =
          PatchChunk(part.stream, part.streamlet, ProducerId(p + 1), seq);
      rpc::ProduceRequest req;
      req.producer = ProducerId(p + 1);
      req.stream = part.stream;
      req.chunks = {frame};
      std::vector<std::pair<VirtualLog*, ChunkRef>> appended;
      auto resp = brokers_[b]->HandleProduceNoSync(req, &appended);
      assert(resp.status == StatusCode::kOk);
      (void)resp;
      if (cfg_.consumers > 0) {
        partitions_[part_idx].append_times.push_back(sim_.now());
      }
      for (auto& [vlog, ref] : appended) {
        pending->refs.push_back(ref);
        pending->records += records_per_chunk_;
        if (std::find(touched.begin(), touched.end(), vlog) ==
            touched.end()) {
          touched.push_back(vlog);
        }
      }
    }
    pending_[b].push_back(std::move(pending));
    for (VirtualLog* vlog : touched) PumpVlog(vlog, b);
    CheckProduceAcks(b);
  }

  /// Drives one vlog's replication pipeline: issues batches until the
  /// vlog's replication window is full (Poll returns nullopt); each
  /// completion pumps again, so the window stays filled. Completions can
  /// land out of order across a window; the vlog applies them to the
  /// durable prefix in issue order.
  void PumpVlog(VirtualLog* vlog, uint32_t b) {
    while (auto polled = vlog->Poll()) {
      ShipSimBatch(vlog, b,
                   std::make_shared<ReplicationBatch>(std::move(*polled)));
    }
  }

  void ShipSimBatch(VirtualLog* vlog, uint32_t b,
                    std::shared_ptr<ReplicationBatch> batch) {
    // Primary-side gather + RPC build on a worker core, then one RPC per
    // backup through the dispatch thread and NIC.
    nodes_[b]->cores.Execute(
        cfg_.cost.ReplicationSendTime(batch->bytes), [this, vlog, b, batch] {
          auto remaining = std::make_shared<size_t>(batch->backups.size());
          for (NodeId backup_service : batch->backups) {
            uint32_t target = NodeOfBackupService(backup_service) - 1;
            RpcOut(b, batch->bytes, [this, vlog, b, batch, target,
                                     remaining] {
              RpcIn(target, batch->bytes, [this, vlog, b, batch, target,
                                           remaining] {
                nodes_[target]->cores.Execute(
                    cfg_.cost.BackupServiceTime(batch->refs.size(), batch->bytes),
                    [this, vlog, b, batch, target, remaining] {
                      RecordReplicationRpc(sim_.now(), batch->bytes);
                      // Ack: backup dispatch out, propagation, primary
                      // dispatch in.
                      RpcOut(target, kAckBytes, [this, vlog, b, batch,
                                                 remaining] {
                        RpcIn(b, kAckBytes, [this, vlog, b, batch,
                                             remaining] {
                          if (--*remaining == 0) {
                            vlog->Complete(*batch);
                            CheckProduceAcks(b);
                            PumpVlog(vlog, b);
                          }
                        });
                      });
                    });
              });
            });
          }
        });
  }

  void CheckProduceAcks(uint32_t b) {
    auto& queue = pending_[b];
    for (auto it = queue.begin(); it != queue.end();) {
      PendingProduce& req = **it;
      bool done = std::all_of(req.refs.begin(), req.refs.end(), ChunkDurable);
      if (!done) {
        ++it;
        continue;
      }
      uint32_t p = req.producer;
      SimTime sent_at = req.sent_at;
      uint64_t records = req.records;
      it = queue.erase(it);
      // Ack through the broker's dispatch, then back to the producer,
      // which immediately builds the next request (closed loop).
      RpcOut(b, kAckBytes, [this, p, b, sent_at, records] {
        sim_.ScheduleAfter(cfg_.cost.NetworkDelay(0),
                           [this, p, b, sent_at, records] {
                             RecordProduceAck(sent_at, sim_.now(), records);
                             StartProduceRound(p, b);
                           });
      });
    }
  }

  // ----- consumers -----

  void StartConsumeRound(uint32_t c, uint32_t b) {
    SimTime send_at =
        sim_.now() + FromUs(cfg_.cost.client_request_overhead_us);
    sim_.Schedule(send_at, [this, c, b] {
      RpcIn(b, kRequestHeaderBytes, [this, c, b] { ExecuteConsume(c, b); });
    });
  }

  void ExecuteConsume(uint32_t c, uint32_t b) {
    ConsumerState& cons = consumers_[c];
    // Pull up to one chunk per owned partition led by this broker.
    uint64_t records = 0;
    size_t bytes = 0;
    size_t chunks = 0;
    for (auto& [part_idx, cursor] : cons.cursors) {
      Partition& part = partitions_[part_idx];
      if (part.leader != NodeId(b + 1)) continue;
      Stream* stream = brokers_[b]->GetStream(part.stream);
      Streamlet* sl = stream->GetStreamlet(part.streamlet);
      Group* group = sl->GetGroup(cursor.group);
      if (group == nullptr) continue;
      auto locators = group->GetDurableChunks(
          cursor.next_chunk, cfg_.consumer_chunks_per_partition,
          cfg_.chunk_size * size_t(cfg_.consumer_chunks_per_partition) * 2);
      for (const auto& loc : locators) {
        bytes += loc.length;
        ++chunks;
        records += records_per_chunk_;
        cursor.next_chunk = loc.group_chunk_index + 1;
        if (!part.append_times.empty()) {
          RecordEndToEnd(part.append_times.front(), sim_.now());
          part.append_times.pop_front();
        }
      }
      if (group->closed() && cursor.next_chunk >= group->chunk_count()) {
        ++cursor.group;
        cursor.next_chunk = 0;
      }
    }
    nodes_[b]->cores.Execute(
        cfg_.cost.ConsumeServiceTime(chunks, bytes),
        [this, c, b, records, bytes] {
          RpcOut(b, bytes + kAckBytes, [this, c, b, records] {
            sim_.ScheduleAfter(
                cfg_.cost.NetworkDelay(0), [this, c, b, records] {
                  RecordConsumed(sim_.now(), records);
                  // Continuous pull; back off briefly only when empty.
                  if (records == 0) {
                    sim_.ScheduleAfter(FromUs(100), [this, c, b] {
                      StartConsumeRound(c, b);
                    });
                  } else {
                    StartConsumeRound(c, b);
                  }
                });
          });
        });
  }

  // ----- maintenance -----

  void PeriodicTrim() {
    for (uint32_t i = 0; i < uint32_t(partitions_.size()); ++i) {
      const Partition& part = partitions_[i];
      Stream* stream = brokers_[part.leader - 1]->GetStream(part.stream);
      Streamlet* sl = stream->GetStreamlet(part.streamlet);
      GroupId before = sl->next_group_id();
      if (cfg_.consumers > 0) {
        before = consumers_[part.consumer].cursors[i].group;
      }
      sl->TrimBefore(before);
    }
    for (auto& broker : brokers_) {
      for (VirtualLog* vlog : broker->VirtualLogs()) {
        vlog->TrimReplicatedSegments();
      }
    }
    if (sim_.now() < measure_end_) {
      sim_.ScheduleAfter(kTrimInterval, [this] { PeriodicTrim(); });
    }
  }

  rpc::DirectNetwork net_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<Partition> partitions_;
  std::map<uint32_t, std::vector<uint32_t>> per_broker_;  // node-1 -> parts
  std::vector<ProducerState> producers_;
  std::vector<ConsumerState> consumers_;
  std::map<uint32_t, std::deque<std::unique_ptr<PendingProduce>>> pending_;
};

// ==================================================================== Kafka

class KafkaSim : public SimBase {
 public:
  explicit KafkaSim(const SimExperimentConfig& cfg) : SimBase(cfg) {
    uint32_t total = cfg_.streams * cfg_.streamlets_per_stream;
    for (uint32_t i = 0; i < total; ++i) {
      Partition part;
      part.index = i;
      part.leader = NodeId(i % cfg_.brokers) + 1;
      for (uint32_t r = 1; r < cfg_.replication_factor; ++r) {
        part.followers.push_back(
            NodeId((part.leader - 1 + r) % cfg_.brokers) + 1);
      }
      part.log = std::make_unique<kafka::PartitionLog>(part.followers);
      per_broker_[part.leader - 1].push_back(i);
      partitions_.push_back(std::move(part));
    }
    producers_.resize(cfg_.producers);
    if (cfg_.consumers > 0) {
      consumers_.resize(cfg_.consumers);
      for (uint32_t i = 0; i < total; ++i) {
        uint32_t owner = i % cfg_.consumers;
        consumers_[owner].offsets[i] = 0;
        partitions_[i].consumer = owner;
      }
    }
  }

  SimExperimentResult Run() {
    for (uint32_t p = 0; p < cfg_.producers; ++p) {
      for (uint32_t b = 0; b < cfg_.brokers; ++b) {
        if (per_broker_[b].empty()) continue;
        SimTime stagger = FromUs(double(rng_.NextBounded(20)));
        sim_.Schedule(stagger, [this, p, b] { StartProduceRound(p, b); });
      }
    }
    // Replica fetcher lanes: ONE fetcher per (leader, follower) pair
    // (num.replica.fetchers = 1, Kafka's default static tuning). Each lane
    // serializes the per-partition fetch RPCs of every partition it
    // replicates — with many partitions, a partition waits a full lane
    // cycle between fetches, which is the sync lag the paper attributes
    // to passive replication.
    {
      std::map<std::pair<NodeId, NodeId>, FetchLane*> lanes;
      for (auto& part : partitions_) {
        for (NodeId follower : part.followers) {
          auto key = std::make_pair(part.leader, follower);
          auto it = lanes.find(key);
          if (it == lanes.end()) {
            fetchers_.push_back(std::make_unique<FetchLane>());
            fetchers_.back()->leader = part.leader;
            fetchers_.back()->follower = follower;
            it = lanes.emplace(key, fetchers_.back().get()).first;
          }
          it->second->partitions.push_back(part.index);
          it->second->offsets[part.index] = 0;
        }
      }
      for (auto& lane : fetchers_) {
        FetchLane* fl = lane.get();
        SimTime stagger = FromUs(double(rng_.NextBounded(50)));
        sim_.Schedule(stagger, [this, fl] { FetchLaneRound(fl); });
      }
    }
    for (uint32_t c = 0; c < cfg_.consumers; ++c) {
      for (uint32_t b = 0; b < cfg_.brokers; ++b) {
        SimTime stagger = FromUs(double(rng_.NextBounded(20)));
        sim_.Schedule(stagger, [this, c, b] { StartConsumeRound(c, b); });
      }
    }
    sim_.ScheduleAfter(kTrimInterval, [this] { PeriodicTrim(); });
    sim_.RunUntil(measure_end_ + 10 * kMillisecond);
    return Finish();
  }

 private:
  struct Partition {
    uint32_t index = 0;
    NodeId leader = 0;
    std::vector<NodeId> followers;
    std::unique_ptr<kafka::PartitionLog> log;
    uint32_t consumer = 0;
    std::deque<SimTime> append_times;  // not-yet-consumed, offset order
  };
  struct ProducerState {
    std::map<uint32_t, size_t> request_cursor;  // broker -> rotating start
    SimTime source_free_at = 0;
  };
  struct ConsumerState {
    std::map<uint32_t, uint64_t> offsets;  // partition -> next offset
  };
  struct PendingProduce {
    uint32_t producer = 0;
    SimTime sent_at = 0;
    uint64_t records = 0;
    std::vector<std::pair<uint32_t, uint64_t>> appends;  // (part, offset)
  };
  struct FetchLane {
    NodeId leader = 0;
    NodeId follower = 0;
    std::vector<uint32_t> partitions;       // partitions this lane syncs
    std::map<uint32_t, uint64_t> offsets;   // partition -> next offset
    size_t cursor = 0;                      // round-robin position
  };

  std::vector<uint32_t> NextRequestPartitions(ProducerState& prod,
                                              uint32_t b) {
    const auto& parts = per_broker_[b];
    size_t k = parts.size();
    if (cfg_.request_max_chunks > 0 && cfg_.request_max_chunks < k) {
      k = cfg_.request_max_chunks;
    }
    size_t& cursor = prod.request_cursor[b];
    std::vector<uint32_t> picked;
    picked.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      picked.push_back(parts[(cursor + i) % parts.size()]);
    }
    cursor = (cursor + k) % parts.size();
    return picked;
  }

  void StartProduceRound(uint32_t p, uint32_t b) {
    ProducerState& prod = producers_[p];
    auto picked = NextRequestPartitions(prod, b);
    uint64_t records = records_per_chunk_ * picked.size();
    SimTime prep = cfg_.cost.SourceGenerationTime(records) +
                   cfg_.cost.ClientChunkTime(picked.size()) +
                   FromUs(cfg_.cost.client_request_overhead_us);
    SimTime send_at = std::max(sim_.now(), prod.source_free_at) + prep;
    prod.source_free_at = send_at;
    size_t request_bytes =
        kRequestHeaderBytes + picked.size() * template_frame_.size();
    sim_.Schedule(send_at, [this, p, b, request_bytes,
                            picked = std::move(picked)] {
      SimTime sent_at = sim_.now();
      RpcIn(b, request_bytes, [this, p, b, sent_at, picked] {
        size_t bytes = picked.size() * template_frame_.size();
        nodes_[b]->cores.Execute(
            cfg_.cost.KafkaProduceServiceTime(picked.size(), bytes),
            [this, p, b, sent_at, picked] {
              ExecuteProduce(p, b, sent_at, picked);
            });
      });
    });
  }

  void ExecuteProduce(uint32_t p, uint32_t b, SimTime sent_at,
                      const std::vector<uint32_t>& request_parts) {
    auto pending = std::make_unique<PendingProduce>();
    pending->producer = p;
    pending->sent_at = sent_at;
    for (uint32_t part_idx : request_parts) {
      Partition& part = partitions_[part_idx];
      uint64_t offset =
          part.log->Append(template_frame_, uint32_t(records_per_chunk_));
      pending->appends.emplace_back(part_idx, offset);
      pending->records += records_per_chunk_;
    }
    pending_[b].push_back(std::move(pending));
    CheckProduceAcks(b);  // R=1 exposes immediately
  }

  void CheckProduceAcks(uint32_t b) {
    auto& queue = pending_[b];
    for (auto it = queue.begin(); it != queue.end();) {
      PendingProduce& req = **it;
      bool done = std::all_of(
          req.appends.begin(), req.appends.end(), [this](const auto& a) {
            return partitions_[a.first].log->high_watermark() > a.second;
          });
      if (!done) {
        ++it;
        continue;
      }
      uint32_t p = req.producer;
      SimTime sent_at = req.sent_at;
      uint64_t records = req.records;
      it = queue.erase(it);
      RpcOut(b, kAckBytes, [this, p, b, sent_at, records] {
        sim_.ScheduleAfter(cfg_.cost.NetworkDelay(0),
                           [this, p, b, sent_at, records] {
                             RecordProduceAck(sent_at, sim_.now(), records);
                             StartProduceRound(p, b);
                           });
      });
    }
  }

  /// Passive replication: the lane's fetcher thread polls its partitions
  /// round-robin, one per-partition fetch RPC at a time (each partition
  /// is an independent replicated log). When a full cycle finds no data
  /// the fetcher backs off (static tuning, the paper's point).
  void FetchLaneRound(FetchLane* fl) {
    // Select the next window of partitions with pending data (one fetch
    // RPC covers up to kafka_partitions_per_fetch independent logs).
    std::vector<uint32_t> chosen;
    for (size_t i = 0; i < fl->partitions.size() &&
                       chosen.size() < cfg_.cost.kafka_partitions_per_fetch;
         ++i) {
      uint32_t part_idx =
          fl->partitions[(fl->cursor + i) % fl->partitions.size()];
      if (partitions_[part_idx].log->end_offset() > fl->offsets[part_idx]) {
        chosen.push_back(part_idx);
      }
    }
    if (chosen.empty()) {
      sim_.ScheduleAfter(FromUs(cfg_.cost.fetch_backoff_us),
                         [this, fl] { FetchLaneRound(fl); });
      return;
    }
    fl->cursor = (fl->cursor + cfg_.cost.kafka_partitions_per_fetch) %
                 fl->partitions.size();
    uint32_t leader_idx = fl->leader - 1;
    uint32_t follower_idx = fl->follower - 1;
    // Fetch request: follower dispatch out -> leader dispatch in.
    RpcOut(follower_idx, kRequestHeaderBytes, [this, fl, chosen, leader_idx,
                                               follower_idx] {
      RpcIn(leader_idx, kRequestHeaderBytes, [this, fl, chosen, leader_idx,
                                              follower_idx] {
        // Serve each partition's log, bounded by the per-fetch byte cap.
        size_t per_part_budget =
            cfg_.kafka_fetch_max_bytes / chosen.size();
        uint64_t batches = 0;
        size_t bytes = 0;
        std::vector<std::pair<uint32_t, uint64_t>> advances;
        for (uint32_t part_idx : chosen) {
          auto peek = partitions_[part_idx].log->PeekFetch(
              fl->offsets[part_idx], per_part_budget);
          if (peek.batches == 0) continue;
          batches += peek.batches;
          bytes += peek.bytes;
          advances.emplace_back(part_idx, peek.next_offset);
        }
        nodes_[leader_idx]->cores.Execute(
            cfg_.cost.FetchServiceTime(batches, bytes),
            [this, fl, leader_idx, follower_idx, batches, bytes,
             advances = std::move(advances)] {
              RpcOut(leader_idx, bytes, [this, fl, follower_idx, batches,
                                         bytes, advances] {
                RpcIn(follower_idx, bytes, [this, fl, follower_idx, batches,
                                            bytes, advances] {
                  nodes_[follower_idx]->cores.Execute(
                      cfg_.cost.FollowerApplyTime(batches, bytes),
                      [this, fl, bytes, advances] {
                        for (const auto& [part_idx, next] : advances) {
                          fl->offsets[part_idx] = next;
                          partitions_[part_idx].log->UpdateFollower(
                              fl->follower, next);
                          CheckProduceAcks(partitions_[part_idx].leader - 1);
                        }
                        RecordReplicationRpc(sim_.now(), bytes);
                        FetchLaneRound(fl);  // keep pulling, no pause
                      });
                });
              });
            });
      });
    });
  }

  void StartConsumeRound(uint32_t c, uint32_t b) {
    SimTime send_at =
        sim_.now() + FromUs(cfg_.cost.client_request_overhead_us);
    sim_.Schedule(send_at, [this, c, b] {
      RpcIn(b, kRequestHeaderBytes, [this, c, b] { ExecuteConsume(c, b); });
    });
  }

  void ExecuteConsume(uint32_t c, uint32_t b) {
    ConsumerState& cons = consumers_[c];
    uint64_t records = 0;
    size_t bytes = 0;
    size_t chunks = 0;
    for (auto& [part_idx, offset] : cons.offsets) {
      Partition& part = partitions_[part_idx];
      if (part.leader != NodeId(b + 1)) continue;
      auto peek = part.log->PeekFetch(
          offset, cfg_.chunk_size * size_t(cfg_.consumer_chunks_per_partition) * 2,
          /*max_batches=*/cfg_.consumer_chunks_per_partition,
          /*below_hw_only=*/true);
      if (peek.batches == 0) continue;
      bytes += peek.bytes;
      records += peek.records;
      chunks += peek.batches;
      offset = peek.next_offset;
      for (uint64_t i = 0; i < peek.batches && !part.append_times.empty();
           ++i) {
        RecordEndToEnd(part.append_times.front(), sim_.now());
        part.append_times.pop_front();
      }
    }
    nodes_[b]->cores.Execute(
        cfg_.cost.ConsumeServiceTime(chunks, bytes),
        [this, c, b, records, bytes] {
          RpcOut(b, bytes + kAckBytes, [this, c, b, records] {
            sim_.ScheduleAfter(
                cfg_.cost.NetworkDelay(0), [this, c, b, records] {
                  RecordConsumed(sim_.now(), records);
                  if (records == 0) {
                    sim_.ScheduleAfter(FromUs(100), [this, c, b] {
                      StartConsumeRound(c, b);
                    });
                  } else {
                    StartConsumeRound(c, b);
                  }
                });
          });
        });
  }

  void PeriodicTrim() {
    for (auto& part : partitions_) {
      uint64_t before = part.log->high_watermark();
      if (cfg_.consumers > 0) {
        before = std::min(before,
                          consumers_[part.consumer].offsets[part.index]);
      }
      part.log->Trim(before);
    }
    if (sim_.now() < measure_end_) {
      sim_.ScheduleAfter(kTrimInterval, [this] { PeriodicTrim(); });
    }
  }

  std::vector<Partition> partitions_;
  std::map<uint32_t, std::vector<uint32_t>> per_broker_;
  std::vector<ProducerState> producers_;
  std::vector<ConsumerState> consumers_;
  std::map<uint32_t, std::deque<std::unique_ptr<PendingProduce>>> pending_;
  std::vector<std::unique_ptr<FetchLane>> fetchers_;
};

}  // namespace

SimExperimentResult RunSimExperiment(const SimExperimentConfig& config) {
  if (config.system == SimExperimentConfig::System::kKafka) {
    KafkaSim sim(config);
    return sim.Run();
  }
  KeraSim sim(config);
  return sim.Run();
}

}  // namespace kera::sim
