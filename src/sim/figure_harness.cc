#include "sim/figure_harness.h"

#include <cstdio>

namespace kera::sim {

SimExperimentConfig LatencyBase(System system, uint32_t producers,
                                uint32_t consumers, uint32_t streams,
                                uint32_t replication) {
  SimExperimentConfig cfg;
  cfg.system = system;
  cfg.producers = producers;
  cfg.consumers = consumers;
  cfg.streams = streams;
  cfg.streamlets_per_stream = 1;
  cfg.q = 1;
  cfg.replication_factor = replication;
  cfg.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
  cfg.vlogs_per_broker = 4;
  cfg.chunk_size = 1024;
  cfg.request_max_chunks = 16;  // request.size = 16 KB (latency-optimized)
  cfg.consumer_chunks_per_partition = 1;  // paper: one chunk per partition
  // Replication batches approximate per-request syncs (§IV.B: vlogs are
  // synchronized once all chunks of a request are appended).
  cfg.replication_max_batch_bytes = 32u << 10;
  cfg.warmup_seconds = 0.2;
  cfg.measure_seconds = 0.5;
  return cfg;
}

SimExperimentConfig ThroughputBase(System system, uint32_t clients,
                                   size_t chunk_size, uint32_t replication) {
  SimExperimentConfig cfg;
  cfg.system = system;
  cfg.producers = clients;
  cfg.consumers = clients;
  cfg.streams = 1;
  cfg.streamlets_per_stream = 32;
  cfg.q = system == System::kKerA ? 4 : 1;  // KerA: 4 active sub-partitions
  cfg.replication_factor = replication;
  cfg.vlog_policy = rpc::VlogPolicy::kPerSubPartition;
  cfg.chunk_size = chunk_size;
  cfg.request_max_chunks = 4;  // request.size = 4 chunks
  cfg.consumer_chunks_per_partition = 8;
  cfg.replication_max_batch_bytes = 1u << 20;
  cfg.warmup_seconds = 0.2;
  cfg.measure_seconds = 0.5;
  return cfg;
}

SimExperimentConfig Fig8(System system, uint32_t streams,
                         uint32_t replication) {
  SimExperimentConfig cfg =
      LatencyBase(system, /*producers=*/4, /*consumers=*/0, streams,
                  replication);
  // Fig 8 batches a chunk for every partition of the broker into one
  // request (caption); requests grow with the stream count up to 32 KB.
  cfg.request_max_chunks = 32;
  return cfg;
}

SimExperimentConfig Fig9(System system, uint32_t producers,
                         uint32_t replication) {
  SimExperimentConfig cfg = LatencyBase(system, producers, /*consumers=*/0,
                                        /*streams=*/128, replication);
  cfg.chunk_size = 16u << 10;
  cfg.request_max_chunks = 4;  // request.size = 64 KB
  // "KerA is configured similarly to Kafka, one replicated log per
  // partition."
  cfg.vlog_policy = rpc::VlogPolicy::kPerSubPartition;
  return cfg;
}

SimExperimentConfig Fig10(System system, uint32_t streams, uint32_t vlogs) {
  SimExperimentConfig cfg = LatencyBase(system, 4, 4, streams,
                                        /*replication=*/3);
  cfg.vlogs_per_broker = vlogs;
  return cfg;
}

SimExperimentConfig Fig11(System system, uint32_t producers,
                          size_t chunk_size) {
  return ThroughputBase(system, producers, chunk_size, /*replication=*/3);
}

SimExperimentConfig Fig12(uint32_t streams, uint32_t replication) {
  SimExperimentConfig cfg =
      LatencyBase(System::kKerA, 8, 8, streams, replication);
  cfg.vlogs_per_broker = 1;
  return cfg;
}

SimExperimentConfig Fig13(uint32_t streams, uint32_t vlogs) {
  SimExperimentConfig cfg = LatencyBase(System::kKerA, 8, 8, streams,
                                        /*replication=*/3);
  cfg.vlogs_per_broker = vlogs;
  return cfg;
}

SimExperimentConfig Fig14to16(uint32_t streams, uint32_t vlogs,
                              uint32_t replication) {
  SimExperimentConfig cfg =
      LatencyBase(System::kKerA, 8, 8, streams, replication);
  cfg.vlogs_per_broker = vlogs;
  return cfg;
}

SimExperimentConfig Fig17to20(uint32_t clients, size_t chunk_size,
                              uint32_t replication) {
  return ThroughputBase(System::kKerA, clients, chunk_size, replication);
}

SimExperimentConfig Fig21(uint32_t vlogs, size_t chunk_size) {
  SimExperimentConfig cfg =
      ThroughputBase(System::kKerA, /*clients=*/8, chunk_size,
                     /*replication=*/3);
  // Shared pool of `vlogs` per broker instead of one per sub-partition.
  cfg.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
  cfg.vlogs_per_broker = vlogs;
  return cfg;
}

std::string FormatResult(const std::string& label,
                         const SimExperimentResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-36s ingest=%6.2f Mrec/s  consume=%6.2f Mrec/s  "
                "repl_rpcs=%8llu  avg_repl=%7.1f KB  p50=%6.0f us",
                label.c_str(), r.ingest_mrecords_per_s,
                r.consume_mrecords_per_s,
                (unsigned long long)r.replication_rpcs, r.avg_replication_kb,
                r.produce_latency_p50_us);
  return buf;
}

}  // namespace kera::sim
