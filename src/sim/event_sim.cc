#include "sim/event_sim.h"

#include <cassert>

namespace kera::sim {

void EventSimulator::Schedule(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "scheduling into the past");
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventSimulator::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    // Move the event out before popping (priority_queue top is const).
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
}

void EventSimulator::RunAll() {
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
}

void SimResource::Execute(SimTime service_time, std::function<void()> done) {
  Pending p{service_time, std::move(done)};
  if (busy_ < servers_) {
    StartOne(std::move(p));
  } else {
    waiting_.push_back(std::move(p));
  }
}

void SimResource::StartOne(Pending p) {
  ++busy_;
  busy_time_ += p.service_time;
  sim_.ScheduleAfter(p.service_time,
                     [this, done = std::move(p.done)]() mutable {
                       done();
                       OnServerFree();
                     });
}

void SimResource::OnServerFree() {
  --busy_;
  ++completed_;
  if (!waiting_.empty()) {
    Pending next = std::move(waiting_.front());
    waiting_.pop_front();
    StartOne(std::move(next));
  }
}

double SimResource::Utilization() const {
  SimTime elapsed = sim_.now();
  if (elapsed == 0) return 0.0;
  return double(busy_time_) / (double(elapsed) * servers_);
}

}  // namespace kera::sim
