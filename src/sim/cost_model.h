// Cost model for the simulated cluster, standing in for the paper's
// Grid5000 Paravance testbed (4 nodes x 16 cores, 10 GbE). Constants were
// calibrated so the simulated KerA/Kafka anchor points land near the
// paper's reported magnitudes (e.g. ~1.8 M rec/s for 512 streams, R3, one
// virtual log; ~8 M rec/s for the throughput-optimized configuration);
// the claims we make are about shapes — who wins, where crossovers fall —
// not absolute records/s.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_sim.h"

namespace kera::sim {

struct CostModel {
  // ----- topology -----
  uint32_t cores_per_node = 16;  // broker + backup services share these
  /// Effective NIC bandwidth, modeled as ONE serializing channel per node
  /// (ingress + egress share it). With R3 + concurrent consumers a node
  /// moves ~6x the ingest rate through its NIC, which is what produces
  /// the ~8.3 M records/s cluster plateau the paper reports (Figs 18-19).
  double network_bandwidth_gbps = 10.0;
  double network_latency_us = 15.0;  // one-way propagation + kernel

  // ----- dispatch thread (RAMCloud threading model) -----
  // Every node runs ONE dispatch thread that polls the transports and
  // hands requests to workers; every RPC event serializes through it
  // (payload bytes move via scatter/gather, so the per-KB share is low).
  // This single core is the structural bottleneck that makes the *number*
  // of replication RPCs matter — exactly the knob the virtual log
  // consolidates.
  double dispatch_fixed_us = 2.5;   // per RPC event (in or out)
  double dispatch_per_kb_us = 0.1;  // header/doorbell handling per KB

  // ----- request processing on broker cores -----
  double produce_rpc_fixed_us = 12.0;   // dispatch, parse, respond
  double per_chunk_append_us = 1.5;     // streamlet/group lookup + index +
                                        // vlog reference append
  double per_kb_append_us = 0.30;       // copy-in + checksum per KB
  double consume_rpc_fixed_us = 10.0;
  double per_chunk_consume_us = 0.6;
  double per_kb_consume_us = 0.15;

  // ----- replication (KerA active push) -----
  double replication_rpc_fixed_us = 14.0;  // primary: gather + send one RPC
  double backup_rpc_fixed_us = 10.0;       // backup: dispatch + bookkeeping
  double per_chunk_backup_us = 1.0;        // backup per-chunk verify/index
  double per_kb_backup_us = 0.25;          // backup copy-in per KB

  // ----- Kafka-model costs -----
  // The paper's architectural contrast: each Kafka partition is an
  // INDEPENDENT replicated log with its own segment files, offset index
  // and replica bookkeeping, so the leader pays a per-partition-batch
  // cost on every produce/fetch, where KerA appends a chunk with one
  // memcpy plus a virtual-log reference ("reducing the extra indexing
  // overhead", §III).
  double kafka_batch_append_us = 15.0;   // leader per partition batch
  double fetch_rpc_fixed_us = 14.0;      // leader-side fetch handling
  double kafka_fetch_per_batch_us = 5.0; // leader per batch served
  double follower_apply_fixed_us = 8.0;  // follower-side fetch response
  double kafka_follower_per_batch_us = 10.0;  // follower log append/index
  double per_kb_fetch_us = 0.25;
  double fetch_backoff_us = 300.0;       // poll cadence when caught up
                                         // (static tuning, paper's point)
  /// Partitions one replica-fetcher RPC covers (each partition is still
  /// an independent log with its own bookkeeping; the fetcher batches the
  /// network round-trips, as Kafka's fetcher threads do).
  uint32_t kafka_partitions_per_fetch = 8;

  // ----- clients -----
  double client_request_overhead_us = 6.0;  // build/send/parse per request
  double client_per_chunk_us = 3.0;  // chunk alloc/seal/recycle on the
                                     // source+requests threads
  /// Records/s one producer source thread can generate (bounds a single
  /// client; the paper's producers are one source + one requests thread).
  double source_records_per_sec = 3.0e6;

  [[nodiscard]] SimTime NetworkDelay(size_t bytes) const {
    double us = network_latency_us +
                double(bytes) * 8.0 / (network_bandwidth_gbps * 1e3);
    return FromUs(us);
  }

  [[nodiscard]] SimTime ProduceServiceTime(size_t chunks,
                                           size_t bytes) const {
    return FromUs(produce_rpc_fixed_us + per_chunk_append_us * double(chunks) +
                  per_kb_append_us * double(bytes) / 1024.0);
  }

  /// Kafka leader produce: per-partition-batch bookkeeping on independent
  /// replicated logs (vs ProduceServiceTime's per-chunk KerA path).
  [[nodiscard]] SimTime KafkaProduceServiceTime(size_t batches,
                                                size_t bytes) const {
    return FromUs(produce_rpc_fixed_us +
                  kafka_batch_append_us * double(batches) +
                  per_kb_append_us * double(bytes) / 1024.0);
  }

  [[nodiscard]] SimTime ReplicationSendTime(size_t bytes) const {
    (void)bytes;  // gather cost folded into the fixed term
    return FromUs(replication_rpc_fixed_us);
  }

  [[nodiscard]] SimTime BackupServiceTime(size_t chunks, size_t bytes) const {
    return FromUs(backup_rpc_fixed_us + per_chunk_backup_us * double(chunks) +
                  per_kb_backup_us * double(bytes) / 1024.0);
  }

  [[nodiscard]] SimTime ConsumeServiceTime(size_t chunks,
                                           size_t bytes) const {
    return FromUs(consume_rpc_fixed_us +
                  per_chunk_consume_us * double(chunks) +
                  per_kb_consume_us * double(bytes) / 1024.0);
  }

  [[nodiscard]] SimTime FetchServiceTime(size_t batches, size_t bytes) const {
    return FromUs(fetch_rpc_fixed_us +
                  kafka_fetch_per_batch_us * double(batches) +
                  per_kb_fetch_us * double(bytes) / 1024.0);
  }

  [[nodiscard]] SimTime FollowerApplyTime(size_t batches,
                                          size_t bytes) const {
    return FromUs(follower_apply_fixed_us +
                  kafka_follower_per_batch_us * double(batches) +
                  per_kb_fetch_us * double(bytes) / 1024.0);
  }

  [[nodiscard]] SimTime SourceGenerationTime(uint64_t records) const {
    return SimTime(double(records) / source_records_per_sec *
                   double(kSecond));
  }

  [[nodiscard]] SimTime ClientChunkTime(uint64_t chunks) const {
    return FromUs(client_per_chunk_us * double(chunks));
  }

  [[nodiscard]] SimTime DispatchTime(size_t bytes) const {
    return FromUs(dispatch_fixed_us +
                  dispatch_per_kb_us * double(bytes) / 1024.0);
  }
};

}  // namespace kera::sim
