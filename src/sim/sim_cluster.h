// Simulated cluster experiments: runs the real KerA broker / virtual log /
// storage code (and the real Kafka-model partition logs) under the
// discrete-event cost model, reproducing the paper's 4-broker Grid5000
// evaluation on a single machine.
//
// The client model follows §V.A:
//  - proxy producers share all streams: each producer keeps one request in
//    flight per broker, and every request carries one chunk per partition
//    that broker leads; a producer's source thread generates records at a
//    bounded rate and requests wait for their records to exist;
//  - consumers split the streams among themselves and keep one pull
//    request in flight per broker, pulling up to one chunk per partition;
//    consumers only ever receive durably replicated data.
#pragma once

#include <cstdint>

#include "rpc/messages.h"
#include "sim/cost_model.h"

namespace kera::sim {

struct SimExperimentConfig {
  enum class System { kKerA, kKafka };
  System system = System::kKerA;

  uint32_t brokers = 4;
  uint32_t producers = 4;
  uint32_t consumers = 4;  // 0 = ingestion-only experiment

  /// Streams, each partitioned into streamlets_per_stream partitions.
  uint32_t streams = 32;
  uint32_t streamlets_per_stream = 1;
  /// Q: active groups (sub-partitions) per streamlet (KerA only).
  uint32_t q = 1;

  uint32_t replication_factor = 3;

  /// KerA replication configuration (the paper's knob under study).
  rpc::VlogPolicy vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
  uint32_t vlogs_per_broker = 4;
  size_t virtual_segment_capacity = 1u << 20;
  size_t replication_max_batch_bytes = 1u << 20;
  /// Replication batches in flight per vlog (1 = stop-and-wait, the
  /// pre-pipelining behavior; >1 overlaps replication round-trips).
  uint32_t replication_window = 1;

  /// Kafka follower tuning (static, as the paper emphasizes).
  size_t kafka_fetch_max_bytes = 1u << 20;

  size_t chunk_size = 1024;
  size_t record_size = 100;

  /// request.size analogue (§V.A): max chunks batched into one produce
  /// request per broker; 0 = one chunk for every partition of the broker.
  /// Latency-optimized configurations use small requests, which makes the
  /// replication round-trip directly visible in throughput.
  uint32_t request_max_chunks = 0;

  /// Chunks a consumer pulls per partition per request (1 in the paper's
  /// latency configuration; higher for throughput configurations).
  uint32_t consumer_chunks_per_partition = 1;

  /// Storage geometry for the simulated brokers (kept small so groups
  /// close and trim during the run, bounding memory).
  size_t segment_size = 128u << 10;
  uint32_t segments_per_group = 2;

  double warmup_seconds = 0.3;
  double measure_seconds = 1.0;

  CostModel cost;
  uint64_t seed = 1;
};

struct SimExperimentResult {
  /// Cluster ingestion throughput: producer-acked records in the measure
  /// window, in million records per second (the paper's main metric).
  double ingest_mrecords_per_s = 0;
  /// Records delivered to consumers per second (million).
  double consume_mrecords_per_s = 0;

  uint64_t produce_requests = 0;
  uint64_t replication_rpcs = 0;       // backup-bound RPCs (KerA) or
                                       // follower fetches (Kafka)
  double avg_replication_kb = 0;       // payload per replication RPC
  double broker_core_utilization = 0;  // mean across broker nodes
  double dispatch_utilization = 0;     // mean across nodes; the dispatch
                                       // thread is the structural bottleneck
  double produce_latency_p50_us = 0;
  double produce_latency_p99_us = 0;
  /// End-to-end lag from a chunk's broker append to its delivery at a
  /// consumer (0 when the experiment runs without consumers).
  double e2e_latency_p50_us = 0;
  double e2e_latency_p99_us = 0;
  uint64_t records_per_chunk = 0;
};

/// Runs one experiment; dispatches on config.system.
[[nodiscard]] SimExperimentResult RunSimExperiment(
    const SimExperimentConfig& config);

}  // namespace kera::sim
