// Bounds-checked flat binary serialization for RPC messages. The client
// and broker share this format (paper: shared binary data format so data
// is appended/traversed without extra copies — chunk payloads are carried
// as opaque byte runs and never re-encoded).
//
// The Writer is scatter-gather: bulk payloads (sealed chunk frames, segment
// memory) are appended *by reference* with BytesRef/BytesRefParts and only
// spliced into the output when the message is materialized (Take / AppendTo
// / Frame), so encoding a produce or replicate request never re-copies the
// chunk bodies into the Writer. The materialized bytes are identical to
// what Bytes() would have produced — referencing is a transport-side
// optimization, not a wire format change.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kera::rpc {

/// A message carried as scatter-gather pieces referencing caller-owned
/// memory, in wire order. Used by the vectored transport send path
/// (Network::CallAsyncParts) to hand frames to the socket layer without
/// materializing them into one contiguous buffer. Every referenced run
/// must stay alive and unchanged until the call's future is ready.
struct BytesRefParts {
  std::vector<std::span<const std::byte>> pieces;

  [[nodiscard]] size_t total_size() const {
    size_t n = 0;
    for (const auto& p : pieces) n += p.size();
    return n;
  }
};

class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void U8(uint8_t v) { buf_.push_back(std::byte(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  /// Length-prefixed byte run, copied into the Writer.
  void Bytes(std::span<const std::byte> data) {
    U32(uint32_t(data.size()));
    Raw(data.data(), data.size());
  }
  void Str(std::string_view s) {
    Bytes({reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }

  /// Length-prefixed byte run appended by reference: the bytes are spliced
  /// in at materialization. The referenced memory must stay alive and
  /// unchanged until then.
  void BytesRef(std::span<const std::byte> data) {
    U32(uint32_t(data.size()));
    RawRef(data);
  }

  /// One length prefix covering the concatenation of `parts`, each appended
  /// by reference (e.g. a replication batch gathered from segment memory).
  void BytesRefParts(std::span<const std::span<const std::byte>> parts) {
    size_t total = 0;
    for (const auto& p : parts) total += p.size();
    U32(uint32_t(total));
    for (const auto& p : parts) RawRef(p);
  }

  /// Raw bytes without a length prefix (caller encodes the length).
  void Raw(const void* data, size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Raw bytes appended by reference (no length prefix). Runs smaller than
  /// the tracking overhead are copied inline.
  void RawRef(std::span<const std::byte> data) {
    if (data.size() < kRefCutoff) {
      Raw(data.data(), data.size());
      return;
    }
    ext_.push_back({buf_.size(), data});
    ext_size_ += data.size();
  }

  /// Total encoded size, including referenced bytes.
  [[nodiscard]] size_t size() const { return buf_.size() + ext_size_; }

  /// True when everything was copied inline (no external references).
  [[nodiscard]] bool contiguous() const { return ext_.empty(); }

  /// Contiguous view of the encoded bytes. Only valid on a contiguous
  /// Writer — use Take()/AppendTo() when payloads were appended by
  /// reference.
  [[nodiscard]] std::span<const std::byte> View() const {
    assert(contiguous() && "Writer::View on scatter-gather content");
    return buf_;
  }

  /// Materializes into `out` (appending), splicing referenced runs between
  /// the inline pieces.
  void AppendTo(std::vector<std::byte>& out) const {
    out.reserve(out.size() + size());
    size_t prev = 0;
    for (const auto& e : ext_) {
      out.insert(out.end(), buf_.begin() + long(prev),
                 buf_.begin() + long(e.after));
      out.insert(out.end(), e.data.begin(), e.data.end());
      prev = e.after;
    }
    out.insert(out.end(), buf_.begin() + long(prev), buf_.end());
  }

  /// Iovec-style traversal: invokes fn(span) for each contiguous piece in
  /// encoding order (inline runs interleaved with referenced runs).
  template <typename Fn>
  void ForEachPiece(Fn&& fn) const {
    size_t prev = 0;
    for (const auto& e : ext_) {
      if (e.after > prev) {
        fn(std::span<const std::byte>(buf_.data() + prev, e.after - prev));
      }
      fn(e.data);
      prev = e.after;
    }
    if (buf_.size() > prev) {
      fn(std::span<const std::byte>(buf_.data() + prev, buf_.size() - prev));
    }
  }

  /// Appends this Writer's pieces (inline runs interleaved with referenced
  /// runs, in wire order) to `out` without materializing anything. The
  /// pieces alias this Writer's buffer and the referenced memory; both
  /// must outlive the use of `out`.
  void CollectPieces(struct BytesRefParts& out) const;

  /// Materialized encoded bytes. Free of copies when contiguous.
  [[nodiscard]] std::vector<std::byte> Take() && {
    if (contiguous()) return std::move(buf_);
    std::vector<std::byte> out;
    AppendTo(out);
    return out;
  }

 private:
  /// Below this size, copying beats recording a reference (a piece costs a
  /// 24-byte entry plus an extra insert at materialization).
  static constexpr size_t kRefCutoff = 64;

  struct ExtPiece {
    size_t after;  // buf_ offset this piece follows
    std::span<const std::byte> data;
  };

  std::vector<std::byte> buf_;
  std::vector<ExtPiece> ext_;
  size_t ext_size_ = 0;
};

inline void Writer::CollectPieces(struct BytesRefParts& out) const {
  out.pieces.reserve(out.pieces.size() + ext_.size() * 2 + 1);
  ForEachPiece(
      [&](std::span<const std::byte> piece) { out.pieces.push_back(piece); });
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] Status U8(uint8_t& v);
  [[nodiscard]] Status U16(uint16_t& v);
  [[nodiscard]] Status U32(uint32_t& v);
  [[nodiscard]] Status U64(uint64_t& v);
  [[nodiscard]] Status Bool(bool& v);
  /// Zero-copy: the returned span aliases the request buffer.
  [[nodiscard]] Status Bytes(std::span<const std::byte>& out);
  [[nodiscard]] Status Str(std::string& out);

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool AtEnd() const { return remaining() == 0; }

 private:
  [[nodiscard]] Status Need(size_t n);
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace kera::rpc
