// Bounds-checked flat binary serialization for RPC messages. The client
// and broker share this format (paper: shared binary data format so data
// is appended/traversed without extra copies — chunk payloads are carried
// as opaque byte runs and never re-encoded).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kera::rpc {

class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void U8(uint8_t v) { buf_.push_back(std::byte(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  /// Length-prefixed byte run.
  void Bytes(std::span<const std::byte> data) {
    U32(uint32_t(data.size()));
    Raw(data.data(), data.size());
  }
  void Str(std::string_view s) {
    Bytes({reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }

  /// Raw bytes without a length prefix (caller encodes the length).
  void Raw(const void* data, size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] std::vector<std::byte> Take() && { return std::move(buf_); }
  [[nodiscard]] std::span<const std::byte> View() const { return buf_; }
  [[nodiscard]] size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] Status U8(uint8_t& v);
  [[nodiscard]] Status U16(uint16_t& v);
  [[nodiscard]] Status U32(uint32_t& v);
  [[nodiscard]] Status U64(uint64_t& v);
  [[nodiscard]] Status Bool(bool& v);
  /// Zero-copy: the returned span aliases the request buffer.
  [[nodiscard]] Status Bytes(std::span<const std::byte>& out);
  [[nodiscard]] Status Str(std::string& out);

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool AtEnd() const { return remaining() == 0; }

 private:
  [[nodiscard]] Status Need(size_t n);
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace kera::rpc
