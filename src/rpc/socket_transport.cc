#include "rpc/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kera::rpc {
namespace {

// epoll_event.data.u64 tags. Server loops: wake, listener, then conn ids.
// Client loop: wake, then NodeId + kClientConnTagBase.
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kListenTag = 1;
constexpr uint64_t kServerConnIdBase = 2;
constexpr uint64_t kClientConnTagBase = 1;

// Vectored-send width per flush. Linux IOV_MAX is 1024; 64 keeps the
// iovec array on the stack while still coalescing dozens of frames (or
// all the scatter-gather pieces of a large parts frame) per syscall.
constexpr int kMaxIov = 64;

constexpr size_t kReadChunk = 64 * 1024;
// Wire framing: u32 length then u64 request id.
constexpr size_t kHeaderBytes = 12;
constexpr size_t kRequestIdBytes = 8;

Status Errno(const char* what) {
  return Status(StatusCode::kInternal,
                std::string(what) + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void AddToEpoll(int epoll_fd, int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  (void)epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
}

void ModEpoll(int epoll_fd, int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  (void)epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void DrainEventFd(int fd) {
  uint64_t count;
  while (read(fd, &count, sizeof(count)) > 0) {
  }
}

void SignalEventFd(int fd) {
  uint64_t one = 1;
  ssize_t n;
  do {
    n = write(fd, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

/// Grows `buf` so at least kReadChunk bytes fit after `len`.
void EnsureReadRoom(std::vector<std::byte>& buf, size_t len) {
  if (buf.size() - len < kReadChunk) {
    buf.resize(std::max(buf.size() * 2, len + kReadChunk));
  }
}

/// Drops the parsed prefix [0, pos) of a read buffer.
void CompactReadBuffer(std::vector<std::byte>& buf, size_t& pos,
                       size_t& len) {
  if (pos == len) {
    pos = len = 0;
  } else if (pos > 0) {
    std::memmove(buf.data(), buf.data() + pos, len - pos);
    len -= pos;
    pos = 0;
  }
}

}  // namespace

// ---------------------------------------------------------------- state

struct SocketNetwork::ServerConn {
  uint64_t id = 0;
  int fd = -1;
  std::vector<std::byte> rbuf;
  size_t rpos = 0;
  size_t rlen = 0;
  std::deque<OutFrame> wq;
  bool want_write = false;
};

/// One per-core reactor of a registered node: an epoll IO thread that
/// owns a slice of the node's accepted connections, plus a worker pool
/// draining the requests routed to this shard.
struct SocketNetwork::ServerShard {
  int index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  /// Wake coalescing: set by WakeShard before signalling the eventfd (at
  /// most one signal per flag set); cleared by the IO thread strictly
  /// AFTER draining the eventfd — same ordering as the client wake path,
  /// for the same lost-wakeup reason.
  std::atomic<bool> wake_pending{false};

  struct Work {
    uint64_t conn_id = 0;
    int conn_shard = 0;  // shard owning the connection (response routing)
    uint64_t request_id = 0;
    std::vector<std::byte> request;
  };
  BlockingQueue<Work> queue;

  // Staged by other threads for this shard's IO thread: finished worker
  // responses, and connections the acceptor (shard 0) assigned here.
  std::mutex resp_mu;
  std::vector<std::pair<uint64_t, OutFrame>> responses;
  std::vector<std::unique_ptr<ServerConn>> adopted;

  // Owned exclusively by this shard's IO thread.
  std::unordered_map<uint64_t, std::unique_ptr<ServerConn>> conns;

  std::thread io;
  std::vector<std::thread> workers;

  ~ServerShard() {
    if (io.joinable()) io.join();
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
    if (wake_fd >= 0) close(wake_fd);
    if (epoll_fd >= 0) close(epoll_fd);
  }
};

struct SocketNetwork::ServerNode {
  NodeId id = 0;
  std::atomic<RpcHandler*> handler{nullptr};
  uint16_t port = 0;
  size_t max_frame_bytes = 0;
  int listen_fd = -1;  // registered with shard 0's epoll
  std::atomic<bool> stop{false};
  /// Registration shape, kept so Restore revives the node as it was.
  NodeOptions opts;
  std::vector<std::unique_ptr<ServerShard>> shards;
  // Owned by the accepting (shard-0) IO thread: round-robin placement
  // cursor and the node-wide connection id counter (ids are unique across
  // shards so responses can never route to a reused id).
  uint64_t next_accept = 0;
  uint64_t next_conn_id = kServerConnIdBase;

  ~ServerNode() {
    shards.clear();  // joins IO + workers per shard
    if (listen_fd >= 0) close(listen_fd);
  }
};

struct SocketNetwork::ClientConn {
  NodeId dest = 0;
  int fd = -1;
  std::deque<OutFrame> wq;
  std::unordered_map<uint64_t, std::promise<Result<std::vector<std::byte>>>>
      pending;
  std::vector<std::byte> rbuf;
  size_t rpos = 0;
  size_t rlen = 0;
  bool want_write = false;
};

// ----------------------------------------------------------- lifecycle

SocketNetwork::SocketNetwork() : SocketNetwork(Options{}) {}

SocketNetwork::SocketNetwork(Options options) : options_(std::move(options)) {
  client_epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  client_wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  AddToEpoll(client_epoll_fd_, client_wake_fd_, EPOLLIN, kWakeTag);
  client_thread_ = std::thread([this] { ClientIoLoop(); });
}

SocketNetwork::~SocketNetwork() { Shutdown(); }

void SocketNetwork::Shutdown() {
  std::map<NodeId, std::unique_ptr<ServerNode>> nodes;
  std::vector<std::unique_ptr<ServerNode>> draining;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    if (shutdown_) return;
    shutdown_ = true;
    nodes.swap(nodes_);
    draining.swap(draining_);
  }
  for (auto& [_, n] : nodes) {
    SignalServerStop(n.get());
    for (auto& shard : n->shards) shard->queue.Shutdown();
  }
  nodes.clear();     // joins IO + workers per node
  draining.clear();  // joins leftover workers of crashed nodes

  client_stop_.store(true, std::memory_order_release);
  SignalEventFd(client_wake_fd_);
  if (client_thread_.joinable()) client_thread_.join();
  {
    std::lock_guard<std::mutex> lock(client_mu_);
    for (auto& [_, conn] : conns_) {
      for (auto& [id, promise] : conn->pending) {
        promise.set_value(
            Status(StatusCode::kUnavailable, "network shut down"));
      }
      if (conn->fd >= 0) close(conn->fd);
    }
    conns_.clear();
  }
  if (client_wake_fd_ >= 0) close(client_wake_fd_);
  if (client_epoll_fd_ >= 0) close(client_epoll_fd_);
  client_wake_fd_ = client_epoll_fd_ = -1;
}

// ---------------------------------------------------------- server side

Result<uint16_t> SocketNetwork::Register(NodeId node, RpcHandler* handler,
                                         uint16_t port) {
  NodeOptions opts;
  opts.port = port;
  return Register(node, handler, std::move(opts));
}

Result<uint16_t> SocketNetwork::Register(NodeId node, RpcHandler* handler,
                                         NodeOptions node_options) {
  auto n = std::make_unique<ServerNode>();
  n->id = node;
  n->handler.store(handler, std::memory_order_release);
  n->max_frame_bytes = options_.max_frame_bytes;
  n->opts = std::move(node_options);
  const int nshards = std::max(1, n->opts.shards);
  n->opts.shards = nshards;

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  n->listen_fd = fd;
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(n->opts.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument,
                  "bad listen host: " + options_.host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(fd, 128) != 0) return Errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return Errno("getsockname");
  }
  n->port = ntohs(addr.sin_port);

  for (int s = 0; s < nshards; ++s) {
    auto shard = std::make_unique<ServerShard>();
    shard->index = s;
    shard->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->wake_fd < 0) {
      return Errno("epoll/eventfd");
    }
    AddToEpoll(shard->epoll_fd, shard->wake_fd, EPOLLIN, kWakeTag);
    n->shards.push_back(std::move(shard));
  }
  // The listener lives on shard 0's reactor; accepted connections are
  // dealt round-robin to all shards.
  AddToEpoll(n->shards[0]->epoll_fd, n->listen_fd, EPOLLIN, kListenTag);

  int workers_per_shard = n->opts.workers_per_shard;
  if (workers_per_shard <= 0) {
    workers_per_shard =
        nshards == 1
            ? std::max(1, options_.workers_per_node)
            : std::max(2, options_.workers_per_node / nshards);
  }

  uint16_t bound = n->port;
  ServerNode* raw = n.get();
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    if (shutdown_) {
      return Status(StatusCode::kUnavailable, "network shut down");
    }
    if (nodes_.count(node) != 0) {
      return Status(StatusCode::kAlreadyExists, "node already registered");
    }
    // Threads spawn under nodes_mu_ so a racing Shutdown either refuses
    // this registration or sees the node (and joins it).
    for (auto& shard : raw->shards) {
      ServerShard* sh = shard.get();
      sh->io = std::thread([this, raw, sh] { ServerIoLoop(raw, sh); });
      sh->workers.reserve(size_t(workers_per_shard));
      for (int i = 0; i < workers_per_shard; ++i) {
        sh->workers.emplace_back(
            [this, raw, sh] { ServerWorkerLoop(raw, sh); });
      }
    }
    nodes_[node] = std::move(n);
  }
  {
    std::lock_guard<std::mutex> lock(client_mu_);
    peers_[node] = PeerAddr{options_.host, bound};
  }
  return bound;
}

void SocketNetwork::Crash(NodeId node) {
  std::unique_ptr<ServerNode> n;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) return;
    n = std::move(it->second);
    nodes_.erase(it);
  }
  SignalServerStop(n.get());
  // The IO threads never run handlers, so they exit promptly, closing the
  // listener and every accepted connection — clients see the connection
  // die and fail their in-flight requests, like a real machine crash.
  // Every shard's eventfd was signalled above, so no shard loop can stay
  // parked in epoll_wait — not even one whose mailbox/queue a blocked
  // worker will never drain.
  for (auto& shard : n->shards) {
    if (shard->io.joinable()) shard->io.join();
  }
  // Workers may be blocked inside a handler (e.g. a produce waiting on
  // replication); don't wait for them here — park the node for the final
  // join at Shutdown. Their responses are dropped.
  for (auto& shard : n->shards) shard->queue.Shutdown();
  std::lock_guard<std::mutex> lock(nodes_mu_);
  draining_.push_back(std::move(n));
}

Result<uint16_t> SocketNetwork::Restore(NodeId node, RpcHandler* handler) {
  NodeOptions opts;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    if (shutdown_) {
      return Status(StatusCode::kUnavailable, "network shut down");
    }
    auto it = nodes_.find(node);
    if (it != nodes_.end()) {
      // Not crashed: just swap the handler.
      it->second->handler.store(handler, std::memory_order_release);
      return it->second->port;
    }
    // Revive the node with the shape it had before the crash: the same
    // port (so remote peers' routes stay valid), shard count and router.
    for (auto d = draining_.rbegin(); d != draining_.rend(); ++d) {
      if ((*d)->id == node) {
        opts = (*d)->opts;
        opts.port = (*d)->port;
        break;
      }
    }
  }
  uint16_t preferred = opts.port;
  auto bound = Register(node, handler, opts);
  if (!bound.ok() && preferred != 0) {
    opts.port = 0;  // port taken meanwhile
    bound = Register(node, handler, std::move(opts));
  }
  return bound;
}

Result<uint16_t> SocketNetwork::Port(NodeId node) const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status(StatusCode::kNotFound, "node not registered");
  }
  return it->second->port;
}

void SocketNetwork::SetPeer(NodeId node, const std::string& host,
                            uint16_t port) {
  std::lock_guard<std::mutex> lock(client_mu_);
  peers_[node] = PeerAddr{host, port};
}

void SocketNetwork::WakeShard(ServerShard* shard) {
  if (!shard->wake_pending.exchange(true, std::memory_order_acq_rel)) {
    SignalEventFd(shard->wake_fd);
  }
}

void SocketNetwork::SignalServerStop(ServerNode* node) {
  node->stop.store(true, std::memory_order_release);
  // Signal every shard's eventfd directly (not via WakeShard): the stop
  // must land even when a shard's wake_pending flag is already set.
  for (auto& shard : node->shards) SignalEventFd(shard->wake_fd);
}

void SocketNetwork::ServerWorkerLoop(ServerNode* node, ServerShard* shard) {
  while (auto work = shard->queue.Pop()) {
    if (node->stop.load(std::memory_order_acquire)) continue;
    RpcHandler* handler = node->handler.load(std::memory_order_acquire);
    std::vector<std::byte> response = handler->HandleRpc(work->request);

    OutFrame frame;
    uint32_t len = uint32_t(kRequestIdBytes + response.size());
    std::memcpy(frame.header.data(), &len, 4);
    std::memcpy(frame.header.data() + 4, &work->request_id, 8);
    frame.owned = std::move(response);
    frame.total = kHeaderBytes + frame.owned.size();
    // The response goes back through the reactor owning the connection it
    // arrived on — possibly not this worker's shard when a router sent
    // the frame here.
    ServerShard* home = node->shards[size_t(work->conn_shard)].get();
    {
      std::lock_guard<std::mutex> lock(home->resp_mu);
      if (node->stop.load(std::memory_order_acquire)) continue;
      home->responses.emplace_back(work->conn_id, std::move(frame));
    }
    WakeShard(home);
  }
}

SocketNetwork::FlushStatus SocketNetwork::FlushFrameQueue(
    int fd, std::deque<OutFrame>& wq) {
  while (!wq.empty()) {
    iovec iov[kMaxIov];
    int niov = 0;
    for (const OutFrame& f : wq) {
      size_t skip = f.written;
      auto offer = [&](std::span<const std::byte> piece) {
        if (piece.empty() || niov == kMaxIov) return;
        if (skip >= piece.size()) {
          skip -= piece.size();
          return;
        }
        iov[niov].iov_base =
            const_cast<std::byte*>(piece.data() + skip);
        iov[niov].iov_len = piece.size() - skip;
        ++niov;
        skip = 0;
      };
      offer(f.header);
      offer(f.owned);
      for (const auto& p : f.pieces) offer(p);
      if (niov == kMaxIov) break;
    }

    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = size_t(niov);
    ssize_t sent = sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushStatus::kPartial;
      return FlushStatus::kError;
    }
    stats_.sendmsg_calls.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(uint64_t(sent), std::memory_order_relaxed);
    size_t rem = size_t(sent);
    while (rem > 0 && !wq.empty()) {
      OutFrame& f = wq.front();
      size_t left = f.total - f.written;
      if (rem >= left) {
        rem -= left;
        stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
        wq.pop_front();
      } else {
        f.written += rem;
        rem = 0;
      }
    }
  }
  return FlushStatus::kDrained;
}

void SocketNetwork::ServerFlushConn(ServerShard* shard, ServerConn* conn) {
  FlushStatus fs = FlushFrameQueue(conn->fd, conn->wq);
  if (fs == FlushStatus::kError) {
    // Peer is gone; drop the connection (the client side fails its
    // pending requests when it observes the close).
    (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    shard->conns.erase(conn->id);
    return;
  }
  bool need_write = fs == FlushStatus::kPartial;
  if (need_write != conn->want_write) {
    conn->want_write = need_write;
    ModEpoll(shard->epoll_fd, conn->fd,
             need_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN, conn->id);
  }
}

bool SocketNetwork::ServerReadConn(ServerNode* node, ServerShard* shard,
                                   ServerConn* conn) {
  auto destroy = [&] {
    (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    shard->conns.erase(conn->id);
    return false;
  };
  while (true) {
    EnsureReadRoom(conn->rbuf, conn->rlen);
    ssize_t n = read(conn->fd, conn->rbuf.data() + conn->rlen,
                     conn->rbuf.size() - conn->rlen);
    if (n > 0) {
      conn->rlen += size_t(n);
      stats_.bytes_received.fetch_add(uint64_t(n), std::memory_order_relaxed);
      continue;
    }
    if (n == 0) return destroy();  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return destroy();
  }
  // Decode complete request frames and hand them to the workers. With a
  // router and shards > 1 each frame is dispatched to the worker pool of
  // the shard that owns its data — decided here, at decode time, before
  // any queue — so a shared-nothing handler sees a streamlet's frames on
  // one shard regardless of which connection carried them.
  const int nshards = int(node->shards.size());
  while (conn->rlen - conn->rpos >= 4) {
    uint32_t len;
    std::memcpy(&len, conn->rbuf.data() + conn->rpos, 4);
    if (len < kRequestIdBytes || len > node->max_frame_bytes) {
      return destroy();  // corrupt framing
    }
    if (conn->rlen - conn->rpos < 4 + size_t(len)) break;
    ServerShard::Work work;
    work.conn_id = conn->id;
    work.conn_shard = shard->index;
    std::memcpy(&work.request_id, conn->rbuf.data() + conn->rpos + 4, 8);
    const std::byte* payload = conn->rbuf.data() + conn->rpos + kHeaderBytes;
    work.request.assign(payload, payload + (len - kRequestIdBytes));
    int target = shard->index;
    if (nshards > 1 && node->opts.router) {
      int routed = node->opts.router(
          std::span<const std::byte>(work.request), nshards);
      if (routed >= 0 && routed < nshards) target = routed;
    }
    node->shards[size_t(target)]->queue.Push(std::move(work));
    conn->rpos += 4 + size_t(len);
  }
  CompactReadBuffer(conn->rbuf, conn->rpos, conn->rlen);
  return true;
}

void SocketNetwork::CloseServerConns(ServerShard* shard) {
  for (auto& [_, conn] : shard->conns) close(conn->fd);
  shard->conns.clear();
  {
    std::lock_guard<std::mutex> lock(shard->resp_mu);
    for (auto& conn : shard->adopted) close(conn->fd);
    shard->adopted.clear();
  }
}

void SocketNetwork::ServerIoLoop(ServerNode* node, ServerShard* shard) {
  epoll_event events[64];
  while (true) {
    int nev = epoll_wait(shard->epoll_fd, events, 64, -1);
    if (nev < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (node->stop.load(std::memory_order_acquire)) break;
    bool stopped = false;
    for (int i = 0; i < nev; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kWakeTag) {
        std::function<void()> before, after;
        if (server_hooks_armed_.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> lock(server_hook_mu_);
          before = server_hook_before_drain_;
          after = server_hook_after_drain_;
        }
        if (before) before();
        // Drain strictly BEFORE clearing the pending flag — the same
        // ordering as the client wake path, for the same reason: the
        // eventfd read consumes every accumulated token, so clearing
        // first would let a concurrent WakeShard's token be eaten while
        // the flag stays set, and the next worker would skip its signal
        // with its response staged but unrouted (lost wakeup).
        DrainEventFd(shard->wake_fd);
        if (after) after();
        shard->wake_pending.store(false, std::memory_order_release);
        // Re-check stop: Crash/Shutdown signal the eventfd directly, and
        // the drain above may have just consumed that token alongside
        // worker wake tokens. stop is stored before the signal, so if we
        // ate the token we must see the flag here; a strand here would
        // leave this shard's loop (and a Crash joining it) stuck in
        // epoll_wait forever.
        if (node->stop.load(std::memory_order_acquire)) {
          stopped = true;
          break;
        }
      } else if (tag == kListenTag) {
        while (true) {
          int fd = accept4(node->listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          SetNoDelay(fd);
          auto conn = std::make_unique<ServerConn>();
          conn->fd = fd;
          // Deal connections round-robin across the shards; remote ones
          // are handed to their reactor through its staging list.
          ServerShard* target =
              node->shards[node->next_accept++ % node->shards.size()].get();
          conn->id = node->next_conn_id++;
          if (target == shard) {
            AddToEpoll(shard->epoll_fd, fd, EPOLLIN, conn->id);
            shard->conns[conn->id] = std::move(conn);
          } else {
            {
              std::lock_guard<std::mutex> lock(target->resp_mu);
              target->adopted.push_back(std::move(conn));
            }
            WakeShard(target);
          }
        }
      } else {
        auto it = shard->conns.find(tag);
        if (it == shard->conns.end()) continue;  // destroyed this batch
        ServerConn* conn = it->second.get();
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          (void)epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
          close(conn->fd);
          shard->conns.erase(it);
          continue;
        }
        if ((ev & EPOLLIN) != 0 && !ServerReadConn(node, shard, conn)) {
          continue;
        }
        if ((ev & EPOLLOUT) != 0) ServerFlushConn(shard, conn);
      }
    }
    if (stopped) break;
    // Adopt connections the acceptor assigned here, route staged worker
    // responses to their connections, then flush everything that has
    // queued frames in one vectored send each.
    std::vector<std::unique_ptr<ServerConn>> adopted;
    std::vector<std::pair<uint64_t, OutFrame>> batch;
    {
      std::lock_guard<std::mutex> lock(shard->resp_mu);
      adopted.swap(shard->adopted);
      batch.swap(shard->responses);
    }
    for (auto& conn : adopted) {
      AddToEpoll(shard->epoll_fd, conn->fd, EPOLLIN, conn->id);
      uint64_t id = conn->id;
      shard->conns[id] = std::move(conn);
    }
    for (auto& [conn_id, frame] : batch) {
      auto it = shard->conns.find(conn_id);
      if (it == shard->conns.end()) continue;  // conn died; drop response
      it->second->wq.push_back(std::move(frame));
    }
    for (auto it = shard->conns.begin(); it != shard->conns.end();) {
      ServerConn* conn = (it++)->second.get();  // flush may erase
      if (!conn->wq.empty() && !conn->want_write) {
        ServerFlushConn(shard, conn);
      }
    }
  }
  CloseServerConns(shard);
  if (shard->index == 0 && node->listen_fd >= 0) {
    close(node->listen_fd);
    node->listen_fd = -1;
  }
}

// ---------------------------------------------------------- client side

SocketNetwork::ClientConn* SocketNetwork::GetOrConnectLocked(NodeId to,
                                                             Status& error) {
  auto it = conns_.find(to);
  if (it != conns_.end()) return it->second.get();

  auto peer = peers_.find(to);
  if (peer == peers_.end()) {
    error = Status(StatusCode::kUnavailable, "no route to node");
    return nullptr;
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = Errno("socket");
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer->second.port);
  if (inet_pton(AF_INET, peer->second.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    error = Status(StatusCode::kInvalidArgument,
                   "bad peer host: " + peer->second.host);
    return nullptr;
  }
  // Blocking connect: instantaneous on loopback/LAN, and a dead peer
  // answers with ECONNREFUSED immediately — the kUnavailable the fault
  // tests expect.
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    close(fd);
    error = Status(StatusCode::kUnavailable,
                   std::string("connect: ") + std::strerror(errno));
    return nullptr;
  }
  SetNoDelay(fd);
  int flags = fcntl(fd, F_GETFL, 0);
  (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  auto conn = std::make_unique<ClientConn>();
  conn->dest = to;
  conn->fd = fd;
  ClientConn* raw = conn.get();
  AddToEpoll(client_epoll_fd_, fd, EPOLLIN, uint64_t(to) + kClientConnTagBase);
  conns_[to] = std::move(conn);
  stats_.connections_opened.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

std::future<Result<std::vector<std::byte>>> SocketNetwork::EnqueueLocked(
    ClientConn* conn, OutFrame frame, uint64_t request_id) {
  std::promise<Result<std::vector<std::byte>>> promise;
  auto future = promise.get_future();
  conn->pending.emplace(request_id, std::move(promise));
  conn->wq.push_back(std::move(frame));
  return future;
}

void SocketNetwork::WakeClient() {
  if (!client_wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    SignalEventFd(client_wake_fd_);
  }
}

void SocketNetwork::SetClientWakeHooksForTest(
    std::function<void()> before_drain, std::function<void()> after_drain) {
  std::lock_guard<std::mutex> lock(client_mu_);
  wake_hook_before_drain_ = std::move(before_drain);
  wake_hook_after_drain_ = std::move(after_drain);
}

void SocketNetwork::SignalClientStopForTest() {
  client_stop_.store(true, std::memory_order_release);
  SignalEventFd(client_wake_fd_);
}

void SocketNetwork::SetServerWakeHooksForTest(
    std::function<void()> before_drain, std::function<void()> after_drain) {
  std::lock_guard<std::mutex> lock(server_hook_mu_);
  server_hook_before_drain_ = std::move(before_drain);
  server_hook_after_drain_ = std::move(after_drain);
  server_hooks_armed_.store(
      server_hook_before_drain_ != nullptr ||
          server_hook_after_drain_ != nullptr,
      std::memory_order_release);
}

void SocketNetwork::InjectServerWakeForTest(NodeId node, int shard) {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  auto& shards = it->second->shards;
  if (shard < 0 || size_t(shard) >= shards.size()) return;
  WakeShard(shards[size_t(shard)].get());
}

void SocketNetwork::SignalServerStopForTest(NodeId node) {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  SignalServerStop(it->second.get());
}

void SocketNetwork::DestroyClientConnLocked(NodeId dest, const Status& why) {
  auto it = conns_.find(dest);
  if (it == conns_.end()) return;
  ClientConn* conn = it->second.get();
  for (auto& [id, promise] : conn->pending) {
    promise.set_value(why);
  }
  (void)epoll_ctl(client_epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conns_.erase(it);
}

void SocketNetwork::FlushClientConnLocked(ClientConn* conn) {
  FlushStatus fs = FlushFrameQueue(conn->fd, conn->wq);
  if (fs == FlushStatus::kError) {
    DestroyClientConnLocked(
        conn->dest, Status(StatusCode::kUnavailable, "connection lost"));
    return;
  }
  bool need_write = fs == FlushStatus::kPartial;
  if (need_write != conn->want_write) {
    conn->want_write = need_write;
    ModEpoll(client_epoll_fd_, conn->fd,
             need_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN,
             uint64_t(conn->dest) + kClientConnTagBase);
  }
}

bool SocketNetwork::ReadClientConnLocked(ClientConn* conn) {
  auto destroy = [&] {
    DestroyClientConnLocked(
        conn->dest, Status(StatusCode::kUnavailable, "connection lost"));
    return false;
  };
  while (true) {
    EnsureReadRoom(conn->rbuf, conn->rlen);
    ssize_t n = read(conn->fd, conn->rbuf.data() + conn->rlen,
                     conn->rbuf.size() - conn->rlen);
    if (n > 0) {
      conn->rlen += size_t(n);
      stats_.bytes_received.fetch_add(uint64_t(n), std::memory_order_relaxed);
      continue;
    }
    if (n == 0) return destroy();
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return destroy();
  }
  // Demultiplex response frames to their pending calls by request id.
  while (conn->rlen - conn->rpos >= 4) {
    uint32_t len;
    std::memcpy(&len, conn->rbuf.data() + conn->rpos, 4);
    if (len < kRequestIdBytes || len > options_.max_frame_bytes) {
      return destroy();
    }
    if (conn->rlen - conn->rpos < 4 + size_t(len)) break;
    uint64_t id;
    std::memcpy(&id, conn->rbuf.data() + conn->rpos + 4, 8);
    const std::byte* payload = conn->rbuf.data() + conn->rpos + kHeaderBytes;
    auto pending = conn->pending.find(id);
    if (pending != conn->pending.end()) {
      pending->second.set_value(std::vector<std::byte>(
          payload, payload + (len - kRequestIdBytes)));
      conn->pending.erase(pending);
    }
    conn->rpos += 4 + size_t(len);
  }
  CompactReadBuffer(conn->rbuf, conn->rpos, conn->rlen);
  return true;
}

void SocketNetwork::ClientIoLoop() {
  epoll_event events[64];
  while (true) {
    int nev = epoll_wait(client_epoll_fd_, events, 64, -1);
    if (nev < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(client_mu_);
    if (client_stop_.load(std::memory_order_acquire)) return;
    for (int i = 0; i < nev; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kWakeTag) {
        if (wake_hook_before_drain_) wake_hook_before_drain_();
        // Drain strictly BEFORE clearing the pending flag. The eventfd
        // read consumes every accumulated token, so clearing first would
        // let a concurrent WakeClient's token be eaten while the flag
        // stays set — and the next caller would skip its signal with its
        // frame unflushed (lost wakeup). With this order, any enqueue is
        // serialized by client_mu_ either before this pass (its frame is
        // flushed below) or after the clear (its WakeClient signals).
        DrainEventFd(client_wake_fd_);
        // The after-drain hook runs INSIDE the drain-to-clear window so a
        // test can inject a WakeClient at the exact point where the old
        // ordering (clear first, then drain) would eat its token and
        // strand the pending flag. With the correct order the injection
        // is a no-op: the flag is still set, so WakeClient skips its
        // signal, and the clear below leaves a clean slate.
        if (wake_hook_after_drain_) wake_hook_after_drain_();
        client_wake_pending_.store(false, std::memory_order_release);
        // Re-check stop: Shutdown signals the eventfd directly, and the
        // drain above may have just consumed that token. client_stop_ is
        // stored before the signal, so if we ate the token we must see
        // the flag here; if we didn't, the token survives and wakes the
        // next epoll_wait, where the top-of-pass check catches it.
        if (client_stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      NodeId dest = NodeId(tag - kClientConnTagBase);
      auto it = conns_.find(dest);
      if (it == conns_.end()) continue;  // destroyed earlier in this batch
      ClientConn* conn = it->second.get();
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        DestroyClientConnLocked(
            dest, Status(StatusCode::kUnavailable, "connection lost"));
        continue;
      }
      if ((ev & EPOLLIN) != 0 && !ReadClientConnLocked(conn)) continue;
      if ((ev & EPOLLOUT) != 0) FlushClientConnLocked(conn);
    }
    // Flush every connection with newly queued frames: frames enqueued
    // since the last pass coalesce into one vectored send here.
    for (auto it = conns_.begin(); it != conns_.end();) {
      ClientConn* conn = (it++)->second.get();  // flush may erase
      if (!conn->wq.empty() && !conn->want_write) {
        FlushClientConnLocked(conn);
      }
    }
  }
}

// ------------------------------------------------------------ call paths

std::future<Result<std::vector<std::byte>>> SocketNetwork::CallAsync(
    NodeId to, std::span<const std::byte> request) {
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  stats_.tx_copied_bytes.fetch_add(request.size(), std::memory_order_relaxed);
  OutFrame frame;
  frame.owned.assign(request.begin(), request.end());
  frame.total = kHeaderBytes + frame.owned.size();
  std::future<Result<std::vector<std::byte>>> future;
  {
    std::lock_guard<std::mutex> lock(client_mu_);
    if (client_stop_.load(std::memory_order_acquire)) {
      std::promise<Result<std::vector<std::byte>>> promise;
      promise.set_value(Status(StatusCode::kUnavailable, "network shut down"));
      return promise.get_future();
    }
    Status error = OkStatus();
    ClientConn* conn = GetOrConnectLocked(to, error);
    if (conn == nullptr) {
      std::promise<Result<std::vector<std::byte>>> promise;
      promise.set_value(error);
      return promise.get_future();
    }
    uint64_t id = next_request_id_++;
    uint32_t len = uint32_t(kRequestIdBytes + frame.owned.size());
    std::memcpy(frame.header.data(), &len, 4);
    std::memcpy(frame.header.data() + 4, &id, 8);
    future = EnqueueLocked(conn, std::move(frame), id);
  }
  WakeClient();
  return future;
}

std::future<Result<std::vector<std::byte>>> SocketNetwork::CallAsyncParts(
    NodeId to, const BytesRefParts& parts) {
  stats_.parts_calls.fetch_add(1, std::memory_order_relaxed);
  // Zero-copy send path: the pieces go from caller memory (segment
  // buffers, sealed chunks, the encoder's inline runs) straight into the
  // vectored send — nothing is materialized, so parts_copied_bytes and
  // tx_copied_bytes stay untouched.
  OutFrame frame;
  frame.pieces.assign(parts.pieces.begin(), parts.pieces.end());
  size_t payload = parts.total_size();
  frame.total = kHeaderBytes + payload;
  std::future<Result<std::vector<std::byte>>> future;
  {
    std::lock_guard<std::mutex> lock(client_mu_);
    if (client_stop_.load(std::memory_order_acquire)) {
      std::promise<Result<std::vector<std::byte>>> promise;
      promise.set_value(Status(StatusCode::kUnavailable, "network shut down"));
      return promise.get_future();
    }
    Status error = OkStatus();
    ClientConn* conn = GetOrConnectLocked(to, error);
    if (conn == nullptr) {
      std::promise<Result<std::vector<std::byte>>> promise;
      promise.set_value(error);
      return promise.get_future();
    }
    uint64_t id = next_request_id_++;
    uint32_t len = uint32_t(kRequestIdBytes + payload);
    std::memcpy(frame.header.data(), &len, 4);
    std::memcpy(frame.header.data() + 4, &id, 8);
    future = EnqueueLocked(conn, std::move(frame), id);
  }
  WakeClient();
  return future;
}

Result<std::vector<std::byte>> SocketNetwork::Call(
    NodeId to, std::span<const std::byte> request) {
  return CallAsync(to, request).get();
}

SocketNetwork::Stats SocketNetwork::GetStats() const {
  Stats out;
  out.calls = stats_.calls.load(std::memory_order_relaxed);
  out.parts_calls = stats_.parts_calls.load(std::memory_order_relaxed);
  out.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  out.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  out.connections_opened =
      stats_.connections_opened.load(std::memory_order_relaxed);
  out.sendmsg_calls = stats_.sendmsg_calls.load(std::memory_order_relaxed);
  out.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  out.tx_copied_bytes = stats_.tx_copied_bytes.load(std::memory_order_relaxed);
  out.parts_copied_bytes =
      stats_.parts_copied_bytes.load(std::memory_order_relaxed);
  return out;
}

}  // namespace kera::rpc
