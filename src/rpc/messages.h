// RPC message definitions for client<->broker, broker<->backup and
// coordinator traffic. Every message has Encode(Writer&) and a static
// Decode(Reader&); chunk payloads are carried as zero-copy spans into the
// request buffer.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rpc/serialize.h"

namespace kera::rpc {

enum class Opcode : uint16_t {
  kProduce = 1,
  kConsume = 2,
  kCreateStream = 3,
  kGetStreamInfo = 4,
  kReplicate = 5,
  kListRecoverySegments = 6,
  kReadRecoverySegment = 7,
  kSealStream = 8,
  kEvacuateBackupSegments = 9,
  kReadRecoverySegmentBatch = 10,
  kAllocateProducer = 11,
  kCommitOffsets = 12,
  kFetchOffsets = 13,
};

/// Builds a full request frame: u16 opcode then the encoded body.
[[nodiscard]] std::vector<std::byte> Frame(Opcode op, const Writer& body);

/// Splits a request frame into opcode + body span.
[[nodiscard]] Status ParseFrame(std::span<const std::byte> frame, Opcode& op,
                                std::span<const std::byte>& body);

/// Exposes a request frame (u16 opcode + encoded body) as scatter-gather
/// parts without materializing it — the vectored-send analog of Frame().
/// `opcode_storage` receives the encoded opcode; it, `body`, and every
/// buffer `body` references by BytesRef must outlive the parts' use (for
/// Network::CallAsyncParts: until the returned future is ready).
[[nodiscard]] BytesRefParts FrameAsParts(
    Opcode op, const Writer& body, std::array<std::byte, 2>& opcode_storage);

/// Streamlet-affine shard routing for the shared-nothing broker runtime:
/// peeks the routing key out of a raw request frame (u16 opcode + body)
/// WITHOUT decoding it, so the transport's IO loop can pick the target
/// shard's queue at frame-decode time, before any shared handoff.
///
///   kProduce    -> first chunk's streamlet id % shards
///   kConsume    -> first entry's streamlet id % shards
///   kReplicate  -> vlog id % shards (a vlog is owned by one shard)
///   everything else (admin, recovery reads) -> shard 0
///
/// Must agree with Broker's shard map (streamlet % shards) or every frame
/// pays a cross-shard hop; correctness never depends on it — the broker
/// locks per-shard state by the key actually touched. Truncated or
/// malformed frames route to shard 0 and fail in the decoder there.
[[nodiscard]] int RouteFrameToShard(std::span<const std::byte> frame,
                                    int shards);

// ---------------------------------------------------------------- produce

struct ProduceRequest {
  ProducerId producer = 0;
  StreamId stream = 0;
  /// Recovery replay: chunks carry their original [group, segment, index]
  /// attributes and must be re-ingested into their respective groups so
  /// the partition structure is reconstructed consistently (§IV.B).
  bool recovery = false;
  /// Full chunk frames (chunk header + payload; 56 bytes classic, 64 with
  /// the exactly-once epoch tail) — the broker appends these bytes to
  /// group segments without re-encoding.
  std::vector<std::span<const std::byte>> chunks;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ProduceRequest> Decode(Reader& r);
};

struct ProduceResponse {
  StatusCode status = StatusCode::kOk;
  uint32_t appended = 0;    // chunks newly appended and durably replicated
  uint32_t duplicates = 0;  // chunks dropped by exactly-once dedup

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ProduceResponse> Decode(Reader& r);
};

// ---------------------------------------------------------------- consume

struct ConsumeEntryRequest {
  StreamletId streamlet = 0;
  GroupId group = 0;
  uint64_t start_chunk = 0;  // first group_chunk_index wanted
  uint32_t max_chunks = 1;
};

struct ConsumeRequest {
  StreamId stream = 0;
  uint32_t max_bytes = 1u << 20;
  std::vector<ConsumeEntryRequest> entries;
  /// Long-poll: the broker parks the request until at least
  /// max(min_bytes, 1) bytes of chunk data are available for the requested
  /// entries, the stream reaches a terminal state for all of them, or the
  /// wait elapses. 0 preserves the original immediate-return behavior.
  /// Both fields ride at the end of the frame so old-format requests
  /// (which simply omit them) decode with the 0 defaults.
  uint64_t max_wait_us = 0;
  uint32_t min_bytes = 0;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ConsumeRequest> Decode(Reader& r);
};

struct ConsumeEntryResponse {
  StreamletId streamlet = 0;
  GroupId group = 0;
  uint64_t next_chunk = 0;   // cursor after the returned chunks
  bool group_exists = false; // group not created yet -> retry later
  bool group_closed = false; // true + drained => advance to next group id
  bool stream_sealed = false;  // bounded stream: no group will ever follow
  uint32_t groups_created = 0;  // streamlet's group count so far (groups
                                // are independently consumable units)
  std::vector<std::span<const std::byte>> chunks;  // full chunk frames
};

struct ConsumeResponse {
  StatusCode status = StatusCode::kOk;
  std::vector<ConsumeEntryResponse> entries;
  /// Keep-alives for the zero-copy `chunks` spans: segment read pins and
  /// cold-cache entries stay valid for the life of the response object.
  /// Not serialized — a decoded response owns its bytes already.
  std::vector<std::shared_ptr<const void>> holds;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ConsumeResponse> Decode(Reader& r);
};

// ----------------------------------------------------------- coordinator

/// How virtual logs are associated with a stream's partitions (§V):
enum class VlogPolicy : uint8_t {
  /// All streams on a broker share the broker's pool of N virtual logs
  /// (streamlet hashes into the pool). Figures 8, 10, 12-16.
  kSharedPerBroker = 0,
  /// One virtual log per (streamlet, active-group slot): mimics Kafka's
  /// one-log-per-partition when Q == 1; Figures 9, 11, 17-21.
  kPerSubPartition = 1,
};

struct StreamOptions {
  uint32_t num_streamlets = 1;
  uint32_t active_groups_per_streamlet = 1;  // Q
  uint32_t replication_factor = 1;
  VlogPolicy vlog_policy = VlogPolicy::kSharedPerBroker;
};

struct CreateStreamRequest {
  std::string name;
  StreamOptions options;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<CreateStreamRequest> Decode(Reader& r);
};

struct StreamInfo {
  StreamId stream = 0;
  StreamOptions options;
  /// Bounded stream ("object", §IV.A): sealed streams accept no appends.
  bool sealed = false;
  /// Broker (leader) for each streamlet, indexed by StreamletId.
  std::vector<NodeId> streamlet_brokers;
};

struct CreateStreamResponse {
  StatusCode status = StatusCode::kOk;
  StreamInfo info;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<CreateStreamResponse> Decode(Reader& r);
};

struct GetStreamInfoRequest {
  std::string name;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<GetStreamInfoRequest> Decode(Reader& r);
};

struct GetStreamInfoResponse {
  StatusCode status = StatusCode::kOk;
  StreamInfo info;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<GetStreamInfoResponse> Decode(Reader& r);
};

/// Seals a stream, turning it into a bounded object: producers are
/// rejected afterwards and consumers observe end-of-stream once drained.
struct SealStreamRequest {
  std::string name;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<SealStreamRequest> Decode(Reader& r);
};

struct SealStreamResponse {
  StatusCode status = StatusCode::kOk;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<SealStreamResponse> Decode(Reader& r);
};

// ------------------------------------------------------------- replicate

struct ReplicateRequest {
  NodeId primary = 0;  // broker that owns the virtual log
  VlogId vlog = 0;
  VirtualSegmentId vseg = 0;
  uint64_t start_offset = 0;  // byte offset within the replicated segment
  uint32_t chunk_count = 0;
  uint32_t checksum_after = 0;  // virtual segment header checksum after batch
  bool seals = false;           // virtual segment is complete after batch
  std::span<const std::byte> payload;  // concatenated chunk frames
  /// Encode-side alternative to `payload`: when non-empty, the payload is
  /// the concatenation of these parts, referenced straight from segment
  /// memory (one length prefix on the wire — decoders still see a single
  /// `payload` span).
  std::vector<std::span<const std::byte>> payload_parts;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ReplicateRequest> Decode(Reader& r);
};

struct ReplicateResponse {
  StatusCode status = StatusCode::kOk;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ReplicateResponse> Decode(Reader& r);
};

// --------------------------------------------------------------- recovery

struct RecoverySegmentDescriptor {
  NodeId primary = 0;
  VlogId vlog = 0;
  VirtualSegmentId vseg = 0;
  uint32_t chunk_count = 0;
  bool sealed = false;
};

struct ListRecoverySegmentsRequest {
  NodeId crashed = 0;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ListRecoverySegmentsRequest> Decode(Reader& r);
};

struct ListRecoverySegmentsResponse {
  StatusCode status = StatusCode::kOk;
  std::vector<RecoverySegmentDescriptor> segments;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ListRecoverySegmentsResponse> Decode(Reader& r);
};

struct ReadRecoverySegmentRequest {
  NodeId crashed = 0;
  VlogId vlog = 0;
  VirtualSegmentId vseg = 0;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ReadRecoverySegmentRequest> Decode(Reader& r);
};

struct ReadRecoverySegmentResponse {
  StatusCode status = StatusCode::kOk;
  uint32_t chunk_count = 0;
  std::span<const std::byte> payload;  // concatenated chunk frames

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ReadRecoverySegmentResponse> Decode(Reader& r);
};

/// Coordinator -> backup: read several of a crashed primary's virtual
/// segments in ONE round trip (parallel recovery pulls whole batches per
/// source backup instead of one RPC per segment — the round-trip count
/// drops by the batch factor).
struct ReadRecoverySegmentBatchRequest {
  NodeId crashed = 0;
  struct Item {
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
  };
  std::vector<Item> items;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ReadRecoverySegmentBatchRequest> Decode(
      Reader& r);
};

struct ReadRecoverySegmentBatchResponse {
  StatusCode status = StatusCode::kOk;  // framing-level status
  struct Item {
    StatusCode status = StatusCode::kOk;  // per-segment read status
    VlogId vlog = 0;
    VirtualSegmentId vseg = 0;
    uint32_t chunk_count = 0;
    std::span<const std::byte> payload;  // concatenated chunk frames
  };
  std::vector<Item> items;  // same order as the request

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<ReadRecoverySegmentBatchResponse> Decode(
      Reader& r);
};

/// Coordinator -> backup, after recovery replay re-produced the crashed
/// primary's data at its new leaders: drop every copy held for `primary`
/// (their log records become GC-collectable garbage).
struct EvacuateBackupSegmentsRequest {
  NodeId primary = 0;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<EvacuateBackupSegmentsRequest> Decode(Reader& r);
};

struct EvacuateBackupSegmentsResponse {
  StatusCode status = StatusCode::kOk;
  uint32_t dropped = 0;  // copies evacuated

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<EvacuateBackupSegmentsResponse> Decode(Reader& r);
};

// ------------------------------------------------------------ exactly-once

/// Client -> coordinator: allocate (or re-allocate) an idempotent-producer
/// session. Re-allocating an existing producer id bumps its epoch, fencing
/// any zombie still stamping chunks with the previous epoch.
struct AllocateProducerRequest {
  ProducerId producer = 0;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<AllocateProducerRequest> Decode(Reader& r);
};

struct AllocateProducerResponse {
  StatusCode status = StatusCode::kOk;
  ProducerId producer = 0;
  uint32_t epoch = 0;  // >= 1 on success

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<AllocateProducerResponse> Decode(Reader& r);
};

/// Client -> broker: durably commit a consumer's cursor positions. The
/// broker persists each entry as a flagged system chunk appended through
/// the ordinary produce path of the entry's streamlet (so commits
/// replicate, spill and recover exactly like data). `commit_seq` must be
/// monotonically increasing per consumer: retries of a lost ack carry the
/// same value and dedup server-side.
struct CommitOffsetsRequest {
  StreamId stream = 0;
  uint32_t consumer = 0;
  uint64_t commit_seq = 0;
  /// Consumer session epoch from AllocateProducer (under the consumer's
  /// system producer id). A restarted consumer's commit_seq restarts at 1;
  /// the epoch bump keeps those commits from classifying as duplicates of
  /// the previous session's. 0 = no epoch (single-session consumers).
  uint32_t epoch = 0;
  struct Entry {
    StreamletId streamlet = 0;
    GroupId group = 0;       // cursor: next group to read...
    uint64_t next_chunk = 0; // ...and next chunk index within it
  };
  std::vector<Entry> entries;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<CommitOffsetsRequest> Decode(Reader& r);
};

struct CommitOffsetsResponse {
  StatusCode status = StatusCode::kOk;
  uint32_t committed = 0;  // entries now durable (appended or deduped)

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<CommitOffsetsResponse> Decode(Reader& r);
};

/// Client -> broker: read back the last durably committed cursor for each
/// requested streamlet of a consumer (restart resume point).
struct FetchOffsetsRequest {
  StreamId stream = 0;
  uint32_t consumer = 0;
  std::vector<StreamletId> streamlets;

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<FetchOffsetsRequest> Decode(Reader& r);
};

struct FetchOffsetsResponse {
  StatusCode status = StatusCode::kOk;
  struct Entry {
    StreamletId streamlet = 0;
    bool found = false;  // false: no commit recorded for this streamlet
    GroupId group = 0;
    uint64_t next_chunk = 0;
  };
  std::vector<Entry> entries;  // same order as the request

  void Encode(Writer& w) const;
  [[nodiscard]] static Result<FetchOffsetsResponse> Decode(Reader& r);
};

}  // namespace kera::rpc
