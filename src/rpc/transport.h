// Transport layer: how RPC frames move between nodes.
//
// Deployments:
//  - DirectNetwork: synchronous in-process dispatch; deterministic, used
//    by unit tests and by the DES harness (which adds its own timing).
//  - ThreadedNetwork: RAMCloud-style dispatch/worker threading — each node
//    has a request queue and a pool of worker threads; callers get
//    futures. Used by the MiniCluster and the examples.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/serialize.h"

namespace kera::rpc {

/// A node-resident service that handles raw RPC frames.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  /// Handles one framed request (opcode + body) and returns the framed
  /// response body. Must be thread-safe in threaded deployments.
  [[nodiscard]] virtual std::vector<std::byte> HandleRpc(
      std::span<const std::byte> request) = 0;
};

class Network {
 public:
  virtual ~Network() = default;

  /// Synchronous call; kUnavailable if the node is not registered (or has
  /// been "crashed" by a fault-injection test).
  [[nodiscard]] virtual Result<std::vector<std::byte>> Call(
      NodeId to, std::span<const std::byte> request) = 0;

  /// Asynchronous call (parallel replication to multiple backups).
  /// Implementations consume `request` before returning; the caller's
  /// buffer need not outlive the call.
  [[nodiscard]] virtual std::future<Result<std::vector<std::byte>>> CallAsync(
      NodeId to, std::span<const std::byte> request) = 0;

  /// Vectored asynchronous call: the request frame is the concatenation of
  /// `parts.pieces`, referencing caller-owned memory (segment buffers,
  /// sealed chunk frames, a live Writer). Unlike CallAsync, the referenced
  /// memory must stay alive and unchanged until the returned future is
  /// ready. The default materializes the frame once and forwards to
  /// CallAsync; transports with scatter-gather sends (SocketNetwork's
  /// writev path) override it and never copy the payload.
  [[nodiscard]] virtual std::future<Result<std::vector<std::byte>>>
  CallAsyncParts(NodeId to, const BytesRefParts& parts);

  /// Payload bytes copied by the base-class CallAsyncParts fallback above
  /// (the PR 2 "frame materialization" copy). Transports that send parts
  /// frames with writev never add to it — tests pin the produce/replicate
  /// parts path to zero materialization copies with this counter.
  [[nodiscard]] uint64_t materialized_parts_bytes() const {
    return materialized_parts_bytes_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<uint64_t> materialized_parts_bytes_{0};
};

/// Synchronous direct-dispatch network. Registration is not thread-safe;
/// do it before issuing calls. Crash(node) makes subsequent calls fail
/// with kUnavailable (fault injection).
class DirectNetwork final : public Network {
 public:
  void Register(NodeId node, RpcHandler* handler);
  void Crash(NodeId node);
  void Restore(NodeId node, RpcHandler* handler);

  Result<std::vector<std::byte>> Call(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsync(
      NodeId to, std::span<const std::byte> request) override;

  struct Stats {
    uint64_t calls = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
  };
  [[nodiscard]] Stats GetStats() const {
    Stats out;
    out.calls = calls_.load(std::memory_order_relaxed);
    out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::map<NodeId, RpcHandler*> handlers_;
  // Relaxed atomics: handlers may be invoked from concurrent callers (the
  // DES harness and tests drive one DirectNetwork from several threads).
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

/// Fault-injection decorator: fails a configurable fraction of calls with
/// kUnavailable (before delivery — the request is lost, as with a dropped
/// TCP connection) or after delivery (the response is lost: the handler
/// ran but the caller sees a failure, which is how duplicate
/// retransmissions arise). Deterministic given the seed.
class FlakyNetwork final : public Network {
 public:
  struct Options {
    /// Probability a call is dropped before reaching the handler.
    double drop_request = 0.0;
    /// Probability the response is lost after the handler ran.
    double drop_response = 0.0;
    uint64_t seed = 1;
  };
  FlakyNetwork(Network& inner, Options options);

  Result<std::vector<std::byte>> Call(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsync(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsyncParts(
      NodeId to, const BytesRefParts& parts) override;

  struct Stats {
    uint64_t calls = 0;
    uint64_t dropped_requests = 0;
    uint64_t dropped_responses = 0;
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  /// Draws the two fault coins for one call (under mu_, so fault patterns
  /// stay deterministic in issue order given the seed).
  void DrawCoins(bool& drop_request, bool& drop_response);
  /// Wraps an in-flight inner future so the response-drop coin is applied
  /// when the result is consumed, not at issue time.
  std::future<Result<std::vector<std::byte>>> ApplyResponseCoin(
      std::future<Result<std::vector<std::byte>>> inner, bool drop_response);

  Network& inner_;
  const Options options_;
  mutable std::mutex mu_;
  uint64_t rng_state_;
  Stats stats_;
};

/// Dispatch/worker threaded network: each registered node owns a request
/// queue and `workers` threads draining it.
class ThreadedNetwork final : public Network {
 public:
  explicit ThreadedNetwork(int workers_per_node = 4);
  ~ThreadedNetwork() override;

  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  /// Registers a node and spawns its workers. Refused (no-op) after
  /// Shutdown — late registration would spawn workers nobody joins.
  void Register(NodeId node, RpcHandler* handler);

  /// Fault injection: stop serving a node. In-flight requests complete;
  /// new calls fail with kUnavailable.
  void Crash(NodeId node);

  /// Fault injection: serve a crashed (or never-registered) node again.
  void Restore(NodeId node, RpcHandler* handler);

  Result<std::vector<std::byte>> Call(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsync(
      NodeId to, std::span<const std::byte> request) override;

  void Shutdown();

 private:
  struct Work {
    std::vector<std::byte> request;
    std::promise<Result<std::vector<std::byte>>> promise;
  };
  struct NodeState {
    // Atomic: Restore() swaps the handler while workers are draining.
    std::atomic<RpcHandler*> handler{nullptr};
    BlockingQueue<std::unique_ptr<Work>> queue;
    std::vector<std::thread> workers;
    std::atomic<bool> crashed{false};
  };

  const int workers_per_node_;
  mutable std::mutex mu_;
  std::map<NodeId, std::unique_ptr<NodeState>> nodes_;
  bool shutdown_ = false;
};

}  // namespace kera::rpc
