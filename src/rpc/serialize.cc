#include "rpc/serialize.h"

#include <cstring>

namespace kera::rpc {

Status Reader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status(StatusCode::kCorruption, "rpc: truncated message");
  }
  return OkStatus();
}

Status Reader::U8(uint8_t& v) {
  KERA_RETURN_IF_ERROR(Need(1));
  v = uint8_t(data_[pos_]);
  pos_ += 1;
  return OkStatus();
}

Status Reader::U16(uint16_t& v) {
  KERA_RETURN_IF_ERROR(Need(2));
  std::memcpy(&v, data_.data() + pos_, 2);
  pos_ += 2;
  return OkStatus();
}

Status Reader::U32(uint32_t& v) {
  KERA_RETURN_IF_ERROR(Need(4));
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return OkStatus();
}

Status Reader::U64(uint64_t& v) {
  KERA_RETURN_IF_ERROR(Need(8));
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return OkStatus();
}

Status Reader::Bool(bool& v) {
  uint8_t b = 0;
  KERA_RETURN_IF_ERROR(U8(b));
  v = b != 0;
  return OkStatus();
}

Status Reader::Bytes(std::span<const std::byte>& out) {
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(U32(n));
  KERA_RETURN_IF_ERROR(Need(n));
  out = data_.subspan(pos_, n);
  pos_ += n;
  return OkStatus();
}

Status Reader::Str(std::string& out) {
  std::span<const std::byte> b;
  KERA_RETURN_IF_ERROR(Bytes(b));
  out.assign(reinterpret_cast<const char*>(b.data()), b.size());
  return OkStatus();
}

}  // namespace kera::rpc
