#include "rpc/messages.h"

#include <cstring>

#include "wire/chunk.h"
#include "wire/layout.h"

namespace kera::rpc {

std::vector<std::byte> Frame(Opcode op, const Writer& body) {
  std::vector<std::byte> frame;
  frame.reserve(2 + body.size());
  uint16_t raw = uint16_t(op);
  const auto* p = reinterpret_cast<const std::byte*>(&raw);
  frame.insert(frame.end(), p, p + 2);
  body.AppendTo(frame);
  return frame;
}

BytesRefParts FrameAsParts(Opcode op, const Writer& body,
                           std::array<std::byte, 2>& opcode_storage) {
  uint16_t raw = uint16_t(op);
  std::memcpy(opcode_storage.data(), &raw, 2);
  BytesRefParts parts;
  parts.pieces.push_back(opcode_storage);
  body.CollectPieces(parts);
  return parts;
}

Status ParseFrame(std::span<const std::byte> frame, Opcode& op,
                  std::span<const std::byte>& body) {
  if (frame.size() < 2) {
    return Status(StatusCode::kCorruption, "rpc: short frame");
  }
  uint16_t raw;
  Reader r(frame);
  KERA_RETURN_IF_ERROR(r.U16(raw));
  op = Opcode(raw);
  body = frame.subspan(2);
  return OkStatus();
}

int RouteFrameToShard(std::span<const std::byte> frame, int shards) {
  if (shards <= 1 || frame.size() < 2) return 0;
  const std::byte* p = frame.data();
  switch (Opcode(wire::LoadU16(p))) {
    case Opcode::kProduce: {
      // Body: u32 producer, u64 stream, u8 recovery, u32 chunk count, then
      // per chunk [u32 len][chunk frame]. The first chunk's streamlet id
      // sits at a fixed offset inside its 56-byte header.
      constexpr size_t kFirstChunk = 2 + 4 + 8 + 1 + 4 + 4;
      constexpr size_t kStreamletOff =
          kFirstChunk + chunk_offsets::kStreamletId;
      if (frame.size() < kStreamletOff + 4) return 0;
      if (wire::LoadU32(p + 2 + 4 + 8 + 1) == 0) return 0;  // no chunks
      return int(wire::LoadU32(p + kStreamletOff) % uint32_t(shards));
    }
    case Opcode::kConsume: {
      // Body: u64 stream, u32 max_bytes, u32 entry count, then per entry
      // [u32 streamlet, ...]. Route by the first entry's streamlet; a
      // request spanning shards is still handled correctly, just counted
      // as cross-shard by the broker.
      constexpr size_t kFirstEntry = 2 + 8 + 4 + 4;
      if (frame.size() < kFirstEntry + 4) return 0;
      if (wire::LoadU32(p + 2 + 8 + 4) == 0) return 0;  // no entries
      return int(wire::LoadU32(p + kFirstEntry) % uint32_t(shards));
    }
    case Opcode::kReplicate: {
      // Body: u32 primary, u32 vlog, ... — a virtual log is pinned to one
      // shard on the primary, so routing its replicate stream by vlog id
      // keeps per-vseg processing shard-affine on the backup too.
      if (frame.size() < 2 + 4 + 4) return 0;
      return int(wire::LoadU32(p + 2 + 4) % uint32_t(shards));
    }
    case Opcode::kCommitOffsets: {
      // Body: u64 stream, u32 consumer, u64 commit_seq, u32 epoch,
      // u32 entry count, then per entry [u32 streamlet, ...]. Route by the
      // first entry's streamlet (the commit chunk appends through that
      // streamlet's produce path); multi-streamlet commits are handled
      // correctly either way — the broker locks per-entry shard state.
      constexpr size_t kFirstEntry = 2 + 8 + 4 + 8 + 4 + 4;
      if (frame.size() < kFirstEntry + 4) return 0;
      if (wire::LoadU32(p + 2 + 8 + 4 + 8 + 4) == 0) return 0;  // no entries
      return int(wire::LoadU32(p + kFirstEntry) % uint32_t(shards));
    }
    case Opcode::kFetchOffsets: {
      // Body: u64 stream, u32 consumer, u32 count, then u32 streamlets[].
      constexpr size_t kFirstStreamlet = 2 + 8 + 4 + 4;
      if (frame.size() < kFirstStreamlet + 4) return 0;
      if (wire::LoadU32(p + 2 + 8 + 4) == 0) return 0;  // no streamlets
      return int(wire::LoadU32(p + kFirstStreamlet) % uint32_t(shards));
    }
    default:
      // Admin/recovery traffic is rare and coordinator-driven: shard 0.
      return 0;
  }
}


namespace {
/// Guards vector reservations against hostile counts: a decoded element
/// count is only plausible if at least `min_element_bytes` per element
/// remain in the buffer.
[[nodiscard]] Status CheckCount(const Reader& r, uint32_t n,
                                size_t min_element_bytes) {
  if (size_t(n) * min_element_bytes > r.remaining()) {
    return Status(StatusCode::kCorruption, "rpc: implausible element count");
  }
  return OkStatus();
}
}  // namespace

// ---------------------------------------------------------------- produce

void ProduceRequest::Encode(Writer& w) const {
  w.U32(producer);
  w.U64(stream);
  w.Bool(recovery);
  w.U32(uint32_t(chunks.size()));
  for (const auto& c : chunks) w.BytesRef(c);
}

Result<ProduceRequest> ProduceRequest::Decode(Reader& r) {
  ProduceRequest req;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U32(req.producer));
  KERA_RETURN_IF_ERROR(r.U64(req.stream));
  KERA_RETURN_IF_ERROR(r.Bool(req.recovery));
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 4));  // length prefix per chunk
  req.chunks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::span<const std::byte> c;
    KERA_RETURN_IF_ERROR(r.Bytes(c));
    req.chunks.push_back(c);
  }
  return req;
}

void ProduceResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(appended);
  w.U32(duplicates);
}

Result<ProduceResponse> ProduceResponse::Decode(Reader& r) {
  ProduceResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(resp.appended));
  KERA_RETURN_IF_ERROR(r.U32(resp.duplicates));
  return resp;
}

// ---------------------------------------------------------------- consume

void ConsumeRequest::Encode(Writer& w) const {
  w.U64(stream);
  w.U32(max_bytes);
  w.U32(uint32_t(entries.size()));
  for (const auto& e : entries) {
    w.U32(e.streamlet);
    w.U32(e.group);
    w.U64(e.start_chunk);
    w.U32(e.max_chunks);
  }
  w.U64(max_wait_us);
  w.U32(min_bytes);
}

Result<ConsumeRequest> ConsumeRequest::Decode(Reader& r) {
  ConsumeRequest req;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U64(req.stream));
  KERA_RETURN_IF_ERROR(r.U32(req.max_bytes));
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 20));  // fixed entry size
  req.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ConsumeEntryRequest e;
    KERA_RETURN_IF_ERROR(r.U32(e.streamlet));
    KERA_RETURN_IF_ERROR(r.U32(e.group));
    KERA_RETURN_IF_ERROR(r.U64(e.start_chunk));
    KERA_RETURN_IF_ERROR(r.U32(e.max_chunks));
    req.entries.push_back(e);
  }
  // Version guard: pre-long-poll requests end here; the absent fields mean
  // "return immediately", which is exactly what those senders expect.
  if (r.AtEnd()) return req;
  KERA_RETURN_IF_ERROR(r.U64(req.max_wait_us));
  KERA_RETURN_IF_ERROR(r.U32(req.min_bytes));
  return req;
}

void ConsumeResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(uint32_t(entries.size()));
  for (const auto& e : entries) {
    w.U32(e.streamlet);
    w.U32(e.group);
    w.U64(e.next_chunk);
    w.Bool(e.group_exists);
    w.Bool(e.group_closed);
    w.Bool(e.stream_sealed);
    w.U32(e.groups_created);
    w.U32(uint32_t(e.chunks.size()));
    for (const auto& c : e.chunks) w.BytesRef(c);
  }
}

Result<ConsumeResponse> ConsumeResponse::Decode(Reader& r) {
  ConsumeResponse resp;
  uint8_t code = 0;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 22));
  resp.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ConsumeEntryResponse e;
    uint32_t nchunks = 0;
    KERA_RETURN_IF_ERROR(r.U32(e.streamlet));
    KERA_RETURN_IF_ERROR(r.U32(e.group));
    KERA_RETURN_IF_ERROR(r.U64(e.next_chunk));
    KERA_RETURN_IF_ERROR(r.Bool(e.group_exists));
    KERA_RETURN_IF_ERROR(r.Bool(e.group_closed));
    KERA_RETURN_IF_ERROR(r.Bool(e.stream_sealed));
    KERA_RETURN_IF_ERROR(r.U32(e.groups_created));
    KERA_RETURN_IF_ERROR(r.U32(nchunks));
    KERA_RETURN_IF_ERROR(CheckCount(r, nchunks, 4));
    e.chunks.reserve(nchunks);
    for (uint32_t j = 0; j < nchunks; ++j) {
      std::span<const std::byte> c;
      KERA_RETURN_IF_ERROR(r.Bytes(c));
      e.chunks.push_back(c);
    }
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

// ----------------------------------------------------------- coordinator

namespace {
void EncodeOptions(Writer& w, const StreamOptions& o) {
  w.U32(o.num_streamlets);
  w.U32(o.active_groups_per_streamlet);
  w.U32(o.replication_factor);
  w.U8(uint8_t(o.vlog_policy));
}

Status DecodeOptions(Reader& r, StreamOptions& o) {
  uint8_t policy = 0;
  KERA_RETURN_IF_ERROR(r.U32(o.num_streamlets));
  KERA_RETURN_IF_ERROR(r.U32(o.active_groups_per_streamlet));
  KERA_RETURN_IF_ERROR(r.U32(o.replication_factor));
  KERA_RETURN_IF_ERROR(r.U8(policy));
  o.vlog_policy = VlogPolicy(policy);
  return OkStatus();
}

void EncodeInfo(Writer& w, const StreamInfo& info) {
  w.U64(info.stream);
  EncodeOptions(w, info.options);
  w.Bool(info.sealed);
  w.U32(uint32_t(info.streamlet_brokers.size()));
  for (NodeId n : info.streamlet_brokers) w.U32(n);
}

Status DecodeInfo(Reader& r, StreamInfo& info) {
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U64(info.stream));
  KERA_RETURN_IF_ERROR(DecodeOptions(r, info.options));
  KERA_RETURN_IF_ERROR(r.Bool(info.sealed));
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 4));
  info.streamlet_brokers.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    KERA_RETURN_IF_ERROR(r.U32(info.streamlet_brokers[i]));
  }
  return OkStatus();
}
}  // namespace

void CreateStreamRequest::Encode(Writer& w) const {
  w.Str(name);
  EncodeOptions(w, options);
}

Result<CreateStreamRequest> CreateStreamRequest::Decode(Reader& r) {
  CreateStreamRequest req;
  KERA_RETURN_IF_ERROR(r.Str(req.name));
  KERA_RETURN_IF_ERROR(DecodeOptions(r, req.options));
  return req;
}

void CreateStreamResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  EncodeInfo(w, info);
}

Result<CreateStreamResponse> CreateStreamResponse::Decode(Reader& r) {
  CreateStreamResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(DecodeInfo(r, resp.info));
  return resp;
}

void GetStreamInfoRequest::Encode(Writer& w) const { w.Str(name); }

Result<GetStreamInfoRequest> GetStreamInfoRequest::Decode(Reader& r) {
  GetStreamInfoRequest req;
  KERA_RETURN_IF_ERROR(r.Str(req.name));
  return req;
}

void GetStreamInfoResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  EncodeInfo(w, info);
}

Result<GetStreamInfoResponse> GetStreamInfoResponse::Decode(Reader& r) {
  GetStreamInfoResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(DecodeInfo(r, resp.info));
  return resp;
}

void SealStreamRequest::Encode(Writer& w) const { w.Str(name); }

Result<SealStreamRequest> SealStreamRequest::Decode(Reader& r) {
  SealStreamRequest req;
  KERA_RETURN_IF_ERROR(r.Str(req.name));
  return req;
}

void SealStreamResponse::Encode(Writer& w) const { w.U8(uint8_t(status)); }

Result<SealStreamResponse> SealStreamResponse::Decode(Reader& r) {
  SealStreamResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  return resp;
}

// ------------------------------------------------------------- replicate

void ReplicateRequest::Encode(Writer& w) const {
  w.U32(primary);
  w.U32(vlog);
  w.U64(vseg);
  w.U64(start_offset);
  w.U32(chunk_count);
  w.U32(checksum_after);
  w.Bool(seals);
  if (!payload_parts.empty()) {
    w.BytesRefParts(payload_parts);
  } else {
    w.BytesRef(payload);
  }
}

Result<ReplicateRequest> ReplicateRequest::Decode(Reader& r) {
  ReplicateRequest req;
  KERA_RETURN_IF_ERROR(r.U32(req.primary));
  KERA_RETURN_IF_ERROR(r.U32(req.vlog));
  KERA_RETURN_IF_ERROR(r.U64(req.vseg));
  KERA_RETURN_IF_ERROR(r.U64(req.start_offset));
  KERA_RETURN_IF_ERROR(r.U32(req.chunk_count));
  KERA_RETURN_IF_ERROR(r.U32(req.checksum_after));
  KERA_RETURN_IF_ERROR(r.Bool(req.seals));
  KERA_RETURN_IF_ERROR(r.Bytes(req.payload));
  return req;
}

void ReplicateResponse::Encode(Writer& w) const { w.U8(uint8_t(status)); }

Result<ReplicateResponse> ReplicateResponse::Decode(Reader& r) {
  ReplicateResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  return resp;
}

// --------------------------------------------------------------- recovery

void ListRecoverySegmentsRequest::Encode(Writer& w) const { w.U32(crashed); }

Result<ListRecoverySegmentsRequest> ListRecoverySegmentsRequest::Decode(
    Reader& r) {
  ListRecoverySegmentsRequest req;
  KERA_RETURN_IF_ERROR(r.U32(req.crashed));
  return req;
}

void ListRecoverySegmentsResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(uint32_t(segments.size()));
  for (const auto& s : segments) {
    w.U32(s.primary);
    w.U32(s.vlog);
    w.U64(s.vseg);
    w.U32(s.chunk_count);
    w.Bool(s.sealed);
  }
}

Result<ListRecoverySegmentsResponse> ListRecoverySegmentsResponse::Decode(
    Reader& r) {
  ListRecoverySegmentsResponse resp;
  uint8_t code = 0;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 21));
  resp.segments.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& s = resp.segments[i];
    KERA_RETURN_IF_ERROR(r.U32(s.primary));
    KERA_RETURN_IF_ERROR(r.U32(s.vlog));
    KERA_RETURN_IF_ERROR(r.U64(s.vseg));
    KERA_RETURN_IF_ERROR(r.U32(s.chunk_count));
    KERA_RETURN_IF_ERROR(r.Bool(s.sealed));
  }
  return resp;
}

void ReadRecoverySegmentRequest::Encode(Writer& w) const {
  w.U32(crashed);
  w.U32(vlog);
  w.U64(vseg);
}

Result<ReadRecoverySegmentRequest> ReadRecoverySegmentRequest::Decode(
    Reader& r) {
  ReadRecoverySegmentRequest req;
  KERA_RETURN_IF_ERROR(r.U32(req.crashed));
  KERA_RETURN_IF_ERROR(r.U32(req.vlog));
  KERA_RETURN_IF_ERROR(r.U64(req.vseg));
  return req;
}

void ReadRecoverySegmentResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(chunk_count);
  w.BytesRef(payload);
}

Result<ReadRecoverySegmentResponse> ReadRecoverySegmentResponse::Decode(
    Reader& r) {
  ReadRecoverySegmentResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(resp.chunk_count));
  KERA_RETURN_IF_ERROR(r.Bytes(resp.payload));
  return resp;
}

void ReadRecoverySegmentBatchRequest::Encode(Writer& w) const {
  w.U32(crashed);
  w.U32(uint32_t(items.size()));
  for (const auto& it : items) {
    w.U32(it.vlog);
    w.U64(it.vseg);
  }
}

Result<ReadRecoverySegmentBatchRequest> ReadRecoverySegmentBatchRequest::Decode(
    Reader& r) {
  ReadRecoverySegmentBatchRequest req;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U32(req.crashed));
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 12));
  req.items.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    KERA_RETURN_IF_ERROR(r.U32(req.items[i].vlog));
    KERA_RETURN_IF_ERROR(r.U64(req.items[i].vseg));
  }
  return req;
}

void ReadRecoverySegmentBatchResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(uint32_t(items.size()));
  for (const auto& it : items) {
    w.U8(uint8_t(it.status));
    w.U32(it.vlog);
    w.U64(it.vseg);
    w.U32(it.chunk_count);
    w.BytesRef(it.payload);
  }
}

Result<ReadRecoverySegmentBatchResponse>
ReadRecoverySegmentBatchResponse::Decode(Reader& r) {
  ReadRecoverySegmentBatchResponse resp;
  uint8_t code = 0;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 21));
  resp.items.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& it = resp.items[i];
    KERA_RETURN_IF_ERROR(r.U8(code));
    it.status = StatusCode(code);
    KERA_RETURN_IF_ERROR(r.U32(it.vlog));
    KERA_RETURN_IF_ERROR(r.U64(it.vseg));
    KERA_RETURN_IF_ERROR(r.U32(it.chunk_count));
    KERA_RETURN_IF_ERROR(r.Bytes(it.payload));
  }
  return resp;
}

void EvacuateBackupSegmentsRequest::Encode(Writer& w) const {
  w.U32(primary);
}

Result<EvacuateBackupSegmentsRequest> EvacuateBackupSegmentsRequest::Decode(
    Reader& r) {
  EvacuateBackupSegmentsRequest req;
  KERA_RETURN_IF_ERROR(r.U32(req.primary));
  return req;
}

void EvacuateBackupSegmentsResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(dropped);
}

Result<EvacuateBackupSegmentsResponse> EvacuateBackupSegmentsResponse::Decode(
    Reader& r) {
  EvacuateBackupSegmentsResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(resp.dropped));
  return resp;
}

// ------------------------------------------------------------ exactly-once

void AllocateProducerRequest::Encode(Writer& w) const { w.U32(producer); }

Result<AllocateProducerRequest> AllocateProducerRequest::Decode(Reader& r) {
  AllocateProducerRequest req;
  KERA_RETURN_IF_ERROR(r.U32(req.producer));
  return req;
}

void AllocateProducerResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(producer);
  w.U32(epoch);
}

Result<AllocateProducerResponse> AllocateProducerResponse::Decode(Reader& r) {
  AllocateProducerResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(resp.producer));
  KERA_RETURN_IF_ERROR(r.U32(resp.epoch));
  return resp;
}

void CommitOffsetsRequest::Encode(Writer& w) const {
  w.U64(stream);
  w.U32(consumer);
  w.U64(commit_seq);
  w.U32(epoch);
  w.U32(uint32_t(entries.size()));
  for (const auto& e : entries) {
    w.U32(e.streamlet);
    w.U32(e.group);
    w.U64(e.next_chunk);
  }
}

Result<CommitOffsetsRequest> CommitOffsetsRequest::Decode(Reader& r) {
  CommitOffsetsRequest req;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U64(req.stream));
  KERA_RETURN_IF_ERROR(r.U32(req.consumer));
  KERA_RETURN_IF_ERROR(r.U64(req.commit_seq));
  KERA_RETURN_IF_ERROR(r.U32(req.epoch));
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 16));  // fixed entry size
  req.entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& e = req.entries[i];
    KERA_RETURN_IF_ERROR(r.U32(e.streamlet));
    KERA_RETURN_IF_ERROR(r.U32(e.group));
    KERA_RETURN_IF_ERROR(r.U64(e.next_chunk));
  }
  return req;
}

void CommitOffsetsResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(committed);
}

Result<CommitOffsetsResponse> CommitOffsetsResponse::Decode(Reader& r) {
  CommitOffsetsResponse resp;
  uint8_t code = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(resp.committed));
  return resp;
}

void FetchOffsetsRequest::Encode(Writer& w) const {
  w.U64(stream);
  w.U32(consumer);
  w.U32(uint32_t(streamlets.size()));
  for (StreamletId sl : streamlets) w.U32(sl);
}

Result<FetchOffsetsRequest> FetchOffsetsRequest::Decode(Reader& r) {
  FetchOffsetsRequest req;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U64(req.stream));
  KERA_RETURN_IF_ERROR(r.U32(req.consumer));
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 4));
  req.streamlets.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    KERA_RETURN_IF_ERROR(r.U32(req.streamlets[i]));
  }
  return req;
}

void FetchOffsetsResponse::Encode(Writer& w) const {
  w.U8(uint8_t(status));
  w.U32(uint32_t(entries.size()));
  for (const auto& e : entries) {
    w.U32(e.streamlet);
    w.Bool(e.found);
    w.U32(e.group);
    w.U64(e.next_chunk);
  }
}

Result<FetchOffsetsResponse> FetchOffsetsResponse::Decode(Reader& r) {
  FetchOffsetsResponse resp;
  uint8_t code = 0;
  uint32_t n = 0;
  KERA_RETURN_IF_ERROR(r.U8(code));
  resp.status = StatusCode(code);
  KERA_RETURN_IF_ERROR(r.U32(n));
  KERA_RETURN_IF_ERROR(CheckCount(r, n, 17));
  resp.entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto& e = resp.entries[i];
    KERA_RETURN_IF_ERROR(r.U32(e.streamlet));
    KERA_RETURN_IF_ERROR(r.Bool(e.found));
    KERA_RETURN_IF_ERROR(r.U32(e.group));
    KERA_RETURN_IF_ERROR(r.U64(e.next_chunk));
  }
  return resp;
}

}  // namespace kera::rpc
