// SocketNetwork: a real TCP transport implementing the Network interface,
// drop-in for ThreadedNetwork in MiniCluster and the examples — the step
// from "simulated cluster" to a deployment that can run brokers, backups
// and clients as separate processes.
//
// Wire protocol (both directions, little-endian like the RPC format):
//
//   u32 n        frame length (bytes following this field)
//   u64 id       request id, echoed verbatim in the response frame
//   n-8 bytes    payload: a request frame (u16 opcode + body) client->server,
//                the raw HandleRpc response bytes server->client
//
// Request ids multiplex many in-flight RPCs over ONE persistent connection
// per (SocketNetwork instance, destination node) — no connection-per-call.
// Responses may return in any order; the client demultiplexes by id.
//
// Per registered node: one listening socket plus N per-core *shards*,
// each a full reactor — an epoll event-loop thread that only moves bytes
// (accept/read/write, never runs handlers) and a worker pool draining
// decoded requests — the RAMCloud-style dispatch/worker split the
// in-process ThreadedNetwork models, multiplied across cores. Accepted
// connections are spread round-robin over the shards; a registered
// FrameRouter additionally routes each decoded request frame to the
// worker pool of the shard that owns the frame's data (by streamlet id),
// so a shared-nothing handler sees every frame for a streamlet on one
// shard no matter which connection it arrived on. With shards == 1 (the
// default) the topology collapses to the original single-reactor node.
// One more epoll thread serves the client side of this instance (all
// outbound connections). All sockets are TCP_NODELAY; queued frames are
// flushed with one vectored send (writev-style sendmsg) per flush, so
// many small frames and the scatter-gather pieces of a parts frame
// coalesce into one syscall without being materialized into a contiguous
// buffer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/transport.h"

namespace kera::rpc {

/// Routes a decoded request frame (u16 opcode + body) to one of `shards`
/// server shards. Runs on a shard IO thread per frame, so it must be
/// cheap and only peek at fixed offsets (see rpc::RouteFrameToShard).
/// Out-of-range results fall back to the receiving connection's shard.
using FrameRouter = std::function<int(std::span<const std::byte>, int)>;

class SocketNetwork final : public Network {
 public:
  struct Options {
    /// Handler worker threads per registered node (split across its
    /// shards when a node registers with shards > 1).
    int workers_per_node = 4;
    /// Address registered listeners bind (and advertise to in-process
    /// clients).
    std::string host = "127.0.0.1";
    /// Frames larger than this are treated as corruption and kill the
    /// connection.
    size_t max_frame_bytes = size_t(1) << 30;
  };

  /// Per-node registration knobs (the shared-nothing runtime shape).
  struct NodeOptions {
    /// Preferred listening port (0 picks an ephemeral port).
    uint16_t port = 0;
    /// Server reactors for this node: each shard runs its own epoll IO
    /// thread and worker pool. 1 = the original single-reactor node.
    int shards = 1;
    /// Worker threads per shard. 0 = derive from Options::workers_per_node
    /// (all of it for a single shard; split across shards otherwise, with
    /// a floor of 2 so one parked long-poll handler cannot starve a
    /// shard's produces).
    int workers_per_shard = 0;
    /// Routes request frames to shards at decode time (empty = every
    /// frame is handled by the shard whose connection it arrived on).
    FrameRouter router;
  };

  SocketNetwork();
  explicit SocketNetwork(Options options);
  ~SocketNetwork() override;

  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Binds a listener for `node` (port 0 picks an ephemeral port), spawns
  /// its event loop + workers, and routes in-process calls to it. Returns
  /// the bound port (to hand to SetPeer in another process).
  [[nodiscard]] Result<uint16_t> Register(NodeId node, RpcHandler* handler,
                                          uint16_t port = 0);

  /// Like the above but with the full per-node shape: shard count, worker
  /// split and frame router.
  [[nodiscard]] Result<uint16_t> Register(NodeId node, RpcHandler* handler,
                                          NodeOptions node_options);

  /// Fault injection: closes the node's listener and every accepted
  /// connection. Queued and in-flight requests against it fail with
  /// kUnavailable on the caller side (the connection died), like a real
  /// machine crash.
  void Crash(NodeId node);

  /// Serves a crashed (or never-registered) node again, rebinding the
  /// port it had when possible so remote peers reconnect unchanged. The
  /// crashed registration's NodeOptions (shard count, router) are reused.
  [[nodiscard]] Result<uint16_t> Restore(NodeId node, RpcHandler* handler);

  /// Routes calls for `node` to another process at host:port. Local
  /// registrations take precedence.
  void SetPeer(NodeId node, const std::string& host, uint16_t port);

  /// Listening port of a locally registered node.
  [[nodiscard]] Result<uint16_t> Port(NodeId node) const;

  Result<std::vector<std::byte>> Call(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsync(
      NodeId to, std::span<const std::byte> request) override;
  std::future<Result<std::vector<std::byte>>> CallAsyncParts(
      NodeId to, const BytesRefParts& parts) override;

  /// Stops serving, fails every pending call, and joins all threads.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  struct Stats {
    uint64_t calls = 0;        // CallAsync (span) requests issued
    uint64_t parts_calls = 0;  // CallAsyncParts requests issued
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t connections_opened = 0;  // outbound connects
    /// Vectored flushes and frames fully written, across both sides of
    /// this instance (requests it sends plus responses its registered
    /// nodes send).
    uint64_t sendmsg_calls = 0;
    uint64_t frames_sent = 0;
    /// Payload bytes memcpy'd into transport-owned buffers on the send
    /// path. CallAsync copies its span once (same contract as the other
    /// transports); CallAsyncParts never adds here — its pieces go from
    /// caller memory straight into the vectored send. The transport-level
    /// mirror of PR 2's bytes-per-record accounting.
    uint64_t tx_copied_bytes = 0;
    uint64_t parts_copied_bytes = 0;  // parts-path share of the above: 0
  };
  [[nodiscard]] Stats GetStats() const;

  // ----- deterministic test hooks (eventfd wake-race regressions) -----

  /// Installs callbacks the client IO thread runs around the kWakeTag
  /// handling: `before_drain` right before the eventfd drain,
  /// `after_drain` between the drain and the pending-flag clear (the
  /// critical window of the lost-wakeup race). Both run on the IO thread
  /// with client_mu_ held, so they must not call the public API — use the
  /// two helpers below, which touch only the wake atomics and the
  /// eventfd. Pass {} to uninstall.
  void SetClientWakeHooksForTest(std::function<void()> before_drain,
                                 std::function<void()> after_drain);

  /// Exactly what WakeClient does, without needing a frame to enqueue:
  /// sets the wake-pending flag and signals the eventfd at most once.
  /// Safe from the hooks above.
  void InjectClientWakeForTest() { WakeClient(); }

  /// Exactly what Shutdown's client-side stop does — stores client_stop_
  /// and signals the eventfd — without tearing anything else down. Safe
  /// from the hooks above.
  void SignalClientStopForTest();

  /// Server-shard mirrors of the client hooks: the callbacks run on EVERY
  /// server shard IO thread around its kWakeTag handling (before the
  /// eventfd drain / between the drain and the wake-pending clear). They
  /// must only use the two helpers below. Pass {} to uninstall.
  void SetServerWakeHooksForTest(std::function<void()> before_drain,
                                 std::function<void()> after_drain);

  /// Exactly what a worker's response wake does for `node`'s shard
  /// `shard`: sets the shard's wake-pending flag and signals its eventfd
  /// at most once. Safe from the server hooks.
  void InjectServerWakeForTest(NodeId node, int shard);

  /// Exactly what Crash's stop does for `node` — stores the node's stop
  /// flag and signals every shard's eventfd — without joining or tearing
  /// anything down (a later Crash/Shutdown still reaps the node). Safe
  /// from the server hooks.
  void SignalServerStopForTest(NodeId node);

 private:
  // One frame queued for writing: a 12-byte header followed by either an
  // owned contiguous payload or referenced scatter-gather pieces.
  struct OutFrame {
    std::array<std::byte, 12> header;  // u32 len, u64 request id
    std::vector<std::byte> owned;      // span path / server responses
    std::vector<std::span<const std::byte>> pieces;  // parts path
    size_t written = 0;  // wire bytes of this frame already sent
    size_t total = 0;    // header + payload
  };

  struct ServerConn;
  struct ServerShard;
  struct ServerNode;
  struct ClientConn;

  enum class FlushStatus { kDrained, kPartial, kError };
  /// One flush: coalesces up to kMaxIov pieces from the queued frames
  /// into a single vectored send, repeating until the queue drains or
  /// the socket would block.
  FlushStatus FlushFrameQueue(int fd, std::deque<OutFrame>& wq);

  void ServerIoLoop(ServerNode* node, ServerShard* shard);
  void ServerWorkerLoop(ServerNode* node, ServerShard* shard);
  void ServerFlushConn(ServerShard* shard, ServerConn* conn);
  // Returns false when the connection died and was destroyed.
  bool ServerReadConn(ServerNode* node, ServerShard* shard, ServerConn* conn);
  /// Coalesced shard wake (worker responses, adopted connections): the
  /// eventfd is signalled at most once per pending flag set; the IO loop
  /// drains strictly before clearing the flag (the PR 3 ordering).
  static void WakeShard(ServerShard* shard);
  static void CloseServerConns(ServerShard* shard);
  /// Signals stop to every shard of `node` (Crash/Shutdown first half).
  static void SignalServerStop(ServerNode* node);

  void ClientIoLoop();
  // All Client* helpers run under client_mu_.
  ClientConn* GetOrConnectLocked(NodeId to, Status& error);
  void FlushClientConnLocked(ClientConn* conn);
  bool ReadClientConnLocked(ClientConn* conn);
  void DestroyClientConnLocked(NodeId dest, const Status& why);
  std::future<Result<std::vector<std::byte>>> EnqueueLocked(
      ClientConn* conn, OutFrame frame, uint64_t request_id);
  void WakeClient();

  const Options options_;

  // ----- server side -----
  mutable std::mutex nodes_mu_;
  std::map<NodeId, std::unique_ptr<ServerNode>> nodes_;
  // Crashed nodes awaiting final worker join (their IO thread is already
  // joined; workers may still be draining a blocked handler).
  std::vector<std::unique_ptr<ServerNode>> draining_;
  bool shutdown_ = false;

  // ----- client side -----
  // Guards conns_, peers_, pending maps and write queues. The client IO
  // thread holds it while moving bytes; callers hold it to enqueue.
  mutable std::mutex client_mu_;
  std::map<NodeId, std::unique_ptr<ClientConn>> conns_;
  struct PeerAddr {
    std::string host;
    uint16_t port = 0;
  };
  std::map<NodeId, PeerAddr> peers_;
  uint64_t next_request_id_ = 1;
  uint64_t next_conn_id_ = 1;
  int client_epoll_fd_ = -1;
  int client_wake_fd_ = -1;
  std::thread client_thread_;
  std::atomic<bool> client_wake_pending_{false};
  std::atomic<bool> client_stop_{false};
  // Test hooks around the kWakeTag drain (run on the IO thread under
  // client_mu_); empty in production.
  std::function<void()> wake_hook_before_drain_;
  std::function<void()> wake_hook_after_drain_;

  // Server-shard wake hooks (run on every shard IO thread). The armed
  // flag keeps the production wake path free of the hook mutex.
  std::atomic<bool> server_hooks_armed_{false};
  mutable std::mutex server_hook_mu_;
  std::function<void()> server_hook_before_drain_;
  std::function<void()> server_hook_after_drain_;

  struct AtomicStats {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> parts_calls{0};
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> connections_opened{0};
    std::atomic<uint64_t> sendmsg_calls{0};
    std::atomic<uint64_t> frames_sent{0};
    std::atomic<uint64_t> tx_copied_bytes{0};
    std::atomic<uint64_t> parts_copied_bytes{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace kera::rpc
