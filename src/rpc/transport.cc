#include "rpc/transport.h"

#include <cstring>

namespace kera::rpc {

// --------------------------------------------------------------- Network

std::future<Result<std::vector<std::byte>>> Network::CallAsyncParts(
    NodeId to, const BytesRefParts& parts) {
  // Copying fallback: materialize the frame once and forward. CallAsync
  // consumes the request before returning, so the local buffer's lifetime
  // is sufficient.
  std::vector<std::byte> frame(parts.total_size());
  size_t off = 0;
  for (const auto& p : parts.pieces) {
    if (p.empty()) continue;
    std::memcpy(frame.data() + off, p.data(), p.size());
    off += p.size();
  }
  materialized_parts_bytes_.fetch_add(frame.size(),
                                      std::memory_order_relaxed);
  return CallAsync(to, frame);
}

// ---------------------------------------------------------- DirectNetwork

void DirectNetwork::Register(NodeId node, RpcHandler* handler) {
  handlers_[node] = handler;
}

void DirectNetwork::Crash(NodeId node) { handlers_.erase(node); }

void DirectNetwork::Restore(NodeId node, RpcHandler* handler) {
  handlers_[node] = handler;
}

Result<std::vector<std::byte>> DirectNetwork::Call(
    NodeId to, std::span<const std::byte> request) {
  auto it = handlers_.find(to);
  if (it == handlers_.end()) {
    return Status(StatusCode::kUnavailable, "node down");
  }
  calls_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(request.size(), std::memory_order_relaxed);
  std::vector<std::byte> response = it->second->HandleRpc(request);
  bytes_received_.fetch_add(response.size(), std::memory_order_relaxed);
  return response;
}

std::future<Result<std::vector<std::byte>>> DirectNetwork::CallAsync(
    NodeId to, std::span<const std::byte> request) {
  std::promise<Result<std::vector<std::byte>>> promise;
  promise.set_value(Call(to, request));
  return promise.get_future();
}

// --------------------------------------------------------- FlakyNetwork

FlakyNetwork::FlakyNetwork(Network& inner, Options options)
    : inner_(inner), options_(options), rng_state_(options.seed) {}

void FlakyNetwork::DrawCoins(bool& drop_request, bool& drop_response) {
  auto next_double = [this] {
    // splitmix64 -> [0,1)
    uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return double(z >> 11) * (1.0 / (uint64_t(1) << 53));
  };
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.calls;
  drop_request = next_double() < options_.drop_request;
  drop_response = next_double() < options_.drop_response;
  if (drop_request) ++stats_.dropped_requests;
}

Result<std::vector<std::byte>> FlakyNetwork::Call(
    NodeId to, std::span<const std::byte> request) {
  bool drop_req;
  bool drop_resp;
  DrawCoins(drop_req, drop_resp);
  if (drop_req) {
    return Status(StatusCode::kUnavailable, "injected request drop");
  }
  auto result = inner_.Call(to, request);
  if (result.ok() && drop_resp) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dropped_responses;
    return Status(StatusCode::kUnavailable, "injected response drop");
  }
  return result;
}

std::future<Result<std::vector<std::byte>>> FlakyNetwork::ApplyResponseCoin(
    std::future<Result<std::vector<std::byte>>> inner, bool drop_response) {
  // Deferred post-processing: the inner call is already in flight (so
  // fan-out stays parallel); the coin is applied when the caller consumes
  // the result.
  return std::async(
      std::launch::deferred,
      [this, drop_response,
       f = std::move(inner)]() mutable -> Result<std::vector<std::byte>> {
        auto result = f.get();
        if (result.ok() && drop_response) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.dropped_responses;
          return Status(StatusCode::kUnavailable, "injected response drop");
        }
        return result;
      });
}

std::future<Result<std::vector<std::byte>>> FlakyNetwork::CallAsync(
    NodeId to, std::span<const std::byte> request) {
  bool drop_req;
  bool drop_resp;
  DrawCoins(drop_req, drop_resp);
  if (drop_req) {
    std::promise<Result<std::vector<std::byte>>> promise;
    promise.set_value(Status(StatusCode::kUnavailable,
                             "injected request drop"));
    return promise.get_future();
  }
  return ApplyResponseCoin(inner_.CallAsync(to, request), drop_resp);
}

std::future<Result<std::vector<std::byte>>> FlakyNetwork::CallAsyncParts(
    NodeId to, const BytesRefParts& parts) {
  bool drop_req;
  bool drop_resp;
  DrawCoins(drop_req, drop_resp);
  if (drop_req) {
    std::promise<Result<std::vector<std::byte>>> promise;
    promise.set_value(Status(StatusCode::kUnavailable,
                             "injected request drop"));
    return promise.get_future();
  }
  return ApplyResponseCoin(inner_.CallAsyncParts(to, parts), drop_resp);
}

FlakyNetwork::Stats FlakyNetwork::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// -------------------------------------------------------- ThreadedNetwork

ThreadedNetwork::ThreadedNetwork(int workers_per_node)
    : workers_per_node_(workers_per_node) {}

ThreadedNetwork::~ThreadedNetwork() { Shutdown(); }

void ThreadedNetwork::Register(NodeId node, RpcHandler* handler) {
  auto state = std::make_unique<NodeState>();
  state->handler.store(handler, std::memory_order_release);
  NodeState* raw = state.get();
  // Publication and worker spawn share the critical section: Shutdown
  // snapshots nodes_ under mu_ and joins every spawned worker, so a
  // Register racing Shutdown either loses (refused below, no threads
  // spawned) or wins with its workers already recorded for joining.
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;  // refused: workers would never be joined
  nodes_[node] = std::move(state);
  for (int i = 0; i < workers_per_node_; ++i) {
    raw->workers.emplace_back([raw] {
      while (auto work = raw->queue.Pop()) {
        if (raw->crashed.load(std::memory_order_acquire)) {
          (*work)->promise.set_value(
              Status(StatusCode::kUnavailable, "node crashed"));
          continue;
        }
        RpcHandler* h = raw->handler.load(std::memory_order_acquire);
        (*work)->promise.set_value(h->HandleRpc((*work)->request));
      }
    });
  }
}

void ThreadedNetwork::Crash(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it != nodes_.end()) {
    it->second->crashed.store(true, std::memory_order_release);
  }
}

void ThreadedNetwork::Restore(NodeId node, RpcHandler* handler) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(node);
    if (it != nodes_.end()) {
      it->second->handler.store(handler, std::memory_order_release);
      it->second->crashed.store(false, std::memory_order_release);
      return;
    }
  }
  Register(node, handler);
}

std::future<Result<std::vector<std::byte>>> ThreadedNetwork::CallAsync(
    NodeId to, std::span<const std::byte> request) {
  NodeState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(to);
    if (it != nodes_.end() &&
        !it->second->crashed.load(std::memory_order_acquire)) {
      state = it->second.get();
    }
  }
  if (state == nullptr) {
    std::promise<Result<std::vector<std::byte>>> promise;
    promise.set_value(Status(StatusCode::kUnavailable, "node down"));
    return promise.get_future();
  }
  auto work = std::make_unique<Work>();
  work->request.assign(request.begin(), request.end());
  auto future = work->promise.get_future();
  state->queue.Push(std::move(work));
  return future;
}

Result<std::vector<std::byte>> ThreadedNetwork::Call(
    NodeId to, std::span<const std::byte> request) {
  return CallAsync(to, request).get();
}

void ThreadedNetwork::Shutdown() {
  std::map<NodeId, std::unique_ptr<NodeState>> nodes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    nodes.swap(nodes_);
  }
  for (auto& [_, state] : nodes) {
    state->queue.Shutdown();
  }
  for (auto& [_, state] : nodes) {
    for (auto& t : state->workers) t.join();
  }
}

}  // namespace kera::rpc
