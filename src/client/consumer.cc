#include "client/consumer.h"

#include <chrono>

#include "common/logging.h"

namespace kera {
namespace {
/// How many groups of one streamlet a consumer reads in parallel. Bounds
/// per-request entry counts; discovery opens more as groups drain.
constexpr size_t kMaxActiveGroups = 8;
}  // namespace

Consumer::Consumer(ConsumerConfig config, rpc::Network& network)
    : config_(std::move(config)), network_(network) {}

Consumer::~Consumer() { Close(); }

GroupId Consumer::FirstOwnedGroupAtOrAfter(GroupId g) const {
  if (config_.share_count <= 1) return g;
  while (g % config_.share_count != config_.share_index) ++g;
  return g;
}

Status Consumer::Connect() {
  if (config_.share_count == 0 ||
      config_.share_index >= config_.share_count) {
    return Status(StatusCode::kInvalidArgument, "bad group share config");
  }
  rpc::GetStreamInfoRequest req;
  req.name = config_.stream;
  rpc::Writer body;
  req.Encode(body);
  auto raw = network_.Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kGetStreamInfo, body));
  if (!raw.ok()) return raw.status();
  rpc::Reader r(*raw);
  auto resp = rpc::GetStreamInfoResponse::Decode(r);
  if (!resp.ok()) return resp.status();
  if (resp->status != StatusCode::kOk) {
    return Status(resp->status, "GetStreamInfo failed");
  }
  info_ = resp->info;

  assigned_ = config_.streamlets;
  if (assigned_.empty()) {
    for (StreamletId sl = 0; sl < info_.streamlet_brokers.size(); ++sl) {
      assigned_.push_back(sl);
    }
  }
  for (StreamletId sl : assigned_) {
    StreamletState state;
    state.next_unstarted = FirstOwnedGroupAtOrAfter(0);
    states_[sl] = state;
  }

  running_.store(true, std::memory_order_release);
  requests_thread_ = std::thread([this] { RequestsLoop(); });
  return OkStatus();
}

void Consumer::OpenDiscoveredGroups(StreamletState& state) {
  while (state.active.size() < kMaxActiveGroups &&
         state.next_unstarted < state.groups_created) {
    state.active.emplace(state.next_unstarted, 0);
    state.next_unstarted =
        FirstOwnedGroupAtOrAfter(state.next_unstarted + 1);
  }
}

void Consumer::HandleEntry(
    StreamletState& state, const rpc::ConsumeEntryResponse& entry,
    const std::shared_ptr<const std::vector<std::byte>>& buf,
    bool* got_data) {
  if (entry.groups_created > state.groups_created) {
    state.groups_created = entry.groups_created;
  }
  auto it = state.active.find(entry.group);
  if (it == state.active.end()) {
    OpenDiscoveredGroups(state);
    // A probe entry for a group that does not exist yet: end-of-stream if
    // the stream is sealed and nothing more can appear.
    if (entry.stream_sealed && state.active.empty() &&
        state.next_unstarted >= state.groups_created) {
      state.done = true;
    }
    return;
  }
  for (const auto& chunk_bytes : entry.chunks) {
    FetchedChunk fc;
    fc.streamlet = entry.streamlet;
    fc.bytes = chunk_bytes;  // aliases the shared response buffer
    fc.response = buf;
    chunks_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(fc.bytes.size(), std::memory_order_relaxed);
    fetched_.Push(std::move(fc));
    *got_data = true;
  }
  it->second = entry.next_chunk;
  if (entry.group_closed) {
    // This group is fully consumed; discovery opens the next one.
    state.active.erase(it);
  }
  OpenDiscoveredGroups(state);
  // End-of-stream: the stream is sealed, every created group this member
  // owns has been drained, and no further groups will ever appear.
  if (entry.stream_sealed && state.active.empty() &&
      state.next_unstarted >= state.groups_created) {
    state.done = true;
  }
}

void Consumer::RequestsLoop() {
  while (running_.load(std::memory_order_acquire)) {
    // One request per broker covering every (streamlet, active group) this
    // consumer is reading; when nothing is open, a discovery entry probes
    // the next unopened group so new groups and end-of-stream are noticed.
    std::map<NodeId, rpc::ConsumeRequest> per_broker;
    size_t done_count = 0;
    for (StreamletId sl : assigned_) {
      StreamletState& state = states_[sl];
      if (state.done) {
        ++done_count;
        continue;
      }
      OpenDiscoveredGroups(state);
      NodeId broker = info_.streamlet_brokers[sl];
      auto& req = per_broker[broker];
      req.stream = info_.stream;
      req.max_bytes = config_.max_bytes_per_request;
      if (state.active.empty()) {
        rpc::ConsumeEntryRequest e;
        e.streamlet = sl;
        e.group = state.next_unstarted;
        e.start_chunk = 0;
        e.max_chunks = config_.max_chunks_per_entry;
        req.entries.push_back(e);
      } else {
        for (const auto& [group, cursor] : state.active) {
          rpc::ConsumeEntryRequest e;
          e.streamlet = sl;
          e.group = group;
          e.start_chunk = cursor;
          e.max_chunks = config_.max_chunks_per_entry;
          req.entries.push_back(e);
        }
      }
    }

    if (done_count == assigned_.size()) {
      // Bounded stream fully drained: stop fetching.
      finished_.store(true, std::memory_order_release);
      fetched_.Shutdown();
      return;
    }
    bool got_data = false;
    for (auto& [broker, req] : per_broker) {
      rpc::Writer body;
      req.Encode(body);
      auto raw =
          network_.Call(broker, rpc::Frame(rpc::Opcode::kConsume, body));
      requests_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!raw.ok()) continue;  // broker down; retry next round
      // Keep the response alive for as long as any fetched chunk aliases
      // it; decoded chunk spans point straight into this buffer.
      auto shared =
          std::make_shared<const std::vector<std::byte>>(std::move(*raw));
      rpc::Reader r(*shared);
      auto resp = rpc::ConsumeResponse::Decode(r);
      if (!resp.ok() || resp->status != StatusCode::kOk) continue;
      for (auto& entry : resp->entries) {
        auto sit = states_.find(entry.streamlet);
        if (sit == states_.end()) continue;
        StreamletState& state = sit->second;
        // A probe that found its group: open it before handling.
        if (state.active.count(entry.group) == 0 &&
            entry.group == state.next_unstarted &&
            (entry.group_exists || !entry.chunks.empty())) {
          state.active.emplace(entry.group, 0);
          state.next_unstarted = FirstOwnedGroupAtOrAfter(entry.group + 1);
        }
        HandleEntry(state, entry, shared, &got_data);
      }
    }
    if (!got_data) {
      empty_responses_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.idle_backoff_us));
    }
  }
}

std::vector<ConsumedRecord> Consumer::Poll(size_t max_records) {
  std::vector<ConsumedRecord> out;
  while (out.size() < max_records) {
    if (!buffered_.empty()) {
      out.push_back(std::move(buffered_.front()));
      buffered_.pop_front();
      continue;
    }
    auto fetched = fetched_.TryPop();
    if (!fetched) break;
    auto chunk = ChunkView::Parse(fetched->bytes);
    if (!chunk.ok() || !chunk->VerifyChecksum()) {
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    for (auto it = chunk->records(); !it.Done(); it.Next()) {
      const RecordView& rec = it.record();
      ConsumedRecord cr;
      cr.streamlet = fetched->streamlet;
      cr.group = chunk->group_id();
      cr.chunk_index = chunk->group_chunk_index();
      cr.producer = chunk->producer_id();
      cr.value.assign(rec.value().begin(), rec.value().end());
      buffered_.push_back(std::move(cr));
    }
    records_consumed_.fetch_add(chunk->record_count(),
                                std::memory_order_relaxed);
  }
  return out;
}

std::vector<ConsumedRecord> Consumer::PollBlocking(size_t max_records) {
  while (running_.load(std::memory_order_acquire)) {
    auto out = Poll(max_records);
    if (!out.empty()) return out;
    auto fetched = fetched_.Pop();  // blocks; returns nullopt on shutdown
    if (!fetched) break;
    auto chunk = ChunkView::Parse(fetched->bytes);
    if (chunk.ok() && chunk->VerifyChecksum()) {
      for (auto it = chunk->records(); !it.Done(); it.Next()) {
        ConsumedRecord cr;
        cr.streamlet = fetched->streamlet;
        cr.group = chunk->group_id();
        cr.chunk_index = chunk->group_chunk_index();
        cr.producer = chunk->producer_id();
        cr.value.assign(it.record().value().begin(),
                        it.record().value().end());
        buffered_.push_back(std::move(cr));
      }
      records_consumed_.fetch_add(chunk->record_count(),
                                  std::memory_order_relaxed);
    }
  }
  return Poll(max_records);
}

bool Consumer::Finished() const {
  return finished_.load(std::memory_order_acquire);
}

void Consumer::Close() {
  if (!running_.exchange(false)) return;
  fetched_.Shutdown();
  if (requests_thread_.joinable()) requests_thread_.join();
}

Consumer::Stats Consumer::GetStats() const {
  Stats out;
  out.records_consumed = records_consumed_.load(std::memory_order_relaxed);
  out.chunks_received = chunks_received_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  out.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  out.empty_responses = empty_responses_.load(std::memory_order_relaxed);
  out.checksum_failures =
      checksum_failures_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace kera
