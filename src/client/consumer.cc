#include "client/consumer.h"

#include <chrono>
#include <deque>
#include <future>
#include <set>
#include <utility>

#include "common/logging.h"

namespace kera {
namespace {
/// How many groups of one streamlet a consumer reads in parallel. Bounds
/// per-request entry counts; discovery opens more as groups drain.
constexpr size_t kMaxActiveGroups = 8;

/// Sentinel group key marking a discovery probe (never a real cursor).
constexpr GroupId kProbeGroup = ~GroupId(0);

/// Slice for waiting on in-flight futures: short enough that Close()
/// returns promptly even while a long-poll is parked at the broker.
constexpr auto kFutureSlice = std::chrono::milliseconds(2);
}  // namespace

// ----- FetchBuffer ---------------------------------------------------------

void Consumer::FetchBuffer::Push(FetchedChunk fc) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    buffered_[fc.broker] += fc.bytes.size();
    items_.push_back(std::move(fc));
  }
  pop_cv_.notify_one();
}

std::optional<Consumer::FetchedChunk> Consumer::FetchBuffer::TryPop() {
  std::optional<FetchedChunk> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    out = std::move(items_.front());
    items_.pop_front();
    buffered_[out->broker] -= out->bytes.size();
  }
  budget_cv_.notify_all();
  return out;
}

std::optional<Consumer::FetchedChunk> Consumer::FetchBuffer::Pop() {
  std::optional<FetchedChunk> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    pop_cv_.wait(lock, [&] { return shutdown_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // shut down and drained
    out = std::move(items_.front());
    items_.pop_front();
    buffered_[out->broker] -= out->bytes.size();
  }
  budget_cv_.notify_all();
  return out;
}

bool Consumer::FetchBuffer::WaitBelowBudget(NodeId broker, size_t budget) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!shutdown_ && buffered_[broker] >= budget) {
    ++pauses_;
    budget_cv_.wait(
        lock, [&] { return shutdown_ || buffered_[broker] < budget; });
  }
  return !shutdown_;
}

void Consumer::FetchBuffer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  pop_cv_.notify_all();
  budget_cv_.notify_all();
}

uint64_t Consumer::FetchBuffer::pauses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pauses_;
}

// ----- Consumer ------------------------------------------------------------

Consumer::Consumer(ConsumerConfig config, rpc::Network& network)
    : config_(std::move(config)), network_(network) {}

Consumer::~Consumer() { Close(); }

GroupId Consumer::FirstOwnedGroupAtOrAfter(GroupId g) const {
  if (config_.share_count <= 1) return g;
  while (g % config_.share_count != config_.share_index) ++g;
  return g;
}

Status Consumer::Connect() {
  if (config_.share_count == 0 ||
      config_.share_index >= config_.share_count) {
    return Status(StatusCode::kInvalidArgument, "bad group share config");
  }
  if (config_.fetch_pipeline_depth == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "fetch_pipeline_depth must be >= 1");
  }
  if (config_.exactly_once && config_.share_count > 1) {
    // The committed cursor is a single per-streamlet position; group
    // sharing would interleave multiple members' frontiers into it.
    return Status(StatusCode::kInvalidArgument,
                  "exactly_once requires share_count == 1");
  }
  rpc::GetStreamInfoRequest req;
  req.name = config_.stream;
  rpc::Writer body;
  req.Encode(body);
  auto raw = network_.Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kGetStreamInfo, body));
  if (!raw.ok()) return raw.status();
  rpc::Reader r(*raw);
  auto resp = rpc::GetStreamInfoResponse::Decode(r);
  if (!resp.ok()) return resp.status();
  if (resp->status != StatusCode::kOk) {
    return Status(resp->status, "GetStreamInfo failed");
  }
  info_ = resp->info;
  if (config_.exactly_once) {
    if (info_.options.active_groups_per_streamlet != 1) {
      // Q > 1 interleaves groups, so "everything before (group,
      // next_chunk)" is no longer a contiguous prefix of the streamlet.
      return Status(StatusCode::kInvalidArgument,
                    "exactly_once requires one active group per streamlet");
    }
    // Session-epoch handshake under the consumer's system producer id:
    // a restarted consumer's commits fence its predecessor's.
    rpc::AllocateProducerRequest areq;
    areq.producer = ProducerId(0x80000000u | config_.consumer_id);
    rpc::Writer abody;
    areq.Encode(abody);
    auto araw = network_.Call(
        kCoordinatorNode, rpc::Frame(rpc::Opcode::kAllocateProducer, abody));
    if (!araw.ok()) return araw.status();
    rpc::Reader ar(*araw);
    auto aresp = rpc::AllocateProducerResponse::Decode(ar);
    if (!aresp.ok()) return aresp.status();
    if (aresp->status != StatusCode::kOk) {
      return Status(aresp->status, "AllocateProducer failed");
    }
    epoch_ = aresp->epoch;
  }

  assigned_ = config_.streamlets;
  if (assigned_.empty()) {
    for (StreamletId sl = 0; sl < info_.streamlet_brokers.size(); ++sl) {
      assigned_.push_back(sl);
    }
  }
  if (assigned_.empty()) {
    // Degenerate stream with no streamlets: nothing to ever fetch.
    finished_.store(true, std::memory_order_release);
    fetched_.Shutdown();
    return OkStatus();
  }
  for (StreamletId sl : assigned_) {
    StreamletState state;
    state.next_unstarted = FirstOwnedGroupAtOrAfter(0);
    states_[sl] = state;
  }

  if (config_.exactly_once) {
    // Resume each streamlet from its last durably committed cursor: open
    // the committed group at the committed chunk index instead of the
    // beginning. Streamlets with no commit on record start from scratch.
    std::map<NodeId, std::vector<StreamletId>> fetch_by_broker;
    for (StreamletId sl : assigned_) {
      fetch_by_broker[info_.streamlet_brokers[sl]].push_back(sl);
    }
    for (auto& [broker, sls] : fetch_by_broker) {
      rpc::FetchOffsetsRequest freq;
      freq.stream = info_.stream;
      freq.consumer = config_.consumer_id;
      freq.streamlets = sls;
      rpc::Writer fbody;
      freq.Encode(fbody);
      auto fraw = network_.Call(
          broker, rpc::Frame(rpc::Opcode::kFetchOffsets, fbody));
      if (!fraw.ok()) return fraw.status();
      rpc::Reader fr(*fraw);
      auto fresp = rpc::FetchOffsetsResponse::Decode(fr);
      if (!fresp.ok()) return fresp.status();
      if (fresp->status != StatusCode::kOk) {
        return Status(fresp->status, "FetchOffsets failed");
      }
      for (const auto& e : fresp->entries) {
        if (!e.found) continue;
        auto sit = states_.find(e.streamlet);
        if (sit == states_.end()) continue;
        StreamletState& st = sit->second;
        st.active.clear();
        st.active.emplace(e.group, e.next_chunk);
        st.next_unstarted = FirstOwnedGroupAtOrAfter(e.group + 1);
        delivered_[e.streamlet] = DeliveredPos{e.group, e.next_chunk};
      }
    }
  }

  running_.store(true, std::memory_order_release);
  if (config_.fetch_pipeline_depth == 1) {
    requests_thread_ = std::thread([this] { SerialFetchLoop(); });
    return OkStatus();
  }
  // Pipelined engine: one fetch worker per leader broker, so brokers are
  // fetched in parallel even on transports whose CallAsync runs inline.
  std::map<NodeId, std::vector<StreamletId>> by_broker;
  for (StreamletId sl : assigned_) {
    by_broker[info_.streamlet_brokers[sl]].push_back(sl);
  }
  active_fetch_workers_.store(by_broker.size(), std::memory_order_release);
  for (auto& [broker, streamlets] : by_broker) {
    fetch_threads_.emplace_back(
        [this, broker = broker, streamlets = streamlets] {
          BrokerFetchLoop(broker, streamlets);
          // Last worker out closes the hand-off queue when the stream is
          // fully drained, so PollBlocking sees end-of-data.
          if (active_fetch_workers_.fetch_sub(
                  1, std::memory_order_acq_rel) == 1 &&
              finished_.load(std::memory_order_acquire)) {
            fetched_.Shutdown();
          }
        });
  }
  return OkStatus();
}

void Consumer::OpenDiscoveredGroups(StreamletState& state) {
  while (state.active.size() < kMaxActiveGroups &&
         state.next_unstarted < state.groups_created) {
    state.active.emplace(state.next_unstarted, 0);
    state.next_unstarted =
        FirstOwnedGroupAtOrAfter(state.next_unstarted + 1);
  }
}

void Consumer::MarkStreamletDone(StreamletState& state) {
  if (state.done) return;
  state.done = true;
  if (done_streamlets_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      assigned_.size()) {
    finished_.store(true, std::memory_order_release);
  }
}

void Consumer::HandleEntry(
    NodeId broker, StreamletState& state,
    const rpc::ConsumeEntryResponse& entry,
    const std::shared_ptr<const std::vector<std::byte>>& buf,
    bool* got_data) {
  if (entry.groups_created > state.groups_created) {
    state.groups_created = entry.groups_created;
  }
  auto it = state.active.find(entry.group);
  if (it == state.active.end()) {
    OpenDiscoveredGroups(state);
    // A probe entry for a group that does not exist yet: end-of-stream if
    // the stream is sealed and nothing more can appear.
    if (entry.stream_sealed && state.active.empty() &&
        state.next_unstarted >= state.groups_created) {
      MarkStreamletDone(state);
    }
    return;
  }
  for (const auto& chunk_bytes : entry.chunks) {
    FetchedChunk fc;
    fc.streamlet = entry.streamlet;
    fc.broker = broker;
    fc.bytes = chunk_bytes;  // aliases the shared response buffer
    fc.response = buf;
    chunks_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(fc.bytes.size(), std::memory_order_relaxed);
    fetched_.Push(std::move(fc));
    *got_data = true;
  }
  it->second = entry.next_chunk;
  if (entry.group_closed) {
    // This group is fully consumed; discovery opens the next one.
    state.active.erase(it);
  }
  OpenDiscoveredGroups(state);
  // End-of-stream: the stream is sealed, every created group this member
  // owns has been drained, and no further groups will ever appear.
  if (entry.stream_sealed && state.active.empty() &&
      state.next_unstarted >= state.groups_created) {
    MarkStreamletDone(state);
  }
}

bool Consumer::ProcessResponse(NodeId broker, std::vector<std::byte> raw) {
  // Keep the response alive for as long as any fetched chunk aliases it;
  // decoded chunk spans point straight into this buffer.
  auto shared =
      std::make_shared<const std::vector<std::byte>>(std::move(raw));
  rpc::Reader r(*shared);
  auto resp = rpc::ConsumeResponse::Decode(r);
  if (!resp.ok() || resp->status != StatusCode::kOk) return false;
  bool got_data = false;
  for (auto& entry : resp->entries) {
    auto sit = states_.find(entry.streamlet);
    if (sit == states_.end()) continue;
    StreamletState& state = sit->second;
    // A probe that found its group: open it before handling.
    if (state.active.count(entry.group) == 0 &&
        entry.group == state.next_unstarted &&
        (entry.group_exists || !entry.chunks.empty())) {
      state.active.emplace(entry.group, 0);
      state.next_unstarted = FirstOwnedGroupAtOrAfter(entry.group + 1);
    }
    HandleEntry(broker, state, entry, shared, &got_data);
  }
  if (!got_data) empty_responses_.fetch_add(1, std::memory_order_relaxed);
  return got_data;
}

void Consumer::SerialFetchLoop() {
  bool idle = false;  // last round returned no data -> long-poll next
  while (running_.load(std::memory_order_acquire)) {
    // One request per broker covering every (streamlet, active group) this
    // consumer is reading; when nothing is open, a discovery entry probes
    // the next unopened group so new groups and end-of-stream are noticed.
    std::map<NodeId, rpc::ConsumeRequest> per_broker;
    size_t done_count = 0;
    for (StreamletId sl : assigned_) {
      StreamletState& state = states_.find(sl)->second;
      if (state.done) {
        ++done_count;
        continue;
      }
      OpenDiscoveredGroups(state);
      NodeId broker = info_.streamlet_brokers[sl];
      auto& req = per_broker[broker];
      req.stream = info_.stream;
      req.max_bytes = config_.max_bytes_per_request;
      if (state.active.empty()) {
        rpc::ConsumeEntryRequest e;
        e.streamlet = sl;
        e.group = state.next_unstarted;
        e.start_chunk = 0;
        e.max_chunks = config_.max_chunks_per_entry;
        req.entries.push_back(e);
      } else {
        for (const auto& [group, cursor] : state.active) {
          rpc::ConsumeEntryRequest e;
          e.streamlet = sl;
          e.group = group;
          e.start_chunk = cursor;
          e.max_chunks = config_.max_chunks_per_entry;
          req.entries.push_back(e);
        }
      }
    }

    if (done_count == assigned_.size()) {
      // Bounded stream fully drained: stop fetching.
      finished_.store(true, std::memory_order_release);
      fetched_.Shutdown();
      return;
    }
    bool got_data = false;
    for (auto& [broker, req] : per_broker) {
      // Flow control: don't fetch more for a broker whose buffered bytes
      // already exceed the prefetch budget.
      if (!fetched_.WaitBelowBudget(broker, config_.fetch_buffer_bytes)) {
        return;
      }
      if (idle) {
        req.max_wait_us = config_.fetch_max_wait_us;
        req.min_bytes = config_.fetch_min_bytes;
      }
      rpc::Writer body;
      req.Encode(body);
      auto raw =
          network_.Call(broker, rpc::Frame(rpc::Opcode::kConsume, body));
      requests_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!raw.ok()) continue;  // broker down; retry next round
      got_data |= ProcessResponse(broker, std::move(*raw));
    }
    if (got_data) {
      idle = false;
    } else if (config_.fetch_max_wait_us > 0) {
      idle = true;  // the broker paces us via long-poll
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.idle_backoff_us));
    }
  }
}

void Consumer::BrokerFetchLoop(NodeId broker,
                               const std::vector<StreamletId>& streamlets) {
  struct InFlight {
    std::future<Result<std::vector<std::byte>>> future;
    // Cursors / probes covered, released when the response lands so the
    // next round can re-issue them (one outstanding request per group
    // keeps per-group chunk order).
    std::vector<std::pair<StreamletId, GroupId>> groups;
    std::vector<StreamletId> probes;
  };
  std::deque<InFlight> inflight;
  std::set<std::pair<StreamletId, GroupId>> outstanding;
  std::set<StreamletId> probing;
  bool idle = false;  // all-empty responses -> collapse to one long-poll

  while (running_.load(std::memory_order_acquire)) {
    // Collect the cursors that are free to fetch right now.
    size_t done_count = 0;
    std::vector<rpc::ConsumeEntryRequest> avail;
    std::vector<std::pair<StreamletId, GroupId>> keys;  // parallel to avail
    for (StreamletId sl : streamlets) {
      StreamletState& state = states_.find(sl)->second;
      if (state.done) {
        ++done_count;
        continue;
      }
      OpenDiscoveredGroups(state);
      if (state.active.empty()) {
        if (probing.count(sl) != 0) continue;
        rpc::ConsumeEntryRequest e;
        e.streamlet = sl;
        e.group = state.next_unstarted;
        e.start_chunk = 0;
        e.max_chunks = config_.max_chunks_per_entry;
        avail.push_back(e);
        keys.emplace_back(sl, kProbeGroup);
      } else {
        for (const auto& [group, cursor] : state.active) {
          if (outstanding.count({sl, group}) != 0) continue;
          rpc::ConsumeEntryRequest e;
          e.streamlet = sl;
          e.group = group;
          e.start_chunk = cursor;
          e.max_chunks = config_.max_chunks_per_entry;
          avail.push_back(e);
          keys.emplace_back(sl, group);
        }
      }
    }
    if (done_count == streamlets.size() && inflight.empty()) return;

    // Issue: stripe the available entries over the free pipeline slots.
    // Idle mode sends a single request that long-polls at the broker
    // (never more than one parked RPC per broker, so transport workers
    // are not hoarded); streaming mode fills the pipeline with wait-0
    // fetches.
    const size_t depth = config_.fetch_pipeline_depth;
    size_t slots = depth > inflight.size() ? depth - inflight.size() : 0;
    size_t nreq = 0;
    if (!avail.empty() && slots > 0) {
      nreq = idle && config_.fetch_max_wait_us > 0
                 ? (inflight.empty() ? 1 : 0)
                 : std::min(slots, avail.size());
    }
    for (size_t rq = 0; rq < nreq; ++rq) {
      // Flow control: pause this broker's prefetch until Poll drains.
      if (!fetched_.WaitBelowBudget(broker, config_.fetch_buffer_bytes)) {
        return;
      }
      rpc::ConsumeRequest req;
      req.stream = info_.stream;
      req.max_bytes = config_.max_bytes_per_request;
      if (idle) {
        req.max_wait_us = config_.fetch_max_wait_us;
        req.min_bytes = config_.fetch_min_bytes;
      }
      InFlight inf;
      // Contiguous block per request (avail is ordered by streamlet):
      // each pipelined request covers a run of neighboring streamlets
      // instead of a stride across all of them, so on a sharded broker
      // the request's entries mostly share a home shard and the frame
      // router keeps it off the cross-shard slow path.
      const size_t begin = rq * avail.size() / nreq;
      const size_t end = (rq + 1) * avail.size() / nreq;
      for (size_t i = begin; i < end; ++i) {
        req.entries.push_back(avail[i]);
        if (keys[i].second == kProbeGroup) {
          probing.insert(keys[i].first);
          inf.probes.push_back(keys[i].first);
        } else {
          outstanding.insert(keys[i]);
          inf.groups.push_back(keys[i]);
        }
      }
      rpc::Writer body;
      req.Encode(body);
      inf.future =
          network_.CallAsync(broker, rpc::Frame(rpc::Opcode::kConsume, body));
      requests_sent_.fetch_add(1, std::memory_order_relaxed);
      inflight.push_back(std::move(inf));
    }

    if (inflight.empty()) {
      // Every cursor is done or momentarily unavailable; don't spin.
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.idle_backoff_us));
      continue;
    }

    // Wait for the oldest in-flight response, in short slices so Close()
    // returns promptly even while a long-poll is parked at the broker
    // (the abandoned future just outlives us via its shared state).
    InFlight front = std::move(inflight.front());
    inflight.pop_front();
    bool ready = false;
    for (;;) {
      auto st = front.future.wait_for(kFutureSlice);
      if (st != std::future_status::timeout) {  // ready (or deferred)
        ready = true;
        break;
      }
      if (!running_.load(std::memory_order_acquire)) break;
    }
    for (const auto& key : front.groups) outstanding.erase(key);
    for (StreamletId sl : front.probes) probing.erase(sl);
    if (!ready) return;

    auto raw = front.future.get();
    if (!raw.ok()) {
      // Broker unreachable (or response dropped): back off, then the next
      // round re-issues the released cursors.
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.idle_backoff_us));
      continue;
    }
    if (ProcessResponse(broker, std::move(*raw))) {
      idle = false;
    } else if (config_.fetch_max_wait_us > 0) {
      idle = true;
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.idle_backoff_us));
    }
  }
}

void Consumer::IngestChunk(StreamletId streamlet, const ChunkView& chunk) {
  // The delivered frontier does NOT move here: Commit() must persist the
  // position of what Poll HANDED OUT, and ingest runs ahead of that —
  // committing the ingest frontier would skip every buffered-but-unpolled
  // record after a restart. Poll advances the frontier as it completes
  // each chunk. System chunks carry no user records, so their positions
  // are covered only once a later data chunk is handed out; re-reading a
  // trailing system chunk after a restart is harmless (it is skipped
  // again, never delivered).
  if ((chunk.flags() & kChunkFlagOffsetCommit) != 0) {
    // Cursor metadata, not user data.
    system_chunks_skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (auto it = chunk.records(); !it.Done(); it.Next()) {
    const RecordView& rec = it.record();
    ConsumedRecord cr;
    cr.streamlet = streamlet;
    cr.group = chunk.group_id();
    cr.chunk_index = chunk.group_chunk_index();
    cr.producer = chunk.producer_id();
    cr.value.assign(rec.value().begin(), rec.value().end());
    buffered_.push_back(std::move(cr));
  }
  records_consumed_.fetch_add(chunk.record_count(),
                              std::memory_order_relaxed);
}

namespace {
bool SameChunk(const ConsumedRecord& a, const ConsumedRecord& b) {
  return a.streamlet == b.streamlet && a.group == b.group &&
         a.chunk_index == b.chunk_index;
}
}  // namespace

void Consumer::AdvanceDelivered(const ConsumedRecord& rec) {
  DeliveredPos& pos = delivered_[rec.streamlet];
  const uint64_t next = rec.chunk_index + 1;
  if (rec.group > pos.group) {
    pos.group = rec.group;
    pos.next_chunk = next;
  } else if (rec.group == pos.group && next > pos.next_chunk) {
    pos.next_chunk = next;
  }
}

std::vector<ConsumedRecord> Consumer::Poll(size_t max_records) {
  std::vector<ConsumedRecord> out;
  for (;;) {
    if (!buffered_.empty()) {
      if (out.size() >= max_records) {
        // Exactly-once: never leave a chunk half-delivered. The committed
        // cursor is chunk-granular, so splitting a chunk across Polls
        // would make a commit between them either redeliver or skip the
        // chunk's remainder after a restart; round up to the boundary.
        if (!config_.exactly_once || out.empty() ||
            !SameChunk(out.back(), buffered_.front())) {
          break;
        }
      }
      out.push_back(std::move(buffered_.front()));
      buffered_.pop_front();
      if (config_.exactly_once &&
          (buffered_.empty() || !SameChunk(out.back(), buffered_.front()))) {
        // Chunk fully handed out (ingest buffers whole chunks, so an
        // empty deque means no more of its records exist): this is the
        // frontier Commit() persists.
        AdvanceDelivered(out.back());
      }
      continue;
    }
    if (out.size() >= max_records) break;
    auto fetched = fetched_.TryPop();
    if (!fetched) break;
    auto chunk = ChunkView::Parse(fetched->bytes);
    if (!chunk.ok() || !chunk->VerifyChecksum()) {
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    IngestChunk(fetched->streamlet, *chunk);
  }
  return out;
}

std::vector<ConsumedRecord> Consumer::PollBlocking(size_t max_records) {
  while (running_.load(std::memory_order_acquire)) {
    auto out = Poll(max_records);
    if (!out.empty()) return out;
    auto fetched = fetched_.Pop();  // blocks; returns nullopt on shutdown
    if (!fetched) break;
    auto chunk = ChunkView::Parse(fetched->bytes);
    if (chunk.ok() && chunk->VerifyChecksum()) {
      IngestChunk(fetched->streamlet, *chunk);
    }
  }
  return Poll(max_records);
}

Status Consumer::Commit() {
  if (!config_.exactly_once) {
    return Status(StatusCode::kInvalidArgument,
                  "Commit requires exactly_once");
  }
  if (delivered_.empty()) return OkStatus();
  ++commit_seq_;
  std::map<NodeId, rpc::CommitOffsetsRequest> per_broker;
  for (const auto& [sl, pos] : delivered_) {
    auto& req = per_broker[info_.streamlet_brokers[sl]];
    req.stream = info_.stream;
    req.consumer = config_.consumer_id;
    req.commit_seq = commit_seq_;
    req.epoch = epoch_;
    rpc::CommitOffsetsRequest::Entry e;
    e.streamlet = sl;
    e.group = pos.group;
    e.next_chunk = pos.next_chunk;
    req.entries.push_back(e);
  }
  // One attempt per leader; callers treat a failed Commit as "position
  // not saved" and simply retry the next round (re-committing the same
  // frontier is idempotent broker-side).
  Status first = OkStatus();
  for (auto& [broker, req] : per_broker) {
    rpc::Writer body;
    req.Encode(body);
    auto raw = network_.Call(
        broker, rpc::Frame(rpc::Opcode::kCommitOffsets, body));
    if (!raw.ok()) {
      if (first.ok()) first = raw.status();
      continue;
    }
    rpc::Reader r(*raw);
    auto resp = rpc::CommitOffsetsResponse::Decode(r);
    if (!resp.ok()) {
      if (first.ok()) first = resp.status();
      continue;
    }
    if (resp->status != StatusCode::kOk && first.ok()) {
      first = Status(resp->status, "CommitOffsets failed");
    }
  }
  if (first.ok()) {
    offset_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  return first;
}

bool Consumer::Finished() const {
  return finished_.load(std::memory_order_acquire);
}

void Consumer::Close() {
  if (!running_.exchange(false)) return;
  fetched_.Shutdown();
  if (requests_thread_.joinable()) requests_thread_.join();
  for (auto& t : fetch_threads_) {
    if (t.joinable()) t.join();
  }
  fetch_threads_.clear();
}

Consumer::Stats Consumer::GetStats() const {
  Stats out;
  out.records_consumed = records_consumed_.load(std::memory_order_relaxed);
  out.chunks_received = chunks_received_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  out.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  out.empty_responses = empty_responses_.load(std::memory_order_relaxed);
  out.checksum_failures =
      checksum_failures_.load(std::memory_order_relaxed);
  out.flow_control_pauses = fetched_.pauses();
  out.offset_commits = offset_commits_.load(std::memory_order_relaxed);
  out.system_chunks_skipped =
      system_chunks_skipped_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace kera
