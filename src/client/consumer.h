// Consumer client (paper Fig. 7), rebuilt as a pipelined fetch engine.
// One fetch worker per broker issues consume RPCs asynchronously, keeping
// up to ConsumerConfig::fetch_pipeline_depth requests in flight by
// striping the broker's active (streamlet, group) cursors across them —
// with at most one outstanding request per group, so chunks of a group
// always arrive in order. Fetched chunks land in a bounded FetchBuffer:
// a per-broker byte budget (fetch_buffer_bytes) pauses a broker's
// prefetch when too much data sits unpolled and resumes it when Poll()
// drains. Workers with nothing buffered fall back to a single broker-side
// long-poll request (fetch_max_wait_us) instead of spinning on empty
// responses. fetch_pipeline_depth == 1 selects the legacy serial engine.
//
// Groups are independently consumable units (paper §IV.A): within one
// streamlet, several groups are read in parallel (Q > 1 appends create
// interleaved groups), and group-level sharing splits a streamlet's
// groups across cooperating consumers. Consumers only ever receive
// durably replicated data (the broker enforces the durability gate).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "client/client_config.h"
#include "common/status.h"
#include "rpc/messages.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {

/// One record handed to the application. Owns its bytes.
struct ConsumedRecord {
  StreamletId streamlet = 0;
  GroupId group = 0;
  uint64_t chunk_index = 0;  // group_chunk_index of the containing chunk
  ProducerId producer = 0;
  std::vector<std::byte> value;
};

class Consumer {
 public:
  Consumer(ConsumerConfig config, rpc::Network& network);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Fetches stream metadata and starts the fetch workers.
  Status Connect();

  /// Returns up to `max_records` records, in order per group.
  /// Non-blocking: returns what is buffered (possibly nothing). In
  /// exactly_once mode the count rounds UP to a chunk boundary — the
  /// committed cursor is chunk-granular, so Poll never leaves a chunk
  /// half-delivered across a Commit().
  std::vector<ConsumedRecord> Poll(size_t max_records);

  /// Blocking variant: waits until at least one record arrives or the
  /// consumer is closed.
  std::vector<ConsumedRecord> PollBlocking(size_t max_records);

  /// Durably commits the position of everything Poll has handed out so
  /// far (exactly_once only): one CommitOffsets RPC per leader broker,
  /// persisted as a flagged system chunk in the virtual log. A consumer
  /// restarted with the same consumer_id resumes from here instead of
  /// redelivering. Call from the polling thread.
  Status Commit();

  void Close();

  /// True once every assigned streamlet of a sealed (bounded) stream has
  /// been fully fetched; Poll may still return buffered records.
  [[nodiscard]] bool Finished() const;

  struct Stats {
    uint64_t records_consumed = 0;
    uint64_t chunks_received = 0;
    uint64_t bytes_received = 0;
    uint64_t requests_sent = 0;
    uint64_t empty_responses = 0;
    uint64_t checksum_failures = 0;
    /// Times a broker's prefetch blocked on the fetch_buffer_bytes budget.
    uint64_t flow_control_pauses = 0;
    /// Successful Commit() rounds (exactly_once only).
    uint64_t offset_commits = 0;
    /// Offset-commit system chunks skipped (their records are cursor
    /// metadata, never handed to the application).
    uint64_t system_chunks_skipped = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] const rpc::StreamInfo& stream_info() const { return info_; }

  /// Coordinator-assigned session epoch (0 unless exactly_once).
  [[nodiscard]] uint32_t session_epoch() const { return epoch_; }

 private:
  /// Per-streamlet fetch state: the groups currently being read (several
  /// in parallel) plus the discovery cursor for groups not yet opened.
  /// Owned by exactly one fetch worker (streamlet -> leader broker is
  /// fixed at Connect), so no lock is needed.
  struct StreamletState {
    std::map<GroupId, uint64_t> active;  // group -> next chunk index
    GroupId next_unstarted = 0;          // next owned group to open
    uint32_t groups_created = 0;         // broker-announced group count
    bool done = false;                   // sealed stream fully drained
  };
  struct FetchedChunk {
    StreamletId streamlet = 0;
    NodeId broker = 0;  // leader it was fetched from (budget accounting)
    /// Full chunk frame, aliasing `response` (all chunks fetched by one
    /// consume RPC share its response buffer instead of being copied out
    /// one by one).
    std::span<const std::byte> bytes;
    std::shared_ptr<const std::vector<std::byte>> response;
  };

  /// Bounded hand-off queue between fetch workers and Poll(): the flow
  /// controller of the prefetch window. Tracks buffered-but-unpolled
  /// bytes per broker; a worker calls WaitBelowBudget before issuing and
  /// parks until Poll drains below budget (or shutdown). Shutdown wakes
  /// everything; Pop keeps draining queued chunks after shutdown.
  class FetchBuffer {
   public:
    void Push(FetchedChunk fc);
    std::optional<FetchedChunk> TryPop();
    std::optional<FetchedChunk> Pop();  // blocks; nullopt once drained + shut
    /// Returns false on shutdown, true once broker's bytes < budget.
    bool WaitBelowBudget(NodeId broker, size_t budget);
    void Shutdown();
    [[nodiscard]] uint64_t pauses() const;

   private:
    mutable std::mutex mu_;
    std::condition_variable pop_cv_;     // Pop waiters
    std::condition_variable budget_cv_;  // WaitBelowBudget waiters
    std::deque<FetchedChunk> items_;
    std::map<NodeId, size_t> buffered_;  // broker -> unpolled bytes
    uint64_t pauses_ = 0;
    bool shutdown_ = false;
  };

  /// Serial engine (fetch_pipeline_depth == 1): one thread, one blocking
  /// RPC at a time across all brokers — the pre-pipelining baseline.
  void SerialFetchLoop();
  /// Pipelined engine: per-broker worker striping available cursors over
  /// up to fetch_pipeline_depth concurrent CallAsync requests.
  void BrokerFetchLoop(NodeId broker,
                       const std::vector<StreamletId>& streamlets);
  /// Decodes one consume response and applies it; returns true when any
  /// chunk was delivered (counts an empty response otherwise).
  bool ProcessResponse(NodeId broker, std::vector<std::byte> raw);
  void HandleEntry(NodeId broker, StreamletState& state,
                   const rpc::ConsumeEntryResponse& entry,
                   const std::shared_ptr<const std::vector<std::byte>>& buf,
                   bool* got_data);
  void MarkStreamletDone(StreamletState& state);
  /// Ingests one verified chunk on the polling thread: buffers the
  /// records of data chunks for Poll (offset-commit system chunks carry
  /// cursor metadata, not user data, and are skipped). Does NOT move the
  /// delivered frontier — Commit() persists what Poll handed out, not
  /// what was prefetched; Poll advances the frontier per completed chunk.
  void IngestChunk(StreamletId streamlet, const ChunkView& chunk);
  /// Monotonically advances the delivered frontier past `rec`'s chunk.
  /// Called by Poll when the chunk's last buffered record is handed out.
  void AdvanceDelivered(const ConsumedRecord& rec);
  [[nodiscard]] GroupId FirstOwnedGroupAtOrAfter(GroupId g) const;
  /// Opens owned groups below groups_created into the active set, up to
  /// the parallelism cap.
  void OpenDiscoveredGroups(StreamletState& state);

  const ConsumerConfig config_;
  rpc::Network& network_;
  rpc::StreamInfo info_;
  std::vector<StreamletId> assigned_;

  // Fetch-worker state; each StreamletState is touched only by the worker
  // of its leader broker (the map itself is immutable after Connect).
  std::map<StreamletId, StreamletState> states_;

  FetchBuffer fetched_;
  std::atomic<bool> running_{false};
  std::atomic<bool> finished_{false};
  std::atomic<size_t> done_streamlets_{0};
  std::atomic<size_t> active_fetch_workers_{0};
  std::thread requests_thread_;             // serial engine
  std::vector<std::thread> fetch_threads_;  // pipelined engine

  // Source-side state: partially consumed chunk queue.
  std::deque<ConsumedRecord> buffered_;

  // Exactly-once state. epoch_ is immutable after Connect; the delivered
  // frontier and commit sequence are touched only by the application
  // thread (Poll/PollBlocking/Commit), so no locks.
  struct DeliveredPos {
    GroupId group = 0;
    uint64_t next_chunk = 0;
  };
  uint32_t epoch_ = 0;
  uint64_t commit_seq_ = 0;
  std::map<StreamletId, DeliveredPos> delivered_;

  // Hot-path counters are relaxed atomics (touched per chunk / per poll).
  std::atomic<uint64_t> records_consumed_{0};
  std::atomic<uint64_t> chunks_received_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> requests_sent_{0};
  std::atomic<uint64_t> empty_responses_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> offset_commits_{0};
  std::atomic<uint64_t> system_chunks_skipped_{0};
};

}  // namespace kera
