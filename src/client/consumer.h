// Consumer client (paper Fig. 7): a Requests thread pulls chunks — one
// request per broker, with entries for every group this consumer is
// currently reading — and hands them through a queue to the Source side,
// where Poll() materializes records. Groups are independently consumable
// units (paper §IV.A): within one streamlet, several groups are read in
// parallel (Q > 1 appends create interleaved groups), and group-level
// sharing splits a streamlet's groups across cooperating consumers.
// Consumers only ever receive durably replicated data (the broker
// enforces the durability gate).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "client/client_config.h"
#include "common/queue.h"
#include "common/status.h"
#include "rpc/messages.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {

/// One record handed to the application. Owns its bytes.
struct ConsumedRecord {
  StreamletId streamlet = 0;
  GroupId group = 0;
  uint64_t chunk_index = 0;  // group_chunk_index of the containing chunk
  ProducerId producer = 0;
  std::vector<std::byte> value;
};

class Consumer {
 public:
  Consumer(ConsumerConfig config, rpc::Network& network);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Fetches stream metadata and starts the requests thread.
  Status Connect();

  /// Returns up to `max_records` records, in order per group.
  /// Non-blocking: returns what is buffered (possibly nothing).
  std::vector<ConsumedRecord> Poll(size_t max_records);

  /// Blocking variant: waits until at least one record arrives or the
  /// consumer is closed.
  std::vector<ConsumedRecord> PollBlocking(size_t max_records);

  void Close();

  /// True once every assigned streamlet of a sealed (bounded) stream has
  /// been fully fetched; Poll may still return buffered records.
  [[nodiscard]] bool Finished() const;

  struct Stats {
    uint64_t records_consumed = 0;
    uint64_t chunks_received = 0;
    uint64_t bytes_received = 0;
    uint64_t requests_sent = 0;
    uint64_t empty_responses = 0;
    uint64_t checksum_failures = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] const rpc::StreamInfo& stream_info() const { return info_; }

 private:
  /// Per-streamlet fetch state: the groups currently being read (several
  /// in parallel) plus the discovery cursor for groups not yet opened.
  struct StreamletState {
    std::map<GroupId, uint64_t> active;  // group -> next chunk index
    GroupId next_unstarted = 0;          // next owned group to open
    uint32_t groups_created = 0;         // broker-announced group count
    bool done = false;                   // sealed stream fully drained
  };
  struct FetchedChunk {
    StreamletId streamlet = 0;
    /// Full chunk frame, aliasing `response` (all chunks fetched by one
    /// consume RPC share its response buffer instead of being copied out
    /// one by one).
    std::span<const std::byte> bytes;
    std::shared_ptr<const std::vector<std::byte>> response;
  };

  void RequestsLoop();
  void HandleEntry(StreamletState& state,
                   const rpc::ConsumeEntryResponse& entry,
                   const std::shared_ptr<const std::vector<std::byte>>& buf,
                   bool* got_data);
  [[nodiscard]] GroupId FirstOwnedGroupAtOrAfter(GroupId g) const;
  /// Opens owned groups below groups_created into the active set, up to
  /// the parallelism cap.
  void OpenDiscoveredGroups(StreamletState& state);

  const ConsumerConfig config_;
  rpc::Network& network_;
  rpc::StreamInfo info_;
  std::vector<StreamletId> assigned_;

  // Requests-thread state.
  std::map<StreamletId, StreamletState> states_;

  BlockingQueue<FetchedChunk> fetched_;
  std::atomic<bool> running_{false};
  std::atomic<bool> finished_{false};
  std::thread requests_thread_;

  // Source-side state: partially consumed chunk queue.
  std::deque<ConsumedRecord> buffered_;

  // Hot-path counters are relaxed atomics (touched per chunk / per poll).
  std::atomic<uint64_t> records_consumed_{0};
  std::atomic<uint64_t> chunks_received_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> requests_sent_{0};
  std::atomic<uint64_t> empty_responses_{0};
  std::atomic<uint64_t> checksum_failures_{0};
};

}  // namespace kera
