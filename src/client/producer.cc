#include "client/producer.h"

#include <array>
#include <cassert>

#include "common/logging.h"

namespace kera {
namespace {

uint64_t HashBytes(std::span<const std::byte> data) {
  // FNV-1a
  uint64_t h = 1469598103934665603ull;
  for (std::byte b : data) {
    h ^= uint64_t(b);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Producer::Producer(ProducerConfig config, rpc::Network& network)
    : config_(std::move(config)), network_(network) {
  for (size_t i = 0; i < config_.chunk_pool_size; ++i) {
    pool_.Push(std::make_unique<ChunkBuilder>(config_.chunk_size));
  }
}

Producer::~Producer() { (void)Close(); }

Status Producer::Connect() {
  rpc::GetStreamInfoRequest req;
  req.name = config_.stream;
  rpc::Writer body;
  req.Encode(body);
  auto raw =
      network_.Call(kCoordinatorNode, rpc::Frame(rpc::Opcode::kGetStreamInfo,
                                                 body));
  if (!raw.ok()) return raw.status();
  rpc::Reader r(*raw);
  auto resp = rpc::GetStreamInfoResponse::Decode(r);
  if (!resp.ok()) return resp.status();
  if (resp->status != StatusCode::kOk) {
    return Status(resp->status, "GetStreamInfo failed");
  }
  info_ = resp->info;
  if (config_.exactly_once) {
    // Idempotent-producer handshake: the coordinator bumps this producer
    // id's epoch, fencing any prior instance still in flight.
    rpc::AllocateProducerRequest areq;
    areq.producer = config_.producer_id;
    rpc::Writer abody;
    areq.Encode(abody);
    auto araw = network_.Call(
        kCoordinatorNode, rpc::Frame(rpc::Opcode::kAllocateProducer, abody));
    if (!araw.ok()) return araw.status();
    rpc::Reader ar(*araw);
    auto aresp = rpc::AllocateProducerResponse::Decode(ar);
    if (!aresp.ok()) return aresp.status();
    if (aresp->status != StatusCode::kOk) {
      return Status(aresp->status, "AllocateProducer failed");
    }
    epoch_ = aresp->epoch;
  }
  running_.store(true, std::memory_order_release);
  requests_thread_ = std::thread([this] { RequestsLoop(); });
  return OkStatus();
}

std::unique_ptr<ChunkBuilder> Producer::AcquireBuilder() {
  // Blocking pop implements producer backpressure when the broker falls
  // behind (all pooled chunks are in flight).
  auto builder = pool_.Pop();
  if (!builder) return nullptr;
  return std::move(*builder);
}

Status Producer::Send(std::span<const std::byte> value) {
  uint32_t m = uint32_t(info_.streamlet_brokers.size());
  StreamletId streamlet = StreamletId(round_robin_++ % m);
  return SendRecord({}, value, streamlet);
}

Status Producer::SendKeyed(std::span<const std::byte> key,
                           std::span<const std::byte> value) {
  uint32_t m = uint32_t(info_.streamlet_brokers.size());
  StreamletId streamlet = StreamletId(HashBytes(key) % m);
  return SendRecord(key, value, streamlet);
}

Status Producer::SendRecord(std::span<const std::byte> key,
                            std::span<const std::byte> value,
                            StreamletId streamlet) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "producer not connected");
  }
  if (failed_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "producer request loop failed");
  }
  // Seal any chunk that has waited past the linger timeout before taking
  // on new records (the source waits no more than linger_us for a chunk
  // to fill, then marks it ready).
  MaybeLingerFlush();
  auto it = open_chunks_.find(streamlet);
  if (it == open_chunks_.end()) {
    auto builder = AcquireBuilder();
    if (builder == nullptr) {
      return Status(StatusCode::kUnavailable, "producer shut down");
    }
    builder->Start(info_.stream, streamlet, config_.producer_id, epoch_);
    OpenChunk open;
    open.builder = std::move(builder);
    it = open_chunks_.emplace(streamlet, std::move(open)).first;
  }
  OpenChunk& open = it->second;
  if (open.builder->empty()) {
    open.first_record_at = std::chrono::steady_clock::now();
  }

  bool appended =
      key.empty()
          ? open.builder->AppendValue(value)
          : [&] {
              std::span<const std::byte> keys[] = {key};
              return open.builder->AppendRecord(keys, value);
            }();
  if (!appended) {
    // Chunk full: seal it, enqueue, and retry in a fresh chunk.
    KERA_RETURN_IF_ERROR(SealAndEnqueue(streamlet, open));
    auto builder = AcquireBuilder();
    if (builder == nullptr) {
      return Status(StatusCode::kUnavailable, "producer shut down");
    }
    builder->Start(info_.stream, streamlet, config_.producer_id, epoch_);
    open.builder = std::move(builder);
    open.first_record_at = std::chrono::steady_clock::now();
    if (!(key.empty() ? open.builder->AppendValue(value) : [&] {
          std::span<const std::byte> keys[] = {key};
          return open.builder->AppendRecord(keys, value);
        }())) {
      return Status(StatusCode::kInvalidArgument, "record exceeds chunk size");
    }
  }
  records_sent_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status Producer::SealAndEnqueue(StreamletId streamlet, OpenChunk& open) {
  if (open.builder == nullptr || open.builder->empty()) return OkStatus();
  ChunkSeq seq = ++next_seq_[streamlet];  // sequences start at 1
  auto bytes = open.builder->Seal(seq);

  SealedChunk sealed;
  sealed.streamlet = streamlet;
  sealed.broker = info_.streamlet_brokers[streamlet];
  sealed.bytes = bytes.size();
  sealed.records = open.builder->record_count();
  sealed.builder = std::move(open.builder);
  chunks_enqueued_.fetch_add(1, std::memory_order_release);
  sealed_.Push(std::move(sealed));
  chunks_sent_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

void Producer::MaybeLingerFlush() {
  // The source waits no more than linger before marking a chunk ready.
  auto now = std::chrono::steady_clock::now();
  for (auto& [streamlet, open] : open_chunks_) {
    if (open.builder == nullptr || open.builder->empty()) continue;
    auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
                      now - open.first_record_at)
                      .count();
    if (waited >= int64_t(config_.linger_us)) {
      (void)SealAndEnqueue(streamlet, open);
      open.builder = AcquireBuilder();
      if (open.builder != nullptr) {
        open.builder->Start(info_.stream, streamlet, config_.producer_id,
                            epoch_);
      }
    }
  }
}

void Producer::RequestsLoop() {
  while (true) {
    auto first = sealed_.Pop();
    if (!first) break;  // shutdown

    // Gather more sealed chunks without blocking, grouped per broker, up
    // to request_size per broker (one request per broker, as in Fig. 6).
    std::map<NodeId, std::vector<SealedChunk>> per_broker;
    std::map<NodeId, size_t> broker_bytes;
    auto add = [&](SealedChunk&& c) {
      broker_bytes[c.broker] += c.bytes;
      per_broker[c.broker].push_back(std::move(c));
    };
    add(std::move(*first));
    while (true) {
      auto more = sealed_.TryPop();
      if (!more) break;
      if (broker_bytes[more->broker] + more->bytes > config_.request_size) {
        // Send what we have for that broker later; push back is not
        // supported, so just include it — request_size is a soft cap per
        // batch round.
        add(std::move(*more));
        break;
      }
      add(std::move(*more));
    }

    // One request per broker; issue them in parallel. The frame stays in
    // scatter-gather form: the Writer's inline runs plus spans into the
    // sealed chunk builders, both owned by the InFlight entry — alive
    // until every retry round's futures have resolved, as the parts send
    // path requires. Vectoring transports (SocketNetwork) put these
    // pieces on the wire without ever materializing the frame.
    struct InFlight {
      NodeId broker;
      rpc::Writer body;
      std::array<std::byte, 2> opcode;
      std::vector<SealedChunk> chunks;
    };
    std::vector<InFlight> requests;
    for (auto& [broker, chunks] : per_broker) {
      rpc::ProduceRequest req;
      req.producer = config_.producer_id;
      req.stream = info_.stream;
      for (auto& c : chunks) {
        req.chunks.push_back(c.builder->SealedView());
      }
      InFlight inflight;
      inflight.broker = broker;
      inflight.body = rpc::Writer(64);
      req.Encode(inflight.body);
      inflight.chunks = std::move(chunks);
      requests.push_back(std::move(inflight));
    }

    // Issue the whole round over CallAsync and collect; brokers that fail
    // are retried together in the next attempt round.
    auto start = std::chrono::steady_clock::now();
    std::vector<size_t> pending(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) pending[i] = i;
    for (int attempt = 0;
         attempt <= config_.request_retries && !pending.empty(); ++attempt) {
      if (attempt > 0) {
        // The broker a chunk was sealed against may no longer lead its
        // streamlet (crash recovery or migration mid-flight). Re-resolve
        // leaders and, if any moved, re-partition the pending sealed
        // chunks to the current leaders — the sealed frames are reused
        // byte for byte, so the retry carries the same (pid, seq, epoch)
        // and the new leader's dedup state (rebuilt from the backups)
        // recognizes anything the old leader already accepted.
        std::vector<NodeId> leaders;
        if (FetchLeaders(&leaders)) {
          bool moved = false;
          for (size_t i : pending) {
            for (const SealedChunk& c : requests[i].chunks) {
              if (c.streamlet < leaders.size() &&
                  leaders[c.streamlet] != requests[i].broker) {
                moved = true;
                break;
              }
            }
            if (moved) break;
          }
          if (moved) {
            retry_repartitions_.fetch_add(1, std::memory_order_relaxed);
            std::map<NodeId, std::vector<SealedChunk>> regrouped;
            for (size_t i : pending) {
              for (auto& c : requests[i].chunks) {
                if (c.streamlet < leaders.size()) {
                  c.broker = leaders[c.streamlet];
                }
                regrouped[c.broker].push_back(std::move(c));
              }
              requests[i].chunks.clear();
            }
            std::vector<size_t> repointed;
            for (auto& [broker, chunks] : regrouped) {
              rpc::ProduceRequest req;
              req.producer = config_.producer_id;
              req.stream = info_.stream;
              for (auto& c : chunks) {
                req.chunks.push_back(c.builder->SealedView());
              }
              InFlight inflight;
              inflight.broker = broker;
              inflight.body = rpc::Writer(64);
              req.Encode(inflight.body);
              inflight.chunks = std::move(chunks);
              repointed.push_back(requests.size());
              requests.push_back(std::move(inflight));
            }
            pending = std::move(repointed);
          }
        }
      }
      std::vector<std::future<Result<std::vector<std::byte>>>> futures;
      futures.reserve(pending.size());
      for (size_t i : pending) {
        rpc::BytesRefParts parts = rpc::FrameAsParts(
            rpc::Opcode::kProduce, requests[i].body, requests[i].opcode);
        futures.push_back(
            network_.CallAsyncParts(requests[i].broker, parts));
      }
      std::vector<size_t> still_pending;
      for (size_t f = 0; f < futures.size(); ++f) {
        InFlight& inflight = requests[pending[f]];
        auto raw = [&]() -> Result<std::vector<std::byte>> {
          try {
            return futures[f].get();
          } catch (const std::future_error&) {
            // Network shut down with the call in flight.
            return Status(StatusCode::kUnavailable, "network stopped");
          }
        }();
        bool ok = false;
        bool fenced = false;
        if (raw.ok()) {
          rpc::Reader r(*raw);
          auto resp = rpc::ProduceResponse::Decode(r);
          if (resp.ok() && resp->status == StatusCode::kFenced) {
            // A newer instance of this producer id exists; no retry can
            // ever succeed. Fail permanently instead of burning retries.
            fenced = true;
          }
          if (resp.ok() && resp->status == StatusCode::kOk) {
            requests_sent_.fetch_add(1, std::memory_order_relaxed);
            duplicates_reported_.fetch_add(resp->duplicates,
                                           std::memory_order_relaxed);
            bytes_sent_.fetch_add(inflight.opcode.size() +
                                      inflight.body.size(),
                                  std::memory_order_relaxed);
            auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
            {
              std::lock_guard<std::mutex> lock(latency_mu_);
              request_latency_us_.Record(uint64_t(us));
            }
            ok = true;
          }
        }
        if (ok) {
          AckChunks(inflight.chunks);
        } else if (fenced) {
          fenced_rejections_.fetch_add(1, std::memory_order_relaxed);
          request_failures_.fetch_add(1, std::memory_order_relaxed);
          failed_.store(true, std::memory_order_release);
          AckChunks(inflight.chunks);
        } else {
          still_pending.push_back(pending[f]);
        }
      }
      pending = std::move(still_pending);
    }
    for (size_t i : pending) {
      request_failures_.fetch_add(1, std::memory_order_relaxed);
      failed_.store(true, std::memory_order_release);
      // Recycle builders even on failure: the producer is now failed and
      // Send() will refuse further records.
      AckChunks(requests[i].chunks);
    }
  }
}

bool Producer::FetchLeaders(std::vector<NodeId>* leaders) {
  rpc::GetStreamInfoRequest req;
  req.name = config_.stream;
  rpc::Writer body;
  req.Encode(body);
  auto raw = network_.Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kGetStreamInfo, body));
  if (!raw.ok()) return false;
  rpc::Reader r(*raw);
  auto resp = rpc::GetStreamInfoResponse::Decode(r);
  if (!resp.ok() || resp->status != StatusCode::kOk) return false;
  *leaders = resp->info.streamlet_brokers;
  return true;
}

void Producer::AckChunks(std::vector<SealedChunk>& chunks) {
  for (auto& c : chunks) {
    pool_.Push(std::move(c.builder));
  }
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    chunks_acked_.fetch_add(chunks.size(), std::memory_order_release);
  }
  ack_cv_.notify_all();
}

Status Producer::Flush() {
  for (auto& [streamlet, open] : open_chunks_) {
    KERA_RETURN_IF_ERROR(SealAndEnqueue(streamlet, open));
    open.builder = nullptr;
  }
  open_chunks_.clear();
  uint64_t target = chunks_enqueued_.load(std::memory_order_acquire);
  {
    std::unique_lock<std::mutex> lock(ack_mu_);
    ack_cv_.wait(lock, [&] {
      return chunks_acked_.load(std::memory_order_acquire) >= target;
    });
  }
  // Chunks are also recycled on permanent failure; only a clean run counts.
  if (failed_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kUnavailable, "produce requests failed");
  }
  return OkStatus();
}

Status Producer::Close() {
  if (!running_.exchange(false)) return OkStatus();
  Status s = Flush();
  sealed_.Shutdown();
  pool_.Shutdown();
  if (requests_thread_.joinable()) requests_thread_.join();
  return s;
}

Producer::Stats Producer::GetStats() const {
  Stats out;
  out.records_sent = records_sent_.load(std::memory_order_relaxed);
  out.chunks_sent = chunks_sent_.load(std::memory_order_relaxed);
  out.chunks_acked = chunks_acked_.load(std::memory_order_relaxed);
  out.duplicates_reported =
      duplicates_reported_.load(std::memory_order_relaxed);
  out.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  out.request_failures = request_failures_.load(std::memory_order_relaxed);
  out.fenced_rejections = fenced_rejections_.load(std::memory_order_relaxed);
  out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  out.retry_repartitions =
      retry_repartitions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    out.request_latency_us = request_latency_us_;
  }
  return out;
}

}  // namespace kera
