// Shared client-side configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace kera {

enum class Partitioner : uint8_t {
  kRoundRobin = 0,  // non-keyed records cycle over streamlets
  kKeyHash = 1,     // records hash by key to a streamlet
};

struct ProducerConfig {
  ProducerId producer_id = 0;
  std::string stream;
  /// Fixed chunk size (paper: e.g. 1 KB - 64 KB).
  size_t chunk_size = 16 << 10;
  /// Max bytes of chunks batched into one request per broker.
  size_t request_size = 1 << 20;
  /// linger.ms analogue: max time a non-empty chunk waits before being
  /// pushed (microseconds).
  uint64_t linger_us = 1000;
  Partitioner partitioner = Partitioner::kRoundRobin;
  /// Pooled chunk builders (the client's chunk cache; paper: up to 1000).
  size_t chunk_pool_size = 256;
  /// Request retries on transport errors (dedup makes retries safe).
  int request_retries = 3;
};

struct ConsumerConfig {
  std::string stream;
  /// Streamlets this consumer owns; empty = all.
  std::vector<StreamletId> streamlets;
  /// Group-level sharing (the paper's vertical scalability: "an unlimited
  /// number of groups that can be processed in parallel by multiple
  /// consumers"): this consumer processes only the groups with
  /// group_id % share_count == share_index on its streamlets. Every
  /// member must use the same share_count. 1/0 = own every group.
  uint32_t share_count = 1;
  uint32_t share_index = 0;
  uint32_t max_chunks_per_entry = 4;
  uint32_t max_bytes_per_request = 4u << 20;
  /// Idle backoff when no data is available (microseconds).
  uint64_t idle_backoff_us = 200;
};

}  // namespace kera
