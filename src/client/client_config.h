// Shared client-side configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace kera {

enum class Partitioner : uint8_t {
  kRoundRobin = 0,  // non-keyed records cycle over streamlets
  kKeyHash = 1,     // records hash by key to a streamlet
};

struct ProducerConfig {
  ProducerId producer_id = 0;
  std::string stream;
  /// Fixed chunk size (paper: e.g. 1 KB - 64 KB).
  size_t chunk_size = 16 << 10;
  /// Max bytes of chunks batched into one request per broker.
  size_t request_size = 1 << 20;
  /// linger.ms analogue: max time a non-empty chunk waits before being
  /// pushed (microseconds).
  uint64_t linger_us = 1000;
  Partitioner partitioner = Partitioner::kRoundRobin;
  /// Pooled chunk builders (the client's chunk cache; paper: up to 1000).
  size_t chunk_pool_size = 256;
  /// Request retries on transport errors (dedup makes retries safe).
  int request_retries = 3;
  /// End-to-end exactly-once: Connect() performs an AllocateProducer
  /// handshake with the coordinator and stamps the returned session epoch
  /// into every chunk header (the 64-byte extended format). After a
  /// re-allocation of the same producer id, brokers fence the old
  /// instance's chunks with kFenced — a zombie can never duplicate data
  /// behind its successor's back. Off by default: chunks keep the classic
  /// 56-byte epoch-less header, byte for byte.
  bool exactly_once = false;
};

struct ConsumerConfig {
  std::string stream;
  /// Streamlets this consumer owns; empty = all.
  std::vector<StreamletId> streamlets;
  /// Group-level sharing (the paper's vertical scalability: "an unlimited
  /// number of groups that can be processed in parallel by multiple
  /// consumers"): this consumer processes only the groups with
  /// group_id % share_count == share_index on its streamlets. Every
  /// member must use the same share_count. 1/0 = own every group.
  uint32_t share_count = 1;
  uint32_t share_index = 0;
  uint32_t max_chunks_per_entry = 4;
  uint32_t max_bytes_per_request = 4u << 20;
  /// Idle backoff when no data is available (microseconds). Only used
  /// when long-poll is disabled (fetch_max_wait_us == 0) or a broker is
  /// unreachable; with long-poll the broker paces the consumer.
  uint64_t idle_backoff_us = 200;
  /// Consume RPCs kept in flight per broker. 1 selects the serial engine
  /// (one thread, one blocking RPC at a time across all brokers — the
  /// pre-pipelining baseline); >1 runs one fetch worker per broker that
  /// stripes the broker's active groups over up to this many concurrent
  /// requests, so fetch overlaps decode/Poll and brokers never serialize
  /// on each other.
  uint32_t fetch_pipeline_depth = 4;
  /// Byte budget of the prefetch window, per broker: once this many
  /// fetched-but-unpolled bytes are buffered for a broker, its fetch
  /// pauses and resumes when Poll drains below the budget. In-flight
  /// requests may overshoot by up to fetch_pipeline_depth *
  /// max_bytes_per_request.
  size_t fetch_buffer_bytes = 8u << 20;
  /// Long-poll: idle fetches ask the broker to park the request until
  /// data is durable (or this wait elapses) instead of returning empty.
  /// 0 restores immediate-return polling with idle_backoff_us sleeps.
  uint64_t fetch_max_wait_us = 50'000;
  /// Minimum bytes a long-polled fetch waits for before returning (the
  /// broker returns earlier on group rollover, seal, or timeout).
  uint32_t fetch_min_bytes = 1;
  /// Stable consumer identity for durable offset commits; combined with
  /// the top bit into a system producer id (0x80000000 | consumer_id)
  /// under which commit chunks are sequenced and deduplicated.
  uint32_t consumer_id = 0;
  /// End-to-end exactly-once: Connect() allocates a session epoch from
  /// the coordinator (so a restarted consumer's commits fence its
  /// predecessor's) and resumes every assigned streamlet from its last
  /// durably committed cursor instead of the beginning; Commit() durably
  /// persists the position of everything Poll has handed out. Requires
  /// share_count == 1 and a stream with one active group per streamlet
  /// (the committed cursor is a single per-streamlet position).
  bool exactly_once = false;
};

}  // namespace kera
