// Producer client (paper Fig. 6): two threads communicating through
// shared memory. The caller's thread acts as the Source — Send() appends
// records into per-streamlet chunk builders (recycled through a pool) and
// hands filled or lingered chunks over an internal queue. The Requests
// thread batches one chunk per streamlet into a request per broker (up to
// request_size) and pushes them over the network, retrying on errors
// (exactly-once is guaranteed by broker-side dedup on chunk sequences).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "client/client_config.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/status.h"
#include "rpc/messages.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {

class Producer {
 public:
  Producer(ProducerConfig config, rpc::Network& network);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Fetches stream metadata and starts the requests thread.
  Status Connect();

  /// Appends one non-keyed record (round-robin over streamlets).
  /// Blocks when the chunk pool is exhausted (backpressure).
  Status Send(std::span<const std::byte> value);

  /// Appends one keyed record (streamlet = hash(key) % M).
  Status SendKeyed(std::span<const std::byte> key,
                   std::span<const std::byte> value);

  /// Pushes all buffered chunks and waits until every chunk sent so far
  /// has been acknowledged.
  Status Flush();

  /// Flush + stop the requests thread.
  Status Close();

  struct Stats {
    uint64_t records_sent = 0;
    uint64_t chunks_sent = 0;
    uint64_t chunks_acked = 0;
    uint64_t duplicates_reported = 0;
    uint64_t requests_sent = 0;
    uint64_t request_failures = 0;
    /// Requests rejected with kFenced: a newer instance of this producer
    /// id was allocated, so this one stopped permanently (no retries).
    uint64_t fenced_rejections = 0;
    uint64_t bytes_sent = 0;
    /// Retry rounds that re-partitioned pending sealed chunks to moved
    /// streamlet leaders (crash recovery / migration while in flight).
    uint64_t retry_repartitions = 0;
    Histogram request_latency_us;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] const rpc::StreamInfo& stream_info() const { return info_; }

  /// Coordinator-assigned session epoch (0 unless exactly_once).
  [[nodiscard]] uint32_t session_epoch() const { return epoch_; }

 private:
  struct SealedChunk {
    std::unique_ptr<ChunkBuilder> builder;
    StreamletId streamlet = 0;
    NodeId broker = 0;
    size_t bytes = 0;
    uint32_t records = 0;
  };
  struct OpenChunk {
    std::unique_ptr<ChunkBuilder> builder;
    std::chrono::steady_clock::time_point first_record_at{};
  };

  Status SendRecord(std::span<const std::byte> key,
                    std::span<const std::byte> value, StreamletId streamlet);
  /// Re-resolves the stream's current streamlet leaders from the
  /// coordinator into `leaders` (requests-thread only; info_ itself stays
  /// immutable after Connect so the source thread reads it without locks).
  bool FetchLeaders(std::vector<NodeId>* leaders);
  Status SealAndEnqueue(StreamletId streamlet, OpenChunk& open);
  void MaybeLingerFlush();
  std::unique_ptr<ChunkBuilder> AcquireBuilder();
  void RequestsLoop();
  /// Recycles the chunks' builders into the pool, bumps chunks_acked_ and
  /// wakes any Flush() waiter.
  void AckChunks(std::vector<SealedChunk>& chunks);

  const ProducerConfig config_;
  rpc::Network& network_;
  rpc::StreamInfo info_;
  /// Session epoch from the Connect() handshake (0 = exactly_once off;
  /// chunks then keep the classic 56-byte header). Immutable after
  /// Connect, so both threads read it freely.
  uint32_t epoch_ = 0;

  // Source-thread state (single caller thread by contract).
  std::map<StreamletId, OpenChunk> open_chunks_;
  std::map<StreamletId, ChunkSeq> next_seq_;
  size_t round_robin_ = 0;

  // Shared: sealed chunks flowing to the requests thread, empty builders
  // flowing back (the paper's shared-memory chunk recycling).
  BlockingQueue<SealedChunk> sealed_;
  BlockingQueue<std::unique_ptr<ChunkBuilder>> pool_;
  std::atomic<uint64_t> chunks_enqueued_{0};
  std::atomic<uint64_t> chunks_acked_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> failed_{false};

  // Flush() sleeps here until the requests thread has acked (or given up
  // on) every chunk enqueued before the flush.
  std::mutex ack_mu_;
  std::condition_variable ack_cv_;

  std::thread requests_thread_;

  // Hot-path counters are relaxed atomics (Send/Seal touch them per record
  // or per chunk); only the latency histogram — one Record per request —
  // stays behind a mutex.
  std::atomic<uint64_t> records_sent_{0};
  std::atomic<uint64_t> chunks_sent_{0};
  std::atomic<uint64_t> duplicates_reported_{0};
  std::atomic<uint64_t> requests_sent_{0};
  std::atomic<uint64_t> request_failures_{0};
  std::atomic<uint64_t> fenced_rejections_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> retry_repartitions_{0};
  mutable std::mutex latency_mu_;
  Histogram request_latency_us_;
};

}  // namespace kera
