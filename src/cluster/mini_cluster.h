// MiniCluster: an in-process KerA cluster — one coordinator plus N nodes,
// each hosting a broker and a backup service — wired over a ThreadedNetwork
// (dispatch/worker threads per node) or a DirectNetwork (deterministic,
// single-threaded). Used by integration tests and the examples.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backup/backup.h"
#include "broker/broker.h"
#include "coordinator/coordinator.h"
#include "rpc/socket_transport.h"
#include "rpc/transport.h"

namespace kera {

/// Which Network implementation carries the cluster's RPCs.
enum class MiniClusterTransport {
  /// Legacy selection: workers_per_node > 0 -> kThreaded, else kDirect.
  kAuto,
  /// DirectNetwork: handler runs inline on the caller thread.
  kDirect,
  /// ThreadedNetwork: in-process queues + worker threads per node.
  kThreaded,
  /// SocketNetwork: real TCP over loopback, multiplexed framing.
  kSocket,
};

struct MiniClusterConfig {
  uint32_t nodes = 4;
  /// Worker threads per node (RPC dispatch); 0 selects DirectNetwork.
  int workers_per_node = 4;
  /// Transport selection; kAuto preserves the workers_per_node behavior.
  MiniClusterTransport transport = MiniClusterTransport::kAuto;
  size_t broker_memory_bytes = size_t(512) << 20;
  size_t segment_size = 1u << 20;
  uint32_t segments_per_group = 4;
  size_t virtual_segment_capacity = 1u << 20;
  size_t replication_max_batch_bytes = 1u << 20;
  uint32_t vlogs_per_broker = 4;
  /// Replication pipelining (see BrokerConfig): batches in flight per
  /// vlog, and background replication worker threads per broker (0 =
  /// synchronous replication on the produce path).
  uint32_t replication_window = 1;
  uint32_t replication_workers = 0;
  /// Broker-side cap on consume long-poll waits (see BrokerConfig).
  uint64_t max_consume_wait_us = 1'000'000;
  /// Shared-nothing broker shards (see BrokerConfig::shards). 0 = auto:
  /// read KERA_BROKER_SHARDS from the environment, defaulting to 1. With
  /// the socket transport, brokers and backups also register shards
  /// server reactors with rpc::RouteFrameToShard as the frame router, so
  /// produce/consume/replicate frames land on the shard that owns their
  /// streamlet/vlog. Direct/Threaded transports ignore routing (any
  /// thread handles any frame; the broker's per-shard locks keep it
  /// correct) — with shards == 1 they reproduce the original behavior
  /// exactly.
  uint32_t broker_shards = 0;
  /// Parallel crash recovery (see CoordinatorConfig). recovery_parallelism
  /// 0 = auto: read KERA_RECOVERY_PARALLELISM from the environment,
  /// defaulting to 4. On the Threaded/Socket transports the coordinator
  /// fans recovery lanes out over real threads; on Direct (and external
  /// networks — the chaos harness) execution stays serial/deterministic
  /// and the parallel makespan is modeled from measured per-task costs.
  uint32_t recovery_parallelism = 0;
  uint32_t recovery_read_batch = 8;
  /// Backup flush directory template; empty disables disk flushing. A
  /// "%u" is replaced by the node id.
  std::string backup_dir;
  /// Backup segment-log knobs (meaningful only with a backup_dir); 0
  /// keeps the StorageConfig default. gc_live_ratio < 0 keeps the
  /// default, 0 disables GC (chaos power-loss mode needs deterministic
  /// disk state).
  size_t backup_log_file_bytes = 0;
  size_t backup_flush_batch_bytes = 0;
  uint64_t backup_flush_interval_us = 0;
  double backup_gc_live_ratio = -1.0;

  /// Tiered broker memory (see BrokerConfig::memory_budget_bytes): 0
  /// keeps every segment resident (the pre-tiering behavior, exactly).
  /// With a budget, `broker_spill_dir` must be set — a directory template
  /// with "%u" for the node id; each broker incarnation spills under its
  /// own subdirectory and CrashNode deletes the node's spill tree (the
  /// spill log is process-local scratch; recovery uses the backups).
  size_t broker_memory_budget_bytes = 0;
  std::string broker_spill_dir;
  size_t broker_cold_cache_bytes = 0;
  uint32_t broker_readahead_segments = 2;

  /// External network injection (fault-injection harnesses wrap a
  /// DirectNetwork in a decorator): when `external_network` is set the
  /// cluster uses it instead of constructing a transport, and the three
  /// callbacks implement registration and crash/restore against it. The
  /// network must outlive the cluster. `transport` is ignored.
  rpc::Network* external_network = nullptr;
  std::function<void(NodeId, rpc::RpcHandler*)> external_register;
  std::function<void(NodeId)> external_crash;
  std::function<void(NodeId, rpc::RpcHandler*)> external_restore;
};

class MiniCluster {
 public:
  explicit MiniCluster(MiniClusterConfig config);
  ~MiniCluster();

  MiniCluster(const MiniCluster&) = delete;
  MiniCluster& operator=(const MiniCluster&) = delete;

  [[nodiscard]] rpc::Network& network() { return *network_; }
  [[nodiscard]] Coordinator& coordinator() { return *coordinator_; }
  [[nodiscard]] Broker& broker(NodeId node) { return *brokers_[node - 1]; }
  [[nodiscard]] Backup& backup(NodeId node) { return *backups_[node - 1]; }
  [[nodiscard]] uint32_t node_count() const { return config_.nodes; }

  /// Broker node ids: 1..nodes.
  [[nodiscard]] std::vector<NodeId> BrokerNodes() const;

  /// Kills a node (both broker and backup stop answering). Parked consume
  /// long-polls on the crashed broker are failed immediately rather than
  /// leaking until their poll deadline. Use coordinator().RecoverNode(node)
  /// afterwards, then optionally RestartNode to bring the node back.
  void CrashNode(NodeId node);

  /// Restarts a crashed-and-recovered node with a FRESH broker and backup
  /// (all previous in-memory state is gone, as after a real process
  /// restart): re-registers both services on the transport and rejoins the
  /// coordinator (Coordinator::RejoinNode), so new streams can place
  /// streamlets on it and new virtual segments can target its backup.
  Status RestartNode(NodeId node);

  /// Kills only the node's backup service (mid-flush memory loss); the
  /// broker keeps serving. Pair with coordinator().NoteBackupDown(node).
  void CrashBackup(NodeId node);

  /// Brings a crashed backup service back as a fresh, empty instance.
  /// Pair with coordinator().NoteBackupUp(node, &backup(node)).
  void RestartBackup(NodeId node);

  /// Power-loss variant of CrashBackup: unregisters AND destroys the
  /// backup instance (its segment-log flusher thread stops and all file
  /// handles close), so the caller may truncate the on-disk log before
  /// RestartBackup rescans it. backup(node) is invalid until then.
  void DestroyBackup(NodeId node);

  /// Aggregated broker stats across the cluster.
  [[nodiscard]] Broker::Stats TotalBrokerStats() const;

  /// Aggregated backup stats across the cluster.
  [[nodiscard]] Backup::Stats TotalBackupStats() const;

  /// Resolved backup storage directory for `node` (empty when disk
  /// flushing is disabled). The chaos power-loss fault truncates the log
  /// files under this directory between CrashBackup and RestartBackup.
  [[nodiscard]] std::string BackupDirFor(NodeId node) const;

  /// Resolved spill-log directory for `node`'s CURRENT broker incarnation
  /// (empty when tiering is off). CrashNode removes the node's whole
  /// spill tree — a crashed process's spill log is garbage by definition.
  [[nodiscard]] std::string SpillDirFor(NodeId node) const;

  /// Resolved shared-nothing shard count per broker (after the
  /// KERA_BROKER_SHARDS auto default).
  [[nodiscard]] uint32_t broker_shards() const {
    return config_.broker_shards;
  }

  /// Resolved recovery fan-out (after the KERA_RECOVERY_PARALLELISM auto
  /// default).
  [[nodiscard]] uint32_t recovery_parallelism() const {
    return config_.recovery_parallelism;
  }

 private:
  [[nodiscard]] BrokerConfig BrokerConfigFor(NodeId node) const;
  [[nodiscard]] BackupConfig BackupConfigFor(NodeId node) const;
  void RegisterOnNetwork(NodeId service, rpc::RpcHandler* handler);
  void CrashOnNetwork(NodeId service);
  void RestoreOnNetwork(NodeId service, rpc::RpcHandler* handler);

  MiniClusterConfig config_;
  std::unique_ptr<rpc::ThreadedNetwork> threaded_;
  std::unique_ptr<rpc::DirectNetwork> direct_;
  std::unique_ptr<rpc::SocketNetwork> socket_;
  rpc::Network* network_ = nullptr;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::unique_ptr<Backup>> backups_;
  /// Per-node broker restart count; fed into BrokerConfig::incarnation so
  /// a restarted broker's virtual segment ids never collide with stale
  /// backup copies from its previous life.
  std::vector<uint64_t> incarnations_;
};

}  // namespace kera
