#include "cluster/mini_cluster.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/logging.h"
#include "rpc/messages.h"

namespace kera {

BrokerConfig MiniCluster::BrokerConfigFor(NodeId node) const {
  BrokerConfig bc;
  bc.node = node;
  if (node <= incarnations_.size()) {
    bc.incarnation = incarnations_[node - 1];
  }
  bc.memory_bytes = config_.broker_memory_bytes;
  bc.segment_size = config_.segment_size;
  bc.segments_per_group = config_.segments_per_group;
  bc.virtual_segment_capacity = config_.virtual_segment_capacity;
  bc.replication_max_batch_bytes = config_.replication_max_batch_bytes;
  bc.vlogs_per_broker = config_.vlogs_per_broker;
  bc.replication_window = config_.replication_window;
  bc.replication_workers = config_.replication_workers;
  bc.max_consume_wait_us = config_.max_consume_wait_us;
  bc.shards = config_.broker_shards;
  bc.memory_budget_bytes = config_.broker_memory_budget_bytes;
  bc.spill_dir = SpillDirFor(node);
  bc.cold_cache_bytes = config_.broker_cold_cache_bytes;
  bc.readahead_segments = config_.broker_readahead_segments;
  // Prefetch threads only where the transport is already nondeterministic;
  // Direct and external (DES/chaos) networks keep readahead inline so the
  // cold-cache state is a pure function of the schedule.
  bc.async_readahead =
      threaded_ != nullptr || socket_ != nullptr;
  for (NodeId n = 1; n <= config_.nodes; ++n) {
    bc.backup_nodes.push_back(BackupServiceId(n));
  }
  return bc;
}

BackupConfig MiniCluster::BackupConfigFor(NodeId node) const {
  BackupConfig bkc;
  bkc.node = node;
  bkc.storage_dir = BackupDirFor(node);
  if (config_.backup_log_file_bytes != 0) {
    bkc.log.log_file_bytes = config_.backup_log_file_bytes;
  }
  if (config_.backup_flush_batch_bytes != 0) {
    bkc.log.flush_batch_bytes = config_.backup_flush_batch_bytes;
  }
  if (config_.backup_flush_interval_us != 0) {
    bkc.log.flush_interval_us = config_.backup_flush_interval_us;
  }
  if (config_.backup_gc_live_ratio >= 0.0) {
    bkc.log.gc_live_ratio = config_.backup_gc_live_ratio;
  }
  return bkc;
}

std::string MiniCluster::BackupDirFor(NodeId node) const {
  if (config_.backup_dir.empty()) return {};
  char dir[256];
  std::snprintf(dir, sizeof(dir), config_.backup_dir.c_str(), unsigned(node));
  return dir;
}

std::string MiniCluster::SpillDirFor(NodeId node) const {
  if (config_.broker_spill_dir.empty() ||
      config_.broker_memory_budget_bytes == 0) {
    return {};
  }
  char dir[256];
  std::snprintf(dir, sizeof(dir), config_.broker_spill_dir.c_str(),
                unsigned(node));
  // Per-incarnation subdirectory: a restarted broker never scans (or
  // collides with) its previous life's spill records.
  uint64_t inc = node <= incarnations_.size() ? incarnations_[node - 1] : 0;
  char sub[320];
  std::snprintf(sub, sizeof(sub), "%s/inc%llu", dir,
                (unsigned long long)inc);
  return sub;
}

void MiniCluster::RegisterOnNetwork(NodeId service, rpc::RpcHandler* handler) {
  if (config_.external_network != nullptr) {
    config_.external_register(service, handler);
  } else if (threaded_ != nullptr) {
    threaded_->Register(service, handler);
  } else if (socket_ != nullptr) {
    // Brokers and backups get the shared-nothing reactor shape: one
    // server shard per broker shard, with data-plane frames routed to the
    // shard owning their streamlet (produce/consume) or vlog (replicate).
    // The coordinator is control-plane only and stays single-reactor.
    rpc::SocketNetwork::NodeOptions opts;
    if (config_.broker_shards > 1 && service != kCoordinatorNode) {
      opts.shards = int(config_.broker_shards);
      opts.router = rpc::RouteFrameToShard;
    }
    auto port = socket_->Register(service, handler, std::move(opts));
    if (!port.ok()) {
      KERA_ERROR("socket register failed for node %u: %s", unsigned(service),
                 port.status().message().c_str());
    }
  } else {
    direct_->Register(service, handler);
  }
}

void MiniCluster::CrashOnNetwork(NodeId service) {
  if (config_.external_network != nullptr) {
    config_.external_crash(service);
  } else if (threaded_ != nullptr) {
    threaded_->Crash(service);
  } else if (socket_ != nullptr) {
    socket_->Crash(service);
  } else {
    direct_->Crash(service);
  }
}

void MiniCluster::RestoreOnNetwork(NodeId service, rpc::RpcHandler* handler) {
  if (config_.external_network != nullptr) {
    config_.external_restore(service, handler);
  } else if (threaded_ != nullptr) {
    threaded_->Restore(service, handler);
  } else if (socket_ != nullptr) {
    auto port = socket_->Restore(service, handler);
    if (!port.ok()) {
      KERA_ERROR("socket restore failed for node %u: %s", unsigned(service),
                 port.status().message().c_str());
    }
  } else {
    direct_->Restore(service, handler);
  }
}

MiniCluster::MiniCluster(MiniClusterConfig config)
    : config_(std::move(config)) {
  if (config_.broker_shards == 0) {
    config_.broker_shards = 1;
    if (const char* env = std::getenv("KERA_BROKER_SHARDS")) {
      int v = std::atoi(env);
      if (v > 0) config_.broker_shards = uint32_t(v);
    }
  }
  if (config_.recovery_parallelism == 0) {
    config_.recovery_parallelism = 4;
    if (const char* env = std::getenv("KERA_RECOVERY_PARALLELISM")) {
      int v = std::atoi(env);
      if (v > 0) config_.recovery_parallelism = uint32_t(v);
    }
  }
  // Real recovery threads only where the whole RPC path tolerates
  // concurrent callers: the Threaded and Socket transports. Direct and
  // external networks (the DES / chaos harness decorates a DirectNetwork
  // with single-threaded virtual-clock machinery) stay serial — recovery
  // models the parallel makespan there instead.
  bool recovery_threads = false;
  if (config_.external_network != nullptr) {
    network_ = config_.external_network;
  } else {
    MiniClusterTransport transport = config_.transport;
    if (transport == MiniClusterTransport::kAuto) {
      transport = config_.workers_per_node > 0
                      ? MiniClusterTransport::kThreaded
                      : MiniClusterTransport::kDirect;
    }
    recovery_threads = transport == MiniClusterTransport::kThreaded ||
                       transport == MiniClusterTransport::kSocket;
    switch (transport) {
      case MiniClusterTransport::kAuto:  // resolved above
      case MiniClusterTransport::kThreaded:
        threaded_ =
            std::make_unique<rpc::ThreadedNetwork>(config_.workers_per_node);
        network_ = threaded_.get();
        break;
      case MiniClusterTransport::kDirect:
        direct_ = std::make_unique<rpc::DirectNetwork>();
        network_ = direct_.get();
        break;
      case MiniClusterTransport::kSocket: {
        rpc::SocketNetwork::Options opts;
        if (config_.workers_per_node > 0) {
          opts.workers_per_node = config_.workers_per_node;
        }
        socket_ = std::make_unique<rpc::SocketNetwork>(opts);
        network_ = socket_.get();
        break;
      }
    }
  }
  CoordinatorConfig cc;
  cc.recovery_parallelism = config_.recovery_parallelism;
  cc.recovery_read_batch = config_.recovery_read_batch;
  cc.recovery_use_threads = recovery_threads;
  coordinator_ = std::make_unique<Coordinator>(*network_, cc);

  incarnations_.assign(config_.nodes, 0);
  for (NodeId node = 1; node <= config_.nodes; ++node) {
    brokers_.push_back(
        std::make_unique<Broker>(BrokerConfigFor(node), *network_));
    backups_.push_back(std::make_unique<Backup>(BackupConfigFor(node)));
  }

  RegisterOnNetwork(kCoordinatorNode, coordinator_.get());
  for (NodeId node = 1; node <= config_.nodes; ++node) {
    RegisterOnNetwork(node, brokers_[node - 1].get());
    RegisterOnNetwork(BackupServiceId(node), backups_[node - 1].get());
    coordinator_->RegisterNode(node, brokers_[node - 1].get(),
                               backups_[node - 1].get());
  }
}

MiniCluster::~MiniCluster() {
  // Stop replication workers before the network: a worker mid-ShipBatch
  // would otherwise race the queue shutdown on every teardown. Waking the
  // consume long-pollers first keeps network shutdown from blocking on a
  // handler thread parked until its poll deadline.
  for (auto& b : brokers_) b->StopConsumeWaits();
  for (auto& b : brokers_) b->StopReplicator();
  if (threaded_ != nullptr) threaded_->Shutdown();
  if (socket_ != nullptr) socket_->Shutdown();
}

std::vector<NodeId> MiniCluster::BrokerNodes() const {
  std::vector<NodeId> out;
  for (NodeId node = 1; node <= config_.nodes; ++node) out.push_back(node);
  return out;
}

void MiniCluster::CrashNode(NodeId node) {
  CrashOnNetwork(node);
  CrashOnNetwork(BackupServiceId(node));
  // Fail parked long-polls now: the transport no longer delivers to this
  // broker, but handler threads already inside HandleConsume would
  // otherwise sleep until their poll deadline (and a later restart swaps
  // in a fresh broker whose parking works again).
  brokers_[node - 1]->StopConsumeWaits();
  // A real crash loses the process-local spill log with the process; the
  // broker's durable data lives on the backups. Delete the node's whole
  // spill tree (all incarnations) so recovery provably never reads it.
  // The dead broker object may still hold open fds — unlinking is safe,
  // and its per-incarnation subdirectory is never reused (RestartNode
  // bumps the incarnation).
  if (!config_.broker_spill_dir.empty() &&
      config_.broker_memory_budget_bytes != 0) {
    char dir[256];
    std::snprintf(dir, sizeof(dir), config_.broker_spill_dir.c_str(),
                  unsigned(node));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

Status MiniCluster::RestartNode(NodeId node) {
  if (node == 0 || node > config_.nodes) {
    return Status(StatusCode::kInvalidArgument, "no such node");
  }
  // Fresh instances: a restarted process has lost all in-memory state.
  // The bumped incarnation keeps the new broker's virtual segment ids
  // disjoint from any stale copies of its previous life that backups
  // still hold (backups key copies by (primary, vlog, vseg)).
  ++incarnations_[node - 1];
  auto broker = std::make_unique<Broker>(BrokerConfigFor(node), *network_);
  auto backup = std::make_unique<Backup>(BackupConfigFor(node));
  // Transport first, so the node is reachable the moment the coordinator
  // re-admits it (recovery replay and fresh placements dial it directly).
  RestoreOnNetwork(node, broker.get());
  RestoreOnNetwork(BackupServiceId(node), backup.get());
  Status s = coordinator_->RejoinNode(node, broker.get(), backup.get());
  if (!s.ok()) {
    CrashOnNetwork(node);
    CrashOnNetwork(BackupServiceId(node));
    return s;
  }
  brokers_[node - 1] = std::move(broker);
  backups_[node - 1] = std::move(backup);
  return OkStatus();
}

void MiniCluster::CrashBackup(NodeId node) {
  CrashOnNetwork(BackupServiceId(node));
}

void MiniCluster::DestroyBackup(NodeId node) {
  CrashOnNetwork(BackupServiceId(node));
  backups_[node - 1].reset();
}

void MiniCluster::RestartBackup(NodeId node) {
  auto backup = std::make_unique<Backup>(BackupConfigFor(node));
  RestoreOnNetwork(BackupServiceId(node), backup.get());
  backups_[node - 1] = std::move(backup);
}

Broker::Stats MiniCluster::TotalBrokerStats() const {
  Broker::Stats total;
  for (const auto& b : brokers_) {
    Broker::Stats s = b->GetStats();
    total.produce_rpcs += s.produce_rpcs;
    total.chunks_appended += s.chunks_appended;
    total.chunks_duplicate += s.chunks_duplicate;
    total.chunks_fenced += s.chunks_fenced;
    total.offset_commits += s.offset_commits;
    total.bytes_appended += s.bytes_appended;
    total.consume_rpcs += s.consume_rpcs;
    total.chunks_served += s.chunks_served;
    total.consume_long_polls += s.consume_long_polls;
    total.replication_batches += s.replication_batches;
    total.replication_rpcs += s.replication_rpcs;
    total.replication_bytes += s.replication_bytes;
    total.checksum_failures += s.checksum_failures;
    total.recovery_produce_rpcs += s.recovery_produce_rpcs;
    total.recovery_chunks_appended += s.recovery_chunks_appended;
    total.recovery_bytes_appended += s.recovery_bytes_appended;
    total.shard_mailbox_enqueues += s.shard_mailbox_enqueues;
    total.cross_shard_ops += s.cross_shard_ops;
    total.segments_spilled += s.segments_spilled;
    total.segments_evicted += s.segments_evicted;
    total.spill_bytes += s.spill_bytes;
    total.cold_reads += s.cold_reads;
    total.cold_cache_hits += s.cold_cache_hits;
    total.cold_cache_misses += s.cold_cache_misses;
    total.readahead_hits += s.readahead_hits;
    total.memory_buffers_outstanding += s.memory_buffers_outstanding;
    total.memory_peak_buffers += s.memory_peak_buffers;
    total.memory_bytes_resident += s.memory_bytes_resident;
    if (total.shard_frames.size() < s.shard_frames.size()) {
      total.shard_frames.resize(s.shard_frames.size());
    }
    for (size_t i = 0; i < s.shard_frames.size(); ++i) {
      total.shard_frames[i] += s.shard_frames[i];
    }
  }
  return total;
}

Backup::Stats MiniCluster::TotalBackupStats() const {
  Backup::Stats total;
  for (const auto& b : backups_) {
    Backup::Stats s = b->GetStats();
    total.replicate_rpcs += s.replicate_rpcs;
    total.bytes_received += s.bytes_received;
    total.chunks_received += s.chunks_received;
    total.checksum_failures += s.checksum_failures;
    total.segments_sealed += s.segments_sealed;
    total.segments_flushed += s.segments_flushed;
    total.flush_groups += s.flush_groups;
    total.fsyncs += s.fsyncs;
    total.bytes_flushed += s.bytes_flushed;
    total.gc_bytes_reclaimed += s.gc_bytes_reclaimed;
    total.restart_scan_ms += s.restart_scan_ms;
    total.io_errors += s.io_errors;
  }
  return total;
}

}  // namespace kera
