#include "cluster/mini_cluster.h"

#include <cstdio>

#include "common/logging.h"

namespace kera {

MiniCluster::MiniCluster(MiniClusterConfig config)
    : config_(std::move(config)) {
  MiniClusterTransport transport = config_.transport;
  if (transport == MiniClusterTransport::kAuto) {
    transport = config_.workers_per_node > 0 ? MiniClusterTransport::kThreaded
                                             : MiniClusterTransport::kDirect;
  }
  switch (transport) {
    case MiniClusterTransport::kAuto:  // resolved above
    case MiniClusterTransport::kThreaded:
      threaded_ =
          std::make_unique<rpc::ThreadedNetwork>(config_.workers_per_node);
      network_ = threaded_.get();
      break;
    case MiniClusterTransport::kDirect:
      direct_ = std::make_unique<rpc::DirectNetwork>();
      network_ = direct_.get();
      break;
    case MiniClusterTransport::kSocket: {
      rpc::SocketNetwork::Options opts;
      if (config_.workers_per_node > 0) {
        opts.workers_per_node = config_.workers_per_node;
      }
      socket_ = std::make_unique<rpc::SocketNetwork>(opts);
      network_ = socket_.get();
      break;
    }
  }
  coordinator_ = std::make_unique<Coordinator>(*network_);

  std::vector<NodeId> backup_services;
  for (NodeId node = 1; node <= config_.nodes; ++node) {
    backup_services.push_back(BackupServiceId(node));
  }

  for (NodeId node = 1; node <= config_.nodes; ++node) {
    BrokerConfig bc;
    bc.node = node;
    bc.memory_bytes = config_.broker_memory_bytes;
    bc.segment_size = config_.segment_size;
    bc.segments_per_group = config_.segments_per_group;
    bc.virtual_segment_capacity = config_.virtual_segment_capacity;
    bc.replication_max_batch_bytes = config_.replication_max_batch_bytes;
    bc.vlogs_per_broker = config_.vlogs_per_broker;
    bc.replication_window = config_.replication_window;
    bc.replication_workers = config_.replication_workers;
    bc.max_consume_wait_us = config_.max_consume_wait_us;
    bc.backup_nodes = backup_services;
    brokers_.push_back(std::make_unique<Broker>(bc, *network_));

    BackupConfig bkc;
    bkc.node = node;
    if (!config_.backup_dir.empty()) {
      char dir[256];
      std::snprintf(dir, sizeof(dir), config_.backup_dir.c_str(),
                    unsigned(node));
      bkc.storage_dir = dir;
    }
    backups_.push_back(std::make_unique<Backup>(bkc));
  }

  auto register_node = [&](NodeId service, rpc::RpcHandler* handler) {
    if (threaded_ != nullptr) {
      threaded_->Register(service, handler);
    } else if (socket_ != nullptr) {
      auto port = socket_->Register(service, handler);
      if (!port.ok()) {
        KERA_ERROR("socket register failed for node %u: %s",
                   unsigned(service), port.status().message().c_str());
      }
    } else {
      direct_->Register(service, handler);
    }
  };
  register_node(kCoordinatorNode, coordinator_.get());
  for (NodeId node = 1; node <= config_.nodes; ++node) {
    register_node(node, brokers_[node - 1].get());
    register_node(BackupServiceId(node), backups_[node - 1].get());
    coordinator_->RegisterNode(node, brokers_[node - 1].get(),
                               backups_[node - 1].get());
  }
}

MiniCluster::~MiniCluster() {
  // Stop replication workers before the network: a worker mid-ShipBatch
  // would otherwise race the queue shutdown on every teardown. Waking the
  // consume long-pollers first keeps network shutdown from blocking on a
  // handler thread parked until its poll deadline.
  for (auto& b : brokers_) b->StopConsumeWaits();
  for (auto& b : brokers_) b->StopReplicator();
  if (threaded_ != nullptr) threaded_->Shutdown();
  if (socket_ != nullptr) socket_->Shutdown();
}

std::vector<NodeId> MiniCluster::BrokerNodes() const {
  std::vector<NodeId> out;
  for (NodeId node = 1; node <= config_.nodes; ++node) out.push_back(node);
  return out;
}

void MiniCluster::CrashNode(NodeId node) {
  if (threaded_ != nullptr) {
    threaded_->Crash(node);
    threaded_->Crash(BackupServiceId(node));
  } else if (socket_ != nullptr) {
    socket_->Crash(node);
    socket_->Crash(BackupServiceId(node));
  } else {
    direct_->Crash(node);
    direct_->Crash(BackupServiceId(node));
  }
}

Broker::Stats MiniCluster::TotalBrokerStats() const {
  Broker::Stats total;
  for (const auto& b : brokers_) {
    Broker::Stats s = b->GetStats();
    total.produce_rpcs += s.produce_rpcs;
    total.chunks_appended += s.chunks_appended;
    total.chunks_duplicate += s.chunks_duplicate;
    total.bytes_appended += s.bytes_appended;
    total.consume_rpcs += s.consume_rpcs;
    total.chunks_served += s.chunks_served;
    total.consume_long_polls += s.consume_long_polls;
    total.replication_batches += s.replication_batches;
    total.replication_rpcs += s.replication_rpcs;
    total.replication_bytes += s.replication_bytes;
    total.checksum_failures += s.checksum_failures;
  }
  return total;
}

}  // namespace kera
