// Background replication worker pool: moves batch shipping off the
// produce path. Produce handlers append chunks, Notify() the vlogs they
// touched, and park on the vlog's group-commit waiters; workers wake on
// notification (condition variable, no spin), Poll() batches — up to the
// vlog's replication window concurrently — ship them over the network,
// and Complete/Abort them. Many produce RPCs thus share one large
// replicated I/O, and replication round-trips overlap with ingestion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

namespace kera {

class Broker;
class VirtualLog;

class Replicator {
 public:
  /// Spawns `workers` shipping threads serving `broker`'s virtual logs.
  Replicator(Broker& broker, uint32_t workers);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Marks a vlog as (possibly) having replication work and wakes a
  /// worker. Cheap and idempotent: a vlog is queued at most once.
  void Notify(VirtualLog* vlog);

  /// Stops and joins the workers. Must be called before the network the
  /// broker ships through is shut down. Idempotent.
  void Stop();

  struct Stats {
    uint64_t batches_shipped = 0;
    uint64_t batch_failures = 0;
    uint64_t wakeups = 0;
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  void WorkerLoop();

  Broker& broker_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<VirtualLog*> queue_;
  std::unordered_set<VirtualLog*> queued_;  // dedup for queue_
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace kera
