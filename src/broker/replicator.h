// Background replication worker pool: moves batch shipping off the
// produce path. Produce handlers append chunks, Notify() the vlogs they
// touched, and park on the vlog's group-commit waiters; workers wake on
// notification (condition variable, no spin), Poll() batches — up to the
// vlog's replication window concurrently — ship them over the network,
// and Complete/Abort them. Many produce RPCs thus share one large
// replicated I/O, and replication round-trips overlap with ingestion.
//
// Two notification topologies, chosen at construction:
//  - shared (single-shard broker, the original behavior): one queue, all
//    workers pull from it, and a vlog with window slots free is requeued
//    before shipping so a peer worker pipelines the next batch.
//  - shard-affine (shared-nothing broker, shards > 1): one lane (queue +
//    worker) per worker thread, and a vlog is always routed to lane
//    owner_shard % lanes — a log's shipping work stays on one core and
//    never contends with another shard's logs on a queue lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

namespace kera {

class Broker;
class VirtualLog;

class Replicator {
 public:
  /// Spawns `workers` shipping threads serving `broker`'s virtual logs.
  /// `shard_affine` selects the per-lane topology (see file comment).
  Replicator(Broker& broker, uint32_t workers, bool shard_affine = false);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Marks a vlog as (possibly) having replication work and wakes a
  /// worker. Cheap and idempotent: a vlog is queued at most once per lane.
  void Notify(VirtualLog* vlog);

  /// Stops and joins the workers. Must be called before the network the
  /// broker ships through is shut down. Idempotent.
  void Stop();

  struct Stats {
    uint64_t batches_shipped = 0;
    uint64_t batch_failures = 0;
    uint64_t wakeups = 0;
  };
  [[nodiscard]] Stats GetStats() const;

 private:
  /// One notification queue plus the workers draining it. The shared
  /// topology has one lane with N workers; the affine topology has N
  /// lanes with one worker each.
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<VirtualLog*> queue;
    std::unordered_set<VirtualLog*> queued;  // dedup for queue
    std::vector<std::thread> workers;
  };

  void WorkerLoop(Lane& lane);
  Lane& LaneFor(VirtualLog* vlog);

  Broker& broker_;
  const bool shard_affine_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> batches_shipped_{0};
  std::atomic<uint64_t> batch_failures_{0};
  std::atomic<uint64_t> wakeups_{0};
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace kera
