// Per-shard cross-core mailbox: the shared-nothing broker's only channel
// for mutating another shard's state. Operations are posted onto a
// lock-free MPSC queue and executed by whichever thread holds the shard's
// drain token — normally the shard's own handler thread, which calls
// Drain() at the top of every routed frame, so admin mutations (leadership
// moves, recovery re-ingest) are serialized *between* frames of the owning
// shard instead of interleaving mid-request under a broker-wide lock.
//
// Execute() is the synchronous flavor (flat combining): the caller posts
// its op, then either acquires the token and drains the queue itself
// (running every earlier op first, preserving post order) or spins until
// the shard's active handler drains it on the caller's behalf. Either way
// the op has run exactly once when Execute returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/queue.h"

namespace kera {

class ShardMailbox {
 public:
  using Op = std::function<void()>;

  /// Enqueues `op` to run at the shard's next drain point. Lock-free.
  void Post(Op op) {
    queue_.Push(std::move(op));
    enqueues_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Runs queued ops if any are pending and the token is free. Called at
  /// the top of every frame routed to this shard; the empty probe is one
  /// acquire load, so an idle mailbox costs nothing on the hot path.
  void Drain() {
    if (queue_.EmptyApprox()) return;
    if (token_.exchange(true, std::memory_order_acquire)) return;
    DrainLocked();
    token_.store(false, std::memory_order_release);
  }

  /// Posts `op` and blocks until it has executed — by this thread if the
  /// token is free, by the shard's active handler otherwise.
  void Execute(Op op) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    Post([op = std::move(op), done] {
      op();
      done->store(true, std::memory_order_release);
    });
    while (!done->load(std::memory_order_acquire)) {
      if (!token_.exchange(true, std::memory_order_acquire)) {
        DrainLocked();
        token_.store(false, std::memory_order_release);
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Total ops ever posted (contention telemetry).
  [[nodiscard]] uint64_t enqueues() const {
    return enqueues_.load(std::memory_order_relaxed);
  }

 private:
  void DrainLocked() {
    while (auto op = queue_.TryPop()) (*op)();
  }

  MpscQueue<Op> queue_;
  std::atomic<bool> token_{false};
  std::atomic<uint64_t> enqueues_{0};
};

}  // namespace kera
