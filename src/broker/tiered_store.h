// TieredStore: the broker's tiered segment memory (RAMCloud lineage —
// DRAM is the primary store, disk the durable tier; Kafka tiered-storage
// pattern for catch-up consumers).
//
// Spill: once a physical segment is sealed, its payload is appended to a
// broker-local SegmentLog (the same crash-safe on-disk format backups
// use; the log's group-commit flusher is the per-broker spill worker
// doing the actual disk IO). Eviction: when a shard's sealed resident
// bytes exceed its slice of `memory_budget_bytes`, sealed segments whose
// chunks are covered by the vlog durable head are evicted in clock order
// (FIFO over seal order with second-chance skips for still-replicating
// or reader-pinned segments): the spill record is forced durable, the
// DRAM buffer is detached and returned to the MemoryManager. Spill and
// eviction decisions are made only at the broker's deterministic pump
// points — a pure function of seal order, durability order and budget,
// never wall-clock — so Direct/chaos transports stay byte-deterministic.
//
// Cold reads: a consume request hitting an evicted segment goes through
// a read-through cold-read cache — a bounded pool of segment buffers
// (its own MemoryManager partition, so a lagging full-history scan can
// never evict the hot tail path), populated from the spill log (every
// extent CRC32C-verified on load) with sequential readahead of the next
// N segments of the group (catch-up consumers scan forward). Consume
// responses keep the zero-copy encode: chunk spans alias cache memory,
// pinned by a shared_ptr hold for the life of the response.
//
// The spill log is broker-local scratch: a broker crash deletes it, and
// recovery rebuilds from backups — the spill tier never participates in
// the durability protocol.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/memory_manager.h"
#include "storage/segment_log.h"
#include "storage/streamlet.h"

namespace kera {

struct TieredStoreOptions {
  /// Per-broker budget for sealed resident segment bytes; split evenly
  /// across shards (per-shard accounting, shards never contend).
  size_t memory_budget_bytes = 0;
  /// Broker-local spill log directory (created on demand).
  std::string spill_dir;
  size_t segment_size = 0;
  /// Cold-read cache pool; 0 defaults to 4 segment buffers.
  size_t cold_cache_bytes = 0;
  /// Segments of the group prefetched past a cold-cache miss.
  uint32_t readahead_segments = 2;
  uint32_t shards = 1;
  /// Run readahead on a background thread. Only for transports that are
  /// already non-deterministic (threaded/socket); the deterministic paths
  /// prefetch inline so the cache state is a function of the schedule.
  bool async_readahead = false;
  /// Spill-log flush pacing (group-commit knobs shared with backups).
  SegmentLogOptions log;
};

class TieredStore {
 public:
  /// A cold-cache entry: one spilled segment's payload [0, size), loaded
  /// from the spill log and CRC-verified. Consume responses hold it via
  /// shared_ptr; the pooled buffer returns to the cache pool when the
  /// last holder drops.
  struct ColdSegment {
    Buffer buf;
    uint64_t size = 0;
    MemoryManager* pool = nullptr;  // nullptr: transient overflow buffer
    // Mutated under the cache lock only.
    uint64_t last_use = 0;
    bool from_readahead = false;

    ~ColdSegment() {
      if (pool != nullptr) pool->Release(std::move(buf));
    }
    [[nodiscard]] std::span<const std::byte> bytes(uint32_t offset,
                                                   uint32_t length) const {
      return {buf.data() + offset, length};
    }
  };

  /// `memory` is the broker's hot segment pool (evicted buffers return
  /// there); the cold cache allocates its own separate pool.
  TieredStore(TieredStoreOptions options, MemoryManager& memory);
  ~TieredStore();

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  /// Registers a streamlet led (or recovered) by this broker; its groups
  /// and segments are discovered incrementally by Pump.
  void TrackStreamlet(StreamId stream, Streamlet* streamlet);

  /// Deterministic pump point: discovers newly sealed segments of the
  /// shard's streamlets (enqueuing their spill records), then evicts in
  /// clock order while the shard is over budget. Thread-safe per shard.
  void Pump(uint32_t shard);
  void PumpAll();

  /// Pre-trim hook (runs while the group's segments are still alive):
  /// drops the group's spill candidates and cache entries and enqueues
  /// evacuate records so the spill log's GC can reclaim the copies.
  void OnGroupTrim(StreamId stream, StreamletId streamlet, Group* group);

  /// Read-through cold read of an evicted segment: cache hit or a spill
  /// log load (CRC-verified) plus readahead of the following segments.
  [[nodiscard]] Result<std::shared_ptr<const ColdSegment>> ReadCold(
      StreamId stream, StreamletId streamlet, GroupId group,
      SegmentId segment);

  struct Stats {
    uint64_t segments_spilled = 0;
    uint64_t segments_evicted = 0;
    uint64_t spill_bytes = 0;
    uint64_t cold_reads = 0;        // consume chunks served from cold tier
    uint64_t cold_cache_hits = 0;   // segment lookups resolved in cache
    uint64_t cold_cache_misses = 0; // segment lookups that hit the disk
    uint64_t readahead_hits = 0;    // misses avoided by an earlier prefetch
    uint64_t readahead_loads = 0;   // segments loaded speculatively
    uint64_t resident_sealed_bytes = 0;  // unevicted sealed bytes (tracked)
    SegmentLog::Stats log;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Counts one chunk served from cold memory (the broker's consume path
  /// calls it; kept here so the counter rides the tier's stats).
  void NoteColdChunksServed(uint64_t n) {
    cold_reads_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] uint32_t ShardOf(StreamletId streamlet) const {
    return shards_n_ <= 1 ? 0 : streamlet % shards_n_;
  }

 private:
  struct Candidate {
    StreamId stream = 0;
    StreamletId streamlet = 0;
    GroupId group_id = 0;
    SegmentId segment_id = 0;
    Segment* segment = nullptr;
    uint64_t ticket = 0;  // spill-log ticket of the seal record
    uint64_t bytes = 0;   // payload size at seal (header + chunks)
  };
  struct GroupTrack {
    Group* group = nullptr;
    SegmentId next_spill = 0;  // segments [0, next_spill) are enqueued
  };
  struct StreamletTrack {
    Streamlet* streamlet = nullptr;
    GroupId next_new_group = 0;
    std::map<GroupId, GroupTrack> open;  // groups not yet fully spilled
  };
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::map<std::pair<StreamId, StreamletId>, StreamletTrack> streamlets;
    /// Clock queue: candidates in spill (seal-discovery) order; the hand
    /// scans from the front, skipping non-durable or pinned segments.
    std::deque<Candidate> candidates;
    /// Spilled segments per group (= [0, count)), kept until trim so the
    /// evacuate records cover evicted candidates too.
    std::map<std::tuple<StreamId, StreamletId, GroupId>, uint32_t> spilled;
    uint64_t resident_sealed = 0;
  };

  [[nodiscard]] static SegmentLog::CopyKey KeyFor(StreamId stream,
                                                 StreamletId streamlet,
                                                 GroupId group,
                                                 SegmentId segment) {
    return {uint64_t(stream), VlogId(streamlet),
            (uint64_t(group) << 32) | uint64_t(segment)};
  }

  void SpillSegmentLocked(Shard& sh, StreamId stream, StreamletId streamlet,
                          GroupId group, SegmentId segment_id, Segment* seg);
  void EvictLocked(Shard& sh);
  /// Loads one segment from the spill log into the cache. Caller holds
  /// cache_mu_. kNotFound when the copy is not (yet) in the log.
  Result<std::shared_ptr<ColdSegment>> LoadLocked(
      const SegmentLog::CopyKey& key, bool from_readahead);
  void ReadaheadWorker();

  const TieredStoreOptions options_;
  const uint32_t shards_n_;
  const size_t budget_per_shard_;
  MemoryManager& memory_;      // hot pool (evicted buffers go back here)
  MemoryManager cold_pool_;    // cold-cache partition, never the hot tail
  std::unique_ptr<SegmentLog> log_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex cache_mu_;
  std::map<SegmentLog::CopyKey, std::shared_ptr<ColdSegment>> cache_;
  uint64_t cache_clock_ = 0;

  std::atomic<uint64_t> segments_spilled_{0};
  std::atomic<uint64_t> segments_evicted_{0};
  std::atomic<uint64_t> spill_bytes_{0};
  std::atomic<uint64_t> cold_reads_{0};
  std::atomic<uint64_t> cold_cache_hits_{0};
  std::atomic<uint64_t> cold_cache_misses_{0};
  std::atomic<uint64_t> readahead_hits_{0};
  std::atomic<uint64_t> readahead_loads_{0};

  // Async readahead (socket/threaded transports only).
  std::mutex ra_mu_;
  std::condition_variable ra_cv_;
  std::deque<SegmentLog::CopyKey> ra_queue_;
  bool ra_shutdown_ = false;
  std::thread ra_worker_;
};

}  // namespace kera
