// Broker service: leads stream partitions (streamlets), ingests producer
// chunks into group segments, associates partitions with shared replicated
// virtual logs (transparently to clients), drives replication to backups,
// and serves consumers with durably replicated chunks only.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "broker/replicator.h"
#include "broker/shard_mailbox.h"
#include "broker/tiered_store.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/messages.h"
#include "rpc/transport.h"
#include "storage/memory_manager.h"
#include "storage/stream.h"
#include "vlog/virtual_log.h"
#include "wire/chunk.h"

namespace kera {

struct BrokerConfig {
  NodeId node = 0;
  /// Process incarnation of this broker (0 for the first life, bumped on
  /// every restart). Baked into the high bits of virtual segment ids so a
  /// restarted broker never reuses (vlog, vseg) keys that backups may
  /// still hold from its previous life.
  uint64_t incarnation = 0;
  /// Broker memory budget for segment buffers.
  size_t memory_bytes = size_t(1) << 30;
  /// Segment geometry (stream Q comes from StreamOptions at creation).
  size_t segment_size = 8u << 20;
  uint32_t segments_per_group = 4;
  /// Virtual log geometry.
  size_t virtual_segment_capacity = 8u << 20;
  size_t replication_max_batch_bytes = 1u << 20;
  /// Size of the shared vlog pool for VlogPolicy::kSharedPerBroker (the
  /// paper's "replication capacity" knob: 1, 2, 4, ... vlogs per broker).
  uint32_t vlogs_per_broker = 4;
  /// Nodes hosting backup services (usually all cluster nodes; self is
  /// excluded when picking a virtual segment's backup set).
  std::vector<NodeId> backup_nodes;
  /// Verify chunk payload checksums on ingest.
  bool verify_chunk_checksums = true;
  /// Replication RPC retries before failing the producer request.
  int replication_retries = 3;
  /// Max replication batches in flight per virtual log (1 = the classic
  /// synchronous stop-and-wait pipeline; >1 overlaps round-trips).
  uint32_t replication_window = 1;
  /// Background replication worker threads. 0 disables the background
  /// replicator: produce handlers drive replication synchronously on the
  /// RPC thread (the original behavior; also what the DES needs).
  uint32_t replication_workers = 0;
  /// Server-side cap on ConsumeRequest::max_wait_us (long-poll): a parked
  /// consume request never outlives this, no matter what the client asks
  /// for, so handler threads are reclaimed on a bounded schedule.
  uint64_t max_consume_wait_us = 1'000'000;
  /// Shared-nothing shard count: the broker's hot-path state (leadership
  /// sets, dedup tables, long-poll parking, vlog caches) is partitioned
  /// into this many per-core shards by streamlet id (streamlet % shards),
  /// and the shared vlog pool is sliced so a streamlet only ever resolves
  /// to a vlog owned by its shard. 1 (the default) reproduces the
  /// single-shard behavior exactly. Correctness never depends on the
  /// transport routing frames to the right shard — any thread may handle
  /// any frame — but a shard-affine transport (SocketNetwork with a
  /// router) makes the per-shard locks effectively uncontended.
  uint32_t shards = 1;
  /// Tiered broker memory. 0 (the default) keeps every segment resident —
  /// exactly the pre-tiering behavior. A non-zero budget caps the bytes of
  /// SEALED segments kept in DRAM: once a sealed segment's chunks are all
  /// covered by the vlog durable head, its payload is spilled to the
  /// broker-local spill log and the buffer is evicted (returned to the
  /// MemoryManager) whenever the per-shard budget is exceeded, oldest
  /// seal first. Open segments are never evicted, so the true resident
  /// ceiling is budget + (active groups * segment_size) of open-segment
  /// slack. Requires `spill_dir`.
  size_t memory_budget_bytes = 0;
  /// Directory for the broker-local spill log (scratch: deleted on crash,
  /// recovery comes from backups). Tiering is off while empty.
  std::string spill_dir;
  /// Cold-read cache pool for catch-up consumers hitting evicted
  /// segments; its buffers are a partition separate from the hot segment
  /// pool, so a lagging scan can never evict the hot tail. 0 defaults to
  /// 4 segment buffers.
  size_t cold_cache_bytes = 0;
  /// Segments of a group prefetched sequentially past a cold-cache miss.
  uint32_t readahead_segments = 2;
  /// Prefetch on a background thread (only sensible on transports that
  /// are already nondeterministic; the chaos/DES paths keep it inline).
  bool async_readahead = false;
};

class Broker final : public rpc::RpcHandler {
 public:
  Broker(BrokerConfig config, rpc::Network& network);
  ~Broker() override;

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // ----- control plane (invoked by the coordinator, in-process) -----

  /// Registers a stream this broker participates in.
  Status AddStream(const std::string& name, const rpc::StreamInfo& info);

  /// Declares this broker the leader of `streamlet` (storage is created).
  Status AddStreamlet(StreamId stream, StreamletId streamlet);

  /// Seals a stream on this broker (bounded stream / object): closes the
  /// active groups and rejects further non-recovery produces.
  Status SealStream(StreamId stream);

  /// Marks a recovery/migration replay complete on this broker: closes
  /// every streamlet's recovery groups so consumers advance past them.
  Status FinishRecovery(StreamId stream);

  /// Relinquishes leadership of a streamlet after migration: produces are
  /// rejected with kNotLeader, but the storage (and the virtual-log
  /// references into it) stays until trimmed; stale consumers can still
  /// read the durable prefix.
  Status DropStreamletLeadership(StreamId stream, StreamletId streamlet);

  /// Membership update from the coordinator: the set of backup services
  /// currently alive. Newly opened virtual segments only target live
  /// backups; open segments bound to a dead backup are evacuated lazily
  /// when their replication fails.
  void SetLiveBackups(std::vector<NodeId> live_backup_services);

  // ----- data plane -----

  std::vector<std::byte> HandleRpc(std::span<const std::byte> request) override;

  /// Direct produce entry point (DES and tests). Appends every chunk to
  /// its streamlet's active group and to the mapped virtual log, then
  /// drives replication until all appended chunks are durable.
  rpc::ProduceResponse HandleProduce(const rpc::ProduceRequest& req);

  /// Like HandleProduce but stops after the physical + vlog appends,
  /// returning each appended chunk's (vlog, ref) without driving
  /// replication. The DES uses this to schedule replication RPCs on
  /// simulated time and to track per-chunk durability for acks.
  rpc::ProduceResponse HandleProduceNoSync(
      const rpc::ProduceRequest& req,
      std::vector<std::pair<VirtualLog*, ChunkRef>>* appended);

  rpc::ConsumeResponse HandleConsume(const rpc::ConsumeRequest& req);

  /// Durably commits a consumer's cursor positions: each entry is encoded
  /// into a kChunkFlagOffsetCommit system chunk for its streamlet (under
  /// the consumer's system producer id, 0x80000000 | consumer) and driven
  /// through the ordinary produce path — so commits replicate, dedup,
  /// spill under tiered memory and rebuild on crash recovery exactly like
  /// data chunks.
  rpc::CommitOffsetsResponse HandleCommitOffsets(
      const rpc::CommitOffsetsRequest& req);

  /// Reads back the last committed cursor per requested streamlet (the
  /// in-memory table maintained by AppendOneChunk from offset chunks,
  /// including recovery replays).
  rpc::FetchOffsetsResponse HandleFetchOffsets(
      const rpc::FetchOffsetsRequest& req);

  // ----- replication plumbing -----

  /// Ships one batch to its backup set (parallel RPCs) and completes or
  /// aborts it on the vlog. Returns the replication status.
  Status ShipBatch(VirtualLog& vlog, const ReplicationBatch& batch);

  /// Serializes a batch into a materialized kReplicate frame (for callers
  /// that need contiguous bytes, e.g. DES costing; ShipBatch itself sends
  /// the frame in scatter-gather parts without materializing it).
  [[nodiscard]] std::vector<std::byte> BuildReplicateFrame(
      const ReplicationBatch& batch) const;

  // ----- introspection / maintenance -----

  struct Stats {
    uint64_t produce_rpcs = 0;
    uint64_t chunks_appended = 0;
    uint64_t chunks_duplicate = 0;
    /// Chunks rejected because their producer epoch is older than the
    /// broker's known epoch for that (streamlet, producer) — a fenced
    /// zombie from before a coordinator re-allocation.
    uint64_t chunks_fenced = 0;
    /// Consumer offset-commit system chunks appended (dedup hits on commit
    /// retries count under chunks_duplicate like any other chunk).
    uint64_t offset_commits = 0;
    uint64_t bytes_appended = 0;
    uint64_t consume_rpcs = 0;
    uint64_t chunks_served = 0;
    uint64_t consume_long_polls = 0;  // consume RPCs that parked at least once
    uint64_t replication_batches = 0;
    uint64_t replication_rpcs = 0;
    uint64_t replication_bytes = 0;  // bytes * (R-1), i.e. network cost
    uint64_t checksum_failures = 0;
    /// Crash-recovery re-ingest (ProduceRequest::recovery): requests,
    /// chunks and frame bytes applied through the recovery-produce path.
    uint64_t recovery_produce_rpcs = 0;
    uint64_t recovery_chunks_appended = 0;
    uint64_t recovery_bytes_appended = 0;
    /// Shared-nothing contention telemetry: ops posted through the
    /// per-shard mailboxes, data-plane items (chunks/consume entries)
    /// that landed on a thread handling a different shard's frame plus
    /// admin ops executed cross-shard, and data-plane frames per shard
    /// (produce + consume; size == config().shards). Mis-routing shows
    /// up as cross_shard_ops > 0 or a lopsided shard_frames.
    uint64_t shard_mailbox_enqueues = 0;
    uint64_t cross_shard_ops = 0;
    std::vector<uint64_t> shard_frames;
    /// Tiered broker memory: spill/eviction activity and the cold-read
    /// path (all zero while memory_budget_bytes == 0).
    uint64_t segments_spilled = 0;
    uint64_t segments_evicted = 0;
    uint64_t spill_bytes = 0;
    uint64_t cold_reads = 0;
    uint64_t cold_cache_hits = 0;
    uint64_t cold_cache_misses = 0;
    uint64_t readahead_hits = 0;
    /// Segment-pool observability (from MemoryManager::GetStats).
    uint64_t memory_buffers_outstanding = 0;
    uint64_t memory_peak_buffers = 0;
    uint64_t memory_bytes_resident = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Per-(streamlet, producer) dedup-hit counts for a stream, merged
  /// across shards. The chaos harness checks the duplication bound per
  /// key with this (a global sum would smear one producer's dedup bug
  /// across every key in the schedule).
  [[nodiscard]] std::map<std::pair<StreamletId, ProducerId>, uint64_t>
  DedupHitsByKey(StreamId stream) const;

  /// Shard of a streamlet in the shared-nothing runtime (identity map to
  /// 0 when shards == 1). The transport's frame router must agree.
  [[nodiscard]] uint32_t ShardOf(StreamletId streamlet) const {
    return shards_ <= 1 ? 0 : streamlet % shards_;
  }
  [[nodiscard]] uint32_t shards() const { return shards_; }

  /// Posts `op` to `shard`'s mailbox and waits for it to execute (by this
  /// thread if the shard is idle, by the shard's active handler
  /// otherwise). Counted in cross_shard_ops. With shards == 1 the op runs
  /// inline.
  void ExecuteOnShard(uint32_t shard, std::function<void()> op);

  [[nodiscard]] Stream* GetStream(StreamId id) const;
  [[nodiscard]] MemoryManager& memory() { return memory_; }
  [[nodiscard]] NodeId node() const { return config_.node; }
  [[nodiscard]] const BrokerConfig& config() const { return config_; }

  /// All virtual logs currently instantiated on this broker.
  [[nodiscard]] std::vector<VirtualLog*> VirtualLogs() const;

  /// Human-readable snapshot of this broker's streams, groups and virtual
  /// logs (operator introspection; not a stable format).
  [[nodiscard]] std::string DebugString() const;

  /// Trims fully durable closed groups older than each streamlet's newest
  /// group and fully replicated virtual segments. Returns groups trimmed.
  size_t TrimDurable();

  /// Quiescence helper (deterministic tests): drives every virtual log's
  /// pending replication work to completion on the calling thread. Only
  /// meaningful with replication_workers == 0 — no background pollers
  /// compete for the batches. Gives up after `max_failed_batches` failed
  /// ship attempts (a dead backup would otherwise mean an endless
  /// abort/evacuate/retry loop); returns true when every vlog drained.
  bool DrainReplication(int max_failed_batches = 8);

  /// Stops the background replication workers (no-op when disabled).
  /// Must be called before the network the broker ships through is shut
  /// down; the destructor also stops them.
  void StopReplicator();

  /// Wakes every parked long-poll consume request and makes subsequent
  /// ones return immediately. Call before shutting down the transport that
  /// delivers consume RPCs so its handler threads are not held until the
  /// poll deadline; the destructor also calls it.
  void StopConsumeWaits();

  /// The background replicator, or nullptr when replication_workers == 0.
  [[nodiscard]] Replicator* replicator() const { return replicator_.get(); }

  /// The tiered segment store, or nullptr when memory_budget_bytes == 0
  /// (unbounded: every segment stays resident).
  [[nodiscard]] TieredStore* tiered() const { return tiered_.get(); }

 private:
  struct StreamEntry {
    std::unique_ptr<Stream> storage;
    std::string name;
    /// Immutable after AddStream (the mutable seal bit lives in `sealed`).
    rpc::StreamInfo info;
    /// Bounded-stream seal: checked on every append/gather, flipped once
    /// by SealStream. Atomic so no shard lock covers a stream-wide bit.
    std::atomic<bool> sealed{false};
    /// Count of long-pollers parked on a shard other than (some of) the
    /// shards their entries live on (a consume request may span shards).
    /// While > 0, every wake-worthy event broadcasts to all shards; the
    /// hot single-shard path never pays for this.
    std::atomic<uint32_t> cross_parked{0};
    /// Exactly-once dedup state per (streamlet, producer): the last
    /// accepted chunk sequence plus where that chunk landed, so a
    /// duplicate retry can WAIT for the original's durability instead of
    /// being acked immediately (a retry usually means the producer never
    /// saw an ack; acking before the original replicates would fabricate
    /// durability — the chunk can still be lost to a crash). `vlog` is
    /// broker-owned and outlives the entry; it stays nullptr while the
    /// original append is still in flight. The group is re-resolved by id
    /// at wait time because trimming destroys Group objects (a trimmed
    /// group was fully durable).
    struct DedupEntry {
      ChunkSeq seq = 0;
      VirtualLog* vlog = nullptr;
      GroupId group = 0;
      uint64_t group_chunk_index = 0;
      /// Producer session epoch of the last accepted chunk (0 for
      /// classic epoch-less producers). A chunk with a LOWER epoch is a
      /// fenced zombie (kFenced); a HIGHER epoch starts a new session and
      /// resets the sequence window. Epoch bytes ride in the chunk header
      /// itself, so replication and recovery replay rebuild this field
      /// with no separate dedup record type.
      uint32_t epoch = 0;
    };
    /// Committed consumer cursor per (streamlet, consumer id), applied
    /// monotonically from kChunkFlagOffsetCommit chunks at append time
    /// (including recovery replays — the table rebuilds from the log).
    struct OffsetEntry {
      GroupId group = 0;
      uint64_t next_chunk = 0;
    };
    /// The shared-nothing unit: every mutable hot-path field is owned by
    /// one shard (streamlet % shards) and guarded by that shard's `mu`
    /// only — produce/consume/replication on different shards of the same
    /// stream never serialize on one lock or bounce one cache line. With
    /// shards == 1 this collapses to the old per-stream lock.
    struct alignas(64) ShardState {
      mutable std::mutex mu;
      std::set<StreamletId> led;  // streamlets led here, owned by shard
      /// Long-poll waiter list: consume handlers with nothing to return
      /// park on `consume_cv` until the durability gate advances for this
      /// shard's streamlets (replication completes), a group rolls/seals,
      /// or the poll deadline passes. `consume_epoch` is bumped on every
      /// wake-worthy event so a gather racing a wakeup re-checks instead
      /// of sleeping through it.
      std::condition_variable consume_cv;
      uint64_t consume_epoch = 0;
      std::map<std::pair<StreamletId, ProducerId>, DedupEntry> dedup;
      /// Dedup hits per key, kept OUTSIDE DedupEntry: the append path's
      /// sequence reservation rolls DedupEntry back on failure, which
      /// must not erase observed hit counts.
      std::map<std::pair<StreamletId, ProducerId>, uint64_t> dedup_hits;
      /// Committed consumer offsets for this shard's streamlets.
      std::map<std::pair<StreamletId, uint32_t>, OffsetEntry> offsets;
      // Resolved vlog cache (ownership stays in the broker-level maps);
      // avoids taking mu_ per chunk once a mapping is established. The
      // shared-pool slice holds only this shard's vlogs.
      std::vector<VirtualLog*> shared_pool_cache;
      std::map<std::pair<StreamletId, uint32_t>, VirtualLog*> vlog_cache;
    };
    uint32_t nshards = 1;
    std::unique_ptr<ShardState[]> shard;

    [[nodiscard]] ShardState& ShardFor(StreamletId streamlet) {
      return shard[nshards <= 1 ? 0 : streamlet % nshards];
    }
  };

  void EncodeReplicateBody(const ReplicationBatch& batch,
                           rpc::Writer& body) const;

  /// One pass of the consume gather (durability-gated chunk collection for
  /// every entry). `payload_bytes` receives the total chunk bytes served;
  /// `all_terminal` is true when no requested entry can ever yield more
  /// data (sealed stream, groups drained) so waiting would be pointless;
  /// `rotated` is true when some entry hit group_closed with its cursor at
  /// the end — actionable for the consumer even without data.
  rpc::ConsumeResponse GatherConsume(StreamEntry& entry,
                                     const rpc::ConsumeRequest& req,
                                     size_t* payload_bytes,
                                     bool* all_terminal, bool* rotated);

  /// Bumps `shard`'s consume epoch and wakes its parked long-pollers;
  /// broadcasts to every shard while cross-shard pollers are parked.
  void NotifyConsumeWaiters(StreamEntry& entry, uint32_t shard);
  /// Stream-wide events (seal, leadership changes, shutdown): wakes the
  /// parked long-pollers of every shard.
  void NotifyConsumeWaitersAllShards(StreamEntry& entry);
  /// Notifies every (stream, shard) whose data advanced in `batch`.
  void NotifyConsumeWaitersForBatch(const ReplicationBatch& batch);

  /// Lock-free on the hot path: stream ids below kStreamSlots resolve
  /// through an append-only atomic slot array (streams are never removed
  /// from a live broker), everything else falls back to the mu_-guarded
  /// map.
  StreamEntry* FindStream(StreamId id) const;
  VirtualLog* ResolveVlog(StreamEntry& entry, StreamletId streamlet,
                          uint32_t slot);
  std::unique_ptr<VirtualLog> MakeVlog(VlogId id, uint32_t replication_factor,
                                       uint32_t owner_shard);

  /// Shard a data-plane request frame is accounted to (must mirror
  /// rpc::RouteFrameToShard): the first chunk/entry's streamlet.
  [[nodiscard]] uint32_t HomeShardOf(const rpc::ProduceRequest& req) const;
  [[nodiscard]] uint32_t HomeShardOf(const rpc::ConsumeRequest& req) const;

  /// Frame-top bookkeeping for a data-plane request routed to `shard`:
  /// count the frame and drain the shard's mailbox (admin ops execute
  /// between frames, never mid-request).
  void EnterShardFrame(uint32_t shard);

  /// A duplicate produce chunk whose original copy may not be durable
  /// yet: the produce paths wait on this position before acking, so the
  /// retry's ack carries the same durability guarantee as the original's
  /// would have.
  struct DuplicateWait {
    VirtualLog* vlog = nullptr;
    StreamletId streamlet = 0;
    GroupId group = 0;
    uint64_t group_chunk_index = 0;
  };

  /// Folds an offset-commit chunk's records into `ss.offsets` (caller
  /// holds ss.mu). Application is monotonic per (streamlet, consumer) —
  /// (group, next_chunk) only ever advances — so replays and recovery
  /// re-ingest are idempotent in any order.
  static void ApplyOffsetChunk(StreamEntry::ShardState& ss,
                               StreamletId streamlet, const ChunkView& chunk);

  Status AppendOneChunk(StreamEntry& entry, const rpc::ProduceRequest& req,
                        std::span<const std::byte> frame, uint32_t home_shard,
                        std::vector<std::pair<VirtualLog*, ChunkRef>>&
                            appended,
                        std::vector<DuplicateWait>& duplicate_waits,
                        rpc::ProduceResponse& resp);

  /// Synchronous-replication drive loop: polls and ships `vlog`'s batches
  /// on the calling thread until `ref` is durable (only ref.group and
  /// ref.loc.group_chunk_index are consulted), tolerating a bounded number
  /// of segment evacuations after backup failures before giving up.
  Status DriveUntilDurable(VirtualLog& vlog, const ChunkRef& ref);

  const BrokerConfig config_;
  const uint32_t shards_;
  rpc::Network& network_;
  MemoryManager memory_;

  /// Per-shard runtime: the cross-core mailbox plus the handled-frame
  /// counter. Heap-allocated so shards never share a cache line.
  struct alignas(64) ShardRuntime {
    ShardMailbox mailbox;
    std::atomic<uint64_t> frames{0};
  };
  std::vector<std::unique_ptr<ShardRuntime>> shard_rt_;

  // Guards the structural maps (streams_, vlog ownership). Hot-path state
  // lives behind per-shard StreamEntry locks and atomic stats counters;
  // lock order is mu_ before ShardState::mu, never the reverse.
  mutable std::mutex mu_;
  std::map<StreamId, std::unique_ptr<StreamEntry>> streams_;

  /// Lock-free stream lookup: slot `id` publishes the entry for stream id
  /// `id` once AddStream completes. Append-only (streams are never erased
  /// while the broker lives), so readers need no lock and no reclamation.
  static constexpr size_t kStreamSlots = 1024;
  mutable std::array<std::atomic<StreamEntry*>, kStreamSlots> stream_slots_{};

  // Shared pool (policy kSharedPerBroker), keyed by replication factor so
  // streams with different R never share a log.
  std::map<uint32_t, std::vector<std::unique_ptr<VirtualLog>>> shared_pools_;
  // Dedicated logs (policy kPerSubPartition), keyed by sub-partition.
  std::map<std::tuple<StreamId, StreamletId, uint32_t>,
           std::unique_ptr<VirtualLog>>
      subpartition_vlogs_;
  VlogId next_vlog_id_ = 0;

  // Live backup services (defaults to config_.backup_nodes). Guarded by
  // live_backups_mu_ (not mu_): the vlog backup selectors read it while
  // holding the vlog lock, and must not take mu_.
  mutable std::mutex live_backups_mu_;
  std::vector<NodeId> live_backups_;

  /// Stats counters are lock-free so the produce/consume/replication hot
  /// paths never serialize on a stats mutex.
  struct AtomicStats {
    std::atomic<uint64_t> produce_rpcs{0};
    std::atomic<uint64_t> chunks_appended{0};
    std::atomic<uint64_t> chunks_duplicate{0};
    std::atomic<uint64_t> chunks_fenced{0};
    std::atomic<uint64_t> offset_commits{0};
    std::atomic<uint64_t> bytes_appended{0};
    std::atomic<uint64_t> consume_rpcs{0};
    std::atomic<uint64_t> chunks_served{0};
    std::atomic<uint64_t> consume_long_polls{0};
    std::atomic<uint64_t> replication_batches{0};
    std::atomic<uint64_t> replication_rpcs{0};
    std::atomic<uint64_t> replication_bytes{0};
    std::atomic<uint64_t> checksum_failures{0};
    std::atomic<uint64_t> cross_shard_ops{0};
    std::atomic<uint64_t> recovery_produce_rpcs{0};
    std::atomic<uint64_t> recovery_chunks_appended{0};
    std::atomic<uint64_t> recovery_bytes_appended{0};
  };
  AtomicStats stats_;

  /// Set by StopConsumeWaits: long-poll parking is disabled and parked
  /// handlers return on their next wake.
  std::atomic<bool> consume_waits_stopped_{false};

  /// Tiered segment store (nullptr when memory_budget_bytes == 0).
  /// Declared after streams_ so it is destroyed first — it references
  /// Streamlet/Group/Segment objects the streams own.
  std::unique_ptr<TieredStore> tiered_;

  // Declared last: destroyed first, so worker threads stop while the
  // vlogs/streams they reference are still alive.
  std::unique_ptr<Replicator> replicator_;
};

}  // namespace kera
