#include "broker/tiered_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/crc32c.h"

namespace kera {

TieredStore::TieredStore(TieredStoreOptions options, MemoryManager& memory)
    : options_(std::move(options)),
      shards_n_(std::max(1u, options_.shards)),
      budget_per_shard_(options_.memory_budget_bytes / shards_n_),
      memory_(memory),
      cold_pool_(options_.cold_cache_bytes > 0
                     ? options_.cold_cache_bytes
                     : 4 * options_.segment_size,
                 options_.segment_size),
      log_(std::make_unique<SegmentLog>(options_.spill_dir, options_.log)) {
  assert(options_.segment_size > 0);
  shards_.reserve(shards_n_);
  for (uint32_t i = 0; i < shards_n_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.async_readahead) {
    ra_worker_ = std::thread(&TieredStore::ReadaheadWorker, this);
  }
}

TieredStore::~TieredStore() {
  if (ra_worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ra_mu_);
      ra_shutdown_ = true;
    }
    ra_cv_.notify_all();
    ra_worker_.join();
  }
  // Cache entries must not outlive cold_pool_: any entry still alive here
  // has no external holders (consume responses are gone), so dropping the
  // map returns every pooled buffer before the pool destructs.
  cache_.clear();
}

void TieredStore::TrackStreamlet(StreamId stream, Streamlet* streamlet) {
  Shard& sh = *shards_[ShardOf(streamlet->id())];
  std::lock_guard<std::mutex> lock(sh.mu);
  StreamletTrack& t = sh.streamlets[{stream, streamlet->id()}];
  if (t.streamlet != streamlet) {
    // Fresh registration (or the broker rebuilt the streamlet): restart
    // discovery from group 0 of the new object.
    t = StreamletTrack{};
    t.streamlet = streamlet;
  }
}

// ------------------------------------------------------------- spill pump

void TieredStore::Pump(uint32_t shard) {
  Shard& sh = *shards_[shard % shards_n_];
  std::lock_guard<std::mutex> lock(sh.mu);

  for (auto& [id, track] : sh.streamlets) {
    const auto [stream, streamlet_id] = id;
    // Discover groups created since the last pump.
    GroupId next = track.streamlet->next_group_id();
    for (GroupId g = track.next_new_group; g < next; ++g) {
      if (Group* grp = track.streamlet->GetGroup(g); grp != nullptr) {
        track.open.emplace(g, GroupTrack{grp, 0});
      }
    }
    track.next_new_group = next;

    // Spill newly sealed segments, in seal order within each group.
    for (auto it = track.open.begin(); it != track.open.end();) {
      GroupTrack& gt = it->second;
      if (gt.group->trimmed()) {
        it = track.open.erase(it);
        continue;
      }
      size_t count = gt.group->segment_count();
      while (gt.next_spill < count) {
        Segment* seg = gt.group->GetSegment(SegmentId(gt.next_spill));
        if (seg == nullptr || !seg->closed()) break;
        SpillSegmentLocked(sh, stream, streamlet_id, it->first,
                           SegmentId(gt.next_spill), seg);
        ++gt.next_spill;
      }
      // A closed group with every segment enqueued needs no more visits.
      if (gt.group->closed() && gt.next_spill == count) {
        it = track.open.erase(it);
      } else {
        ++it;
      }
    }
  }

  EvictLocked(sh);
}

void TieredStore::PumpAll() {
  for (uint32_t i = 0; i < shards_n_; ++i) Pump(i);
}

void TieredStore::SpillSegmentLocked(Shard& sh, StreamId stream,
                                     StreamletId streamlet, GroupId group,
                                     SegmentId segment_id, Segment* seg) {
  const SegmentLog::CopyKey key = KeyFor(stream, streamlet, group, segment_id);
  const std::span<const std::byte> view = seg->View();
  const uint32_t crc = Crc32c(view);
  // One open + one whole-payload append + one seal; the log's group-commit
  // flusher owns the disk IO from here (Enqueue copies the payload, so the
  // segment buffer is free to be evicted once the seal ticket is durable).
  log_->EnqueueOpen(key);
  log_->EnqueueAppend(key, 0, view, /*chunk_count=*/0, crc);
  const uint64_t ticket =
      log_->EnqueueSeal(key, view.size(), /*chunk_count=*/0, crc);

  sh.candidates.push_back(Candidate{stream, streamlet, group, segment_id, seg,
                                    ticket, view.size()});
  sh.resident_sealed += view.size();
  sh.spilled[{stream, streamlet, group}] = uint32_t(segment_id) + 1;

  segments_spilled_.fetch_add(1, std::memory_order_relaxed);
  spill_bytes_.fetch_add(view.size(), std::memory_order_relaxed);
}

void TieredStore::EvictLocked(Shard& sh) {
  if (sh.resident_sealed <= budget_per_shard_) return;
  // Clock hand: one pass over the candidates in spill order. A candidate
  // still replicating (durable head behind head) or pinned by an in-flight
  // zero-copy response gets a second chance — it keeps its place and is
  // reconsidered at the next pump.
  std::deque<Candidate> keep;
  bool synced = false;
  while (!sh.candidates.empty()) {
    Candidate c = sh.candidates.front();
    sh.candidates.pop_front();
    if (sh.resident_sealed <= budget_per_shard_) {
      keep.push_back(c);
      continue;
    }
    Segment* seg = c.segment;
    // Evict only fully replicated segments: the vlog never has to gather
    // from the spill tier, and consumers can already see every byte.
    if (seg->durable_head() != seg->head()) {
      keep.push_back(c);
      continue;
    }
    // The spill record must be on disk before the DRAM copy goes away.
    if (log_->DurableTicket() < c.ticket) {
      if (!synced) {
        synced = true;
        if (!log_->Sync().ok()) {
          keep.push_back(c);
          continue;
        }
      }
      if (log_->DurableTicket() < c.ticket) {
        keep.push_back(c);
        continue;
      }
    }
    if (!seg->TryEvict()) {  // reader pin won the race: second chance
      keep.push_back(c);
      continue;
    }
    Buffer buf = seg->DetachBuffer();
    if (buf.capacity() > 0) memory_.Release(std::move(buf));
    sh.resident_sealed -= c.bytes;
    segments_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  sh.candidates = std::move(keep);
}

// ---------------------------------------------------------------- trimming

void TieredStore::OnGroupTrim(StreamId stream, StreamletId streamlet,
                              Group* group) {
  const GroupId gid = group->id();
  Shard& sh = *shards_[ShardOf(streamlet)];
  uint32_t spilled = 0;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    std::deque<Candidate> keep;
    for (Candidate& c : sh.candidates) {
      if (c.stream == stream && c.streamlet == streamlet &&
          c.group_id == gid) {
        sh.resident_sealed -= c.bytes;  // buffer freed by Group::Trim
      } else {
        keep.push_back(c);
      }
    }
    sh.candidates = std::move(keep);
    if (auto it = sh.spilled.find({stream, streamlet, gid});
        it != sh.spilled.end()) {
      spilled = it->second;
      sh.spilled.erase(it);
    }
    if (auto st = sh.streamlets.find({stream, streamlet});
        st != sh.streamlets.end()) {
      st->second.open.erase(gid);
    }
  }
  // Drop the spilled copies so the spill log's hot-cold GC can reclaim
  // them, and purge the group's cold-cache entries (in-flight responses
  // keep theirs alive via shared_ptr).
  for (uint32_t s = 0; s < spilled; ++s) {
    log_->EnqueueEvacuate(KeyFor(stream, streamlet, gid, SegmentId(s)));
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.erase(cache_.lower_bound(KeyFor(stream, streamlet, gid, 0)),
               cache_.lower_bound(KeyFor(stream, streamlet, gid + 1, 0)));
}

// --------------------------------------------------------------- cold reads

Result<std::shared_ptr<const TieredStore::ColdSegment>> TieredStore::ReadCold(
    StreamId stream, StreamletId streamlet, GroupId group, SegmentId segment) {
  const SegmentLog::CopyKey key = KeyFor(stream, streamlet, group, segment);
  std::shared_ptr<ColdSegment> entry;
  std::vector<SegmentLog::CopyKey> prefetch;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      entry = it->second;
      entry->last_use = ++cache_clock_;
      if (entry->from_readahead) {
        // First demand touch of a speculatively loaded segment: the
        // readahead turned a would-be miss into a hit.
        entry->from_readahead = false;
        readahead_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      cold_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return std::shared_ptr<const ColdSegment>(std::move(entry));
    }
    cold_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    auto loaded = LoadLocked(key, /*from_readahead=*/false);
    if (!loaded.ok()) return loaded.status();
    entry = std::move(*loaded);

    // Sequential readahead: catch-up consumers scan a group front to back,
    // so prefetch the next segments of the same group. kNotFound just
    // means the group has no more spilled segments.
    for (uint32_t i = 1; i <= options_.readahead_segments; ++i) {
      const SegmentLog::CopyKey next =
          KeyFor(stream, streamlet, group, SegmentId(uint32_t(segment) + i));
      if (cache_.count(next) != 0) continue;
      if (options_.async_readahead) {
        prefetch.push_back(next);
      } else {
        auto ra = LoadLocked(next, /*from_readahead=*/true);
        if (!ra.ok()) break;
        readahead_loads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!prefetch.empty()) {
    {
      std::lock_guard<std::mutex> lock(ra_mu_);
      for (auto& k : prefetch) ra_queue_.push_back(k);
    }
    ra_cv_.notify_one();
  }
  return std::shared_ptr<const ColdSegment>(std::move(entry));
}

Result<std::shared_ptr<TieredStore::ColdSegment>> TieredStore::LoadLocked(
    const SegmentLog::CopyKey& key, bool from_readahead) {
  auto entry = std::make_shared<ColdSegment>();
  auto buf = cold_pool_.Acquire();
  while (!buf.ok() && !cache_.empty()) {
    // Pool exhausted: drop the least-recently-used cache entries. A
    // dropped entry's buffer comes back to the pool once its last holder
    // (possibly an in-flight response) releases it.
    auto victim = cache_.begin();
    for (auto it = std::next(cache_.begin()); it != cache_.end(); ++it) {
      if (it->second->last_use < victim->second->last_use) victim = it;
    }
    cache_.erase(victim);
    buf = cold_pool_.Acquire();
  }
  if (buf.ok()) {
    entry->buf = std::move(*buf);
    entry->pool = &cold_pool_;
  } else {
    // Every pooled buffer is pinned by an in-flight response: serve this
    // read from a transient buffer rather than stall or touch the hot pool.
    entry->buf = Buffer(options_.segment_size);
    entry->pool = nullptr;
  }
  uint64_t size = 0;
  Status s = log_->ReadSegmentInto(
      key, {entry->buf.data(), entry->buf.capacity()}, size);
  if (!s.ok()) return s;  // entry's dtor returns a pooled buffer
  entry->size = size;
  entry->from_readahead = from_readahead;
  entry->last_use = ++cache_clock_;
  cache_.emplace(key, entry);
  return entry;
}

void TieredStore::ReadaheadWorker() {
  std::unique_lock<std::mutex> lock(ra_mu_);
  for (;;) {
    ra_cv_.wait(lock, [&] { return ra_shutdown_ || !ra_queue_.empty(); });
    if (ra_shutdown_) return;
    const SegmentLog::CopyKey key = ra_queue_.front();
    ra_queue_.pop_front();
    lock.unlock();
    {
      std::lock_guard<std::mutex> cl(cache_mu_);
      if (cache_.count(key) == 0) {
        if (auto r = LoadLocked(key, /*from_readahead=*/true); r.ok()) {
          readahead_loads_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    lock.lock();
  }
}

// -------------------------------------------------------------------- stats

TieredStore::Stats TieredStore::GetStats() const {
  Stats s;
  s.segments_spilled = segments_spilled_.load(std::memory_order_relaxed);
  s.segments_evicted = segments_evicted_.load(std::memory_order_relaxed);
  s.spill_bytes = spill_bytes_.load(std::memory_order_relaxed);
  s.cold_reads = cold_reads_.load(std::memory_order_relaxed);
  s.cold_cache_hits = cold_cache_hits_.load(std::memory_order_relaxed);
  s.cold_cache_misses = cold_cache_misses_.load(std::memory_order_relaxed);
  s.readahead_hits = readahead_hits_.load(std::memory_order_relaxed);
  s.readahead_loads = readahead_loads_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    s.resident_sealed_bytes += sh->resident_sealed;
  }
  s.log = log_->GetStats();
  return s;
}

}  // namespace kera
