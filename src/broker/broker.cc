#include "broker/broker.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "wire/chunk.h"
#include "wire/layout.h"

namespace kera {

namespace {
/// Offset-commit record value: the persisted form of one consumer-cursor
/// entry, carried as an ordinary record inside a kChunkFlagOffsetCommit
/// chunk (fixed 28-byte little-endian layout):
///   u32 consumer, u64 commit_seq, u32 streamlet, u32 group, u64 next_chunk
constexpr size_t kOffsetRecordBytes = 28;

void EncodeOffsetValue(std::byte* p, uint32_t consumer, uint64_t commit_seq,
                       StreamletId streamlet, GroupId group,
                       uint64_t next_chunk) {
  wire::StoreU32(p + 0, consumer);
  wire::StoreU64(p + 4, commit_seq);
  wire::StoreU32(p + 12, streamlet);
  wire::StoreU32(p + 16, group);
  wire::StoreU64(p + 20, next_chunk);
}
}  // namespace

Broker::Broker(BrokerConfig config, rpc::Network& network)
    : config_(std::move(config)),
      shards_(std::max<uint32_t>(1, config_.shards)),
      network_(network),
      memory_(config_.memory_bytes, config_.segment_size) {
  live_backups_ = config_.backup_nodes;
  shard_rt_.reserve(shards_);
  for (uint32_t s = 0; s < shards_; ++s) {
    shard_rt_.push_back(std::make_unique<ShardRuntime>());
  }
  if (config_.memory_budget_bytes > 0 && !config_.spill_dir.empty()) {
    TieredStoreOptions to;
    to.memory_budget_bytes = config_.memory_budget_bytes;
    to.spill_dir = config_.spill_dir;
    to.segment_size = config_.segment_size;
    to.cold_cache_bytes = config_.cold_cache_bytes;
    to.readahead_segments = config_.readahead_segments;
    to.shards = shards_;
    to.async_readahead = config_.async_readahead;
    tiered_ = std::make_unique<TieredStore>(to, memory_);
  }
  if (config_.replication_workers > 0) {
    replicator_ = std::make_unique<Replicator>(
        *this, config_.replication_workers, shards_ > 1);
  }
}

Broker::~Broker() { StopConsumeWaits(); }

void Broker::StopReplicator() {
  if (replicator_ != nullptr) replicator_->Stop();
}

void Broker::StopConsumeWaits() {
  consume_waits_stopped_.store(true, std::memory_order_release);
  std::vector<StreamEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [_, entry] : streams_) entries.push_back(entry.get());
  }
  for (StreamEntry* entry : entries) NotifyConsumeWaitersAllShards(*entry);
}

void Broker::ExecuteOnShard(uint32_t shard, std::function<void()> op) {
  if (shards_ <= 1) {
    op();
    return;
  }
  stats_.cross_shard_ops.fetch_add(1, std::memory_order_relaxed);
  shard_rt_[shard]->mailbox.Execute(std::move(op));
}

void Broker::EnterShardFrame(uint32_t shard) {
  ShardRuntime& rt = *shard_rt_[shard];
  rt.frames.fetch_add(1, std::memory_order_relaxed);
  rt.mailbox.Drain();
}

uint32_t Broker::HomeShardOf(const rpc::ProduceRequest& req) const {
  if (shards_ <= 1 || req.chunks.empty()) return 0;
  const auto& first = req.chunks.front();
  if (first.size() < chunk_offsets::kStreamletId + 4) return 0;
  uint32_t streamlet;
  std::memcpy(&streamlet, first.data() + chunk_offsets::kStreamletId, 4);
  return streamlet % shards_;
}

uint32_t Broker::HomeShardOf(const rpc::ConsumeRequest& req) const {
  if (shards_ <= 1 || req.entries.empty()) return 0;
  return req.entries.front().streamlet % shards_;
}

void Broker::NotifyConsumeWaiters(StreamEntry& entry, uint32_t shard) {
  {
    StreamEntry::ShardState& ss = entry.shard[shard];
    std::lock_guard<std::mutex> lock(ss.mu);
    ++ss.consume_epoch;
    ss.consume_cv.notify_all();
  }
  // Pollers whose entries span shards park on one shard but wait for data
  // on others: while any are parked, every wake broadcasts. The epoch
  // bump must happen under each shard's lock or a poller between its
  // epoch check and cv wait would sleep through the wake.
  if (entry.cross_parked.load(std::memory_order_acquire) > 0) {
    for (uint32_t s = 0; s < entry.nshards; ++s) {
      if (s == shard) continue;
      StreamEntry::ShardState& ss = entry.shard[s];
      std::lock_guard<std::mutex> lock(ss.mu);
      ++ss.consume_epoch;
      ss.consume_cv.notify_all();
    }
  }
}

void Broker::NotifyConsumeWaitersAllShards(StreamEntry& entry) {
  for (uint32_t s = 0; s < entry.nshards; ++s) {
    StreamEntry::ShardState& ss = entry.shard[s];
    std::lock_guard<std::mutex> lock(ss.mu);
    ++ss.consume_epoch;
    ss.consume_cv.notify_all();
  }
}

void Broker::NotifyConsumeWaitersForBatch(const ReplicationBatch& batch) {
  StreamId last_stream = StreamId(-1);
  uint32_t last_shard = 0;
  for (const ChunkRef& ref : batch.refs) {
    uint32_t shard = ShardOf(ref.streamlet);
    if (ref.stream == last_stream && shard == last_shard) {
      continue;  // refs cluster by stream/streamlet in practice
    }
    last_stream = ref.stream;
    last_shard = shard;
    StreamEntry* entry = FindStream(ref.stream);
    if (entry != nullptr) NotifyConsumeWaiters(*entry, shard);
  }
}

void Broker::SetLiveBackups(std::vector<NodeId> live_backup_services) {
  std::lock_guard<std::mutex> lock(live_backups_mu_);
  live_backups_ = std::move(live_backup_services);
}

Status Broker::AddStream(const std::string& name,
                         const rpc::StreamInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (streams_.count(info.stream) != 0) {
    return OkStatus();  // idempotent (coordinator may re-announce)
  }
  StorageConfig sc;
  sc.segment_size = config_.segment_size;
  sc.segments_per_group = config_.segments_per_group;
  sc.active_groups_per_streamlet = info.options.active_groups_per_streamlet;
  auto entry = std::make_unique<StreamEntry>();
  entry->storage = std::make_unique<Stream>(memory_, sc, info.stream, name);
  entry->info = info;
  entry->name = name;
  entry->sealed.store(info.sealed, std::memory_order_release);
  entry->nshards = shards_;
  entry->shard = std::make_unique<StreamEntry::ShardState[]>(shards_);
  StreamEntry* raw = entry.get();
  streams_.emplace(info.stream, std::move(entry));
  // Publish into the lock-free slot last: a reader that wins the race
  // sees a fully constructed entry.
  if (info.stream < kStreamSlots) {
    stream_slots_[info.stream].store(raw, std::memory_order_release);
  }
  return OkStatus();
}

Status Broker::AddStreamlet(StreamId stream, StreamletId streamlet) {
  StreamEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(stream);
    if (it == streams_.end()) {
      return Status(StatusCode::kNotFound, "unknown stream");
    }
    entry = it->second.get();
    entry->storage->AddStreamlet(streamlet);
  }
  if (tiered_ != nullptr) {
    tiered_->TrackStreamlet(stream, entry->storage->GetStreamlet(streamlet));
  }
  // Leadership lands through the owning shard's mailbox: the insert is
  // serialized between that shard's frames, never mid-produce-batch.
  ExecuteOnShard(ShardOf(streamlet), [entry, streamlet] {
    StreamEntry::ShardState& ss = entry->ShardFor(streamlet);
    std::lock_guard<std::mutex> entry_lock(ss.mu);
    ss.led.insert(streamlet);
  });
  // A consumer may already be parked probing this streamlet (leadership
  // handed over mid-poll): let it re-gather.
  NotifyConsumeWaitersAllShards(*entry);
  return OkStatus();
}

Status Broker::FinishRecovery(StreamId stream) {
  StreamEntry* entry = FindStream(stream);
  if (entry == nullptr) {
    return Status(StatusCode::kNotFound, "unknown stream");
  }
  for (StreamletId sl : entry->storage->StreamletIds()) {
    entry->storage->GetStreamlet(sl)->CloseRecoveryGroups();
  }
  NotifyConsumeWaitersAllShards(*entry);
  return OkStatus();
}

Status Broker::DropStreamletLeadership(StreamId stream,
                                       StreamletId streamlet) {
  StreamEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = streams_.find(stream);
    if (it == streams_.end()) {
      return Status(StatusCode::kNotFound, "unknown stream");
    }
    entry = it->second.get();
  }
  ExecuteOnShard(ShardOf(streamlet), [entry, streamlet] {
    StreamEntry::ShardState& ss = entry->ShardFor(streamlet);
    std::lock_guard<std::mutex> entry_lock(ss.mu);
    ss.led.erase(streamlet);
  });
  // Close the active groups so the remaining data can be trimmed once
  // consumed; new leadership lives elsewhere.
  Streamlet* sl = entry->storage->GetStreamlet(streamlet);
  if (sl != nullptr) sl->SealActiveGroups();
  NotifyConsumeWaitersAllShards(*entry);
  return OkStatus();
}

Status Broker::SealStream(StreamId stream) {
  StreamEntry* entry = FindStream(stream);
  if (entry == nullptr) {
    return Status(StatusCode::kNotFound, "unknown stream");
  }
  entry->sealed.store(true, std::memory_order_release);
  entry->storage->Seal();
  // Parked consumers must observe the seal (it is their end-of-stream).
  NotifyConsumeWaitersAllShards(*entry);
  return OkStatus();
}

Broker::StreamEntry* Broker::FindStream(StreamId id) const {
  if (id < kStreamSlots) {
    StreamEntry* entry = stream_slots_[id].load(std::memory_order_acquire);
    if (entry != nullptr) return entry;
    // A miss can mean "racing AddStream": fall through to the map, which
    // the writer updates under mu_ before publishing the slot.
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : it->second.get();
}

std::unique_ptr<VirtualLog> Broker::MakeVlog(VlogId id,
                                             uint32_t replication_factor,
                                             uint32_t owner_shard) {
  VirtualLogConfig vc;
  vc.virtual_segment_capacity = config_.virtual_segment_capacity;
  vc.replication_factor = replication_factor;
  vc.max_batch_bytes = config_.replication_max_batch_bytes;
  vc.replication_window = config_.replication_window;
  vc.first_segment_id = VirtualSegmentId(config_.incarnation) << 32;
  // Rotate the backup set per virtual segment so replicas scatter across
  // the cluster and recovery can read from many backups in parallel. A
  // broker never backs up its own data (replicas must survive the node).
  // The candidate set is re-read from the live membership on every
  // selection so new segments avoid dead backups.
  NodeId own_backup = BackupServiceId(config_.node);
  auto selector = [this, own_backup, id,
                   replication_factor](VirtualSegmentId vseg) {
    std::vector<NodeId> candidates;
    {
      std::lock_guard<std::mutex> lock(live_backups_mu_);
      for (NodeId n : live_backups_) {
        if (n != own_backup) candidates.push_back(n);
      }
    }
    std::vector<NodeId> picked;
    size_t need = replication_factor - 1;
    if (candidates.size() < need) {
      // Not enough live backups: fall back to the full configured set;
      // replication to the dead ones will fail and the produce request
      // surfaces kUnavailable (no silent durability downgrade).
      candidates.clear();
      for (NodeId n : config_.backup_nodes) {
        if (n != own_backup) candidates.push_back(n);
      }
    }
    assert(candidates.size() >= need && "not enough configured backups");
    size_t start = (size_t(id) * 7 + size_t(vseg)) % candidates.size();
    for (size_t i = 0; i < need; ++i) {
      picked.push_back(candidates[(start + i) % candidates.size()]);
    }
    return picked;
  };
  auto vlog = std::make_unique<VirtualLog>(id, vc, selector);
  vlog->set_owner_shard(owner_shard);
  return vlog;
}

VirtualLog* Broker::ResolveVlog(StreamEntry& entry, StreamletId streamlet,
                                uint32_t slot) {
  const auto& opts = entry.info.options;
  const uint32_t shard = ShardOf(streamlet);
  StreamEntry::ShardState& ss = entry.shard[shard];
  if (opts.vlog_policy == rpc::VlogPolicy::kPerSubPartition) {
    auto cache_key = std::make_pair(streamlet, slot);
    {
      std::lock_guard<std::mutex> lock(ss.mu);
      auto it = ss.vlog_cache.find(cache_key);
      if (it != ss.vlog_cache.end()) return it->second;
    }
    VirtualLog* raw = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto key = std::make_tuple(entry.info.stream, streamlet, slot);
      auto it = subpartition_vlogs_.find(key);
      if (it != subpartition_vlogs_.end()) {
        raw = it->second.get();
      } else {
        auto vlog =
            MakeVlog(next_vlog_id_++, opts.replication_factor, shard);
        raw = vlog.get();
        subpartition_vlogs_.emplace(key, std::move(vlog));
      }
    }
    std::lock_guard<std::mutex> lock(ss.mu);
    ss.vlog_cache.emplace(cache_key, raw);
    return raw;
  }
  // Shared pool: a streamlet hashes onto one of the broker's N vlogs. The
  // pool (per replication factor) is built once under mu_; each shard
  // caches only its slice (pool index i belongs to shard i % shards), so
  // a streamlet always resolves to a vlog owned by its shard and the
  // replication work for that log never leaves the shard's core. With
  // shards == 1 the slice is the whole pool and the selection arithmetic
  // is unchanged.
  std::vector<VirtualLog*> view;
  {
    std::lock_guard<std::mutex> lock(ss.mu);
    view = ss.shared_pool_cache;
  }
  if (view.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& pool = shared_pools_[opts.replication_factor];
    if (pool.size() < config_.vlogs_per_broker) {
      pool.reserve(config_.vlogs_per_broker);
      while (pool.size() < config_.vlogs_per_broker) {
        pool.push_back(MakeVlog(next_vlog_id_++, opts.replication_factor,
                                uint32_t(pool.size()) % shards_));
      }
    }
    for (size_t i = 0; i < pool.size(); ++i) {
      if (uint32_t(i) % shards_ == shard) view.push_back(pool[i].get());
    }
    if (view.empty()) {
      // Fewer vlogs than shards: this shard has no slice of its own and
      // borrows one log (two shards then contend on that vlog's lock —
      // size the pool >= shards to avoid it).
      view.push_back(pool[shard % pool.size()].get());
    }
    std::lock_guard<std::mutex> entry_lock(ss.mu);
    ss.shared_pool_cache = view;
  }
  // splitmix64-style mix: consecutive stream ids placed round-robin over
  // brokers must still spread across the broker's vlog pool (and, with
  // shards > 1, across the shard's slice of it).
  uint64_t h = entry.info.stream * 0x9E3779B97F4A7C15ull + streamlet;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return view[size_t(h % view.size())];
}

Status Broker::AppendOneChunk(
    StreamEntry& entry, const rpc::ProduceRequest& req,
    std::span<const std::byte> frame, uint32_t home_shard,
    std::vector<std::pair<VirtualLog*, ChunkRef>>& appended_refs,
    std::vector<DuplicateWait>& duplicate_waits,
    rpc::ProduceResponse& resp) {
  auto chunk = ChunkView::Parse(frame);
  if (!chunk.ok()) return chunk.status();
  if (config_.verify_chunk_checksums && !chunk->VerifyChecksum()) {
    stats_.checksum_failures.fetch_add(1, std::memory_order_relaxed);
    return Status(StatusCode::kCorruption, "chunk checksum mismatch");
  }
  if (chunk->stream_id() != req.stream) {
    return Status(StatusCode::kInvalidArgument, "chunk/request stream mismatch");
  }
  StreamletId streamlet_id = chunk->streamlet_id();
  StreamEntry::ShardState& ss = entry.ShardFor(streamlet_id);
  if (shards_ > 1 && ShardOf(streamlet_id) != home_shard) {
    // A producer batched chunks of differently-homed streamlets into one
    // request: still correct (the shard lock protects from any thread),
    // just off the fast path.
    stats_.cross_shard_ops.fetch_add(1, std::memory_order_relaxed);
  }
  auto key = std::make_pair(streamlet_id, chunk->producer_id());
  const uint32_t epoch = chunk->producer_epoch();
  StreamEntry::DedupEntry prev;  // state before this chunk reserved its seq
  {
    // One per-shard critical section covers the seal/leadership gates
    // and the exactly-once dedup update (drop chunks at or below the
    // last accepted sequence of the same producer session).
    std::lock_guard<std::mutex> lock(ss.mu);
    // The seal bounds the stream's USER data. Offset-commit system chunks
    // stay appendable: a bounded stream's consumer drains it and then
    // durably records its final position — rejecting that would reopen a
    // redelivery window on restart. HandleCommitOffsets re-seals any
    // group such a post-seal append rolls open.
    if (entry.sealed.load(std::memory_order_acquire) && !req.recovery &&
        (chunk->flags() & kChunkFlagOffsetCommit) == 0) {
      return Status(StatusCode::kSegmentClosed, "stream is sealed");
    }
    if (ss.led.count(streamlet_id) == 0) {
      return Status(StatusCode::kNotLeader, "streamlet not led here");
    }
    auto [it, inserted] = ss.dedup.try_emplace(key);
    if (!inserted && epoch < it->second.epoch) {
      // Zombie fencing: the coordinator re-allocated this producer id
      // under a newer epoch (the epoch rides in every accepted chunk's
      // header, so replication and recovery carry it to any new leader).
      // An instance still stamping the old epoch must not append.
      stats_.chunks_fenced.fetch_add(1, std::memory_order_relaxed);
      return Status(StatusCode::kFenced, "producer epoch fenced");
    }
    if (!inserted && epoch == it->second.epoch &&
        chunk->chunk_seq() <= it->second.seq) {
      ++resp.duplicates;
      ++ss.dedup_hits[key];
      stats_.chunks_duplicate.fetch_add(1, std::memory_order_relaxed);
      // A retry of the LATEST sequence must not be acked before the
      // original copy is durable (the producer is retrying because it
      // never saw an ack). Older sequences were below the latest when it
      // was accepted, i.e. already acknowledged once — ack immediately.
      if (chunk->chunk_seq() == it->second.seq && it->second.vlog != nullptr) {
        duplicate_waits.push_back({it->second.vlog, streamlet_id,
                                   it->second.group,
                                   it->second.group_chunk_index});
      }
      return OkStatus();
    }
    // Reserve the sequence now (so a concurrent same-seq retry classifies
    // as a duplicate and waits); the landing position is recorded after
    // the appends, and the reservation is rolled back if they fail —
    // otherwise a retry of a never-appended chunk would be swallowed. A
    // HIGHER epoch lands here even with a low sequence: a new producer
    // session restarts its numbering, so the window resets with it.
    prev = it->second;
    it->second =
        StreamEntry::DedupEntry{chunk->chunk_seq(), nullptr, 0, 0, epoch};
  }
  auto rollback = [&] {
    std::lock_guard<std::mutex> lock(ss.mu);
    auto it = ss.dedup.find(key);
    if (it != ss.dedup.end() && it->second.seq == chunk->chunk_seq() &&
        it->second.epoch == epoch && it->second.vlog == nullptr) {
      it->second = prev;
    }
  };
  Streamlet* streamlet = entry.storage->GetStreamlet(streamlet_id);
  if (streamlet == nullptr) {
    rollback();
    return Status(StatusCode::kNotLeader, "streamlet not led here");
  }

  Result<StreamletAppendResult> appended =
      req.recovery
          ? streamlet->AppendRecoveryChunk(chunk->group_id(), frame)
          : streamlet->AppendChunk(chunk->producer_id(), frame);
  if (!appended.ok()) {
    rollback();
    return appended.status();
  }

  ChunkRef ref;
  ref.loc = appended->locator;
  ref.group = appended->group;
  ref.stream = req.stream;
  ref.streamlet = streamlet_id;
  ref.payload_checksum = chunk->payload_checksum();

  VirtualLog* vlog = ResolveVlog(entry, streamlet_id, appended->active_slot);
  vlog->Append(ref);
  appended_refs.emplace_back(vlog, ref);
  {
    std::lock_guard<std::mutex> lock(ss.mu);
    auto it = ss.dedup.find(key);
    if (it != ss.dedup.end() && it->second.seq == chunk->chunk_seq() &&
        it->second.epoch == epoch) {
      it->second.vlog = vlog;
      it->second.group = ref.loc.group;
      it->second.group_chunk_index = ref.loc.group_chunk_index;
    }
    if ((chunk->flags() & kChunkFlagOffsetCommit) != 0) {
      // Offset-commit system chunk: fold its records into the in-memory
      // cursor table. Appends include recovery replays, so the table
      // rebuilds from the log on the new leader with no extra machinery.
      ApplyOffsetChunk(ss, streamlet_id, *chunk);
      stats_.offset_commits.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ++resp.appended;
  stats_.chunks_appended.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_appended.fetch_add(frame.size(), std::memory_order_relaxed);
  if (req.recovery) {
    stats_.recovery_chunks_appended.fetch_add(1, std::memory_order_relaxed);
    stats_.recovery_bytes_appended.fetch_add(frame.size(),
                                             std::memory_order_relaxed);
  }
  return OkStatus();
}

rpc::ProduceResponse Broker::HandleProduceNoSync(
    const rpc::ProduceRequest& req,
    std::vector<std::pair<VirtualLog*, ChunkRef>>* appended) {
  rpc::ProduceResponse resp;
  stats_.produce_rpcs.fetch_add(1, std::memory_order_relaxed);
  if (req.recovery) {
    stats_.recovery_produce_rpcs.fetch_add(1, std::memory_order_relaxed);
  }
  StreamEntry* entry = FindStream(req.stream);
  if (entry == nullptr) {
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  const uint32_t home = HomeShardOf(req);
  EnterShardFrame(home);
  std::vector<std::pair<VirtualLog*, ChunkRef>> positions;
  positions.reserve(req.chunks.size());
  // Duplicate-durability waits are not driven here: the DES schedules
  // replication on simulated time and gates acks itself.
  std::vector<DuplicateWait> dup_waits;
  for (const auto& frame : req.chunks) {
    Status s =
        AppendOneChunk(*entry, req, frame, home, positions, dup_waits, resp);
    if (!s.ok()) {
      resp.status = s.code();
      return resp;
    }
  }
  if (appended != nullptr) {
    appended->insert(appended->end(), positions.begin(), positions.end());
  }
  // Deterministic tiered-memory pump point: sealed-segment discovery (and
  // any eviction the budget allows) happens at request boundaries, as a
  // pure function of the append/durability schedule.
  if (tiered_ != nullptr) {
    uint32_t last_shard = UINT32_MAX;
    for (auto& [vlog, ref] : positions) {
      (void)vlog;
      uint32_t s = ShardOf(ref.streamlet);
      if (s == last_shard) continue;
      last_shard = s;
      tiered_->Pump(s);
    }
  }
  return resp;
}

rpc::ProduceResponse Broker::HandleProduce(const rpc::ProduceRequest& req) {
  rpc::ProduceResponse resp;
  stats_.produce_rpcs.fetch_add(1, std::memory_order_relaxed);
  if (req.recovery) {
    stats_.recovery_produce_rpcs.fetch_add(1, std::memory_order_relaxed);
  }
  StreamEntry* entry = FindStream(req.stream);
  if (entry == nullptr) {
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  const uint32_t home = HomeShardOf(req);
  EnterShardFrame(home);

  std::vector<std::pair<VirtualLog*, ChunkRef>> positions;
  positions.reserve(req.chunks.size());
  std::vector<DuplicateWait> dup_waits;
  for (const auto& frame : req.chunks) {
    Status s =
        AppendOneChunk(*entry, req, frame, home, positions, dup_waits, resp);
    if (!s.ok()) {
      resp.status = s.code();
      return resp;
    }
  }

  // Shards whose streamlets this request appended to (usually exactly
  // {home}); parked long-polls on those shards are notified at the end.
  std::vector<uint32_t> touched_shards;
  for (auto& [vlog, ref] : positions) {
    (void)vlog;
    uint32_t s = ShardOf(ref.streamlet);
    if (std::find(touched_shards.begin(), touched_shards.end(), s) ==
        touched_shards.end()) {
      touched_shards.push_back(s);
    }
  }

  // Resolve duplicate retries to (group, index) durability targets. A
  // group that no longer exists was trimmed, and only fully durable
  // groups trim — nothing to wait for.
  std::vector<std::pair<VirtualLog*, ChunkRef>> dup_refs;
  for (const DuplicateWait& d : dup_waits) {
    Streamlet* sl = entry->storage->GetStreamlet(d.streamlet);
    Group* group = sl == nullptr ? nullptr : sl->GetGroup(d.group);
    if (group == nullptr) continue;
    ChunkRef ref;
    ref.group = group;
    ref.loc.group = d.group;
    ref.loc.group_chunk_index = d.group_chunk_index;
    dup_refs.emplace_back(d.vlog, ref);
  }

  // Background replication: wake the worker pool for the touched vlogs
  // and park on the group-commit waiters. Workers fill the replication
  // window; every producer whose chunks ride in a completed batch wakes
  // together, so many produce RPCs share one large replicated I/O.
  if (replicator_ != nullptr) {
    for (auto& [vlog, ref] : positions) {
      (void)ref;
      replicator_->Notify(vlog);
    }
    // Duplicate retries also nudge the workers: the original request may
    // have failed mid-replication, leaving the chunk queued but nobody
    // pushing it.
    for (auto& [vlog, ref] : dup_refs) {
      (void)ref;
      replicator_->Notify(vlog);
    }
    for (auto& [vlog, ref] : positions) {
      Status s = vlog->WaitChunkDurable(ref);
      if (!s.ok()) {
        resp.status = s.code();
        return resp;
      }
    }
    for (auto& [vlog, ref] : dup_refs) {
      Status s = vlog->WaitChunkDurable(ref);
      if (!s.ok()) {
        resp.status = s.code();
        return resp;
      }
    }
    // With R=1 chunks are durable at append time and no replication batch
    // ever ships, so the batch-completion wakeup never fires — notify the
    // parked long-polls of every shard this request touched. (Redundant
    // with the batch wakeup for R>1; waiters re-check their predicate.)
    for (uint32_t s : touched_shards) NotifyConsumeWaiters(*entry, s);
    if (tiered_ != nullptr) {
      for (uint32_t s : touched_shards) tiered_->Pump(s);
    }
    return resp;
  }

  // Once all chunks of the request are appended, synchronize the touched
  // virtual logs on the backups (paper §IV.B). Whichever worker finds a
  // vlog idle ships the next batch; others sleep until woken. Durability
  // is tracked through the chunk's group so it survives virtual segment
  // evacuation after a backup failure. Duplicate retries gate on the
  // original copy's durability the same way.
  for (auto& [vlog, ref] : positions) {
    Status s = DriveUntilDurable(*vlog, ref);
    if (!s.ok()) {
      resp.status = s.code();
      return resp;
    }
  }
  for (auto& [vlog, ref] : dup_refs) {
    Status s = DriveUntilDurable(*vlog, ref);
    if (!s.ok()) {
      resp.status = s.code();
      return resp;
    }
  }

  // Opportunistically drain remaining work on the touched vlogs — in
  // particular empty seal batches for virtual segments that closed after
  // their data was already replicated (backups flush only sealed
  // segments). Failures here don't fail the request: the data is durable.
  {
    std::vector<VirtualLog*> touched;
    for (auto& [vlog, _] : positions) {
      if (std::find(touched.begin(), touched.end(), vlog) == touched.end()) {
        touched.push_back(vlog);
      }
    }
    for (VirtualLog* vlog : touched) {
      while (vlog->HasWork()) {
        auto batch = vlog->Poll();
        if (!batch.has_value()) break;
        if (!ShipBatch(*vlog, *batch).ok()) break;
      }
    }
  }
  for (uint32_t s : touched_shards) NotifyConsumeWaiters(*entry, s);
  // Tiered-memory pump: the request's chunks are durable by now, so this
  // point both discovers freshly sealed segments and can evict at once.
  if (tiered_ != nullptr) {
    for (uint32_t s : touched_shards) tiered_->Pump(s);
  }
  return resp;
}

Status Broker::DriveUntilDurable(VirtualLog& vlog, const ChunkRef& ref) {
  int evacuations = 0;
  auto durable = [&ref] {
    return ref.group->durable_chunk_count() > ref.loc.group_chunk_index;
  };
  while (!durable()) {
    if (auto batch = vlog.Poll()) {
      Status s = ShipBatch(vlog, *batch);
      if (!s.ok()) {
        // kUnavailable after an evacuation is retryable: the refs moved
        // to a fresh segment targeting live backups.
        if (s.code() == StatusCode::kUnavailable && ++evacuations <= 4) {
          continue;
        }
        return s;
      }
    } else {
      (void)vlog.WaitChunkDurableOrIdle(ref);
    }
  }
  return OkStatus();
}

bool Broker::DrainReplication(int max_failed_batches) {
  int failures = 0;
  bool all_drained = true;
  for (VirtualLog* vlog : VirtualLogs()) {
    while (vlog->HasWork()) {
      auto batch = vlog->Poll();
      if (!batch.has_value()) break;  // window full; nothing to drive here
      if (!ShipBatch(*vlog, *batch).ok() && ++failures >= max_failed_batches) {
        return false;
      }
    }
    if (vlog->HasWork()) all_drained = false;
  }
  return all_drained;
}

void Broker::EncodeReplicateBody(const ReplicationBatch& batch,
                                 rpc::Writer& body) const {
  rpc::ReplicateRequest req;
  req.primary = config_.node;
  req.vlog = batch.vlog;
  req.vseg = batch.vseg;
  req.start_offset = batch.start_offset;
  req.chunk_count = uint32_t(batch.refs.size());
  req.checksum_after = batch.checksum_after;
  req.seals = batch.seals_segment;

  // Reference the chunk bytes straight from the physical segments; the
  // encoder records them without copying, and the transport either sends
  // them vectored (SocketNetwork) or splices them into the frame with one
  // copy total (no intermediate gather buffer).
  req.payload_parts.reserve(batch.refs.size());
  for (const ChunkRef& ref : batch.refs) {
    req.payload_parts.push_back(
        ref.loc.segment->Bytes(ref.loc.offset, ref.loc.length));
  }
  req.Encode(body);
}

std::vector<std::byte> Broker::BuildReplicateFrame(
    const ReplicationBatch& batch) const {
  rpc::Writer body(64);
  EncodeReplicateBody(batch, body);
  return rpc::Frame(rpc::Opcode::kReplicate, body);
}

Status Broker::ShipBatch(VirtualLog& vlog, const ReplicationBatch& batch) {
  // The frame stays in parts form: the encoder's inline runs plus spans
  // into segment memory (pinned until Complete/Abort). All futures are
  // consumed before `body` leaves scope, satisfying CallAsyncParts'
  // lifetime contract across every retry round.
  rpc::Writer body(64);
  EncodeReplicateBody(batch, body);
  std::array<std::byte, 2> opcode;
  const rpc::BytesRefParts parts =
      rpc::FrameAsParts(rpc::Opcode::kReplicate, body, opcode);
  Status failure = OkStatus();
  for (int attempt = 0; attempt <= config_.replication_retries; ++attempt) {
    std::vector<std::future<Result<std::vector<std::byte>>>> futures;
    futures.reserve(batch.backups.size());
    for (NodeId backup : batch.backups) {
      futures.push_back(network_.CallAsyncParts(backup, parts));
    }
    bool all_ok = true;
    for (auto& f : futures) {
      auto result = [&]() -> Result<std::vector<std::byte>> {
        try {
          return f.get();
        } catch (const std::future_error&) {
          // The threaded network was shut down with the call in flight
          // (its queue dropped the work and broke the promise).
          return Status(StatusCode::kUnavailable, "network stopped");
        }
      }();
      if (!result.ok()) {
        all_ok = false;
        failure = result.status();
        continue;
      }
      rpc::Reader r(*result);
      auto resp = rpc::ReplicateResponse::Decode(r);
      if (!resp.ok() || resp->status != StatusCode::kOk) {
        all_ok = false;
        failure = resp.ok() ? Status(resp->status, "backup rejected batch")
                            : resp.status();
      }
    }
    stats_.replication_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.replication_rpcs.fetch_add(batch.backups.size(),
                                      std::memory_order_relaxed);
    stats_.replication_bytes.fetch_add(batch.bytes * batch.backups.size(),
                                       std::memory_order_relaxed);
    if (all_ok) {
      vlog.Complete(batch);
      // The durable prefix of every group in the batch just advanced:
      // complete parked long-poll consume requests.
      NotifyConsumeWaitersForBatch(batch);
      // Durability advanced, so sealed segments of these shards may have
      // just become evictable (the DES drives replication through here,
      // making this the pump point that keeps chaos schedules and tiered
      // eviction on one deterministic clock).
      if (tiered_ != nullptr) {
        uint32_t last_shard = UINT32_MAX;
        for (const ChunkRef& ref : batch.refs) {
          uint32_t s = ShardOf(ref.streamlet);
          if (s == last_shard) continue;
          last_shard = s;
          tiered_->Pump(s);
        }
      }
      return OkStatus();
    }
  }
  vlog.Abort(batch);
  if (failure.code() == StatusCode::kUnavailable) {
    // A backup in this segment's set is gone: move the unreplicated refs
    // to a fresh virtual segment with a newly selected (live) backup set.
    vlog.EvacuateSegment(batch.vseg);
  }
  return failure;
}

rpc::ConsumeResponse Broker::GatherConsume(StreamEntry& entry,
                                           const rpc::ConsumeRequest& req,
                                           size_t* payload_bytes,
                                           bool* all_terminal,
                                           bool* rotated) {
  rpc::ConsumeResponse resp;
  *payload_bytes = 0;
  *all_terminal = !req.entries.empty();
  *rotated = false;
  size_t budget = req.max_bytes;
  for (const auto& e : req.entries) {
    rpc::ConsumeEntryResponse out;
    out.streamlet = e.streamlet;
    out.group = e.group;
    out.next_chunk = e.start_chunk;
    out.stream_sealed = entry.sealed.load(std::memory_order_acquire);

    Streamlet* streamlet = entry.storage->GetStreamlet(e.streamlet);
    if (streamlet == nullptr) {
      // Not hosted here (yet): a long-poller is paced by the wait instead
      // of spinning; AddStreamlet wakes it if leadership arrives.
      *all_terminal = false;
      resp.entries.push_back(std::move(out));
      continue;
    }
    out.groups_created = streamlet->next_group_id();
    Group* group = streamlet->GetGroup(e.group);
    if (group == nullptr) {
      // Not created yet: exists only if a later group already does.
      out.group_exists = e.group < streamlet->next_group_id();
      if (!out.stream_sealed || out.group_exists) *all_terminal = false;
      resp.entries.push_back(std::move(out));
      continue;
    }
    out.group_exists = true;
    auto locators = group->GetDurableChunks(e.start_chunk, e.max_chunks,
                                            budget);
    uint64_t served = 0;
    if (tiered_ == nullptr) {
      // Unbounded memory: every segment is resident, spans alias it
      // directly (the original zero-copy gather, byte for byte).
      for (const ChunkLocator& loc : locators) {
        out.chunks.push_back(loc.segment->Bytes(loc.offset, loc.length));
        budget = budget > loc.length ? budget - loc.length : 0;
        *payload_bytes += loc.length;
        ++served;
      }
    } else {
      // Tiered gather: pin each distinct hot segment for the life of the
      // response (so the evictor cannot pull the buffer out from under
      // the in-flight spans); chunks of an evicted segment are served
      // from the cold-read cache, still zero-copy into cache memory.
      struct SegSource {
        bool hot = false;
        bool failed = false;
        std::span<const std::byte> cold;  // whole spilled payload
      };
      std::map<Segment*, SegSource> sources;
      uint64_t cold_chunks = 0;
      for (const ChunkLocator& loc : locators) {
        Segment* seg = loc.segment;
        auto it = sources.find(seg);
        if (it == sources.end()) {
          SegSource src;
          if (seg->TryPinRead()) {
            src.hot = true;
            resp.holds.emplace_back(
                nullptr, [seg](const void*) { seg->UnpinRead(); });
          } else {
            auto cs = tiered_->ReadCold(entry.info.stream, e.streamlet,
                                        e.group, loc.segment_id);
            if (cs.ok()) {
              src.cold = {(*cs)->buf.data(), (*cs)->size};
              resp.holds.push_back(std::shared_ptr<const void>(std::move(*cs)));
            } else {
              // Raced a trim (the spilled copies were evacuated): stop
              // this entry's gather; the consumer re-requests and sees
              // the group's terminal state.
              src.failed = true;
            }
          }
          it = sources.emplace(seg, src).first;
        }
        if (it->second.failed) break;
        std::span<const std::byte> bytes;
        if (it->second.hot) {
          bytes = seg->Bytes(loc.offset, loc.length);
        } else {
          bytes = it->second.cold.subspan(loc.offset, loc.length);
          ++cold_chunks;
        }
        out.chunks.push_back(bytes);
        budget = budget > loc.length ? budget - loc.length : 0;
        *payload_bytes += loc.length;
        ++served;
      }
      if (cold_chunks > 0) tiered_->NoteColdChunksServed(cold_chunks);
    }
    out.next_chunk = e.start_chunk + served;
    // "No more data will ever appear at or beyond next_chunk."
    out.group_closed =
        group->closed() && out.next_chunk >= group->chunk_count();
    if (out.group_closed && served == 0) *rotated = true;
    if (!out.stream_sealed || !out.group_closed) *all_terminal = false;
    stats_.chunks_served.fetch_add(served, std::memory_order_relaxed);
    resp.entries.push_back(std::move(out));
  }
  return resp;
}

rpc::ConsumeResponse Broker::HandleConsume(const rpc::ConsumeRequest& req) {
  stats_.consume_rpcs.fetch_add(1, std::memory_order_relaxed);
  StreamEntry* entry = FindStream(req.stream);
  if (entry == nullptr) {
    rpc::ConsumeResponse resp;
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  const uint64_t wait_us =
      std::min<uint64_t>(req.max_wait_us, config_.max_consume_wait_us);
  const size_t want = std::max<uint32_t>(req.min_bytes, 1);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(wait_us);
  const uint32_t home = HomeShardOf(req);
  EnterShardFrame(home);
  StreamEntry::ShardState& home_ss = entry->shard[home];

  // A request whose entries span shards parks on its home shard but waits
  // for data owned by others. Register as cross-parked BEFORE the first
  // gather (and with seq_cst, so the registration orders against the
  // producer's post-notify check): a producer on another shard that lands
  // after our gather then sees cross_parked > 0 and broadcasts the wake to
  // every shard, including ours. The deadline bounds any residual race.
  bool spans = false;
  if (shards_ > 1) {
    for (const auto& e : req.entries) {
      if (ShardOf(e.streamlet) != home) {
        spans = true;
        break;
      }
    }
  }
  struct CrossParkGuard {
    std::atomic<uint32_t>* counter = nullptr;
    ~CrossParkGuard() {
      if (counter != nullptr) counter->fetch_sub(1);
    }
  } cross_guard;
  if (spans) {
    stats_.cross_shard_ops.fetch_add(1, std::memory_order_relaxed);
    if (wait_us > 0) {
      entry->cross_parked.fetch_add(1);
      cross_guard.counter = &entry->cross_parked;
    }
  }

  bool parked = false;
  for (;;) {
    // Epoch (of the home shard) before gather: an event that lands in
    // between bumps the epoch and the wait below falls through instead of
    // sleeping past it.
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(home_ss.mu);
      epoch = home_ss.consume_epoch;
    }
    size_t payload_bytes = 0;
    bool all_terminal = false;
    bool rotated = false;
    rpc::ConsumeResponse resp =
        GatherConsume(*entry, req, &payload_bytes, &all_terminal, &rotated);
    // Return when there is data (or enough data), when no requested entry
    // can ever produce more, or when a group rolled over — the consumer
    // must rotate its cursors, which takes a new request.
    if (wait_us == 0 || payload_bytes >= want || all_terminal || rotated ||
        consume_waits_stopped_.load(std::memory_order_acquire)) {
      return resp;
    }
    if (!parked) {
      parked = true;
      stats_.consume_long_polls.fetch_add(1, std::memory_order_relaxed);
    }
    std::unique_lock<std::mutex> lock(home_ss.mu);
    while (home_ss.consume_epoch == epoch &&
           !consume_waits_stopped_.load(std::memory_order_acquire)) {
      if (home_ss.consume_cv.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        return resp;  // long-poll expired: hand back the empty gather
      }
    }
  }
}

void Broker::ApplyOffsetChunk(StreamEntry::ShardState& ss,
                              StreamletId streamlet, const ChunkView& chunk) {
  for (auto it = chunk.records(); !it.Done(); it.Next()) {
    std::span<const std::byte> v = it.record().value();
    if (v.size() < kOffsetRecordBytes) continue;
    const std::byte* p = v.data();
    uint32_t consumer = wire::LoadU32(p + 0);
    StreamletId rec_streamlet = wire::LoadU32(p + 12);
    GroupId group = wire::LoadU32(p + 16);
    uint64_t next_chunk = wire::LoadU64(p + 20);
    // A commit chunk only ever carries entries for its own streamlet (the
    // broker builds them that way); anything else would need another
    // shard's lock, so it is dropped rather than applied unsafely.
    if (rec_streamlet != streamlet) continue;
    StreamEntry::OffsetEntry& slot = ss.offsets[{streamlet, consumer}];
    // Monotonic (group, next_chunk) advance: replays and out-of-order
    // recovery re-ingest can only push the cursor forward.
    if (group > slot.group ||
        (group == slot.group && next_chunk > slot.next_chunk)) {
      slot.group = group;
      slot.next_chunk = next_chunk;
    }
  }
}

rpc::CommitOffsetsResponse Broker::HandleCommitOffsets(
    const rpc::CommitOffsetsRequest& req) {
  rpc::CommitOffsetsResponse resp;
  if (req.entries.empty()) return resp;
  StreamEntry* entry = FindStream(req.stream);
  if (entry == nullptr) {
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  // Commits persist as system chunks under the consumer's system producer
  // id, disjoint from data producers by the top bit. One chunk per entry
  // (entries already arrive one per streamlet), sequenced by the client's
  // commit_seq so retries of a lost ack dedup — and, like any duplicate of
  // the latest sequence, wait for the original's durability before acking.
  const ProducerId pid = 0x80000000u | req.consumer;
  std::vector<std::unique_ptr<ChunkBuilder>> builders;
  rpc::ProduceRequest preq;
  preq.stream = req.stream;
  preq.producer = pid;
  for (const auto& e : req.entries) {
    auto b = std::make_unique<ChunkBuilder>(kChunkHeaderSizeWithEpoch + 128);
    b->Start(req.stream, e.streamlet, pid, req.epoch, kChunkFlagOffsetCommit);
    std::byte value[kOffsetRecordBytes];
    EncodeOffsetValue(value, req.consumer, req.commit_seq, e.streamlet,
                      e.group, e.next_chunk);
    if (!b->AppendValue(value)) {
      resp.status = StatusCode::kInternal;
      return resp;
    }
    preq.chunks.push_back(b->Seal(req.commit_seq));
    builders.push_back(std::move(b));
  }
  rpc::ProduceResponse presp = HandleProduce(preq);
  resp.status = presp.status;
  if (presp.status == StatusCode::kOk) {
    resp.committed = presp.appended + presp.duplicates;
    if (entry->sealed.load(std::memory_order_acquire)) {
      // A post-seal commit chunk rolls a fresh group open (the seal had
      // closed the active ones). Re-seal so consumers still drain to a
      // definite end — all_terminal needs every group of a sealed stream
      // closed — and wake parked long-pollers to observe it.
      for (const auto& e : req.entries) {
        Streamlet* sl = entry->storage->GetStreamlet(e.streamlet);
        if (sl != nullptr) sl->SealActiveGroups();
      }
      NotifyConsumeWaitersAllShards(*entry);
    }
  }
  return resp;
}

rpc::FetchOffsetsResponse Broker::HandleFetchOffsets(
    const rpc::FetchOffsetsRequest& req) {
  rpc::FetchOffsetsResponse resp;
  StreamEntry* entry = FindStream(req.stream);
  if (entry == nullptr) {
    resp.status = StatusCode::kNotFound;
    return resp;
  }
  resp.entries.reserve(req.streamlets.size());
  for (StreamletId sl : req.streamlets) {
    rpc::FetchOffsetsResponse::Entry out;
    out.streamlet = sl;
    StreamEntry::ShardState& ss = entry->ShardFor(sl);
    std::lock_guard<std::mutex> lock(ss.mu);
    auto it = ss.offsets.find({sl, req.consumer});
    if (it != ss.offsets.end()) {
      out.found = true;
      out.group = it->second.group;
      out.next_chunk = it->second.next_chunk;
    }
    resp.entries.push_back(out);
  }
  return resp;
}

std::vector<std::byte> Broker::HandleRpc(std::span<const std::byte> request) {
  rpc::Opcode op;
  std::span<const std::byte> body;
  rpc::Writer out;
  Status s = rpc::ParseFrame(request, op, body);
  if (!s.ok()) {
    out.U8(uint8_t(s.code()));
    return std::move(out).Take();
  }
  rpc::Reader r(body);
  switch (op) {
    case rpc::Opcode::kProduce: {
      auto req = rpc::ProduceRequest::Decode(r);
      if (!req.ok()) {
        rpc::ProduceResponse resp;
        resp.status = req.status().code();
        resp.Encode(out);
      } else {
        HandleProduce(*req).Encode(out);
      }
      break;
    }
    case rpc::Opcode::kConsume: {
      auto req = rpc::ConsumeRequest::Decode(r);
      rpc::ConsumeResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        resp = HandleConsume(*req);
      }
      // The Writer holds the chunk spans BY REFERENCE until Take()
      // materializes the frame, so the response — whose `holds` pin the
      // hot segments and cold-cache entries those spans alias — must
      // outlive the splice. Encoding a temporary here would release the
      // pins first and let the evictor recycle the buffers mid-encode.
      resp.Encode(out);
      return std::move(out).Take();
    }
    case rpc::Opcode::kCommitOffsets: {
      auto req = rpc::CommitOffsetsRequest::Decode(r);
      rpc::CommitOffsetsResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        resp = HandleCommitOffsets(*req);
      }
      resp.Encode(out);
      break;
    }
    case rpc::Opcode::kFetchOffsets: {
      auto req = rpc::FetchOffsetsRequest::Decode(r);
      rpc::FetchOffsetsResponse resp;
      if (!req.ok()) {
        resp.status = req.status().code();
      } else {
        resp = HandleFetchOffsets(*req);
      }
      resp.Encode(out);
      break;
    }
    default:
      out.U8(uint8_t(StatusCode::kInvalidArgument));
      break;
  }
  return std::move(out).Take();
}

std::map<std::pair<StreamletId, ProducerId>, uint64_t> Broker::DedupHitsByKey(
    StreamId stream) const {
  std::map<std::pair<StreamletId, ProducerId>, uint64_t> out;
  StreamEntry* entry = FindStream(stream);
  if (entry == nullptr) return out;
  for (uint32_t s = 0; s < entry->nshards; ++s) {
    StreamEntry::ShardState& ss = entry->shard[s];
    std::lock_guard<std::mutex> lock(ss.mu);
    for (const auto& [key, hits] : ss.dedup_hits) out[key] += hits;
  }
  return out;
}

Broker::Stats Broker::GetStats() const {
  Stats out;
  out.produce_rpcs = stats_.produce_rpcs.load(std::memory_order_relaxed);
  out.chunks_appended =
      stats_.chunks_appended.load(std::memory_order_relaxed);
  out.chunks_duplicate =
      stats_.chunks_duplicate.load(std::memory_order_relaxed);
  out.chunks_fenced = stats_.chunks_fenced.load(std::memory_order_relaxed);
  out.offset_commits = stats_.offset_commits.load(std::memory_order_relaxed);
  out.bytes_appended = stats_.bytes_appended.load(std::memory_order_relaxed);
  out.consume_rpcs = stats_.consume_rpcs.load(std::memory_order_relaxed);
  out.chunks_served = stats_.chunks_served.load(std::memory_order_relaxed);
  out.consume_long_polls =
      stats_.consume_long_polls.load(std::memory_order_relaxed);
  out.replication_batches =
      stats_.replication_batches.load(std::memory_order_relaxed);
  out.replication_rpcs =
      stats_.replication_rpcs.load(std::memory_order_relaxed);
  out.replication_bytes =
      stats_.replication_bytes.load(std::memory_order_relaxed);
  out.checksum_failures =
      stats_.checksum_failures.load(std::memory_order_relaxed);
  out.cross_shard_ops = stats_.cross_shard_ops.load(std::memory_order_relaxed);
  out.recovery_produce_rpcs =
      stats_.recovery_produce_rpcs.load(std::memory_order_relaxed);
  out.recovery_chunks_appended =
      stats_.recovery_chunks_appended.load(std::memory_order_relaxed);
  out.recovery_bytes_appended =
      stats_.recovery_bytes_appended.load(std::memory_order_relaxed);
  out.shard_frames.reserve(shards_);
  for (const auto& rt : shard_rt_) {
    out.shard_mailbox_enqueues += rt->mailbox.enqueues();
    out.shard_frames.push_back(rt->frames.load(std::memory_order_relaxed));
  }
  MemoryManager::Stats ms = memory_.GetStats();
  out.memory_buffers_outstanding = ms.buffers_outstanding;
  out.memory_peak_buffers = ms.peak_outstanding;
  out.memory_bytes_resident = ms.bytes_resident;
  if (tiered_ != nullptr) {
    TieredStore::Stats ts = tiered_->GetStats();
    out.segments_spilled = ts.segments_spilled;
    out.segments_evicted = ts.segments_evicted;
    out.spill_bytes = ts.spill_bytes;
    out.cold_reads = ts.cold_reads;
    out.cold_cache_hits = ts.cold_cache_hits;
    out.cold_cache_misses = ts.cold_cache_misses;
    out.readahead_hits = ts.readahead_hits;
  }
  return out;
}

Stream* Broker::GetStream(StreamId id) const {
  StreamEntry* entry = FindStream(id);
  return entry == nullptr ? nullptr : entry->storage.get();
}

std::vector<VirtualLog*> Broker::VirtualLogs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VirtualLog*> out;
  for (const auto& [_, pool] : shared_pools_) {
    for (const auto& v : pool) out.push_back(v.get());
  }
  for (const auto& [_, v] : subpartition_vlogs_) out.push_back(v.get());
  return out;
}

std::string Broker::DebugString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "broker %u: memory %zu/%zu segments\n",
                unsigned(config_.node), memory_.in_use(),
                memory_.max_segments());
  out += line;
  std::vector<std::pair<std::string, StreamEntry*>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [_, entry] : streams_) {
      entries.emplace_back(entry->name, entry.get());
    }
  }
  for (const auto& [name, entry] : entries) {
    bool sealed = entry->sealed.load(std::memory_order_acquire);
    size_t led = 0;
    for (uint32_t s = 0; s < entry->nshards; ++s) {
      std::lock_guard<std::mutex> lock(entry->shard[s].mu);
      led += entry->shard[s].led.size();
    }
    std::snprintf(line, sizeof(line),
                  "  stream '%s' (id %llu)%s: leads %zu streamlet(s)\n",
                  name.c_str(), (unsigned long long)entry->info.stream,
                  sealed ? " [sealed]" : "", led);
    out += line;
    for (StreamletId sl : entry->storage->StreamletIds()) {
      Streamlet* streamlet = entry->storage->GetStreamlet(sl);
      std::snprintf(line, sizeof(line),
                    "    streamlet %u: %u group(s), %llu chunk(s), "
                    "%zu B in use\n",
                    unsigned(sl), unsigned(streamlet->next_group_id()),
                    (unsigned long long)streamlet->total_chunks(),
                    streamlet->bytes_in_use());
      out += line;
    }
  }
  for (VirtualLog* vlog : VirtualLogs()) {
    auto s = vlog->GetStats();
    if (s.chunks_appended == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  vlog %u (R%u): %llu chunk(s) in %llu batch(es), "
                  "%llu virtual segment(s)\n",
                  unsigned(vlog->id()), unsigned(vlog->replication_factor()),
                  (unsigned long long)s.chunks_appended,
                  (unsigned long long)s.batches_issued,
                  (unsigned long long)s.segments_opened);
    out += line;
  }
  return out;
}

size_t Broker::TrimDurable() {
  std::vector<Stream*> streams;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [_, entry] : streams_) {
      streams.push_back(entry->storage.get());
    }
  }
  size_t trimmed = 0;
  for (Stream* stream : streams) {
    const StreamId stream_id = stream->id();
    for (StreamletId id : stream->StreamletIds()) {
      Streamlet* sl = stream->GetStreamlet(id);
      if (tiered_ != nullptr) {
        // The pre-trim hook runs while the group's Segment objects are
        // still alive: the tiered store drops its spill candidates and
        // evacuates the group's on-disk copies.
        trimmed += sl->TrimBefore(sl->next_group_id(), [&](Group* g) {
          tiered_->OnGroupTrim(stream_id, id, g);
        });
      } else {
        trimmed += sl->TrimBefore(sl->next_group_id());
      }
    }
  }
  for (VirtualLog* vlog : VirtualLogs()) {
    vlog->TrimReplicatedSegments();
  }
  // Trim is also a deterministic pump point: seals discovered here keep
  // maintenance-only workloads within budget too.
  if (tiered_ != nullptr) tiered_->PumpAll();
  return trimmed;
}

}  // namespace kera
