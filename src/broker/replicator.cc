#include "broker/replicator.h"

#include "broker/broker.h"
#include "vlog/virtual_log.h"

namespace kera {

Replicator::Replicator(Broker& broker, uint32_t workers) : broker_(broker) {
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Replicator::~Replicator() { Stop(); }

void Replicator::Notify(VirtualLog* vlog) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || !queued_.insert(vlog).second) return;
    queue_.push_back(vlog);
  }
  cv_.notify_one();
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

Replicator::Stats Replicator::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Replicator::WorkerLoop() {
  while (true) {
    VirtualLog* vlog = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      vlog = queue_.front();
      queue_.pop_front();
      queued_.erase(vlog);
      ++stats_.wakeups;
    }
    auto batch = vlog->Poll();
    if (!batch.has_value()) continue;
    // More unissued work (or free window slots) on this vlog: requeue it
    // before shipping so a peer worker pipelines the next batch while
    // this one's round-trip is in flight.
    if (vlog->HasWork()) Notify(vlog);
    Status s = broker_.ShipBatch(*vlog, *batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (s.ok()) {
        ++stats_.batches_shipped;
      } else {
        ++stats_.batch_failures;
      }
    }
    if (s.ok()) {
      if (vlog->HasWork()) Notify(vlog);
    } else if (vlog->NoteReplicationFailure(s)) {
      // Retry budget left: the failed range was requeued (and possibly
      // evacuated onto live backups); try again.
      Notify(vlog);
    }
    // Budget exhausted: the vlog latched the error and woke its waiters;
    // the next append re-notifies, giving fresh appends a fresh budget.
  }
}

}  // namespace kera
