#include "broker/replicator.h"

#include "broker/broker.h"
#include "vlog/virtual_log.h"

namespace kera {

Replicator::Replicator(Broker& broker, uint32_t workers, bool shard_affine)
    : broker_(broker), shard_affine_(shard_affine && workers > 1) {
  const uint32_t nlanes = shard_affine_ ? workers : 1;
  lanes_.reserve(nlanes);
  for (uint32_t i = 0; i < nlanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  const uint32_t per_lane = shard_affine_ ? 1 : workers;
  for (auto& lane : lanes_) {
    for (uint32_t i = 0; i < per_lane; ++i) {
      lane->workers.emplace_back([this, l = lane.get()] { WorkerLoop(*l); });
    }
  }
}

Replicator::~Replicator() { Stop(); }

Replicator::Lane& Replicator::LaneFor(VirtualLog* vlog) {
  if (lanes_.size() == 1) return *lanes_[0];
  return *lanes_[vlog->owner_shard() % lanes_.size()];
}

void Replicator::Notify(VirtualLog* vlog) {
  Lane& lane = LaneFor(vlog);
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    if (stop_.load(std::memory_order_acquire) ||
        !lane.queued.insert(vlog).second) {
      return;
    }
    lane.queue.push_back(vlog);
  }
  lane.cv.notify_one();
}

void Replicator::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& lane : lanes_) lane->cv.notify_all();
  for (auto& lane : lanes_) {
    for (auto& w : lane->workers) {
      if (w.joinable()) w.join();
    }
  }
}

Replicator::Stats Replicator::GetStats() const {
  Stats out;
  out.batches_shipped = batches_shipped_.load(std::memory_order_relaxed);
  out.batch_failures = batch_failures_.load(std::memory_order_relaxed);
  out.wakeups = wakeups_.load(std::memory_order_relaxed);
  return out;
}

void Replicator::WorkerLoop(Lane& lane) {
  while (true) {
    VirtualLog* vlog = nullptr;
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      lane.cv.wait(lock, [this, &lane] {
        return stop_.load(std::memory_order_acquire) || !lane.queue.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      vlog = lane.queue.front();
      lane.queue.pop_front();
      lane.queued.erase(vlog);
      wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
    auto batch = vlog->Poll();
    if (!batch.has_value()) continue;
    // More unissued work (or free window slots) on this vlog: requeue it
    // before shipping so a peer worker pipelines the next batch while
    // this one's round-trip is in flight. (In the shard-affine topology
    // the lane has one worker, so the requeue just keeps the lane hot —
    // window overlap within one log comes from the shard's own cadence.)
    if (vlog->HasWork()) Notify(vlog);
    Status s = broker_.ShipBatch(*vlog, *batch);
    if (s.ok()) {
      batches_shipped_.fetch_add(1, std::memory_order_relaxed);
      if (vlog->HasWork()) Notify(vlog);
    } else {
      batch_failures_.fetch_add(1, std::memory_order_relaxed);
      if (vlog->NoteReplicationFailure(s)) {
        // Retry budget left: the failed range was requeued (and possibly
        // evacuated onto live backups); try again.
        Notify(vlog);
      }
      // Budget exhausted: the vlog latched the error and woke its waiters;
      // the next append re-notifies, giving fresh appends a fresh budget.
    }
  }
}

}  // namespace kera
