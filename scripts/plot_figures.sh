#!/usr/bin/env bash
# Extracts per-figure series from a bench run into TSV files (and plots
# them if gnuplot is available).
#
#   ./scripts/plot_figures.sh bench_output.txt out_dir/
#
# Each figure bench row looks like
#   BM_Fig08/sys:0/streams:128/R:3/iterations:1 ... ingest_Mrec_s=5.46 ...
# and becomes one TSV line: the arg values followed by the counters.
set -euo pipefail

input=${1:-bench_output.txt}
outdir=${2:-figures}
mkdir -p "$outdir"

awk '
/^BM_/ {
  # name: BM_FigXX/arg:val/arg:val/iterations:1
  n = split($1, parts, "/")
  bench = parts[1]
  sub(/^BM_/, "", bench)
  args = ""
  for (i = 2; i <= n; i++) {
    split(parts[i], kv, ":")
    if (kv[1] == "iterations") continue
    args = args kv[2] "\t"
  }
  ingest = consume = rpcs = p50 = ""
  for (i = 2; i <= NF; i++) {
    if ($i ~ /^ingest_Mrec_s=/)  { sub(/.*=/, "", $i); ingest = $i }
    if ($i ~ /^consume_Mrec_s=/) { sub(/.*=/, "", $i); consume = $i }
    if ($i ~ /^repl_rpcs=/)      { sub(/.*=/, "", $i); rpcs = $i }
    if ($i ~ /^p50_us=/)         { sub(/.*=/, "", $i); p50 = $i }
  }
  file = outdir "/" bench ".tsv"
  print args ingest "\t" consume "\t" rpcs "\t" p50 >> file
}
' outdir="$outdir" "$input"

echo "wrote TSVs to $outdir/ (columns: args..., ingest_Mrec_s,"
echo "consume_Mrec_s, repl_rpcs, p50_us) — plot with gnuplot/matplotlib,"
echo "e.g.: gnuplot -e \"plot '$outdir/Fig12.tsv' using 1:3 with lines\""
