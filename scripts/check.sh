#!/usr/bin/env bash
# Full local check: regular build + all tests, a ThreadSanitizer build
# running the concurrency-sensitive suites (virtual log windowed
# replication, background replicator), an ASan+UBSan build running the
# wire/rpc suites (the scatter-gather encode path references external
# buffers; sanitizers catch lifetime mistakes), and the core
# micro-benchmark emitting machine-readable JSON.
#
#   ./scripts/check.sh [build_dir] [tsan_build_dir] [asan_build_dir]
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
tsan_build=${2:-"$repo/build-tsan"}
asan_build=${3:-"$repo/build-asan"}

echo "== regular build + full test suite =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

echo "== ThreadSanitizer build (vlog + broker + client + consume suites) =="
cmake -B "$tsan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$tsan_build" -j --target \
  vlog_test vlog_property_test broker_test client_test client_edge_test \
  consume_protocol_test transport_test exactly_once_test
for t in vlog_test vlog_property_test broker_test client_test \
         client_edge_test consume_protocol_test transport_test \
         exactly_once_test; do
  echo "-- TSan: $t"
  "$tsan_build/tests/$t"
done

echo "== TSan: broker + transport suites with 2 broker shards =="
# KERA_BROKER_SHARDS=2 makes every MiniCluster in these suites build
# sharded brokers (per-shard reactors, mailboxes, parking), so TSan sees
# the cross-shard paths under real thread interleavings.
for t in broker_test transport_test; do
  echo "-- TSan (KERA_BROKER_SHARDS=2): $t"
  KERA_BROKER_SHARDS=2 "$tsan_build/tests/$t"
done

echo "== ASan+UBSan build (wire + rpc + crc + consume + backup suites) =="
cmake -B "$asan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$asan_build" -j --target \
  wire_test wire_golden_test rpc_test common_test transport_test \
  consume_protocol_test client_edge_test backup_test backup_store_test
for t in wire_test wire_golden_test rpc_test common_test transport_test \
         consume_protocol_test client_edge_test backup_test \
         backup_store_test; do
  echo "-- ASan+UBSan: $t"
  "$asan_build/tests/$t"
done

echo "== chaos: bounded schedule sweeps under both sanitizers =="
# The full 200-schedule sweep runs in the regular suite above (ctest label
# "chaos"); under the sanitizers a bounded band keeps the stage fast while
# still driving crashes, partitions and recovery through the instrumented
# build. KERA_CHAOS_SCHEDULES/KERA_CHAOS_EVENTS bound the gtest sweep.
cmake --build "$tsan_build" -j --target chaos_test
echo "-- TSan: chaos_test (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$tsan_build/tests/chaos_test"
echo "-- TSan: chaos_test sharded sweep (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$tsan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.ShardedBrokersHoldInvariants'
echo "-- TSan: chaos_test power-loss sweep (bounded)"
# The power-loss schedules drive the segment log's group-commit flusher,
# torn-tail truncation and restart scan under real thread interleavings.
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$tsan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.PowerLossSchedulesHoldInvariants'
cmake --build "$asan_build" -j --target chaos_test
echo "-- ASan+UBSan: chaos_test (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$asan_build/tests/chaos_test"

echo "== exactly-once: tightened chaos band under both sanitizers =="
# Exactly-once mode commits consumer cursors as system chunks on every
# consume event and tightens the redelivery invariant to ZERO; the band
# runs the same crash/partition/power-loss schedules with that oracle
# under both instrumented builds. The TSan property suite above already
# covers the client Commit()/resume threading.
echo "-- TSan: chaos_test exactly-once sweep (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$tsan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.ExactlyOnceSchedulesHoldInvariants:ChaosSweep.ExactlyOnceOffIsInert'
echo "-- ASan+UBSan: chaos_test exactly-once sweep (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$asan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.ExactlyOnceSchedulesHoldInvariants:ChaosDeterminism.ExactlyOnceSameSeedTwiceIsByteIdentical'
echo "-- ASan+UBSan: exactly_once_test"
cmake --build "$asan_build" -j --target exactly_once_test
"$asan_build/tests/exactly_once_test"

echo "== recovery: parallel crash-recovery suites under TSan =="
# The recovery engine spawns real lane/read threads on the threaded and
# socket transports; the recovery + migration suites drive scatter
# placement, batched backup reads and lane replay under TSan.
cmake --build "$tsan_build" -j --target \
  recovery_property_test coordinator_test migration_test
for t in recovery_property_test coordinator_test migration_test; do
  echo "-- TSan: $t"
  "$tsan_build/tests/$t"
done

echo "== recovery: parallel-recovery chaos sweep under ASan+UBSan =="
# Bounded band of crash schedules with the recovery fan-out at 8: the
# scatter/batched-read/lane machinery runs on every crash while ASan
# watches the payload span lifetimes (spans into the batch response).
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$asan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.ParallelRecoverySchedulesHoldInvariants:ChaosSweep.TraceIdenticalAcrossRecoveryParallelism'

echo "== tiered memory: cold-read suite under both sanitizers =="
# The cold-read suite drives eviction against in-flight zero-copy
# consumes (segment pins, cold-cache holds, spill-log reload): ASan turns
# any buffer-lifetime slip into a hard fault, and TSan watches the
# evictor/reader pin handshake plus the async readahead worker. A bounded
# tiered chaos band runs under both as well (--memory_budget=1024 in
# chaos_soak replays any failure).
cmake --build "$tsan_build" -j --target coldread_test
echo "-- TSan: coldread_test"
"$tsan_build/tests/coldread_test"
cmake --build "$asan_build" -j --target coldread_test
echo "-- ASan+UBSan: coldread_test"
"$asan_build/tests/coldread_test"
echo "-- TSan: chaos_test tiered sweep (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$tsan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.TieredMemorySchedulesHoldInvariants'
echo "-- ASan+UBSan: chaos_test tiered sweep (bounded)"
KERA_CHAOS_SCHEDULES=40 KERA_CHAOS_EVENTS=40 "$asan_build/tests/chaos_test" \
  --gtest_filter='ChaosSweep.TieredMemorySchedulesHoldInvariants:ChaosDeterminism.TieredTraceIdenticalToUnbounded'

echo "== recovery MTTR benchmark (JSON to BENCH_recovery.json) =="
# Modeled MTTR vs data volume / broker count / fan-out on the
# deterministic path, the 512-segment paper-scale sweep, and a socket
# wall-clock run (honest numbers; batched-read RPC reduction is the
# deterministic claim there).
cmake --build "$build" -j --target bench_recovery_mttr
"$build/bench/bench_recovery_mttr" \
  --benchmark_out="$repo/BENCH_recovery.json" \
  --benchmark_out_format=json

echo "== chaos soak (JSON to BENCH_chaos.json) =="
cmake --build "$build" -j --target chaos_soak
"$build/tools/chaos_soak" --schedules=400 --events=60 \
  --out="$repo/BENCH_chaos.json"

echo "== exactly-once chaos soak (JSON to BENCH_chaos_eo.json) =="
# Same seed band with end-to-end exactly-once on: the JSON adds the
# dedup-hit / fence / offset-commit counters and the redelivery total
# (which the tightened invariant holds at zero).
"$build/tools/chaos_soak" --schedules=400 --events=60 --exactly_once \
  --out="$repo/BENCH_chaos_eo.json"

echo "== micro-benchmark (JSON to BENCH_micro_core.json) =="
cmake --build "$build" -j --target bench_micro_core
"$build/bench/bench_micro_core" \
  --benchmark_out="$repo/BENCH_micro_core.json" \
  --benchmark_out_format=json

echo "== transport benchmark (JSON to BENCH_transport.json) =="
cmake --build "$build" -j --target bench_transport
"$build/bench/bench_transport" \
  --benchmark_out="$repo/BENCH_transport.json" \
  --benchmark_out_format=json

echo "== consume benchmark (JSON to BENCH_consume.json) =="
cmake --build "$build" -j --target bench_consume
"$build/bench/bench_consume" \
  --benchmark_out="$repo/BENCH_consume.json" \
  --benchmark_out_format=json

echo "== backup store benchmark (JSON to BENCH_backup.json) =="
# Group-commit flush vs one-file-per-segment baseline (fsyncs_per_mb is
# the headline counter) and cold-restart scan time vs segment count.
cmake --build "$build" -j --target bench_backup_store
"$build/bench/bench_backup_store" \
  --benchmark_out="$repo/BENCH_backup.json" \
  --benchmark_out_format=json

echo "== tiered memory benchmark (JSON to BENCH_coldread.json) =="
# Catch-up throughput + resident-vs-ingested ledger at a ~25% budget, and
# hot-tail produce percentiles with/without a concurrent cold scanner
# (scan resistance: the scanner runs out of the cold cache's own pool).
cmake --build "$build" -j --target bench_coldread
"$build/bench/bench_coldread" \
  --benchmark_out="$repo/BENCH_coldread.json" \
  --benchmark_out_format=json

echo "== multicore scaling benchmark (JSON to BENCH_multicore.json) =="
# Sweeps broker shard count 1..nproc over the socket transport; the JSON
# context records nproc and the CPU model, so single-CPU runs are
# self-documenting (no scaling is expected there, only routing counters).
cmake --build "$build" -j --target bench_multicore
"$build/bench/bench_multicore" \
  --benchmark_out="$repo/BENCH_multicore.json" \
  --benchmark_out_format=json

echo "check.sh: all green"
