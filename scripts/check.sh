#!/usr/bin/env bash
# Full local check: regular build + all tests, a ThreadSanitizer build
# running the concurrency-sensitive suites (virtual log windowed
# replication, background replicator), and the core micro-benchmark
# emitting machine-readable JSON.
#
#   ./scripts/check.sh [build_dir] [tsan_build_dir]
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
tsan_build=${2:-"$repo/build-tsan"}

echo "== regular build + full test suite =="
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

echo "== ThreadSanitizer build (vlog + broker suites) =="
cmake -B "$tsan_build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$tsan_build" -j --target \
  vlog_test vlog_property_test broker_test
for t in vlog_test vlog_property_test broker_test; do
  echo "-- TSan: $t"
  "$tsan_build/tests/$t"
done

echo "== micro-benchmark (JSON to BENCH_micro_core.json) =="
cmake --build "$build" -j --target bench_micro_core
"$build/bench/bench_micro_core" \
  --benchmark_out="$repo/BENCH_micro_core.json" \
  --benchmark_out_format=json

echo "check.sh: all green"
