// Unit tests for the backup service: replication application, idempotent
// retries, checksum verification, async flush, recovery reads.
#include <gtest/gtest.h>

#include <filesystem>
#include <string_view>

#include "backup/backup.h"
#include "common/crc32c.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(ChunkSeq seq,
                                 std::string_view value = "backup-data") {
  ChunkBuilder b(1024);
  b.Start(/*stream=*/1, /*streamlet=*/0, /*producer=*/1);
  EXPECT_TRUE(b.AppendValue(AsBytes(value)));
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

uint32_t ChecksumOf(std::span<const std::byte> concatenated, uint32_t seed) {
  uint32_t crc = seed;
  std::span<const std::byte> rest = concatenated;
  while (!rest.empty()) {
    auto view = ChunkView::Parse(rest);
    uint32_t c = view->payload_checksum();
    crc = Crc32c(&c, 4, crc);
    rest = rest.subspan(view->total_size());
  }
  return crc;
}

rpc::ReplicateRequest MakeReplicate(std::span<const std::byte> payload,
                                    uint32_t chunk_count,
                                    uint64_t start_offset, uint32_t crc_after,
                                    bool seals = false) {
  rpc::ReplicateRequest req;
  req.primary = 1;
  req.vlog = 0;
  req.vseg = 0;
  req.start_offset = start_offset;
  req.chunk_count = chunk_count;
  req.checksum_after = crc_after;
  req.seals = seals;
  req.payload = payload;
  return req;
}

class BackupTest : public ::testing::Test {
 protected:
  Backup backup_{BackupConfig{.node = 2, .storage_dir = ""}};
};

TEST_F(BackupTest, AppliesBatchesInOrder) {
  auto c1 = MakeChunk(1);
  auto c2 = MakeChunk(2);
  uint32_t crc1 = ChecksumOf(c1, 0);

  auto resp = backup_.HandleReplicate(MakeReplicate(c1, 1, 0, crc1));
  EXPECT_EQ(resp.status, StatusCode::kOk);

  uint32_t crc2 = ChecksumOf(c2, crc1);
  resp = backup_.HandleReplicate(MakeReplicate(c2, 1, c1.size(), crc2));
  EXPECT_EQ(resp.status, StatusCode::kOk);

  auto stats = backup_.GetStats();
  EXPECT_EQ(stats.replicate_rpcs, 2u);
  EXPECT_EQ(stats.chunks_received, 2u);
  EXPECT_EQ(stats.bytes_received, c1.size() + c2.size());
}

TEST_F(BackupTest, DuplicateBatchIsIdempotent) {
  auto c1 = MakeChunk(1);
  uint32_t crc1 = ChecksumOf(c1, 0);
  auto req = MakeReplicate(c1, 1, 0, crc1);
  EXPECT_EQ(backup_.HandleReplicate(req).status, StatusCode::kOk);
  // Broker retry of the same batch: acked, not re-applied.
  EXPECT_EQ(backup_.HandleReplicate(req).status, StatusCode::kOk);
  EXPECT_EQ(backup_.GetStats().chunks_received, 1u);
}

TEST_F(BackupTest, OutOfOrderBatchBufferedUntilGapFills) {
  // The primary pipelines several batches per vlog; the network may
  // deliver them reordered. A batch past the contiguous prefix is
  // buffered and acked, then applied once the gap fills.
  auto c1 = MakeChunk(1);
  auto c2 = MakeChunk(2);
  uint32_t crc1 = ChecksumOf(c1, 0);
  uint32_t crc2 = ChecksumOf(c2, crc1);

  auto resp = backup_.HandleReplicate(MakeReplicate(c2, 1, c1.size(), crc2));
  EXPECT_EQ(resp.status, StatusCode::kOk);
  // Buffered, not yet part of the applied prefix.
  EXPECT_EQ(backup_.GetStats().chunks_received, 1u);

  resp = backup_.HandleReplicate(MakeReplicate(c1, 1, 0, crc1));
  EXPECT_EQ(resp.status, StatusCode::kOk);
  // The gap filled: both chunks applied, in order, checksum chain intact.
  auto list = backup_.HandleList({.crashed = 1});
  ASSERT_EQ(list.segments.size(), 1u);
  EXPECT_EQ(list.segments[0].chunk_count, 2u);
  EXPECT_EQ(backup_.GetStats().checksum_failures, 0u);
}

TEST_F(BackupTest, StaleRequeuedBatchDroppedFromBuffer) {
  // An aborted-and-requeued window suffix may resend the same range with
  // new boundaries; a buffered stale copy the applied data already covers
  // is dropped, not re-applied.
  auto c1 = MakeChunk(1);
  auto c2 = MakeChunk(2);
  uint32_t crc1 = ChecksumOf(c1, 0);
  uint32_t crc2 = ChecksumOf(c2, crc1);

  // Stale out-of-order copy of c2 arrives first and is buffered.
  EXPECT_EQ(
      backup_.HandleReplicate(MakeReplicate(c2, 1, c1.size(), crc2)).status,
      StatusCode::kOk);
  // Requeued batch covering [c1, c2) in one piece arrives and applies.
  std::vector<std::byte> both(c1.begin(), c1.end());
  both.insert(both.end(), c2.begin(), c2.end());
  EXPECT_EQ(backup_.HandleReplicate(MakeReplicate(both, 2, 0, crc2)).status,
            StatusCode::kOk);
  // The buffered copy is now stale; a further append still lines up.
  auto c3 = MakeChunk(3);
  uint32_t crc3 = ChecksumOf(c3, crc2);
  EXPECT_EQ(backup_
                .HandleReplicate(
                    MakeReplicate(c3, 1, c1.size() + c2.size(), crc3))
                .status,
            StatusCode::kOk);
  auto list = backup_.HandleList({.crashed = 1});
  ASSERT_EQ(list.segments.size(), 1u);
  EXPECT_EQ(list.segments[0].chunk_count, 3u);
  EXPECT_EQ(backup_.GetStats().checksum_failures, 0u);
}

TEST_F(BackupTest, CorruptChunkRejectedAtomically) {
  auto c1 = MakeChunk(1);
  auto good_crc = ChecksumOf(c1, 0);
  auto corrupted = c1;
  corrupted[kChunkHeaderSize + 2] ^= std::byte{0x01};
  auto resp = backup_.HandleReplicate(MakeReplicate(corrupted, 1, 0,
                                                    good_crc));
  EXPECT_EQ(resp.status, StatusCode::kCorruption);
  EXPECT_EQ(backup_.GetStats().chunks_received, 0u);
  EXPECT_EQ(backup_.GetStats().checksum_failures, 1u);
  // The segment state is untouched: the original batch still applies.
  EXPECT_EQ(backup_.HandleReplicate(MakeReplicate(c1, 1, 0, good_crc)).status,
            StatusCode::kOk);
}

TEST_F(BackupTest, VirtualSegmentChecksumMismatchRejected) {
  auto c1 = MakeChunk(1);
  auto resp = backup_.HandleReplicate(MakeReplicate(c1, 1, 0, 0xBAD));
  EXPECT_EQ(resp.status, StatusCode::kCorruption);
}

TEST_F(BackupTest, WrongChunkCountRejected) {
  auto c1 = MakeChunk(1);
  uint32_t crc1 = ChecksumOf(c1, 0);
  auto resp = backup_.HandleReplicate(MakeReplicate(c1, 3, 0, crc1));
  EXPECT_EQ(resp.status, StatusCode::kCorruption);
}

TEST_F(BackupTest, ListAndReadRecoverySegments) {
  auto c1 = MakeChunk(1);
  uint32_t crc1 = ChecksumOf(c1, 0);
  ASSERT_EQ(backup_.HandleReplicate(MakeReplicate(c1, 1, 0, crc1,
                                                  /*seals=*/true)).status,
            StatusCode::kOk);

  rpc::ListRecoverySegmentsRequest list_req;
  list_req.crashed = 1;
  auto list = backup_.HandleList(list_req);
  ASSERT_EQ(list.segments.size(), 1u);
  EXPECT_EQ(list.segments[0].chunk_count, 1u);
  EXPECT_TRUE(list.segments[0].sealed);

  // Unknown primary: nothing.
  list_req.crashed = 42;
  EXPECT_TRUE(backup_.HandleList(list_req).segments.empty());

  rpc::ReadRecoverySegmentRequest read_req;
  read_req.crashed = 1;
  read_req.vlog = 0;
  read_req.vseg = 0;
  std::vector<std::byte> storage;
  auto read = backup_.HandleRead(read_req, storage);
  EXPECT_EQ(read.status, StatusCode::kOk);
  EXPECT_EQ(read.payload.size(), c1.size());
  auto view = ChunkView::Parse(read.payload);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->VerifyChecksum());
}

TEST_F(BackupTest, ReadUnknownSegmentNotFound) {
  rpc::ReadRecoverySegmentRequest req;
  req.crashed = 9;
  std::vector<std::byte> storage;
  EXPECT_EQ(backup_.HandleRead(req, storage).status, StatusCode::kNotFound);
}

TEST(BackupFlushTest, FlushEvictReload) {
  std::string dir = ::testing::TempDir() + "/kera_backup_flush";
  std::filesystem::remove_all(dir);
  Backup backup(BackupConfig{.node = 3, .storage_dir = dir});

  auto c1 = MakeChunk(1, "must survive eviction");
  uint32_t crc1 = ChecksumOf(c1, 0);
  ASSERT_EQ(backup.HandleReplicate(MakeReplicate(c1, 1, 0, crc1,
                                                 /*seals=*/true)).status,
            StatusCode::kOk);
  backup.WaitForFlushes();
  EXPECT_EQ(backup.GetStats().segments_flushed, 1u);
  EXPECT_EQ(backup.EvictFlushed(), 1u);

  // Recovery read reloads the bytes from the flushed file.
  rpc::ReadRecoverySegmentRequest req;
  req.crashed = 1;
  req.vlog = 0;
  req.vseg = 0;
  std::vector<std::byte> storage;
  auto read = backup.HandleRead(req, storage);
  ASSERT_EQ(read.status, StatusCode::kOk);
  ASSERT_EQ(read.payload.size(), c1.size());
  auto view = ChunkView::Parse(read.payload);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->VerifyChecksum());
  std::filesystem::remove_all(dir);
}

TEST(BackupFlushTest, TruncatedOrMissingFileIsReportedNotFatal) {
  // A flushed-then-evicted segment whose file was damaged behind the
  // backup's back must fail the read with a clean status — the old code
  // resized the buffer to size_t(ftell(-1)) and aborted the process.
  std::string dir = ::testing::TempDir() + "/kera_backup_damage";
  std::filesystem::remove_all(dir);
  Backup backup(BackupConfig{.node = 4, .storage_dir = dir});

  auto c1 = MakeChunk(1, "bytes that will be truncated away");
  uint32_t crc1 = ChecksumOf(c1, 0);
  ASSERT_EQ(backup.HandleReplicate(MakeReplicate(c1, 1, 0, crc1,
                                                 /*seals=*/true)).status,
            StatusCode::kOk);
  backup.WaitForFlushes();
  ASSERT_EQ(backup.EvictFlushed(), 1u);

  std::string path;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    path = e.path().string();
  }
  ASSERT_FALSE(path.empty());

  // Truncate the flushed file: the size check catches the mismatch.
  std::filesystem::resize_file(path, c1.size() / 2);
  rpc::ReadRecoverySegmentRequest req;
  req.crashed = 1;
  req.vlog = 0;
  req.vseg = 0;
  std::vector<std::byte> storage;
  EXPECT_EQ(backup.HandleRead(req, storage).status, StatusCode::kCorruption);

  // Delete it outright: a clean kNotFound, not a crash.
  std::filesystem::remove(path);
  EXPECT_EQ(backup.HandleRead(req, storage).status, StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(BackupRpcTest, FramedDispatch) {
  Backup backup(BackupConfig{.node = 2, .storage_dir = ""});
  auto c1 = MakeChunk(1);
  uint32_t crc1 = ChecksumOf(c1, 0);
  auto req = MakeReplicate(c1, 1, 0, crc1);
  rpc::Writer body;
  req.Encode(body);
  auto resp_bytes = backup.HandleRpc(rpc::Frame(rpc::Opcode::kReplicate,
                                                body));
  rpc::Reader r(resp_bytes);
  auto resp = rpc::ReplicateResponse::Decode(r);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);
}

}  // namespace
}  // namespace kera
