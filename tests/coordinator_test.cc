// Unit tests for the coordinator: stream creation/placement, metadata
// lookups, and end-to-end crash recovery over the MiniCluster.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, ChunkSeq seq,
                                 std::string_view value) {
  ChunkBuilder b(1024);
  b.Start(stream, streamlet, producer);
  EXPECT_TRUE(b.AppendValue(AsBytes(value)));
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

MiniClusterConfig SmallClusterConfig() {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;  // DirectNetwork: deterministic
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  cfg.broker_memory_bytes = 64 << 20;
  return cfg;
}

TEST(CoordinatorTest, CreateStreamPlacesRoundRobin) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 8;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("s", opts);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->streamlet_brokers.size(), 8u);
  // Round-robin over 4 brokers: each leads exactly 2 streamlets.
  std::map<NodeId, int> counts;
  for (NodeId n : info->streamlet_brokers) ++counts[n];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [_, c] : counts) EXPECT_EQ(c, 2);
  // Brokers know their streamlets.
  for (StreamletId sl = 0; sl < 8; ++sl) {
    Broker& b = cluster.broker(info->streamlet_brokers[sl]);
    ASSERT_NE(b.GetStream(info->stream), nullptr);
    EXPECT_NE(b.GetStream(info->stream)->GetStreamlet(sl), nullptr);
  }
}

TEST(CoordinatorTest, DuplicateStreamRejected) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  ASSERT_TRUE(cluster.coordinator().CreateStream("dup", opts).ok());
  auto again = cluster.coordinator().CreateStream("dup", opts);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(CoordinatorTest, InvalidOptionsRejected) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 0;
  EXPECT_FALSE(cluster.coordinator().CreateStream("bad", opts).ok());
  opts.num_streamlets = 1;
  opts.replication_factor = 9;  // exceeds cluster size
  EXPECT_FALSE(cluster.coordinator().CreateStream("bad", opts).ok());
}

TEST(CoordinatorTest, GetStreamInfoViaRpc) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  ASSERT_TRUE(cluster.coordinator().CreateStream("lookup", opts).ok());

  rpc::GetStreamInfoRequest req;
  req.name = "lookup";
  rpc::Writer body;
  req.Encode(body);
  auto raw = cluster.network().Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kGetStreamInfo, body));
  ASSERT_TRUE(raw.ok());
  rpc::Reader r(*raw);
  auto resp = rpc::GetStreamInfoResponse::Decode(r);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->info.options.num_streamlets, 2u);

  req.name = "missing";
  rpc::Writer body2;
  req.Encode(body2);
  raw = cluster.network().Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kGetStreamInfo, body2));
  ASSERT_TRUE(raw.ok());
  rpc::Reader r2(*raw);
  auto resp2 = rpc::GetStreamInfoResponse::Decode(r2);
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->status, StatusCode::kNotFound);
}

TEST(CoordinatorTest, CreateStreamViaRpc) {
  MiniCluster cluster(SmallClusterConfig());
  rpc::CreateStreamRequest req;
  req.name = "via-rpc";
  req.options.num_streamlets = 4;
  req.options.replication_factor = 3;
  rpc::Writer body;
  req.Encode(body);
  auto raw = cluster.network().Call(
      kCoordinatorNode, rpc::Frame(rpc::Opcode::kCreateStream, body));
  ASSERT_TRUE(raw.ok());
  rpc::Reader r(*raw);
  auto resp = rpc::CreateStreamResponse::Decode(r);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->info.streamlet_brokers.size(), 4u);
}

// --------------------------------------------------------------- recovery

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : cluster_(SmallClusterConfig()) {}

  /// Produces `count` chunks to `streamlet` via the leader's RPC endpoint.
  void ProduceChunks(const rpc::StreamInfo& info, StreamletId streamlet,
                     ProducerId producer, int count) {
    NodeId leader = info.streamlet_brokers[streamlet];
    for (int i = 1; i <= count; ++i) {
      rpc::ProduceRequest req;
      req.producer = producer;
      req.stream = info.stream;
      char value[64];
      std::snprintf(value, sizeof(value), "sl%u-p%u-seq%d", streamlet,
                    producer, i);
      auto chunk = MakeChunk(info.stream, streamlet, producer,
                             ChunkSeq(i), value);
      req.chunks = {chunk};
      rpc::Writer body;
      req.Encode(body);
      auto raw = cluster_.network().Call(
          leader, rpc::Frame(rpc::Opcode::kProduce, body));
      ASSERT_TRUE(raw.ok());
      rpc::Reader r(*raw);
      auto resp = rpc::ProduceResponse::Decode(r);
      ASSERT_TRUE(resp.ok());
      ASSERT_EQ(resp->status, StatusCode::kOk);
    }
  }

  /// Reads every durable record value of a streamlet from its leader.
  std::vector<std::string> ReadAll(const rpc::StreamInfo& info,
                                   StreamletId streamlet) {
    // Refresh leadership (it changes after recovery).
    auto fresh = cluster_.coordinator().GetStreamInfo("r");
    EXPECT_TRUE(fresh.ok());
    NodeId leader = fresh->streamlet_brokers[streamlet];
    std::vector<std::string> values;
    GroupId group = 0;
    uint64_t next_chunk = 0;
    int idle_rounds = 0;
    while (idle_rounds < 3) {
      rpc::ConsumeRequest req;
      req.stream = info.stream;
      req.entries = {{.streamlet = streamlet, .group = group,
                      .start_chunk = next_chunk, .max_chunks = 100}};
      rpc::Writer body;
      req.Encode(body);
      auto raw = cluster_.network().Call(
          leader, rpc::Frame(rpc::Opcode::kConsume, body));
      EXPECT_TRUE(raw.ok());
      rpc::Reader r(*raw);
      auto resp = rpc::ConsumeResponse::Decode(r);
      EXPECT_TRUE(resp.ok());
      const auto& e = resp->entries[0];
      for (const auto& cb : e.chunks) {
        auto view = ChunkView::Parse(cb);
        EXPECT_TRUE(view.ok());
        for (auto it = view->records(); !it.Done(); it.Next()) {
          auto v = it.record().value();
          values.emplace_back(reinterpret_cast<const char*>(v.data()),
                              v.size());
        }
      }
      next_chunk = e.next_chunk;
      if (e.group_closed) {
        ++group;
        next_chunk = 0;
        idle_rounds = 0;
      } else if (e.chunks.empty()) {
        ++idle_rounds;
      }
    }
    return values;
  }

  MiniCluster cluster_;
};

TEST_F(RecoveryTest, ReplaysAllAcknowledgedChunks) {
  rpc::StreamOptions opts;
  opts.num_streamlets = 4;
  opts.replication_factor = 3;
  opts.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
  auto info = cluster_.coordinator().CreateStream("r", opts);
  ASSERT_TRUE(info.ok());

  // Write 20 chunks to each streamlet from two producers.
  for (StreamletId sl = 0; sl < 4; ++sl) {
    ProduceChunks(*info, sl, /*producer=*/1, 10);
    ProduceChunks(*info, sl, /*producer=*/2, 10);
  }

  // Pick a victim broker and remember which streamlets it led.
  NodeId victim = info->streamlet_brokers[0];
  std::vector<StreamletId> lost;
  for (StreamletId sl = 0; sl < 4; ++sl) {
    if (info->streamlet_brokers[sl] == victim) lost.push_back(sl);
  }
  ASSERT_FALSE(lost.empty());

  cluster_.CrashNode(victim);
  auto replayed = cluster_.coordinator().RecoverNode(victim);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_GT(*replayed, 0u);

  // The lost streamlets live on new leaders with every acknowledged chunk.
  auto fresh = cluster_.coordinator().GetStreamInfo("r");
  ASSERT_TRUE(fresh.ok());
  for (StreamletId sl : lost) {
    EXPECT_NE(fresh->streamlet_brokers[sl], victim);
    auto values = ReadAll(*info, sl);
    EXPECT_EQ(values.size(), 20u) << "streamlet " << sl;
    // Per-producer order is preserved.
    int last_p1 = 0, last_p2 = 0;
    for (const auto& v : values) {
      unsigned got_sl, p;
      int seq;
      ASSERT_EQ(std::sscanf(v.c_str(), "sl%u-p%u-seq%d", &got_sl, &p, &seq),
                3);
      EXPECT_EQ(got_sl, sl);
      if (p == 1) {
        EXPECT_EQ(seq, last_p1 + 1);
        last_p1 = seq;
      } else {
        EXPECT_EQ(seq, last_p2 + 1);
        last_p2 = seq;
      }
    }
    EXPECT_EQ(last_p1, 10);
    EXPECT_EQ(last_p2, 10);
  }

  // Streamlets led by survivors are untouched.
  for (StreamletId sl = 0; sl < 4; ++sl) {
    if (info->streamlet_brokers[sl] == victim) continue;
    EXPECT_EQ(ReadAll(*info, sl).size(), 20u);
  }
}

TEST_F(RecoveryTest, RecoveredDataIsReReplicated) {
  rpc::StreamOptions opts;
  opts.num_streamlets = 1;
  opts.replication_factor = 3;
  auto info = cluster_.coordinator().CreateStream("r", opts);
  ASSERT_TRUE(info.ok());
  ProduceChunks(*info, 0, 1, 5);

  NodeId victim = info->streamlet_brokers[0];
  cluster_.CrashNode(victim);
  ASSERT_TRUE(cluster_.coordinator().RecoverNode(victim).ok());

  // The new leader re-replicated the recovered chunks: its vlog stats show
  // replication traffic, and the data is durably consumable.
  auto fresh = cluster_.coordinator().GetStreamInfo("r");
  NodeId new_leader = fresh->streamlet_brokers[0];
  EXPECT_GT(cluster_.broker(new_leader).GetStats().replication_rpcs, 0u);
  EXPECT_EQ(ReadAll(*info, 0).size(), 5u);
}

// Scatter placement: a dead broker's streamlets spread across ALL
// survivors (balancing per-survivor streamlet counts), not onto a single
// round-robin successor. With 6 streamlets lost and 5 survivors, every
// survivor must pick up at least one.
TEST(RecoveryScatterTest, LostStreamletsSpreadAcrossAllSurvivors) {
  MiniClusterConfig cfg;
  cfg.nodes = 6;
  cfg.workers_per_node = 0;
  cfg.segment_size = 64 << 10;
  cfg.virtual_segment_capacity = 64 << 10;
  MiniCluster cluster(cfg);

  // 36 streamlets -> round-robin gives every broker exactly 6.
  rpc::StreamOptions opts;
  opts.num_streamlets = 36;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("sc", opts);
  ASSERT_TRUE(info.ok());

  NodeId victim = 3;
  std::vector<StreamletId> lost;
  for (StreamletId sl = 0; sl < 36; ++sl) {
    if (info->streamlet_brokers[sl] == victim) lost.push_back(sl);
  }
  ASSERT_EQ(lost.size(), 6u);

  cluster.CrashNode(victim);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(victim).ok());

  auto fresh = cluster.coordinator().GetStreamInfo("sc");
  ASSERT_TRUE(fresh.ok());
  std::map<NodeId, int> gained;
  for (StreamletId sl : lost) {
    NodeId now = fresh->streamlet_brokers[sl];
    EXPECT_NE(now, victim);
    ++gained[now];
  }
  // All 5 survivors participate, and the load is balanced: with 6 lost
  // streamlets over 5 survivors nobody picks up more than 2.
  EXPECT_EQ(gained.size(), 5u) << "recovery load not scattered";
  for (const auto& [node, n] : gained) {
    EXPECT_LE(n, 2) << "survivor " << node << " took " << n;
  }
  // Overall leadership stays balanced post-recovery: 36 streamlets over
  // 5 survivors -> 7 or 8 each.
  std::map<NodeId, int> leads;
  for (NodeId n : fresh->streamlet_brokers) ++leads[n];
  for (const auto& [node, n] : leads) {
    EXPECT_GE(n, 7) << "survivor " << node;
    EXPECT_LE(n, 8) << "survivor " << node;
  }
}

// Recovery counters: the engine reports its task fan-out, batched-read
// savings and modeled makespan, and the brokers count recovery-path
// produce traffic separately from client traffic.
TEST(RecoveryScatterTest, RecoveryStatsExposed) {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  cfg.segment_size = 32 << 10;
  cfg.virtual_segment_capacity = 8 << 10;  // several vsegs per vlog
  cfg.vlogs_per_broker = 4;
  cfg.recovery_parallelism = 4;
  cfg.recovery_read_batch = 4;
  MiniCluster cluster(cfg);
  EXPECT_EQ(cluster.recovery_parallelism(), 4u);

  rpc::StreamOptions opts;
  opts.num_streamlets = 8;
  opts.replication_factor = 2;
  auto info = cluster.coordinator().CreateStream("st", opts);
  ASSERT_TRUE(info.ok());
  for (StreamletId sl = 0; sl < 8; ++sl) {
    NodeId leader = info->streamlet_brokers[sl];
    for (int i = 1; i <= 12; ++i) {
      rpc::ProduceRequest req;
      req.producer = 1;
      req.stream = info->stream;
      std::string v(500, char('a' + int(sl)));
      auto chunk = MakeChunk(info->stream, sl, 1, ChunkSeq(i), v);
      req.chunks = {chunk};
      ASSERT_EQ(cluster.broker(leader).HandleProduce(req).status,
                StatusCode::kOk);
    }
  }

  auto before = cluster.coordinator().GetRecoveryStats();
  EXPECT_EQ(before.recoveries, 0u);
  EXPECT_EQ(before.tasks_issued, 0u);

  cluster.CrashNode(1);
  ASSERT_TRUE(cluster.coordinator().RecoverNode(1).ok());

  auto rs = cluster.coordinator().GetRecoveryStats();
  EXPECT_EQ(rs.recoveries, 1u);
  EXPECT_GT(rs.streamlets_scattered, 0u);
  EXPECT_GT(rs.tasks_issued, 1u);
  EXPECT_GT(rs.chunks_replayed, 0u);
  EXPECT_GT(rs.bytes_replayed, 0u);
  // Batched reads: strictly fewer read RPCs than segments read.
  EXPECT_GE(rs.tasks_issued, rs.read_rpcs);
  EXPECT_GT(rs.read_rpcs, 0u);
  EXPECT_EQ(rs.read_rpcs_saved, rs.tasks_issued - rs.read_rpcs);
  EXPECT_GE(rs.peak_fanout, 1u);
  EXPECT_LE(rs.peak_fanout, 4u);
  // Serial/Direct path: the engine models the parallel makespan; the
  // modeled serial time can never beat the modeled parallel time.
  EXPECT_GT(rs.modeled_serial_us, 0u);
  EXPECT_GE(rs.modeled_serial_us, rs.modeled_mttr_us);
  EXPECT_GT(rs.last_mttr_us, 0u);
  EXPECT_EQ(rs.task_replay_us.count(), rs.tasks_issued);

  // Broker-side recovery counters surface in the cluster totals.
  auto totals = cluster.TotalBrokerStats();
  EXPECT_GT(totals.recovery_produce_rpcs, 0u);
  EXPECT_EQ(totals.recovery_chunks_appended, rs.chunks_replayed);
  EXPECT_GT(totals.recovery_bytes_appended, 0u);
}

TEST_F(RecoveryTest, UnknownNodeRejected) {
  auto r = cluster_.coordinator().RecoverNode(77);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kera
