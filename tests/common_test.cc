// Unit tests for src/common: status/result, CRC32C, buffer, queues,
// histogram, RNG.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/buffer.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/sync.h"

namespace kera {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kNoSpace, "segment full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNoSpace);
  EXPECT_EQ(s.ToString(), "NoSpace: segment full");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_NE(StatusCodeName(StatusCode::kCorruption),
            StatusCodeName(StatusCode::kDuplicate));
  EXPECT_EQ(StatusCodeName(StatusCode::kNotLeader), "NotLeader");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status(StatusCode::kNotFound, "nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

// CRC32C known-answer tests (RFC 3720 vectors).
TEST(Crc32cTest, KnownVectors) {
  // 32 bytes of zeros -> 0x8A9136AA
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF -> 0x62A8AB43
  std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  // ascending 0..31 -> 0x46DD794E
  std::vector<std::byte> asc(32);
  for (int i = 0; i < 32; ++i) asc[i] = std::byte(i);
  EXPECT_EQ(Crc32c(asc), 0x46DD794Eu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::vector<std::byte> data(1000);
  SplitMix64 rng(7);
  for (auto& b : data) b = std::byte(rng.Next());
  uint32_t whole = Crc32c(data);
  for (size_t split : {1ul, 7ul, 64ul, 999ul}) {
    uint32_t part = Crc32c(std::span(data).first(split));
    part = Crc32c(std::span(data).subspan(split), part);
    EXPECT_EQ(part, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, EmptyInputWithSeedIsIdentity) {
  EXPECT_EQ(Crc32c(std::span<const std::byte>{}, 12345u), 12345u);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::vector<std::byte> data(256, std::byte{0x5A});
  uint32_t base = Crc32c(data);
  data[100] ^= std::byte{0x01};
  EXPECT_NE(Crc32c(data), base);
}

// RFC 3720 B.4 golden vectors asserted against BOTH the hardware and
// software paths (Crc32cHardware falls back to software when no
// accelerated path exists, in which case the two assertions coincide).
TEST(Crc32cTest, GoldenVectorsOnBothPaths) {
  struct Case {
    std::vector<std::byte> data;
    uint32_t want;
  };
  std::vector<Case> cases;
  cases.push_back({std::vector<std::byte>(32, std::byte{0}), 0x8A9136AAu});
  cases.push_back({std::vector<std::byte>(32, std::byte{0xFF}), 0x62A8AB43u});
  Case asc{std::vector<std::byte>(32), 0x46DD794Eu};
  Case desc{std::vector<std::byte>(32), 0x113FDB5Cu};
  for (int i = 0; i < 32; ++i) {
    asc.data[i] = std::byte(i);
    desc.data[i] = std::byte(31 - i);
  }
  cases.push_back(asc);
  cases.push_back(desc);
  for (const Case& c : cases) {
    EXPECT_EQ(Crc32cSoftware(c.data), c.want);
    EXPECT_EQ(Crc32cHardware(c.data), c.want);
    EXPECT_EQ(Crc32c(c.data), c.want);
  }
}

// The dispatched, software, and hardware paths must agree on arbitrary
// inputs — including lengths that exercise the 3-way folded stream (>3 KiB)
// and misaligned heads/tails — with arbitrary seeds.
TEST(Crc32cTest, HardwareMatchesSoftwareOnRandomInputs) {
  SplitMix64 rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = size_t(rng.Next() % 8000);
    std::vector<std::byte> data(n);
    for (auto& b : data) b = std::byte(rng.Next());
    uint32_t seed = uint32_t(rng.Next());
    uint32_t sw = Crc32cSoftware(data, seed);
    EXPECT_EQ(Crc32cHardware(data, seed), sw) << "n=" << n;
    EXPECT_EQ(Crc32c(data, seed), sw) << "n=" << n;
  }
}

// Combining the CRCs of two halves must equal the flat CRC of the whole,
// for random splits (including empty sides and sizes below the hardware
// shift threshold).
TEST(Crc32cTest, CombineMatchesFlatOverRandomSplits) {
  SplitMix64 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = size_t(rng.Next() % 4096);
    std::vector<std::byte> data(n);
    for (auto& b : data) b = std::byte(rng.Next());
    size_t cut = n == 0 ? 0 : size_t(rng.Next() % (n + 1));
    uint32_t crc_a = Crc32c(std::span(data).first(cut));
    uint32_t crc_b = Crc32c(std::span(data).subspan(cut));
    EXPECT_EQ(Crc32cCombine(crc_a, crc_b, n - cut), Crc32c(data))
        << "n=" << n << " cut=" << cut;
  }
}

// Combine must also chain: stitching k pieces left to right equals the
// flat CRC (this is exactly how chunk seal assembles the payload checksum
// from per-record CRCs).
TEST(Crc32cTest, CombineChainsAcrossManyPieces) {
  SplitMix64 rng(17);
  std::vector<std::byte> data(2048);
  for (auto& b : data) b = std::byte(rng.Next());
  for (size_t pieces : {2ul, 3ul, 7ul, 32ul}) {
    uint32_t crc = 0;
    size_t off = 0;
    for (size_t i = 0; i < pieces; ++i) {
      size_t len = (i + 1 == pieces) ? data.size() - off
                                     : (data.size() / pieces);
      uint32_t piece = Crc32c(std::span(data).subspan(off, len));
      crc = Crc32cCombine(crc, piece, len);
      off += len;
    }
    EXPECT_EQ(crc, Crc32c(data)) << "pieces=" << pieces;
  }
}

TEST(BufferTest, AppendAndView) {
  Buffer buf(64);
  EXPECT_EQ(buf.capacity(), 64u);
  EXPECT_TRUE(buf.empty());
  std::byte data[10];
  std::memset(data, 0xAB, sizeof(data));
  EXPECT_EQ(buf.Append(data), 0u);
  EXPECT_EQ(buf.Append(data), 10u);
  EXPECT_EQ(buf.size(), 20u);
  EXPECT_EQ(buf.remaining(), 44u);
  EXPECT_EQ(buf.view()[15], std::byte{0xAB});
}

TEST(BufferTest, AppendBeyondCapacityFails) {
  Buffer buf(16);
  std::byte data[17];
  EXPECT_EQ(buf.Append(data), SIZE_MAX);
  EXPECT_EQ(buf.size(), 0u);  // unchanged
}

TEST(BufferTest, ReserveAndTruncate) {
  Buffer buf(32);
  EXPECT_EQ(buf.Reserve(8), 0u);
  EXPECT_EQ(buf.Reserve(8), 8u);
  buf.Truncate(8);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.Reserve(100), SIZE_MAX);
}

TEST(BufferTest, MoveTransfersOwnership) {
  Buffer a(32);
  std::byte data[4] = {};
  (void)a.Append(data);
  Buffer b = std::move(a);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(a.capacity(), 0u);  // NOLINT: moved-from inspection intended
}

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, TwoThreadStress) {
  SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kItems = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems;) {
      if (ring.TryPush(i)) ++i;
    }
  });
  uint64_t expected = 0;
  while (expected < kItems) {
    auto v = ring.TryPop();
    if (v) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

TEST(BlockingQueueTest, PushPop) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, ShutdownDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Shutdown();
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
  q.Push(8);  // dropped after shutdown
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, BlockingPopWakesOnPush) {
  BlockingQueue<int> q;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(5);
  });
  EXPECT_EQ(q.Pop().value(), 5);
  t.join();
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<SpinLock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  // Bucketed quantiles have ~25% resolution.
  EXPECT_GE(h.Quantile(0.5), 40u);
  EXPECT_LE(h.Quantile(0.5), 80u);
  EXPECT_GE(h.Quantile(1.0), 95u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(uint64_t(1) << 45);  // beyond kMaxPow: clamps to last bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Quantile(0.5), 0u);
}

TEST(RngTest, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Xoshiro256 rng(3);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(5.0);
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 5.0, 0.15);
}

}  // namespace
}  // namespace kera
