// Tiered broker memory: durable-segment eviction, the cold-read cache and
// sequential readahead for catch-up consumers.
//
// Covered here:
//   - catch-up from offset 0 over the socket transport with a budget far
//     below the ingested volume is bit-perfect against an unbounded
//     (no-eviction) oracle cluster fed the same records;
//   - scan resistance: a full cold scan is served from the cold cache's
//     own pool — the hot tail stays resident, the broker's segment pool
//     is untouched, and tail consumes never take the cold path;
//   - Buffer lifetime under eviction: a consume response holding
//     zero-copy spans pins its segments, eviction skips them (second
//     chance) until the response is destroyed, and the spans stay valid
//     the whole time (ASan would flag any use-after-free here);
//   - a broker crash deletes its spill tree; recovery rebuilds from the
//     backups as if tiering never existed;
//   - counters: spill/evict/cold-read/readahead stats surface through
//     Broker::Stats and MiniCluster::TotalBrokerStats, and the sealed
//     resident footprint respects the budget;
//   - default config (budget 0) builds no TieredStore at all.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "broker/tiered_store.h"
#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// Per-test scratch root for spill logs, removed on teardown.
class SpillDir {
 public:
  explicit SpillDir(const std::string& tag) {
    root_ = "/tmp/kera_coldread_" + tag + "_" + std::to_string(getpid());
    std::filesystem::remove_all(root_);
  }
  ~SpillDir() { std::filesystem::remove_all(root_); }
  [[nodiscard]] std::string NodeTemplate() const { return root_ + "/n%u"; }

 private:
  std::string root_;
};

// A small deterministic single-node-leader cluster: 4 KiB segments, two
// segments per group, synchronous R=2 replication over the Direct
// transport, so after HandleProduce returns the chunk is durable and the
// spill pump has already run.
struct TieredCluster {
  explicit TieredCluster(size_t budget, const std::string& tag,
                         uint32_t readahead = 2)
      : spill(tag) {
    MiniClusterConfig cfg;
    cfg.nodes = 3;
    cfg.workers_per_node = 0;
    cfg.transport = MiniClusterTransport::kDirect;
    cfg.segment_size = 4 << 10;
    cfg.segments_per_group = 2;
    cfg.virtual_segment_capacity = 64 << 10;
    cfg.broker_memory_budget_bytes = budget;
    if (budget > 0) cfg.broker_spill_dir = spill.NodeTemplate();
    cfg.broker_readahead_segments = readahead;
    cluster = std::make_unique<MiniCluster>(cfg);
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.replication_factor = 2;
    auto info = cluster->coordinator().CreateStream("cold", opts);
    EXPECT_TRUE(info.ok());
    this->info = *info;
    leader = this->info.streamlet_brokers[0];
  }

  void Produce(ProducerId p, ChunkSeq seq, const std::string& value) {
    ChunkBuilder b(2048);
    b.Start(info.stream, 0, p);
    ASSERT_TRUE(b.AppendValue(AsBytes(value)));
    auto chunk = b.Seal(seq);
    rpc::ProduceRequest req;
    req.producer = p;
    req.stream = info.stream;
    req.chunks = {chunk};
    ASSERT_EQ(cluster->broker(leader).HandleProduce(req).status,
              StatusCode::kOk);
  }

  // Drains every group front to back, CRC-checking each chunk frame, and
  // returns the record values in (group, chunk) order.
  std::vector<std::string> ScanAll() {
    std::vector<std::string> values;
    Broker& b = cluster->broker(leader);
    rpc::ConsumeRequest probe;
    probe.stream = info.stream;
    probe.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                      .max_chunks = 1}};
    auto presp = b.HandleConsume(probe);
    EXPECT_EQ(presp.status, StatusCode::kOk);
    const uint32_t groups = presp.entries[0].groups_created;
    for (GroupId g = 0; g < groups; ++g) {
      uint64_t cursor = 0;
      for (;;) {
        rpc::ConsumeRequest req;
        req.stream = info.stream;
        req.entries = {{.streamlet = 0, .group = g, .start_chunk = cursor,
                        .max_chunks = 8}};
        auto resp = b.HandleConsume(req);
        EXPECT_EQ(resp.status, StatusCode::kOk);
        const auto& e = resp.entries[0];
        if (e.chunks.empty()) break;
        for (const auto& frame : e.chunks) {
          auto view = ChunkView::Parse(frame);
          EXPECT_TRUE(view.ok());
          if (!view.ok()) return values;
          EXPECT_TRUE(view->VerifyChecksum());
          for (auto it = view->records(); !it.Done(); it.Next()) {
            auto value = it.record().value();
            values.emplace_back(reinterpret_cast<const char*>(value.data()),
                                value.size());
          }
        }
        cursor = e.next_chunk;
        if (e.group_closed && e.chunks.empty()) break;
      }
    }
    return values;
  }

  SpillDir spill;
  std::unique_ptr<MiniCluster> cluster;
  rpc::StreamInfo info;
  NodeId leader = 0;
};

// Roughly 1 KiB per record so four records fill a 4 KiB segment.
std::string RecordValue(int i) {
  return "rec-" + std::to_string(i) + "-" + std::string(1000, char('a' + i % 26));
}

// ------------------------------------------------------------- catch-up

// The tentpole acceptance test: ingest ~4x the memory budget, then read
// the full history from offset 0 through real Producer/Consumer clients
// over TCP. Every record must come back bit-perfect and exactly once —
// identical to an unbounded oracle cluster fed the same inputs — while
// the tiered broker held its sealed footprint under budget and actually
// served part of the scan from the spill tier.
TEST(ColdReadCatchUp, SocketCatchUpFromZeroMatchesUnboundedOracle) {
  constexpr int kRecords = 400;
  SpillDir spill("sock");
  auto build = [&](size_t budget) {
    MiniClusterConfig cfg;
    cfg.nodes = 2;
    cfg.workers_per_node = 2;
    cfg.transport = MiniClusterTransport::kSocket;
    cfg.segment_size = 4 << 10;
    cfg.segments_per_group = 2;
    cfg.virtual_segment_capacity = 64 << 10;
    cfg.broker_memory_budget_bytes = budget;
    if (budget > 0) cfg.broker_spill_dir = spill.NodeTemplate();
    return std::make_unique<MiniCluster>(cfg);
  };

  auto run = [&](MiniCluster& cluster,
                 const std::string& stream) -> std::vector<std::string> {
    rpc::StreamOptions opts;
    opts.num_streamlets = 1;
    opts.replication_factor = 2;
    auto info = cluster.coordinator().CreateStream(stream, opts);
    EXPECT_TRUE(info.ok());

    ProducerConfig pc;
    pc.producer_id = 1;
    pc.stream = stream;
    pc.chunk_size = 2048;
    Producer producer(pc, cluster.network());
    EXPECT_TRUE(producer.Connect().ok());
    for (int i = 0; i < kRecords; ++i) {
      EXPECT_TRUE(producer.Send(AsBytes(RecordValue(i))).ok());
    }
    EXPECT_TRUE(producer.Close().ok());

    // Catch-up: a consumer born after the fact reads from offset 0.
    ConsumerConfig cc;
    cc.stream = stream;
    Consumer consumer(cc, cluster.network());
    EXPECT_TRUE(consumer.Connect().ok());
    std::vector<std::string> got;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (got.size() < kRecords &&
           std::chrono::steady_clock::now() < deadline) {
      auto recs = consumer.Poll(64);
      if (recs.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      for (auto& rec : recs) {
        got.emplace_back(reinterpret_cast<const char*>(rec.value.data()),
                         rec.value.size());
      }
    }
    consumer.Close();
    return got;
  };

  // Budget ~25% of the ~400 KiB ingested.
  constexpr size_t kBudget = 100 << 10;
  auto tiered_cluster = build(kBudget);
  auto oracle_cluster = build(0);
  auto tiered = run(*tiered_cluster, "t");
  auto oracle = run(*oracle_cluster, "t");

  ASSERT_EQ(oracle.size(), size_t(kRecords));
  ASSERT_EQ(tiered.size(), size_t(kRecords));
  // Single streamlet, single producer: order is total; compare directly.
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_EQ(tiered[i], oracle[i]) << "record " << i << " diverged";
  }

  auto stats = tiered_cluster->TotalBrokerStats();
  EXPECT_GT(stats.segments_spilled, 0u);
  EXPECT_GT(stats.segments_evicted, 0u);
  EXPECT_GT(stats.cold_reads, 0u);
  auto oracle_stats = oracle_cluster->TotalBrokerStats();
  EXPECT_EQ(oracle_stats.segments_evicted, 0u);
  EXPECT_EQ(oracle_stats.cold_reads, 0u);

  // The sealed resident footprint respects the budget on every broker.
  for (NodeId n : tiered_cluster->BrokerNodes()) {
    TieredStore* t = tiered_cluster->broker(n).tiered();
    ASSERT_NE(t, nullptr);
    EXPECT_LE(t->GetStats().resident_sealed_bytes, kBudget)
        << "node " << n;
  }
}

// --------------------------------------------------------- scan resistance

TEST(ColdReadScan, ColdScanLeavesHotTailResident) {
  constexpr size_t kBudget = 16 << 10;  // four 4 KiB segments
  TieredCluster tc(kBudget, "scan");
  for (int i = 0; i < 120; ++i) tc.Produce(1, ChunkSeq(i + 1), RecordValue(i));

  Broker& broker = tc.cluster->broker(tc.leader);
  auto before = broker.GetStats();
  ASSERT_GT(before.segments_evicted, 0u)
      << "workload did not overflow the budget";
  TieredStore* tiered = broker.tiered();
  ASSERT_NE(tiered, nullptr);
  const uint64_t resident_before = tiered->GetStats().resident_sealed_bytes;
  const uint64_t hot_pool_before = before.memory_bytes_resident;

  // Full catch-up scan from group 0: most of it reads the spill tier.
  auto values = tc.ScanAll();
  ASSERT_EQ(values.size(), 120u);
  for (int i = 0; i < 120; ++i) EXPECT_EQ(values[i], RecordValue(i));

  auto after = broker.GetStats();
  EXPECT_GT(after.cold_reads, before.cold_reads);
  // Scan resistance: the cold scan ran entirely out of the cold cache's
  // own pool. The broker's hot segment pool and the resident sealed set
  // are exactly as the scan found them.
  EXPECT_EQ(after.memory_bytes_resident, hot_pool_before);
  EXPECT_EQ(tiered->GetStats().resident_sealed_bytes, resident_before);
  EXPECT_EQ(after.segments_evicted, before.segments_evicted)
      << "cold scan must not force hot-tail evictions";

  // Readahead: scanning groups front to back prefetches the next segment
  // of each group, so some demand reads were already loaded.
  EXPECT_GT(after.readahead_hits, 0u);

  // The tail (newest group) is still hot: consuming it takes no cold read.
  rpc::ConsumeRequest probe;
  probe.stream = tc.info.stream;
  probe.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                    .max_chunks = 1}};
  auto presp = broker.HandleConsume(probe);
  ASSERT_EQ(presp.status, StatusCode::kOk);
  const GroupId tail = GroupId(presp.entries[0].groups_created - 1);
  const uint64_t cold_before_tail = broker.GetStats().cold_reads;
  rpc::ConsumeRequest req;
  req.stream = tc.info.stream;
  req.entries = {{.streamlet = 0, .group = tail, .start_chunk = 0,
                  .max_chunks = 8}};
  auto resp = broker.HandleConsume(req);
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_FALSE(resp.entries[0].chunks.empty());
  EXPECT_EQ(broker.GetStats().cold_reads, cold_before_tail)
      << "tail consume took the cold path";
}

// ------------------------------------------------------- buffer lifetime

// The latent-lifetime regression (satellite 2): a consume response's
// zero-copy spans alias segment memory. With tiering on, the gather pins
// each segment; eviction must skip pinned segments and the spans must
// stay valid (and CRC-clean) while the response is alive, however much
// eviction pressure builds. Run under ASan, a use-after-free here is
// fatal rather than flaky.
TEST(ColdReadLifetime, InFlightResponsePinsSegmentAgainstEviction) {
  TieredCluster tc(/*budget=*/8 << 10, "pin");
  for (int i = 0; i < 8; ++i) tc.Produce(1, ChunkSeq(i + 1), RecordValue(i));
  Broker& broker = tc.cluster->broker(tc.leader);
  TieredStore* tiered = broker.tiered();
  ASSERT_NE(tiered, nullptr);

  // Grab a response over the oldest group while its segments are still
  // hot (freshly produced data overflows the budget in FIFO order, so
  // group 0 is the first eviction candidate).
  rpc::ConsumeRequest req;
  req.stream = tc.info.stream;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 8}};
  auto resp = broker.HandleConsume(req);
  ASSERT_EQ(resp.status, StatusCode::kOk);
  ASSERT_FALSE(resp.entries[0].chunks.empty());
  ASSERT_FALSE(resp.holds.empty()) << "tiered gather must pin its segments";
  const uint64_t evicted_at_pin = broker.GetStats().segments_evicted;

  // Pile on eviction pressure while the response is in flight.
  for (int i = 8; i < 48; ++i) {
    tc.Produce(1, ChunkSeq(i + 1), RecordValue(i));
  }
  tiered->PumpAll();

  // The spans still parse and checksum — the pin kept the buffer alive.
  for (const auto& frame : resp.entries[0].chunks) {
    auto view = ChunkView::Parse(frame);
    ASSERT_TRUE(view.ok());
    EXPECT_TRUE(view->VerifyChecksum());
  }

  // Drop the response: the pins release, and the next pump may evict the
  // previously pinned segments (second chance, not a leak).
  const uint64_t evicted_before_release = broker.GetStats().segments_evicted;
  resp = rpc::ConsumeResponse{};
  tiered->PumpAll();
  EXPECT_GE(broker.GetStats().segments_evicted, evicted_before_release);
  EXPECT_GT(broker.GetStats().segments_evicted, evicted_at_pin);

  // Everything still reads back intact end to end.
  auto values = tc.ScanAll();
  ASSERT_EQ(values.size(), 48u);
  for (int i = 0; i < 48; ++i) EXPECT_EQ(values[i], RecordValue(i));
}

// ------------------------------------------------------------ crash path

TEST(ColdReadCrash, CrashDeletesSpillLogAndRecoversFromBackups) {
  TieredCluster tc(/*budget=*/8 << 10, "crash");
  constexpr int kRecords = 60;
  for (int i = 0; i < kRecords; ++i) {
    tc.Produce(1, ChunkSeq(i + 1), RecordValue(i));
  }
  Broker& broker = tc.cluster->broker(tc.leader);
  ASSERT_GT(broker.GetStats().segments_evicted, 0u);
  const std::string spill_dir = tc.cluster->SpillDirFor(tc.leader);
  ASSERT_FALSE(spill_dir.empty());
  ASSERT_TRUE(std::filesystem::exists(spill_dir));

  // Crash the leader: its spill tree is deleted on the spot — a dead
  // process's spill log is garbage, never a recovery dependency.
  tc.cluster->CrashNode(tc.leader);
  EXPECT_FALSE(std::filesystem::exists(spill_dir));

  ASSERT_TRUE(tc.cluster->coordinator().RecoverNode(tc.leader).ok());
  auto info = tc.cluster->coordinator().GetStreamInfo("cold");
  ASSERT_TRUE(info.ok());
  const NodeId new_leader = info->streamlet_brokers[0];
  ASSERT_NE(new_leader, tc.leader);

  // The full history reads back from the new leader, rebuilt from the
  // backup copies alone.
  Broker& nb = tc.cluster->broker(new_leader);
  rpc::ConsumeRequest probe;
  probe.stream = info->stream;
  probe.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                    .max_chunks = 1}};
  auto presp = nb.HandleConsume(probe);
  ASSERT_EQ(presp.status, StatusCode::kOk);
  const uint32_t groups = presp.entries[0].groups_created;
  std::vector<std::string> values;
  for (GroupId g = 0; g < groups; ++g) {
    uint64_t cursor = 0;
    for (;;) {
      rpc::ConsumeRequest req;
      req.stream = info->stream;
      req.entries = {{.streamlet = 0, .group = g, .start_chunk = cursor,
                      .max_chunks = 8}};
      auto resp = nb.HandleConsume(req);
      ASSERT_EQ(resp.status, StatusCode::kOk);
      if (resp.entries[0].chunks.empty()) break;
      for (const auto& frame : resp.entries[0].chunks) {
        auto view = ChunkView::Parse(frame);
        ASSERT_TRUE(view.ok());
        EXPECT_TRUE(view->VerifyChecksum());
        for (auto it = view->records(); !it.Done(); it.Next()) {
          auto value = it.record().value();
          values.emplace_back(reinterpret_cast<const char*>(value.data()),
                              value.size());
        }
      }
      cursor = resp.entries[0].next_chunk;
    }
  }
  ASSERT_EQ(values.size(), size_t(kRecords));
  for (int i = 0; i < kRecords; ++i) EXPECT_EQ(values[i], RecordValue(i));
}

// --------------------------------------------------------------- counters

TEST(ColdReadStats, CountersFlowThroughBrokerAndClusterStats) {
  TieredCluster tc(/*budget=*/8 << 10, "stats");
  for (int i = 0; i < 60; ++i) tc.Produce(1, ChunkSeq(i + 1), RecordValue(i));
  auto values = tc.ScanAll();
  ASSERT_EQ(values.size(), 60u);

  Broker& broker = tc.cluster->broker(tc.leader);
  auto s = broker.GetStats();
  EXPECT_GT(s.segments_spilled, 0u);
  EXPECT_GT(s.segments_evicted, 0u);
  EXPECT_LE(s.segments_evicted, s.segments_spilled);
  EXPECT_GT(s.spill_bytes, 0u);
  // cold_reads counts chunks served from the cold tier; hits/misses are
  // segment-granular cache lookups.
  EXPECT_GT(s.cold_reads, 0u);
  EXPECT_GT(s.cold_cache_hits + s.cold_cache_misses, 0u);
  EXPECT_GT(s.memory_bytes_resident, 0u);
  EXPECT_LE(s.memory_buffers_outstanding, s.memory_peak_buffers);

  // Cluster totals include this broker's counters.
  auto total = tc.cluster->TotalBrokerStats();
  EXPECT_GE(total.segments_spilled, s.segments_spilled);
  EXPECT_GE(total.segments_evicted, s.segments_evicted);
  EXPECT_GE(total.cold_reads, s.cold_reads);
  EXPECT_GE(total.readahead_hits, s.readahead_hits);

  // TieredStore's own view agrees and stays under budget.
  TieredStore* tiered = broker.tiered();
  ASSERT_NE(tiered, nullptr);
  auto ts = tiered->GetStats();
  EXPECT_EQ(ts.segments_spilled, s.segments_spilled);
  EXPECT_EQ(ts.segments_evicted, s.segments_evicted);
  EXPECT_LE(ts.resident_sealed_bytes, uint64_t(8 << 10));
  EXPECT_GE(ts.readahead_loads, ts.readahead_hits);
}

TEST(ColdReadStats, UnboundedConfigBuildsNoTieredStore) {
  TieredCluster tc(/*budget=*/0, "off");
  for (int i = 0; i < 30; ++i) tc.Produce(1, ChunkSeq(i + 1), RecordValue(i));
  Broker& broker = tc.cluster->broker(tc.leader);
  EXPECT_EQ(broker.tiered(), nullptr);
  auto s = broker.GetStats();
  EXPECT_EQ(s.segments_spilled, 0u);
  EXPECT_EQ(s.segments_evicted, 0u);
  EXPECT_EQ(s.cold_reads, 0u);
  // Responses carry no holds on the untiered path (byte-for-byte the
  // pre-tiering gather).
  rpc::ConsumeRequest req;
  req.stream = tc.info.stream;
  req.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                  .max_chunks = 4}};
  auto resp = broker.HandleConsume(req);
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_TRUE(resp.holds.empty());
  auto values = tc.ScanAll();
  ASSERT_EQ(values.size(), 30u);
}

}  // namespace
}  // namespace kera
