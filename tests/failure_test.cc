// Failure-injection tests: a flaky network between clients, brokers and
// backups must never break exactly-once semantics or the durability gate.
// Producer retries + broker-side dedup + idempotent backup batches absorb
// both lost requests and lost responses.
#include <gtest/gtest.h>

#include <string_view>

#include "backup/backup.h"
#include "broker/broker.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, ChunkSeq seq) {
  ChunkBuilder b(512);
  b.Start(stream, streamlet, producer);
  EXPECT_TRUE(b.AppendValue(AsBytes("flaky-payload")));
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

TEST(FlakyNetworkTest, DropsConfiguredFraction) {
  rpc::DirectNetwork inner;
  class Echo final : public rpc::RpcHandler {
   public:
    std::vector<std::byte> HandleRpc(std::span<const std::byte> r) override {
      ++calls;
      return {r.begin(), r.end()};
    }
    int calls = 0;
  } echo;
  inner.Register(1, &echo);

  rpc::FlakyNetwork flaky(inner, {.drop_request = 0.3, .drop_response = 0.0,
                                  .seed = 7});
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!flaky.Call(1, AsBytes("x")).ok()) ++failures;
  }
  EXPECT_NEAR(failures, 300, 60);
  EXPECT_EQ(echo.calls, 1000 - failures);  // dropped before the handler
  auto stats = flaky.GetStats();
  EXPECT_EQ(stats.dropped_requests, uint64_t(failures));
}

TEST(FlakyNetworkTest, ResponseDropRunsHandlerButFailsCaller) {
  rpc::DirectNetwork inner;
  class Echo final : public rpc::RpcHandler {
   public:
    std::vector<std::byte> HandleRpc(std::span<const std::byte> r) override {
      ++calls;
      return {r.begin(), r.end()};
    }
    int calls = 0;
  } echo;
  inner.Register(1, &echo);
  rpc::FlakyNetwork flaky(inner, {.drop_request = 0.0, .drop_response = 1.0,
                                  .seed = 3});
  EXPECT_FALSE(flaky.Call(1, AsBytes("x")).ok());
  EXPECT_EQ(echo.calls, 1);  // side effect happened; response was lost
}

/// Broker + 2 backups over a flaky network; a client loop retries every
/// produce request until acknowledged. Exactly-once must hold.
class FlakyProduceTest : public ::testing::Test {
 protected:
  FlakyProduceTest()
      : flaky_(inner_, {.drop_request = 0.15, .drop_response = 0.15,
                        .seed = 42}),
        backup2_(BackupConfig{.node = 2, .storage_dir = ""}),
        backup3_(BackupConfig{.node = 3, .storage_dir = ""}) {
    BrokerConfig bc;
    bc.node = 1;
    bc.memory_bytes = 16 << 20;
    bc.segment_size = 64 << 10;
    bc.virtual_segment_capacity = 64 << 10;
    bc.backup_nodes = {BackupServiceId(2), BackupServiceId(3)};
    bc.replication_retries = 50;  // ride out the injected failures
    broker_ = std::make_unique<Broker>(bc, flaky_);
    inner_.Register(BackupServiceId(2), &backup2_);
    inner_.Register(BackupServiceId(3), &backup3_);

    rpc::StreamInfo info;
    info.stream = 1;
    info.options.num_streamlets = 1;
    info.options.replication_factor = 3;
    info.streamlet_brokers = {1};
    EXPECT_TRUE(broker_->AddStream("s", info).ok());
    EXPECT_TRUE(broker_->AddStreamlet(1, 0).ok());
  }

  rpc::DirectNetwork inner_;
  rpc::FlakyNetwork flaky_;
  Backup backup2_;
  Backup backup3_;
  std::unique_ptr<Broker> broker_;
};

TEST_F(FlakyProduceTest, RetriedProducesStayExactlyOnce) {
  constexpr int kChunks = 200;
  for (int i = 1; i <= kChunks; ++i) {
    auto chunk = MakeChunk(1, 0, /*producer=*/9, ChunkSeq(i));
    rpc::ProduceRequest req;
    req.producer = 9;
    req.stream = 1;
    req.chunks = {chunk};
    // Client retry loop: the broker call itself is direct (we inject
    // flakiness between broker and backups), so each HandleProduce retries
    // replication internally; a failed request is retried wholesale.
    int attempts = 0;
    while (true) {
      ++attempts;
      ASSERT_LT(attempts, 100);
      auto resp = broker_->HandleProduce(req);
      if (resp.status == StatusCode::kOk) break;
    }
  }
  auto stats = broker_->GetStats();
  EXPECT_EQ(stats.chunks_appended, uint64_t(kChunks));
  // Backups saw failures but hold exactly one copy of each chunk.
  EXPECT_EQ(backup2_.GetStats().chunks_received, uint64_t(kChunks));
  EXPECT_EQ(backup3_.GetStats().chunks_received, uint64_t(kChunks));
  EXPECT_GT(flaky_.GetStats().dropped_requests +
                flaky_.GetStats().dropped_responses,
            0u);

  // All chunks durable and consumable, in order.
  rpc::ConsumeRequest creq;
  creq.stream = 1;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 1000}};
  auto cresp = broker_->HandleConsume(creq);
  uint64_t total = 0;
  GroupId group = 0;
  uint64_t cursor = 0;
  for (int rounds = 0; rounds < 100; ++rounds) {
    creq.entries[0].group = group;
    creq.entries[0].start_chunk = cursor;
    auto resp = broker_->HandleConsume(creq);
    if (resp.entries[0].chunks.empty() && !resp.entries[0].group_closed) {
      break;
    }
    total += resp.entries[0].chunks.size();
    cursor = resp.entries[0].next_chunk;
    if (resp.entries[0].group_closed) {
      ++group;
      cursor = 0;
      if (!resp.entries[0].group_exists && resp.entries[0].chunks.empty()) {
        break;
      }
    }
  }
  (void)cresp;
  EXPECT_EQ(total, uint64_t(kChunks));
}

TEST_F(FlakyProduceTest, DuplicateRequestRetransmissionsAreAbsorbed) {
  auto chunk = MakeChunk(1, 0, 5, 1);
  rpc::ProduceRequest req;
  req.producer = 5;
  req.stream = 1;
  req.chunks = {chunk};
  int appended = 0;
  int duplicates = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto resp = broker_->HandleProduce(req);
    if (resp.status != StatusCode::kOk) continue;
    appended += int(resp.appended);
    duplicates += int(resp.duplicates);
  }
  EXPECT_EQ(appended, 1);
  EXPECT_GE(duplicates, 1);
  EXPECT_EQ(broker_->GetStats().chunks_appended, 1u);
  EXPECT_EQ(backup2_.GetStats().chunks_received, 1u);
}

}  // namespace
}  // namespace kera
