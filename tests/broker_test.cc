// Unit tests for the broker: produce path (append + vlog + replication),
// exactly-once dedup, durability gate on consume, vlog policies.
#include <gtest/gtest.h>

#include <string_view>
#include <thread>

#include "backup/backup.h"
#include "broker/broker.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, ChunkSeq seq,
                                 int records = 2) {
  ChunkBuilder b(1024);
  b.Start(stream, streamlet, producer);
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(b.AppendValue(AsBytes("record-value")));
  }
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() {
    // One broker (node 1) with two backup services (nodes 2, 3).
    BrokerConfig bc;
    bc.node = 1;
    bc.memory_bytes = 16 << 20;
    bc.segment_size = 64 << 10;
    bc.segments_per_group = 2;
    bc.virtual_segment_capacity = 64 << 10;
    bc.vlogs_per_broker = 2;
    bc.backup_nodes = {BackupServiceId(1), BackupServiceId(2),
                       BackupServiceId(3)};
    broker_ = std::make_unique<Broker>(bc, net_);
    backup2_ = std::make_unique<Backup>(BackupConfig{.node = 2, .storage_dir = ""});
    backup3_ = std::make_unique<Backup>(BackupConfig{.node = 3, .storage_dir = ""});
    net_.Register(BackupServiceId(2), backup2_.get());
    net_.Register(BackupServiceId(3), backup3_.get());
  }

  rpc::StreamInfo MakeStream(const std::string& name, uint32_t streamlets,
                             uint32_t q, uint32_t r,
                             rpc::VlogPolicy policy) {
    rpc::StreamInfo info;
    info.stream = next_stream_++;
    info.options.num_streamlets = streamlets;
    info.options.active_groups_per_streamlet = q;
    info.options.replication_factor = r;
    info.options.vlog_policy = policy;
    info.streamlet_brokers.assign(streamlets, 1);
    EXPECT_TRUE(broker_->AddStream(name, info).ok());
    for (StreamletId sl = 0; sl < streamlets; ++sl) {
      EXPECT_TRUE(broker_->AddStreamlet(info.stream, sl).ok());
    }
    return info;
  }

  rpc::DirectNetwork net_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Backup> backup2_;
  std::unique_ptr<Backup> backup3_;
  StreamId next_stream_ = 1;
};

TEST_F(BrokerTest, ProduceReplicatesAndExposes) {
  auto info = MakeStream("s", 1, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};

  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.appended, 1u);
  EXPECT_EQ(resp.duplicates, 0u);

  // Both backups hold one copy.
  EXPECT_EQ(backup2_->GetStats().chunks_received, 1u);
  EXPECT_EQ(backup3_->GetStats().chunks_received, 1u);

  // The chunk is durably consumable.
  rpc::ConsumeRequest creq;
  creq.stream = info.stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  auto cresp = broker_->HandleConsume(creq);
  ASSERT_EQ(cresp.status, StatusCode::kOk);
  ASSERT_EQ(cresp.entries.size(), 1u);
  EXPECT_TRUE(cresp.entries[0].group_exists);
  ASSERT_EQ(cresp.entries[0].chunks.size(), 1u);
  auto view = ChunkView::Parse(cresp.entries[0].chunks[0]);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->VerifyChecksum());
  EXPECT_EQ(view->record_count(), 2u);
}

TEST_F(BrokerTest, ReplicationFactorOneSkipsBackups) {
  auto info = MakeStream("s", 1, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  EXPECT_EQ(backup2_->GetStats().chunks_received, 0u);
  EXPECT_EQ(broker_->GetStats().replication_rpcs, 0u);

  rpc::ConsumeRequest creq;
  creq.stream = info.stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  EXPECT_EQ(broker_->HandleConsume(creq).entries[0].chunks.size(), 1u);
}

TEST_F(BrokerTest, DuplicateChunksDropped) {
  auto info = MakeStream("s", 1, 1, 2, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).appended, 1u);
  // Retransmission of the same chunk sequence.
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.appended, 0u);
  EXPECT_EQ(resp.duplicates, 1u);
  EXPECT_EQ(broker_->GetStats().chunks_appended, 1u);

  // A new sequence is accepted.
  auto chunk2 = MakeChunk(info.stream, 0, 1, 2);
  req.chunks = {chunk2};
  EXPECT_EQ(broker_->HandleProduce(req).appended, 1u);
}

TEST_F(BrokerTest, DedupIsPerProducerAndStreamlet) {
  auto info = MakeStream("s", 2, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  // Same seq 1 from two producers and on two streamlets: all distinct.
  auto c_a = MakeChunk(info.stream, 0, 1, 1);
  auto c_b = MakeChunk(info.stream, 0, 2, 1);
  auto c_c = MakeChunk(info.stream, 1, 1, 1);
  req.chunks = {c_a, c_b, c_c};
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.appended, 3u);
  EXPECT_EQ(resp.duplicates, 0u);
}

TEST_F(BrokerTest, CorruptChunkRejected) {
  auto info = MakeStream("s", 1, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  chunk[kChunkHeaderSize] ^= std::byte{0xFF};
  rpc::ProduceRequest req;
  req.stream = info.stream;
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kCorruption);
  EXPECT_EQ(broker_->GetStats().checksum_failures, 1u);
}

TEST_F(BrokerTest, UnknownStreamRejected) {
  rpc::ProduceRequest req;
  req.stream = 999;
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kNotFound);
}

TEST_F(BrokerTest, NotLeaderForForeignStreamlet) {
  auto info = MakeStream("s", 1, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  // Chunk targets streamlet 5 which was never added to this broker.
  auto chunk = MakeChunk(info.stream, 5, 1, 1);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kNotLeader);
}

TEST_F(BrokerTest, SharedPolicyUsesConfiguredPoolSize) {
  auto info = MakeStream("s", 8, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  std::vector<std::vector<std::byte>> chunks;
  for (StreamletId sl = 0; sl < 8; ++sl) {
    chunks.push_back(MakeChunk(info.stream, sl, 1, 1));
  }
  for (auto& c : chunks) req.chunks.push_back(c);
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  // 8 streamlets share the broker's pool of 2 vlogs.
  EXPECT_EQ(broker_->VirtualLogs().size(), 2u);
}

TEST_F(BrokerTest, PerSubPartitionPolicyCreatesOneVlogPerSlot) {
  auto info = MakeStream("s", 2, 2, 3, rpc::VlogPolicy::kPerSubPartition);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  // Producers 1 and 2 hit different slots (Q=2) on both streamlets.
  std::vector<std::vector<std::byte>> chunks;
  for (StreamletId sl = 0; sl < 2; ++sl) {
    chunks.push_back(MakeChunk(info.stream, sl, 1, 1));
    chunks.push_back(MakeChunk(info.stream, sl, 2, 1));
  }
  for (auto& c : chunks) req.chunks.push_back(c);
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  EXPECT_EQ(broker_->VirtualLogs().size(), 4u);  // 2 streamlets x 2 slots
}

TEST_F(BrokerTest, ConsumeRespectsDurabilityGate) {
  auto info = MakeStream("s", 1, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  // Use the NoSync path so chunks are appended but NOT replicated.
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  std::vector<std::pair<VirtualLog*, ChunkRef>> appended;
  auto resp = broker_->HandleProduceNoSync(req, &appended);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  ASSERT_EQ(appended.size(), 1u);
  std::vector<VirtualLog*> touched{appended[0].first};

  rpc::ConsumeRequest creq;
  creq.stream = info.stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  // Unreplicated: consumers see nothing.
  EXPECT_TRUE(broker_->HandleConsume(creq).entries[0].chunks.empty());

  // Drive replication to completion; now it is visible.
  while (auto batch = touched[0]->Poll()) {
    ASSERT_TRUE(broker_->ShipBatch(*touched[0], *batch).ok());
  }
  EXPECT_EQ(broker_->HandleConsume(creq).entries[0].chunks.size(), 1u);
}

TEST_F(BrokerTest, ConsumeFromBackupFailureReturnsError) {
  auto info = MakeStream("s", 1, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  net_.Crash(BackupServiceId(2));
  net_.Crash(BackupServiceId(3));
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kUnavailable);
}

TEST_F(BrokerTest, TrimDurableFreesClosedGroups) {
  BrokerConfig bc = broker_->config();
  auto info = MakeStream("s", 1, 1, 2, rpc::VlogPolicy::kSharedPerBroker);
  // Fill enough chunks to roll groups (segment 64 KB, 2 per group).
  rpc::ProduceRequest req;
  req.stream = info.stream;
  ChunkSeq seq = 1;
  for (int round = 0; round < 500; ++round) {
    auto chunk = MakeChunk(info.stream, 0, 1, seq++, /*records=*/20);
    req.chunks = {chunk};
    ASSERT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  }
  Stream* stream = broker_->GetStream(info.stream);
  Streamlet* sl = stream->GetStreamlet(0);
  ASSERT_GT(sl->GroupIds().size(), 1u);
  size_t trimmed = broker_->TrimDurable();
  EXPECT_GT(trimmed, 0u);
}

TEST_F(BrokerTest, DebugStringSummarizesState) {
  auto info = MakeStream("inspect", 2, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  ASSERT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  std::string s = broker_->DebugString();
  EXPECT_NE(s.find("stream 'inspect'"), std::string::npos);
  EXPECT_NE(s.find("streamlet 0"), std::string::npos);
  EXPECT_NE(s.find("vlog"), std::string::npos);
  EXPECT_EQ(s.find("[sealed]"), std::string::npos);
  ASSERT_TRUE(broker_->SealStream(info.stream).ok());
  EXPECT_NE(broker_->DebugString().find("[sealed]"), std::string::npos);
}

// Fixture for the background-replication path: workers ship batches off
// the produce path, producers block only on durability of their own
// chunks. Uses the threaded network so replication runs truly
// concurrently with produce and consume.
class BackgroundReplicationTest : public ::testing::Test {
 protected:
  BackgroundReplicationTest() {
    BrokerConfig bc;
    bc.node = 1;
    bc.memory_bytes = 64 << 20;
    bc.segment_size = 64 << 10;
    bc.segments_per_group = 2;
    bc.virtual_segment_capacity = 64 << 10;
    bc.vlogs_per_broker = 2;
    bc.replication_window = 4;
    bc.replication_workers = 2;
    bc.backup_nodes = {BackupServiceId(1), BackupServiceId(2),
                       BackupServiceId(3)};
    broker_ = std::make_unique<Broker>(bc, net_);
    backup2_ =
        std::make_unique<Backup>(BackupConfig{.node = 2, .storage_dir = ""});
    backup3_ =
        std::make_unique<Backup>(BackupConfig{.node = 3, .storage_dir = ""});
    net_.Register(BackupServiceId(2), backup2_.get());
    net_.Register(BackupServiceId(3), backup3_.get());
  }

  ~BackgroundReplicationTest() override {
    broker_->StopReplicator();
    net_.Shutdown();
  }

  rpc::StreamInfo MakeStream(uint32_t streamlets) {
    rpc::StreamInfo info;
    info.stream = 1;
    info.options.num_streamlets = streamlets;
    info.options.active_groups_per_streamlet = 1;
    info.options.replication_factor = 3;
    info.options.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
    info.streamlet_brokers.assign(streamlets, 1);
    EXPECT_TRUE(broker_->AddStream("storm", info).ok());
    for (StreamletId sl = 0; sl < streamlets; ++sl) {
      EXPECT_TRUE(broker_->AddStreamlet(info.stream, sl).ok());
    }
    return info;
  }

  rpc::ThreadedNetwork net_{2};
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Backup> backup2_;
  std::unique_ptr<Backup> backup3_;
};

TEST_F(BackgroundReplicationTest, ProduceStormAcksImplyDurability) {
  const uint32_t kThreads = 4;
  const ChunkSeq kChunksEach = 50;
  auto info = MakeStream(kThreads);

  // Each thread produces to its own streamlet; after every ack the chunk
  // must already be durable, i.e. visible through the consume gate.
  std::vector<std::thread> producers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (ChunkSeq seq = 1; seq <= kChunksEach; ++seq) {
        rpc::ProduceRequest req;
        req.producer = ProducerId(t + 1);
        req.stream = info.stream;
        auto chunk = MakeChunk(info.stream, StreamletId(t),
                               ProducerId(t + 1), seq);
        req.chunks = {chunk};
        auto resp = broker_->HandleProduce(req);
        ASSERT_EQ(resp.status, StatusCode::kOk);
        ASSERT_EQ(resp.appended, 1u);

        rpc::ConsumeRequest creq;
        creq.stream = info.stream;
        creq.entries = {{.streamlet = StreamletId(t), .group = 0,
                         .start_chunk = 0, .max_chunks = 1000}};
        auto cresp = broker_->HandleConsume(creq);
        ASSERT_EQ(cresp.status, StatusCode::kOk);
        ASSERT_GE(cresp.entries[0].chunks.size(), size_t(seq));
      }
    });
  }
  for (auto& th : producers) th.join();

  auto stats = broker_->GetStats();
  EXPECT_EQ(stats.chunks_appended, uint64_t(kThreads) * kChunksEach);
  EXPECT_GT(stats.replication_rpcs, 0u);
  ASSERT_NE(broker_->replicator(), nullptr);
  auto rstats = broker_->replicator()->GetStats();
  EXPECT_GT(rstats.batches_shipped, 0u);
  EXPECT_EQ(rstats.batch_failures, 0u);
}

TEST_F(BackgroundReplicationTest, BackupFailureSurfacesToProducer) {
  auto info = MakeStream(1);
  net_.Crash(BackupServiceId(2));
  net_.Crash(BackupServiceId(3));
  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  // The background replicator exhausts its retry budget; the blocked
  // producer is woken with the error instead of hanging forever.
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kUnavailable);
  EXPECT_GT(broker_->replicator()->GetStats().batch_failures, 0u);
}

TEST_F(BrokerTest, FramedProduceConsumeDispatch) {
  auto info = MakeStream("s", 1, 1, 2, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  rpc::Writer body;
  req.Encode(body);
  auto raw = broker_->HandleRpc(rpc::Frame(rpc::Opcode::kProduce, body));
  rpc::Reader r(raw);
  auto resp = rpc::ProduceResponse::Decode(r);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->appended, 1u);
}

}  // namespace
}  // namespace kera
