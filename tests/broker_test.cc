// Unit tests for the broker: produce path (append + vlog + replication),
// exactly-once dedup, durability gate on consume, vlog policies.
#include <gtest/gtest.h>

#include <string_view>
#include <thread>

#include "backup/backup.h"
#include "broker/broker.h"
#include "rpc/transport.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(StreamId stream, StreamletId streamlet,
                                 ProducerId producer, ChunkSeq seq,
                                 int records = 2) {
  ChunkBuilder b(1024);
  b.Start(stream, streamlet, producer);
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(b.AppendValue(AsBytes("record-value")));
  }
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() {
    // One broker (node 1) with two backup services (nodes 2, 3).
    BrokerConfig bc;
    bc.node = 1;
    bc.memory_bytes = 16 << 20;
    bc.segment_size = 64 << 10;
    bc.segments_per_group = 2;
    bc.virtual_segment_capacity = 64 << 10;
    bc.vlogs_per_broker = 2;
    bc.backup_nodes = {BackupServiceId(1), BackupServiceId(2),
                       BackupServiceId(3)};
    broker_ = std::make_unique<Broker>(bc, net_);
    backup2_ = std::make_unique<Backup>(BackupConfig{.node = 2, .storage_dir = ""});
    backup3_ = std::make_unique<Backup>(BackupConfig{.node = 3, .storage_dir = ""});
    net_.Register(BackupServiceId(2), backup2_.get());
    net_.Register(BackupServiceId(3), backup3_.get());
  }

  rpc::StreamInfo MakeStream(const std::string& name, uint32_t streamlets,
                             uint32_t q, uint32_t r,
                             rpc::VlogPolicy policy) {
    rpc::StreamInfo info;
    info.stream = next_stream_++;
    info.options.num_streamlets = streamlets;
    info.options.active_groups_per_streamlet = q;
    info.options.replication_factor = r;
    info.options.vlog_policy = policy;
    info.streamlet_brokers.assign(streamlets, 1);
    EXPECT_TRUE(broker_->AddStream(name, info).ok());
    for (StreamletId sl = 0; sl < streamlets; ++sl) {
      EXPECT_TRUE(broker_->AddStreamlet(info.stream, sl).ok());
    }
    return info;
  }

  rpc::DirectNetwork net_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Backup> backup2_;
  std::unique_ptr<Backup> backup3_;
  StreamId next_stream_ = 1;
};

TEST_F(BrokerTest, ProduceReplicatesAndExposes) {
  auto info = MakeStream("s", 1, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};

  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.appended, 1u);
  EXPECT_EQ(resp.duplicates, 0u);

  // Both backups hold one copy.
  EXPECT_EQ(backup2_->GetStats().chunks_received, 1u);
  EXPECT_EQ(backup3_->GetStats().chunks_received, 1u);

  // The chunk is durably consumable.
  rpc::ConsumeRequest creq;
  creq.stream = info.stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  auto cresp = broker_->HandleConsume(creq);
  ASSERT_EQ(cresp.status, StatusCode::kOk);
  ASSERT_EQ(cresp.entries.size(), 1u);
  EXPECT_TRUE(cresp.entries[0].group_exists);
  ASSERT_EQ(cresp.entries[0].chunks.size(), 1u);
  auto view = ChunkView::Parse(cresp.entries[0].chunks[0]);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->VerifyChecksum());
  EXPECT_EQ(view->record_count(), 2u);
}

TEST_F(BrokerTest, ReplicationFactorOneSkipsBackups) {
  auto info = MakeStream("s", 1, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  EXPECT_EQ(backup2_->GetStats().chunks_received, 0u);
  EXPECT_EQ(broker_->GetStats().replication_rpcs, 0u);

  rpc::ConsumeRequest creq;
  creq.stream = info.stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  EXPECT_EQ(broker_->HandleConsume(creq).entries[0].chunks.size(), 1u);
}

TEST_F(BrokerTest, DuplicateChunksDropped) {
  auto info = MakeStream("s", 1, 1, 2, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).appended, 1u);
  // Retransmission of the same chunk sequence.
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.appended, 0u);
  EXPECT_EQ(resp.duplicates, 1u);
  EXPECT_EQ(broker_->GetStats().chunks_appended, 1u);

  // A new sequence is accepted.
  auto chunk2 = MakeChunk(info.stream, 0, 1, 2);
  req.chunks = {chunk2};
  EXPECT_EQ(broker_->HandleProduce(req).appended, 1u);
}

TEST_F(BrokerTest, DedupIsPerProducerAndStreamlet) {
  auto info = MakeStream("s", 2, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  // Same seq 1 from two producers and on two streamlets: all distinct.
  auto c_a = MakeChunk(info.stream, 0, 1, 1);
  auto c_b = MakeChunk(info.stream, 0, 2, 1);
  auto c_c = MakeChunk(info.stream, 1, 1, 1);
  req.chunks = {c_a, c_b, c_c};
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.appended, 3u);
  EXPECT_EQ(resp.duplicates, 0u);
}

TEST_F(BrokerTest, CorruptChunkRejected) {
  auto info = MakeStream("s", 1, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  chunk[kChunkHeaderSize] ^= std::byte{0xFF};
  rpc::ProduceRequest req;
  req.stream = info.stream;
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kCorruption);
  EXPECT_EQ(broker_->GetStats().checksum_failures, 1u);
}

TEST_F(BrokerTest, UnknownStreamRejected) {
  rpc::ProduceRequest req;
  req.stream = 999;
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kNotFound);
}

TEST_F(BrokerTest, NotLeaderForForeignStreamlet) {
  auto info = MakeStream("s", 1, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  // Chunk targets streamlet 5 which was never added to this broker.
  auto chunk = MakeChunk(info.stream, 5, 1, 1);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  req.chunks = {chunk};
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kNotLeader);
}

TEST_F(BrokerTest, SharedPolicyUsesConfiguredPoolSize) {
  auto info = MakeStream("s", 8, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  std::vector<std::vector<std::byte>> chunks;
  for (StreamletId sl = 0; sl < 8; ++sl) {
    chunks.push_back(MakeChunk(info.stream, sl, 1, 1));
  }
  for (auto& c : chunks) req.chunks.push_back(c);
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  // 8 streamlets share the broker's pool of 2 vlogs.
  EXPECT_EQ(broker_->VirtualLogs().size(), 2u);
}

TEST_F(BrokerTest, PerSubPartitionPolicyCreatesOneVlogPerSlot) {
  auto info = MakeStream("s", 2, 2, 3, rpc::VlogPolicy::kPerSubPartition);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  // Producers 1 and 2 hit different slots (Q=2) on both streamlets.
  std::vector<std::vector<std::byte>> chunks;
  for (StreamletId sl = 0; sl < 2; ++sl) {
    chunks.push_back(MakeChunk(info.stream, sl, 1, 1));
    chunks.push_back(MakeChunk(info.stream, sl, 2, 1));
  }
  for (auto& c : chunks) req.chunks.push_back(c);
  EXPECT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  EXPECT_EQ(broker_->VirtualLogs().size(), 4u);  // 2 streamlets x 2 slots
}

TEST_F(BrokerTest, ConsumeRespectsDurabilityGate) {
  auto info = MakeStream("s", 1, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  // Use the NoSync path so chunks are appended but NOT replicated.
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  std::vector<std::pair<VirtualLog*, ChunkRef>> appended;
  auto resp = broker_->HandleProduceNoSync(req, &appended);
  EXPECT_EQ(resp.status, StatusCode::kOk);
  ASSERT_EQ(appended.size(), 1u);
  std::vector<VirtualLog*> touched{appended[0].first};

  rpc::ConsumeRequest creq;
  creq.stream = info.stream;
  creq.entries = {{.streamlet = 0, .group = 0, .start_chunk = 0,
                   .max_chunks = 10}};
  // Unreplicated: consumers see nothing.
  EXPECT_TRUE(broker_->HandleConsume(creq).entries[0].chunks.empty());

  // Drive replication to completion; now it is visible.
  while (auto batch = touched[0]->Poll()) {
    ASSERT_TRUE(broker_->ShipBatch(*touched[0], *batch).ok());
  }
  EXPECT_EQ(broker_->HandleConsume(creq).entries[0].chunks.size(), 1u);
}

TEST_F(BrokerTest, ConsumeFromBackupFailureReturnsError) {
  auto info = MakeStream("s", 1, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  net_.Crash(BackupServiceId(2));
  net_.Crash(BackupServiceId(3));
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kUnavailable);
}

TEST_F(BrokerTest, TrimDurableFreesClosedGroups) {
  BrokerConfig bc = broker_->config();
  auto info = MakeStream("s", 1, 1, 2, rpc::VlogPolicy::kSharedPerBroker);
  // Fill enough chunks to roll groups (segment 64 KB, 2 per group).
  rpc::ProduceRequest req;
  req.stream = info.stream;
  ChunkSeq seq = 1;
  for (int round = 0; round < 500; ++round) {
    auto chunk = MakeChunk(info.stream, 0, 1, seq++, /*records=*/20);
    req.chunks = {chunk};
    ASSERT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  }
  Stream* stream = broker_->GetStream(info.stream);
  Streamlet* sl = stream->GetStreamlet(0);
  ASSERT_GT(sl->GroupIds().size(), 1u);
  size_t trimmed = broker_->TrimDurable();
  EXPECT_GT(trimmed, 0u);
}

TEST_F(BrokerTest, DebugStringSummarizesState) {
  auto info = MakeStream("inspect", 2, 1, 3, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  ASSERT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  std::string s = broker_->DebugString();
  EXPECT_NE(s.find("stream 'inspect'"), std::string::npos);
  EXPECT_NE(s.find("streamlet 0"), std::string::npos);
  EXPECT_NE(s.find("vlog"), std::string::npos);
  EXPECT_EQ(s.find("[sealed]"), std::string::npos);
  ASSERT_TRUE(broker_->SealStream(info.stream).ok());
  EXPECT_NE(broker_->DebugString().find("[sealed]"), std::string::npos);
}

// Fixture for the background-replication path: workers ship batches off
// the produce path, producers block only on durability of their own
// chunks. Uses the threaded network so replication runs truly
// concurrently with produce and consume.
class BackgroundReplicationTest : public ::testing::Test {
 protected:
  BackgroundReplicationTest() {
    BrokerConfig bc;
    bc.node = 1;
    bc.memory_bytes = 64 << 20;
    bc.segment_size = 64 << 10;
    bc.segments_per_group = 2;
    bc.virtual_segment_capacity = 64 << 10;
    bc.vlogs_per_broker = 2;
    bc.replication_window = 4;
    bc.replication_workers = 2;
    bc.backup_nodes = {BackupServiceId(1), BackupServiceId(2),
                       BackupServiceId(3)};
    broker_ = std::make_unique<Broker>(bc, net_);
    backup2_ =
        std::make_unique<Backup>(BackupConfig{.node = 2, .storage_dir = ""});
    backup3_ =
        std::make_unique<Backup>(BackupConfig{.node = 3, .storage_dir = ""});
    net_.Register(BackupServiceId(2), backup2_.get());
    net_.Register(BackupServiceId(3), backup3_.get());
  }

  ~BackgroundReplicationTest() override {
    broker_->StopReplicator();
    net_.Shutdown();
  }

  rpc::StreamInfo MakeStream(uint32_t streamlets) {
    rpc::StreamInfo info;
    info.stream = 1;
    info.options.num_streamlets = streamlets;
    info.options.active_groups_per_streamlet = 1;
    info.options.replication_factor = 3;
    info.options.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
    info.streamlet_brokers.assign(streamlets, 1);
    EXPECT_TRUE(broker_->AddStream("storm", info).ok());
    for (StreamletId sl = 0; sl < streamlets; ++sl) {
      EXPECT_TRUE(broker_->AddStreamlet(info.stream, sl).ok());
    }
    return info;
  }

  rpc::ThreadedNetwork net_{2};
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Backup> backup2_;
  std::unique_ptr<Backup> backup3_;
};

TEST_F(BackgroundReplicationTest, ProduceStormAcksImplyDurability) {
  const uint32_t kThreads = 4;
  const ChunkSeq kChunksEach = 50;
  auto info = MakeStream(kThreads);

  // Each thread produces to its own streamlet; after every ack the chunk
  // must already be durable, i.e. visible through the consume gate.
  std::vector<std::thread> producers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (ChunkSeq seq = 1; seq <= kChunksEach; ++seq) {
        rpc::ProduceRequest req;
        req.producer = ProducerId(t + 1);
        req.stream = info.stream;
        auto chunk = MakeChunk(info.stream, StreamletId(t),
                               ProducerId(t + 1), seq);
        req.chunks = {chunk};
        auto resp = broker_->HandleProduce(req);
        ASSERT_EQ(resp.status, StatusCode::kOk);
        ASSERT_EQ(resp.appended, 1u);

        rpc::ConsumeRequest creq;
        creq.stream = info.stream;
        creq.entries = {{.streamlet = StreamletId(t), .group = 0,
                         .start_chunk = 0, .max_chunks = 1000}};
        auto cresp = broker_->HandleConsume(creq);
        ASSERT_EQ(cresp.status, StatusCode::kOk);
        ASSERT_GE(cresp.entries[0].chunks.size(), size_t(seq));
      }
    });
  }
  for (auto& th : producers) th.join();

  auto stats = broker_->GetStats();
  EXPECT_EQ(stats.chunks_appended, uint64_t(kThreads) * kChunksEach);
  EXPECT_GT(stats.replication_rpcs, 0u);
  ASSERT_NE(broker_->replicator(), nullptr);
  auto rstats = broker_->replicator()->GetStats();
  EXPECT_GT(rstats.batches_shipped, 0u);
  EXPECT_EQ(rstats.batch_failures, 0u);
}

TEST_F(BackgroundReplicationTest, BackupFailureSurfacesToProducer) {
  auto info = MakeStream(1);
  net_.Crash(BackupServiceId(2));
  net_.Crash(BackupServiceId(3));
  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  // The background replicator exhausts its retry budget; the blocked
  // producer is woken with the error instead of hanging forever.
  auto resp = broker_->HandleProduce(req);
  EXPECT_EQ(resp.status, StatusCode::kUnavailable);
  EXPECT_GT(broker_->replicator()->GetStats().batch_failures, 0u);
}

// ----- shared-nothing sharding: routing, counters, migration -----

// A broker with two shards over a DirectNetwork: single-threaded, so the
// mailbox Execute path degenerates to an inline call and every counter
// is exactly predictable.
class ShardedBrokerTest : public ::testing::Test {
 protected:
  ShardedBrokerTest() {
    BrokerConfig bc;
    bc.node = 1;
    bc.memory_bytes = 16 << 20;
    bc.segment_size = 64 << 10;
    bc.segments_per_group = 2;
    bc.virtual_segment_capacity = 64 << 10;
    bc.vlogs_per_broker = 4;
    bc.shards = 2;
    broker_ = std::make_unique<Broker>(bc, net_);
  }

  rpc::StreamInfo MakeStream(const std::string& name, uint32_t streamlets) {
    rpc::StreamInfo info;
    info.stream = next_stream_++;
    info.options.num_streamlets = streamlets;
    info.options.active_groups_per_streamlet = 1;
    info.options.replication_factor = 1;
    info.options.vlog_policy = rpc::VlogPolicy::kSharedPerBroker;
    info.streamlet_brokers.assign(streamlets, 1);
    EXPECT_TRUE(broker_->AddStream(name, info).ok());
    for (StreamletId sl = 0; sl < streamlets; ++sl) {
      EXPECT_TRUE(broker_->AddStreamlet(info.stream, sl).ok());
    }
    return info;
  }

  rpc::ProduceResponse ProduceOne(const rpc::StreamInfo& info,
                                  StreamletId streamlet, ChunkSeq seq) {
    rpc::ProduceRequest req;
    req.producer = 1;
    req.stream = info.stream;
    auto chunk = MakeChunk(info.stream, streamlet, 1, seq);
    req.chunks = {chunk};
    return broker_->HandleProduce(req);
  }

  rpc::ConsumeResponse ConsumeOne(const rpc::StreamInfo& info,
                                  StreamletId streamlet) {
    rpc::ConsumeRequest req;
    req.stream = info.stream;
    req.entries = {{.streamlet = streamlet, .group = 0, .start_chunk = 0,
                    .max_chunks = 10}};
    return broker_->HandleConsume(req);
  }

  rpc::DirectNetwork net_;
  std::unique_ptr<Broker> broker_;
  StreamId next_stream_ = 1;
};

// Single-streamlet produce and consume requests for streamlet S are
// accounted to shard(S) = S % shards and never touch the other shard:
// the per-shard frame counters split exactly by streamlet parity and no
// cross-shard chunk or op is counted beyond the setup baseline.
TEST_F(ShardedBrokerTest, FramesForStreamletLandOnItsShard) {
  auto info = MakeStream("s", 4);
  const auto base = broker_->GetStats();
  ASSERT_EQ(base.shard_frames.size(), 2u);

  // 3 produces per streamlet, then one consume per streamlet. Streamlets
  // 0,2 -> shard 0; 1,3 -> shard 1.
  for (StreamletId sl = 0; sl < 4; ++sl) {
    for (ChunkSeq seq = 1; seq <= 3; ++seq) {
      ASSERT_EQ(ProduceOne(info, sl, seq).status, StatusCode::kOk);
    }
  }
  for (StreamletId sl = 0; sl < 4; ++sl) {
    auto resp = ConsumeOne(info, sl);
    ASSERT_EQ(resp.status, StatusCode::kOk);
    ASSERT_EQ(resp.entries.size(), 1u);
    EXPECT_EQ(resp.entries[0].chunks.size(), 3u);
  }

  const auto stats = broker_->GetStats();
  ASSERT_EQ(stats.shard_frames.size(), 2u);
  // (3 produces + 1 consume) x 2 streamlets per shard.
  EXPECT_EQ(stats.shard_frames[0] - base.shard_frames[0], 8u);
  EXPECT_EQ(stats.shard_frames[1] - base.shard_frames[1], 8u);
  // Single-streamlet traffic is entirely shard-local.
  EXPECT_EQ(stats.cross_shard_ops, base.cross_shard_ops);
  EXPECT_EQ(stats.shard_mailbox_enqueues, base.shard_mailbox_enqueues);
}

// A produce batching chunks for streamlets on different shards is homed
// on the first chunk's shard; every chunk for the other shard is counted
// as one cross-shard op (the append itself stays correct — per-shard
// locks protect it regardless of which shard's frame carries it).
TEST_F(ShardedBrokerTest, MixedBatchCountsCrossShardChunks) {
  auto info = MakeStream("s", 2);
  const auto base = broker_->GetStats();

  rpc::ProduceRequest req;
  req.producer = 1;
  req.stream = info.stream;
  auto c0 = MakeChunk(info.stream, 0, 1, 1);
  auto c1 = MakeChunk(info.stream, 1, 1, 1);
  req.chunks = {c0, c1};
  auto resp = broker_->HandleProduce(req);
  ASSERT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.appended, 2u);

  const auto stats = broker_->GetStats();
  // Home shard is streamlet 0's shard; the streamlet-1 chunk crossed.
  EXPECT_EQ(stats.shard_frames[0] - base.shard_frames[0], 1u);
  EXPECT_EQ(stats.shard_frames[1] - base.shard_frames[1], 0u);
  EXPECT_EQ(stats.cross_shard_ops - base.cross_shard_ops, 1u);

  // Both chunks are consumable from their own shards.
  for (StreamletId sl = 0; sl < 2; ++sl) {
    auto cresp = ConsumeOne(info, sl);
    ASSERT_EQ(cresp.status, StatusCode::kOk);
    ASSERT_EQ(cresp.entries.size(), 1u);
    EXPECT_EQ(cresp.entries[0].chunks.size(), 1u);
  }
}

// Leadership migration re-homes through the owning shard's mailbox
// exactly once per transition: drop posts one op, re-add posts one op,
// and the leadership change is observable (produce rejected while
// dropped, accepted after re-add, dedup intact).
TEST_F(ShardedBrokerTest, LeadershipMigrationRehomesExactlyOnce) {
  auto info = MakeStream("s", 2);
  ASSERT_EQ(ProduceOne(info, 1, 1).status, StatusCode::kOk);

  const auto base = broker_->GetStats();
  ASSERT_TRUE(broker_->DropStreamletLeadership(info.stream, 1).ok());
  auto after_drop = broker_->GetStats();
  EXPECT_EQ(after_drop.cross_shard_ops - base.cross_shard_ops, 1u);
  EXPECT_EQ(after_drop.shard_mailbox_enqueues - base.shard_mailbox_enqueues,
            1u);
  EXPECT_EQ(ProduceOne(info, 1, 2).status, StatusCode::kNotLeader);

  ASSERT_TRUE(broker_->AddStreamlet(info.stream, 1).ok());
  auto after_add = broker_->GetStats();
  EXPECT_EQ(after_add.cross_shard_ops - after_drop.cross_shard_ops, 1u);
  EXPECT_EQ(after_add.shard_mailbox_enqueues -
                after_drop.shard_mailbox_enqueues,
            1u);
  ASSERT_EQ(ProduceOne(info, 1, 2).status, StatusCode::kOk);
  // The dedup record survived the migration: the old seq is a duplicate.
  auto dup = ProduceOne(info, 1, 1);
  EXPECT_EQ(dup.status, StatusCode::kOk);
  EXPECT_EQ(dup.duplicates, 1u);
}

// With shards == 1 the shared-nothing machinery must be invisible: one
// frame counter, no mailbox traffic, no cross-shard ops — the exact
// pre-sharding behavior.
TEST_F(BrokerTest, SingleShardKeepsLegacyCountersSilent) {
  auto info = MakeStream("s", 4, 1, 1, rpc::VlogPolicy::kSharedPerBroker);
  for (StreamletId sl = 0; sl < 4; ++sl) {
    rpc::ProduceRequest req;
    req.producer = 1;
    req.stream = info.stream;
    auto chunk = MakeChunk(info.stream, sl, 1, 1);
    req.chunks = {chunk};
    ASSERT_EQ(broker_->HandleProduce(req).status, StatusCode::kOk);
  }
  auto stats = broker_->GetStats();
  ASSERT_EQ(stats.shard_frames.size(), 1u);
  EXPECT_EQ(stats.shard_frames[0], 4u);
  EXPECT_EQ(stats.cross_shard_ops, 0u);
  EXPECT_EQ(stats.shard_mailbox_enqueues, 0u);
}

TEST_F(BrokerTest, FramedProduceConsumeDispatch) {
  auto info = MakeStream("s", 1, 1, 2, rpc::VlogPolicy::kSharedPerBroker);
  rpc::ProduceRequest req;
  req.stream = info.stream;
  auto chunk = MakeChunk(info.stream, 0, 1, 1);
  req.chunks = {chunk};
  rpc::Writer body;
  req.Encode(body);
  auto raw = broker_->HandleRpc(rpc::Frame(rpc::Opcode::kProduce, body));
  rpc::Reader r(raw);
  auto resp = rpc::ProduceResponse::Decode(r);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->appended, 1u);
}

}  // namespace
}  // namespace kera
