// Unit tests for the virtual log: virtual segments, shared replication
// batching, durability propagation into physical storage, ordering.
#include <gtest/gtest.h>

#include <string_view>

#include "common/crc32c.h"
#include "storage/group.h"
#include "storage/memory_manager.h"
#include "vlog/virtual_log.h"
#include "vlog/virtual_segment.h"
#include "wire/chunk.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Appends a chunk to `group` and returns its ChunkRef, mimicking the
/// broker's ingest path.
ChunkRef AppendAndRef(Group& group, StreamId stream, StreamletId streamlet,
                      ProducerId producer, ChunkSeq seq) {
  ChunkBuilder b(1024);
  b.Start(stream, streamlet, producer);
  EXPECT_TRUE(b.AppendValue(AsBytes("virtual-log-payload")));
  auto bytes = b.Seal(seq);
  auto r = group.AppendChunk(bytes);
  EXPECT_TRUE(r.ok());
  auto view = ChunkView::Parse(
      r->segment->Bytes(r->offset, r->length));
  ChunkRef ref;
  ref.loc = *r;
  ref.group = &group;
  ref.stream = stream;
  ref.streamlet = streamlet;
  ref.payload_checksum = view->payload_checksum();
  return ref;
}

class VirtualSegmentTest : public ::testing::Test {
 protected:
  MemoryManager mm_{1 << 20, 64 << 10};
  Group group_{mm_, 1, 0, 0, 4};
};

TEST_F(VirtualSegmentTest, VirtualSpaceAccounting) {
  ChunkRef ref = AppendAndRef(group_, 1, 0, 1, 1);
  // Virtual capacity of exactly two chunks.
  VirtualSegment vseg(0, /*capacity=*/size_t(ref.loc.length) * 2, {2, 3});
  EXPECT_TRUE(vseg.TryAppend(ref));
  EXPECT_EQ(vseg.header(), ref.loc.length);
  EXPECT_TRUE(vseg.TryAppend(ref));
  // Third append exceeds the virtual capacity.
  EXPECT_FALSE(vseg.TryAppend(ref));
  EXPECT_EQ(vseg.ref_count(), 2u);
}

TEST_F(VirtualSegmentTest, OversizeChunkAllowedWhenEmpty) {
  VirtualSegment vseg(0, /*capacity=*/10, {});
  ChunkRef ref = AppendAndRef(group_, 1, 0, 1, 1);
  // A chunk larger than the virtual capacity still lands in an empty
  // segment (mirrors physical log behavior for oversized entries).
  EXPECT_TRUE(vseg.TryAppend(ref));
  EXPECT_FALSE(vseg.TryAppend(ref));
}

TEST_F(VirtualSegmentTest, ChecksumCoversChunkChecksumsInOrder) {
  VirtualSegment vseg(0, 1 << 20, {});
  ChunkRef a = AppendAndRef(group_, 1, 0, 1, 1);
  ChunkRef b = AppendAndRef(group_, 1, 0, 1, 2);
  ASSERT_TRUE(vseg.TryAppend(a));
  uint32_t after_one = vseg.running_checksum();
  ASSERT_TRUE(vseg.TryAppend(b));
  uint32_t expected = Crc32c(&a.payload_checksum, 4);
  expected = Crc32c(&b.payload_checksum, 4, expected);
  EXPECT_EQ(vseg.running_checksum(), expected);
  EXPECT_EQ(vseg.ChecksumUpTo(1), after_one);
  EXPECT_EQ(vseg.ChecksumUpTo(2), expected);
  EXPECT_EQ(vseg.ChecksumUpTo(0), 0u);
}

TEST_F(VirtualSegmentTest, MarkReplicatedPropagatesDurability) {
  VirtualSegment vseg(0, 1 << 20, {});
  ChunkRef a = AppendAndRef(group_, 1, 0, 1, 1);
  ChunkRef b = AppendAndRef(group_, 1, 0, 1, 2);
  ASSERT_TRUE(vseg.TryAppend(a));
  ASSERT_TRUE(vseg.TryAppend(b));
  EXPECT_EQ(group_.durable_chunk_count(), 0u);
  EXPECT_EQ(a.loc.segment->durable_head(), kSegmentHeaderSize);

  vseg.MarkReplicatedUpTo(1);
  EXPECT_EQ(vseg.durable_header(), a.loc.length);
  EXPECT_EQ(group_.durable_chunk_count(), 1u);
  EXPECT_EQ(a.loc.segment->durable_head(), a.loc.offset + a.loc.length);

  vseg.MarkReplicatedUpTo(2);
  EXPECT_EQ(group_.durable_chunk_count(), 2u);
  EXPECT_TRUE(vseg.durable_header() == vseg.header());
}

TEST_F(VirtualSegmentTest, FullyReplicatedNeedsCloseAndSeal) {
  VirtualSegment vseg(0, 1 << 20, {});
  ChunkRef a = AppendAndRef(group_, 1, 0, 1, 1);
  ASSERT_TRUE(vseg.TryAppend(a));
  vseg.MarkReplicatedUpTo(1);
  EXPECT_FALSE(vseg.fully_replicated());  // still open
  vseg.Close();
  EXPECT_FALSE(vseg.fully_replicated());  // backups not yet told it sealed
  vseg.set_seal_replicated();
  EXPECT_TRUE(vseg.fully_replicated());
}


class VirtualLogTest : public ::testing::Test {
 protected:
  VirtualLogTest() {
    config_.virtual_segment_capacity = 1 << 20;
    config_.replication_factor = 3;
    config_.max_batch_bytes = 1 << 20;
  }
  VirtualLog MakeLog() {
    return VirtualLog(7, config_, [this](VirtualSegmentId vseg) {
      selector_calls_.push_back(vseg);
      // Rotate two backups out of {10, 11, 12}.
      std::vector<NodeId> all{10, 11, 12};
      std::vector<NodeId> picked;
      for (size_t i = 0; i < 2; ++i) {
        picked.push_back(all[(size_t(vseg) + i) % all.size()]);
      }
      return picked;
    });
  }

  MemoryManager mm_{4 << 20, 64 << 10};
  Group group_{mm_, 1, 0, 0, 8};
  VirtualLogConfig config_;
  std::vector<VirtualSegmentId> selector_calls_;
};

TEST_F(VirtualLogTest, AppendThenPollProducesOrderedBatch) {
  VirtualLog log = MakeLog();
  ChunkRef a = AppendAndRef(group_, 1, 0, 1, 1);
  ChunkRef b = AppendAndRef(group_, 1, 0, 1, 2);
  auto pa = log.Append(a);
  auto pb = log.Append(b);
  EXPECT_EQ(pa.vseg, pb.vseg);
  EXPECT_EQ(pa.ref_index, 0u);
  EXPECT_EQ(pb.ref_index, 1u);
  EXPECT_FALSE(log.IsDurable(pa));

  auto batch = log.Poll();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->refs.size(), 2u);
  EXPECT_EQ(batch->start_ref, 0u);
  EXPECT_EQ(batch->start_offset, 0u);
  EXPECT_EQ(batch->bytes, size_t(a.loc.length) + b.loc.length);
  EXPECT_EQ(batch->backups.size(), 2u);

  // Only one batch in flight at a time.
  EXPECT_FALSE(log.Poll().has_value());

  log.Complete(*batch);
  EXPECT_TRUE(log.IsDurable(pa));
  EXPECT_TRUE(log.IsDurable(pb));
  EXPECT_EQ(group_.durable_chunk_count(), 2u);
  EXPECT_FALSE(log.Poll().has_value());  // nothing left
}

TEST_F(VirtualLogTest, ReplicationFactorOneIsImmediatelyDurable) {
  config_.replication_factor = 1;
  VirtualLog log(0, config_, [](VirtualSegmentId) {
    return std::vector<NodeId>{};
  });
  ChunkRef a = AppendAndRef(group_, 1, 0, 1, 1);
  auto pos = log.Append(a);
  EXPECT_TRUE(log.IsDurable(pos));
  EXPECT_EQ(group_.durable_chunk_count(), 1u);
  EXPECT_FALSE(log.Poll().has_value());
  EXPECT_FALSE(log.HasWork());
}

TEST_F(VirtualLogTest, BatchBytesCapped) {
  config_.max_batch_bytes = 200;  // forces one chunk per batch (~103 B each)
  VirtualLog log = MakeLog();
  for (ChunkSeq s = 1; s <= 3; ++s) {
    log.Append(AppendAndRef(group_, 1, 0, 1, s));
  }
  auto b1 = log.Poll();
  ASSERT_TRUE(b1.has_value());
  EXPECT_LE(b1->bytes, 200u + b1->refs[0].loc.length);
  size_t total = b1->refs.size();
  log.Complete(*b1);
  while (auto b = log.Poll()) {
    EXPECT_EQ(b->start_offset, log.Segments()[0]->durable_header());
    total += b->refs.size();
    log.Complete(*b);
  }
  EXPECT_EQ(total, 3u);
}

TEST_F(VirtualLogTest, SegmentRolloverPicksFreshBackups) {
  config_.virtual_segment_capacity = 150;  // ~1 chunk per virtual segment
  VirtualLog log = MakeLog();
  auto p1 = log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  auto p2 = log.Append(AppendAndRef(group_, 1, 0, 1, 2));
  EXPECT_NE(p1.vseg, p2.vseg);
  EXPECT_EQ(selector_calls_.size(), 2u);
  auto segs = log.Segments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_TRUE(segs[0]->closed());
  EXPECT_FALSE(segs[1]->closed());
  EXPECT_NE(segs[0]->backups(), segs[1]->backups());
}

TEST_F(VirtualLogTest, EmptySealBatchEmittedForLateClosedSegment) {
  // A segment whose data is fully replicated BEFORE it closes still owes
  // the backups a seal notification; Poll must emit an empty seal batch.
  config_.virtual_segment_capacity = 150;  // ~1 chunk per virtual segment
  VirtualLog log = MakeLog();
  log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  auto b1 = log.Poll();  // replicate chunk 1 while its segment is open
  ASSERT_TRUE(b1.has_value());
  EXPECT_FALSE(b1->seals_segment);
  log.Complete(*b1);
  // Appending chunk 2 closes segment 0 (already fully replicated).
  log.Append(AppendAndRef(group_, 1, 0, 1, 2));
  auto b2 = log.Poll();  // data batch for segment 1 comes first
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->vseg, 1u);
  log.Complete(*b2);
  auto b3 = log.Poll();  // then the empty seal batch for segment 0
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(b3->vseg, 0u);
  EXPECT_TRUE(b3->seals_segment);
  EXPECT_TRUE(b3->refs.empty());
  EXPECT_EQ(b3->bytes, 0u);
  log.Complete(*b3);
  EXPECT_TRUE(log.Segments()[0]->fully_replicated());
  EXPECT_FALSE(log.Poll().has_value());
}

TEST_F(VirtualLogTest, SealsSegmentFlagOnFinalBatch) {
  config_.virtual_segment_capacity = 150;
  VirtualLog log = MakeLog();
  log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  log.Append(AppendAndRef(group_, 1, 0, 1, 2));  // rolls; seg0 closed
  auto b1 = log.Poll();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->vseg, 0u);
  EXPECT_TRUE(b1->seals_segment);
  log.Complete(*b1);
  auto b2 = log.Poll();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->vseg, 1u);
  EXPECT_FALSE(b2->seals_segment);  // open segment, more may come
  log.Complete(*b2);
}

TEST_F(VirtualLogTest, AbortAllowsRetry) {
  VirtualLog log = MakeLog();
  auto pos = log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  auto b1 = log.Poll();
  ASSERT_TRUE(b1.has_value());
  log.Abort(*b1);
  EXPECT_FALSE(log.IsDurable(pos));
  auto b2 = log.Poll();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->start_ref, b1->start_ref);
  EXPECT_EQ(b2->refs.size(), b1->refs.size());
  log.Complete(*b2);
  EXPECT_TRUE(log.IsDurable(pos));
}

TEST_F(VirtualLogTest, WindowedPollIssuesConcurrentBatches) {
  config_.replication_window = 3;
  config_.max_batch_bytes = 1;  // one chunk per batch
  VirtualLog log = MakeLog();
  auto p1 = log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  auto p2 = log.Append(AppendAndRef(group_, 1, 0, 1, 2));
  auto p3 = log.Append(AppendAndRef(group_, 1, 0, 1, 3));

  auto b1 = log.Poll();
  auto b2 = log.Poll();
  auto b3 = log.Poll();
  ASSERT_TRUE(b1 && b2 && b3);
  // Ordered issue: consecutive ranges, strictly increasing offsets.
  EXPECT_EQ(b1->start_ref, 0u);
  EXPECT_EQ(b2->start_ref, 1u);
  EXPECT_EQ(b3->start_ref, 2u);
  EXPECT_EQ(b2->start_offset, b1->start_offset + b1->bytes);
  EXPECT_EQ(b3->start_offset, b2->start_offset + b2->bytes);
  // Window full: nothing further issues.
  EXPECT_FALSE(log.Poll().has_value());
  EXPECT_FALSE(log.HasWork());

  // Out-of-order completion: the durable prefix never skips ahead.
  log.Complete(*b3);
  EXPECT_FALSE(log.IsDurable(p1));
  EXPECT_FALSE(log.IsDurable(p3));
  log.Complete(*b1);
  EXPECT_TRUE(log.IsDurable(p1));
  EXPECT_FALSE(log.IsDurable(p2));  // b2 still in flight
  EXPECT_FALSE(log.IsDurable(p3));  // b3 done but behind b2
  log.Complete(*b2);
  EXPECT_TRUE(log.IsDurable(p2));
  EXPECT_TRUE(log.IsDurable(p3));
  EXPECT_EQ(group_.durable_chunk_count(), 3u);
  EXPECT_EQ(log.GetStats().max_inflight_batches, 3u);
}

TEST_F(VirtualLogTest, WindowedAbortRequeuesSuffix) {
  config_.replication_window = 3;
  config_.max_batch_bytes = 1;
  VirtualLog log = MakeLog();
  auto p1 = log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  auto p2 = log.Append(AppendAndRef(group_, 1, 0, 1, 2));
  auto p3 = log.Append(AppendAndRef(group_, 1, 0, 1, 3));
  auto b1 = log.Poll();
  auto b2 = log.Poll();
  auto b3 = log.Poll();
  ASSERT_TRUE(b1 && b2 && b3);

  log.Complete(*b3);  // completes out of order, stays pending behind b2
  log.Abort(*b2);     // drops b2 AND the already-completed b3
  log.Complete(*b1);
  EXPECT_TRUE(log.IsDurable(p1));
  EXPECT_FALSE(log.IsDurable(p2));
  EXPECT_FALSE(log.IsDurable(p3));

  // The aborted suffix is re-issued from b2's position.
  auto r2 = log.Poll();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->start_ref, b2->start_ref);
  EXPECT_EQ(r2->start_offset, b2->start_offset);
  auto r3 = log.Poll();
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->start_ref, b3->start_ref);

  // A late ack for the aborted generation of b3 is a stale no-op.
  log.Complete(*b3);
  EXPECT_FALSE(log.IsDurable(p3));

  log.Complete(*r2);
  log.Complete(*r3);
  EXPECT_TRUE(log.IsDurable(p2));
  EXPECT_TRUE(log.IsDurable(p3));
  EXPECT_EQ(group_.durable_chunk_count(), 3u);
}

TEST_F(VirtualLogTest, WindowedSealWaitsForInflightData) {
  // The empty seal batch for a late-closed segment must not issue while
  // that segment still has a data batch in flight.
  config_.replication_window = 4;
  config_.virtual_segment_capacity = 150;  // ~1 chunk per virtual segment
  VirtualLog log = MakeLog();
  log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  auto b1 = log.Poll();  // seg0 data, segment still open
  ASSERT_TRUE(b1.has_value());
  EXPECT_FALSE(b1->seals_segment);
  log.Append(AppendAndRef(group_, 1, 0, 1, 2));  // rolls; seg0 closed
  auto b2 = log.Poll();  // seg1 data
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->vseg, 1u);
  // Window has room, but seg0's seal is gated on b1 completing.
  EXPECT_FALSE(log.Poll().has_value());
  log.Complete(*b1);
  auto b3 = log.Poll();
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(b3->vseg, 0u);
  EXPECT_TRUE(b3->seals_segment);
  EXPECT_TRUE(b3->refs.empty());
  log.Complete(*b3);
  log.Complete(*b2);
  EXPECT_TRUE(log.Segments()[0]->fully_replicated());
  EXPECT_FALSE(log.Poll().has_value());
}

TEST_F(VirtualLogTest, SharedAcrossGroupsPreservesPerGroupOrder) {
  // Two groups (different streamlets) share one vlog; replication must
  // advance each group's durable prefix in its own append order.
  Group group_b(mm_, 2, 1, 0, 8);
  VirtualLog log = MakeLog();
  log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  log.Append(AppendAndRef(group_b, 2, 1, 1, 1));
  log.Append(AppendAndRef(group_, 1, 0, 1, 2));
  log.Append(AppendAndRef(group_b, 2, 1, 1, 2));

  auto batch = log.Poll();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->refs.size(), 4u);
  // Interleaved ordering preserved in the batch.
  EXPECT_EQ(batch->refs[0].stream, 1u);
  EXPECT_EQ(batch->refs[1].stream, 2u);
  log.Complete(*batch);
  EXPECT_EQ(group_.durable_chunk_count(), 2u);
  EXPECT_EQ(group_b.durable_chunk_count(), 2u);
}

TEST_F(VirtualLogTest, StatsTrackAppendsAndBatches) {
  VirtualLog log = MakeLog();
  for (ChunkSeq s = 1; s <= 5; ++s) {
    log.Append(AppendAndRef(group_, 1, 0, 1, s));
  }
  auto batch = log.Poll();
  log.Complete(*batch);
  auto stats = log.GetStats();
  EXPECT_EQ(stats.chunks_appended, 5u);
  EXPECT_EQ(stats.batches_issued, 1u);
  EXPECT_GT(stats.bytes_appended, 0u);
  EXPECT_EQ(stats.bytes_replicated, stats.bytes_appended);
}

TEST_F(VirtualLogTest, TrimDropsFullyReplicatedSegments) {
  config_.virtual_segment_capacity = 150;
  VirtualLog log = MakeLog();
  for (ChunkSeq s = 1; s <= 4; ++s) {
    log.Append(AppendAndRef(group_, 1, 0, 1, s));
  }
  while (auto b = log.Poll()) log.Complete(*b);
  EXPECT_EQ(log.Segments().size(), 4u);
  size_t trimmed = log.TrimReplicatedSegments();
  EXPECT_EQ(trimmed, 3u);       // open segment is retained
  EXPECT_EQ(log.Segments().size(), 1u);
}

TEST_F(VirtualLogTest, WaitDurableReturnsForTrimmedSegments) {
  config_.virtual_segment_capacity = 150;
  VirtualLog log = MakeLog();
  auto pos = log.Append(AppendAndRef(group_, 1, 0, 1, 1));
  log.Append(AppendAndRef(group_, 1, 0, 1, 2));
  while (auto b = log.Poll()) log.Complete(*b);
  log.TrimReplicatedSegments();
  EXPECT_TRUE(log.IsDurable(pos));
  log.WaitDurable(pos);  // must not hang
}

}  // namespace
}  // namespace kera
