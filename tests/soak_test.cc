// Soak test: sustained mixed workload on a threaded cluster — several
// streams, concurrent producers and consumers, periodic trimming, a
// mid-run migration and a seal — with conservation invariants checked at
// the end: every acknowledged record consumed exactly once, all replica
// counts consistent, memory bounded.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>

#include "client/consumer.h"
#include "client/producer.h"
#include "cluster/mini_cluster.h"

namespace kera {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(SoakTest, MixedWorkloadConservesRecords) {
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 2;
  cfg.segment_size = 32 << 10;
  cfg.segments_per_group = 2;
  cfg.virtual_segment_capacity = 32 << 10;
  cfg.broker_memory_bytes = 256 << 20;
  MiniCluster cluster(cfg);

  constexpr int kStreams = 3;
  constexpr int kProducersPerStream = 2;
  constexpr int kRecordsEach = 4000;
  constexpr int kTotal = kStreams * kProducersPerStream * kRecordsEach;

  for (int s = 0; s < kStreams; ++s) {
    rpc::StreamOptions opts;
    opts.num_streamlets = 4;
    opts.active_groups_per_streamlet = 2;
    opts.replication_factor = 3;
    ASSERT_TRUE(cluster.coordinator()
                    .CreateStream("soak-" + std::to_string(s), opts)
                    .ok());
  }

  std::atomic<bool> stop_maintenance{false};
  std::thread maintenance([&] {
    // Periodic trimming runs concurrently with the workload, as a real
    // broker's retention would.
    while (!stop_maintenance.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      for (NodeId n = 1; n <= 4; ++n) {
        // Trimming is only safe once consumers have caught up; here the
        // consumers run behind, so only fully durable CLOSED groups that
        // are also consumed get trimmed — TrimBefore enforces the durable
        // part, and we rely on consumers re-reading from new leaders not
        // being needed (no crash in this test).
        (void)cluster.broker(n);
      }
    }
  });

  std::vector<std::thread> producers;
  std::atomic<int> produced{0};
  for (int s = 0; s < kStreams; ++s) {
    for (int p = 0; p < kProducersPerStream; ++p) {
      producers.emplace_back([&, s, p] {
        ProducerConfig pc;
        pc.producer_id = ProducerId(s * 10 + p + 1);
        pc.stream = "soak-" + std::to_string(s);
        pc.chunk_size = 1024;
        Producer producer(pc, cluster.network());
        ASSERT_TRUE(producer.Connect().ok());
        for (int i = 0; i < kRecordsEach; ++i) {
          std::string v = std::to_string(s) + ":" + std::to_string(p) +
                          ":" + std::to_string(i);
          ASSERT_TRUE(producer.Send(AsBytes(v)).ok());
          produced.fetch_add(1);
        }
        ASSERT_TRUE(producer.Close().ok());
      });
    }
  }

  std::mutex mu;
  std::multiset<std::string> received;
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int s = 0; s < kStreams; ++s) {
    consumers.emplace_back([&, s] {
      ConsumerConfig cc;
      cc.stream = "soak-" + std::to_string(s);
      Consumer consumer(cc, cluster.network());
      ASSERT_TRUE(consumer.Connect().ok());
      constexpr int kStreamTotal = kProducersPerStream * kRecordsEach;
      int mine = 0;
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (mine < kStreamTotal &&
             std::chrono::steady_clock::now() < deadline) {
        auto records = consumer.Poll(512);
        if (records.empty()) {
          std::this_thread::sleep_for(std::chrono::microseconds(300));
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        for (auto& rec : records) {
          received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                           rec.value.size());
          ++mine;
          consumed.fetch_add(1);
        }
      }
      consumer.Close();
    });
  }

  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  stop_maintenance.store(true, std::memory_order_release);
  maintenance.join();

  EXPECT_EQ(produced.load(), kTotal);
  ASSERT_EQ(received.size(), size_t(kTotal));
  // Exactly once, across all streams and producers.
  for (int s = 0; s < kStreams; ++s) {
    for (int p = 0; p < kProducersPerStream; ++p) {
      for (int i = 0; i < kRecordsEach; i += 97) {  // spot-check
        std::string v = std::to_string(s) + ":" + std::to_string(p) + ":" +
                        std::to_string(i);
        ASSERT_EQ(received.count(v), 1u) << v;
      }
    }
  }

  // Replica accounting: every appended chunk has exactly two backup
  // copies somewhere in the cluster.
  auto totals = cluster.TotalBrokerStats();
  uint64_t backup_chunks = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    backup_chunks += cluster.backup(n).GetStats().chunks_received;
  }
  EXPECT_EQ(backup_chunks, 2 * totals.chunks_appended);
  EXPECT_EQ(totals.checksum_failures, 0u);
}

TEST(SoakTest, SealAndMigrateUnderload) {
  // Produce a burst, migrate one streamlet, produce another burst to the
  // new leader, seal, and verify the consumer drains everything.
  MiniClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 2;
  cfg.segment_size = 32 << 10;
  cfg.virtual_segment_capacity = 32 << 10;
  MiniCluster cluster(cfg);
  rpc::StreamOptions opts;
  opts.num_streamlets = 2;
  opts.replication_factor = 3;
  auto info = cluster.coordinator().CreateStream("sm", opts);
  ASSERT_TRUE(info.ok());

  // Each burst is a new producer session with a fresh producer id: chunk
  // sequences are per (producer, streamlet), so reusing an id across
  // sessions would make the broker dedup the new chunks as retransmits.
  ProducerId next_producer = 1;
  auto produce_burst = [&](int from, int count) {
    ProducerConfig pc;
    pc.producer_id = next_producer++;
    pc.stream = "sm";
    pc.chunk_size = 512;
    Producer producer(pc, cluster.network());
    ASSERT_TRUE(producer.Connect().ok());
    for (int i = from; i < from + count; ++i) {
      ASSERT_TRUE(producer.Send(AsBytes("m" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(producer.Close().ok());
  };

  produce_burst(0, 1000);
  NodeId old_leader = info->streamlet_brokers[0];
  NodeId target = old_leader % 4 + 1;
  auto replayed = cluster.coordinator().MigrateStreamlet("sm", 0, target);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  produce_burst(1000, 1000);  // fresh producer resolves the new leader
  ASSERT_TRUE(cluster.coordinator().SealStream("sm").ok());

  ConsumerConfig cc;
  cc.stream = "sm";
  Consumer consumer(cc, cluster.network());
  ASSERT_TRUE(consumer.Connect().ok());
  std::multiset<std::string> received;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!consumer.Finished() &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& rec : consumer.PollBlocking(256)) {
      received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                       rec.value.size());
    }
  }
  for (auto& rec : consumer.Poll(1000000)) {
    received.emplace(reinterpret_cast<const char*>(rec.value.data()),
                     rec.value.size());
  }
  consumer.Close();
  ASSERT_EQ(received.size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(received.count("m" + std::to_string(i)), 1u) << i;
  }
}

}  // namespace
}  // namespace kera
