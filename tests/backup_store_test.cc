// Tests for the log-structured backup store (SegmentLog) and the
// Backup service's cold-restart path on top of it: round-trip and file
// rollover, the torn-write property (every record-boundary cut of the
// log recovers exactly the durable prefix), corrupt-record rejection,
// group-commit coalescing, hot-cold GC, and sticky IO errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "backup/backup.h"
#include "storage/segment_log.h"
#include "common/crc32c.h"
#include "wire/chunk.h"

namespace kera {
namespace {

namespace fs = std::filesystem;

using CopyKey = SegmentLog::CopyKey;
using RecordType = SegmentLog::RecordType;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::byte> Pattern(size_t len, uint32_t seed) {
  std::vector<std::byte> out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = std::byte(uint8_t((seed * 131u + i * 7u) & 0xFF));
  }
  return out;
}

/// One scripted log record; the torn-write test replays prefixes of a
/// script into reference logs and compares against torn-scan recovery.
struct Rec {
  RecordType type = RecordType::kOpen;
  CopyKey key;
  uint64_t offset = 0;
  uint32_t chunks = 0;
  uint32_t crc = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] uint64_t size() const {
    return SegmentLog::kRecordHeaderSize + payload.size();
  }
};

void EnqueueRec(SegmentLog& log, const Rec& r) {
  switch (r.type) {
    case RecordType::kOpen:
      log.EnqueueOpen(r.key);
      break;
    case RecordType::kAppend:
      log.EnqueueAppend(r.key, r.offset, r.payload, r.chunks, r.crc);
      break;
    case RecordType::kSeal:
      log.EnqueueSeal(r.key, r.offset, r.chunks, r.crc);
      break;
    case RecordType::kTruncate:
      log.EnqueueTruncate(r.key, r.offset, r.chunks, r.crc);
      break;
    case RecordType::kEvacuate:
      log.EnqueueEvacuate(r.key);
      break;
  }
}

/// Recovered copies sorted by key, for order-insensitive comparison.
std::vector<SegmentLog::RecoveredCopy> Snapshot(const SegmentLog& log) {
  auto copies = log.RecoveredCopies();
  std::sort(copies.begin(), copies.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return copies;
}

void ExpectSameCopies(const std::vector<SegmentLog::RecoveredCopy>& got,
                      const std::vector<SegmentLog::RecoveredCopy>& want,
                      const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << context << " copy " << i;
    EXPECT_EQ(got[i].size, want[i].size) << context << " copy " << i;
    EXPECT_EQ(got[i].chunk_count, want[i].chunk_count)
        << context << " copy " << i;
    EXPECT_EQ(got[i].running_checksum, want[i].running_checksum)
        << context << " copy " << i;
    EXPECT_EQ(got[i].sealed, want[i].sealed) << context << " copy " << i;
  }
}

TEST(SegmentLogTest, RoundTripRolloverAndRestart) {
  std::string dir = FreshDir("kera_seglog_roundtrip");
  SegmentLogOptions opts;
  opts.log_file_bytes = 8 << 10;  // force rollover with ~1 KiB payloads
  opts.gc_live_ratio = 0;

  const int kCopies = 4;
  const int kAppendsPerCopy = 3;
  const size_t kLen = 1024;
  std::vector<std::vector<std::byte>> expect(kCopies);
  {
    SegmentLog log(dir, opts);
    for (int c = 0; c < kCopies; ++c) {
      CopyKey key{NodeId(1), VlogId(0), VirtualSegmentId(100 + c)};
      log.EnqueueOpen(key);
      uint64_t off = 0;
      for (int a = 0; a < kAppendsPerCopy; ++a) {
        auto payload = Pattern(kLen, uint32_t(c * 16 + a));
        log.EnqueueAppend(key, off, payload, 1, uint32_t(c * 100 + a));
        expect[c].insert(expect[c].end(), payload.begin(), payload.end());
        off += payload.size();
      }
      log.EnqueueSeal(key, off, kAppendsPerCopy, uint32_t(c * 100 + 99));
    }
    ASSERT_TRUE(log.Sync().ok());

    auto stats = log.GetStats();
    EXPECT_GT(stats.log_files, 1u) << "expected rollover across files";
    EXPECT_EQ(stats.records_flushed,
              uint64_t(kCopies * (kAppendsPerCopy + 2)));
    EXPECT_EQ(stats.seals_durable, uint64_t(kCopies));

    for (int c = 0; c < kCopies; ++c) {
      CopyKey key{NodeId(1), VlogId(0), VirtualSegmentId(100 + c)};
      std::vector<std::byte> out;
      ASSERT_TRUE(log.ReadSegment(key, out).ok());
      EXPECT_EQ(out, expect[c]) << "copy " << c;
    }
  }

  // Cold restart: the copy map comes back from the log alone, and every
  // payload still reads byte-exact.
  SegmentLog log(dir, opts);
  ASSERT_TRUE(log.status().ok());
  auto copies = Snapshot(log);
  ASSERT_EQ(copies.size(), size_t(kCopies));
  for (int c = 0; c < kCopies; ++c) {
    EXPECT_EQ(copies[c].key.vseg, VirtualSegmentId(100 + c));
    EXPECT_EQ(copies[c].size, uint64_t(kAppendsPerCopy * kLen));
    EXPECT_EQ(copies[c].chunk_count, uint32_t(kAppendsPerCopy));
    EXPECT_EQ(copies[c].running_checksum, uint32_t(c * 100 + 99));
    EXPECT_TRUE(copies[c].sealed);
    std::vector<std::byte> out;
    ASSERT_TRUE(log.ReadSegment(copies[c].key, out).ok());
    EXPECT_EQ(out, expect[c]) << "copy " << c << " after restart";
  }
  EXPECT_EQ(log.GetStats().restart_torn_records, 0u);
  fs::remove_all(dir);
}

/// The script exercises every record type across three copies.
std::vector<Rec> TornWriteScript() {
  CopyKey a{1, 0, 100}, b{1, 1, 200}, c{2, 0, 300};
  std::vector<Rec> script;
  script.push_back({RecordType::kOpen, a});
  script.push_back({RecordType::kAppend, a, 0, 2, 11, Pattern(300, 1)});
  script.push_back({RecordType::kAppend, a, 300, 1, 12, Pattern(111, 2)});
  script.push_back({RecordType::kOpen, b});
  script.push_back({RecordType::kAppend, b, 0, 3, 21, Pattern(222, 3)});
  script.push_back({RecordType::kSeal, a, 411, 3, 12});
  script.push_back({RecordType::kTruncate, b, 100, 1, 22});
  script.push_back({RecordType::kOpen, c});
  script.push_back({RecordType::kAppend, c, 0, 1, 31, Pattern(50, 4)});
  script.push_back({RecordType::kEvacuate, b});
  script.push_back({RecordType::kSeal, c, 50, 1, 31});
  return script;
}

TEST(SegmentLogTest, TornWriteRecoversDurablePrefixAtEveryCut) {
  auto script = TornWriteScript();

  // Reference: the copy map after exactly k records, for every k.
  std::string ref_dir = FreshDir("kera_seglog_torn_ref");
  std::vector<std::vector<SegmentLog::RecoveredCopy>> ref;
  {
    SegmentLog log(ref_dir, {});
    ref.push_back(Snapshot(log));
    for (const Rec& r : script) {
      EnqueueRec(log, r);
      ASSERT_TRUE(log.Sync().ok());
      ref.push_back(Snapshot(log));
    }
  }

  // Master log: all records in one file (default 64 MiB file size), so
  // record boundaries are the cumulative record sizes.
  std::string master = FreshDir("kera_seglog_torn_master");
  {
    SegmentLog log(master, {});
    for (const Rec& r : script) EnqueueRec(log, r);
    ASSERT_TRUE(log.Sync().ok());
  }
  std::vector<uint64_t> boundary{0};
  for (const Rec& r : script) boundary.push_back(boundary.back() + r.size());
  ASSERT_EQ(SegmentLog::TotalLogBytes(master), boundary.back());

  std::string scratch = FreshDir("kera_seglog_torn_scratch");
  auto check_cut = [&](uint64_t cut, size_t want_k, bool mid_record) {
    std::string context =
        "cut=" + std::to_string(cut) + " k=" + std::to_string(want_k);
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    fs::copy(master, scratch, fs::copy_options::recursive);
    ASSERT_TRUE(SegmentLog::TruncateLogsAt(scratch, cut).ok()) << context;

    SegmentLog log(scratch, {});
    ASSERT_TRUE(log.status().ok()) << context;
    ExpectSameCopies(Snapshot(log), ref[want_k], context);
    if (mid_record) {
      EXPECT_GE(log.GetStats().restart_torn_records, 1u) << context;
    }
    // No-corruption: every recovered copy reads back in full.
    for (const auto& r : Snapshot(log)) {
      std::vector<std::byte> out;
      ASSERT_TRUE(log.ReadSegment(r.key, out).ok()) << context;
      EXPECT_EQ(out.size(), r.size) << context;
    }
  };

  for (size_t k = 0; k < boundary.size(); ++k) {
    check_cut(boundary[k], k, /*mid_record=*/false);
    // A cut a few bytes into record k tears it: recovery must land on
    // the same durable prefix as the clean cut before it.
    if (k < script.size()) check_cut(boundary[k] + 7, k, /*mid_record=*/true);
  }

  fs::remove_all(ref_dir);
  fs::remove_all(master);
  fs::remove_all(scratch);
}

TEST(SegmentLogTest, CorruptRecordEndsTheScanThere) {
  auto script = TornWriteScript();
  std::string ref_dir = FreshDir("kera_seglog_corrupt_ref");
  std::vector<std::vector<SegmentLog::RecoveredCopy>> ref;
  {
    SegmentLog log(ref_dir, {});
    ref.push_back(Snapshot(log));
    for (const Rec& r : script) {
      EnqueueRec(log, r);
      ASSERT_TRUE(log.Sync().ok());
      ref.push_back(Snapshot(log));
    }
  }
  std::string master = FreshDir("kera_seglog_corrupt_master");
  {
    SegmentLog log(master, {});
    for (const Rec& r : script) EnqueueRec(log, r);
    ASSERT_TRUE(log.Sync().ok());
  }
  std::vector<uint64_t> boundary{0};
  for (const Rec& r : script) boundary.push_back(boundary.back() + r.size());

  std::string file;
  for (const auto& e : fs::directory_iterator(master)) {
    file = e.path().string();
  }
  ASSERT_FALSE(file.empty());

  std::string scratch = FreshDir("kera_seglog_corrupt_scratch");
  auto flip_byte_and_check = [&](size_t rec_idx, uint64_t flip_at) {
    std::string context = "flip record " + std::to_string(rec_idx);
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    fs::copy(master, scratch, fs::copy_options::recursive);
    std::string target = scratch + "/" + fs::path(file).filename().string();
    FILE* f = std::fopen(target.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << context;
    std::fseek(f, long(flip_at), SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, long(flip_at), SEEK_SET);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);

    // The scan must stop at the damaged record: everything before it is
    // recovered, everything after it (unverifiable) is dropped.
    SegmentLog log(scratch, {});
    ASSERT_TRUE(log.status().ok()) << context;
    ExpectSameCopies(Snapshot(log), ref[rec_idx], context);
    EXPECT_GE(log.GetStats().restart_torn_records, 1u) << context;
  };

  // Payload corruption (a byte inside record 4's payload)...
  flip_byte_and_check(4, boundary[4] + SegmentLog::kRecordHeaderSize + 10);
  // ...and header corruption (a byte inside record 5's header).
  flip_byte_and_check(5, boundary[5] + 20);

  fs::remove_all(ref_dir);
  fs::remove_all(master);
  fs::remove_all(scratch);
}

TEST(SegmentLogTest, GroupCommitCoalescesIntoFewFsyncs) {
  std::string dir = FreshDir("kera_seglog_group");
  SegmentLogOptions opts;
  opts.flush_interval_us = 600'000'000;  // park the timer: Sync drives it
  opts.flush_batch_bytes = size_t(1) << 30;
  opts.gc_live_ratio = 0;
  SegmentLog log(dir, opts);

  const int kRecords = 32;
  CopyKey key{1, 0, 7};
  log.EnqueueOpen(key);
  uint64_t off = 0;
  for (int i = 0; i < kRecords; ++i) {
    auto payload = Pattern(4096, uint32_t(i));
    log.EnqueueAppend(key, off, payload, 1, uint32_t(i));
    off += payload.size();
  }
  ASSERT_TRUE(log.Sync().ok());

  // One wakeup drained the whole queue: one vectored write, one file
  // fsync (plus the directory fsync for the file's creation) — not one
  // fsync per record.
  auto stats = log.GetStats();
  EXPECT_EQ(stats.records_flushed, uint64_t(kRecords + 1));
  EXPECT_LE(stats.flush_groups, 2u);
  EXPECT_LE(stats.fsyncs, 4u);
  EXPECT_EQ(log.DurableTicket(), uint64_t(kRecords + 1));

  std::vector<std::byte> out;
  ASSERT_TRUE(log.ReadSegment(key, out).ok());
  EXPECT_EQ(out.size(), size_t(kRecords) * 4096);
  fs::remove_all(dir);
}

TEST(SegmentLogTest, GcReclaimsEvacuatedFilesAndKeepsSurvivors) {
  std::string dir = FreshDir("kera_seglog_gc");
  SegmentLogOptions opts;
  opts.log_file_bytes = 4 << 10;
  opts.gc_live_ratio = 0.5;

  const int kCopies = 6;
  const size_t kLen = 1500;
  std::vector<std::vector<std::byte>> payloads(kCopies);
  uint64_t bytes_before = 0;
  {
    SegmentLog log(dir, opts);
    for (int c = 0; c < kCopies; ++c) {
      CopyKey key{NodeId(1), VlogId(0), VirtualSegmentId(c)};
      log.EnqueueOpen(key);
      payloads[c] = Pattern(kLen, uint32_t(c));
      log.EnqueueAppend(key, 0, payloads[c], 1, uint32_t(c));
    }
    ASSERT_TRUE(log.Sync().ok());
    bytes_before = log.GetStats().log_bytes;

    // Evacuate most copies: their files drop below the live threshold.
    for (int c = 0; c < kCopies - 2; ++c) {
      log.EnqueueEvacuate(CopyKey{NodeId(1), VlogId(0), VirtualSegmentId(c)});
    }
    ASSERT_TRUE(log.Sync().ok());

    uint64_t reclaimed = 0;
    for (uint64_t got; (got = log.MaybeGc()) != 0;) reclaimed += got;
    auto stats = log.GetStats();
    EXPECT_GT(stats.gc_bytes_reclaimed, 0u);
    EXPECT_GE(stats.gc_bytes_reclaimed, reclaimed);
    EXPECT_GT(stats.gc_runs, 0u);
    EXPECT_LT(stats.log_bytes, bytes_before);

    // Survivors (possibly relocated to the cold file) still read exact.
    for (int c = kCopies - 2; c < kCopies; ++c) {
      CopyKey key{NodeId(1), VlogId(0), VirtualSegmentId(c)};
      std::vector<std::byte> out;
      ASSERT_TRUE(log.ReadSegment(key, out).ok()) << "copy " << c;
      EXPECT_EQ(out, payloads[c]) << "copy " << c;
    }
  }
  EXPECT_LT(SegmentLog::TotalLogBytes(dir), bytes_before);

  // Restart after GC: exactly the survivors come back.
  SegmentLog log(dir, opts);
  ASSERT_TRUE(log.status().ok());
  auto copies = Snapshot(log);
  ASSERT_EQ(copies.size(), 2u);
  for (size_t i = 0; i < copies.size(); ++i) {
    int c = kCopies - 2 + int(i);
    EXPECT_EQ(copies[i].key.vseg, VirtualSegmentId(c));
    EXPECT_EQ(copies[i].size, kLen);
    std::vector<std::byte> out;
    ASSERT_TRUE(log.ReadSegment(copies[i].key, out).ok());
    EXPECT_EQ(out, payloads[c]) << "copy " << c << " after restart";
  }
  fs::remove_all(dir);
}

TEST(SegmentLogTest, IoErrorIsStickyAndSurfacedBySync) {
  // A regular file where the store wants its directory: construction
  // fails, and the failure is sticky — Sync reports it instead of
  // pretending enqueued records became durable.
  std::string path = ::testing::TempDir() + "/kera_seglog_notadir";
  fs::remove_all(path);
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a directory", f);
    std::fclose(f);
  }
  SegmentLog log(path, {});
  EXPECT_FALSE(log.status().ok());
  auto payload = Pattern(64, 1);
  log.EnqueueAppend(CopyKey{1, 0, 1}, 0, payload, 1, 1);
  EXPECT_FALSE(log.Sync().ok());
  EXPECT_FALSE(log.status().ok());
  EXPECT_EQ(log.DurableTicket(), 0u);

  // And through the Backup facade: io_errors is visible in stats.
  Backup backup(BackupConfig{.node = 2, .storage_dir = path});
  EXPECT_EQ(backup.GetStats().io_errors, 1u);
  fs::remove_all(path);
}

// ---------------------------------------------------------------- Backup

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::vector<std::byte> MakeChunk(ChunkSeq seq, std::string_view value) {
  ChunkBuilder b(1024);
  b.Start(/*stream=*/1, /*streamlet=*/0, /*producer=*/1);
  EXPECT_TRUE(b.AppendValue(AsBytes(value)));
  auto bytes = b.Seal(seq);
  return {bytes.begin(), bytes.end()};
}

uint32_t ChecksumOf(std::span<const std::byte> concatenated, uint32_t seed) {
  uint32_t crc = seed;
  std::span<const std::byte> rest = concatenated;
  while (!rest.empty()) {
    auto view = ChunkView::Parse(rest);
    uint32_t c = view->payload_checksum();
    crc = Crc32c(&c, 4, crc);
    rest = rest.subspan(view->total_size());
  }
  return crc;
}

rpc::ReplicateRequest MakeReplicate(VirtualSegmentId vseg,
                                    std::span<const std::byte> payload,
                                    uint32_t chunk_count,
                                    uint64_t start_offset, uint32_t crc_after,
                                    bool seals = false) {
  rpc::ReplicateRequest req;
  req.primary = 1;
  req.vlog = 0;
  req.vseg = vseg;
  req.start_offset = start_offset;
  req.chunk_count = chunk_count;
  req.checksum_after = crc_after;
  req.seals = seals;
  req.payload = payload;
  return req;
}

std::vector<std::byte> ReadCopy(Backup& backup, VirtualSegmentId vseg,
                                StatusCode want = StatusCode::kOk) {
  rpc::ReadRecoverySegmentRequest req;
  req.crashed = 1;
  req.vlog = 0;
  req.vseg = vseg;
  std::vector<std::byte> storage;
  auto read = backup.HandleRead(req, storage);
  EXPECT_EQ(read.status, want);
  return {read.payload.begin(), read.payload.end()};
}

TEST(BackupStoreTest, ColdRestartRebuildsCopyMapFromLogAlone) {
  std::string dir = FreshDir("kera_backup_cold_restart");
  BackupConfig cfg{.node = 3, .storage_dir = dir};

  auto c1 = MakeChunk(1, "sealed-part-one");
  auto c2 = MakeChunk(2, "sealed-part-two");
  auto c3 = MakeChunk(3, "still-open");
  uint32_t crc1 = ChecksumOf(c1, 0);
  uint32_t crc2 = ChecksumOf(c2, crc1);
  uint32_t crc3 = ChecksumOf(c3, 0);

  std::vector<std::byte> sealed_bytes, open_bytes;
  {
    Backup backup(cfg);
    ASSERT_EQ(backup.HandleReplicate(MakeReplicate(0, c1, 1, 0, crc1)).status,
              StatusCode::kOk);
    ASSERT_EQ(backup
                  .HandleReplicate(MakeReplicate(0, c2, 1, c1.size(), crc2,
                                                 /*seals=*/true))
                  .status,
              StatusCode::kOk);
    ASSERT_EQ(backup.HandleReplicate(MakeReplicate(1, c3, 1, 0, crc3)).status,
              StatusCode::kOk);
    backup.WaitForFlushes();
    EXPECT_EQ(backup.GetStats().segments_flushed, 1u);
    EXPECT_EQ(backup.EvictFlushed(), 1u);
    sealed_bytes = ReadCopy(backup, 0);
    open_bytes = ReadCopy(backup, 1);
    ASSERT_EQ(sealed_bytes.size(), c1.size() + c2.size());
    ASSERT_EQ(open_bytes.size(), c3.size());
  }

  // Cold start on the same directory: no sidecar files, no handoff — the
  // log scan alone reproduces both copies, bit for bit.
  Backup backup(cfg);
  EXPECT_EQ(backup.SegmentCount(), 2u);
  auto copies = backup.DebugCopies();
  ASSERT_EQ(copies.size(), 2u);
  std::sort(copies.begin(), copies.end(),
            [](const auto& a, const auto& b) { return a.vseg < b.vseg; });
  EXPECT_TRUE(copies[0].sealed);
  EXPECT_TRUE(copies[0].evicted);  // recovered sealed copies stay on disk
  EXPECT_EQ(copies[0].size, sealed_bytes.size());
  EXPECT_EQ(copies[0].chunk_count, 2u);
  EXPECT_EQ(copies[0].running_checksum, crc2);
  EXPECT_FALSE(copies[1].sealed);
  EXPECT_FALSE(copies[1].evicted);  // unsealed copies reload into memory
  EXPECT_EQ(copies[1].size, open_bytes.size());
  EXPECT_EQ(copies[1].running_checksum, crc3);

  EXPECT_EQ(ReadCopy(backup, 0), sealed_bytes);
  EXPECT_EQ(ReadCopy(backup, 1), open_bytes);
  EXPECT_EQ(backup.GetStats().segments_flushed, 1u);
  EXPECT_EQ(backup.EvictFlushed(), 0u);  // already evicted by recovery

  // The reopened copy accepts the next batch where the old process left
  // off — recovery preserved the replication cursor (size + crc chain).
  auto c4 = MakeChunk(4, "appended-after-restart");
  uint32_t crc4 = ChecksumOf(c4, crc3);
  EXPECT_EQ(backup
                .HandleReplicate(
                    MakeReplicate(1, c4, 1, open_bytes.size(), crc4))
                .status,
            StatusCode::kOk);
  EXPECT_EQ(ReadCopy(backup, 1).size(), open_bytes.size() + c4.size());
  fs::remove_all(dir);
}

TEST(BackupStoreTest, EvacuationDropsCopiesAndSurvivesRestart) {
  std::string dir = FreshDir("kera_backup_evacuate");
  BackupConfig cfg{.node = 3, .storage_dir = dir};

  auto c1 = MakeChunk(1, "to-be-evacuated");
  uint32_t crc1 = ChecksumOf(c1, 0);
  {
    Backup backup(cfg);
    ASSERT_EQ(backup
                  .HandleReplicate(
                      MakeReplicate(0, c1, 1, 0, crc1, /*seals=*/true))
                  .status,
              StatusCode::kOk);
    EXPECT_EQ(backup.SegmentCount(), 1u);
    EXPECT_EQ(backup.DropSegmentsForPrimary(1), 1u);
    EXPECT_EQ(backup.SegmentCount(), 0u);
    backup.WaitForFlushes();
  }
  // The evacuate record is durable: a cold restart must NOT resurrect
  // the dropped copy.
  Backup backup(cfg);
  EXPECT_EQ(backup.SegmentCount(), 0u);
  ReadCopy(backup, 0, StatusCode::kNotFound);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace kera
