// Tests for the discrete-event simulation: engine semantics, resource
// queueing, experiment determinism, and the structural properties the
// paper's figures rely on.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_sim.h"
#include "sim/figure_harness.h"
#include "sim/sim_cluster.h"

namespace kera::sim {
namespace {

TEST(EventSimulatorTest, EventsFireInTimeOrder) {
  EventSimulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(EventSimulatorTest, TiesFireInScheduleOrder) {
  EventSimulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSimulatorTest, RunUntilStopsAtBoundary) {
  EventSimulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(EventSimulatorTest, EventsCanScheduleEvents) {
  EventSimulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.ScheduleAfter(5, chain);
  };
  sim.Schedule(0, chain);
  sim.RunAll();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 45u);
}

TEST(SimResourceTest, SingleServerSerializes) {
  EventSimulator sim;
  SimResource res(sim, 1);
  std::vector<SimTime> done_at;
  for (int i = 0; i < 3; ++i) {
    res.Execute(10, [&] { done_at.push_back(sim.now()); });
  }
  sim.RunAll();
  EXPECT_EQ(done_at, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(res.completed(), 3u);
  EXPECT_EQ(res.busy_time(), 30u);
}

TEST(SimResourceTest, MultiServerRunsInParallel) {
  EventSimulator sim;
  SimResource res(sim, 2);
  std::vector<SimTime> done_at;
  for (int i = 0; i < 4; ++i) {
    res.Execute(10, [&] { done_at.push_back(sim.now()); });
  }
  sim.RunAll();
  EXPECT_EQ(done_at, (std::vector<SimTime>{10, 10, 20, 20}));
}

TEST(SimResourceTest, UtilizationTracksBusyTime) {
  EventSimulator sim;
  SimResource res(sim, 2);
  res.Execute(50, [] {});
  sim.RunUntil(100);
  EXPECT_NEAR(res.Utilization(), 0.25, 1e-9);  // 50 of 2x100 server-ns
}

// ----- experiment-level properties -----

SimExperimentConfig QuickConfig(System system) {
  SimExperimentConfig cfg = LatencyBase(system, 2, 2, 16, 3);
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.1;
  return cfg;
}

TEST(SimExperimentTest, Deterministic) {
  auto a = RunSimExperiment(QuickConfig(System::kKerA));
  auto b = RunSimExperiment(QuickConfig(System::kKerA));
  EXPECT_EQ(a.ingest_mrecords_per_s, b.ingest_mrecords_per_s);
  EXPECT_EQ(a.replication_rpcs, b.replication_rpcs);
  EXPECT_EQ(a.produce_requests, b.produce_requests);
  auto k1 = RunSimExperiment(QuickConfig(System::kKafka));
  auto k2 = RunSimExperiment(QuickConfig(System::kKafka));
  EXPECT_EQ(k1.ingest_mrecords_per_s, k2.ingest_mrecords_per_s);
  EXPECT_EQ(k1.replication_rpcs, k2.replication_rpcs);
}

TEST(SimExperimentTest, BothSystemsMakeProgress) {
  for (System system : {System::kKerA, System::kKafka}) {
    auto r = RunSimExperiment(QuickConfig(system));
    EXPECT_GT(r.ingest_mrecords_per_s, 0.05) << "system " << int(system);
    EXPECT_GT(r.consume_mrecords_per_s, 0.05) << "system " << int(system);
    EXPECT_GT(r.replication_rpcs, 0u);
    EXPECT_GT(r.produce_latency_p50_us, 0.0);
  }
}

TEST(SimExperimentTest, ReplicationFactorOneSkipsReplication) {
  SimExperimentConfig cfg = QuickConfig(System::kKerA);
  cfg.replication_factor = 1;
  auto r = RunSimExperiment(cfg);
  EXPECT_EQ(r.replication_rpcs, 0u);
  EXPECT_GT(r.ingest_mrecords_per_s, 0.05);
}

TEST(SimExperimentTest, HigherReplicationCostsThroughput) {
  SimExperimentConfig r1 = QuickConfig(System::kKerA);
  r1.replication_factor = 1;
  SimExperimentConfig r3 = QuickConfig(System::kKerA);
  r3.replication_factor = 3;
  auto a = RunSimExperiment(r1);
  auto b = RunSimExperiment(r3);
  EXPECT_GT(a.ingest_mrecords_per_s, b.ingest_mrecords_per_s);
}

TEST(SimExperimentTest, VlogAggregationReducesReplicationRpcs) {
  // The paper's core claim: shared vlogs replace many small replication
  // RPCs with fewer, larger ones.
  SimExperimentConfig few = LatencyBase(System::kKerA, 4, 0, 64, 3);
  few.vlogs_per_broker = 1;
  few.warmup_seconds = 0.05;
  few.measure_seconds = 0.2;
  SimExperimentConfig many = few;
  many.vlogs_per_broker = 16;  // 16 streams per broker -> one vlog each
  auto a = RunSimExperiment(few);
  auto b = RunSimExperiment(many);
  EXPECT_LT(a.replication_rpcs, b.replication_rpcs);
  EXPECT_GT(a.avg_replication_kb, b.avg_replication_kb);
}

TEST(SimExperimentTest, KerAOutperformsKafkaWithManyStreamsR3) {
  // Fig 8's qualitative claim at hundreds of streams, replication 3.
  SimExperimentConfig kera = Fig8(System::kKerA, 128, 3);
  kera.warmup_seconds = 0.05;
  kera.measure_seconds = 0.2;
  SimExperimentConfig kafka = Fig8(System::kKafka, 128, 3);
  kafka.warmup_seconds = 0.05;
  kafka.measure_seconds = 0.2;
  auto a = RunSimExperiment(kera);
  auto b = RunSimExperiment(kafka);
  EXPECT_GT(a.ingest_mrecords_per_s, 1.5 * b.ingest_mrecords_per_s);
}

TEST(SimExperimentTest, TooManyVlogsDegradeThroughput) {
  // Figs 14-16: one vlog per stream floods the dispatch threads.
  SimExperimentConfig good = Fig14to16(256, 4, 3);
  good.warmup_seconds = 0.05;
  good.measure_seconds = 0.2;
  SimExperimentConfig bad = Fig14to16(256, 64, 3);
  bad.warmup_seconds = 0.05;
  bad.measure_seconds = 0.2;
  auto a = RunSimExperiment(good);
  auto b = RunSimExperiment(bad);
  EXPECT_GT(a.ingest_mrecords_per_s, b.ingest_mrecords_per_s);
}

TEST(SimExperimentTest, ConsumersKeepPaceInThroughputConfig) {
  SimExperimentConfig cfg = Fig17to20(4, 64 << 10, 3);
  cfg.warmup_seconds = 0.1;
  cfg.measure_seconds = 0.3;
  auto r = RunSimExperiment(cfg);
  EXPECT_GT(r.consume_mrecords_per_s, 0.7 * r.ingest_mrecords_per_s);
}

TEST(SimExperimentTest, RequestCapTradesThroughputForLatency) {
  // Deeper requests amortize round-trips: throughput rises, latency rises.
  SimExperimentConfig shallow = LatencyBase(System::kKerA, 4, 0, 64, 3);
  shallow.request_max_chunks = 1;
  shallow.warmup_seconds = 0.05;
  shallow.measure_seconds = 0.2;
  SimExperimentConfig deep = shallow;
  deep.request_max_chunks = 16;
  auto a = RunSimExperiment(shallow);
  auto b = RunSimExperiment(deep);
  EXPECT_GT(b.ingest_mrecords_per_s, a.ingest_mrecords_per_s);
  EXPECT_GE(b.produce_latency_p50_us, a.produce_latency_p50_us);
}

TEST(SimExperimentTest, ConsumerDepthLetsConsumersKeepUp) {
  SimExperimentConfig shallow = ThroughputBase(System::kKerA, 16, 64 << 10, 3);
  shallow.consumer_chunks_per_partition = 1;
  shallow.warmup_seconds = 0.1;
  shallow.measure_seconds = 0.2;
  SimExperimentConfig deep = shallow;
  deep.consumer_chunks_per_partition = 8;
  auto a = RunSimExperiment(shallow);
  auto b = RunSimExperiment(deep);
  EXPECT_GT(b.consume_mrecords_per_s, a.consume_mrecords_per_s);
}

TEST(SimExperimentTest, KafkaReplicationRpcsScaleWithPartitions) {
  // Passive pull replication fetches per partition; more partitions mean
  // more fetch RPCs at the same data rate. KerA's shared vlogs do not.
  SimExperimentConfig few = Fig8(System::kKafka, 32, 3);
  few.warmup_seconds = 0.05;
  few.measure_seconds = 0.2;
  SimExperimentConfig many = Fig8(System::kKafka, 256, 3);
  many.warmup_seconds = 0.05;
  many.measure_seconds = 0.2;
  auto a = RunSimExperiment(few);
  auto b = RunSimExperiment(many);
  // Normalize by throughput: RPCs per million ingested records.
  double rate_a = double(a.replication_rpcs) / a.ingest_mrecords_per_s;
  double rate_b = double(b.replication_rpcs) / b.ingest_mrecords_per_s;
  EXPECT_GT(rate_b, rate_a);
}

TEST(SimExperimentTest, WindowedReplicationDeterministic) {
  SimExperimentConfig cfg = QuickConfig(System::kKerA);
  cfg.replication_window = 4;
  auto a = RunSimExperiment(cfg);
  auto b = RunSimExperiment(cfg);
  EXPECT_EQ(a.ingest_mrecords_per_s, b.ingest_mrecords_per_s);
  EXPECT_EQ(a.replication_rpcs, b.replication_rpcs);
  EXPECT_EQ(a.produce_requests, b.produce_requests);
  EXPECT_GT(a.ingest_mrecords_per_s, 0.05);
  EXPECT_GT(a.replication_rpcs, 0u);
}

TEST(SimExperimentTest, ReplicationWindowLiftsSharedVlogThroughput) {
  // The pipelining claim on the Fig 12 setup: with ONE shared vlog per
  // broker, stop-and-wait (W=1) gates every stream on the replication
  // round-trip; a window of 4 overlaps the round-trips.
  SimExperimentConfig w1 = Fig12(128, 3);
  w1.warmup_seconds = 0.05;
  w1.measure_seconds = 0.2;
  SimExperimentConfig w4 = w1;
  w4.replication_window = 4;
  auto a = RunSimExperiment(w1);
  auto b = RunSimExperiment(w4);
  EXPECT_GT(b.ingest_mrecords_per_s, a.ingest_mrecords_per_s);
}

TEST(SimExperimentTest, ReplicationBatchCapBoundsRpcSize) {
  SimExperimentConfig cfg = LatencyBase(System::kKerA, 4, 0, 64, 3);
  cfg.replication_max_batch_bytes = 4 << 10;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.2;
  auto r = RunSimExperiment(cfg);
  EXPECT_GT(r.replication_rpcs, 0u);
  // Average batch stays within the cap plus one chunk of slack.
  EXPECT_LE(r.avg_replication_kb, 4.0 + 1.1);
}

TEST(SimAnalyticTest, SingleProducerR1MatchesClosedForm) {
  // One producer, one stream, one broker pair slot, R1: no replication,
  // no contention. The closed-loop rate is analytically
  //   records_per_request / round_time
  // where round_time = source + per-chunk client + request overhead
  //                  + 2x network latency + transfer + dispatch in/out
  //                  + produce service + ack transfer.
  SimExperimentConfig cfg;
  cfg.system = SimExperimentConfig::System::kKerA;
  cfg.brokers = 4;
  cfg.producers = 1;
  cfg.consumers = 0;
  cfg.streams = 1;
  cfg.replication_factor = 1;
  cfg.chunk_size = 1024;
  cfg.request_max_chunks = 1;
  cfg.warmup_seconds = 0.1;
  cfg.measure_seconds = 0.5;
  auto r = RunSimExperiment(cfg);

  const CostModel& c = cfg.cost;
  double records = double(r.records_per_chunk);
  size_t frame = 56 + size_t(records) * 112;  // chunk header + records
  size_t request = 64 + frame;
  double transfer_us = double(request) * 8.0 / (c.network_bandwidth_gbps * 1e3);
  double round_us =
      records / c.source_records_per_sec * 1e6 + c.client_per_chunk_us +
      c.client_request_overhead_us +
      2 * c.network_latency_us +  // request out + ack back
      transfer_us + (c.dispatch_fixed_us +
                     c.dispatch_per_kb_us * double(request) / 1024.0) +
      (c.produce_rpc_fixed_us + c.per_chunk_append_us +
       c.per_kb_append_us * double(frame) / 1024.0) +
      (c.dispatch_fixed_us + c.dispatch_per_kb_us * 64.0 / 1024.0) +
      64.0 * 8.0 / (c.network_bandwidth_gbps * 1e3);
  double expected_mrec_s = records / round_us;  // M records/s
  EXPECT_NEAR(r.ingest_mrecords_per_s, expected_mrec_s,
              0.1 * expected_mrec_s)
      << "expected ~" << expected_mrec_s << " Mrec/s, round " << round_us
      << " us";
}

TEST(SimAnalyticTest, ReplicationRpcCountMatchesBatchArithmetic) {
  // Producer-only, one stream, R3: every chunk is replicated exactly
  // twice; with the batch cap at one chunk, replication RPCs in the
  // window ~= 2x the chunks acked in the window.
  SimExperimentConfig cfg;
  cfg.system = SimExperimentConfig::System::kKerA;
  cfg.producers = 1;
  cfg.consumers = 0;
  cfg.streams = 1;
  cfg.replication_factor = 3;
  cfg.chunk_size = 1024;
  cfg.request_max_chunks = 1;
  cfg.replication_max_batch_bytes = 1;  // one chunk per batch
  cfg.warmup_seconds = 0.1;
  cfg.measure_seconds = 0.5;
  auto r = RunSimExperiment(cfg);
  double chunks_acked =
      r.ingest_mrecords_per_s * 1e6 * cfg.measure_seconds /
      double(r.records_per_chunk);
  EXPECT_NEAR(double(r.replication_rpcs), 2 * chunks_acked,
              0.15 * 2 * chunks_acked);
  // One chunk per RPC: the average replication payload is one chunk.
  EXPECT_NEAR(r.avg_replication_kb, (56 + 8 * 112) / 1024.0, 0.05);
}

TEST(FigureHarnessTest, ConfigsMatchPaperSetups) {
  auto f8 = Fig8(System::kKerA, 256, 2);
  EXPECT_EQ(f8.producers, 4u);
  EXPECT_EQ(f8.consumers, 0u);
  EXPECT_EQ(f8.chunk_size, 1024u);
  EXPECT_EQ(f8.replication_factor, 2u);
  EXPECT_EQ(f8.vlogs_per_broker, 4u);

  auto f9 = Fig9(System::kKerA, 16, 3);
  EXPECT_EQ(f9.chunk_size, 16u << 10);
  EXPECT_EQ(f9.vlog_policy, rpc::VlogPolicy::kPerSubPartition);

  auto f12 = Fig12(512, 3);
  EXPECT_EQ(f12.vlogs_per_broker, 1u);
  EXPECT_EQ(f12.producers, 8u);
  EXPECT_EQ(f12.consumers, 8u);

  auto f17 = Fig17to20(8, 64 << 10, 3);
  EXPECT_EQ(f17.streams, 1u);
  EXPECT_EQ(f17.streamlets_per_stream, 32u);
  EXPECT_EQ(f17.q, 4u);
  EXPECT_EQ(f17.vlog_policy, rpc::VlogPolicy::kPerSubPartition);

  auto f21 = Fig21(16, 32 << 10);
  EXPECT_EQ(f21.vlog_policy, rpc::VlogPolicy::kSharedPerBroker);
  EXPECT_EQ(f21.vlogs_per_broker, 16u);

  // Kafka never uses KerA's sub-partitioning.
  auto f11k = Fig11(System::kKafka, 16, 32 << 10);
  EXPECT_EQ(f11k.q, 1u);
}

TEST(FigureHarnessTest, FormatResultContainsMetrics) {
  SimExperimentResult r;
  r.ingest_mrecords_per_s = 1.25;
  r.replication_rpcs = 42;
  std::string s = FormatResult("test", r);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

}  // namespace
}  // namespace kera::sim
